(** Persistent transactional memory: the paper's core subject.

    Two algorithms from the LLVM PTM suite the paper benchmarks
    (Zardoshti et al., PACT'19), both built on a table of versioned
    ownership records (orecs) and a TL2-style global version clock:

    - {!Redo} ("orec-lazy"): writes are buffered in a per-thread
      persistent redo log (volatile index, persistent payload — the
      split-log tuning of §III-A); orecs are acquired at commit time;
      the durable commit point is the flushed log-status word, after
      which values are written back in place.  O(1) fences per
      transaction.

    - {!Undo} ("orec-eager"): orecs are acquired at first write; the
      old value is appended to a persistent undo log and {e fenced}
      before each in-place store, giving O(W) fences — the cost the
      paper blames for undo logging losing to redo logging.

    Durability-domain instrumentation is taken from the machine:
    [needs_flush]/[needs_fence] decide which [clwb]/[sfence] are
    issued, so the same code runs under ADR, the incorrect
    no-fence-ADR of Table III, eADR, PDRAM and PDRAM-Lite.

    Transactions provide failure atomicity and durable linearizability:
    once [atomic] returns, the transaction's effects survive a crash;
    if a crash interrupts it, {!recover} rolls it back (undo) or
    replays it (redo committed-but-not-written-back). *)

type algorithm =
  | Redo
  | Undo
  | Htm
      (** Extension (the paper's §V future work): a TSX-style hardware
          transaction under an eADR-class durability domain.  No
          logging, no flushes; the commit publishes the write set as
          one indivisible event, so its lines become visible and
          durable together.  Capacity- or conflict-troubled
          transactions fall back to the redo STM path.  Rejected at
          {!create} time under flush-requiring (ADR) domains, where
          clwb would abort the hardware transaction. *)
  | Mod
      (** MOD, minimally ordered durable structures (Haria et al.,
          arXiv 1908.11850): the paper's "fences are the cost" thesis
          pushed to its endpoint.  Writes are buffered volatile; the
          transaction must fit the functional shadow-update shape —
          every written word is either freshly allocated this
          transaction (a shadow node, unreachable until publication)
          or the {e one} home-location word that swings the
          structure's root.  Commit then orders exactly once: shadow
          stores, one vectored clwb sweep, {e one fence}, then the
          8-byte atomic root swap whose own write-back is left
          unfenced — recovery reads whichever root reached media, so
          durability is {e buffered} (at most the final operation per
          structure is lost; everything behind a swept root survives).
          A transaction that writes a second distinct non-fresh word
          transparently falls back to the redo path for that attempt,
          so arbitrary workloads stay correct — only MOD-shaped ones
          get the single-fence bill.  Conflict detection rides the
          root word's orec; shadow nodes need none. *)

val algorithm_name : algorithm -> string

type flush_timing =
  | At_commit  (** flush all redo-log lines in a tight pre-commit loop *)
  | Incremental  (** flush each log line as it fills (§III-B ablation) *)

(** Deliberate ordering bugs for mutation-testing the crash oracles
    (never set in real use — a checker that never fails is untested). *)
type inject =
  | Skip_fence
      (** every sfence elided: write-backs race in the WPQ; for MOD
          the whole pre-publish ordering point is skipped — no shadow
          sweep (clwbs or fence) before the root swap, so the root can
          reach media while the nodes it points at are still
          cache-only (the lone sfence is timing-redundant in this
          machine model; see the commit pipeline comment) *)
  | Reorder_log_apply
      (** redo: the durable commit status is raised {e before} the log
          entries persist, so recovery can replay a stale log; undo:
          entries are armed without their own write-back/fence, so an
          in-place store can beat its undo entry to media; MOD: the
          root swap is issued {e before} the shadow sweep, so a crash
          in between recovers a root pointing at unswept garbage *)
  | Tear_write
      (** redo/undo: the coalesced commit write-back sweep drops its
          last gathered line, leaving one committed line volatile;
          MOD: the root swap tears — only the low byte of the new root
          reaches media (a memcpy-style non-atomic pointer store), the
          corrective full store stays cache-only *)

val inject_name : inject -> string
(** Stable names: ["skip-fence"], ["reorder-log-apply"], ["tear-write"]
    (used in crashtest replay specs and CRASHTEST_INJECT). *)

val inject_of_name : string -> inject option

type t
(** A PTM runtime bound to one machine: region, allocator, orec table,
    clock, per-thread logs and statistics. *)

type tx
(** An executing transaction; only valid inside the callback of
    {!atomic}. *)

exception Log_overflow
(** A transaction wrote more distinct words than the per-thread
    persistent log can hold. *)

val create :
  ?algorithm:algorithm ->
  ?orec_bits:int ->
  ?flush_timing:flush_timing ->
  ?coalesce:bool ->
  ?max_threads:int ->
  ?log_words_per_thread:int ->
  ?rng_seed:int ->
  ?inject:inject ->
  Machine.t ->
  t
(** Format a fresh region on [machine] and initialize the runtime.
    Defaults: [Redo], 2^20 orecs, [At_commit], coalescing on,
    32 threads, 8192-word logs.

    [rng_seed] (default [0x5EED]) is the base of the per-thread backoff
    RNG streams (thread [tid] draws from a generator seeded
    [rng_seed + tid]).  All of a PTM instance's randomness derives from
    it, so a driver that threads its own seed here owns every stream of
    the simulation explicitly — nothing process-global, and two
    instances never share generator state.

    [coalesce] (default [true]) enables the software flush-optimisation
    layer: dirty cache lines are deduplicated per commit (each line
    clwb'd at most once), log appends are persisted as one vectored
    clwb sweep behind a single fence, and commit-time flushes are all
    issued before the one durability fence so their WPQ drains overlap.
    With [coalesce:false] the runtime runs the naive per-entry
    discipline — a clwb and an ordering fence per log entry and per
    written word — for A/B measurement of what coalescing saves.
    Both modes produce identical heap states; only flush/fence traffic
    and timing differ. *)

(** What one pass of crash recovery did: how many per-thread logs were
    scanned, how many log words were examined, and how many entries
    were replayed (redo, committed) or rolled back (undo, in-flight).
    Recovery runs on raw, untimed machine operations — it advances no
    virtual clock — so services that want to report a {e simulated}
    recovery time combine these counts with the machine's configured
    latencies (see [Kvserve.Service]). *)
module Recovery_report : sig
  type t = {
    logs_scanned : int;
    words_scanned : int;
    entries_replayed : int;
    entries_rolled_back : int;
  }
end

val recover :
  ?algorithm:algorithm ->
  ?orec_bits:int ->
  ?flush_timing:flush_timing ->
  ?coalesce:bool ->
  ?rng_seed:int ->
  ?profiler:Profile.t ->
  ?inject:inject ->
  Machine.t ->
  t
(** Attach to an existing region after a reboot and run crash
    recovery: replay committed redo logs, roll back in-flight undo
    logs, clear log statuses and rebuild the allocator's free lists.
    Idempotent (a crash during recovery is handled by recovering
    again).  When [profiler] is given, recovery is recorded as a
    {!Profile.Recovery} phase and the profiler stays installed. *)

val region : t -> Pmem.Region.t
val machine : t -> Machine.t
val algorithm : t -> algorithm

val coalescing : t -> bool
(** Whether the flush-coalescing commit path is enabled. *)

val allocator : t -> Pmem.Alloc.t
(** The runtime's allocator (for capacity/live-block oracles). *)

(** {1 Transactions} *)

val atomic : t -> (tx -> 'a) -> 'a
(** [atomic t f] runs [f] as a transaction, retrying on conflicts with
    randomized exponential backoff.  An exception raised by [f] aborts
    the transaction and is re-raised.  Nesting is flattened: an inner
    [atomic] on the same runtime joins the outer transaction. *)

val read : tx -> int -> int
(** Transactional read of a heap word. *)

val write : tx -> int -> int -> unit
(** Transactional write of a heap word. *)

val alloc : tx -> int -> int
(** Transactionally allocate a block of the given word count; rolled
    back if the transaction aborts. *)

val free : tx -> int -> unit
(** Transactionally free a block; space is recycled only after
    commit. *)

val on_commit : tx -> (unit -> unit) -> unit
(** Register a volatile callback to run after the durable commit
    point. *)

val abort_and_retry : tx -> 'a
(** Explicitly abort the current attempt and retry from the start
    (usable for optimistic waiting). *)

(** {1 Non-transactional durable accesses} *)

val root_get : t -> int -> int
val root_set : t -> int -> int -> unit

(** {1 Epoch reclamation support (MOD structures)} *)

val clock : t -> int
(** Current value of the global version clock (a read, not a tick). *)

val min_active_rv : t -> int
(** Smallest read-version among transactions currently executing
    ([max_int] when none are).  A shadow node unlinked by a root swap
    that read clock value [wv] can only still be referenced by a
    transaction whose snapshot predates the swap ([rv < wv]); once
    [min_active_rv t >= wv] the node is provably unreachable and its
    block may be recycled.  This is the reclamation horizon for the
    MOD structures' epoch free-lists. *)

(** {1 Statistics} *)

module Stats : sig
  type ptm := t

  type t = {
    commits : int;
    aborts : int;
    read_only_commits : int;
    max_write_set : int;  (** largest write set (distinct words) seen *)
    max_log_lines : int;  (** largest persistent log footprint, in cache lines *)
  }

  val get : ptm -> t
  val reset : ptm -> unit

  val commits_per_abort : t -> float
  (** The paper's Tables I/II metric; [infinity] when no aborts. *)
end

(** {1 Diagnostics} *)

val set_profiler : t -> Profile.t option -> unit
(** Install (or remove) a phase profiler (see {!Profile}).  Off by
    default.  The profiler observes the machine clock at phase
    boundaries and never advances it: enabling one changes no simulated
    timing.  Install before spawning workers for coherent streams. *)

val profiler : t -> Profile.t option

val last_recovery : t -> Recovery_report.t option
(** Report of the recovery pass that produced this runtime; [None] for
    a runtime built by {!create}. *)

val set_conflict_hook : t -> (string -> int -> unit) option -> unit
(** Install a callback on this instance, invoked on every conflict with
    the site name ("read-stale", "acquire-locked", "commit-validate",
    ...) and the heap address involved (0 for whole-read-set validation
    failures).  For contention debugging; [None] disables.  Per
    instance, so concurrent simulations on other domains are never
    observed. *)

val set_inject : t -> inject option -> unit
(** Arm (or disarm) an injected ordering bug on this instance.  Strictly
    for mutation tests of the crash oracles; see {!inject}. *)
