module Layout = Machine.Layout
module Meta = Machine.Meta_layout

type algorithm = Redo | Undo | Htm | Mod

let algorithm_name = function Redo -> "redo" | Undo -> "undo" | Htm -> "htm" | Mod -> "mod"

type flush_timing = At_commit | Incremental

(* Deliberate ordering bugs, injectable for mutation-testing the crash
   oracles (a checker that never fails is untested).  Each one models a
   classic PTM implementation mistake:
   - [Skip_fence]: every sfence is elided — write-backs race in the WPQ
     with nothing ordering them (Table III's broken variant, but
     injected into a correct build).
   - [Reorder_log_apply]: the durable commit status is raised before
     the log entries are persistent (redo), and undo entries are armed
     without their own write-back/fence — recovery can apply a stale
     log, or fail to roll back an in-place store that beat its entry to
     media.
   - [Tear_write]: the coalesced data write-back sweep drops its last
     gathered line, leaving one committed line volatile. *)
type inject = Skip_fence | Reorder_log_apply | Tear_write

let inject_name = function
  | Skip_fence -> "skip-fence"
  | Reorder_log_apply -> "reorder-log-apply"
  | Tear_write -> "tear-write"

let inject_of_name = function
  | "skip-fence" -> Some Skip_fence
  | "reorder-log-apply" -> Some Reorder_log_apply
  | "tear-write" -> Some Tear_write
  | _ -> None

exception Log_overflow

(* Conflict signal; never escapes [atomic]. *)
exception Conflict

(* What one pass of crash recovery actually did — the input of modeled
   recovery-time estimates (the recovery pass itself runs on raw,
   untimed machine ops, so it advances no virtual clock). *)
module Recovery_report = struct
  type t = {
    logs_scanned : int;
    words_scanned : int;
    entries_replayed : int;
    entries_rolled_back : int;
  }
end

(* The conflict hook and backoff RNG streams are per-PTM-instance (see
   the [t] fields below): independent simulations share no mutable
   state, so the parallel experiment runner can execute them on
   separate domains without cross-sim interference. *)

(* Log status words (per-thread, first word of the log area).
   Entries are (addr, value) pairs starting at log_base+2, terminated
   by a zero addr sentinel, so recovery never needs a separate count. *)
let status_idle = 0
let status_redo_committed = 1
let status_undo_active = 2

type thread_stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable read_only_commits : int;
  mutable max_write_set : int;
  mutable max_log_lines : int;
}

type tx = {
  ptm : t;
  tid : int;
  rng : Repro_util.Rng.t;
  mutable depth : int;
  mutable rv : int;
  mutable attempts : int;
  (* Redo: write-set index (volatile, the "DRAM half" of the split log):
     addr -> entry index.  Undo: addr -> 0 marker of already-logged words. *)
  wmap : (int, int) Hashtbl.t;
  vaddrs : Repro_util.Int_vec.t; (* redo: addr per entry *)
  vvals : Repro_util.Int_vec.t; (* redo: volatile copy of the latest value *)
  uvec : Repro_util.Int_vec.t; (* undo: (addr, old) pairs in append order *)
  reads : Repro_util.Int_vec.t; (* (oidx, observed version) pairs *)
  acquired : Repro_util.Int_vec.t; (* oidxs I hold locked *)
  amap : (int, int) Hashtbl.t; (* oidx -> version before I locked it *)
  flushed : (int, unit) Hashtbl.t; (* line dedup for bulk flushes *)
  mutable lscratch : int array; (* line addresses for vectored sweeps *)
  mutable commit_hooks : (unit -> unit) list;
  mutable abort_hooks : (unit -> unit) list;
  mutable undo_status_written : bool;
  mutable log_flushed_upto : int; (* Incremental policy: first unflushed line *)
  mutable mode : algorithm; (* effective algorithm for this attempt (HTM falls back) *)
  wlines : (int, unit) Hashtbl.t; (* HTM: distinct written lines (capacity model) *)
  (* MOD: [lo, hi) word ranges allocated by this transaction — writes
     inside them are shadow-class (unreachable until the root swap). *)
  fresh : Repro_util.Int_vec.t;
  mutable pub_addr : int; (* MOD: the single home-location word, -1 = none *)
  mutable in_alloc : bool; (* MOD: inside the allocator (header writes are shadow) *)
}

and t = {
  m : Machine.t;
  reg : Pmem.Region.t;
  allocator : Pmem.Alloc.t;
  alg : algorithm;
  flush_timing : flush_timing;
  coalesce : bool; (* flush coalescing + commit pipelining (off = naive per-entry) *)
  orec_mask : int;
  log_capacity : int; (* max entries per transaction *)
  txs : tx option array;
  stats : thread_stats array;
  rng_seed : int; (* base of the per-thread backoff RNG streams *)
  mutable profiler : Profile.t option; (* observability; never advances clocks *)
  (* Diagnostics: invoked on every conflict with the site and the heap
     address (or orec index, site-dependent) involved. *)
  mutable conflict_hook : (string -> int -> unit) option;
  (* Set by [recover]; [None] for a freshly created runtime. *)
  mutable last_recovery : Recovery_report.t option;
  (* Injected ordering bug (mutation testing only); [None] in real use. *)
  mutable inject : inject option;
}

let set_inject t i = t.inject <- i

let set_conflict_hook t f = t.conflict_hook <- f

let conflict tx site addr =
  (match tx.ptm.conflict_hook with Some f -> f site addr | None -> ());
  raise Conflict

(* ---------- orecs and the global clock ---------- *)

let orec_of t addr =
  let h = addr * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land t.orec_mask

let orec_get t oidx = t.m.Machine.meta_get (Meta.orec_base + oidx)
let orec_set t oidx v = t.m.Machine.meta_set (Meta.orec_base + oidx) v
let orec_cas t oidx expected v = t.m.Machine.meta_cas (Meta.orec_base + oidx) expected v

let clock_read t = t.m.Machine.meta_get Meta.clock_idx
let clock_next t = t.m.Machine.meta_fetch_add Meta.clock_idx 1 + 1

let locked v = v land 1 = 1
let version_of v = v asr 1
let lock_word tid = (tid lsl 1) lor 1
let version_word ts = ts lsl 1
let locked_by v tid = v = lock_word tid

(* ---------- flush/fence helpers (durability-domain aware) ---------- *)

(* Profiling never wraps hot-path work in a shared closure-taking
   helper: every site matches on [t.profiler] explicitly, so the
   disabled case is one branch with no closure or option allocation. *)

(* A single clwb, with its slice split into issue cost vs WPQ stall
   when profiling.  Callers have already checked [needs_flush]. *)
let clwb1 t addr =
  match t.profiler with
  | None -> t.m.Machine.clwb addr
  | Some p -> Profile.leaf_flush p ~flushes:1 (fun () -> t.m.Machine.clwb addr)

let flush t addr = if t.m.Machine.needs_flush then clwb1 t addr

let fence t =
  if t.m.Machine.needs_fence && t.inject <> Some Skip_fence then
    match t.profiler with
    | None -> t.m.Machine.sfence ()
    | Some p -> Profile.leaf_fence p (fun () -> t.m.Machine.sfence ())

(* Flush every line in [lo, hi] (inclusive word addresses). *)
let flush_range t lo hi =
  if t.m.Machine.needs_flush then begin
    let first = Layout.line_of_addr lo in
    let last = Layout.line_of_addr hi in
    match t.profiler with
    | None ->
      for line = first to last do
        t.m.Machine.clwb (Layout.addr_of_line line)
      done
    | Some p ->
      Profile.leaf_flush p ~flushes:(last - first + 1) (fun () ->
          for line = first to last do
            t.m.Machine.clwb (Layout.addr_of_line line)
          done)
  end

(* ---------- construction ---------- *)

let fresh_tx t tid =
  {
    ptm = t;
    tid;
    rng = Repro_util.Rng.create (t.rng_seed + tid);
    depth = 0;
    rv = 0;
    attempts = 0;
    wmap = Hashtbl.create 64;
    vaddrs = Repro_util.Int_vec.create ();
    vvals = Repro_util.Int_vec.create ();
    uvec = Repro_util.Int_vec.create ();
    reads = Repro_util.Int_vec.create ~capacity:64 ();
    acquired = Repro_util.Int_vec.create ();
    amap = Hashtbl.create 16;
    flushed = Hashtbl.create 64;
    lscratch = Array.make 16 0;
    commit_hooks = [];
    abort_hooks = [];
    undo_status_written = false;
    log_flushed_upto = 0;
    mode = t.alg;
    wlines = Hashtbl.create 64;
    fresh = Repro_util.Int_vec.create ();
    pub_addr = -1;
    in_alloc = false;
  }

let fresh_stats () =
  { commits = 0; aborts = 0; read_only_commits = 0; max_write_set = 0; max_log_lines = 0 }

let default_rng_seed = 0x5EED

let build ~algorithm ~orec_bits ~flush_timing ~coalesce ~rng_seed m reg allocator =
  (* HTM is incompatible with explicit flushes: clwb of a speculative
     line aborts the hardware transaction (the paper's §II point about
     TSX under ADR).  Only eADR-class domains — or an ADR machine whose
     HTM commits are themselves durable (durable_publish) — may run it. *)
  if algorithm = Htm && m.Machine.needs_flush && not m.Machine.durable_publish then
    invalid_arg "Ptm: the HTM algorithm requires an eADR-class durability domain";
  let nthreads = Pmem.Region.max_threads reg in
  let orec_count = 1 lsl orec_bits in
  if Meta.orec_base + orec_count > m.Machine.meta_words then
    invalid_arg "Ptm: orec table does not fit in the metadata space";
  {
    m;
    reg;
    allocator;
    alg = algorithm;
    flush_timing;
    coalesce;
    orec_mask = orec_count - 1;
    log_capacity = (Pmem.Region.log_words_per_thread reg - 3) / 2;
    txs = Array.make nthreads None;
    stats = Array.init nthreads (fun _ -> fresh_stats ());
    rng_seed;
    profiler = None;
    conflict_hook = None;
    last_recovery = None;
    inject = None;
  }

let create ?(algorithm = Redo) ?(orec_bits = 20) ?(flush_timing = At_commit) ?(coalesce = true)
    ?(max_threads = 32) ?(log_words_per_thread = 8192) ?(rng_seed = default_rng_seed) ?inject m =
  if algorithm = Htm && m.Machine.needs_flush && not m.Machine.durable_publish then
    invalid_arg "Ptm: the HTM algorithm requires an eADR-class durability domain";
  let reg = Pmem.Region.create ~max_threads ~log_words_per_thread m in
  let allocator = Pmem.Alloc.create reg in
  (* Log status words must start out durably idle. *)
  for tid = 0 to max_threads - 1 do
    m.Machine.raw_write (Pmem.Region.log_base reg ~tid) status_idle
  done;
  let t = build ~algorithm ~orec_bits ~flush_timing ~coalesce ~rng_seed m reg allocator in
  (match inject with Some _ -> t.inject <- inject | None -> ());
  t

(* ---------- crash recovery ---------- *)

let recover_logs m reg =
  let raw = m.Machine.raw_read and write = m.Machine.raw_write in
  let words_scanned = ref 0 in
  let entries_replayed = ref 0 in
  let entries_rolled_back = ref 0 in
  let nthreads = Pmem.Region.max_threads reg in
  for tid = 0 to nthreads - 1 do
    let base = Pmem.Region.log_base reg ~tid in
    let status = raw base in
    incr words_scanned;
    if status = status_redo_committed then begin
      (* Replay committed-but-possibly-not-written-back values. *)
      let pos = ref (base + 2) in
      while raw !pos <> 0 do
        write (raw !pos) (raw (!pos + 1));
        words_scanned := !words_scanned + 2;
        incr entries_replayed;
        pos := !pos + 2
      done;
      incr words_scanned (* the zero-addr sentinel *)
    end
    else if status = status_undo_active then begin
      (* Roll the in-flight transaction back, newest entry first. *)
      let entries = ref [] in
      let pos = ref (base + 2) in
      while raw !pos <> 0 do
        entries := (raw !pos, raw (!pos + 1)) :: !entries;
        words_scanned := !words_scanned + 2;
        incr entries_rolled_back;
        pos := !pos + 2
      done;
      incr words_scanned;
      List.iter (fun (addr, old) -> write addr old) !entries
    end;
    write base status_idle
  done;
  {
    Recovery_report.logs_scanned = nthreads;
    words_scanned = !words_scanned;
    entries_replayed = !entries_replayed;
    entries_rolled_back = !entries_rolled_back;
  }

let recover ?(algorithm = Redo) ?(orec_bits = 20) ?(flush_timing = At_commit) ?(coalesce = true)
    ?(rng_seed = default_rng_seed) ?profiler ?inject m =
  let reg = Pmem.Region.attach m in
  let report =
    match profiler with
    | None -> recover_logs m reg
    | Some p -> Profile.with_phase p Profile.Recovery (fun () -> recover_logs m reg)
  in
  let allocator = Pmem.Alloc.recover reg in
  let t = build ~algorithm ~orec_bits ~flush_timing ~coalesce ~rng_seed m reg allocator in
  t.profiler <- profiler;
  t.last_recovery <- Some report;
  (match inject with Some _ -> t.inject <- inject | None -> ());
  t

let region t = t.reg
let machine t = t.m
let algorithm t = t.alg
let coalescing t = t.coalesce
let allocator t = t.allocator
let set_profiler t p = t.profiler <- p
let profiler t = t.profiler
let last_recovery t = t.last_recovery

let root_get t i = Pmem.Region.root_get t.reg i
let root_set t i v = Pmem.Region.root_set t.reg i v

let clock t = clock_read t

(* Smallest read-version among transactions currently executing — the
   reclamation horizon for MOD's epoch free-lists.  A node retired when
   the clock read [wv] can only be referenced by a transaction whose
   snapshot predates the root swap, i.e. one with [rv < wv]; once every
   in-flight transaction has [rv >= wv] the node is unreachable. *)
let min_active_rv t =
  let m = ref max_int in
  Array.iter
    (function Some tx when tx.depth > 0 -> if tx.rv < !m then m := tx.rv | _ -> ())
    t.txs;
  !m

(* ---------- shared transaction machinery ---------- *)

let tx_for t =
  let tid = t.m.Machine.tid () in
  match t.txs.(tid) with
  | Some tx -> tx
  | None ->
    let tx = fresh_tx t tid in
    t.txs.(tid) <- Some tx;
    tx

let log_base tx = Pmem.Region.log_base tx.ptm.reg ~tid:tx.tid

let reset_tx tx =
  Hashtbl.reset tx.wmap;
  Repro_util.Int_vec.clear tx.vaddrs;
  Repro_util.Int_vec.clear tx.vvals;
  Repro_util.Int_vec.clear tx.uvec;
  Repro_util.Int_vec.clear tx.reads;
  Repro_util.Int_vec.clear tx.acquired;
  Hashtbl.reset tx.amap;
  Hashtbl.reset tx.flushed;
  tx.commit_hooks <- [];
  tx.abort_hooks <- [];
  tx.undo_status_written <- false;
  tx.log_flushed_upto <- Layout.line_of_addr (log_base tx + 2);
  Hashtbl.reset tx.wlines;
  Repro_util.Int_vec.clear tx.fresh;
  tx.pub_addr <- -1;
  tx.in_alloc <- false

(* Release every orec I hold, restoring pre-lock versions. *)
let release_acquired_to_previous tx =
  Repro_util.Int_vec.iter
    (fun oidx -> orec_set tx.ptm oidx (Hashtbl.find tx.amap oidx))
    tx.acquired

let release_acquired_to tx version_word_value =
  Repro_util.Int_vec.iter (fun oidx -> orec_set tx.ptm oidx version_word_value) tx.acquired

(* Read-set validation at commit: every orec still shows the version we
   read, or is locked by us and showed that version before locking. *)
let validate_reads tx =
  let t = tx.ptm in
  let n = Repro_util.Int_vec.length tx.reads in
  let rec go i =
    if i >= n then true
    else begin
      let oidx = Repro_util.Int_vec.get tx.reads i in
      let seen = Repro_util.Int_vec.get tx.reads (i + 1) in
      let cur = orec_get t oidx in
      if cur = seen then go (i + 2)
      else if locked_by cur tx.tid then
        match Hashtbl.find tx.amap oidx with
        | prev -> prev = seen && go (i + 2)
        | exception Not_found -> false
      else false
    end
  in
  go 0

(* Timestamp extension (one of the optimizations the paper's PTMs
   enable): when a version newer than [rv] is met, revalidate the read
   set against the current clock and, if it still holds, slide [rv]
   forward instead of aborting.  Cuts false aborts of long-running
   transactions dramatically. *)
let extend tx =
  let now_v = clock_read tx.ptm in
  if validate_reads tx then begin
    tx.rv <- now_v;
    true
  end
  else false

(* Bounded politeness: give a committing writer a moment to release
   its orec before declaring a conflict (readers of a commit-locked
   orec would otherwise always abort, which is brutal under ADR's long
   flush-laden commits). *)
let wait_unlocked tx oidx =
  let t = tx.ptm in
  let rec go tries v =
    if not (locked v) then v
    else if tries = 0 then v
    else begin
      t.m.Machine.pause 150;
      go (tries - 1) (orec_get t oidx)
    end
  in
  go 6 (orec_get t oidx)

(* TL2-style read of a location not in my write set. *)
let read_shared tx addr =
  let t = tx.ptm in
  let oidx = orec_of t addr in
  let v1 = orec_get t oidx in
  let v1 = if locked v1 && not (locked_by v1 tx.tid) then wait_unlocked tx oidx else v1 in
  if locked v1 then begin
    if locked_by v1 tx.tid then t.m.Machine.load addr
    else conflict tx "read-locked" addr
  end
  else begin
    if version_of v1 > tx.rv && not (extend tx) then conflict tx "read-stale" addr;
    let value = t.m.Machine.load addr in
    let v2 = orec_get t oidx in
    if v2 <> v1 then conflict tx "read-race" addr;
    Repro_util.Int_vec.push tx.reads oidx;
    Repro_util.Int_vec.push tx.reads v1;
    value
  end

let ensure_scratch tx k =
  let len = Array.length tx.lscratch in
  if len < k then begin
    (* Growth must preserve contents: [gather_lines] grows mid-sweep,
       and dropping the already-gathered lines would leave them dirty
       in cache forever — a silent durability hole. *)
    let fresh = Array.make (max k ((2 * len) + 8)) 0 in
    Array.blit tx.lscratch 0 fresh 0 len;
    tx.lscratch <- fresh
  end

(* Collect the distinct cache lines of a write set into [tx.lscratch]
   in first-touch order (deterministic sweeps); returns the count. *)
let gather_lines tx iter_addrs =
  Hashtbl.reset tx.flushed;
  let k = ref 0 in
  iter_addrs (fun addr ->
      let line = Layout.line_of_addr addr in
      if not (Hashtbl.mem tx.flushed line) then begin
        Hashtbl.add tx.flushed line ();
        ensure_scratch tx (!k + 1);
        tx.lscratch.(!k) <- Layout.addr_of_line line;
        incr k
      end);
  !k

(* Vectored flush of the first [n] line-distinct addresses: one
   coalesced issue instant, so the lines' WPQ drains overlap instead of
   serializing behind each clwb's issue latency — the commit pipeline.
   Charged to the [Coalesce] phase when profiling. *)
let clwb_batch t addrs n =
  if n > 0 then
    match t.profiler with
    | None -> t.m.Machine.clwb_many addrs n
    | Some p -> Profile.leaf_coalesce p ~flushes:n (fun () -> t.m.Machine.clwb_many addrs n)

(* Make a write set's data lines durable.  Coalesced: one vectored
   sweep over the deduplicated dirty lines ordered by a single fence.
   Naive: a clwb and its own fence per written word, no dedup — the
   per-entry ordering an unoptimized PTM pays.  Returns the number of
   clwbs issued (savings ledger). *)
let flush_written_lines tx iter_addrs =
  let t = tx.ptm in
  if not t.m.Machine.needs_flush then begin
    fence t;
    0
  end
  else if t.coalesce then begin
    let k = gather_lines tx iter_addrs in
    (* Injected torn write: the sweep silently drops its last gathered
       line, leaving that committed line volatile in cache. *)
    let k = match t.inject with Some Tear_write when k > 1 -> k - 1 | _ -> k in
    clwb_batch t tx.lscratch k;
    fence t;
    k
  end
  else begin
    let issued = ref 0 in
    iter_addrs (fun addr ->
        incr issued;
        clwb1 t addr;
        fence t);
    !issued
  end

let write_status tx status =
  let t = tx.ptm in
  let base = log_base tx in
  (match t.profiler with
  | None -> t.m.Machine.store base status
  | Some p -> Profile.with_phase p Profile.Log_append (fun () -> t.m.Machine.store base status));
  flush t base;
  fence t

(* ---------- redo (orec-lazy) ---------- *)

(* Write-set lookups run on every transactional op: the
   [match ... with exception Not_found] form keeps the hit path free of
   the [Some] cell [Hashtbl.find_opt] would box per call. *)
let redo_read tx addr =
  match Hashtbl.find tx.wmap addr with
  | idx ->
    (* Read-own-write: the index lives in DRAM, the value in the
       persistent log — model the log lookup as a real load. *)
    ignore (tx.ptm.m.Machine.load (log_base tx + 2 + (2 * idx) + 1));
    Repro_util.Int_vec.get tx.vvals idx
  | exception Not_found -> read_shared tx addr

let redo_write tx addr value =
  assert (addr > 0);
  let t = tx.ptm in
  match Hashtbl.find tx.wmap addr with
  | idx ->
    (* Update the log entry in place (hash-table log, §I). *)
    Repro_util.Int_vec.set tx.vvals idx value;
    t.m.Machine.store (log_base tx + 2 + (2 * idx) + 1) value
  | exception Not_found ->
    let idx = Repro_util.Int_vec.length tx.vaddrs in
    if idx >= t.log_capacity then raise Log_overflow;
    Hashtbl.add tx.wmap addr idx;
    Repro_util.Int_vec.push tx.vaddrs addr;
    Repro_util.Int_vec.push tx.vvals value;
    let pos = log_base tx + 2 + (2 * idx) in
    t.m.Machine.store pos addr;
    t.m.Machine.store (pos + 1) value;
    t.m.Machine.store (pos + 2) 0 (* sentinel *);
    if t.flush_timing = Incremental && t.m.Machine.needs_flush then begin
      (* Flush lines the log head has moved past. *)
      let head_line = Layout.line_of_addr (pos + 1) in
      while tx.log_flushed_upto < head_line do
        clwb1 t (Layout.addr_of_line tx.log_flushed_upto);
        tx.log_flushed_upto <- tx.log_flushed_upto + 1
      done
    end

(* Commit-time acquisition of every orec covering the write set, then
   read-set validation.  Returns the write version, or -1 when
   validation failed (conflicts raise). *)
let redo_acquire_validate tx =
  let t = tx.ptm in
  Repro_util.Int_vec.iter
    (fun addr ->
      let oidx = orec_of t addr in
      if not (Hashtbl.mem tx.amap oidx) then begin
        let v = orec_get t oidx in
        if locked v then conflict tx "acquire-locked" addr;
        if version_of v > tx.rv && not (extend tx) then conflict tx "acquire-stale" addr;
        if not (orec_cas t oidx v (lock_word tx.tid)) then conflict tx "acquire-cas" addr;
        Hashtbl.add tx.amap oidx v;
        Repro_util.Int_vec.push tx.acquired oidx
      end)
    tx.vaddrs;
  let wv = clock_next t in
  if (wv > tx.rv + 1 || Repro_util.Int_vec.length tx.reads > 0) && not (validate_reads tx)
  then -1
  else wv

let redo_write_back tx n =
  let t = tx.ptm in
  for i = 0 to n - 1 do
    t.m.Machine.store (Repro_util.Int_vec.get tx.vaddrs i) (Repro_util.Int_vec.get tx.vvals i)
  done

let redo_try_commit tx =
  let t = tx.ptm in
  let n = Repro_util.Int_vec.length tx.vaddrs in
  let s = t.stats.(tx.tid) in
  if n = 0 then begin
    s.commits <- s.commits + 1;
    s.read_only_commits <- s.read_only_commits + 1;
    true
  end
  else begin
    match
      (match t.profiler with
      | None -> redo_acquire_validate tx
      | Some p -> Profile.with_phase p Profile.Validate (fun () -> redo_acquire_validate tx))
    with
    | -1 ->
      (match t.conflict_hook with Some f -> f "commit-validate" 0 | None -> ());
      release_acquired_to_previous tx;
      false
    | wv ->
      begin
        let base = log_base tx in
        let log_flushes = ref 0 and log_fences = ref 0 in
        (* 1. Persist the redo log (entries before status). *)
        let persist_log () =
          if t.m.Machine.needs_flush then
            if not t.coalesce then begin
              (* Naive per-entry ordering: every entry's line is written
                 back and fenced on its own, then the sentinel. *)
              for i = 0 to n - 1 do
                clwb1 t (base + 2 + (2 * i));
                fence t
              done;
              clwb1 t (base + 2 + (2 * n));
              fence t;
              log_flushes := n + 1;
              log_fences := n + 1
            end
            else begin
              (* Batched append: one vectored sweep over the log lines
                 (only the unflushed tail under Incremental timing), then
                 a single ordering fence. *)
              let first =
                match t.flush_timing with
                | At_commit -> Layout.line_of_addr (base + 2)
                | Incremental -> tx.log_flushed_upto
              in
              let last = Layout.line_of_addr (base + 2 + (2 * n)) in
              if first <= last then begin
                let k = last - first + 1 in
                ensure_scratch tx k;
                for i = 0 to k - 1 do
                  tx.lscratch.(i) <- Layout.addr_of_line (first + i)
                done;
                clwb_batch t tx.lscratch k;
                log_flushes := k
              end;
              fence t;
              log_fences := 1
            end
        in
        (match t.inject with
        | Some Reorder_log_apply ->
          (* Injected ordering bug: the durable commit point is raised
             before the log entries are persistent.  A crash in between
             makes recovery replay whatever stale entries the media
             still holds past the status line. *)
          write_status tx status_redo_committed;
          persist_log ()
        | _ ->
          persist_log ();
          (* 2. Durable commit point. *)
          write_status tx status_redo_committed);
        (* 3. Write back to home locations; data durable before the
           orecs are released. *)
        (match t.profiler with
        | None -> redo_write_back tx n
        | Some p -> Profile.with_phase p Profile.Write_back (fun () -> redo_write_back tx n));
        let data_flushes =
          flush_written_lines tx (fun f -> Repro_util.Int_vec.iter f tx.vaddrs)
        in
        (* 4. Make the writes visible, then retire the log. *)
        release_acquired_to tx (version_word wv);
        write_status tx status_idle;
        (* Savings ledger: the naive path issues clwb+fence per log
           entry, per sentinel and per written word, plus the two
           status updates — (2n+3) of each. *)
        (match t.profiler with
        | Some p when t.coalesce && t.m.Machine.needs_flush ->
          let naive = (2 * n) + 3 in
          let actual_flushes = !log_flushes + data_flushes + 2 in
          let actual_fences = !log_fences + 3 in
          Profile.note_saved p
            ~fences:(if t.m.Machine.needs_fence then max 0 (naive - actual_fences) else 0)
            ~flushes:(max 0 (naive - actual_flushes))
        | _ -> ());
        s.commits <- s.commits + 1;
        s.max_write_set <- max s.max_write_set n;
        s.max_log_lines <- max s.max_log_lines (((2 * n) + 1 + 7) / 8);
        true
      end
    | exception Conflict ->
      release_acquired_to_previous tx;
      false
  end

(* ---------- undo (orec-eager) ---------- *)

let undo_read tx addr =
  let t = tx.ptm in
  let oidx = orec_of t addr in
  let v = orec_get t oidx in
  if locked_by v tx.tid then t.m.Machine.load addr else read_shared tx addr

let undo_write tx addr value =
  assert (addr > 0);
  let t = tx.ptm in
  let oidx = orec_of t addr in
  let v = orec_get t oidx in
  if not (locked_by v tx.tid) then begin
    if locked v then conflict tx "write-locked" addr;
    if version_of v > tx.rv && not (extend tx) then conflict tx "write-stale" addr;
    if not (orec_cas t oidx v (lock_word tx.tid)) then conflict tx "write-cas" addr;
    Hashtbl.add tx.amap oidx v;
    Repro_util.Int_vec.push tx.acquired oidx
  end;
  if not (Hashtbl.mem tx.wmap addr) then begin
    (* First write to this word: persist (addr, old) before updating in
       place — the per-write flush + fence that makes undo O(W). *)
    if not tx.undo_status_written then begin
      (* Disarm the stale first entry left over from the previous
         transaction BEFORE raising the status: otherwise a crash in
         between makes recovery roll back with the old transaction's
         entries, undoing committed work. *)
      let first = log_base tx + 2 in
      t.m.Machine.store first 0;
      flush t first;
      fence t;
      write_status tx status_undo_active;
      tx.undo_status_written <- true
    end;
    let idx = Repro_util.Int_vec.length tx.uvec / 2 in
    if idx >= t.log_capacity then raise Log_overflow;
    let old = t.m.Machine.load addr in
    Hashtbl.add tx.wmap addr 0;
    Repro_util.Int_vec.push tx.uvec addr;
    Repro_util.Int_vec.push tx.uvec old;
    let pos = log_base tx + 2 + (2 * idx) in
    (* Arm the entry last: until [addr] lands, recovery's scan stops at
       the zero slot, so a crash amid these stores can never roll back
       with a stale [old] (the address slot may hold garbage reused
       from an earlier transaction). *)
    (* Injected ordering bug (undo arm of reorder-log-apply): the entry
       is armed without its own write-back and fence, so the in-place
       store below can become durable before the undo entry that would
       roll it back. *)
    let reordered = t.inject = Some Reorder_log_apply in
    if Layout.line_of_addr (pos + 2) <> Layout.line_of_addr pos then begin
      (* The sentinel lives on the next cache line.  Its line must be
         durable before the armed entry's line: flushes to distinct
         lines can persist out of order, and a surviving armed entry
         next to a stale non-zero successor would let recovery scan on
         into a previous transaction's entries. *)
      t.m.Machine.store (pos + 2) 0;
      if not reordered then begin
        flush t (pos + 2);
        fence t
      end;
      t.m.Machine.store (pos + 1) old;
      t.m.Machine.store pos addr;
      if not reordered then begin
        flush t pos;
        fence t
      end
    end
    else begin
      t.m.Machine.store (pos + 1) old;
      t.m.Machine.store (pos + 2) 0 (* sentinel *);
      t.m.Machine.store pos addr;
      if not reordered then begin
        flush_range t pos (pos + 2);
        fence t
      end
    end
  end;
  t.m.Machine.store addr value

let undo_rollback tx =
  let t = tx.ptm in
  (match t.profiler with
  | None -> Repro_util.Int_vec.iter_rev_pairs (fun addr old -> t.m.Machine.store addr old) tx.uvec
  | Some p ->
    Profile.with_phase p Profile.Write_back (fun () ->
        Repro_util.Int_vec.iter_rev_pairs (fun addr old -> t.m.Machine.store addr old) tx.uvec));
  if Repro_util.Int_vec.length tx.uvec > 0 then begin
    ignore
      (flush_written_lines tx (fun f ->
           Repro_util.Int_vec.iter_rev_pairs (fun addr _ -> f addr) tx.uvec)
        : int);
    write_status tx status_idle
  end;
  release_acquired_to_previous tx

let undo_try_commit tx =
  let t = tx.ptm in
  let s = t.stats.(tx.tid) in
  let n = Repro_util.Int_vec.length tx.uvec / 2 in
  if n = 0 then begin
    s.commits <- s.commits + 1;
    s.read_only_commits <- s.read_only_commits + 1;
    true
  end
  else begin
    let wv = clock_next t in
    ignore wv;
    let valid =
      match t.profiler with
      | None -> validate_reads tx
      | Some p -> Profile.with_phase p Profile.Validate (fun () -> validate_reads tx)
    in
    if not valid then begin
      (match t.conflict_hook with Some f -> f "commit-validate" 0 | None -> ());
      undo_rollback tx;
      false
    end
    else begin
      (* Data durable before the commit point (the status clear). *)
      let data_flushes =
        flush_written_lines tx (fun f ->
            Repro_util.Int_vec.iter_rev_pairs (fun addr _ -> f addr) tx.uvec)
      in
      write_status tx status_idle;
      (* Savings ledger: naive issues clwb+fence per written word. *)
      (match t.profiler with
      | Some p when t.coalesce && t.m.Machine.needs_flush ->
        Profile.note_saved p
          ~fences:(if t.m.Machine.needs_fence then max 0 (n - 1) else 0)
          ~flushes:(max 0 (n - data_flushes))
      | _ -> ());
      release_acquired_to tx (version_word wv);
      s.commits <- s.commits + 1;
      s.max_write_set <- max s.max_write_set n;
      s.max_log_lines <- max s.max_log_lines (((2 * n) + 1 + 7) / 8);
      true
    end
  end

(* ---------- HTM ("orec-htm", the paper's §V future-work mode) ----------

   Emulates a TSX-style hardware transaction under an eADR-class
   domain: writes stay speculative (volatile buffer, no persistent
   log); the commit publishes every written word as one indivisible
   machine event, at which point the lines are both visible and inside
   the durability domain.  Capacity is bounded like a real L1-resident
   write set; exceeding it (or repeated conflicts) falls back to the
   redo STM path for that attempt. *)

let htm_write_line_cap = 128
let htm_read_cap = 1024
let htm_fallback_attempts = 4

let htm_read tx addr =
  match Hashtbl.find tx.wmap addr with
  | idx -> Repro_util.Int_vec.get tx.vvals idx
  | exception Not_found ->
    if Repro_util.Int_vec.length tx.reads >= 2 * htm_read_cap then conflict tx "htm-read-cap" addr;
    read_shared tx addr

let htm_write tx addr value =
  assert (addr > 0);
  match Hashtbl.find tx.wmap addr with
  | idx -> Repro_util.Int_vec.set tx.vvals idx value
  | exception Not_found ->
    let line = Layout.line_of_addr addr in
    if not (Hashtbl.mem tx.wlines line) then begin
      if Hashtbl.length tx.wlines >= htm_write_line_cap then conflict tx "htm-write-cap" addr;
      Hashtbl.add tx.wlines line ()
    end;
    let idx = Repro_util.Int_vec.length tx.vaddrs in
    Hashtbl.add tx.wmap addr idx;
    Repro_util.Int_vec.push tx.vaddrs addr;
    Repro_util.Int_vec.push tx.vvals value

(* As [redo_acquire_validate], but conflicts abort the hardware
   transaction directly (no named-site hook). *)
let htm_acquire_validate tx =
  let t = tx.ptm in
  Repro_util.Int_vec.iter
    (fun addr ->
      let oidx = orec_of t addr in
      if not (Hashtbl.mem tx.amap oidx) then begin
        let v = orec_get t oidx in
        if locked v then raise Conflict;
        if version_of v > tx.rv && not (extend tx) then raise Conflict;
        if not (orec_cas t oidx v (lock_word tx.tid)) then raise Conflict;
        Hashtbl.add tx.amap oidx v;
        Repro_util.Int_vec.push tx.acquired oidx
      end)
    tx.vaddrs;
  let wv = clock_next t in
  if (wv > tx.rv + 1 || Repro_util.Int_vec.length tx.reads > 0) && not (validate_reads tx)
  then -1
  else wv

let htm_try_commit tx =
  let t = tx.ptm in
  let s = t.stats.(tx.tid) in
  let n = Repro_util.Int_vec.length tx.vaddrs in
  if n = 0 then begin
    s.commits <- s.commits + 1;
    s.read_only_commits <- s.read_only_commits + 1;
    true
  end
  else begin
    match
      (match t.profiler with
      | None -> htm_acquire_validate tx
      | Some p -> Profile.with_phase p Profile.Validate (fun () -> htm_acquire_validate tx))
    with
    | -1 ->
      release_acquired_to_previous tx;
      false
    | wv ->
      begin
        (* The indivisible hardware commit. *)
        let addrs = Array.make n 0 and values = Array.make n 0 in
        for i = 0 to n - 1 do
          addrs.(i) <- Repro_util.Int_vec.get tx.vaddrs i;
          values.(i) <- Repro_util.Int_vec.get tx.vvals i
        done;
        (match t.profiler with
        | None -> t.m.Machine.publish addrs values n
        | Some p ->
          Profile.with_phase p Profile.Write_back (fun () -> t.m.Machine.publish addrs values n));
        release_acquired_to tx (version_word wv);
        s.commits <- s.commits + 1;
        s.max_write_set <- max s.max_write_set n;
        true
      end
    | exception Conflict ->
      release_acquired_to_previous tx;
      false
  end

(* ---------- MOD (minimally ordered durable structures) ----------

   The MOD protocol (Haria et al., "MOD: Minimally Ordered Durable
   Datastructures"): updates are expressed as purely-functional shadow
   copies — every written word is either freshly allocated this
   transaction (shadow-class, unreachable from the published structure)
   or the one home-location word that atomically swings the structure's
   root to the new version (publish-class).  Commit then needs exactly
   one ordering point: write the shadow nodes in place, sweep their
   lines with vectored clwb, fence once, and store the 8-byte root.
   The trailing clwb of the root line is deliberately unfenced —
   recovery reads whichever root made it to media, giving {e buffered}
   durable linearizability (a WPQ-bounded committed suffix per
   structure can be lost; everything behind the durable root
   survives).

   Writes are buffered volatile until commit (like HTM).  A transaction
   that writes a {e second} distinct home-location word is not a MOD
   shape (bank transfers, multi-index TPC-C transactions): the buffer
   is materialized into the persistent redo log and the attempt
   continues on the redo path — correctness never depends on the
   workload fitting the pattern.  Shadow nodes need no ownership
   records: they are private until the root swap and immutable after
   it; conflict detection rides entirely on the root word's orec. *)

let mod_is_fresh tx addr =
  tx.in_alloc
  ||
  let n = Repro_util.Int_vec.length tx.fresh in
  let rec go i =
    i < n
    && ((addr >= Repro_util.Int_vec.get tx.fresh i
         && addr < Repro_util.Int_vec.get tx.fresh (i + 1))
       || go (i + 2))
  in
  go 0

let mod_read tx addr =
  match Hashtbl.find tx.wmap addr with
  | idx -> Repro_util.Int_vec.get tx.vvals idx
  | exception Not_found -> read_shared tx addr

(* Materialize the volatile write buffer into the persistent redo log
   and continue this attempt as a redo transaction.  The volatile index
   (wmap/vaddrs/vvals) is already in redo's shape, so only the log
   entries themselves need to be emitted. *)
let mod_fallback tx =
  let t = tx.ptm in
  let n = Repro_util.Int_vec.length tx.vaddrs in
  (* The volatile buffer is unbounded (shadow writes never touch the
     log); only a fallback must fit the persistent redo log. *)
  if n >= t.log_capacity then raise Log_overflow;
  let base = log_base tx in
  let emit () =
    for i = 0 to n - 1 do
      let pos = base + 2 + (2 * i) in
      t.m.Machine.store pos (Repro_util.Int_vec.get tx.vaddrs i);
      t.m.Machine.store (pos + 1) (Repro_util.Int_vec.get tx.vvals i)
    done;
    t.m.Machine.store (base + 2 + (2 * n)) 0 (* sentinel *)
  in
  (match t.profiler with
  | None -> emit ()
  | Some p -> Profile.with_phase p Profile.Log_append emit);
  tx.mode <- Redo

let mod_write tx addr value =
  assert (addr > 0);
  match Hashtbl.find tx.wmap addr with
  | idx -> Repro_util.Int_vec.set tx.vvals idx value
  | exception Not_found ->
    let fresh = mod_is_fresh tx addr in
    if (not fresh) && tx.pub_addr >= 0 && tx.pub_addr <> addr then begin
      (* Second distinct home-location word: not a single-root-swap
         shape.  Hand the whole attempt to the redo path. *)
      mod_fallback tx;
      redo_write tx addr value
    end
    else begin
      if not fresh then tx.pub_addr <- addr;
      let idx = Repro_util.Int_vec.length tx.vaddrs in
      Hashtbl.add tx.wmap addr idx;
      Repro_util.Int_vec.push tx.vaddrs addr;
      Repro_util.Int_vec.push tx.vvals value
    end

(* Only the publish word needs an ownership record: shadow nodes are
   private until the swap and immutable after.  Returns the write
   version, or -1 when validation failed (conflicts raise). *)
let mod_acquire_validate tx =
  let t = tx.ptm in
  if tx.pub_addr >= 0 then begin
    let addr = tx.pub_addr in
    let oidx = orec_of t addr in
    let v = orec_get t oidx in
    if locked v then conflict tx "acquire-locked" addr;
    if version_of v > tx.rv && not (extend tx) then conflict tx "acquire-stale" addr;
    if not (orec_cas t oidx v (lock_word tx.tid)) then conflict tx "acquire-cas" addr;
    Hashtbl.add tx.amap oidx v;
    Repro_util.Int_vec.push tx.acquired oidx
  end;
  let wv = clock_next t in
  if (wv > tx.rv + 1 || Repro_util.Int_vec.length tx.reads > 0) && not (validate_reads tx)
  then -1
  else wv

(* A single store charged to [Write_back] when profiling. *)
let prof_store t a v =
  match t.profiler with
  | None -> t.m.Machine.store a v
  | Some p -> Profile.with_phase p Profile.Write_back (fun () -> t.m.Machine.store a v)

let mod_shadow_stores tx n =
  let t = tx.ptm in
  for i = 0 to n - 1 do
    let a = Repro_util.Int_vec.get tx.vaddrs i in
    if a <> tx.pub_addr then t.m.Machine.store a (Repro_util.Int_vec.get tx.vvals i)
  done

let mod_try_commit tx =
  let t = tx.ptm in
  let s = t.stats.(tx.tid) in
  let n = Repro_util.Int_vec.length tx.vaddrs in
  if n = 0 then begin
    s.commits <- s.commits + 1;
    s.read_only_commits <- s.read_only_commits + 1;
    true
  end
  else begin
    match
      (match t.profiler with
      | None -> mod_acquire_validate tx
      | Some p -> Profile.with_phase p Profile.Validate (fun () -> mod_acquire_validate tx))
    with
    | -1 ->
      (match t.conflict_hook with Some f -> f "commit-validate" 0 | None -> ());
      release_acquired_to_previous tx;
      false
    | exception Conflict ->
      release_acquired_to_previous tx;
      false
    | wv ->
      begin
        (* 1. Shadow stores: every buffered word except the root. *)
        (match t.profiler with
        | None -> mod_shadow_stores tx n
        | Some p -> Profile.with_phase p Profile.Write_back (fun () -> mod_shadow_stores tx n));
        (* 2. One clwb sweep over the shadow lines, then THE fence. *)
        let sweep () =
          if not t.m.Machine.needs_flush then 0
          else if t.inject = Some Skip_fence then
            (* Injected missing ordering point: publish with no shadow
               sweep at all — neither clwbs nor the fence.  (Eliding
               only the sfence is unobservable in this machine model:
               clwb issue slots outpace the bounded WPQ drain, so the
               issued sweep is media-ordered before the root swap with
               or without the wait.  The reachable form of the classic
               "no flush epoch before the root swap" MOD bug is to skip
               the sweep wholesale; shadow nodes then reach media only
               by cache eviction.) *)
            0
          else begin
            let iter f =
              Repro_util.Int_vec.iter (fun a -> if a <> tx.pub_addr then f a) tx.vaddrs
            in
            let k =
              if t.coalesce then begin
                let k = gather_lines tx iter in
                clwb_batch t tx.lscratch k;
                k
              end
              else begin
                (* Naive A/B mode: no line dedup, but MOD's protocol is
                   still one fence — per-word ordering is not MOD. *)
                let issued = ref 0 in
                iter (fun a ->
                    incr issued;
                    clwb1 t a);
                !issued
              end
            in
            fence t;
            k
          end
        in
        (* 3. The 8-byte atomic root swap; its trailing clwb is
           unfenced — buffered durability, recovery reads the root. *)
        let publish () =
          if tx.pub_addr >= 0 then begin
            let a = tx.pub_addr in
            let pv = Repro_util.Int_vec.get tx.vvals (Hashtbl.find tx.wmap a) in
            match t.inject with
            | Some Tear_write ->
              (* Injected torn root swap: a byte-granular root write
                 (memcpy-style) where only the low byte landed before
                 the line was written back.  The corrective store fixes
                 the cache-visible word but is never flushed, so the
                 media keeps the torn pointer until an eviction. *)
              let old = t.m.Machine.raw_read a in
              let torn = old land lnot 0xFF lor (pv land 0xFF) in
              prof_store t a torn;
              flush t a;
              prof_store t a pv
            | _ ->
              prof_store t a pv;
              flush t a
          end
        in
        let data_flushes =
          match t.inject with
          | Some Reorder_log_apply ->
            (* Injected ordering bug: the root swings before the shadow
               nodes are durable — a crash in between recovers a root
               pointing at unswept garbage. *)
            publish ();
            sweep ()
          | _ ->
            let k = sweep () in
            publish ();
            k
        in
        (* 4. Make the swap visible to other threads. *)
        release_acquired_to tx (version_word wv);
        (* Savings ledger vs a per-word discipline (clwb + fence per
           written word, root included). *)
        (match t.profiler with
        | Some p when t.coalesce && t.m.Machine.needs_flush ->
          Profile.note_saved p
            ~fences:(if t.m.Machine.needs_fence then max 0 (n - 1) else 0)
            ~flushes:(max 0 (n - data_flushes - 1))
        | _ -> ());
        s.commits <- s.commits + 1;
        s.max_write_set <- max s.max_write_set n;
        true
      end
  end

(* ---------- public transactional API ---------- *)

let dispatch_read tx addr =
  match tx.mode with
  | Redo -> redo_read tx addr
  | Undo -> undo_read tx addr
  | Htm -> htm_read tx addr
  | Mod -> mod_read tx addr

let read tx addr =
  match tx.ptm.profiler with
  | None -> dispatch_read tx addr
  | Some p -> Profile.with_phase p Profile.Read_set (fun () -> dispatch_read tx addr)

let dispatch_write tx addr value =
  match tx.mode with
  | Redo -> redo_write tx addr value
  | Undo -> undo_write tx addr value
  | Htm -> htm_write tx addr value
  | Mod -> mod_write tx addr value

let write tx addr value =
  match tx.ptm.profiler with
  | None -> dispatch_write tx addr value
  | Some p -> Profile.with_phase p Profile.Log_append (fun () -> dispatch_write tx addr value)

let on_commit tx hook = tx.commit_hooks <- hook :: tx.commit_hooks

let on_abort tx hook = tx.abort_hooks <- hook :: tx.abort_hooks

let tx_ops tx =
  {
    Pmem.Alloc.txr = (fun addr -> read tx addr);
    txw = (fun addr v -> write tx addr v);
    on_commit = (fun hook -> on_commit tx hook);
    on_abort = (fun hook -> on_abort tx hook);
  }

let alloc tx words =
  match tx.mode with
  | Mod ->
    (* Allocator metadata writes (block header, free-list links) are
       shadow-class for MOD: the block is unreachable until the root
       swap, and recovery's allocator scan only trusts swept memory. *)
    tx.in_alloc <- true;
    let payload =
      match Pmem.Alloc.alloc tx.ptm.allocator (tx_ops tx) ~words with
      | payload ->
        tx.in_alloc <- false;
        payload
      | exception e ->
        tx.in_alloc <- false;
        raise e
    in
    Repro_util.Int_vec.push tx.fresh (payload - 1);
    Repro_util.Int_vec.push tx.fresh (payload + words);
    payload
  | Redo | Undo | Htm -> Pmem.Alloc.alloc tx.ptm.allocator (tx_ops tx) ~words

let free tx payload = Pmem.Alloc.free tx.ptm.allocator (tx_ops tx) payload

let abort_and_retry _tx = raise Conflict

let backoff tx =
  let cap = min (1 lsl (6 + min tx.attempts 8)) 32768 in
  match tx.ptm.profiler with
  | None -> tx.ptm.m.Machine.pause (64 + Repro_util.Rng.int tx.rng cap)
  | Some p ->
    Profile.with_phase p Profile.Backoff (fun () ->
        tx.ptm.m.Machine.pause (64 + Repro_util.Rng.int tx.rng cap))

(* Abort cleanup for a conflict discovered mid-execution (Conflict
   raised from read/write) or a user exception. *)
let abort_cleanup tx =
  (match tx.mode with
  | Redo | Htm | Mod -> release_acquired_to_previous tx (* only locked during commit *)
  | Undo -> undo_rollback tx);
  List.iter (fun hook -> hook ()) tx.abort_hooks;
  tx.ptm.stats.(tx.tid).aborts <- tx.ptm.stats.(tx.tid).aborts + 1

let rec atomic : 'a. t -> (tx -> 'a) -> 'a =
 fun t f ->
  let tx = tx_for t in
  if tx.depth > 0 then f tx
  else begin
    (match t.profiler with Some p -> Profile.txn_begin p | None -> ());
    tx.depth <- 1;
    tx.attempts <- 0;
    attempt t tx f
  end

(* Top-level rather than nested in [atomic]: the retry loop, finish and
   abort paths would otherwise be three closures allocated per
   transaction even on the conflict-free fast path. *)
and attempt : 'a. t -> tx -> (tx -> 'a) -> 'a =
 fun t tx f ->
  reset_tx tx;
  (* HTM gives up after a few hardware attempts and falls back to the
     (flush-free, under eADR) redo STM path. *)
  tx.mode <-
    (match t.alg with
    | Htm when tx.attempts >= htm_fallback_attempts -> Redo
    | a -> a);
  tx.rv <- clock_read t;
  match f tx with
  | value ->
    let committed =
      match tx.mode with
      | Redo -> redo_try_commit tx
      | Undo -> undo_try_commit tx
      | Htm -> htm_try_commit tx
      | Mod -> mod_try_commit tx
    in
    if committed then begin
      tx.depth <- 0;
      (* Close the profile envelope before commit hooks run: a hook may
         start a fresh transaction on this thread. *)
      (match t.profiler with Some p -> Profile.txn_end p ~committed:true | None -> ());
      let hooks = List.rev tx.commit_hooks in
      tx.commit_hooks <- [];
      List.iter (fun hook -> hook ()) hooks;
      value
    end
    else begin
      (* Commit-time conflict: orecs already released by try_commit. *)
      List.iter (fun hook -> hook ()) tx.abort_hooks;
      t.stats.(tx.tid).aborts <- t.stats.(tx.tid).aborts + 1;
      (match t.profiler with Some p -> Profile.note_abort p | None -> ());
      tx.attempts <- tx.attempts + 1;
      backoff tx;
      attempt t tx f
    end
  | exception Conflict ->
    abort_cleanup tx;
    (match t.profiler with Some p -> Profile.note_abort p | None -> ());
    tx.attempts <- tx.attempts + 1;
    backoff tx;
    attempt t tx f
  | exception Machine.Crashed ->
    (* Power failure: no cleanup — that is the point. *)
    raise Machine.Crashed
  | exception e ->
    abort_cleanup tx;
    tx.depth <- 0;
    (match t.profiler with Some p -> Profile.txn_end p ~committed:false | None -> ());
    raise e

(* ---------- statistics ---------- *)

module Stats = struct
  type ptm = t

  type t = {
    commits : int;
    aborts : int;
    read_only_commits : int;
    max_write_set : int;
    max_log_lines : int;
  }

  let get (p : ptm) =
    Array.fold_left
      (fun acc (s : thread_stats) ->
        {
          commits = acc.commits + s.commits;
          aborts = acc.aborts + s.aborts;
          read_only_commits = acc.read_only_commits + s.read_only_commits;
          max_write_set = max acc.max_write_set s.max_write_set;
          max_log_lines = max acc.max_log_lines s.max_log_lines;
        })
      { commits = 0; aborts = 0; read_only_commits = 0; max_write_set = 0; max_log_lines = 0 }
      p.stats

  let reset (p : ptm) =
    Array.iteri (fun i _ -> p.stats.(i) <- fresh_stats ()) p.stats

  let commits_per_abort t =
    if t.aborts = 0 then infinity else float_of_int t.commits /. float_of_int t.aborts
end
