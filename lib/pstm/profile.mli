(** Per-transaction phase profiler for the PTM runtime.

    Attributes every in-transaction virtual nanosecond to a named phase
    (read-set lookups, log appends, clwb issue, fence drain waits, WPQ
    backpressure stalls, write-back, validation, backoff, recovery),
    per thread, into streaming counters, per-phase latency histograms
    and a bounded span ring for trace export.

    The profiler only {e observes} the machine's clock ([Machine.now_ns]
    at phase boundaries) and never issues a timed operation, so
    attaching one adds zero virtual-time perturbation.  Within a
    transaction the phases partition time exactly: the per-thread sum
    of {!phase_ns} over all phases equals {!txn_ns}.

    All updates follow the deterministic DES interleaving, so profiles
    are bit-deterministic across repeated runs of the same
    configuration. *)

type phase =
  | Read_set  (** transactional reads (orec checks, loads, extension) *)
  | Log_append  (** write-path logging: redo/undo entries, status words *)
  | Clwb_issue  (** clwb issue cost, excluding WPQ backpressure *)
  | Fence_wait  (** sfence: drain wait for own WPQ entries *)
  | Wpq_stall  (** bounded-WPQ backpressure paid at clwb issue *)
  | Coalesce  (** pipelined commit sweep: interleaved write-back + flush of deduped lines *)
  | Write_back  (** redo in-place write-back / undo rollback stores / HTM publish *)
  | Validate  (** commit-time orec acquisition + read-set validation *)
  | Backoff  (** randomized backoff between attempts *)
  | Recovery  (** crash recovery (untimed; counted, 0 ns) *)
  | Snap_sweep  (** FAMS msync: journaling the dirty set into the snapshot log *)
  | Snap_publish  (** FAMS msync: durable commit-record publish *)
  | Snap_apply  (** FAMS msync: applying journaled units to the home image *)
  | Other  (** in-transaction time not claimed by any phase above *)

val all_phases : phase list
(** Fixed export order (determinism). *)

val phase_name : phase -> string
(** Stable export name, e.g. ["fence-wait"]. *)

type t

val create : ?span_capacity:int -> ?wpq_stall_probe:(int -> int) -> Machine.t -> t
(** [create m] builds a profiler observing [m]'s clock and thread ids.
    [span_capacity] bounds the span ring (default 65536; oldest spans
    are overwritten).  [wpq_stall_probe tid] should return the
    cumulative WPQ stall ns paid by [tid]
    (e.g. [Sim.wpq_stall_ns_of sim ~tid]); when given, clwb slices are
    split into {!Clwb_issue} and {!Wpq_stall}. *)

(** {1 Recording} (called by the instrumented runtime) *)

val txn_begin : t -> unit
val txn_end : t -> committed:bool -> unit

val note_abort : t -> unit
(** Count one failed attempt of the current thread's transaction. *)

val note_saved : t -> fences:int -> flushes:int -> unit
(** Credit the coalescing ledger of the current thread: [fences]
    ordering points and [flushes] clwbs that a naive per-entry commit
    would have issued but this commit elided.  Bookkeeping only — no
    clock sample, so calling it perturbs nothing. *)

val with_phase : t -> phase -> (unit -> 'a) -> 'a
(** Scope [f]'s execution to [phase] (nestable; exception-safe). *)

val leaf_flush : t -> flushes:int -> (unit -> 'a) -> 'a
(** Run [f] (a clwb or a run of [flushes] clwbs), splitting the slice
    into {!Wpq_stall} (probe delta) and {!Clwb_issue} (remainder). *)

val leaf_coalesce : t -> flushes:int -> (unit -> 'a) -> 'a
(** Like {!leaf_flush} but for the batched commit sweep: the issue
    remainder is charged to {!Coalesce} instead of {!Clwb_issue}. *)

val leaf_fence : t -> (unit -> 'a) -> 'a
(** Run [f] (one sfence), charging the slice to {!Fence_wait}. *)

val leaf_flush_in : t -> phase -> flushes:int -> (unit -> 'a) -> 'a
(** Like {!leaf_flush} with an explicit issue phase — the FAMS sweep
    and apply flushes charge {!Snap_sweep} / {!Snap_apply} while the
    backpressure share still lands in {!Wpq_stall}. *)

val leaf_fence_in : t -> phase -> (unit -> 'a) -> 'a
(** Like {!leaf_fence} with an explicit phase (fence count and drain
    wait are attributed to it). *)

(** {1 Read-out} *)

val tids : t -> int list
(** Threads that recorded anything, ascending. *)

val phase_ns : t -> tid:int -> phase -> int
val phase_count : t -> tid:int -> phase -> int
val phase_fences : t -> tid:int -> phase -> int
val phase_flushes : t -> tid:int -> phase -> int
val phase_hist : t -> tid:int -> phase -> Repro_util.Histogram.t

val txn_ns : t -> tid:int -> int
(** Total in-transaction virtual time; equals the sum of [phase_ns]
    over {!all_phases}. *)

val total_phase_ns : t -> tid:int -> int
val commits : t -> tid:int -> int
val aborts : t -> tid:int -> int

val fences_saved : t -> tid:int -> int
(** Fences a naive commit path would have issued beyond the actual
    count — the accumulated {!note_saved} credit. *)

val flushes_saved : t -> tid:int -> int
(** Likewise for clwbs elided by line dedup and batching. *)

val txn_hist : t -> tid:int -> Repro_util.Histogram.t

val merged_phase_hist : t -> phase -> Repro_util.Histogram.t
(** All threads' slice histograms for [phase], merged. *)

type span = { tid : int; label : string; start_ns : int; stop_ns : int }

val spans : t -> span list
(** Retained spans, oldest first (phase slices plus ["txn"] /
    ["txn-failed"] transaction envelopes). *)

val spans_recorded : t -> int
val spans_dropped : t -> int

val spans_since : t -> int -> span list
(** [spans_since t mark] returns the retained spans recorded at or
    after [mark] (a value previously read from {!spans_recorded}),
    oldest first.  Lets a caller bracket an operation — sample
    {!spans_recorded}, run it, read back exactly the slices it
    produced — without copying the whole ring.  Spans that have been
    overwritten since [mark] are silently gone. *)
