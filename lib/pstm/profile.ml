(* Per-transaction phase profiler.

   Pure observation: it samples the machine's virtual clock at phase
   boundaries and never calls a timed operation itself, so attaching a
   profiler perturbs no simulated time.  Accounting invariant: inside a
   transaction every instant is charged to exactly one phase (the
   attempt runs on a per-thread phase stack whose base is [Other]), so
   per-thread phase nanoseconds sum to the thread's in-transaction
   virtual time exactly.

   Determinism: counters and histograms are updated in program order of
   the (deterministic) DES interleaving; spans land in a ring buffer in
   finish order.  Same (spec, model, algorithm, threads, seed) runs
   produce bit-identical profiles. *)

module Histogram = Repro_util.Histogram

type phase =
  | Read_set
  | Log_append
  | Clwb_issue
  | Fence_wait
  | Wpq_stall
  | Coalesce
  | Write_back
  | Validate
  | Backoff
  | Recovery
  (* FAMS msync phases: dirty-set journaling sweep, commit-record
     publish, journal-to-home apply. *)
  | Snap_sweep
  | Snap_publish
  | Snap_apply
  | Other

let phase_index = function
  | Read_set -> 0
  | Log_append -> 1
  | Clwb_issue -> 2
  | Fence_wait -> 3
  | Wpq_stall -> 4
  | Coalesce -> 5
  | Write_back -> 6
  | Validate -> 7
  | Backoff -> 8
  | Recovery -> 9
  | Snap_sweep -> 10
  | Snap_publish -> 11
  | Snap_apply -> 12
  | Other -> 13

let nphases = 14

let all_phases =
  [
    Read_set; Log_append; Clwb_issue; Fence_wait; Wpq_stall; Coalesce; Write_back; Validate;
    Backoff; Recovery; Snap_sweep; Snap_publish; Snap_apply; Other;
  ]

let phase_name = function
  | Read_set -> "read-set"
  | Log_append -> "log-append"
  | Clwb_issue -> "clwb-issue"
  | Fence_wait -> "fence-wait"
  | Wpq_stall -> "wpq-stall"
  | Coalesce -> "coalesce"
  | Write_back -> "write-back"
  | Validate -> "validate"
  | Backoff -> "backoff"
  | Recovery -> "recovery"
  | Snap_sweep -> "snap-sweep"
  | Snap_publish -> "snap-publish"
  | Snap_apply -> "snap-apply"
  | Other -> "other"

(* Span ring labels: phase indices, then the two transaction outcomes. *)
let label_txn = nphases
let label_txn_failed = nphases + 1

let label_name i =
  if i = label_txn then "txn"
  else if i = label_txn_failed then "txn-failed"
  else phase_name (List.nth all_phases i)

type per_thread = {
  ns : int array; (* per-phase accumulated virtual ns *)
  count : int array; (* per-phase slice count *)
  fences : int array; (* sfences issued while in the phase *)
  flushes : int array; (* clwbs issued while in the phase *)
  hist : Histogram.t array; (* per-phase slice-duration histogram *)
  txn_hist : Histogram.t; (* whole-transaction durations *)
  mutable stack : int list; (* phase stack, top first; [] outside txns *)
  mutable last_switch_ns : int;
  mutable txn_start_ns : int;
  mutable txn_ns : int;
  mutable commits : int;
  mutable aborts : int; (* failed attempts *)
  mutable fences_saved : int; (* ordering points elided by coalescing *)
  mutable flushes_saved : int; (* clwbs elided by line dedup/batching *)
}

type span = { tid : int; label : string; start_ns : int; stop_ns : int }

type t = {
  now_ns : unit -> float;
  cur_tid : unit -> int;
  wpq_stall_probe : (int -> int) option;
  mutable slots : per_thread option array;
  (* span ring, flat arrays in finish order *)
  sp_tid : int array;
  sp_label : int array;
  sp_start : int array;
  sp_stop : int array;
  sp_capacity : int;
  mutable sp_next : int; (* total spans ever recorded *)
}

let create ?(span_capacity = 1 lsl 16) ?wpq_stall_probe (m : Machine.t) =
  {
    now_ns = m.Machine.now_ns;
    cur_tid = m.Machine.tid;
    wpq_stall_probe;
    slots = Array.make 8 None;
    sp_tid = Array.make (max 1 span_capacity) 0;
    sp_label = Array.make (max 1 span_capacity) 0;
    sp_start = Array.make (max 1 span_capacity) 0;
    sp_stop = Array.make (max 1 span_capacity) 0;
    sp_capacity = max 1 span_capacity;
    sp_next = 0;
  }

let now t = int_of_float (t.now_ns ())

let fresh_thread () =
  {
    ns = Array.make nphases 0;
    count = Array.make nphases 0;
    fences = Array.make nphases 0;
    flushes = Array.make nphases 0;
    hist = Array.init nphases (fun _ -> Histogram.create ());
    txn_hist = Histogram.create ();
    stack = [];
    last_switch_ns = 0;
    txn_start_ns = 0;
    txn_ns = 0;
    commits = 0;
    aborts = 0;
    fences_saved = 0;
    flushes_saved = 0;
  }

let slot t tid =
  if tid >= Array.length t.slots then begin
    let bigger = Array.make (2 * (tid + 1)) None in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end;
  match t.slots.(tid) with
  | Some pt -> pt
  | None ->
    let pt = fresh_thread () in
    t.slots.(tid) <- Some pt;
    pt

let find_slot t tid = if tid < Array.length t.slots then t.slots.(tid) else None

let push_span t tid label start stop =
  let i = t.sp_next mod t.sp_capacity in
  t.sp_tid.(i) <- tid;
  t.sp_label.(i) <- label;
  t.sp_start.(i) <- start;
  t.sp_stop.(i) <- stop;
  t.sp_next <- t.sp_next + 1

(* Charge the time since the last boundary to the top-of-stack phase. *)
let settle pt at =
  (match pt.stack with
  | idx :: _ -> pt.ns.(idx) <- pt.ns.(idx) + (at - pt.last_switch_ns)
  | [] -> ());
  pt.last_switch_ns <- at

(* ---------- transaction lifecycle ---------- *)

let txn_begin t =
  let tid = t.cur_tid () in
  let pt = slot t tid in
  let at = now t in
  pt.txn_start_ns <- at;
  pt.last_switch_ns <- at;
  pt.stack <- [ phase_index Other ];
  pt.count.(phase_index Other) <- pt.count.(phase_index Other) + 1

let txn_end t ~committed =
  let tid = t.cur_tid () in
  let pt = slot t tid in
  let at = now t in
  settle pt at;
  pt.stack <- [];
  let dur = at - pt.txn_start_ns in
  pt.txn_ns <- pt.txn_ns + dur;
  Histogram.record pt.txn_hist dur;
  if committed then pt.commits <- pt.commits + 1;
  push_span t tid (if committed then label_txn else label_txn_failed) pt.txn_start_ns at

let note_abort t =
  let pt = slot t (t.cur_tid ()) in
  pt.aborts <- pt.aborts + 1

(* Credit side of the coalescing ledger: how many clwbs/sfences a naive
   per-entry commit would have issued beyond what this commit actually
   did.  Pure bookkeeping — no clock sample, no timed operation. *)
let note_saved t ~fences ~flushes =
  let pt = slot t (t.cur_tid ()) in
  pt.fences_saved <- pt.fences_saved + fences;
  pt.flushes_saved <- pt.flushes_saved + flushes

(* ---------- phase scoping ---------- *)

let with_phase t phase f =
  let tid = t.cur_tid () in
  let pt = slot t tid in
  let idx = phase_index phase in
  let start = now t in
  settle pt start;
  pt.stack <- idx :: pt.stack;
  pt.count.(idx) <- pt.count.(idx) + 1;
  let finish () =
    let stop = now t in
    settle pt stop;
    pt.stack <- (match pt.stack with _ :: rest -> rest | [] -> []);
    Histogram.record pt.hist.(idx) (stop - start);
    push_span t tid idx start stop
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* A clwb (or a run of clwbs): the slice splits into WPQ backpressure
   (measured via the per-tid stall probe delta) charged to [Wpq_stall]
   and the remainder charged to the issue phase — [Clwb_issue] for
   plain flushes, [Coalesce] for the batched commit sweep. *)
let leaf_flush_into t issue_phase ~flushes f =
  let tid = t.cur_tid () in
  let pt = slot t tid in
  let ci = phase_index issue_phase and wi = phase_index Wpq_stall in
  let start = now t in
  settle pt start;
  let s0 = match t.wpq_stall_probe with Some probe -> probe tid | None -> 0 in
  let finish () =
    let stop = now t in
    let dt = stop - start in
    let stall =
      match t.wpq_stall_probe with Some probe -> max 0 (min (probe tid - s0) dt) | None -> 0
    in
    pt.ns.(ci) <- pt.ns.(ci) + (dt - stall);
    pt.count.(ci) <- pt.count.(ci) + 1;
    pt.flushes.(ci) <- pt.flushes.(ci) + flushes;
    Histogram.record pt.hist.(ci) (dt - stall);
    if stall > 0 then begin
      pt.ns.(wi) <- pt.ns.(wi) + stall;
      pt.count.(wi) <- pt.count.(wi) + 1;
      Histogram.record pt.hist.(wi) stall
    end;
    pt.last_switch_ns <- stop;
    push_span t tid ci start stop
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let leaf_flush t ~flushes f = leaf_flush_into t Clwb_issue ~flushes f
let leaf_coalesce t ~flushes f = leaf_flush_into t Coalesce ~flushes f
let leaf_flush_in t phase ~flushes f = leaf_flush_into t phase ~flushes f

let leaf_fence_in t phase f =
  let tid = t.cur_tid () in
  let pt = slot t tid in
  let fi = phase_index phase in
  let start = now t in
  settle pt start;
  let finish () =
    let stop = now t in
    pt.ns.(fi) <- pt.ns.(fi) + (stop - start);
    pt.count.(fi) <- pt.count.(fi) + 1;
    pt.fences.(fi) <- pt.fences.(fi) + 1;
    Histogram.record pt.hist.(fi) (stop - start);
    pt.last_switch_ns <- stop;
    push_span t tid fi start stop
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let leaf_fence t f = leaf_fence_in t Fence_wait f

(* ---------- read-out ---------- *)

let tids t =
  let acc = ref [] in
  for tid = Array.length t.slots - 1 downto 0 do
    if t.slots.(tid) <> None then acc := tid :: !acc
  done;
  !acc

let phase_ns t ~tid phase =
  match find_slot t tid with None -> 0 | Some pt -> pt.ns.(phase_index phase)

let phase_count t ~tid phase =
  match find_slot t tid with None -> 0 | Some pt -> pt.count.(phase_index phase)

let phase_fences t ~tid phase =
  match find_slot t tid with None -> 0 | Some pt -> pt.fences.(phase_index phase)

let phase_flushes t ~tid phase =
  match find_slot t tid with None -> 0 | Some pt -> pt.flushes.(phase_index phase)

let phase_hist t ~tid phase =
  match find_slot t tid with
  | None -> Histogram.create ()
  | Some pt -> pt.hist.(phase_index phase)

let txn_ns t ~tid = match find_slot t tid with None -> 0 | Some pt -> pt.txn_ns
let commits t ~tid = match find_slot t tid with None -> 0 | Some pt -> pt.commits
let aborts t ~tid = match find_slot t tid with None -> 0 | Some pt -> pt.aborts
let fences_saved t ~tid = match find_slot t tid with None -> 0 | Some pt -> pt.fences_saved
let flushes_saved t ~tid = match find_slot t tid with None -> 0 | Some pt -> pt.flushes_saved

let txn_hist t ~tid =
  match find_slot t tid with None -> Histogram.create () | Some pt -> pt.txn_hist

let total_phase_ns t ~tid =
  match find_slot t tid with None -> 0 | Some pt -> Array.fold_left ( + ) 0 pt.ns

let merged_phase_hist t phase =
  Histogram.merge_list (List.map (fun tid -> phase_hist t ~tid phase) (tids t))

let spans_recorded t = t.sp_next
let spans_dropped t = max 0 (t.sp_next - t.sp_capacity)

let spans_from t mark =
  let kept = min (min t.sp_next t.sp_capacity) (max 0 (t.sp_next - mark)) in
  let first = t.sp_next - kept in
  List.init kept (fun i ->
      let j = (first + i) mod t.sp_capacity in
      {
        tid = t.sp_tid.(j);
        label = label_name t.sp_label.(j);
        start_ns = t.sp_start.(j);
        stop_ns = t.sp_stop.(j);
      })

let spans t = spans_from t 0
let spans_since t mark = spans_from t mark
