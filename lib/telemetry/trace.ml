(* Span-based causal tracing on the simulator's virtual clock.

   A span is (trace, parent, kind, tid, start_ns, stop_ns).  Spans are
   recorded into flat growable arrays (no boxing on the hot path) with
   kinds interned to small ints; every read-out reconstructs the kind
   name, so digests and exports depend only on span content, never on
   interning order of a particular store.

   Recording is pure observation: span instants are values the caller
   already read from the machine's clock, so an enabled trace perturbs
   no virtual time.  Two stores are equal (same digest) iff they hold
   the same spans in the same order — the determinism currency of the
   @trace gate.

   Parent linkage: [root_parent] (-1) marks a span whose parent is the
   root span of its trace.  Per-shard stores record against
   [root_parent] because the root ("request") spans only exist in the
   service-global store; {!merge_into} rewrites local parents by offset
   and resolves [root_parent] through the caller's [root_for]. *)

module Vec = Repro_util.Int_vec
module Histogram = Repro_util.Histogram

let root_parent = -1

type t = {
  mutable kind_names : string array;
  mutable nkinds : int;
  kind_ids : (string, int) Hashtbl.t;
  v_trace : Vec.t;
  v_parent : Vec.t;
  v_kind : Vec.t;
  v_tid : Vec.t;
  v_start : Vec.t;
  v_stop : Vec.t;
}

let create () =
  {
    kind_names = Array.make 16 "";
    nkinds = 0;
    kind_ids = Hashtbl.create 32;
    v_trace = Vec.create ();
    v_parent = Vec.create ();
    v_kind = Vec.create ();
    v_tid = Vec.create ();
    v_start = Vec.create ();
    v_stop = Vec.create ();
  }

let intern t name =
  match Hashtbl.find_opt t.kind_ids name with
  | Some i -> i
  | None ->
    if t.nkinds = Array.length t.kind_names then begin
      let bigger = Array.make (2 * t.nkinds) "" in
      Array.blit t.kind_names 0 bigger 0 t.nkinds;
      t.kind_names <- bigger
    end;
    let i = t.nkinds in
    t.kind_names.(i) <- name;
    t.nkinds <- i + 1;
    Hashtbl.add t.kind_ids name i;
    i

let length t = Vec.length t.v_trace

let span t ~trace ~parent ~kind ~tid ~start_ns ~stop_ns =
  let id = length t in
  Vec.push t.v_trace trace;
  Vec.push t.v_parent parent;
  Vec.push t.v_kind (intern t kind);
  Vec.push t.v_tid tid;
  Vec.push t.v_start start_ns;
  Vec.push t.v_stop stop_ns;
  id

type span_view = {
  s_trace : int;
  s_parent : int;
  s_kind : string;
  s_tid : int;
  s_start_ns : int;
  s_stop_ns : int;
}

let get t i =
  {
    s_trace = Vec.get t.v_trace i;
    s_parent = Vec.get t.v_parent i;
    s_kind = t.kind_names.(Vec.get t.v_kind i);
    s_tid = Vec.get t.v_tid i;
    s_start_ns = Vec.get t.v_start i;
    s_stop_ns = Vec.get t.v_stop i;
  }

let iter f t =
  for i = 0 to length t - 1 do
    f i (get t i)
  done

let merge_into ~src ~dst ~root_for =
  let base = length dst in
  for i = 0 to length src - 1 do
    let s = get src i in
    let parent =
      if s.s_parent >= 0 then s.s_parent + base else root_for s.s_trace
    in
    ignore
      (span dst ~trace:s.s_trace ~parent ~kind:s.s_kind ~tid:s.s_tid ~start_ns:s.s_start_ns
         ~stop_ns:s.s_stop_ns)
  done

(* ---------- digest (determinism currency) ---------- *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let digest t =
  let h = ref fnv_offset in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  let mix_string s = String.iter (fun c -> mix (Char.code c)) s in
  iter
    (fun _ s ->
      mix s.s_trace;
      mix s.s_parent;
      mix_string s.s_kind;
      mix s.s_tid;
      mix s.s_start_ns;
      mix s.s_stop_ns)
    t;
  Printf.sprintf "%016Lx" !h

(* ---------- roots and accounting ---------- *)

(* A root is a span recorded with no parent on a real trace; the
   service records exactly one per request ("request", arrival →
   completion).  Spans on trace -1 (service-level: recovery, restart
   gap) never join request accounting. *)
let is_root s = s.s_parent = root_parent && s.s_trace >= 0 && s.s_kind = "request"

let roots t =
  let acc = ref [] in
  iter (fun i s -> if is_root s then acc := (i, s) :: !acc) t;
  List.rev !acc

let latency_hist t =
  let h = Histogram.create () in
  List.iter (fun (_, s) -> Histogram.record h (s.s_stop_ns - s.s_start_ns)) (roots t);
  h

(* Exclusive time: a span's own duration minus its direct children's
   durations, floored at 0 (overlapping children — a multi-key get
   fanned across shards — can cover more than the parent). *)
let child_sums t =
  let n = length t in
  let sums = Array.make n 0 in
  iter
    (fun _ s ->
      if s.s_parent >= 0 then
        sums.(s.s_parent) <- sums.(s.s_parent) + (s.s_stop_ns - s.s_start_ns))
    t;
  sums

let accounting t =
  let sums = child_sums t in
  let attributed = Hashtbl.create 256 in
  iter
    (fun i s ->
      if s.s_trace >= 0 then begin
        let excl = max 0 (s.s_stop_ns - s.s_start_ns - sums.(i)) in
        let prev = Option.value (Hashtbl.find_opt attributed s.s_trace) ~default:0 in
        Hashtbl.replace attributed s.s_trace (prev + excl)
      end)
    t;
  List.sort compare
    (List.map
       (fun (_, s) ->
         ( s.s_trace,
           s.s_stop_ns - s.s_start_ns,
           Option.value (Hashtbl.find_opt attributed s.s_trace) ~default:0 ))
       (roots t))

(* ---------- blame: exclusive time per span kind, percentile band ---------- *)

type blame_row = { bkind : string; bspans : int; bexclusive_ns : int; bshare : float }

type blame = {
  brequests : int;  (* requests inside the band *)
  bband_lo_ns : int;
  bband_hi_ns : int;
  btotal_latency_ns : int;
  battributed_ns : int;
  bslack_ns : int;
  brows : blame_row list;
}

let blame t ~lo_pct ~hi_pct =
  let rts =
    List.sort
      (fun (_, a) (_, b) ->
        match compare (a.s_stop_ns - a.s_start_ns) (b.s_stop_ns - b.s_start_ns) with
        | 0 -> compare a.s_trace b.s_trace
        | c -> c)
      (roots t)
  in
  let n = List.length rts in
  let lo_rank = max 1 (min n (1 + int_of_float (lo_pct /. 100.0 *. float_of_int n))) in
  let hi_rank = max lo_rank (min n (int_of_float (ceil (hi_pct /. 100.0 *. float_of_int n)))) in
  let selected = Hashtbl.create 64 in
  let band_lo = ref 0 and band_hi = ref 0 and total_latency = ref 0 in
  List.iteri
    (fun i (_, s) ->
      let rank = i + 1 in
      if rank >= lo_rank && rank <= hi_rank then begin
        let d = s.s_stop_ns - s.s_start_ns in
        if Hashtbl.length selected = 0 then band_lo := d;
        band_hi := max !band_hi d;
        total_latency := !total_latency + d;
        Hashtbl.replace selected s.s_trace ()
      end)
    rts;
  let sums = child_sums t in
  let per_kind = Hashtbl.create 32 in
  let attributed = ref 0 in
  iter
    (fun i s ->
      if s.s_trace >= 0 && Hashtbl.mem selected s.s_trace then begin
        let excl = max 0 (s.s_stop_ns - s.s_start_ns - sums.(i)) in
        attributed := !attributed + excl;
        let spans0, ns0 =
          Option.value (Hashtbl.find_opt per_kind s.s_kind) ~default:(0, 0)
        in
        Hashtbl.replace per_kind s.s_kind (spans0 + 1, ns0 + excl)
      end)
    t;
  let rows =
    Hashtbl.fold
      (fun kind (spans, ns) acc ->
        {
          bkind = kind;
          bspans = spans;
          bexclusive_ns = ns;
          bshare =
            (if !attributed > 0 then 100.0 *. float_of_int ns /. float_of_int !attributed
             else 0.0);
        }
        :: acc)
      per_kind []
  in
  let rows =
    List.sort
      (fun a b ->
        match compare b.bexclusive_ns a.bexclusive_ns with
        | 0 -> compare a.bkind b.bkind
        | c -> c)
      rows
  in
  {
    brequests = Hashtbl.length selected;
    bband_lo_ns = !band_lo;
    bband_hi_ns = !band_hi;
    btotal_latency_ns = !total_latency;
    battributed_ns = !attributed;
    bslack_ns = !attributed - !total_latency;
    brows = rows;
  }

(* ---------- Perfetto / Chrome trace_event export ---------- *)

let us ns = float_of_int ns /. 1000.0

(* Request spans live on pid 1 (pid 0 is the PTM profile), one track
   per trace so backlogged requests on one connection never produce
   mis-nested slices; service-level spans (trace -1) get a per-shard
   service track. *)
let chrome_events t =
  let acc = ref [] in
  iter
    (fun _ s ->
      let tid, cat =
        if s.s_trace >= 0 then (s.s_trace, if s.s_kind = "request" then "request" else "span")
        else (1_000_000 + s.s_tid, "service")
      in
      acc :=
        Printf.sprintf
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace\":%d,\"tid\":%d}}"
          tid s.s_kind cat (us s.s_start_ns)
          (us (s.s_stop_ns - s.s_start_ns))
          s.s_trace s.s_tid
        :: !acc)
    t;
  List.rev !acc

let chrome_trace t =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Buffer.add_string buf
    "\n{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"kvserve requests\"}}";
  List.iter
    (fun ev ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf ev)
    (chrome_events t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
