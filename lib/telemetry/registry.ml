(* Unified metrics registry: named counters / gauges / histograms with
   labels, one definition feeding three exports (Prometheus text, the
   kvserve `stats` verb, JSONL).

   Determinism contract: exports iterate metrics sorted by (name,
   labels), values render as %d integers or %.6g floats, and empty
   histograms render count 0 with no quantiles — so two registries fed
   the same updates produce byte-identical text. *)

module Histogram = Repro_util.Histogram

type kind = Counter | Gauge | Hist

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;  (* sorted by label name *)
  kind : kind;
  mutable ival : int;
  mutable fval : float;
  mutable is_float : bool;
  hist : Histogram.t;
}

type t = { tbl : (string * (string * string) list, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let find_or_add t ~kind ~help ~labels name =
  let labels = List.sort compare labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
    let m =
      {
        name;
        help;
        labels;
        kind;
        ival = 0;
        fval = 0.0;
        is_float = false;
        hist = Histogram.create ();
      }
    in
    Hashtbl.add t.tbl key m;
    m

let counter t ?(help = "") ?(labels = []) name = find_or_add t ~kind:Counter ~help ~labels name
let gauge t ?(help = "") ?(labels = []) name = find_or_add t ~kind:Gauge ~help ~labels name
let histogram t ?(help = "") ?(labels = []) name = find_or_add t ~kind:Hist ~help ~labels name

let inc m n = m.ival <- m.ival + n

let set_int m v =
  m.ival <- v;
  m.is_float <- false

let set_float m v =
  m.fval <- v;
  m.is_float <- true

let observe m v = Histogram.record m.hist v
let observe_hist m h = Histogram.merge_into ~src:h ~dst:m.hist

let value m = if m.is_float then m.fval else float_of_int m.ival
let hist m = m.hist

let metrics t =
  List.sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    (Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl [])

(* ---------- rendering ---------- *)

let float_str v = if Float.is_finite v then Printf.sprintf "%.6g" v else "0"
let scalar_str m = if m.is_float then float_str m.fval else string_of_int m.ival

let label_str labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (Export.json_escape v)) labels)
    ^ "}"

let quantiles = [ ("0.5", 50.0); ("0.95", 95.0); ("0.99", 99.0) ]

let to_prometheus t =
  let b = Buffer.create 2048 in
  let last_header = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_header then begin
        last_header := m.name;
        if m.help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        let ty =
          match m.kind with Counter -> "counter" | Gauge -> "gauge" | Hist -> "summary"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" m.name ty)
      end;
      match m.kind with
      | Counter | Gauge ->
        Buffer.add_string b (Printf.sprintf "%s%s %s\n" m.name (label_str m.labels) (scalar_str m))
      | Hist ->
        let n = Histogram.count m.hist in
        if n > 0 then
          List.iter
            (fun (q, p) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" m.name
                   (label_str (m.labels @ [ ("quantile", q) ]))
                   (float_str (Histogram.percentile m.hist p))))
            quantiles;
        Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" m.name (label_str m.labels) n);
        if n > 0 then
          Buffer.add_string b
            (Printf.sprintf "%s_max%s %d\n" m.name (label_str m.labels)
               (Histogram.max_value m.hist)))
    (metrics t);
  Buffer.contents b

(* memcached `stats` pairs: flat token names (no spaces, no braces) —
   label values joined with '.', histogram statistics suffixed. *)
let stats_pairs t =
  let flat m suffix =
    String.concat "." ((m.name :: List.map snd m.labels) @ suffix)
  in
  List.concat_map
    (fun m ->
      match m.kind with
      | Counter | Gauge -> [ (flat m [], scalar_str m) ]
      | Hist ->
        let n = Histogram.count m.hist in
        if n = 0 then [ (flat m [ "count" ], "0") ]
        else
          (flat m [ "count" ], string_of_int n)
          :: List.map
               (fun (label, p) ->
                 (flat m [ label ], float_str (Histogram.percentile m.hist p)))
               [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ]
          @ [ (flat m [ "max" ], string_of_int (Histogram.max_value m.hist)) ])
    (metrics t)

let jsonl t =
  let b = Buffer.create 2048 in
  List.iter
    (fun m ->
      let labels =
        if m.labels = [] then ""
        else
          Printf.sprintf ",\"labels\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" k (Export.json_escape v))
                  m.labels))
      in
      (match m.kind with
      | Counter | Gauge ->
        Buffer.add_string b
          (Printf.sprintf "{\"kind\":\"metric\",\"name\":\"%s\"%s,\"value\":%s}\n" m.name labels
             (scalar_str m))
      | Hist ->
        let n = Histogram.count m.hist in
        if n = 0 then
          Buffer.add_string b
            (Printf.sprintf "{\"kind\":\"metric\",\"name\":\"%s\"%s,\"count\":0}\n" m.name labels)
        else
          Buffer.add_string b
            (Printf.sprintf
               "{\"kind\":\"metric\",\"name\":\"%s\"%s,\"count\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%d}\n"
               m.name labels n
               (float_str (Histogram.percentile m.hist 50.0))
               (float_str (Histogram.percentile m.hist 95.0))
               (float_str (Histogram.percentile m.hist 99.0))
               (Histogram.max_value m.hist))))
    (metrics t);
  Buffer.contents b

(* ---------- standard publishers ---------- *)

let publish_sim_stats t ?(labels = []) (s : Memsim.Sim.Stats.t) =
  List.iter
    (fun (field, v) ->
      set_int (gauge t ~help:"simulated machine counter" ~labels ("sim_" ^ field)) v)
    (Memsim.Sim.Stats.fields s)

let publish_ptm_stats t ?(labels = []) (s : Pstm.Ptm.Stats.t) =
  let g name help v = set_int (gauge t ~help ~labels ("ptm_" ^ name)) v in
  g "commits" "transactions committed" s.Pstm.Ptm.Stats.commits;
  g "aborts" "transaction attempts aborted" s.Pstm.Ptm.Stats.aborts;
  g "read_only_commits" "read-only commits" s.Pstm.Ptm.Stats.read_only_commits;
  g "max_write_set" "largest write set (words)" s.Pstm.Ptm.Stats.max_write_set;
  g "max_log_lines" "largest persistent log footprint (lines)" s.Pstm.Ptm.Stats.max_log_lines
