(* Structured exporters: JSONL phase profiles and Chrome trace_event
   JSON (about://tracing / Perfetto "JSON trace" format).

   Determinism contract: iteration orders are fixed (threads ascending,
   phases in [Profile.all_phases] order, spans/events in ring order),
   every number is either an OCaml [%d] integer or a [%.3f] microsecond
   stamp, and no [nan]/[inf] can reach the output (empty distributions
   are skipped, not rendered). *)

module Profile = Pstm.Profile
module Histogram = Repro_util.Histogram

type run_meta = {
  workload : string;
  model : string;
  algorithm : string;
  threads : int;
  seed : int;
  duration_ns : int;
}

let schema_version = "ptm-telemetry-v1"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Histogram percentiles as integers; callers only ask when non-empty. *)
let pct h p = int_of_float (Histogram.percentile h p)
let mean_int h = int_of_float (Histogram.mean h)

let hist_fields h =
  if Histogram.count h = 0 then ""
  else
    Printf.sprintf ",\"mean_ns\":%d,\"p50_ns\":%d,\"p95_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d"
      (mean_int h) (pct h 50.0) (pct h 95.0) (pct h 99.0) (Histogram.max_value h)

let profile_jsonl ?(extra_thread_fields = fun _ -> []) meta (p : Profile.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"run\",\"schema\":\"%s\",\"workload\":\"%s\",\"model\":\"%s\",\"algorithm\":\"%s\",\"threads\":%d,\"seed\":%d,\"duration_ns\":%d}\n"
       schema_version (json_escape meta.workload) (json_escape meta.model)
       (json_escape meta.algorithm) meta.threads meta.seed meta.duration_ns);
  let tids = Profile.tids p in
  (* Per-thread, per-phase rows (phases with no slices are omitted). *)
  List.iter
    (fun tid ->
      List.iter
        (fun phase ->
          let count = Profile.phase_count p ~tid phase in
          if count > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"type\":\"phase\",\"tid\":%d,\"phase\":\"%s\",\"count\":%d,\"ns\":%d,\"fences\":%d,\"flushes\":%d%s}\n"
                 tid (Profile.phase_name phase) count
                 (Profile.phase_ns p ~tid phase)
                 (Profile.phase_fences p ~tid phase)
                 (Profile.phase_flushes p ~tid phase)
                 (hist_fields (Profile.phase_hist p ~tid phase))))
        Profile.all_phases)
    tids;
  (* Run-level merged rows: the per-thread distributions combined. *)
  List.iter
    (fun phase ->
      let count = List.fold_left (fun acc tid -> acc + Profile.phase_count p ~tid phase) 0 tids in
      if count > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "{\"type\":\"run-phase\",\"phase\":\"%s\",\"count\":%d,\"ns\":%d,\"fences\":%d,\"flushes\":%d%s}\n"
             (Profile.phase_name phase) count
             (List.fold_left (fun acc tid -> acc + Profile.phase_ns p ~tid phase) 0 tids)
             (List.fold_left (fun acc tid -> acc + Profile.phase_fences p ~tid phase) 0 tids)
             (List.fold_left (fun acc tid -> acc + Profile.phase_flushes p ~tid phase) 0 tids)
             (hist_fields (Profile.merged_phase_hist p phase))))
    Profile.all_phases;
  (* Per-thread summaries: the sum-to-total invariant is checkable from
     [phase_ns_total] = [txn_ns]. *)
  List.iter
    (fun tid ->
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%d" (json_escape k) v)
             (extra_thread_fields tid))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"thread\",\"tid\":%d,\"txn_ns\":%d,\"phase_ns_total\":%d,\"commits\":%d,\"aborts\":%d%s%s}\n"
           tid (Profile.txn_ns p ~tid)
           (Profile.total_phase_ns p ~tid)
           (Profile.commits p ~tid) (Profile.aborts p ~tid)
           (hist_fields (Profile.txn_hist p ~tid))
           extra))
    tids;
  Buffer.contents buf

(* ---------- Chrome trace_event ---------- *)

let us ns = float_of_int ns /. 1000.0

let trace_kind_name = function
  | Memsim.Trace.Load addr -> Printf.sprintf "load %d" addr
  | Memsim.Trace.Store addr -> Printf.sprintf "store %d" addr
  | Memsim.Trace.Clwb addr -> Printf.sprintf "clwb %d" addr
  | Memsim.Trace.Sfence -> "sfence"
  | Memsim.Trace.Publish n -> Printf.sprintf "publish %d" n
  | Memsim.Trace.Crash -> "crash"

let chrome_trace ?machine_trace ?request_trace meta (p : Profile.t) =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let emit ev =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '\n';
    Buffer.add_string buf ev
  in
  emit
    (Printf.sprintf "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s %s %s\"}}"
       (json_escape meta.workload) (json_escape meta.model) (json_escape meta.algorithm));
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"worker %d\"}}"
           tid tid);
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}"
           tid tid))
    (Profile.tids p);
  List.iter
    (fun (s : Profile.span) ->
      let cat = if s.Profile.label = "txn" || s.Profile.label = "txn-failed" then "txn" else "phase" in
      emit
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}"
           s.Profile.tid s.Profile.label cat (us s.Profile.start_ns)
           (us (s.Profile.stop_ns - s.Profile.start_ns))))
    (Profile.spans p);
  (match machine_trace with
  | None -> ()
  | Some tr ->
    List.iter
      (fun (e : Memsim.Trace.event) ->
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"cat\":\"machine\",\"s\":\"t\",\"ts\":%.3f}"
             e.Memsim.Trace.tid
             (json_escape (trace_kind_name e.Memsim.Trace.kind))
             (us e.Memsim.Trace.at_ns)))
      (Memsim.Trace.tail tr));
  (match request_trace with
  | None -> ()
  | Some rt ->
    emit "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"requests\"}}";
    List.iter emit (Trace.chrome_events rt));
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
