(** Span-based causal tracing on the simulator's virtual clock.

    A trace is a request's causal history: one root ("request") span
    per client request plus child spans for every stage it crossed —
    decode, shard queueing, batch formation, admission throttling, the
    PTM commit (with the {!Pstm.Profile} phase slices nested under it),
    reply, and crash recovery.  Span instants are virtual-clock values
    the caller already holds, so recording perturbs no simulated time;
    the whole layer is deterministic and digest-comparable.

    Stores compose: each service shard records into its own store with
    {!root_parent} standing in for "my request's root", and the service
    merges them into one global store with {!merge_into}, resolving
    roots.  Analysis (percentile-band blame, per-request accounting)
    and Perfetto export read the merged store. *)

type t

val create : unit -> t

val root_parent : int
(** Sentinel parent ([-1]): the span hangs off its trace's root span
    (resolved at {!merge_into} time), or is itself a root. *)

val span :
  t -> trace:int -> parent:int -> kind:string -> tid:int -> start_ns:int -> stop_ns:int -> int
(** Record one span; returns its id (usable as a [parent] for children
    recorded into the same store).  [trace] is the request's trace id
    ([-1] for service-level spans outside any request); [tid] is a
    store-local lane (shard id in per-shard stores, connection id for
    roots). *)

val length : t -> int

type span_view = {
  s_trace : int;
  s_parent : int;  (** span id within the same store, or {!root_parent} *)
  s_kind : string;
  s_tid : int;
  s_start_ns : int;
  s_stop_ns : int;
}

val get : t -> int -> span_view
val iter : (int -> span_view -> unit) -> t -> unit

val merge_into : src:t -> dst:t -> root_for:(int -> int) -> unit
(** Append [src]'s spans to [dst]: parents [>= 0] are offset into
    [dst]'s id space, {!root_parent} parents are resolved through
    [root_for trace] (return {!root_parent} to keep the span a root). *)

val digest : t -> string
(** FNV-1a hash over every span's content (kind by name, not interned
    id) — equal digests iff equal span sequences.  The @trace gate's
    determinism check compares digests across runs and pool sizes. *)

val latency_hist : t -> Repro_util.Histogram.t
(** Durations of all root spans (request end-to-end latencies). *)

val accounting : t -> (int * int * int) list
(** Per request, sorted by trace id: [(trace, latency_ns,
    attributed_ns)] where [attributed_ns] sums the exclusive time
    (duration minus direct children, floored at 0) of every span on
    that trace.  For a request whose spans partition its window —
    every single-key request — the two are equal; overlapping fan-out
    (multi-key gets) makes [attributed_ns >= latency_ns]. *)

(** {1 Critical-path blame} *)

type blame_row = {
  bkind : string;
  bspans : int;
  bexclusive_ns : int;
  bshare : float;  (** percent of the band's attributed time *)
}

type blame = {
  brequests : int;  (** requests inside the percentile band *)
  bband_lo_ns : int;  (** fastest selected request *)
  bband_hi_ns : int;  (** slowest selected request *)
  btotal_latency_ns : int;
  battributed_ns : int;
  bslack_ns : int;  (** attributed - latency (overlap of fanned-out spans) *)
  brows : blame_row list;  (** descending exclusive time; ties by kind *)
}

val blame : t -> lo_pct:float -> hi_pct:float -> blame
(** Blame table for requests whose latency rank falls in
    [\[lo_pct, hi_pct\]] — e.g. [~lo_pct:95.0 ~hi_pct:100.0] answers
    "where does p95+ tail time go".  Exclusive time per span kind,
    summed over the selected requests. *)

(** {1 Perfetto export} *)

val chrome_events : t -> string list
(** Chrome trace_event JSON objects, one per span, on pid 1 with one
    track per trace (so whole-request spans nest their children
    cleanly).  For embedding into a larger trace file. *)

val chrome_trace : t -> string
(** Standalone Perfetto-loadable JSON wrapping {!chrome_events}. *)
