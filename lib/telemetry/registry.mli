(** Unified metrics registry: named counters, gauges and histograms
    with labels, published once and exported three ways — Prometheus
    text exposition, memcached-style [stats] pairs, and JSONL rows.

    Deterministic: exports iterate metrics sorted by (name, labels)
    and every value renders as an integer or a [%.6g] float, so equal
    update sequences give byte-identical text. *)

type t
type metric

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> metric
(** Find-or-create; (name, sorted labels) identifies the metric. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> metric
val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> metric

val inc : metric -> int -> unit
val set_int : metric -> int -> unit
val set_float : metric -> float -> unit

val observe : metric -> int -> unit
(** Record one sample into a histogram metric. *)

val observe_hist : metric -> Repro_util.Histogram.t -> unit
(** Merge an existing histogram's counts into a histogram metric. *)

val value : metric -> float
val hist : metric -> Repro_util.Histogram.t

val metrics : t -> metric list
(** Sorted by (name, labels) — the export order. *)

val to_prometheus : t -> string
(** Prometheus text exposition ([# HELP] / [# TYPE]; histograms as
    summaries with p50/p95/p99 quantile lines, [_count] and [_max]). *)

val stats_pairs : t -> (string * string) list
(** Flat (token, value) pairs for the kvserve [stats] verb: label
    values joined into the name with ['.'], histogram statistics
    suffixed ([.count], [.p50], [.p95], [.p99], [.max]). *)

val jsonl : t -> string
(** One [{"kind":"metric",...}] JSON line per metric. *)

(** {1 Standard publishers} *)

val publish_sim_stats : t -> ?labels:(string * string) list -> Memsim.Sim.Stats.t -> unit
(** Publish every scalar of {!Memsim.Sim.Stats.t} as a [sim_*] gauge. *)

val publish_ptm_stats : t -> ?labels:(string * string) list -> Pstm.Ptm.Stats.t -> unit
(** Publish {!Pstm.Ptm.Stats.t} as [ptm_*] gauges. *)
