(** Deterministic observability for PTM runs.

    A {!capture} bundles the three telemetry streams over one
    (simulator, PTM runtime) pair:
    - a {!Pstm.Profile} attributing every in-transaction virtual
      nanosecond to a named phase, per thread;
    - a {!Series} of machine samples (WPQ occupancy, persistence debt,
      commit/abort rates) taken at a fixed virtual-time cadence;
    - optionally the machine's {!Memsim.Trace} event ring.

    Telemetry is off by default and purely observational when on: it
    reads clocks and counters but never advances virtual time, so an
    instrumented run's timing is bit-identical to an uninstrumented
    one, and repeated instrumented runs yield byte-identical exports. *)

module Series = Series
module Export = Export

module Trace = Trace
(** Span-based request tracing (see {!Trace}). *)

module Registry = Registry
(** Unified metrics registry (see {!Registry}). *)

type config = {
  sample_interval_ns : int;
      (** virtual-time cadence for {!sample}; [0] disables the series
          (the caller spawns no monitor thread) *)
  span_capacity : int;  (** span ring size (oldest spans overwritten) *)
  series_capacity : int;
  machine_trace_capacity : int;  (** [0] disables the machine event trace *)
}

val default_config : config
(** 50 µs sampling, 65536 spans, 4096 samples, 8192 machine events. *)

type capture

val attach : ?config:config -> Memsim.Sim.t -> Pstm.Ptm.t -> capture
(** Install a profiler on [ptm] (and, per [config], a machine trace on
    [sim]).  Call after setup, before spawning workers. *)

val detach : capture -> unit
(** Remove the profiler from the runtime (streams stay readable). *)

val sample : capture -> unit
(** Record one series sample; call from a monitor thread. *)

val config : capture -> config
val profile : capture -> Pstm.Profile.t
val series : capture -> Series.t

(** {1 Export} *)

val profile_jsonl : Export.run_meta -> capture -> string
(** Phase-profile JSONL (see {!Export.profile_jsonl}), with per-thread
    machine-attributed [machine_fence_wait_ns] / [machine_wpq_stall_ns]
    appended to the thread summaries. *)

val series_csv : capture -> string

val chrome_trace : Export.run_meta -> capture -> string
(** Perfetto-loadable trace: phase spans + machine events. *)

val files : Export.run_meta -> capture -> (string * string) list
(** [(filename, content)] for the three standard artifacts:
    [profile.jsonl], [series.csv], [trace.json]. *)

val dump : dir:string -> Export.run_meta -> capture -> string list
(** Write {!files} under [dir] (created if missing); returns the paths
    written, in a fixed order. *)
