(* Umbrella: attach a capture (profiler + series + optional machine
   trace) to a (sim, ptm) pair, sample it from a monitor thread, and
   dump the three standard artifacts. *)

module Series = Series
module Export = Export
module Trace = Trace
module Registry = Registry
module Sim = Memsim.Sim

type config = {
  sample_interval_ns : int;
  span_capacity : int;
  series_capacity : int;
  machine_trace_capacity : int;
}

let default_config =
  {
    sample_interval_ns = 50_000;
    span_capacity = 1 lsl 16;
    series_capacity = 4096;
    machine_trace_capacity = 8192;
  }

type capture = {
  config : config;
  sim : Sim.t;
  ptm : Pstm.Ptm.t;
  profile : Pstm.Profile.t;
  series : Series.t;
  machine_trace : Memsim.Trace.t option;
}

let attach ?(config = default_config) sim ptm =
  let profile =
    Pstm.Profile.create ~span_capacity:config.span_capacity
      ~wpq_stall_probe:(fun tid -> Sim.wpq_stall_ns_of sim ~tid)
      (Pstm.Ptm.machine ptm)
  in
  Pstm.Ptm.set_profiler ptm (Some profile);
  let machine_trace =
    if config.machine_trace_capacity > 0 then
      Some (Sim.enable_trace ~capacity:config.machine_trace_capacity sim)
    else None
  in
  { config; sim; ptm; profile; series = Series.create ~capacity:config.series_capacity (); machine_trace }

let detach cap = Pstm.Ptm.set_profiler cap.ptm None

let sample cap = Series.record cap.series cap.sim cap.ptm

let config cap = cap.config
let profile cap = cap.profile
let series cap = cap.series

(* Machine-attributed per-thread stall counters, appended to the
   JSONL thread summaries so profile-level fence-wait can be checked
   against the simulator's own accounting. *)
let machine_thread_fields cap tid =
  [
    ("machine_fence_wait_ns", Sim.fence_wait_ns_of cap.sim ~tid);
    ("machine_wpq_stall_ns", Sim.wpq_stall_ns_of cap.sim ~tid);
  ]

let profile_jsonl meta cap =
  Export.profile_jsonl ~extra_thread_fields:(machine_thread_fields cap) meta cap.profile

let series_csv cap = Series.to_csv cap.series

let chrome_trace meta cap = Export.chrome_trace ?machine_trace:cap.machine_trace meta cap.profile

let files meta cap =
  [
    ("profile.jsonl", profile_jsonl meta cap);
    ("series.csv", series_csv cap);
    ("trace.json", chrome_trace meta cap);
  ]

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let dump ~dir meta cap =
  mkdir_p dir;
  List.map
    (fun (name, content) ->
      let path = Filename.concat dir name in
      write_file path content;
      path)
    (files meta cap)
