(** Structured telemetry exporters.

    All emitters are bit-deterministic for a deterministic run: fixed
    iteration orders, integer counters, and fixed-precision microsecond
    stamps.  [nan] can never appear in the output — statistics of empty
    distributions are omitted rather than rendered. *)

type run_meta = {
  workload : string;
  model : string;
  algorithm : string;
  threads : int;
  seed : int;
  duration_ns : int;
}

val schema_version : string
(** Embedded in the JSONL header line as ["schema"]. *)

val profile_jsonl : ?extra_thread_fields:(int -> (string * int) list) -> run_meta -> Pstm.Profile.t -> string
(** One JSON object per line:
    - a ["run"] header (workload/model/algorithm/threads/seed);
    - per-thread ["phase"] rows (count, ns, fences, flushes, and
      mean/p50/p95/p99/max slice ns) for every phase with samples;
    - run-level ["run-phase"] rows merging the per-thread histograms;
    - per-thread ["thread"] summaries with [txn_ns] and
      [phase_ns_total] (equal by the profiler's accounting invariant),
      commits/aborts, transaction-latency stats, plus any
      [extra_thread_fields] (e.g. machine-attributed stall counters). *)

val chrome_trace :
  ?machine_trace:Memsim.Trace.t -> ?request_trace:Trace.t -> run_meta -> Pstm.Profile.t -> string
(** Chrome trace_event JSON (load in Perfetto or about://tracing):
    phase spans and transaction envelopes as complete (["X"]) events on
    per-thread tracks, plus instant events for retained machine trace
    events (loads/stores/clwbs/fences) when [machine_trace] is given.
    With [request_trace], whole-request spans (and the PTM phase slices
    nested under their commits) are appended on a second process. *)

val json_escape : string -> string
