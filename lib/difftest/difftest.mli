(** Differential stress testing of the PTM's flush disciplines.

    A seeded generator produces a single-threaded trace of transactions
    over a fixed directory of slots — allocations, frees, payload
    writes and reads, and user-exception aborts — while maintaining a
    volatile shadow interpreter, so every action is valid at its
    program point and the shadow's final state is the expected outcome.

    {!execute} replays a trace under one (durability model, algorithm,
    flush discipline) configuration; {!check_seed} replays it under the
    whole {!matrix} and demands

    + every configuration's final user-visible heap (an address-free
      per-slot digest) equals the shadow's, hence all are pairwise
      identical; and
    + for each algorithm x model pair, the coalesced run issues no more
      sfences and no more clwbs than the naive run.

    Since traces are single-threaded there are no conflicts or retries:
    any divergence is a logging, write-back or allocator-rollback bug,
    not a scheduling artifact. *)

type action =
  | Alloc of { slot : int; words : int }
      (** allocate a fresh block of [words] payload words (zeroed) and
          install it in directory slot [slot] (empty at this point) *)
  | Free of { slot : int }  (** free the block in [slot], emptying it *)
  | Write of { slot : int; off : int; value : int }
  | Read of { slot : int; off : int }
  | Abort
      (** raise a user exception, aborting the enclosing transaction;
          always the last action of its transaction *)

type txn = action list
type trace = { slots : int; txns : txn list }

type digest = int array option array
(** Per directory slot, the payload of the block it points at ([None]
    when empty).  Address-free, so allocator placement differences
    between configurations cannot cause false alarms. *)

val pp_action : Format.formatter -> action -> unit
val pp_digest : Format.formatter -> digest -> unit
val digest_equal : digest -> digest -> bool

val gen_trace : ?slots:int -> ?txns:int -> int -> trace * digest
(** [gen_trace seed] builds a trace (defaults: 8 slots, 40
    transactions) and the digest it must produce.  Equal seeds yield
    identical traces. *)

type outcome = {
  digest : digest;
  commits : int;
  aborts : int;
  sfences : int;  (** whole-run fence count, from [Sim.Stats] *)
  clwbs : int;  (** whole-run write-back count, from [Sim.Stats] *)
}

val execute :
  ?heap_words:int ->
  model:Memsim.Config.model ->
  algorithm:Pstm.Ptm.algorithm ->
  coalesce:bool ->
  trace ->
  outcome
(** Replay [trace] on a fresh simulated machine under one
    configuration.  The digest readback runs untimed after the stats
    snapshot. *)

val matrix : (string * Memsim.Config.model * Pstm.Ptm.algorithm * bool) list
(** The comparison cells: {Redo, Undo} x {ADR, eADR, transient-cache} x
    {coalesced, naive}, Redo x htm-commit x {coalesced, naive}, plus
    Htm under eADR, transient-cache and htm-commit. *)

val check_seed : ?slots:int -> ?txns:int -> int -> (unit, string) result
(** Run one seed through the whole matrix; [Error] carries every
    divergence found, one per line. *)
