(* Differential stress testing: one randomized transaction trace,
   executed under every (algorithm, durability model, flush discipline)
   configuration, must leave the same user-visible heap.

   The trace generator maintains a volatile shadow interpreter while it
   generates, so every emitted action is valid at its program point
   (writes target live blocks, allocs target empty slots) and the
   shadow's final state doubles as the expected digest.  Traces are
   single-threaded: with no conflicts, every configuration executes the
   identical sequence of transactional operations, and any digest
   divergence is a logging/write-back bug, not a scheduling artifact.

   Digests are address-free (per-slot liveness, length and payload
   words) so allocator placement differences between configurations
   cannot cause false alarms. *)

module Rng = Repro_util.Rng
module Config = Memsim.Config
module Sim = Memsim.Sim
module Ptm = Pstm.Ptm

type action =
  | Alloc of { slot : int; words : int }
  | Free of { slot : int }
  | Write of { slot : int; off : int; value : int }
  | Read of { slot : int; off : int }
  | Abort

type txn = action list
type trace = { slots : int; txns : txn list }

(* The user-visible state: per directory slot, the payload of the block
   it points at (None when empty). *)
type digest = int array option array

exception User_abort

let pp_action ppf = function
  | Alloc { slot; words } -> Format.fprintf ppf "alloc[%d]<-%dw" slot words
  | Free { slot } -> Format.fprintf ppf "free[%d]" slot
  | Write { slot; off; value } -> Format.fprintf ppf "write[%d+%d]<-%d" slot off value
  | Read { slot; off } -> Format.fprintf ppf "read[%d+%d]" slot off
  | Abort -> Format.fprintf ppf "abort"

let pp_digest ppf (d : digest) =
  Array.iteri
    (fun i p ->
      match p with
      | None -> ()
      | Some payload ->
        Format.fprintf ppf "[%d]=(%s) " i
          (String.concat "," (List.map string_of_int (Array.to_list payload))))
    d

let digest_equal (a : digest) (b : digest) = a = b

(* ---------- generation ---------- *)

let gen_trace ?(slots = 8) ?(txns = 40) seed =
  let rng = Rng.create seed in
  let shadow : digest = Array.make slots None in
  let indices = List.init slots Fun.id in
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  let gen_txn () =
    (* Deep copy: an aborted transaction's writes must not leak into
       the shadow through shared payload arrays. *)
    let overlay = Array.map (Option.map Array.copy) shadow in
    let n = 1 + Rng.int rng 6 in
    let acts = ref [] in
    for _ = 1 to n do
      let live = List.filter (fun i -> overlay.(i) <> None) indices in
      let empty = List.filter (fun i -> overlay.(i) = None) indices in
      let act =
        if empty <> [] && (live = [] || Rng.chance rng 0.35) then begin
          let slot = pick empty in
          let words = 1 + Rng.int rng 6 in
          overlay.(slot) <- Some (Array.make words 0);
          Alloc { slot; words }
        end
        else begin
          let slot = pick live in
          let payload = Option.get overlay.(slot) in
          match Rng.int rng 10 with
          | 0 | 1 ->
            overlay.(slot) <- None;
            Free { slot }
          | 2 | 3 -> Read { slot; off = Rng.int rng (Array.length payload) }
          | _ ->
            let off = Rng.int rng (Array.length payload) in
            let value = 1 + Rng.int rng 1_000_000 in
            payload.(off) <- value;
            Write { slot; off; value }
        end
      in
      acts := act :: !acts
    done;
    if Rng.chance rng 0.2 then List.rev (Abort :: !acts)
    else begin
      Array.blit overlay 0 shadow 0 slots;
      List.rev !acts
    end
  in
  let txn_list = List.init txns (fun _ -> gen_txn ()) in
  ({ slots; txns = txn_list }, Array.map (Option.map Array.copy) shadow)

(* ---------- execution ---------- *)

type outcome = {
  digest : digest;
  commits : int;
  aborts : int;
  sfences : int;
  clwbs : int;
}

(* Blocks carry their length in word 0 so the digest can be read back
   without consulting the trace; payloads start at word 1. *)
let execute ?(heap_words = 1 lsl 16) ~model ~algorithm ~coalesce trace =
  let cfg = Config.make ~heap_words model in
  let sim = Sim.create cfg in
  let m = Sim.machine sim in
  let ptm = Ptm.create ~algorithm ~coalesce ~max_threads:1 ~log_words_per_thread:4096 m in
  let dir =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx trace.slots in
        for i = 0 to trace.slots - 1 do
          Ptm.write tx (d + i) 0
        done;
        d)
  in
  Ptm.root_set ptm 0 dir;
  let apply tx = function
    | Alloc { slot; words } ->
      let b = Ptm.alloc tx (words + 1) in
      Ptm.write tx b words;
      for j = 1 to words do
        Ptm.write tx (b + j) 0
      done;
      Ptm.write tx (dir + slot) b
    | Free { slot } ->
      let b = Ptm.read tx (dir + slot) in
      Ptm.free tx b;
      Ptm.write tx (dir + slot) 0
    | Write { slot; off; value } ->
      let b = Ptm.read tx (dir + slot) in
      Ptm.write tx (b + 1 + off) value
    | Read { slot; off } ->
      let b = Ptm.read tx (dir + slot) in
      ignore (Ptm.read tx (b + 1 + off) : int)
    | Abort -> raise User_abort
  in
  ignore
    (Sim.spawn sim (fun () ->
         List.iter
           (fun txn ->
             match Ptm.atomic ptm (fun tx -> List.iter (apply tx) txn) with
             | () -> ()
             | exception User_abort -> ())
           trace.txns)
      : int);
  Sim.run sim;
  let pstats = Ptm.Stats.get ptm in
  let stats = Sim.Stats.get sim in
  (* The digest readback runs untimed, after the stats snapshot, so it
     perturbs neither timing nor the fence economy being compared. *)
  let digest =
    Array.init trace.slots (fun slot ->
        Ptm.atomic ptm (fun tx ->
            let b = Ptm.read tx (dir + slot) in
            if b = 0 then None
            else
              let words = Ptm.read tx b in
              Some (Array.init words (fun j -> Ptm.read tx (b + 1 + j)))))
  in
  {
    digest;
    commits = pstats.Ptm.Stats.commits;
    aborts = pstats.Ptm.Stats.aborts;
    sfences = stats.Sim.Stats.sfences;
    clwbs = stats.Sim.Stats.clwbs;
  }

(* ---------- the configuration matrix ---------- *)

let matrix =
  [
    ("redo/ADR/coalesced", Config.optane_adr, Ptm.Redo, true);
    ("redo/ADR/naive", Config.optane_adr, Ptm.Redo, false);
    ("redo/eADR/coalesced", Config.optane_eadr, Ptm.Redo, true);
    ("redo/eADR/naive", Config.optane_eadr, Ptm.Redo, false);
    ("undo/ADR/coalesced", Config.optane_adr, Ptm.Undo, true);
    ("undo/ADR/naive", Config.optane_adr, Ptm.Undo, false);
    ("undo/eADR/coalesced", Config.optane_eadr, Ptm.Undo, true);
    ("undo/eADR/naive", Config.optane_eadr, Ptm.Undo, false);
    ("htm/eADR", Config.optane_eadr, Ptm.Htm, true);
    ("redo/transient/coalesced", Config.transient_cache, Ptm.Redo, true);
    ("redo/transient/naive", Config.transient_cache, Ptm.Redo, false);
    ("undo/transient/coalesced", Config.transient_cache, Ptm.Undo, true);
    ("undo/transient/naive", Config.transient_cache, Ptm.Undo, false);
    ("htm/transient", Config.transient_cache, Ptm.Htm, true);
    ("redo/htm-commit/coalesced", Config.htm_commit, Ptm.Redo, true);
    ("redo/htm-commit/naive", Config.htm_commit, Ptm.Redo, false);
    ("htm/htm-commit", Config.htm_commit, Ptm.Htm, true);
    (* MOD buffers writes volatile and publishes through a root swap;
       traces that update several directory slots in one transaction
       exercise its redo fallback, so these rows cover both paths. *)
    ("mod/ADR/coalesced", Config.optane_adr, Ptm.Mod, true);
    ("mod/ADR/naive", Config.optane_adr, Ptm.Mod, false);
    ("mod/eADR/coalesced", Config.optane_eadr, Ptm.Mod, true);
    ("mod/transient/coalesced", Config.transient_cache, Ptm.Mod, true);
    ("mod/htm-commit/coalesced", Config.htm_commit, Ptm.Mod, true);
  ]

let check_seed ?slots ?txns seed =
  let trace, expected = gen_trace ?slots ?txns seed in
  let runs =
    List.map
      (fun (name, model, algorithm, coalesce) ->
        (name, coalesce, execute ~model ~algorithm ~coalesce trace))
      matrix
  in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun (name, _, o) ->
      if not (digest_equal o.digest expected) then
        err "seed %d: %s diverges from the shadow: got %a, expected %a" seed name pp_digest
          o.digest pp_digest expected)
    runs;
  (* Coalescing is a flush-traffic optimisation, never a semantics
     change: for each algorithm x model pair it must not add fences or
     write-backs over the naive discipline. *)
  let find name =
    match List.find_opt (fun (n, _, _) -> n = name) runs with
    | Some (_, _, o) -> o
    | None -> invalid_arg ("check_seed: no run named " ^ name)
  in
  List.iter
    (fun prefix ->
      let c = find (prefix ^ "/coalesced") and n = find (prefix ^ "/naive") in
      if c.sfences > n.sfences then
        err "seed %d: %s/coalesced issues %d fences, more than naive's %d" seed prefix c.sfences
          n.sfences;
      if c.clwbs > n.clwbs then
        err "seed %d: %s/coalesced issues %d clwbs, more than naive's %d" seed prefix c.clwbs
          n.clwbs)
    [
      "redo/ADR";
      "redo/eADR";
      "undo/ADR";
      "undo/eADR";
      "redo/transient";
      "undo/transient";
      "redo/htm-commit";
      "mod/ADR";
    ];
  match !errors with [] -> Ok () | es -> Error (String.concat "\n" (List.rev es))
