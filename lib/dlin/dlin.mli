(** Durable-linearizability oracle.

    The legality criterion (Izraelevitz et al.'s durable
    linearizability, specialised to full-system crashes): after a crash,
    the recovered state must be explained by some linearization of a
    subset [S] of the invoked operations such that

    - [S] contains {e every} completed operation (response returned
      before the crash — its durable commit preceded the return);
    - [S] may additionally contain, per thread, the one operation that
      was invoked but never returned (its commit may or may not have
      become durable);
    - the linearization respects real-time order: if [o1] returned
      before [o2] was invoked, [o1] precedes [o2];
    - replaying the linearization from the initial state yields exactly
      the recovered state, and each completed operation's replayed
      response equals the response it actually returned.

    Because each thread is sequential, [S] is per-thread a prefix of
    that thread's operation sequence — all its completed operations
    plus optionally its final pending one — so the search walks
    per-thread positions.  Pruning:

    - memoization on (positions, state), with exact state comparison
      inside each hash bucket (a hash collision must never prune);
    - a sound commutativity "leader" rule: if some available candidate
      is a {e completed} operation that commutes (on state and
      response, in every state) with every other thread's remaining
      operations, only it is explored — any accepting linearization
      can be reordered to put it first.

    The search is bounded by [max_nodes]; exceeding the budget is
    reported as a distinct, inconclusive failure rather than a pass. *)

(** How one scenario's operations act on an abstract state.  All
    functions must be pure. *)
type ('st, 'op, 'res) spec = {
  init : 'st;  (** the state the scenario's [prepare] established *)
  apply : 'st -> 'op -> 'st * 'res;
      (** sequential semantics of one operation — must model the real
          program order of the transaction body exactly *)
  equal_state : 'st -> 'st -> bool;
  hash_state : 'st -> int;  (** must agree with [equal_state] *)
  equal_res : 'res -> 'res -> bool;
  commutes : 'op -> 'op -> bool;
      (** sound under-approximation: [true] only if the two operations
          commute on state {e and} both responses, in every state.
          Only ever asked about operations of different threads. *)
  pp_op : Format.formatter -> 'op -> unit;
  pp_res : Format.formatter -> 'res -> unit;
  pp_state : Format.formatter -> 'st -> unit;
}

(** Recording of a concurrent operation history: per-thread invocation
    and response events with virtual timestamps. *)
module History : sig
  type ('op, 'res) t

  val create : threads:int -> ('op, 'res) t

  val threads : ('op, 'res) t -> int

  val invoke : ('op, 'res) t -> tid:int -> at_ns:float -> 'op -> unit
  (** Record the invocation of [tid]'s next operation.  Raises
      [Invalid_argument] if the thread's previous operation has not
      returned (threads are sequential). *)

  val return : ('op, 'res) t -> tid:int -> at_ns:float -> 'res -> unit
  (** Record the response of [tid]'s current pending operation. *)

  val run : ('op, 'res) t -> tid:int -> now:(unit -> float) -> 'op -> (unit -> 'res) -> 'res
  (** [run h ~tid ~now op f] brackets [f ()] with [invoke]/[return].
      If [f] raises (e.g. the machine crashes), the operation stays
      pending — exactly the durable-linearizability meaning. *)

  val completed : ('op, 'res) t -> int
  (** Operations whose response was recorded. *)

  val pending : ('op, 'res) t -> int
  (** Operations invoked but never returned (at most one per thread). *)
end

type stats = { nodes : int; memo_hits : int }

type counterexample = {
  reason : string;
  jsonl : string;
      (** replayable dump: one JSON object per line — a [meta] line,
          one [op] line per recorded operation (tid, index, op,
          timestamps, response, pending flag) and a [recovered] state
          line.  Written next to the crashtest replay line as
          [dlin.jsonl]. *)
}

val dump :
  ('st, 'op, 'res) spec ->
  ('op, 'res) History.t ->
  recovered:'st option ->
  reason:string ->
  nodes:int ->
  string
(** The JSONL counterexample body; exposed so scenario oracles that
    fail before the search (e.g. recovered-state extraction finds torn
    data) can emit the same replayable dump format. *)

val check :
  ?max_nodes:int ->
  ?durability:[ `Strict | `Buffered ] ->
  ('st, 'op, 'res) spec ->
  ('op, 'res) History.t ->
  recovered:'st ->
  (stats, counterexample) result
(** Search for a legal durable linearization explaining [recovered].
    [Ok] carries search statistics; [Error] carries the reason — either
    "no linearization ..." or the distinct budget-exceeded message —
    and the JSONL dump.  [max_nodes] defaults to 200_000.

    [durability] (default [`Strict]) selects the legality criterion:

    - [`Strict] — durable linearizability proper: the linearization must
      contain {e every} completed operation (commit became durable
      before the response returned).  Right for redo/undo, whose commit
      fence precedes the return.
    - [`Buffered] — buffered durable linearizability: the recovered
      state may be any real-time-closed cut (per-thread prefixes,
      closed under returned-before-invoked precedence, with each
      included completed operation's replayed response matching the
      recorded one).  Right for MOD structures, whose root swap is
      published with an unfenced flush, so a committed suffix of the
      serialized history can be lost at a crash.  The match is tested
      at every search node and the commuting-leader rule is disabled —
      a completed operation need not be in the cut, so bubbling it
      first is unsound for prefix cuts.  Responses of operations
      {e outside} the cut are not revalidated here; scenario validates
      cover them. *)
