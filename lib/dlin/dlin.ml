type ('st, 'op, 'res) spec = {
  init : 'st;
  apply : 'st -> 'op -> 'st * 'res;
  equal_state : 'st -> 'st -> bool;
  hash_state : 'st -> int;
  equal_res : 'res -> 'res -> bool;
  commutes : 'op -> 'op -> bool;
  pp_op : Format.formatter -> 'op -> unit;
  pp_res : Format.formatter -> 'res -> unit;
  pp_state : Format.formatter -> 'st -> unit;
}

(* One recorded operation.  [returned = infinity] marks a pending
   operation (invoked, never returned — the crash interrupted it), which
   conveniently makes the real-time-order test "e' returned before e was
   invoked" a plain float comparison. *)
type ('op, 'res) entry = {
  op : 'op;
  invoked : float;
  mutable returned : float;
  mutable res : 'res option;
}

module History = struct
  type ('op, 'res) t = { nthreads : int; per_tid : ('op, 'res) entry list array (* newest first *) }

  let create ~threads =
    if threads <= 0 then invalid_arg "Dlin.History.create: threads must be positive";
    { nthreads = threads; per_tid = Array.make threads [] }

  let threads h = h.nthreads

  let invoke h ~tid ~at_ns op =
    (match h.per_tid.(tid) with
    | e :: _ when e.returned = infinity ->
      invalid_arg "Dlin.History.invoke: thread's previous operation is still pending"
    | _ -> ());
    h.per_tid.(tid) <- { op; invoked = at_ns; returned = infinity; res = None } :: h.per_tid.(tid)

  let return h ~tid ~at_ns res =
    match h.per_tid.(tid) with
    | e :: _ when e.returned = infinity ->
      e.returned <- at_ns;
      e.res <- Some res
    | _ -> invalid_arg "Dlin.History.return: thread has no pending operation"

  let run h ~tid ~now op f =
    invoke h ~tid ~at_ns:(now ()) op;
    let res = f () in
    return h ~tid ~at_ns:(now ()) res;
    res

  (* Per-tid arrays, oldest first.  Threads are sequential, so at most
     the last entry of each array is pending. *)
  let to_arrays h = Array.map (fun l -> Array.of_list (List.rev l)) h.per_tid

  let completed h =
    Array.fold_left
      (fun acc l -> acc + List.length (List.filter (fun e -> e.returned < infinity) l))
      0 h.per_tid

  let pending h =
    Array.fold_left
      (fun acc l ->
        acc + match l with e :: _ when e.returned = infinity -> 1 | _ -> 0)
      0 h.per_tid
end

type stats = { nodes : int; memo_hits : int }

type counterexample = { reason : string; jsonl : string }

(* ---------- counterexample dump (JSONL, telemetry-style) ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump spec h ~recovered ~reason ~nodes =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"kind": "dlin", "reason": "%s", "threads": %d, "completed": %d, "pending": %d, "nodes": %d}|}
       (json_escape reason) (History.threads h) (History.completed h) (History.pending h) nodes);
  Buffer.add_char b '\n';
  let ops = History.to_arrays h in
  Array.iteri
    (fun tid arr ->
      Array.iteri
        (fun idx e ->
          let pending = e.returned = infinity in
          let returned_s = if pending then "null" else Printf.sprintf "%.0f" e.returned in
          let res_s =
            match e.res with
            | None -> "null"
            | Some r -> Printf.sprintf "\"%s\"" (json_escape (Format.asprintf "%a" spec.pp_res r))
          in
          Buffer.add_string b
            (Printf.sprintf
               {|{"kind": "op", "tid": %d, "idx": %d, "op": "%s", "invoked_ns": %.0f, "returned_ns": %s, "res": %s, "pending": %b}|}
               tid idx
               (json_escape (Format.asprintf "%a" spec.pp_op e.op))
               e.invoked returned_s res_s pending);
          Buffer.add_char b '\n')
        arr)
    ops;
  (match recovered with
  | None -> Buffer.add_string b {|{"kind": "recovered", "state": null}|}
  | Some st ->
    Buffer.add_string b
      (Printf.sprintf {|{"kind": "recovered", "state": "%s"}|}
         (json_escape (Format.asprintf "%a" spec.pp_state st))));
  Buffer.add_char b '\n';
  Buffer.contents b

(* ---------- the search ---------- *)

exception Found
exception Budget

let default_max_nodes = 200_000

let check ?(max_nodes = default_max_nodes) ?(durability = `Strict) spec h ~recovered =
  let ops = History.to_arrays h in
  let nthreads = Array.length ops in
  let total = Array.map Array.length ops in
  (* Completed operations form a per-thread prefix (threads are
     sequential); only the final entry can be pending. *)
  let ncompleted =
    Array.map
      (fun arr ->
        let n = Array.length arr in
        if n > 0 && arr.(n - 1).returned = infinity then n - 1 else n)
      ops
  in
  let pos = Array.make nthreads 0 in
  let nodes = ref 0 and memo_hits = ref 0 in
  let memo : (string, 'st list) Hashtbl.t = Hashtbl.create 4096 in
  let key_of st =
    let b = Buffer.create 32 in
    Array.iter
      (fun p ->
        Buffer.add_string b (string_of_int p);
        Buffer.add_char b ',')
      pos;
    Buffer.add_char b '#';
    Buffer.add_string b (string_of_int (spec.hash_state st));
    Buffer.contents b
  in
  let goal () =
    let ok = ref true in
    for t = 0 to nthreads - 1 do
      if pos.(t) < ncompleted.(t) then ok := false
    done;
    !ok
  in
  (* [t]'s next operation may linearize now iff no other thread's next
     operation returned before it was invoked (deeper operations of a
     sequential thread return even later, so checking heads suffices). *)
  let available t =
    pos.(t) < total.(t)
    &&
    let e = ops.(t).(pos.(t)) in
    let ok = ref true in
    for u = 0 to nthreads - 1 do
      if u <> t && pos.(u) < total.(u) && ops.(u).(pos.(u)).returned < e.invoked then ok := false
    done;
    !ok
  in
  (* Sound leader rule: a completed candidate that commutes with every
     other thread's remaining operations can be linearized first without
     loss of generality — it is in every solution (completed), no
     remaining operation is forced before it (it is available), and
     bubbling it to the front preserves all states and responses. *)
  let leader t =
    let e = ops.(t).(pos.(t)) in
    e.returned < infinity
    &&
    let ok = ref true in
    for u = 0 to nthreads - 1 do
      if u <> t then
        for j = pos.(u) to total.(u) - 1 do
          if not (spec.commutes e.op ops.(u).(j).op) then ok := false
        done
    done;
    !ok
  in
  let all_tids = List.init nthreads Fun.id in
  let rec dfs st =
    incr nodes;
    if !nodes > max_nodes then raise Budget;
    (* Strict: the recovered state must be explained by a linearization
       containing every completed operation — test only at the goal.
       Buffered: the recovered state may be any real-time-closed cut of
       a linearization (unflushed committed suffixes are lost at a
       crash) — test at every node, and skip the leader rule: a
       completed operation need not be in the cut, so forcing it first
       could step over the matching prefix. *)
    (match durability with
    | `Strict -> if goal () && spec.equal_state st recovered then raise Found
    | `Buffered -> if spec.equal_state st recovered then raise Found);
    let key = key_of st in
    let bucket = Option.value (Hashtbl.find_opt memo key) ~default:[] in
    if List.exists (fun s -> spec.equal_state st s) bucket then incr memo_hits
    else begin
      Hashtbl.replace memo key (st :: bucket);
      let avail = List.filter available all_tids in
      let cands =
        match durability with
        | `Buffered -> avail
        | `Strict ->
          (match List.find_opt leader avail with Some t -> [ t ] | None -> avail)
      in
      List.iter
        (fun t ->
          let e = ops.(t).(pos.(t)) in
          let st', r = spec.apply st e.op in
          (* A completed operation's replayed response must equal the
             response it actually returned; pending responses are
             unconstrained (the caller never saw one). *)
          let res_ok = match e.res with None -> true | Some r0 -> spec.equal_res r0 r in
          if res_ok then begin
            pos.(t) <- pos.(t) + 1;
            dfs st';
            pos.(t) <- pos.(t) - 1
          end)
        cands
    end
  in
  match dfs spec.init with
  | () ->
    let reason =
      match durability with
      | `Strict ->
        "no durable linearization of the recorded history explains the recovered state"
      | `Buffered ->
        "no real-time-closed prefix of any linearization explains the recovered state \
         (buffered durability)"
    in
    Error { reason; jsonl = dump spec h ~recovered:(Some recovered) ~reason ~nodes:!nodes }
  | exception Found -> Ok { nodes = !nodes; memo_hits = !memo_hits }
  | exception Budget ->
    let reason =
      Printf.sprintf
        "dlin search budget exceeded (%d nodes) — inconclusive; raise max_nodes or shrink the scenario"
        max_nodes
    in
    Error { reason; jsonl = dump spec h ~recovered:(Some recovered) ~reason ~nodes:!nodes }
