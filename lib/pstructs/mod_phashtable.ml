module Ptm = Pstm.Ptm

(* MOD hash table: a fixed-depth 16-ary radix trie of immutable
   directory nodes over immutable chain nodes (arXiv 1908.11850's
   functional-shadow discipline applied to Phashtable's job).

   A flat bucket array (Phashtable's segment directory) cannot be
   shadow-updated without copying a whole 512-word segment per write;
   the trie keeps the path-copy at [levels] 17-word nodes plus the
   chain prefix, sharing everything else with the previous version.

   Layout:
     descriptor (2 words, the only mutable word is desc+1):
       word 0 : nbuckets (set once at create)
       word 1 : root directory pointer — the publish word
     directory node (17 words): [meta; child 0 .. child 15]
       meta = (magic_dir << 20) | level
     chain node (4 words): [meta; key; value; next]
       meta = magic_node << 20

   Bucket index = low bits of the splitmix hash; level [l] consumes
   bits [4l .. 4l+3].  Lookups walk [levels] trie nodes then the
   chain.  Updates path-copy the trie spine and the chain prefix up to
   the modified node (the tail is shared), then swap desc+1 — under
   [Ptm.algorithm = Mod] that is one fence and one 8-byte root store.

   Replaced nodes are retired to a volatile epoch list keyed on
   [Ptm.min_active_rv], exactly as in {!Mod_bptree}. *)

let magic_dir = 0x4D1
let magic_node = 0x4D2
let dir_fanout = 16
let dir_words = 1 + dir_fanout
let node_words = 4

let dir_meta ~level = (magic_dir lsl 20) lor level
let dir_ok m ~level = m = dir_meta ~level
let node_ok m = m = magic_node lsl 20

let max_levels = 3
let max_buckets = 1 lsl (4 * max_levels)

let round_buckets n =
  let n = max dir_fanout (min n max_buckets) in
  (* round up to a power of 16 *)
  let rec go cap = if cap >= n then cap else go (cap * dir_fanout) in
  go dir_fanout

type retired = { stamp : int; blocks : int list }

type t = {
  ptm : Ptm.t;
  desc : int;
  nbuckets : int;
  levels : int;
  mutable retired : retired list; (* volatile *)
}

let levels_for nbuckets =
  let rec go l cap = if cap >= nbuckets then l else go (l + 1) (cap * dir_fanout) in
  go 1 dir_fanout

let create ptm ~buckets =
  let nbuckets = round_buckets buckets in
  let desc =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx 2 in
        Ptm.write tx d nbuckets;
        Ptm.write tx (d + 1) 0;
        d)
  in
  { ptm; desc; nbuckets; levels = levels_for nbuckets; retired = [] }

let attach ptm desc =
  let nbuckets = (Ptm.machine ptm).Machine.raw_read desc in
  { ptm; desc; nbuckets; levels = levels_for nbuckets; retired = [] }

let descriptor t = t.desc
let buckets t = t.nbuckets

(* Same splitmix finalizer as Phashtable. *)
let hash key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 32)

let slot_at t h level = (h lsr (4 * (t.levels - 1 - level))) land (dir_fanout - 1)

(* ---------- defensive traversal (see Mod_bptree) ---------- *)

let check_bounds tx t addr words =
  let reg = Ptm.region t.ptm in
  if addr < Pmem.Region.data_start reg || addr + words > Pmem.Region.data_end reg then
    Ptm.abort_and_retry tx

let dir_node tx t node ~level =
  check_bounds tx t node dir_words;
  if not (dir_ok (Ptm.read tx node) ~level) then Ptm.abort_and_retry tx;
  node

let chain_node tx t node =
  check_bounds tx t node node_words;
  if not (node_ok (Ptm.read tx node)) then Ptm.abort_and_retry tx;
  node

(* ---------- reclamation ---------- *)

let retired_blocks t = List.fold_left (fun n r -> n + List.length r.blocks) 0 t.retired

(* See Mod_bptree.reclaim: the clwb+sfence of the root line closes the
   lagging-media-root hazard before any block is recycled; the batch
   threshold amortizes it below a fraction of a fence per op. *)
let reclaim t =
  let horizon = Ptm.min_active_rv t.ptm in
  let live, dead = List.partition (fun r -> r.stamp >= horizon) t.retired in
  if dead <> [] then begin
    t.retired <- live;
    let m = Ptm.machine t.ptm in
    if m.Machine.needs_flush then begin
      m.Machine.clwb (t.desc + 1);
      m.Machine.sfence ()
    end;
    let raw_ops =
      {
        Pmem.Alloc.txr = m.Machine.raw_read;
        txw = m.Machine.raw_write;
        on_commit = (fun hook -> hook ());
        on_abort = ignore;
      }
    in
    let alc = Ptm.allocator t.ptm in
    List.iter (fun r -> List.iter (Pmem.Alloc.free alc raw_ops) r.blocks) dead
  end

let reclaim_threshold = 128

let retire tx t blocks =
  if blocks <> [] then
    Ptm.on_commit tx (fun () ->
        t.retired <- { stamp = Ptm.clock t.ptm; blocks } :: t.retired;
        if retired_blocks t >= reclaim_threshold then reclaim t)

(* ---------- node builders ---------- *)

let new_dir tx ~level children =
  let d = Ptm.alloc tx dir_words in
  Ptm.write tx d (dir_meta ~level);
  Array.iteri (fun i c -> Ptm.write tx (d + 1 + i) c) children;
  d

let load_dir tx t node ~level =
  let node = dir_node tx t node ~level in
  Array.init dir_fanout (fun i -> Ptm.read tx (node + 1 + i))

let new_node tx ~key ~value ~next =
  let n = Ptm.alloc tx node_words in
  Ptm.write tx n (magic_node lsl 20);
  Ptm.write tx (n + 1) key;
  Ptm.write tx (n + 2) value;
  Ptm.write tx (n + 3) next;
  n

(* ---------- updates ---------- *)

(* Rebuild the trie spine for bucket [h] with the bucket head replaced
   by [f old_head]; [f] returns [None] to abandon (no change — nothing
   allocated yet when it does). *)
let update_bucket tx t h f =
  let dead = ref [] in
  let rec go node level =
    if level = t.levels then begin
      (* [node] is the chain head *)
      match f node with
      | None -> None
      | Some head -> Some head
    end
    else begin
      let children =
        if node = 0 then Array.make dir_fanout 0 else load_dir tx t node ~level
      in
      let slot = slot_at t h level in
      match go children.(slot) (level + 1) with
      | None -> None
      | Some c ->
        if node <> 0 then dead := node :: !dead;
        let children = Array.copy children in
        children.(slot) <- c;
        Some (new_dir tx ~level children)
    end
  in
  match go (Ptm.read tx (t.desc + 1)) 0 with
  | None -> false
  | Some nroot ->
    Ptm.write tx (t.desc + 1) nroot;
    retire tx t !dead;
    true

let put tx t ~key ~value =
  assert (key > 0);
  let added = ref false in
  let replaced = ref [] in
  let rebuild head =
    (* Copy the chain prefix up to the matching node (tail shared);
       prepend when absent. *)
    let rec go node =
      if node = 0 then begin
        added := true;
        `Missing
      end
      else begin
        let node = chain_node tx t node in
        if Ptm.read tx (node + 1) = key then begin
          replaced := [ node ];
          `Found (new_node tx ~key ~value ~next:(Ptm.read tx (node + 3)))
        end
        else begin
          match go (Ptm.read tx (node + 3)) with
          | `Missing -> `Missing
          | `Found tail ->
            replaced := node :: !replaced;
            `Found
              (new_node tx ~key:(Ptm.read tx (node + 1)) ~value:(Ptm.read tx (node + 2))
                 ~next:tail)
        end
      end
    in
    match go head with
    | `Missing -> Some (new_node tx ~key ~value ~next:head)
    | `Found head' -> Some head'
  in
  ignore (update_bucket tx t (hash key) rebuild);
  retire tx t !replaced;
  !added

let get tx t key =
  let h = hash key in
  let rec walk node level =
    if node = 0 then None
    else if level = t.levels then begin
      let rec chain node =
        if node = 0 then None
        else begin
          let node = chain_node tx t node in
          if Ptm.read tx (node + 1) = key then Some (Ptm.read tx (node + 2))
          else chain (Ptm.read tx (node + 3))
        end
      in
      chain node
    end
    else begin
      let node = dir_node tx t node ~level in
      walk (Ptm.read tx (node + 1 + slot_at t h level)) (level + 1)
    end
  in
  walk (Ptm.read tx (t.desc + 1)) 0

let remove tx t key =
  let removed = ref [] in
  let rebuild head =
    let rec go node =
      if node = 0 then `Missing
      else begin
        let node = chain_node tx t node in
        if Ptm.read tx (node + 1) = key then begin
          removed := node :: !removed;
          `Found (Ptm.read tx (node + 3))
        end
        else begin
          match go (Ptm.read tx (node + 3)) with
          | `Missing -> `Missing
          | `Found tail ->
            removed := node :: !removed;
            `Found
              (new_node tx ~key:(Ptm.read tx (node + 1)) ~value:(Ptm.read tx (node + 2))
                 ~next:tail)
        end
      end
    in
    match go head with `Missing -> None | `Found head' -> Some head'
  in
  let did = update_bucket tx t (hash key) rebuild in
  if did then retire tx t !removed;
  did

(* ---------- untimed oracles ---------- *)

let iter_raw t f =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let rec walk node level prefix =
    if node <> 0 then
      if level = t.levels then begin
        let cursor = ref node in
        while !cursor <> 0 do
          f prefix (raw (!cursor + 1)) (raw (!cursor + 2));
          cursor := raw (!cursor + 3)
        done
      end
      else
        for i = 0 to dir_fanout - 1 do
          walk (raw (node + 1 + i)) (level + 1) ((prefix lsl 4) lor i)
        done
  in
  walk (raw (t.desc + 1)) 0 0

let to_alist t =
  let acc = ref [] in
  iter_raw t (fun _ k v -> acc := (k, v) :: !acc);
  !acc

let chain_lengths t =
  let lens = Array.make t.nbuckets 0 in
  iter_raw t (fun b _ _ ->
      (* [b] is the trie path, whose bit order differs from the flat
         bucket index; it is still a stable 1:1 bucket id. *)
      lens.(b land (t.nbuckets - 1)) <- lens.(b land (t.nbuckets - 1)) + 1);
  lens

let check_invariants t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let reg = Ptm.region t.ptm in
  let fail fmt = Printf.ksprintf failwith fmt in
  let seen = Hashtbl.create 64 in
  let rec walk node level path =
    if node <> 0 then begin
      if node < Pmem.Region.data_start reg || node + dir_words > Pmem.Region.data_end reg
      then fail "trie node %d outside the data area" node;
      if level = t.levels then begin
        let cursor = ref node in
        while !cursor <> 0 do
          let n = !cursor in
          if n < Pmem.Region.data_start reg || n + node_words > Pmem.Region.data_end reg
          then fail "chain node %d outside the data area" n;
          if not (node_ok (raw n)) then fail "chain node %d bad meta %x" n (raw n);
          let k = raw (n + 1) in
          if Hashtbl.mem seen k then fail "duplicate key %d" k;
          Hashtbl.add seen k ();
          let h = hash k in
          let want =
            let p = ref 0 in
            for l = 0 to t.levels - 1 do
              p := (!p lsl 4) lor ((h lsr (4 * (t.levels - 1 - l))) land 0xF)
            done;
            !p
          in
          if want <> path then fail "key %d in wrong bucket (%d, want %d)" k path want;
          cursor := raw (n + 3)
        done
      end
      else begin
        if not (dir_ok (raw node) ~level) then fail "trie node %d bad meta %x" node (raw node);
        for i = 0 to dir_fanout - 1 do
          walk (raw (node + 1 + i)) (level + 1) ((path lsl 4) lor i)
        done
      end
    end
  in
  walk (raw (t.desc + 1)) 0 0
