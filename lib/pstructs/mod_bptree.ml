module Ptm = Pstm.Ptm

(* MOD B+Tree: purely-functional persistent nodes (arXiv 1908.11850).
   Nodes are immutable once published — every update path-copies from
   the touched leaf up to the root into freshly allocated blocks, then
   swings the one-word descriptor to the new root.  Under
   [Ptm.algorithm = Mod] that shape commits with a single ordering
   fence; under redo/undo the same code runs as ordinary logged
   transactions (useful for differential testing).

   Node layout (node_words words, one allocator block):
     word 0           : (magic << 20) | (is_leaf << 16) | nkeys
     words 1 .. b     : keys
     leaf:     words b+1 .. 2b   : values
     internal: words b+1 .. 2b+1 : children (nkeys+1 used)

   There is no leaf chain: a next-leaf pointer would make the left
   sibling mutable on every split, breaking the shadow discipline.
   Ordered iteration walks the tree instead.

   Reclamation: replaced nodes are retired to a volatile per-handle
   list stamped with the post-swap clock value; a block is recycled
   (raw free-list push, no transaction) once [Ptm.min_active_rv]
   passes its stamp, i.e. no in-flight snapshot can still reach it.
   A crash drops the volatile lists — those blocks leak, bounded by
   the retire window, and `Pmem.Check` treats unreachable allocated
   blocks as benign. *)

let fanout = 14
let b = fanout
let node_words = (2 * b) + 2
let magic = 0x4D (* 'M' *)

let off_meta = 0
let off_key i = 1 + i
let off_val i = 1 + b + i
let off_child i = 1 + b + i

let meta ~leaf ~nkeys = (magic lsl 20) lor ((if leaf then 1 else 0) lsl 16) lor nkeys
let meta_is_leaf m = (m lsr 16) land 1 = 1
let meta_nkeys m = m land 0xFFFF
let meta_ok m = m lsr 20 = magic && meta_nkeys m <= b

type retired = { stamp : int; blocks : int list }

type t = {
  ptm : Ptm.t;
  desc : int; (* one word: the root pointer — the only mutable word *)
  mutable retired : retired list; (* volatile, oldest last *)
}

let create ptm =
  let desc =
    Ptm.atomic ptm (fun tx ->
        let d = Ptm.alloc tx 1 in
        Ptm.write tx d 0;
        d)
  in
  { ptm; desc; retired = [] }

let attach ptm desc = { ptm; desc; retired = [] }

let descriptor t = t.desc

(* ---------- defensive traversal ----------

   Concurrent MOD readers run without ownership records on shadow
   nodes; a snapshot older than two root swaps can race block
   recycling and read a node mid-reuse.  Every pointer is therefore
   bounds- and magic-checked before being dereferenced: garbage turns
   into [abort_and_retry] (the retry re-reads the root, whose orec has
   moved, and conflicts cleanly) instead of a wild heap access. *)

let node_meta tx t node =
  let reg = Ptm.region t.ptm in
  if
    node < Pmem.Region.data_start reg
    || node + node_words > Pmem.Region.data_end reg
  then Ptm.abort_and_retry tx;
  let m = Ptm.read tx (node + off_meta) in
  if not (meta_ok m) then Ptm.abort_and_retry tx;
  m

(* ---------- reclamation ---------- *)

let retired_blocks t = List.fold_left (fun n r -> n + List.length r.blocks) 0 t.retired

(* Reclaiming a block is safe only when (a) no in-flight snapshot can
   reach it — [min_active_rv] has passed its retire stamp — AND (b) no
   {e durable} root can: the root swap is published with an unfenced
   clwb, so the media root may lag the memory root by several versions,
   and recycling a block an old media root still references would
   corrupt the crash image.  One clwb+sfence of the root line per
   reclaim batch closes (b) — the drained root postdates every unlink
   in the batch — and the batch threshold amortizes it to a fraction of
   a fence per op, preserving the one-fence-per-update discipline. *)
let reclaim t =
  let horizon = Ptm.min_active_rv t.ptm in
  let live, dead = List.partition (fun r -> r.stamp >= horizon) t.retired in
  if dead <> [] then begin
    t.retired <- live;
    let m = Ptm.machine t.ptm in
    if m.Machine.needs_flush then begin
      m.Machine.clwb t.desc;
      m.Machine.sfence ()
    end;
    let raw_ops =
      {
        Pmem.Alloc.txr = m.Machine.raw_read;
        txw = m.Machine.raw_write;
        on_commit = (fun hook -> hook ());
        on_abort = ignore;
      }
    in
    let alc = Ptm.allocator t.ptm in
    List.iter (fun r -> List.iter (Pmem.Alloc.free alc raw_ops) r.blocks) dead
  end

let reclaim_threshold = 128

let retire tx t blocks =
  if blocks <> [] then
    Ptm.on_commit tx (fun () ->
        t.retired <- { stamp = Ptm.clock t.ptm; blocks } :: t.retired;
        if retired_blocks t >= reclaim_threshold then reclaim t)

(* ---------- functional node builders ---------- *)

(* A node under construction, in volatile arrays. *)
type scratch = { leaf : bool; n : int; keys : int array; vals : int array }

(* keys.(0..n-1); vals carries values (leaf) or children (internal,
   n+1 used). *)

let load tx t node =
  let m = node_meta tx t node in
  let n = meta_nkeys m in
  let leaf = meta_is_leaf m in
  let keys = Array.init n (fun i -> Ptm.read tx (node + off_key i)) in
  let vals =
    if leaf then Array.init n (fun i -> Ptm.read tx (node + off_val i))
    else Array.init (n + 1) (fun i -> Ptm.read tx (node + off_child i))
  in
  { leaf; n; keys; vals }

let store tx s =
  let node = Ptm.alloc tx node_words in
  Ptm.write tx (node + off_meta) (meta ~leaf:s.leaf ~nkeys:s.n);
  for i = 0 to s.n - 1 do
    Ptm.write tx (node + off_key i) s.keys.(i)
  done;
  if s.leaf then
    for i = 0 to s.n - 1 do
      Ptm.write tx (node + off_val i) s.vals.(i)
    done
  else
    for i = 0 to s.n do
      Ptm.write tx (node + off_child i) s.vals.(i)
    done;
  node

(* Position of the first key >= [key]. *)
let scratch_pos s key =
  let rec go i = if i >= s.n then i else if s.keys.(i) >= key then i else go (i + 1) in
  go 0

(* Child slot for [key]: equal keys live in the right subtree. *)
let child_slot s key =
  let pos = scratch_pos s key in
  if pos < s.n && s.keys.(pos) = key then pos + 1 else pos

(* Split an overfull scratch (n = b + 1) into left/right + separator.
   Leaves keep the separator in the right half (B+ semantics: the
   separator equals right's minimum); internals move the median up. *)
let split s =
  if s.leaf then begin
    let h = (b + 2) / 2 in
    let rn = s.n - h in
    let left = { leaf = true; n = h; keys = Array.sub s.keys 0 h; vals = Array.sub s.vals 0 h } in
    let right =
      { leaf = true; n = rn; keys = Array.sub s.keys h rn; vals = Array.sub s.vals h rn }
    in
    (left, s.keys.(h), right)
  end
  else begin
    let h = (b + 2) / 2 in
    (* median key at h-1 moves up *)
    let rn = s.n - h in
    let left =
      { leaf = false; n = h - 1; keys = Array.sub s.keys 0 (h - 1); vals = Array.sub s.vals 0 h }
    in
    let right =
      {
        leaf = false;
        n = rn;
        keys = Array.sub s.keys h rn;
        vals = Array.sub s.vals h (rn + 1);
      }
    in
    (left, s.keys.(h - 1), right)
  end

let insert_at arr pos v n =
  let out = Array.make (n + 1) 0 in
  Array.blit arr 0 out 0 pos;
  out.(pos) <- v;
  Array.blit arr pos out (pos + 1) (n - pos);
  out

(* ---------- updates ---------- *)

let insert tx t ~key ~value =
  assert (key > 0);
  let dead = ref [] in
  (* Copy the path from [node] down; returns either one new node or a
     split pair, plus whether a binding was added. *)
  let rec ins node =
    let s = load tx t node in
    dead := node :: !dead;
    if s.leaf then begin
      let pos = scratch_pos s key in
      if pos < s.n && s.keys.(pos) = key then begin
        let vals = Array.copy s.vals in
        vals.(pos) <- value;
        (`One (store tx { s with vals }), false)
      end
      else begin
        let s' =
          {
            s with
            n = s.n + 1;
            keys = insert_at s.keys pos key s.n;
            vals = insert_at s.vals pos value s.n;
          }
        in
        if s'.n <= b then (`One (store tx s'), true)
        else begin
          let l, sep, r = split s' in
          (`Split (store tx l, sep, store tx r), true)
        end
      end
    end
    else begin
      let slot = child_slot s key in
      let sub, added = ins s.vals.(slot) in
      match sub with
      | `One c ->
        let vals = Array.copy s.vals in
        vals.(slot) <- c;
        (`One (store tx { s with vals }), added)
      | `Split (l, sep, r) ->
        let keys = insert_at s.keys slot sep s.n in
        let vals = Array.make (s.n + 2) 0 in
        Array.blit s.vals 0 vals 0 slot;
        vals.(slot) <- l;
        vals.(slot + 1) <- r;
        Array.blit s.vals (slot + 1) vals (slot + 2) (s.n - slot);
        let s' = { s with n = s.n + 1; keys; vals } in
        if s'.n <= b then (`One (store tx s'), added)
        else begin
          let l', sep', r' = split s' in
          (`Split (store tx l', sep', store tx r'), added)
        end
    end
  in
  let root = Ptm.read tx t.desc in
  let nroot, added =
    if root = 0 then
      (store tx { leaf = true; n = 1; keys = [| key |]; vals = [| value |] }, true)
    else begin
      match ins root with
      | `One n, added -> (n, added)
      | `Split (l, sep, r), added ->
        (store tx { leaf = false; n = 1; keys = [| sep |]; vals = [| l; r |] }, added)
    end
  in
  Ptm.write tx t.desc nroot;
  retire tx t !dead;
  added

let remove tx t key =
  let dead = ref [] in
  (* Returns the replacement node, or raises Not_found to mean "key
     absent" — in that case nothing was allocated (loads only). *)
  let rec del node =
    let s = load tx t node in
    if s.leaf then begin
      let pos = scratch_pos s key in
      if pos < s.n && s.keys.(pos) = key then begin
        dead := node :: !dead;
        let keys = Array.init (s.n - 1) (fun i -> if i < pos then s.keys.(i) else s.keys.(i + 1)) in
        let vals = Array.init (s.n - 1) (fun i -> if i < pos then s.vals.(i) else s.vals.(i + 1)) in
        store tx { s with n = s.n - 1; keys; vals }
      end
      else raise Not_found
    end
    else begin
      let slot = child_slot s key in
      let c = del s.vals.(slot) in
      dead := node :: !dead;
      let vals = Array.copy s.vals in
      vals.(slot) <- c;
      store tx { s with vals }
    end
  in
  let root = Ptm.read tx t.desc in
  if root = 0 then false
  else begin
    match del root with
    | nroot ->
      Ptm.write tx t.desc nroot;
      retire tx t !dead;
      true
    | exception Not_found -> false
  end

(* ---------- reads ---------- *)

let lookup tx t key =
  let root = Ptm.read tx t.desc in
  if root = 0 then None
  else begin
    let rec go node =
      let m = node_meta tx t node in
      let n = meta_nkeys m in
      if meta_is_leaf m then begin
        let rec scan i =
          if i >= n then None
          else begin
            let k = Ptm.read tx (node + off_key i) in
            if k = key then Some (Ptm.read tx (node + off_val i))
            else if k > key then None
            else scan (i + 1)
          end
        in
        scan 0
      end
      else begin
        let rec pos i =
          if i >= n then i
          else begin
            let k = Ptm.read tx (node + off_key i) in
            if key < k then i else if k = key then i + 1 else pos (i + 1)
          end
        in
        go (Ptm.read tx (node + off_child (pos 0)))
      end
    in
    go root
  end

let fold_range tx t ~lo ~hi f acc =
  assert (lo <= hi);
  let root = Ptm.read tx t.desc in
  if root = 0 then acc
  else begin
    (* In-order walk, pruned by the separator bounds. *)
    let rec go node acc =
      let m = node_meta tx t node in
      let n = meta_nkeys m in
      if meta_is_leaf m then begin
        let acc = ref acc in
        for i = 0 to n - 1 do
          let k = Ptm.read tx (node + off_key i) in
          if k >= lo && k <= hi then acc := f !acc k (Ptm.read tx (node + off_val i))
        done;
        !acc
      end
      else begin
        let acc = ref acc in
        for i = 0 to n do
          let klo = if i = 0 then min_int else Ptm.read tx (node + off_key (i - 1)) in
          let khi = if i = n then max_int else Ptm.read tx (node + off_key i) in
          (* subtree i holds keys in [klo, khi) *)
          if klo <= hi && khi > lo then acc := go (Ptm.read tx (node + off_child i)) !acc
        done;
        !acc
      end
    in
    go root acc
  end

let min_binding tx t =
  let root = Ptm.read tx t.desc in
  if root = 0 then None
  else begin
    (* Leaves can be empty after deletions (no rebalancing), so walk
       subtrees left to right until a binding appears. *)
    let rec go node =
      let m = node_meta tx t node in
      let n = meta_nkeys m in
      if meta_is_leaf m then
        if n > 0 then Some (Ptm.read tx (node + off_key 0), Ptm.read tx (node + off_val 0))
        else None
      else begin
        let rec try_child i =
          if i > n then None
          else begin
            match go (Ptm.read tx (node + off_child i)) with
            | Some _ as r -> r
            | None -> try_child (i + 1)
          end
        in
        try_child 0
      end
    in
    go root
  end

(* ---------- untimed oracles ---------- *)

let to_alist t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let root = raw t.desc in
  if root = 0 then []
  else begin
    let rec go node acc =
      let m = raw (node + off_meta) in
      let n = meta_nkeys m in
      if meta_is_leaf m then begin
        let acc = ref acc in
        for i = n - 1 downto 0 do
          acc := (raw (node + off_key i), raw (node + off_val i)) :: !acc
        done;
        !acc
      end
      else begin
        let acc = ref acc in
        for i = n downto 0 do
          acc := go (raw (node + off_child i)) !acc
        done;
        !acc
      end
    in
    go root []
  end

let check_invariants t =
  let raw = (Ptm.machine t.ptm).Machine.raw_read in
  let fail fmt = Printf.ksprintf failwith fmt in
  let reg = Ptm.region t.ptm in
  let root = raw t.desc in
  if root <> 0 then begin
    (* Returns leaf depth; checks magic, bounds and key order (lo, hi
       are exclusive bounds; 0 = unbounded). *)
    let rec check node lo hi =
      if node < Pmem.Region.data_start reg || node + node_words > Pmem.Region.data_end reg
      then fail "node %d outside the data area" node;
      let m = raw (node + off_meta) in
      if not (meta_ok m) then fail "node %d bad meta %x" node m;
      let nkeys = meta_nkeys m in
      let prev = ref lo in
      for i = 0 to nkeys - 1 do
        let k = raw (node + off_key i) in
        if !prev <> 0 && k < !prev then fail "node %d keys out of order" node;
        if hi <> 0 && k >= hi then fail "node %d key %d >= upper bound %d" node k hi;
        if lo <> 0 && k < lo then fail "node %d key %d < lower bound %d" node k lo;
        prev := k
      done;
      if meta_is_leaf m then 1
      else begin
        if nkeys = 0 then fail "empty internal node %d" node;
        let depth = ref 0 in
        for i = 0 to nkeys do
          let lo' = if i = 0 then lo else raw (node + off_key (i - 1)) in
          let hi' = if i = nkeys then hi else raw (node + off_key i) in
          let d = check (raw (node + off_child i)) lo' hi' in
          if !depth = 0 then depth := d
          else if d <> !depth then fail "uneven leaf depth under node %d" node
        done;
        !depth + 1
      end
    in
    ignore (check root 0 0);
    let keys = List.map fst (to_alist t) in
    if List.sort_uniq compare keys <> keys then fail "keys not sorted and unique"
  end
