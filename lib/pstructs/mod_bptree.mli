(** MOD B+Tree: a minimally-ordered-durable tree on purely-functional
    persistent nodes (Haria et al., arXiv 1908.11850).

    Same ordered-map API as {!Bptree}, different update discipline:
    nodes are immutable once reachable, every update path-copies the
    touched leaf-to-root spine into freshly allocated shadow nodes and
    swings the one-word descriptor.  Under {!Pstm.Ptm.algorithm} [Mod]
    each update therefore commits with exactly one ordering fence (the
    shadow sweep) and an unfenced 8-byte root swap — buffered durable
    linearizability: a crash can lose a WPQ-bounded committed suffix,
    never consistency.  The same code also runs under redo/undo
    logging for differential comparison.

    Replaced nodes are retired to a volatile epoch list and recycled
    once {!Pstm.Ptm.min_active_rv} proves no in-flight snapshot can
    reach them; a crash drops the list, leaking those blocks (benign —
    bounded by the retire window and invisible to [Pmem.Check]).

    Unlike {!Bptree} there is no next-leaf chain (it would make a
    sibling mutable on split); ordered iteration walks the tree. *)

type t

val fanout : int
(** Maximum keys per node. *)

val create : Pstm.Ptm.t -> t
(** Allocate an empty tree (runs its own transaction); persist the
    {!descriptor} in a root slot to find it after recovery. *)

val attach : Pstm.Ptm.t -> int -> t
(** Re-attach to a tree by descriptor address (e.g. after recovery).
    The fresh handle starts with an empty retire list. *)

val descriptor : t -> int
(** The tree's one-word root pointer — the only word updates mutate in
    place, and the only word whose ownership record is ever taken. *)

val insert : Pstm.Ptm.tx -> t -> key:int -> value:int -> bool
(** [insert tx t ~key ~value] binds [key] (which must be positive).
    Returns [true] if the key was new, [false] if a binding was
    replaced. *)

val lookup : Pstm.Ptm.tx -> t -> int -> int option
val remove : Pstm.Ptm.tx -> t -> int -> bool

val min_binding : Pstm.Ptm.tx -> t -> (int * int) option

val fold_range : Pstm.Ptm.tx -> t -> lo:int -> hi:int -> ('a -> int -> int -> 'a) -> 'a -> 'a
(** [fold_range tx t ~lo ~hi f acc] folds [f acc key value] over
    bindings with [lo <= key <= hi] in ascending key order. *)

val reclaim : t -> unit
(** Recycle retired nodes whose epoch has passed the reclamation
    horizon.  Before recycling, the root line is flushed and fenced
    once per batch so no lagging durable root can still reference a
    recycled block; the retire path triggers this automatically once
    enough blocks accumulate (amortizing the extra fence), and the
    explicit call forces a sweep after quiescence. *)

val retired_blocks : t -> int
(** Blocks currently parked on the volatile retire list (a reclamation
    bound for tests). *)

(** {1 Untimed oracles} — raw reads outside any transaction, for
    validation harnesses only. *)

val to_alist : t -> (int * int) list
(** All bindings in ascending key order. *)

val check_invariants : t -> unit
(** Raises [Failure] on any structural violation: node magic/bounds,
    key order, separator bounds, uneven leaf depth. *)
