(** MOD hash table: minimally-ordered-durable key/value map on a
    fixed-depth 16-ary radix trie of purely-functional nodes
    (Haria et al., arXiv 1908.11850).

    Same map API as {!Phashtable}, but where Phashtable mutates bucket
    heads in place under logging, every update here path-copies the
    trie spine (one 17-word directory node per level) plus the chain
    prefix up to the modified node, then swings the descriptor's root
    word — under {!Pstm.Ptm.algorithm} [Mod] that commits with exactly
    one fence and an unfenced 8-byte root swap (buffered durability: a
    crash can lose a WPQ-bounded committed suffix).  The flat segment
    array of
    {!Phashtable} is deliberately avoided: shadow-updating it would
    copy a 512-word segment per write.

    Replaced nodes are retired to a volatile epoch list and recycled
    once {!Pstm.Ptm.min_active_rv} passes their stamp, as in
    {!Mod_bptree}; crash-dropped retire lists leak benignly. *)

type t

val create : Pstm.Ptm.t -> buckets:int -> t
(** [create ptm ~buckets] rounds [buckets] to a power of 16 in
    [16, 4096] (the trie depth follows).  Runs one transaction. *)

val attach : Pstm.Ptm.t -> int -> t
(** Re-attach by descriptor address (e.g. after recovery); the handle
    starts with an empty retire list. *)

val descriptor : t -> int
val buckets : t -> int

val put : Pstm.Ptm.tx -> t -> key:int -> value:int -> bool
(** [put tx t ~key ~value] binds [key] (positive).  [true] = new key,
    [false] = replaced. *)

val get : Pstm.Ptm.tx -> t -> int -> int option
val remove : Pstm.Ptm.tx -> t -> int -> bool

val reclaim : t -> unit
(** Force an epoch sweep of the retire list (the retire path triggers
    one automatically once enough blocks accumulate; each sweep
    flushes and fences the root line once so no lagging durable root
    references a recycled block). *)

val retired_blocks : t -> int
(** Blocks parked on the volatile retire list. *)

(** {1 Untimed oracles} *)

val to_alist : t -> (int * int) list
(** All bindings, unordered. *)

val chain_lengths : t -> int array
(** Per-bucket chain lengths (indexed by trie path). *)

val check_invariants : t -> unit
(** Raises [Failure] on structural violations: node magic/bounds,
    keys hashed to the wrong bucket, duplicate keys. *)
