module Layout = Machine.Layout

(* Header words. *)
let magic_word = 0x504d454d (* "PMEM" *)
let h_magic = 0
let h_roots = 1
let h_max_threads = 2
let h_log_words = 3
let h_data_start = 4
let h_high_water = 5 (* persistent allocator high-water mark; see Alloc *)
let h_snap_words = 6 (* snapshot-log area size (0 = none); see Fams *)
let h_roots_base = 8

type t = {
  m : Machine.t;
  roots : int;
  max_threads : int;
  log_words_per_thread : int;
  log_base : int;
  snapshot_base : int;
  snapshot_words : int;
  data_start : int;
}

let page_align addr =
  let p = Layout.words_per_page in
  (addr + p - 1) / p * p

let layout ~roots ~log_words_per_thread ~max_threads ~snapshot_words (m : Machine.t) =
  let log_base = page_align (h_roots_base + roots) in
  let log_words_per_thread = page_align log_words_per_thread in
  let snapshot_base = page_align (log_base + (max_threads * log_words_per_thread)) in
  let data_start = page_align (snapshot_base + snapshot_words) in
  if data_start >= m.Machine.words then failwith "Region: heap too small for layout";
  (log_base, log_words_per_thread, snapshot_base, data_start)

let create ?(roots = 16) ?(log_words_per_thread = 8192) ?(max_threads = 32)
    ?(snapshot_words = 0) (m : Machine.t) =
  if snapshot_words < 0 then invalid_arg "Region.create: negative snapshot_words";
  let log_base, log_words_per_thread, snapshot_base, data_start =
    layout ~roots ~log_words_per_thread ~max_threads ~snapshot_words m
  in
  m.Machine.raw_write h_magic magic_word;
  m.Machine.raw_write h_roots roots;
  m.Machine.raw_write h_max_threads max_threads;
  m.Machine.raw_write h_log_words log_words_per_thread;
  m.Machine.raw_write h_data_start data_start;
  m.Machine.raw_write h_high_water data_start;
  m.Machine.raw_write h_snap_words snapshot_words;
  for i = 0 to roots - 1 do
    m.Machine.raw_write (h_roots_base + i) 0
  done;
  (* Only the PTM log area moves to battery-backed DRAM under
     PDRAM-Lite; the snapshot log must live on NVM — FAMS's commit
     record is its only durability story. *)
  m.Machine.mark_log_range log_base snapshot_base;
  { m; roots; max_threads; log_words_per_thread; log_base; snapshot_base; snapshot_words; data_start }

let attach (m : Machine.t) =
  let found = m.Machine.raw_read h_magic in
  if found <> magic_word then
    raise
      (Machine.Corrupt_image
         (Printf.sprintf "Region.attach: bad magic at word %d: found %#x, expected %#x" h_magic
            found magic_word));
  let roots = m.Machine.raw_read h_roots in
  let max_threads = m.Machine.raw_read h_max_threads in
  let log_words_per_thread = m.Machine.raw_read h_log_words in
  let data_start = m.Machine.raw_read h_data_start in
  let snapshot_words = m.Machine.raw_read h_snap_words in
  let log_base = page_align (h_roots_base + roots) in
  let snapshot_base = page_align (log_base + (max_threads * log_words_per_thread)) in
  m.Machine.mark_log_range log_base snapshot_base;
  { m; roots; max_threads; log_words_per_thread; log_base; snapshot_base; snapshot_words; data_start }

let machine t = t.m
let roots t = t.roots
let max_threads t = t.max_threads

let root_get t i =
  assert (i >= 0 && i < t.roots);
  t.m.Machine.raw_read (h_roots_base + i)

let root_set t i v =
  assert (i >= 0 && i < t.roots);
  t.m.Machine.store (h_roots_base + i) v;
  if t.m.Machine.needs_flush then begin
    t.m.Machine.clwb (h_roots_base + i);
    if t.m.Machine.needs_fence then t.m.Machine.sfence ()
  end

let log_base t ~tid =
  assert (tid >= 0 && tid < t.max_threads);
  t.log_base + (tid * t.log_words_per_thread)

let log_words_per_thread t = t.log_words_per_thread
let snapshot_base t = t.snapshot_base
let snapshot_words t = t.snapshot_words
let data_start t = t.data_start
let data_end t = t.m.Machine.words

(* Exposed for Alloc. *)
let high_water_addr = h_high_water
