(** Persistent region: the equivalent of a DAX-mapped pool file.

    Lays out the machine's persistent heap as

    {v
    [ header | roots | per-thread PTM log area | snapshot log | data area ]
    v}

    and records enough in the header to re-attach after a crash.  The
    log area is page-aligned and registered with the machine through
    [mark_log_range], so the PDRAM-Lite backend can map it to
    battery-backed DRAM.  The optional snapshot-log area (sized by
    [snapshot_words], 0 by default) backs the FAMS failure-atomic
    msync journal; it is deliberately {e not} part of the marked log
    range — its commit record is the subsystem's only durability
    story, so it must stay on NVM under every domain.

    Root slots are named persistent pointers (like [pmemobj_root]):
    applications store the address of their top-level structure in a
    root slot so recovery can find it again. *)

type t

val create :
  ?roots:int ->
  ?log_words_per_thread:int ->
  ?max_threads:int ->
  ?snapshot_words:int ->
  Machine.t ->
  t
(** Format a fresh region on the machine (destroys existing content).
    Defaults: 16 root slots, 8192 log words per thread, 32 threads, no
    snapshot-log area.  Header and layout are written and flushed
    durably. *)

val attach : Machine.t -> t
(** Re-open an existing region after a reboot; validates the header
    magic and re-registers the log range.
    @raise Machine.Corrupt_image if the header is not a valid region
    (the payload names the offending word and the magic found). *)

val machine : t -> Machine.t
val roots : t -> int
val max_threads : t -> int

val root_get : t -> int -> int
(** [root_get t i] reads root slot [i] (untimed; 0 when never set). *)

val root_set : t -> int -> int -> unit
(** Durable root update: store, flush, fence (timed). *)

val log_base : t -> tid:int -> int
(** Base address of thread [tid]'s log area. *)

val log_words_per_thread : t -> int

val snapshot_base : t -> int
(** Base address of the snapshot-log area (= [data_start] when the
    region was created without one). *)

val snapshot_words : t -> int
(** Size of the snapshot-log area (0 when absent). *)

val data_start : t -> int
val data_end : t -> int

(**/**)

val high_water_addr : int
(** Header word holding the allocator's persistent high-water mark;
    owned by {!Alloc}. *)
