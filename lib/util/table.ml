type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let cell_f x =
  if not (Float.is_finite x) then "-"
  else if x <> 0.0 && (Float.abs x < 0.01 || Float.abs x >= 1e7) then Printf.sprintf "%.3e" x
  else Printf.sprintf "%.2f" x

let columns t = List.length t.header

let pad_row t row =
  let n = columns t in
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let print ppf t =
  let rows = List.rev_map (pad_row t) t.rows in
  let all = t.header :: rows in
  let widths = Array.make (columns t) 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter measure all;
  let line row =
    let cells = List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row in
    Format.fprintf ppf "  %s@." (String.concat "  " cells)
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  line t.header;
  let rule = List.map (fun w -> String.make w '-') (Array.to_list widths) in
  line rule;
  List.iter line rows;
  Format.fprintf ppf "@."

let escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let rows = List.rev_map (pad_row t) t.rows in
  let render row = String.concat "," (List.map escape row) in
  String.concat "\n" (List.map render (t.header :: rows)) ^ "\n"
