(** Array-based binary min-heap specialised to integer keys and integer
    payloads.

    Drop-in replacement for {!Min_heap} on the scheduler's hot path:
    entries live in flat [int array]s, so pushing and popping an event
    allocates nothing (no entry record, no option, no tuple).  Tie-break
    order is identical to {!Min_heap} — FIFO among equal keys — so a
    scheduler switched from one to the other replays the exact same
    event order. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val push : t -> key:int -> int -> unit
(** O(log n) insertion; allocation-free except when the backing arrays
    grow.  The payload must be non-negative. *)

val pop : t -> int
(** Remove the payload with the smallest key (FIFO among equal keys);
    [-1] when empty.  The popped entry's key is available as
    {!last_key} until the next [pop]. *)

val last_key : t -> int
(** Key of the most recently popped entry.  Unspecified before the
    first successful [pop]. *)

val min_key : t -> int
(** Smallest key without removing it; [max_int] when empty — callers
    compare against it directly, no option allocated. *)

val clear : t -> unit
