(** Array-based binary min-heap specialised to integer keys and integer
    payloads — the event queue of the discrete-event scheduler.

    Entries live in flat [int array]s, so pushing and popping an event
    allocates nothing (no entry record, no option, no tuple).  Tie-break
    order is FIFO among equal keys, which keeps simulations
    deterministic.  The retired polymorphic {!Min_heap} survives only
    as this module's differential oracle: [test/test_util.ml] drives
    both heaps with identical operation sequences and requires
    identical pop orders. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val push : t -> key:int -> int -> unit
(** O(log n) insertion; allocation-free except when the backing arrays
    grow.  The payload must be non-negative. *)

val pop : t -> int
(** Remove the payload with the smallest key (FIFO among equal keys);
    [-1] when empty.  The popped entry's key is available as
    {!last_key} until the next [pop]. *)

val last_key : t -> int
(** Key of the most recently popped entry.  Unspecified before the
    first successful [pop]. *)

val min_key : t -> int
(** Smallest key without removing it; [max_int] when empty — callers
    compare against it directly, no option allocated. *)

val clear : t -> unit
