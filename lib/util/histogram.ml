(* Buckets: for each power of two [2^e, 2^(e+1)), 16 linear
   sub-buckets.  Index = e*16 + sub. *)

let sub_bits = 4
let sub_count = 1 lsl sub_bits
let exponents = 62
let total = exponents * sub_count

(* [sum] is an int: virtual-ns samples stay far under 2^62 in
   aggregate, and a float field in this mixed record would be boxed —
   one heap allocation per [record] on the driver's per-op path. *)
type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable max_value : int;
}

let create () = { counts = Array.make total 0; n = 0; sum = 0; max_value = 0 }

let index_of value =
  let value = max 1 value in
  (* position of the highest set bit *)
  let rec msb v acc = if v <= 1 then acc else msb (v lsr 1) (acc + 1) in
  let e = msb value 0 in
  let sub = if e >= sub_bits then (value lsr (e - sub_bits)) land (sub_count - 1) else 0 in
  min (total - 1) ((e * sub_count) + sub)

(* Representative (midpoint) value of a bucket. *)
let value_of index =
  let e = index / sub_count and sub = index mod sub_count in
  if e < sub_bits then float_of_int (1 lsl e)
  else begin
    let base = 1 lsl e in
    let step = base / sub_count in
    float_of_int (base + (sub * step) + (step / 2))
  end

let record t value =
  let value = max 1 value in
  let i = index_of value in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + value;
  if value > t.max_value then t.max_value <- value

let count t = t.n

let percentile t p =
  if t.n = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)) in
    let rank = max 1 (min t.n rank) in
    let acc = ref 0 in
    let result = ref nan in
    (try
       for i = 0 to total - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           result := value_of i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let mean t = if t.n = 0 then nan else float_of_int t.sum /. float_of_int t.n

let max_value t = t.max_value

let merge_into ~src ~dst =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum + src.sum;
  if src.max_value > dst.max_value then dst.max_value <- src.max_value

let merge a b =
  let t = create () in
  merge_into ~src:a ~dst:t;
  merge_into ~src:b ~dst:t;
  t

let merge_list ts = List.fold_left (fun acc h -> merge_into ~src:h ~dst:acc; acc) (create ()) ts

let clear t =
  Array.fill t.counts 0 total 0;
  t.n <- 0;
  t.sum <- 0;
  t.max_value <- 0
