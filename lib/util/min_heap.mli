(** Array-based binary min-heap with integer keys and polymorphic
    payloads.

    Retired from the hot path: the discrete-event scheduler now runs on
    the allocation-free {!Int_heap}.  This module is kept {e solely} as
    the easy-to-audit reference implementation — the differential
    oracle {!Int_heap} is tested against (see [test/test_util.ml]).
    Ties are broken by insertion order (FIFO), the property the
    scheduler's determinism rests on; both heaps implement it
    identically.  Do not add new production callers — use {!Int_heap}
    (int payloads) or a purpose-built structure instead. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** O(log n) insertion. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the (key, value) pair with the smallest key, FIFO
    among equal keys.  [None] when empty. *)

val peek_key : 'a t -> int option
(** Smallest key without removing it. *)

val clear : 'a t -> unit
