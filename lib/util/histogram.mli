(** Log-scale latency histogram (HdrHistogram-style, power-of-two
    buckets with linear sub-buckets).

    Constant memory, O(1) record, value error bounded by 1/16 of the
    value — plenty for reporting p50/p95/p99 transaction latencies. *)

type t

val create : unit -> t
(** Covers values from 1 to 2^62. *)

val record : t -> int -> unit
(** Record a non-negative sample (0 is clamped to 1). *)

val count : t -> int

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]; [nan] when empty.  Returns
    the representative value of the bucket containing the rank. *)

val mean : t -> float

val max_value : t -> int

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s counts into [dst] (per-thread histograms to a global). *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples; the inputs are left
    untouched.  Merging an empty histogram is the identity. *)

val merge_list : t list -> t
(** Fold {!merge} over a list; empty list yields an empty histogram. *)

val clear : t -> unit
