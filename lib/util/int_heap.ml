(* Three parallel arrays per slot: key, insertion sequence (FIFO
   tie-break, mirroring Min_heap), payload.  All sifting moves ints
   only. *)

type t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable size : int;
  mutable next_seq : int;
  mutable popped_key : int;
}

let create () =
  {
    keys = [||];
    seqs = [||];
    vals = [||];
    size = 0;
    next_seq = 0;
    popped_key = max_int;
  }

let length t = t.size

let is_empty t = t.size = 0

(* Slot [a] precedes slot [b] in heap order. *)
let before t a b =
  t.keys.(a) < t.keys.(b) || (t.keys.(a) = t.keys.(b) && t.seqs.(a) < t.seqs.(b))

let swap t a b =
  let k = t.keys.(a) in
  t.keys.(a) <- t.keys.(b);
  t.keys.(b) <- k;
  let s = t.seqs.(a) in
  t.seqs.(a) <- t.seqs.(b);
  t.seqs.(b) <- s;
  let v = t.vals.(a) in
  t.vals.(a) <- t.vals.(b);
  t.vals.(b) <- v

let grow t =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let extend src = Array.append src (Array.make (ncap - cap) 0) in
    t.keys <- extend t.keys;
    t.seqs <- extend t.seqs;
    t.vals <- extend t.vals
  end

let push t ~key value =
  grow t;
  let i = ref t.size in
  t.keys.(!i) <- key;
  t.seqs.(!i) <- t.next_seq;
  t.vals.(!i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t !i parent then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then -1
  else begin
    let top = t.vals.(0) in
    t.popped_key <- t.keys.(0);
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t l !smallest then smallest := l;
        if r < t.size && before t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !smallest !i;
          i := !smallest
        end
        else continue := false
      done
    end;
    top
  end

let last_key t = t.popped_key

let min_key t = if t.size = 0 then max_int else t.keys.(0)

let clear t =
  t.size <- 0;
  t.next_seq <- 0
