(** Umbrella facade: one [open Core] (or [module C = Core]) gives
    access to the whole reproduction stack under stable names.

    Layering, bottom-up:
    - {!Machine} — the abstract persistent-memory machine (+ native backend)
    - {!Config}, {!Sim} — the simulated Optane DC machine and its knobs
    - {!Region}, {!Alloc} — persistent region and recoverable allocator
    - {!Ptm} — the persistent STM (redo "orec-lazy" / undo "orec-eager")
    - {!Bptree}, {!Phashtable}, {!Plist}, {!Pqueue} — persistent structures
    - {!Driver} and the paper's workloads — experiment harness
    - {!Crashtest} — crash-point exploration / durable-linearizability
      oracle over all of the above *)

module Rng = Repro_util.Rng
module Zipf = Repro_util.Zipf
module Stats = Repro_util.Stats
module Table = Repro_util.Table
module Machine = Machine
module Config = Memsim.Config
module Sim = Memsim.Sim
module Region = Pmem.Region
module Alloc = Pmem.Alloc
module Check = Pmem.Check
module Ptm = Pstm.Ptm
module Profile = Pstm.Profile
module Telemetry = Telemetry
module Bptree = Pstructs.Bptree
module Phashtable = Pstructs.Phashtable
module Plist = Pstructs.Plist
module Pqueue = Pstructs.Pqueue
module Pskiplist = Pstructs.Pskiplist
module Pblob = Pstructs.Pblob
module Parray = Pstructs.Parray
module Driver = Workloads.Driver
module Bank = Workloads.Bank
module Tatp = Workloads.Tatp
module Tpcc = Workloads.Tpcc
module Vacation = Workloads.Vacation
module Memcached = Workloads.Memcached
module Btree_bench = Workloads.Btree_bench
module Ycsb = Workloads.Ycsb
module Experiments = Workloads.Experiments
module Crashtest = Crashtest

(* Convenience constructors used by the examples. *)

(** [simulated_machine ()] — a fresh simulated Optane machine under the
    chosen durability model (default ADR), returning both handles. *)
let simulated_machine ?(model = Config.optane_adr) ?(heap_words = 1 lsl 20) () =
  let sim = Sim.create (Config.make ~heap_words model) in
  (sim, Sim.machine sim)

(** PTM on a fresh simulated machine, in one call. *)
let simulated_ptm ?model ?heap_words ?(algorithm = Ptm.Redo) () =
  let sim, m = simulated_machine ?model ?heap_words () in
  let ptm = Ptm.create ~algorithm m in
  (sim, m, ptm)
