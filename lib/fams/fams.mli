(** Failure-atomic msync (FAMS): snapshot-based crash consistency.

    The second crash-consistency API beside the PTM: the application
    mutates a mapped working area freely through {!write} and calls
    {!msync_atomic} for durability.  The sync journals the dirty set —
    tracked by the simulated machine's page table at line or page
    granularity — into a region-resident snapshot log, publishes a
    single-cache-line commit record (one flush + one fence), applies
    the journal to the durable home image and retires it.  {!recover}
    replays a committed journal or discards a torn one, then rebuilds
    the working area from the home image.

    Durability semantics are buffered: a crash loses every mutation
    after the last completed [msync_atomic], never a partial sync.

    Concurrency contract: {b single writer}.  A sync snapshots the
    dirty set of all stores since the previous sync; concurrent
    mutators could be captured at a non-prefix boundary.

    Write amplification — bytes journaled per byte logically dirtied —
    is the subsystem's headline metric; {!Stats} carries both sides of
    the ratio plus FAMS-issued fence and flush counts. *)

type t

type granularity = Line | Page

val granularity_name : granularity -> string
val granularity_of_name : string -> granularity option
val unit_words : granularity -> int

(** Injectable protocol bugs for the crashtest oracle: eliding the
    journal drain fence before publish, and leaving the last journal
    entry's tail lines unflushed. *)
type inject = Skip_publish_fence | Torn_journal_entry

val inject_name : inject -> string
val inject_of_name : string -> inject option

module Stats : sig
  type t = {
    mutable syncs : int;
    mutable journal_entries : int;
    mutable bytes_journaled : int;
    mutable bytes_dirtied : int;
    mutable fences : int;
    mutable flushes : int;
    mutable max_journal_words : int;
  }

  val create : unit -> t

  val write_amp : t -> float
  (** [bytes_journaled / bytes_dirtied]; [nan] before any store. *)

  val fields : t -> (string * int) list
  (** Stable (name, value) export pairs. *)
end

val snapshot_words_for : words:int -> int
(** Snapshot-log area sized for the worst-case dirty set of a
    [words]-word working area (covers both granularities). *)

val required_heap_words : words:int -> int
(** Minimum simulated heap for a FAMS region with a [words]-word
    working area (header + logs + snapshot log + work and home
    images). *)

val create :
  ?granularity:granularity ->
  ?inject:inject ->
  ?profiler:Pstm.Profile.t ->
  words:int ->
  Memsim.Sim.t ->
  t
(** Format a fresh FAMS region on the machine (untimed) and arm the
    simulator's dirty tracking over the working area.  Default
    granularity is [Line]. *)

val recover : ?inject:inject -> ?profiler:Pstm.Profile.t -> Memsim.Sim.t -> t
(** Attach after a reboot: replay a committed snapshot journal onto
    the home image (idempotent) or discard a torn one, rebuild the
    working area from the home image, re-arm dirty tracking.  Untimed.
    [inject] re-arms a protocol bug for subsequent syncs (mutation
    replays); recovery itself is never mutated.
    @raise Machine.Corrupt_image when a committed commit record points
    at a structurally invalid journal. *)

val msync_atomic : t -> unit
(** Timed, from the single mutator thread: sweep the dirty set into
    the journal, publish the commit record with one fence, apply to
    the home image, retire.  A no-op (plus bookkeeping) when nothing
    is dirty.  Profiler phases: [Snap_sweep] / [Snap_publish] /
    [Snap_apply], bracketed as one transaction. *)

val write : t -> int -> int -> unit
(** [write t addr v]: timed store to working-area-relative [addr];
    marks the dirty tracker and the logical write-amp denominator. *)

val read : t -> int -> int
(** Timed load from the working area. *)

val raw_write : t -> int -> int -> unit
(** Untimed setup store: no dirty tracking; pair with
    {!checkpoint_raw}. *)

val raw_read : t -> int -> int

val checkpoint_raw : t -> unit
(** Untimed: home image := working area, dirty state wiped — declare
    the populated region fully synced before the measured phase. *)

val area : t -> int * int
(** (absolute base of the working area, words). *)

val granularity : t -> granularity
val stats : t -> Stats.t
val region : t -> Pmem.Region.t
