(* Failure-atomic msync (FAMS): snapshot-based crash consistency.

   The application mutates a mapped working area freely through
   {!write}; durability is a whole-snapshot operation, {!msync_atomic}:

     sweep    journal every dirty unit (line or page, per the
              granularity knob) of the working area into the region's
              snapshot log: [unit addr][unit content], then flush the
              journal lines and drain them with one fence;
     publish  write the commit record — entry count, unit width and a
              nonzero sequence number, all inside the snapshot area's
              first cache line — and make it durable with one flush +
              one fence.  The record is confined to a single line, so
              under every durability domain it becomes durable
              atomically: the snapshot is committed iff [seq <> 0];
     apply    copy the journaled units onto the home image (the
              durable copy readers of the *recovered* region see),
              flush, fence, then retire the snapshot by clearing [seq]
              (flush + fence) so the journal slots can be reused.

   A crash before the publish fence leaves [seq = 0]: recovery
   discards the torn journal and the region reverts to the previous
   snapshot (buffered durability).  A crash after it leaves
   [seq <> 0]: recovery replays the journal onto the home image —
   idempotent, because entries carry absolute content — and then
   clears [seq].  Either way the working area is rebuilt from the home
   image, so no partially-synced mutation is ever visible.

   Write amplification is the subsystem's headline metric: bytes
   journaled per byte logically dirtied.  Page-granularity tracking
   (the OS path: 512-word units) journals a whole page for a one-word
   store; line granularity (8-word units) cuts that 64-fold on sparse
   writes.  The per-word logical bitmap below is the denominator.

   Concurrency contract: FAMS is single-writer.  [msync_atomic]
   snapshots the dirty set of *all* stores since the previous sync;
   with concurrent mutators a sweep could capture a non-prefix subset
   of another thread's writes and recovery would not be durably
   linearizable.  The bench and crash harnesses spawn one mutator.

   Failure injection (for the crashtest oracle):
   - [Skip_publish_fence] elides the sweep's drain fence, so the
     commit record's write-back is unordered with the journal's — the
     record can become durable while journal entries are still in
     flight in the WPQ and recovery then replays stale journal lines
     (modeled by issuing the record's clwb ahead of the journal batch,
     since the simulator's per-channel FIFO would hide the missing
     order for a single contiguous batch);
   - [Torn_journal_entry] leaves the last journal entry's tail lines
     unflushed, so a committed record can point at a torn entry.
   Both are silent on eADR-family domains (which need no flushes or
   fences — that is the point of those domains); under ADR the crash
   explorer must find a window where recovery produces an illegal
   state. *)

module Layout = Machine.Layout
module Profile = Pstm.Profile

type granularity = Line | Page

let granularity_name = function Line -> "line" | Page -> "page"

let granularity_of_name = function
  | "line" -> Some Line
  | "page" -> Some Page
  | _ -> None

let unit_words = function Line -> Layout.words_per_line | Page -> Layout.words_per_page
let granularity_tag = function Line -> 1 | Page -> 2

type inject = Skip_publish_fence | Torn_journal_entry

let inject_name = function
  | Skip_publish_fence -> "skip-publish-fence"
  | Torn_journal_entry -> "torn-journal-entry"

let inject_of_name = function
  | "skip-publish-fence" -> Some Skip_publish_fence
  | "torn-journal-entry" -> Some Torn_journal_entry
  | _ -> None

(* Snapshot-area header (all within the first cache line, so the
   commit record publishes atomically; words 5..7 are static
   configuration written at format time). *)
let hs_seq = 0 (* nonzero = journal committed, not yet retired *)
let hs_count = 1 (* committed journal entries *)
let hs_dwords = 2 (* data words per entry *)
let hs_words = 5 (* user words in the working area *)
let hs_gran = 6 (* granularity tag *)
let journal_off = Layout.words_per_line

module Stats = struct
  type t = {
    mutable syncs : int;
    mutable journal_entries : int;
    mutable bytes_journaled : int; (* entry headers + payloads *)
    mutable bytes_dirtied : int; (* unique words stored since last sync *)
    mutable fences : int; (* sfences issued by FAMS *)
    mutable flushes : int; (* clwbs issued by FAMS *)
    mutable max_journal_words : int; (* high-water journal footprint of one sync *)
  }

  let create () =
    {
      syncs = 0;
      journal_entries = 0;
      bytes_journaled = 0;
      bytes_dirtied = 0;
      fences = 0;
      flushes = 0;
      max_journal_words = 0;
    }

  let write_amp t =
    if t.bytes_dirtied = 0 then nan
    else float_of_int t.bytes_journaled /. float_of_int t.bytes_dirtied

  let fields t =
    [
      ("syncs", t.syncs);
      ("journal_entries", t.journal_entries);
      ("bytes_journaled", t.bytes_journaled);
      ("bytes_dirtied", t.bytes_dirtied);
      ("fams_fences", t.fences);
      ("fams_flushes", t.flushes);
      ("max_journal_words", t.max_journal_words);
    ]
end

type t = {
  m : Machine.t;
  region : Pmem.Region.t;
  granularity : granularity;
  inject : inject option;
  profiler : Profile.t option;
  dirty : Memsim.Dirty.t;
  words : int; (* user words in the working area *)
  work_base : int; (* mutable mapping the application stores into *)
  home_base : int; (* durable image recovery reads *)
  snap_base : int;
  snap_words : int;
  logical : Bytes.t; (* per-word dirty bit since last sync (write-amp denominator) *)
  mutable logical_words : int;
  mutable seq : int; (* next commit sequence number (volatile; any nonzero works) *)
  mutable lines_buf : int array; (* scratch for coalesced clwb sweeps *)
  stats : Stats.t;
}

let page_align addr =
  let p = Layout.words_per_page in
  (addr + p - 1) / p * p

let lines_per_page = Layout.words_per_page / Layout.words_per_line

(* Worst-case journal footprint: every line of every page dirty.  Line
   entries (1 + 8 words each, 64 per page) outweigh one page entry
   (1 + 512), so the line bound covers both granularities. *)
let snapshot_words_for ~words =
  let npages = (words + Layout.words_per_page - 1) / Layout.words_per_page in
  page_align (journal_off + (npages * lines_per_page * (1 + Layout.words_per_line)))

let fams_roots = 16
let fams_log_words = Layout.words_per_page
let fams_max_threads = 1

(* Heap size needed for a FAMS region with a [words]-word working
   area — mirrors [Region]'s layout arithmetic so configs can be sized
   before the machine exists. *)
let required_heap_words ~words =
  let log_base = page_align (8 + fams_roots) in
  let snap_base = page_align (log_base + (fams_max_threads * page_align fams_log_words)) in
  let data_start = page_align (snap_base + snapshot_words_for ~words) in
  data_start + (2 * page_align words)

let area t = (t.work_base, t.words)
let granularity t = t.granularity
let stats t = t.stats
let region t = t.region

let[@inline] check_user_addr t addr =
  if addr < 0 || addr >= t.words then
    invalid_arg (Printf.sprintf "Fams: address %d outside working area of %d words" addr t.words)

let[@inline] mark_logical t addr =
  let byte = addr lsr 3 in
  let mask = 1 lsl (addr land 7) in
  let old = Char.code (Bytes.unsafe_get t.logical byte) in
  if old land mask = 0 then begin
    Bytes.unsafe_set t.logical byte (Char.unsafe_chr (old lor mask));
    t.logical_words <- t.logical_words + 1
  end

let write t addr v =
  check_user_addr t addr;
  mark_logical t addr;
  t.m.Machine.store (t.work_base + addr) v

let read t addr =
  check_user_addr t addr;
  t.m.Machine.load (t.work_base + addr)

(* Untimed setup access: bypasses the clock, the dirty tracker and the
   logical bitmap.  Callers must follow with {!checkpoint_raw} or the
   next crash discards the writes. *)
let raw_write t addr v =
  check_user_addr t addr;
  t.m.Machine.raw_write (t.work_base + addr) v

let raw_read t addr =
  check_user_addr t addr;
  t.m.Machine.raw_read (t.work_base + addr)

(* Untimed checkpoint: home := work, dirty state wiped — brings a
   freshly populated region to "everything synced" without paying
   simulated time, mirroring the PTM harnesses' untimed setup phase. *)
let checkpoint_raw t =
  for i = 0 to t.words - 1 do
    t.m.Machine.raw_write (t.home_base + i) (t.m.Machine.raw_read (t.work_base + i))
  done;
  Memsim.Dirty.clear t.dirty;
  Bytes.fill t.logical 0 (Bytes.length t.logical) '\000';
  t.logical_words <- 0

let make ~sim ~region ~granularity ~inject ~profiler ~words =
  let m = Pmem.Region.machine region in
  let work_base = Pmem.Region.data_start region in
  let area_words = page_align words in
  let home_base = work_base + area_words in
  if home_base + area_words > m.Machine.words then
    failwith
      (Printf.sprintf "Fams: heap too small: %d words, need %d (use required_heap_words)"
         m.Machine.words
         (required_heap_words ~words));
  let dirty = Memsim.Sim.track_dirty sim ~lo:work_base ~hi:(work_base + words) in
  {
    m;
    region;
    granularity;
    inject;
    profiler;
    dirty;
    words;
    work_base;
    home_base;
    snap_base = Pmem.Region.snapshot_base region;
    snap_words = Pmem.Region.snapshot_words region;
    logical = Bytes.make ((words + 7) / 8) '\000';
    logical_words = 0;
    seq = 1;
    lines_buf = Array.make 64 0;
    stats = Stats.create ();
  }

let create ?(granularity = Line) ?inject ?profiler ~words sim =
  if words <= 0 then invalid_arg "Fams.create: words must be positive";
  let m = Memsim.Sim.machine sim in
  let region =
    Pmem.Region.create ~roots:fams_roots ~log_words_per_thread:fams_log_words
      ~max_threads:fams_max_threads
      ~snapshot_words:(snapshot_words_for ~words)
      m
  in
  let snap_base = Pmem.Region.snapshot_base region in
  m.Machine.raw_write (snap_base + hs_seq) 0;
  m.Machine.raw_write (snap_base + hs_count) 0;
  m.Machine.raw_write (snap_base + hs_dwords) 0;
  m.Machine.raw_write (snap_base + hs_words) words;
  m.Machine.raw_write (snap_base + hs_gran) (granularity_tag granularity);
  make ~sim ~region ~granularity ~inject ~profiler ~words

(* ---------- msync ---------- *)

let ensure_lines_buf t n =
  if n > Array.length t.lines_buf then t.lines_buf <- Array.make (2 * n) 0

let fams_sfence t phase =
  t.stats.Stats.fences <- t.stats.Stats.fences + 1;
  match t.profiler with
  | Some p -> Profile.leaf_fence_in p phase (fun () -> t.m.Machine.sfence ())
  | None -> t.m.Machine.sfence ()

let fams_clwb_lines t phase ~first_line ~nlines =
  if nlines > 0 then begin
    ensure_lines_buf t nlines;
    for i = 0 to nlines - 1 do
      t.lines_buf.(i) <- Layout.addr_of_line (first_line + i)
    done;
    t.stats.Stats.flushes <- t.stats.Stats.flushes + nlines;
    match t.profiler with
    | Some p ->
      Profile.leaf_flush_in p phase ~flushes:nlines (fun () ->
          t.m.Machine.clwb_many t.lines_buf nlines)
    | None -> t.m.Machine.clwb_many t.lines_buf nlines
  end

(* Journal one unit: [work-relative addr][unit content], reading the
   working area (L3-hot) and storing into the snapshot log.  Returns
   the next free journal position. *)
let journal_unit t ~jpos ~unit_base ~uwords =
  if jpos + 1 + uwords > t.snap_base + t.snap_words then
    failwith "Fams.msync_atomic: journal overflow (snapshot area undersized)";
  let m = t.m in
  m.Machine.store jpos (unit_base - t.work_base);
  let len = min uwords (t.words - (unit_base - t.work_base)) in
  for k = 0 to len - 1 do
    m.Machine.store (jpos + 1 + k) (m.Machine.load (unit_base + k))
  done;
  (* Units at the tail of a non-page-multiple area journal full width;
     pad with zeros so replay length is uniform. *)
  for k = len to uwords - 1 do
    m.Machine.store (jpos + 1 + k) 0
  done;
  jpos + 1 + uwords

let with_opt_phase t phase f =
  match t.profiler with Some p -> Profile.with_phase p phase f | None -> f ()

let msync_atomic t =
  (match t.profiler with Some p -> Profile.txn_begin p | None -> ());
  let uwords = unit_words t.granularity in
  let jbase = t.snap_base + journal_off in
  let dirty_units = ref 0 in
  (* --- sweep: journal the dirty set --- *)
  let jend =
    with_opt_phase t Profile.Snap_sweep (fun () ->
        let jpos = ref jbase in
        (match t.granularity with
        | Page ->
          Memsim.Dirty.iter_dirty_pages t.dirty (fun page_base ->
              incr dirty_units;
              jpos := journal_unit t ~jpos:!jpos ~unit_base:page_base ~uwords)
        | Line ->
          Memsim.Dirty.iter_dirty_pages t.dirty (fun page_base ->
              Memsim.Dirty.iter_dirty_lines_of_page t.dirty page_base (fun line_base ->
                  incr dirty_units;
                  jpos := journal_unit t ~jpos:!jpos ~unit_base:line_base ~uwords)));
        !jpos)
  in
  if !dirty_units > 0 then begin
    let n = !dirty_units in
    (* Flush the journal and drain it before the commit record can go
       durable.  [Torn_journal_entry] leaves the last entry's tail
       lines unflushed; [Skip_publish_fence] drops the drain fence. *)
    let first_line = Layout.line_of_addr jbase in
    let last_line = Layout.line_of_addr (jend - 1) in
    let flush_journal phase =
      let flush_last_line =
        match t.inject with
        | Some Torn_journal_entry -> Layout.line_of_addr (jend - 1 - uwords)
        | _ -> last_line
      in
      if t.m.Machine.needs_flush then
        fams_clwb_lines t phase ~first_line ~nlines:(flush_last_line - first_line + 1)
    in
    (match t.inject with
    | Some Skip_publish_fence ->
      (* Without the drain fence, journal write-backs are unordered
         relative to the commit record's; modeled by issuing the
         record's clwb first — the simulator's per-channel FIFO would
         otherwise mask the hazard for one contiguous clwb batch. *)
      ()
    | _ ->
      flush_journal Profile.Snap_sweep;
      if t.m.Machine.needs_fence then fams_sfence t Profile.Snap_sweep);
    (* --- publish: one-line commit record, atomic under every domain --- *)
    with_opt_phase t Profile.Snap_publish (fun () ->
        t.m.Machine.store (t.snap_base + hs_count) n;
        t.m.Machine.store (t.snap_base + hs_dwords) uwords;
        t.m.Machine.store (t.snap_base + hs_seq) t.seq);
    t.seq <- t.seq + 1;
    if t.m.Machine.needs_flush then
      fams_clwb_lines t Profile.Snap_publish ~first_line:(Layout.line_of_addr t.snap_base)
        ~nlines:1;
    (match t.inject with
    | Some Skip_publish_fence -> flush_journal Profile.Snap_publish
    | _ -> ());
    if t.m.Machine.needs_fence then fams_sfence t Profile.Snap_publish;
    (* --- apply: journal -> home image, then retire the snapshot --- *)
    with_opt_phase t Profile.Snap_apply (fun () ->
        let pos = ref jbase in
        for _ = 1 to n do
          let a = t.m.Machine.load !pos in
          for k = 0 to uwords - 1 do
            t.m.Machine.store (t.home_base + a + k) (t.m.Machine.load (!pos + 1 + k))
          done;
          pos := !pos + 1 + uwords
        done);
    if t.m.Machine.needs_flush then begin
      (* Home units are unit-aligned, so their lines are exactly the
         journaled units' line images shifted into the home area. *)
      let flushed = ref 0 in
      let pos = ref jbase in
      let nlines_per_unit = (uwords + Layout.words_per_line - 1) / Layout.words_per_line in
      ensure_lines_buf t (n * nlines_per_unit);
      for _ = 1 to n do
        let a = t.m.Machine.raw_read !pos in
        let first = Layout.line_of_addr (t.home_base + a) in
        for l = 0 to nlines_per_unit - 1 do
          t.lines_buf.(!flushed) <- Layout.addr_of_line (first + l);
          incr flushed
        done;
        pos := !pos + 1 + uwords
      done;
      t.stats.Stats.flushes <- t.stats.Stats.flushes + !flushed;
      (match t.profiler with
      | Some p ->
        Profile.leaf_flush_in p Profile.Snap_apply ~flushes:!flushed (fun () ->
            t.m.Machine.clwb_many t.lines_buf !flushed)
      | None -> t.m.Machine.clwb_many t.lines_buf !flushed)
    end;
    if t.m.Machine.needs_fence then fams_sfence t Profile.Snap_apply;
    with_opt_phase t Profile.Snap_apply (fun () ->
        t.m.Machine.store (t.snap_base + hs_seq) 0);
    if t.m.Machine.needs_flush then
      fams_clwb_lines t Profile.Snap_apply ~first_line:(Layout.line_of_addr t.snap_base)
        ~nlines:1;
    if t.m.Machine.needs_fence then fams_sfence t Profile.Snap_apply;
    (* --- bookkeeping --- *)
    t.stats.Stats.journal_entries <- t.stats.Stats.journal_entries + n;
    t.stats.Stats.bytes_journaled <-
      t.stats.Stats.bytes_journaled + (n * (1 + uwords) * Layout.bytes_per_word);
    let jwords = jend - jbase in
    if jwords > t.stats.Stats.max_journal_words then t.stats.Stats.max_journal_words <- jwords
  end;
  t.stats.Stats.bytes_dirtied <-
    t.stats.Stats.bytes_dirtied + (t.logical_words * Layout.bytes_per_word);
  t.stats.Stats.syncs <- t.stats.Stats.syncs + 1;
  Memsim.Dirty.clear t.dirty;
  Bytes.fill t.logical 0 (Bytes.length t.logical) '\000';
  t.logical_words <- 0;
  match t.profiler with Some p -> Profile.txn_end p ~committed:true | None -> ()

(* ---------- recovery ---------- *)

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Machine.Corrupt_image ("Fams.recover: " ^ msg))) fmt

let recover ?inject ?profiler sim =
  let m = Memsim.Sim.machine sim in
  let region = Pmem.Region.attach m in
  let snap_base = Pmem.Region.snapshot_base region in
  let snap_words = Pmem.Region.snapshot_words region in
  if snap_words = 0 then corrupt "region has no snapshot area";
  let words = m.Machine.raw_read (snap_base + hs_words) in
  if words <= 0 then corrupt "bad working-area size %d" words;
  let granularity =
    match m.Machine.raw_read (snap_base + hs_gran) with
    | 1 -> Line
    | 2 -> Page
    | g -> corrupt "bad granularity tag %d" g
  in
  let work_base = Pmem.Region.data_start region in
  let home_base = work_base + page_align words in
  let seq = m.Machine.raw_read (snap_base + hs_seq) in
  if seq <> 0 then begin
    (* Committed, unretired snapshot: replay the journal onto the home
       image.  Entries carry absolute content, so replay after a crash
       mid-apply is idempotent.  Structural damage under a committed
       sequence number means the journal was published without being
       durable first — surface it as corruption rather than guessing. *)
    let n = m.Machine.raw_read (snap_base + hs_count) in
    let dwords = m.Machine.raw_read (snap_base + hs_dwords) in
    if dwords <> unit_words granularity then
      corrupt "committed journal has %d-word units, granularity says %d" dwords
        (unit_words granularity);
    if n < 0 || journal_off + (n * (1 + dwords)) > snap_words then
      corrupt "committed journal of %d entries exceeds the snapshot area" n;
    let pos = ref (snap_base + journal_off) in
    for e = 1 to n do
      let a = m.Machine.raw_read !pos in
      if a < 0 || a mod dwords <> 0 || a >= words then
        corrupt "journal entry %d/%d has invalid unit address %d" e n a;
      for k = 0 to dwords - 1 do
        if a + k < words then
          m.Machine.raw_write (home_base + a + k) (m.Machine.raw_read (!pos + 1 + k))
      done;
      pos := !pos + 1 + dwords
    done;
    m.Machine.raw_write (snap_base + hs_seq) 0
  end;
  (* Rebuild the working mapping from the home image — pre-crash
     un-synced stores vanish, exactly the msync contract. *)
  for i = 0 to words - 1 do
    m.Machine.raw_write (work_base + i) (m.Machine.raw_read (home_base + i))
  done;
  make ~sim ~region ~granularity ~inject ~profiler ~words
