(** Crash-point exploration: systematic durable-linearizability
    checking.

    The engine turns the simulator's determinism into a correctness
    oracle.  For a given (scenario, durability model, PTM algorithm,
    seed) it

    + runs the workload once to completion, recording the final virtual
      time and an event trace;
    + enumerates candidate crash instants from the trace (just before
      and just after every store, clwb, sfence and publish — the only
      places persistent state can change) plus a uniform grid;
    + for each chosen instant re-runs the {e identical} workload with
      [Sim.run ~crash_at], then [Sim.reboot]s, checks region integrity
      with {!Pmem.Check.run} both before and after {!Pstm.Ptm.recover},
      and validates the recovered state against the scenario's
      application-level model (shadow state + invariants);
    + on a failure, automatically shrinks to a smaller failing crash
      time and reports a one-command replay line.

    Sampling is driven by a seeded RNG, so every run — including which
    crash points were probed — is reproducible from the printed seed.

    Environment knobs (read by {!explore} when the corresponding
    argument is omitted):
    - [CRASHTEST_EXHAUSTIVE=1] — probe {e every} candidate instant
      instead of a sample;
    - [CRASHTEST_POINTS=n] — sample size per cell (default 64);
    - [CRASHTEST_SEED=n] — base RNG seed (default 1). *)

(** A failed oracle or validator check.  [counterexample], when present,
    is a replayable JSONL dump (see {!Dlin.counterexample}) written as
    [dlin.jsonl] into the failure's telemetry directory. *)
type oracle_failure = { fail_reason : string; counterexample : string option }

(** One run of a scenario: volatile shadow state (what the workload
    believes committed) plus the validator that checks it against the
    recovered persistent state. *)
type instance = {
  worker : tid:int -> Pstm.Ptm.t -> unit;
      (** body of simulated thread [tid]; runs transactions and records
          durable commits via [on_commit] hooks into the instance's
          shadow state *)
  validate : crashed:bool -> Memsim.Sim.t -> Pstm.Ptm.t -> (unit, string) result;
      (** called untimed on the recovered (or cleanly finished) machine;
          checks every invariant the scenario promises *)
  oracle :
    (crashed:bool -> Memsim.Sim.t -> Pstm.Ptm.t -> (unit, oracle_failure) result) option;
      (** the durable-linearizability oracle: replays the recorded
          operation history (see {!Dlin}) against the recovered state.
          Runs {e before} [validate], so a linearizability violation —
          which carries a replayable counterexample — takes precedence
          over the coarser invariant check's message.  [None] for
          scenarios without a history recorder. *)
}

type scenario = {
  name : string;
  threads : int;
  heap_words : int;
  log_words_per_thread : int;
  coalesce : bool;
      (** run the PTM with flush coalescing (the default commit path) or
          the naive per-entry flush/fence discipline — both are probed
          by the crash sweep *)
  prepare : Pstm.Ptm.t -> unit;
      (** untimed population phase, run once on a fresh region; must
          store any addresses the workers need in region roots *)
  fresh : seed:int -> instance;
      (** new instance with empty shadow state; equal seeds must yield
          identical workloads (the engine re-runs the same instance
          descriptor once per crash point) *)
}

type failure = {
  crash_at : int;  (** the sampled instant that first failed *)
  min_crash_at : int;  (** smallest failing instant found by shrinking *)
  reason : string;
  replay : string;  (** one shell command reproducing [min_crash_at] *)
  telemetry_dir : string option;
      (** directory holding a full telemetry capture of the minimal
          failing re-run — phase profile, machine trace (Perfetto), a
          profile of the post-crash recovery, and (for dlin-oracle
          failures) the [dlin.jsonl] counterexample — or [None] if the
          dump could not be written *)
}

type report = {
  scenario : string;
  model : string;
  algorithm : string;
  seed : int;
  final_time : int;  (** virtual ns of the crash-free reference run *)
  candidates : int;  (** distinct candidate crash instants enumerated *)
  tested : int;  (** instants actually probed *)
  failures : failure list;  (** empty when the oracle found no violation *)
}

val ok : report -> bool
(** No failures. *)

val pp_report : Format.formatter -> report -> unit

val explore :
  ?points:int ->
  ?seed:int ->
  ?exhaustive:bool ->
  ?shrink_budget:int ->
  ?nvm_channels:int ->
  ?inject:Pstm.Ptm.inject ->
  model:Memsim.Config.model ->
  algorithm:Pstm.Ptm.algorithm ->
  scenario ->
  report
(** Run the full exploration for one matrix cell.  Interleaved
    [nvm_channels] default to 4 so WPQ completions can reorder relative
    to issue order — the hazard window missing fences open.
    [inject] arms a deliberate PTM ordering bug for mutation-testing the
    oracles; the prepared image is always populated without injection.
    @raise Failure if the crash-free reference run already violates the
    scenario's model (harness bug, not a crash-consistency bug — the
    injected bugs weaken durability only, never the cache-visible
    heap). *)

val run_point :
  ?nvm_channels:int ->
  ?inject:Pstm.Ptm.inject ->
  model:Memsim.Config.model ->
  algorithm:Pstm.Ptm.algorithm ->
  seed:int ->
  crash_at:int ->
  scenario ->
  (unit, string) result
(** Probe a single crash instant — the replay path for a failure
    printed by {!explore}. *)

val recovery_convergence :
  ?nvm_channels:int ->
  ?budgets:int list ->
  model:Memsim.Config.model ->
  algorithm:Pstm.Ptm.algorithm ->
  seed:int ->
  crash_at:int ->
  scenario ->
  (unit, string) result
(** Recover-idempotence oracle: crash the workload at [crash_at], then
    inject a {e second} crash inside recovery itself — after [k]
    persistent writes, for each sampled budget [k] (default: up to 8
    seeded samples of the reference recovery's write count) — recover
    again, and require the final heap image to be word-for-word
    identical to an uninterrupted recovery's, and the scenario model to
    validate.  [Ok ()] when the workload ran to completion before
    [crash_at]. *)

(** {1 FAMS: crash-testing the snapshot API}

    The msync subsystem rides the same explorer — prepared image,
    traced reference run, candidate instants, probe + greedy shrink,
    replayable failure line — with a single mutator instead of a
    thread team, {!Fams.recover} instead of [Ptm.recover], and the
    granularity series ("fams-line" / "fams-page") in the algorithm
    column. *)

type fams_instance = {
  f_worker : Memsim.Sim.t -> Fams.t -> unit;
      (** body of the single mutator (FAMS is single-writer); the [Sim]
          is passed for the virtual clock *)
  f_validate : crashed:bool -> Memsim.Sim.t -> Fams.t -> (unit, string) result;
  f_oracle :
    (crashed:bool -> Memsim.Sim.t -> Fams.t -> (unit, oracle_failure) result) option;
      (** durable-linearizability oracle; FAMS scenarios check with
          [`Buffered] durability — recovery restores the last completed
          sync, so any real-time-closed cut is legal *)
}

type fams_scenario = {
  f_name : string;
  f_words : int;  (** working-area size *)
  f_prepare : Fams.t -> unit;
      (** raw (untimed) population of the working area; the engine
          checkpoints afterwards, so the prepared image starts fully
          synced *)
  f_fresh : seed:int -> fams_instance;
}

val fams_algorithm_name : Fams.granularity -> string
(** ["fams-line"] / ["fams-page"] — the report's algorithm column. *)

val explore_fams :
  ?points:int ->
  ?seed:int ->
  ?exhaustive:bool ->
  ?shrink_budget:int ->
  ?nvm_channels:int ->
  ?inject:Fams.inject ->
  model:Memsim.Config.model ->
  granularity:Fams.granularity ->
  fams_scenario ->
  report
(** {!explore} for a FAMS matrix cell.  The crash sweep hits instants
    inside the journal sweep, inside the apply phase, and in the window
    between sync publication and journal durability.  [inject] arms a
    deliberate FAMS protocol bug ({!Fams.inject}) for mutation-testing
    the oracle.
    @raise Failure if the crash-free reference run already violates the
    scenario's model. *)

val run_fams_point :
  ?nvm_channels:int ->
  ?inject:Fams.inject ->
  model:Memsim.Config.model ->
  granularity:Fams.granularity ->
  seed:int ->
  crash_at:int ->
  fams_scenario ->
  (unit, string) result
(** Probe a single FAMS crash instant — the replay path for a failure
    printed by {!explore_fams}. *)

val parse_fams_replay :
  string -> (string * string * Fams.granularity * int * int * Fams.inject option) option
(** Parse a FAMS replay spec
    ["scenario:model:fams-line|fams-page:seed:crash_at[:inject]"].
    Unknown granularity or inject names fail the parse. *)

val parse_replay :
  string ->
  (string * string * Pstm.Ptm.algorithm * int * int * Pstm.Ptm.inject option) option
(** Parse a ["scenario:model:algorithm:seed:crash_at[:inject]"] replay
    spec (the payload of the [CRASHTEST_REPLAY] variable) into
    [(scenario_name, model_name, algorithm, seed, crash_at, inject)].
    The optional sixth field names an injected ordering bug (see
    {!Pstm.Ptm.inject_name}); an unknown inject name fails the parse
    rather than silently replaying the un-mutated runtime. *)
