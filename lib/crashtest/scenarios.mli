(** Ready-made crash-test scenarios with application-level oracles.

    Every application scenario carries {e two} oracles.  The primary is
    a durable-linearizability check ({!Dlin}): each worker wraps every
    logical operation in [Dlin.History.run] against the machine's
    virtual clock, and after recovery the instance's [oracle] extracts
    the recovered abstract state and searches for a legal durable
    linearization explaining it.  A failure carries a replayable JSONL
    counterexample (the recorded history plus the recovered state),
    written as [dlin.jsonl] into the failure telemetry directory.  The
    secondary [validate] keeps the original coarse shadow-state
    invariants as a cross-check:

    - {!bank}: money conservation plus per-thread operation-sequence
      cells — a committed transfer that vanishes, or an in-flight one
      that half-appears, is caught; the dlin responses are the two
      account values each transfer read;
    - {!counters}: every transaction rewrites all slots, so recovered
      slots must be equal (atomicity) and the single abstract value
      must be explained by an increment order consistent with the
      returned new-values;
    - {!btree}: B+Tree structural invariants plus key-set bounds — the
      recovered key set contains every durably committed insert and
      nothing that was never attempted;
    - {!alloc_churn}: allocator accounting over a persistent slot
      directory — each thread acquires stamped, signature-filled
      blocks into its own directory slots or releases them, and the
      recovered stamp-per-slot vector must match a durable prefix;
      {!Pmem.Check} cross-checks live-block counts;
    - {!kv_batch}: the KV service's coalesced write path — each thread
      commits batches of sets plus its batch-marker key in one
      transaction, so a crash mid-batch must leave all of the batch or
      none, with the marker naming the durable prefix;
    - {!kv_xshard}: two {!Kvserve.Store}s standing in for two shards —
      every operation commits to A then B in separate transactions;
      under the dlin oracle the [B <= A <= B+1] marker bound is just
      "durable sets are per-thread prefixes";
    - {!kv_incr}: a single shared counter bumped through
      [Kvserve.Store.incr]; the returned new-values make the dlin
      search an exactly-once oracle;
    - {!of_spec}: wraps any {!Workloads.Driver.spec} with a structural
      (region-integrity only) oracle, so the paper's full workloads can
      ride the @crashtest sweep.

    All scenarios derive their randomness from the instance seed, so a
    (scenario, seed) pair fully determines the workload.

    Every constructor takes [?coalesce] (default [true]): [false] runs
    the PTM on the naive per-entry flush/fence path instead of the
    batched commit pipeline, and appends ["-naive"] to the scenario
    name so replay specs round-trip through {!find}. *)

val bank : ?accounts:int -> ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val counters : ?slots:int -> ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val btree : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val mod_btree : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario
(** {!Pstructs.Mod_bptree} under a deterministic per-thread
    insert/remove script.  The oracle runs {!Dlin.check} with
    [`Buffered] durability when the recovered PTM uses the [Mod]
    algorithm (the root swap's flush is unfenced, so a committed suffix
    may be lost) and strict durability otherwise; the validate checks
    snapshot consistency (each thread's recovered bindings are a script
    prefix), a WPQ-lag bound on committed-but-lost ops, and phantom
    freedom. *)

val mod_hash : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario
(** {!Pstructs.Mod_phashtable} under the same script, oracle and
    validates as {!mod_btree}. *)

val alloc_churn : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val kv_batch :
  ?threads:int -> ?ops:int -> ?batch:int -> ?coalesce:bool -> unit -> Engine.scenario

val kv_xshard : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val kv_incr : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val of_spec :
  ?threads:int -> ?ops:int -> ?coalesce:bool -> Workloads.Driver.spec -> Engine.scenario

val fams_bank :
  ?accounts:int -> ?ops:int -> ?sync_every:int -> unit -> Engine.fams_scenario
(** The msync twin of {!bank}: a single mutator transfers between
    scattered one-word accounts in the FAMS working area (two pages, so
    line and page sweeps journal different unit sets) and calls
    [msync_atomic] every [sync_every] operations.  The dlin oracle runs
    with [`Buffered] durability; the validate additionally requires
    conservation, and that the recovered op counter reaches the last
    {e completed} sync (FAMS's durability point) and never exceeds the
    last attempted op. *)

val fams_all : unit -> Engine.fams_scenario list

val fams_find : string -> Engine.fams_scenario
(** Look up one of {!fams_all} by name.
    @raise Invalid_argument on unknown name. *)

val all : unit -> Engine.scenario list
(** The seven application scenarios with default sizes (coalescing on),
    plus naive-flush bank and btree variants — the two flush schedules
    reach "persistent" at different instants, so both are swept. *)

val find : string -> Engine.scenario
(** Look up one of {!all} by name.
    @raise Invalid_argument on unknown name. *)
