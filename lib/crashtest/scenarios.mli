(** Ready-made crash-test scenarios with application-level oracles.

    Each scenario pairs a small concurrent workload with the strongest
    invariants we can state about its recovered state:

    - {!bank}: money conservation plus per-thread operation-sequence
      cells — a committed transfer that vanishes, or an in-flight one
      that half-appears, is caught;
    - {!counters}: every transaction rewrites all slots, so recovered
      slots must be equal (atomicity) and at least the last durably
      committed value (durability);
    - {!btree}: B+Tree structural invariants plus key-set bounds — the
      recovered key set contains every durably committed insert and
      nothing that was never attempted;
    - {!alloc_churn}: allocator accounting — committed-live payloads
      keep their signatures, and {!Pmem.Check} agrees with the shadow
      directory up to one in-flight operation per thread;
    - {!kv_batch}: the KV service's coalesced write path — each thread
      commits batches of sets plus its batch-marker key in one
      transaction, so a crash mid-batch must leave all of the batch or
      none, with the marker naming the durable prefix;
    - {!kv_xshard}: two {!Kvserve.Store}s standing in for two shards —
      every operation commits to A then B in separate transactions, so
      the recovered markers must satisfy [B <= A <= B+1] per thread;
    - {!of_spec}: wraps any {!Workloads.Driver.spec} with a structural
      (region-integrity only) oracle, so the paper's full workloads can
      ride the @crashtest sweep.

    All scenarios derive their randomness from the instance seed, so a
    (scenario, seed) pair fully determines the workload.

    Every constructor takes [?coalesce] (default [true]): [false] runs
    the PTM on the naive per-entry flush/fence path instead of the
    batched commit pipeline, and appends ["-naive"] to the scenario
    name so replay specs round-trip through {!find}. *)

val bank : ?accounts:int -> ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val counters : ?slots:int -> ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val btree : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val alloc_churn : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val kv_batch :
  ?threads:int -> ?ops:int -> ?batch:int -> ?coalesce:bool -> unit -> Engine.scenario

val kv_xshard : ?threads:int -> ?ops:int -> ?coalesce:bool -> unit -> Engine.scenario

val of_spec :
  ?threads:int -> ?ops:int -> ?coalesce:bool -> Workloads.Driver.spec -> Engine.scenario

val all : unit -> Engine.scenario list
(** The six application scenarios with default sizes (coalescing on),
    plus naive-flush bank and btree variants — the two flush schedules
    reach "persistent" at different instants, so both are swept. *)

val find : string -> Engine.scenario
(** Look up one of {!all} by name.
    @raise Invalid_argument on unknown name. *)
