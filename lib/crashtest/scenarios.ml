module Ptm = Pstm.Ptm
module Rng = Repro_util.Rng
module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

(* Roots used by every scenario: slot 0 holds the scenario's top-level
   persistent address. *)
let root_slot = 0

(* Scenario names encode the flush discipline so a replay spec printed
   for a naive-mode failure reconstructs the same scenario. *)
let mode_name name ~coalesce = if coalesce then name else name ^ "-naive"

(* ---------- dlin plumbing shared by the scenario oracles ---------- *)

(* Every scenario worker wraps each logical operation in
   [Dlin.History.run] against the machine's virtual clock, so the
   instance accumulates a timed invocation/response history.  After the
   crash the oracle extracts the recovered abstract state and asks
   {!Dlin.check} for a durable linearization explaining it. *)

let vclock ptm = (Ptm.machine ptm).Machine.now_ns

let run_dlin ?max_nodes ?durability spec h ~recovered =
  match Dlin.check ?max_nodes ?durability spec h ~recovered with
  | Ok (_ : Dlin.stats) -> Ok ()
  | Error c ->
    Error
      { Engine.fail_reason = "dlin: " ^ c.Dlin.reason; counterexample = Some c.Dlin.jsonl }

(* Recovered-state extraction found data no abstract state can hold
   (torn payload, non-numeric counter, missing marker): fail before the
   search, with the same replayable dump format. *)
let extraction_fail spec h reason =
  Error
    {
      Engine.fail_reason = reason;
      counterexample = Some (Dlin.dump spec h ~recovered:None ~reason ~nodes:0);
    }

let hash_int_array a = Array.fold_left (fun h v -> (h * 31) + v + 1) 17 a

(* ---------- bank: money conservation + per-thread sequence cells ---------- *)

type bank_op = { btid : int; bop : int; src : int; dst : int; amount : int }
type bank_state = { bal : int array; bseq : int array }

let bank ?(accounts = 32) ?(threads = 4) ?(ops = 10) ?(coalesce = true) () =
  let initial = 100 in
  let prepare ptm =
    let base =
      Ptm.atomic ptm (fun tx ->
          let b = Ptm.alloc tx (accounts + threads) in
          for i = 0 to accounts - 1 do
            Ptm.write tx (b + i) initial
          done;
          for j = 0 to threads - 1 do
            Ptm.write tx (b + accounts + j) 0
          done;
          b)
    in
    Ptm.root_set ptm root_slot base
  in
  (* Sequential semantics of one transfer, mirroring the transaction
     body exactly: both reads happen before both writes (the generator
     never aliases [src = dst], but the model stays faithful to the
     store order regardless).  The response is the pair of values
     read. *)
  let spec =
    {
      Dlin.init = { bal = Array.make accounts initial; bseq = Array.make threads 0 };
      apply =
        (fun st o ->
          let bal = Array.copy st.bal and bseq = Array.copy st.bseq in
          let s = bal.(o.src) and d = bal.(o.dst) in
          bal.(o.src) <- s - o.amount;
          bal.(o.dst) <- d + o.amount;
          bseq.(o.btid) <- o.bop;
          ({ bal; bseq }, (s, d)));
      equal_state = (fun a b -> a.bal = b.bal && a.bseq = b.bseq);
      hash_state = (fun st -> (hash_int_array st.bal * 31) + hash_int_array st.bseq);
      equal_res = ( = );
      commutes =
        (fun a b ->
          (* Disjoint account sets: state effects and both responses are
             independent of order (seq cells are per-thread, and the
             checker only asks about different threads). *)
          a.src <> b.src && a.src <> b.dst && a.dst <> b.src && a.dst <> b.dst);
      pp_op =
        (fun ppf o ->
          Format.fprintf ppf "t%d#%d: transfer %d %d->%d" o.btid o.bop o.amount o.src o.dst);
      pp_res = (fun ppf (s, d) -> Format.fprintf ppf "read (%d, %d)" s d);
      pp_state =
        (fun ppf st ->
          Format.fprintf ppf "bal=[%s] seq=[%s]"
            (String.concat ";" (Array.to_list (Array.map string_of_int st.bal)))
            (String.concat ";" (Array.to_list (Array.map string_of_int st.bseq))));
    }
  in
  let fresh ~seed =
    let committed = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let rng = Rng.create (seed + (7919 * tid)) in
      let base = Ptm.root_get ptm root_slot in
      let now = vclock ptm in
      for op = 1 to ops do
        let src = Rng.int rng accounts in
        (* Never [src = dst]: both reads precede both writes in the
           transaction body, so an aliased transfer would net +amount
           and break the conservation invariant for unlucky seeds. *)
        let dst = (src + 1 + Rng.int rng (accounts - 1)) mod accounts in
        let amount = 1 + Rng.int rng 5 in
        attempted.(tid) <- op;
        let o = { btid = tid; bop = op; src; dst; amount } in
        ignore
          (Dlin.History.run h ~tid ~now o (fun () ->
               let res = ref (0, 0) in
               Ptm.atomic ptm (fun tx ->
                   let s = Ptm.read tx (base + src) in
                   let d = Ptm.read tx (base + dst) in
                   res := (s, d);
                   Ptm.write tx (base + src) (s - amount);
                   Ptm.write tx (base + dst) (d + amount);
                   (* The sequence cell makes lost/partial transactions
                      visible even when the transfer itself happens to
                      conserve money. *)
                   Ptm.write tx (base + accounts + tid) op;
                   Ptm.on_commit tx (fun () -> committed.(tid) <- op));
               !res)
            : int * int)
      done
    in
    let oracle ~crashed:_ _sim ptm =
      let base = Ptm.root_get ptm root_slot in
      let recovered =
        Ptm.atomic ptm (fun tx ->
            {
              bal = Array.init accounts (fun i -> Ptm.read tx (base + i));
              bseq = Array.init threads (fun j -> Ptm.read tx (base + accounts + j));
            })
      in
      run_dlin spec h ~recovered
    in
    let validate ~crashed:_ _sim ptm =
      let base = Ptm.root_get ptm root_slot in
      let sum =
        Ptm.atomic ptm (fun tx ->
            let s = ref 0 in
            for i = 0 to accounts - 1 do
              s := !s + Ptm.read tx (base + i)
            done;
            !s)
      in
      if sum <> accounts * initial then
        Error (Printf.sprintf "bank: balance sum %d, expected %d" sum (accounts * initial))
      else begin
        let bad = ref None in
        for j = 0 to threads - 1 do
          if !bad = None then begin
            let cell = Ptm.atomic ptm (fun tx -> Ptm.read tx (base + accounts + j)) in
            if cell < committed.(j) then
              bad :=
                Some
                  (Printf.sprintf "bank: thread %d lost committed op %d (cell holds %d)" j
                     committed.(j) cell)
            else if cell > attempted.(j) then
              bad :=
                Some
                  (Printf.sprintf "bank: thread %d cell %d beyond last attempted op %d" j cell
                     attempted.(j))
          end
        done;
        match !bad with None -> Ok () | Some e -> Error e
      end
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "bank" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 512;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- counters: whole-write-set atomicity ---------- *)

type counters_op = { ctid : int; cop : int }

let counters ?(slots = 8) ?(threads = 4) ?(ops = 8) ?(coalesce = true) () =
  let prepare ptm =
    let base =
      Ptm.atomic ptm (fun tx ->
          let b = Ptm.alloc tx slots in
          for i = 0 to slots - 1 do
            Ptm.write tx (b + i) 0
          done;
          b)
    in
    Ptm.root_set ptm root_slot base
  in
  (* All slots always hold the same value, so the abstract state is one
     integer; the response (the new value) forces a near-total order —
     exactly-once increments fall out of the search. *)
  let spec =
    {
      Dlin.init = 0;
      apply = (fun st (_ : counters_op) -> (st + 1, st + 1));
      equal_state = Int.equal;
      hash_state = Fun.id;
      equal_res = Int.equal;
      commutes = (fun _ _ -> false);
      pp_op = (fun ppf o -> Format.fprintf ppf "t%d#%d: incr-all" o.ctid o.cop);
      pp_res = Format.pp_print_int;
      pp_state = (fun ppf v -> Format.fprintf ppf "slots=%d" v);
    }
  in
  let fresh ~seed:_ =
    let committed = ref 0 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let base = Ptm.root_get ptm root_slot in
      let now = vclock ptm in
      for op = 1 to ops do
        ignore
          (Dlin.History.run h ~tid ~now { ctid = tid; cop = op } (fun () ->
               let res = ref 0 in
               Ptm.atomic ptm (fun tx ->
                   let v = Ptm.read tx (base + 0) + 1 in
                   res := v;
                   for i = 0 to slots - 1 do
                     Ptm.write tx (base + i) v
                   done;
                   Ptm.on_commit tx (fun () -> committed := max !committed v));
               !res)
            : int)
      done
    in
    let oracle ~crashed:_ _sim ptm =
      let base = Ptm.root_get ptm root_slot in
      let values =
        Ptm.atomic ptm (fun tx -> List.init slots (fun i -> Ptm.read tx (base + i)))
      in
      let v0 = List.hd values in
      if List.exists (fun v -> v <> v0) values then
        extraction_fail spec h
          (Printf.sprintf "counters: slots diverge after recovery: [%s]"
             (String.concat "; " (List.map string_of_int values)))
      else run_dlin spec h ~recovered:v0
    in
    let validate ~crashed:_ _sim ptm =
      let base = Ptm.root_get ptm root_slot in
      let values =
        Ptm.atomic ptm (fun tx -> List.init slots (fun i -> Ptm.read tx (base + i)))
      in
      let v0 = List.hd values in
      if List.exists (fun v -> v <> v0) values then
        Error
          (Printf.sprintf "counters: slots diverge after recovery: [%s]"
             (String.concat "; " (List.map string_of_int values)))
      else if v0 < !committed then
        Error (Printf.sprintf "counters: committed value %d lost (slots hold %d)" !committed v0)
      else if v0 > threads * ops then
        Error (Printf.sprintf "counters: value %d exceeds %d attempts" v0 (threads * ops))
      else Ok ()
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "counters" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 512;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- btree: structural invariants + key-set bounds ---------- *)

type btree_op = { ttid : int; tkey : int; tvalue : int }

let btree ?(threads = 4) ?(ops = 8) ?(coalesce = true) () =
  let value_of key = (key * 3) + 1 in
  let prepare ptm =
    let t = Pstructs.Bptree.create ptm in
    Ptm.root_set ptm root_slot (Pstructs.Bptree.descriptor t)
  in
  let spec =
    {
      Dlin.init = IntMap.empty;
      apply =
        (fun st o -> (IntMap.add o.tkey o.tvalue st, not (IntMap.mem o.tkey st)));
      equal_state = IntMap.equal Int.equal;
      hash_state = (fun st -> IntMap.fold (fun k v h -> (h * 31) + (k lxor (v * 7))) st 17);
      equal_res = Bool.equal;
      commutes = (fun a b -> a.tkey <> b.tkey);
      pp_op = (fun ppf o -> Format.fprintf ppf "t%d: insert %d=%d" o.ttid o.tkey o.tvalue);
      pp_res = Format.pp_print_bool;
      pp_state =
        (fun ppf st ->
          Format.fprintf ppf "{%s}"
            (String.concat ";"
               (List.map
                  (fun (k, v) -> Printf.sprintf "%d=%d" k v)
                  (IntMap.bindings st))));
    }
  in
  let fresh ~seed:_ =
    let committed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let attempted : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm root_slot) in
      let now = vclock ptm in
      for i = 1 to ops do
        let key = ((tid + 1) * 1000) + i in
        Hashtbl.replace attempted key ();
        ignore
          (Dlin.History.run h ~tid ~now { ttid = tid; tkey = key; tvalue = value_of key }
             (fun () ->
               let res = ref false in
               Ptm.atomic ptm (fun tx ->
                   res := Pstructs.Bptree.insert tx t ~key ~value:(value_of key);
                   Ptm.on_commit tx (fun () -> Hashtbl.replace committed key ()));
               !res)
            : bool)
      done
    in
    let oracle ~crashed:_ _sim ptm =
      let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm root_slot) in
      match Pstructs.Bptree.check_invariants t with
      | exception Failure e -> extraction_fail spec h ("btree: structural violation: " ^ e)
      | () ->
        let recovered =
          List.fold_left
            (fun m (k, v) -> IntMap.add k v m)
            IntMap.empty (Pstructs.Bptree.to_alist t)
        in
        run_dlin spec h ~recovered
    in
    let validate ~crashed:_ _sim ptm =
      let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm root_slot) in
      match Pstructs.Bptree.check_invariants t with
      | exception Failure e -> Error ("btree: structural violation: " ^ e)
      | () ->
        let alist = Pstructs.Bptree.to_alist t in
        let present : (int, int) Hashtbl.t = Hashtbl.create 64 in
        List.iter (fun (k, v) -> Hashtbl.replace present k v) alist;
        let bad = ref None in
        Hashtbl.iter
          (fun key () ->
            if !bad = None then
              match Hashtbl.find_opt present key with
              | None -> bad := Some (Printf.sprintf "btree: committed key %d missing" key)
              | Some v when v <> value_of key ->
                bad := Some (Printf.sprintf "btree: key %d has value %d, expected %d" key v
                               (value_of key))
              | Some _ -> ())
          committed;
        List.iter
          (fun (k, _) ->
            if !bad = None && not (Hashtbl.mem attempted k) then
              bad := Some (Printf.sprintf "btree: phantom key %d was never inserted" k))
          alist;
        (match !bad with None -> Ok () | Some e -> Error e)
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "btree" ~coalesce;
    threads;
    heap_words = 1 lsl 17;
    log_words_per_thread = 2048;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- MOD structures: buffered durability under the crash matrix ---------- *)

(* One scenario body shared by the MOD B+tree and the MOD hash table.
   Each thread works a private key range with a deterministic script —
   inserts of fresh keys, every fourth op removing the key inserted just
   before it — so the abstract state after any per-thread prefix is
   computable without replaying the run.

   Durability is the interesting part: under algorithm [Mod] the root
   swap is published with an {e unfenced} flush, so a crash may lose a
   committed suffix of the serialized history.  The oracle therefore
   runs {!Dlin.check} with [`Buffered] durability when the recovered PTM
   runs MOD (strict otherwise — the same structures are legal
   strict-durable under redo/undo logging), and the validate replaces
   the usual "every committed key is present" rule with:

   - each thread's recovered bindings must equal its state after {e
     some} prefix of its script (snapshot consistency);
   - without a crash, that prefix covers every attempted op;
   - under strict algorithms, it covers every committed op;
   - under MOD with a crash, the committed-but-lost total across
     threads is bounded by the write-pending-queue lag — the commits
     after the durable snapshot all raced their root flush against the
     crash, one unfenced flush deep per thread;
   - nothing outside any thread's key range exists (no phantoms). *)

type mod_op = { mtid : int; mseq : int; mkey : int; minsert : bool; mvalue : int }

type 'h mod_struct = {
  ms_prepare : Ptm.t -> unit;
  ms_attach : Ptm.t -> int -> 'h;
  ms_insert : Ptm.tx -> 'h -> key:int -> value:int -> bool;
  ms_remove : Ptm.tx -> 'h -> int -> bool;
  ms_invariants : 'h -> unit;
  ms_alist : 'h -> (int * int) list;
}

let mod_value_of key = (key * 5) + 3

let mod_op_of ~tid ~i =
  let base = (tid + 1) * 1000 in
  if i mod 4 = 0 then
    { mtid = tid; mseq = i; mkey = base + i - 1; minsert = false; mvalue = 0 }
  else
    {
      mtid = tid;
      mseq = i;
      mkey = base + i;
      minsert = true;
      mvalue = mod_value_of (base + i);
    }

(* Abstract per-thread states after each script prefix. *)
let mod_prefix_states ~tid ~ops =
  let states = Array.make (ops + 1) IntMap.empty in
  for i = 1 to ops do
    let o = mod_op_of ~tid ~i in
    states.(i) <-
      (if o.minsert then IntMap.add o.mkey o.mvalue states.(i - 1)
       else IntMap.remove o.mkey states.(i - 1))
  done;
  states

let mod_scenario (ms : _ mod_struct) ~name ?(threads = 3) ?(ops = 8) ?(coalesce = true) () =
  let spec =
    {
      Dlin.init = IntMap.empty;
      apply =
        (fun st o ->
          if o.minsert then (IntMap.add o.mkey o.mvalue st, not (IntMap.mem o.mkey st))
          else (IntMap.remove o.mkey st, IntMap.mem o.mkey st));
      equal_state = IntMap.equal Int.equal;
      hash_state = (fun st -> IntMap.fold (fun k v h -> (h * 31) + (k lxor (v * 7))) st 17);
      equal_res = Bool.equal;
      commutes = (fun a b -> a.mkey <> b.mkey);
      pp_op =
        (fun ppf o ->
          if o.minsert then
            Format.fprintf ppf "t%d#%d: insert %d=%d" o.mtid o.mseq o.mkey o.mvalue
          else Format.fprintf ppf "t%d#%d: remove %d" o.mtid o.mseq o.mkey);
      pp_res = Format.pp_print_bool;
      pp_state =
        (fun ppf st ->
          Format.fprintf ppf "{%s}"
            (String.concat ";"
               (List.map
                  (fun (k, v) -> Printf.sprintf "%d=%d" k v)
                  (IntMap.bindings st))));
    }
  in
  let fresh ~seed:_ =
    let committed = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let t = ms.ms_attach ptm (Ptm.root_get ptm root_slot) in
      let now = vclock ptm in
      for i = 1 to ops do
        let o = mod_op_of ~tid ~i in
        attempted.(tid) <- i;
        ignore
          (Dlin.History.run h ~tid ~now o (fun () ->
               let res = ref false in
               Ptm.atomic ptm (fun tx ->
                   res :=
                     (if o.minsert then ms.ms_insert tx t ~key:o.mkey ~value:o.mvalue
                      else ms.ms_remove tx t o.mkey);
                   Ptm.on_commit tx (fun () -> committed.(tid) <- i));
               !res)
            : bool)
      done
    in
    let extract ptm =
      let t = ms.ms_attach ptm (Ptm.root_get ptm root_slot) in
      match ms.ms_invariants t with
      | exception Failure e -> Error (name ^ ": structural violation: " ^ e)
      | () -> Ok (ms.ms_alist t)
    in
    let oracle ~crashed:_ _sim ptm =
      match extract ptm with
      | Error reason -> extraction_fail spec h reason
      | Ok alist ->
        let recovered =
          List.fold_left (fun m (k, v) -> IntMap.add k v m) IntMap.empty alist
        in
        let durability = if Ptm.algorithm ptm = Ptm.Mod then `Buffered else `Strict in
        run_dlin ~durability spec h ~recovered
    in
    let validate ~crashed _sim ptm =
      match extract ptm with
      | Error e -> Error e
      | Ok alist -> (
        let buffered = Ptm.algorithm ptm = Ptm.Mod in
        let per_tid = Array.make threads IntMap.empty in
        let phantom = ref None in
        List.iter
          (fun (k, v) ->
            let tid = (k / 1000) - 1 in
            if tid < 0 || tid >= threads || k mod 1000 > ops then (
              if !phantom = None then
                phantom := Some (Printf.sprintf "%s: phantom key %d" name k))
            else per_tid.(tid) <- IntMap.add k v per_tid.(tid))
          alist;
        match !phantom with
        | Some e -> Error e
        | None -> (
          let err = ref None and lost = ref 0 in
          for tid = 0 to threads - 1 do
            if !err = None then begin
              let states = mod_prefix_states ~tid ~ops in
              (* Most charitable consistent prefix: states can repeat
                 (insert x; remove x), so scan from the deepest. *)
              let j = ref (-1) in
              for cand = ops downto 0 do
                if !j < 0 && IntMap.equal Int.equal states.(cand) per_tid.(tid) then
                  j := cand
              done;
              if !j < 0 then
                err :=
                  Some
                    (Printf.sprintf "%s: thread %d's recovered keys match no script prefix"
                       name tid)
              else if (not crashed) && !j < attempted.(tid) then
                err :=
                  Some
                    (Printf.sprintf "%s: no crash, but thread %d stopped at prefix %d of %d"
                       name tid !j attempted.(tid))
              else if crashed && (not buffered) && !j < committed.(tid) then
                err :=
                  Some
                    (Printf.sprintf
                       "%s: committed op %d of thread %d lost under strict durability \
                        (deepest prefix %d)"
                       name committed.(tid) tid !j)
              else if crashed && buffered then lost := !lost + max 0 (committed.(tid) - !j)
            end
          done;
          match !err with
          | Some e -> Error e
          | None ->
            (* Buffered durability may lose commits whose root flush was
               still in the write-pending queue at the crash — a race
               one unfenced flush deep per thread plus scheduling slack,
               nowhere near "everything". *)
            let budget = threads + 2 in
            if !lost > budget then
              Error
                (Printf.sprintf "%s: %d committed ops lost (buffered lag budget %d)" name
                   !lost budget)
            else Ok ()))
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name name ~coalesce;
    threads;
    heap_words = 1 lsl 18;
    log_words_per_thread = 2048;
    coalesce;
    prepare = ms.ms_prepare;
    fresh;
  }

let mod_btree ?threads ?ops ?coalesce () =
  mod_scenario
    {
      ms_prepare =
        (fun ptm ->
          let t = Pstructs.Mod_bptree.create ptm in
          Ptm.root_set ptm root_slot (Pstructs.Mod_bptree.descriptor t));
      ms_attach = Pstructs.Mod_bptree.attach;
      ms_insert = Pstructs.Mod_bptree.insert;
      ms_remove = Pstructs.Mod_bptree.remove;
      ms_invariants = Pstructs.Mod_bptree.check_invariants;
      ms_alist = Pstructs.Mod_bptree.to_alist;
    }
    ~name:"mod-btree" ?threads ?ops ?coalesce ()

let mod_hash ?threads ?ops ?coalesce () =
  mod_scenario
    {
      ms_prepare =
        (fun ptm ->
          let t = Pstructs.Mod_phashtable.create ptm ~buckets:64 in
          Ptm.root_set ptm root_slot (Pstructs.Mod_phashtable.descriptor t));
      ms_attach = Pstructs.Mod_phashtable.attach;
      ms_insert = Pstructs.Mod_phashtable.put;
      ms_remove = Pstructs.Mod_phashtable.remove;
      ms_invariants = Pstructs.Mod_phashtable.check_invariants;
      ms_alist = Pstructs.Mod_phashtable.to_alist;
    }
    ~name:"mod-hash" ?threads ?ops ?coalesce ()

(* ---------- alloc churn: allocator accounting under a slot directory ---------- *)

(* Each thread owns [ops] one-word slots of a persistent directory;
   operation [j] either allocates a fresh block (stamp in word 0,
   address-independent signature words after it) and publishes its
   address in slot [j], or frees the most recently acquired live block
   and zeroes its slot — each in one transaction.  The abstract state is
   just the stamp-per-slot vector, so the oracle never has to model the
   allocator's address choices. *)

type alloc_op =
  | Acquire of { atid : int; aslot : int; words : int; stamp : int }
  | Release of { rtid : int; rslot : int }

let alloc_payload_sig stamp k tid = (stamp * 31) + (k * 7) + tid + 1000

let alloc_churn ?(threads = 4) ?(ops = 10) ?(coalesce = true) () =
  let prepare ptm =
    let dir =
      Ptm.atomic ptm (fun tx ->
          let d = Ptm.alloc tx (threads * ops) in
          for i = 0 to (threads * ops) - 1 do
            Ptm.write tx (d + i) 0
          done;
          d)
    in
    Ptm.root_set ptm root_slot dir
  in
  let spec =
    {
      Dlin.init = Array.make (threads * ops) 0;
      apply =
        (fun st o ->
          let st = Array.copy st in
          (match o with
          | Acquire { atid; aslot; stamp; _ } -> st.((atid * ops) + aslot) <- stamp
          | Release { rtid; rslot } -> st.((rtid * ops) + rslot) <- 0);
          (st, ()));
      equal_state = ( = );
      hash_state = hash_int_array;
      equal_res = (fun () () -> true);
      (* Slots are per-thread and responses are unit, so cross-thread
         operations always commute — the search degenerates to checking
         each thread's durable prefix independently. *)
      commutes = (fun _ _ -> true);
      pp_op =
        (fun ppf -> function
          | Acquire { atid; aslot; words; stamp } ->
            Format.fprintf ppf "t%d: acquire slot %d (%d words, stamp %d)" atid aslot words
              stamp
          | Release { rtid; rslot } -> Format.fprintf ppf "t%d: release slot %d" rtid rslot);
      pp_res = (fun ppf () -> Format.pp_print_string ppf "()");
      pp_state =
        (fun ppf st ->
          Format.fprintf ppf "stamps=[%s]"
            (String.concat ";" (Array.to_list (Array.map string_of_int st))));
    }
  in
  let fresh ~seed =
    (* The op schedule is a pure function of the seed, so the oracle's
       extraction can look up each slot's expected block shape. *)
    let schedule =
      Array.init threads (fun tid ->
          let rng = Rng.create (seed + (104729 * tid)) in
          let owned = ref [] in
          Array.init ops (fun j ->
              if !owned <> [] && Rng.chance rng 0.3 then begin
                let slot = List.hd !owned in
                owned := List.tl !owned;
                Release { rtid = tid; rslot = slot }
              end
              else begin
                let words = 2 + Rng.int rng 6 in
                owned := j :: !owned;
                Acquire { atid = tid; aslot = j; words; stamp = ((tid + 1) * 1000) + j }
              end))
    in
    let committed_live : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let dir = Ptm.root_get ptm root_slot in
      let now = vclock ptm in
      Array.iter
        (fun op ->
          Dlin.History.run h ~tid ~now op (fun () ->
              match op with
              | Acquire { aslot; words; stamp; _ } ->
                Ptm.atomic ptm (fun tx ->
                    let a = Ptm.alloc tx words in
                    Ptm.write tx a stamp;
                    for k = 1 to words - 1 do
                      Ptm.write tx (a + k) (alloc_payload_sig stamp k tid)
                    done;
                    Ptm.write tx (dir + (tid * ops) + aslot) a;
                    Ptm.on_commit tx (fun () -> Hashtbl.replace committed_live a words))
              | Release { rslot; _ } ->
                Ptm.atomic ptm (fun tx ->
                    let a = Ptm.read tx (dir + (tid * ops) + rslot) in
                    Ptm.free tx a;
                    Ptm.write tx (dir + (tid * ops) + rslot) 0;
                    Ptm.on_commit tx (fun () -> Hashtbl.remove committed_live a))))
        schedule.(tid)
    in
    let oracle ~crashed:_ _sim ptm =
      let dir = Ptm.root_get ptm root_slot in
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
      let recovered =
        Ptm.atomic ptm (fun tx ->
            Array.init (threads * ops) (fun i ->
                let tid = i / ops and j = i mod ops in
                let a = Ptm.read tx (dir + i) in
                if a = 0 then 0
                else
                  match schedule.(tid).(j) with
                  | Release _ ->
                    fail "alloc: slot %d.%d belongs to a release op but holds addr %d" tid j a;
                    0
                  | Acquire { words; stamp; _ } ->
                    let found = Ptm.read tx a in
                    for k = 1 to words - 1 do
                      let v = Ptm.read tx (a + k) in
                      if v <> alloc_payload_sig stamp k tid then
                        fail "alloc: block %d (slot %d.%d) word %d holds %d, expected %d" a
                          tid j k v (alloc_payload_sig stamp k tid)
                    done;
                    found))
      in
      match !err with
      | Some reason -> extraction_fail spec h reason
      | None -> run_dlin spec h ~recovered
    in
    let validate ~crashed:_ _sim ptm =
      (* Coarse allocator accounting: every durably committed block is
         visible to the region checker, up to one in-flight operation
         per thread whose hook never ran. *)
      let rep = Pmem.Check.run (Ptm.region ptm) in
      let shadow = Hashtbl.length committed_live in
      if rep.Pmem.Check.live_blocks < shadow - threads then
        Error
          (Printf.sprintf "alloc: checker sees %d live blocks, shadow has %d committed"
             rep.Pmem.Check.live_blocks shadow)
      else Ok ()
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "alloc" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 512;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- kvserve: crash mid-batch ---------- *)

(* The KV service's coalesced write path: every thread commits batches
   of [batch] sets plus its batch-marker key in ONE transaction, so a
   crash anywhere inside the batch must leave either all of it or none
   of it — and the marker tells which.  Mirrors
   [Kvserve.Service]'s durable-prefix recovery contract at crash-point
   granularity. *)

let kv_value ~tid ~b ~k = Printf.sprintf "v%d.%d.%d" tid b k
let kv_key ~tid ~b ~k = Printf.sprintf "t%d.b%d.%d" tid b k

(* Markers are fixed-width so every update is a same-length in-place
   [Pblob.set] — one store, no realloc. *)
let kv_marker v = Printf.sprintf "%03d" v

type kv_batch_op = { ktid : int; kb : int; kn : int }

(* Key triples packed into one int for the abstract key set. *)
let kv_enc ~tid ~b ~k = (((tid * 1024) + b) * 1024) + k

let kv_batch ?(threads = 4) ?(ops = 5) ?(batch = 4) ?(coalesce = true) () =
  let prepare ptm =
    let store = Kvserve.Store.create ptm ~buckets:64 in
    Ptm.atomic ptm (fun tx ->
        for tid = 0 to threads - 1 do
          Kvserve.Store.set tx store ~key:(Printf.sprintf "m%d" tid) ~flags:0 (kv_marker 0)
        done)
  in
  let spec =
    {
      Dlin.init = (Array.make threads 0, IntSet.empty);
      apply =
        (fun (markers, keys) o ->
          let markers = Array.copy markers in
          markers.(o.ktid) <- o.kb;
          let keys = ref keys in
          for k = 0 to o.kn - 1 do
            keys := IntSet.add (kv_enc ~tid:o.ktid ~b:o.kb ~k) !keys
          done;
          ((markers, !keys), ()));
      equal_state =
        (fun (ma, ka) (mb, kb) -> ma = mb && IntSet.equal ka kb);
      hash_state =
        (fun (m, keys) ->
          IntSet.fold (fun e acc -> (acc * 31) + e) keys (hash_int_array m));
      equal_res = (fun () () -> true);
      commutes = (fun a b -> a.ktid <> b.ktid);
      pp_op = (fun ppf o -> Format.fprintf ppf "t%d: batch %d (%d keys)" o.ktid o.kb o.kn);
      pp_res = (fun ppf () -> Format.pp_print_string ppf "()");
      pp_state =
        (fun ppf (m, keys) ->
          Format.fprintf ppf "markers=[%s] keys=%d"
            (String.concat ";" (Array.to_list (Array.map string_of_int m)))
            (IntSet.cardinal keys));
    }
  in
  let fresh ~seed =
    (* Seeded per-batch jitter so crash candidates land at distinct
       phases of different threads' batches; precomputed so worker,
       validator and oracle agree on every batch's width. *)
    let widths =
      Array.init threads (fun tid ->
          let rng = Rng.create (seed + (7919 * tid)) in
          Array.init ops (fun _ -> batch + Rng.int rng 2))
    in
    let committed = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let store = Kvserve.Store.attach ptm in
      let now = vclock ptm in
      for b = 1 to ops do
        attempted.(tid) <- b;
        let n = widths.(tid).(b - 1) in
        Dlin.History.run h ~tid ~now { ktid = tid; kb = b; kn = n } (fun () ->
            Ptm.atomic ptm (fun tx ->
                for k = 0 to n - 1 do
                  Kvserve.Store.set tx store ~key:(kv_key ~tid ~b ~k) ~flags:tid
                    (kv_value ~tid ~b ~k)
                done;
                Kvserve.Store.set tx store ~key:(Printf.sprintf "m%d" tid) ~flags:0
                  (kv_marker b);
                Ptm.on_commit tx (fun () -> committed.(tid) <- b)))
      done
    in
    let oracle ~crashed:_ _sim ptm =
      let store = Kvserve.Store.attach ptm in
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
      let recovered =
        Ptm.atomic ptm (fun tx ->
            let markers =
              Array.init threads (fun tid ->
                  match Kvserve.Store.get tx store (Printf.sprintf "m%d" tid) with
                  | None ->
                    fail "kv-batch: thread %d marker key missing" tid;
                    0
                  | Some (_, m) -> int_of_string m)
            in
            let keys = ref IntSet.empty in
            for tid = 0 to threads - 1 do
              for b = 1 to ops do
                for k = 0 to widths.(tid).(b - 1) - 1 do
                  match Kvserve.Store.get tx store (kv_key ~tid ~b ~k) with
                  | None -> ()
                  | Some (flags, v) ->
                    if flags <> tid || not (String.equal v (kv_value ~tid ~b ~k)) then
                      fail "kv-batch: key %s holds %S flags %d" (kv_key ~tid ~b ~k) v flags;
                    keys := IntSet.add (kv_enc ~tid ~b ~k) !keys
                done
              done
            done;
            (markers, !keys))
      in
      match !err with
      | Some reason -> extraction_fail spec h reason
      | None -> run_dlin spec h ~recovered
    in
    let validate ~crashed:_ _sim ptm =
      let store = Kvserve.Store.attach ptm in
      Ptm.atomic ptm (fun tx ->
          let err = ref None in
          let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
          for tid = 0 to threads - 1 do
            match Kvserve.Store.get tx store (Printf.sprintf "m%d" tid) with
            | None -> fail "kv-batch: thread %d marker key missing" tid
            | Some (_, m) ->
              let d = int_of_string m in
              if d < committed.(tid) then
                fail "kv-batch: thread %d lost committed batch %d (marker %d)" tid
                  committed.(tid) d
              else if d > attempted.(tid) then
                fail "kv-batch: thread %d marker %d beyond last attempted batch %d" tid d
                  attempted.(tid);
              for b = 1 to ops do
                for k = 0 to widths.(tid).(b - 1) - 1 do
                  let key = kv_key ~tid ~b ~k in
                  match (Kvserve.Store.get tx store key, b <= d) with
                  | None, true -> fail "kv-batch: durable batch %d lost key %s" b key
                  | Some (flags, v), true ->
                    if flags <> tid || not (String.equal v (kv_value ~tid ~b ~k)) then
                      fail "kv-batch: key %s holds %S flags %d" key v flags
                  | Some _, false ->
                    fail "kv-batch: key %s from batch %d survived past marker %d" key b d
                  | None, false -> ()
                done
              done
          done;
          match !err with None -> Ok () | Some e -> Error e)
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "kv-batch" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- kvserve: crash between per-shard commits ---------- *)

(* Two stores stand in for two shards of the service sharing a crash
   domain.  Each logical operation commits to shard A, then shard B —
   two independent transactions — so a crash in the window between
   them must leave A exactly one operation ahead of B, never more,
   never the other order.  Under the dlin oracle each per-shard commit
   is its own operation, so the B <= A <= B+1 bound is just "durable
   sets are per-thread prefixes". *)

type kv_xshard_op = XSetA of { xtid : int; xo : int } | XSetB of { xtid : int; xo : int }

let kv_xshard ?(threads = 4) ?(ops = 6) ?(coalesce = true) () =
  let base_a = 0 and base_b = 2 in
  let prepare ptm =
    let a = Kvserve.Store.create ~root_base:base_a ptm ~buckets:32 in
    let b = Kvserve.Store.create ~root_base:base_b ptm ~buckets:32 in
    Ptm.atomic ptm (fun tx ->
        for tid = 0 to threads - 1 do
          Kvserve.Store.set tx a ~key:(Printf.sprintf "ma%d" tid) ~flags:0 (kv_marker 0);
          Kvserve.Store.set tx b ~key:(Printf.sprintf "mb%d" tid) ~flags:0 (kv_marker 0)
        done)
  in
  let spec =
    {
      Dlin.init = (Array.make threads 0, Array.make threads 0, IntSet.empty);
      apply =
        (fun (ma, mb, keys) o ->
          match o with
          | XSetA { xtid; xo } ->
            let ma = Array.copy ma in
            ma.(xtid) <- xo;
            ((ma, mb, IntSet.add (kv_enc ~tid:xtid ~b:xo ~k:0) keys), ())
          | XSetB { xtid; xo } ->
            let mb = Array.copy mb in
            mb.(xtid) <- xo;
            ((ma, mb, IntSet.add (kv_enc ~tid:xtid ~b:xo ~k:1) keys), ()));
      equal_state =
        (fun (ma, mb, ka) (ma', mb', kb) -> ma = ma' && mb = mb' && IntSet.equal ka kb);
      hash_state =
        (fun (ma, mb, keys) ->
          IntSet.fold
            (fun e acc -> (acc * 31) + e)
            keys
            ((hash_int_array ma * 31) + hash_int_array mb));
      equal_res = (fun () () -> true);
      commutes =
        (fun a b ->
          let tid = function XSetA { xtid; _ } | XSetB { xtid; _ } -> xtid in
          tid a <> tid b);
      pp_op =
        (fun ppf -> function
          | XSetA { xtid; xo } -> Format.fprintf ppf "t%d: set A #%d" xtid xo
          | XSetB { xtid; xo } -> Format.fprintf ppf "t%d: set B #%d" xtid xo);
      pp_res = (fun ppf () -> Format.pp_print_string ppf "()");
      pp_state =
        (fun ppf (ma, mb, _) ->
          Format.fprintf ppf "A=[%s] B=[%s]"
            (String.concat ";" (Array.to_list (Array.map string_of_int ma)))
            (String.concat ";" (Array.to_list (Array.map string_of_int mb))));
    }
  in
  (* No per-seed randomness: the interleaving the engine explores comes
     entirely from the crash instant. *)
  let fresh ~seed:_ =
    let committed_a = Array.make threads 0 in
    let committed_b = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let a = Kvserve.Store.attach ~root_base:base_a ptm in
      let b = Kvserve.Store.attach ~root_base:base_b ptm in
      let now = vclock ptm in
      for o = 1 to ops do
        attempted.(tid) <- o;
        Dlin.History.run h ~tid ~now (XSetA { xtid = tid; xo = o }) (fun () ->
            Ptm.atomic ptm (fun tx ->
                Kvserve.Store.set tx a ~key:(Printf.sprintf "a.t%d.%d" tid o) ~flags:o
                  (kv_value ~tid ~b:o ~k:0);
                Kvserve.Store.set tx a ~key:(Printf.sprintf "ma%d" tid) ~flags:0 (kv_marker o);
                Ptm.on_commit tx (fun () -> committed_a.(tid) <- o)));
        Dlin.History.run h ~tid ~now (XSetB { xtid = tid; xo = o }) (fun () ->
            Ptm.atomic ptm (fun tx ->
                Kvserve.Store.set tx b ~key:(Printf.sprintf "b.t%d.%d" tid o) ~flags:o
                  (kv_value ~tid ~b:o ~k:1);
                Kvserve.Store.set tx b ~key:(Printf.sprintf "mb%d" tid) ~flags:0 (kv_marker o);
                Ptm.on_commit tx (fun () -> committed_b.(tid) <- o)))
      done
    in
    let oracle ~crashed:_ _sim ptm =
      let a = Kvserve.Store.attach ~root_base:base_a ptm in
      let b = Kvserve.Store.attach ~root_base:base_b ptm in
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
      let recovered =
        Ptm.atomic ptm (fun tx ->
            let marker store name tid =
              match Kvserve.Store.get tx store (Printf.sprintf "%s%d" name tid) with
              | None ->
                fail "kv-xshard: thread %d %s marker missing" tid name;
                0
              | Some (_, m) -> int_of_string m
            in
            let ma = Array.init threads (marker a "ma") in
            let mb = Array.init threads (marker b "mb") in
            let keys = ref IntSet.empty in
            for tid = 0 to threads - 1 do
              for o = 1 to ops do
                (match Kvserve.Store.get tx a (Printf.sprintf "a.t%d.%d" tid o) with
                | None -> ()
                | Some (flags, v) ->
                  if flags <> o || not (String.equal v (kv_value ~tid ~b:o ~k:0)) then
                    fail "kv-xshard: key a.t%d.%d holds %S flags %d" tid o v flags;
                  keys := IntSet.add (kv_enc ~tid ~b:o ~k:0) !keys);
                match Kvserve.Store.get tx b (Printf.sprintf "b.t%d.%d" tid o) with
                | None -> ()
                | Some (flags, v) ->
                  if flags <> o || not (String.equal v (kv_value ~tid ~b:o ~k:1)) then
                    fail "kv-xshard: key b.t%d.%d holds %S flags %d" tid o v flags;
                  keys := IntSet.add (kv_enc ~tid ~b:o ~k:1) !keys
              done
            done;
            (ma, mb, !keys))
      in
      match !err with
      | Some reason -> extraction_fail spec h reason
      | None -> run_dlin spec h ~recovered
    in
    let validate ~crashed:_ _sim ptm =
      let a = Kvserve.Store.attach ~root_base:base_a ptm in
      let b = Kvserve.Store.attach ~root_base:base_b ptm in
      Ptm.atomic ptm (fun tx ->
          let err = ref None in
          let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
          let marker store name tid =
            match Kvserve.Store.get tx store (Printf.sprintf "%s%d" name tid) with
            | None ->
              fail "kv-xshard: thread %d %s marker missing" tid name;
              0
            | Some (_, m) -> int_of_string m
          in
          let check_content store prefix tid upto =
            for o = 1 to ops do
              let key = Printf.sprintf "%s.t%d.%d" prefix tid o in
              match (Kvserve.Store.get tx store key, o <= upto) with
              | None, true -> fail "kv-xshard: durable op %d lost key %s" o key
              | Some _, false ->
                fail "kv-xshard: key %s survived past marker %d" key upto
              | _ -> ()
            done
          in
          for tid = 0 to threads - 1 do
            let ma = marker a "ma" tid in
            let mb = marker b "mb" tid in
            if ma < committed_a.(tid) then
              fail "kv-xshard: thread %d lost committed A op %d (marker %d)" tid
                committed_a.(tid) ma;
            if mb < committed_b.(tid) then
              fail "kv-xshard: thread %d lost committed B op %d (marker %d)" tid
                committed_b.(tid) mb;
            if ma > attempted.(tid) || mb > attempted.(tid) then
              fail "kv-xshard: thread %d markers (%d,%d) beyond attempted %d" tid ma mb
                attempted.(tid);
            (* A commits strictly before B within an op: B may trail A
               by at most the one in-flight op, and never lead it. *)
            if mb > ma || ma > mb + 1 then
              fail "kv-xshard: thread %d shard markers A=%d B=%d violate commit order" tid ma
                mb;
            check_content a "a" tid ma;
            check_content b "b" tid mb
          done;
          match !err with None -> Ok () | Some e -> Error e)
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "kv-xshard" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- kvserve: exactly-once increments ---------- *)

(* A single shared memcached-style counter bumped by every thread
   through [Kvserve.Store.incr].  The response (the new value) pins
   each increment to one slot of a total order, so the dlin search is
   the exactly-once oracle: a replayed increment (value seen twice) or
   a lost committed one has no explaining linearization. *)

type kv_incr_op = { itid : int; iop : int }

let kv_incr_key = "ctr"

let kv_incr ?(threads = 4) ?(ops = 6) ?(coalesce = true) () =
  let prepare ptm =
    let store = Kvserve.Store.create ptm ~buckets:32 in
    Ptm.atomic ptm (fun tx -> Kvserve.Store.set tx store ~key:kv_incr_key ~flags:0 "0")
  in
  let spec =
    {
      Dlin.init = 0;
      apply = (fun st (_ : kv_incr_op) -> (st + 1, st + 1));
      equal_state = Int.equal;
      hash_state = Fun.id;
      equal_res = Int.equal;
      commutes = (fun _ _ -> false);
      pp_op = (fun ppf o -> Format.fprintf ppf "t%d#%d: incr" o.itid o.iop);
      pp_res = Format.pp_print_int;
      pp_state = (fun ppf v -> Format.fprintf ppf "ctr=%d" v);
    }
  in
  let fresh ~seed:_ =
    let committed = ref 0 in
    let h = Dlin.History.create ~threads in
    let worker ~tid ptm =
      let store = Kvserve.Store.attach ptm in
      let now = vclock ptm in
      for op = 1 to ops do
        ignore
          (Dlin.History.run h ~tid ~now { itid = tid; iop = op } (fun () ->
               let res = ref 0 in
               Ptm.atomic ptm (fun tx ->
                   match Kvserve.Store.incr tx store kv_incr_key 1 with
                   | Kvserve.Store.New_value v ->
                     res := v;
                     Ptm.on_commit tx (fun () -> committed := max !committed v)
                   | Missing | Not_numeric -> failwith "kv-incr: counter unreadable");
               !res)
            : int)
      done
    in
    let read_counter ptm =
      let store = Kvserve.Store.attach ptm in
      Ptm.atomic ptm (fun tx ->
          match Kvserve.Store.get tx store kv_incr_key with
          | None -> Error "kv-incr: counter key missing"
          | Some (_, v) -> (
            match int_of_string_opt v with
            | None -> Error (Printf.sprintf "kv-incr: counter holds non-numeric %S" v)
            | Some n -> Ok n))
    in
    let oracle ~crashed:_ _sim ptm =
      match read_counter ptm with
      | Error reason -> extraction_fail spec h reason
      | Ok n -> run_dlin spec h ~recovered:n
    in
    let validate ~crashed:_ _sim ptm =
      match read_counter ptm with
      | Error e -> Error e
      | Ok n ->
        if n < !committed then
          Error (Printf.sprintf "kv-incr: committed value %d lost (counter %d)" !committed n)
        else if n > threads * ops then
          Error (Printf.sprintf "kv-incr: value %d exceeds %d attempts" n (threads * ops))
        else Ok ()
    in
    { Engine.worker; validate; oracle = Some oracle }
  in
  {
    Engine.name = mode_name "kv-incr" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- adapter over the paper's workloads ---------- *)

let of_spec ?(threads = 2) ?(ops = 50) ?(coalesce = true) (spec : Workloads.Driver.spec) =
  let prepare ptm = spec.Workloads.Driver.setup ptm in
  let fresh ~seed =
    let worker ~tid ptm =
      let rng = Rng.create (seed lxor (31 * (tid + 1))) in
      let op = spec.Workloads.Driver.make_op ptm ~tid ~rng in
      for _ = 1 to ops do
        op ()
      done
    in
    (* Structural oracle only: the workload's own state model stays
       opaque, but region metadata and recovery must stay clean. *)
    let validate ~crashed:_ _sim ptm =
      let rep = Pmem.Check.run (Ptm.region ptm) in
      if Pmem.Check.is_clean rep then Ok ()
      else Error (Format.asprintf "workload %s: %a" spec.Workloads.Driver.name Pmem.Check.pp rep)
    in
    { Engine.worker; validate; oracle = None }
  in
  {
    Engine.name = mode_name ("wl-" ^ spec.Workloads.Driver.name) ~coalesce;
    threads;
    heap_words = spec.Workloads.Driver.heap_words;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- FAMS: bank over the snapshot API ---------- *)

type fams_bank_op = { fop : int; fsrc : int; fdst : int; famount : int }
type fams_bank_state = { fbal : int array; fseq : int }

(* The msync twin of {!bank}: one mutator transfers between scattered
   one-word accounts in the FAMS working area and calls [msync_atomic]
   every [sync_every] operations.  The dlin oracle runs with [`Buffered]
   durability — recovery restores the last completed sync, so any
   per-thread prefix cut is legal — and the validate closes the gap
   buffered cuts leave open: a sync that {e completed} before the crash
   is FAMS's durability point, so the recovered op counter must reach
   it. *)
let fams_bank ?(accounts = 256) ?(ops = 80) ?(sync_every = 8) () =
  let initial = 100 in
  let spread = 4 in
  (* accounts * spread = 1024 words: the working area spans two pages,
     so line- and page-granularity sweeps journal different unit sets. *)
  let seq_addr = accounts * spread in
  let words = seq_addr + 1 in
  let spec =
    {
      Dlin.init = { fbal = Array.make accounts initial; fseq = 0 };
      apply =
        (fun st o ->
          let fbal = Array.copy st.fbal in
          let s = fbal.(o.fsrc) and d = fbal.(o.fdst) in
          fbal.(o.fsrc) <- s - o.famount;
          fbal.(o.fdst) <- d + o.famount;
          ({ fbal; fseq = o.fop }, (s, d)));
      equal_state = (fun a b -> a.fbal = b.fbal && a.fseq = b.fseq);
      hash_state = (fun st -> (hash_int_array st.fbal * 31) + st.fseq);
      equal_res = ( = );
      (* Single mutator: the checker never asks about same-thread
         pairs, so commutativity is moot. *)
      commutes = (fun _ _ -> false);
      pp_op =
        (fun ppf o ->
          Format.fprintf ppf "#%d: transfer %d %d->%d" o.fop o.famount o.fsrc o.fdst);
      pp_res = (fun ppf (s, d) -> Format.fprintf ppf "read (%d, %d)" s d);
      pp_state =
        (fun ppf st ->
          Format.fprintf ppf "seq=%d bal=[%s]" st.fseq
            (String.concat ";" (Array.to_list (Array.map string_of_int st.fbal))));
    }
  in
  let f_prepare fams =
    for i = 0 to accounts - 1 do
      Fams.raw_write fams (i * spread) initial
    done;
    Fams.raw_write fams seq_addr 0
  in
  let f_fresh ~seed =
    let attempted = ref 0 in
    let synced = ref 0 in
    let h = Dlin.History.create ~threads:1 in
    let f_worker sim fams =
      let rng = Rng.create (seed + 7919) in
      let now = (Memsim.Sim.machine sim).Machine.now_ns in
      for op = 1 to ops do
        let src = Rng.int rng accounts in
        (* Never [src = dst]: both reads precede both writes. *)
        let dst = (src + 1 + Rng.int rng (accounts - 1)) mod accounts in
        let amount = 1 + Rng.int rng 5 in
        attempted := op;
        let o = { fop = op; fsrc = src; fdst = dst; famount = amount } in
        ignore
          (Dlin.History.run h ~tid:0 ~now o (fun () ->
               let s = Fams.read fams (src * spread) in
               let d = Fams.read fams (dst * spread) in
               Fams.write fams (src * spread) (s - amount);
               Fams.write fams (dst * spread) (d + amount);
               Fams.write fams seq_addr op;
               if op mod sync_every = 0 then begin
                 Fams.msync_atomic fams;
                 synced := op
               end;
               (s, d))
            : int * int)
      done
    in
    let f_oracle ~crashed:_ _sim fams =
      let recovered =
        {
          fbal = Array.init accounts (fun i -> Fams.raw_read fams (i * spread));
          fseq = Fams.raw_read fams seq_addr;
        }
      in
      run_dlin ~durability:`Buffered spec h ~recovered
    in
    let f_validate ~crashed _sim fams =
      let sum = ref 0 in
      for i = 0 to accounts - 1 do
        sum := !sum + Fams.raw_read fams (i * spread)
      done;
      let seqv = Fams.raw_read fams seq_addr in
      if !sum <> accounts * initial then
        Error (Printf.sprintf "fams-bank: balance sum %d, expected %d" !sum (accounts * initial))
      else if seqv < !synced then
        Error
          (Printf.sprintf "fams-bank: lost completed sync (op counter %d, last synced op %d)"
             seqv !synced)
      else if seqv > !attempted then
        Error
          (Printf.sprintf "fams-bank: op counter %d beyond last attempted op %d" seqv
             !attempted)
      else if (not crashed) && seqv <> ops then
        Error (Printf.sprintf "fams-bank: clean run retained %d/%d ops" seqv ops)
      else Ok ()
    in
    { Engine.f_worker; f_validate; f_oracle = Some f_oracle }
  in
  { Engine.f_name = "fams-bank"; f_words = words; f_prepare; f_fresh }

let fams_all () = [ fams_bank () ]

let fams_find name =
  match List.find_opt (fun s -> s.Engine.f_name = name) (fams_all ()) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Scenarios.fams_find: unknown FAMS scenario %S" name)

let all () =
  [
    bank ();
    counters ();
    btree ();
    mod_btree ();
    mod_hash ();
    alloc_churn ();
    kv_batch ();
    kv_xshard ();
    kv_incr ();
    (* The naive per-entry flush discipline is a distinct persistence
       schedule, so its crash points are swept separately. *)
    bank ~coalesce:false ();
    btree ~coalesce:false ();
  ]

let find name =
  match List.find_opt (fun s -> s.Engine.name = name) (all ()) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Scenarios.find: unknown scenario %S" name)
