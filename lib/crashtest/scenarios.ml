module Ptm = Pstm.Ptm
module Rng = Repro_util.Rng

(* Roots used by every scenario: slot 0 holds the scenario's top-level
   persistent address. *)
let root_slot = 0

(* Scenario names encode the flush discipline so a replay spec printed
   for a naive-mode failure reconstructs the same scenario. *)
let mode_name name ~coalesce = if coalesce then name else name ^ "-naive"

(* ---------- bank: money conservation + per-thread sequence cells ---------- *)

let bank ?(accounts = 32) ?(threads = 4) ?(ops = 10) ?(coalesce = true) () =
  let initial = 100 in
  let prepare ptm =
    let base =
      Ptm.atomic ptm (fun tx ->
          let b = Ptm.alloc tx (accounts + threads) in
          for i = 0 to accounts - 1 do
            Ptm.write tx (b + i) initial
          done;
          for j = 0 to threads - 1 do
            Ptm.write tx (b + accounts + j) 0
          done;
          b)
    in
    Ptm.root_set ptm root_slot base
  in
  let fresh ~seed =
    let committed = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let worker ~tid ptm =
      let rng = Rng.create (seed + (7919 * tid)) in
      let base = Ptm.root_get ptm root_slot in
      for op = 1 to ops do
        let src = Rng.int rng accounts in
        let dst = Rng.int rng accounts in
        let amount = 1 + Rng.int rng 5 in
        attempted.(tid) <- op;
        Ptm.atomic ptm (fun tx ->
            let s = Ptm.read tx (base + src) in
            let d = Ptm.read tx (base + dst) in
            Ptm.write tx (base + src) (s - amount);
            Ptm.write tx (base + dst) (d + amount);
            (* The sequence cell makes lost/partial transactions visible
               even when the transfer itself happens to conserve money. *)
            Ptm.write tx (base + accounts + tid) op;
            Ptm.on_commit tx (fun () -> committed.(tid) <- op))
      done
    in
    let validate ~crashed:_ _sim ptm =
      let base = Ptm.root_get ptm root_slot in
      let sum =
        Ptm.atomic ptm (fun tx ->
            let s = ref 0 in
            for i = 0 to accounts - 1 do
              s := !s + Ptm.read tx (base + i)
            done;
            !s)
      in
      if sum <> accounts * initial then
        Error (Printf.sprintf "bank: balance sum %d, expected %d" sum (accounts * initial))
      else begin
        let bad = ref None in
        for j = 0 to threads - 1 do
          if !bad = None then begin
            let cell = Ptm.atomic ptm (fun tx -> Ptm.read tx (base + accounts + j)) in
            if cell < committed.(j) then
              bad :=
                Some
                  (Printf.sprintf "bank: thread %d lost committed op %d (cell holds %d)" j
                     committed.(j) cell)
            else if cell > attempted.(j) then
              bad :=
                Some
                  (Printf.sprintf "bank: thread %d cell %d beyond last attempted op %d" j cell
                     attempted.(j))
          end
        done;
        match !bad with None -> Ok () | Some e -> Error e
      end
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name "bank" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 512;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- counters: whole-write-set atomicity ---------- *)

let counters ?(slots = 8) ?(threads = 4) ?(ops = 8) ?(coalesce = true) () =
  let prepare ptm =
    let base =
      Ptm.atomic ptm (fun tx ->
          let b = Ptm.alloc tx slots in
          for i = 0 to slots - 1 do
            Ptm.write tx (b + i) 0
          done;
          b)
    in
    Ptm.root_set ptm root_slot base
  in
  let fresh ~seed:_ =
    let committed = ref 0 in
    let worker ~tid:_ ptm =
      let base = Ptm.root_get ptm root_slot in
      for _ = 1 to ops do
        Ptm.atomic ptm (fun tx ->
            let v = Ptm.read tx (base + 0) + 1 in
            for i = 0 to slots - 1 do
              Ptm.write tx (base + i) v
            done;
            Ptm.on_commit tx (fun () -> committed := max !committed v))
      done
    in
    let validate ~crashed:_ _sim ptm =
      let base = Ptm.root_get ptm root_slot in
      let values =
        Ptm.atomic ptm (fun tx -> List.init slots (fun i -> Ptm.read tx (base + i)))
      in
      let v0 = List.hd values in
      if List.exists (fun v -> v <> v0) values then
        Error
          (Printf.sprintf "counters: slots diverge after recovery: [%s]"
             (String.concat "; " (List.map string_of_int values)))
      else if v0 < !committed then
        Error (Printf.sprintf "counters: committed value %d lost (slots hold %d)" !committed v0)
      else if v0 > threads * ops then
        Error (Printf.sprintf "counters: value %d exceeds %d attempts" v0 (threads * ops))
      else Ok ()
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name "counters" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 512;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- btree: structural invariants + key-set bounds ---------- *)

let btree ?(threads = 4) ?(ops = 8) ?(coalesce = true) () =
  let value_of key = (key * 3) + 1 in
  let prepare ptm =
    let t = Pstructs.Bptree.create ptm in
    Ptm.root_set ptm root_slot (Pstructs.Bptree.descriptor t)
  in
  let fresh ~seed:_ =
    let committed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let attempted : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let worker ~tid ptm =
      let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm root_slot) in
      for i = 1 to ops do
        let key = ((tid + 1) * 1000) + i in
        Hashtbl.replace attempted key ();
        Ptm.atomic ptm (fun tx ->
            ignore (Pstructs.Bptree.insert tx t ~key ~value:(value_of key) : bool);
            Ptm.on_commit tx (fun () -> Hashtbl.replace committed key ()))
      done
    in
    let validate ~crashed:_ _sim ptm =
      let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm root_slot) in
      match Pstructs.Bptree.check_invariants t with
      | exception Failure e -> Error ("btree: structural violation: " ^ e)
      | () ->
        let alist = Pstructs.Bptree.to_alist t in
        let present : (int, int) Hashtbl.t = Hashtbl.create 64 in
        List.iter (fun (k, v) -> Hashtbl.replace present k v) alist;
        let bad = ref None in
        Hashtbl.iter
          (fun key () ->
            if !bad = None then
              match Hashtbl.find_opt present key with
              | None -> bad := Some (Printf.sprintf "btree: committed key %d missing" key)
              | Some v when v <> value_of key ->
                bad := Some (Printf.sprintf "btree: key %d has value %d, expected %d" key v
                               (value_of key))
              | Some _ -> ())
          committed;
        List.iter
          (fun (k, _) ->
            if !bad = None && not (Hashtbl.mem attempted k) then
              bad := Some (Printf.sprintf "btree: phantom key %d was never inserted" k))
          alist;
        (match !bad with None -> Ok () | Some e -> Error e)
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name "btree" ~coalesce;
    threads;
    heap_words = 1 lsl 17;
    log_words_per_thread = 2048;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- alloc churn: allocator live-block accounting ---------- *)

let alloc_churn ?(threads = 4) ?(ops = 10) ?(coalesce = true) () =
  let payload_sig addr j = (addr * 31) + j + 1000 in
  let prepare ptm =
    (* Nothing beyond the formatted region; a one-word marker block
       keeps root 0 pointing at valid data. *)
    let marker =
      Ptm.atomic ptm (fun tx ->
          let a = Ptm.alloc tx 1 in
          Ptm.write tx a 0x5eed;
          a)
    in
    Ptm.root_set ptm root_slot marker
  in
  let fresh ~seed =
    (* addr -> words for blocks whose allocation durably committed (as
       far as the shadow knows); [inflight_free] marks the one free per
       thread that may have committed without its hook running. *)
    let committed_live : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let inflight_free = Array.make threads None in
    let owned = Array.make threads [] in
    let worker ~tid ptm =
      let rng = Rng.create (seed + (104729 * tid)) in
      for _ = 1 to ops do
        let do_free = owned.(tid) <> [] && Rng.chance rng 0.3 in
        if do_free then begin
          match owned.(tid) with
          | [] -> ()
          | addr :: rest ->
            inflight_free.(tid) <- Some addr;
            Ptm.atomic ptm (fun tx ->
                Ptm.free tx addr;
                Ptm.on_commit tx (fun () -> Hashtbl.remove committed_live addr));
            owned.(tid) <- rest;
            inflight_free.(tid) <- None
        end
        else begin
          let words = 2 + Rng.int rng 6 in
          let addr =
            Ptm.atomic ptm (fun tx ->
                let a = Ptm.alloc tx words in
                for j = 0 to words - 1 do
                  Ptm.write tx (a + j) (payload_sig a j)
                done;
                Ptm.on_commit tx (fun () -> Hashtbl.replace committed_live a words);
                a)
          in
          owned.(tid) <- addr :: owned.(tid)
        end
      done
    in
    let validate ~crashed:_ _sim ptm =
      let maybe_freed addr = Array.exists (fun o -> o = Some addr) inflight_free in
      let bad = ref None in
      Hashtbl.iter
        (fun addr words ->
          if !bad = None && not (maybe_freed addr) then
            for j = 0 to words - 1 do
              let v = Ptm.atomic ptm (fun tx -> Ptm.read tx (addr + j)) in
              if !bad = None && v <> payload_sig addr j then
                bad :=
                  Some
                    (Printf.sprintf "alloc: committed block %d word %d holds %d, expected %d"
                       addr j v (payload_sig addr j))
            done)
        committed_live;
      match !bad with
      | Some e -> Error e
      | None ->
        let rep = Pmem.Check.run (Ptm.region ptm) in
        let shadow = Hashtbl.length committed_live in
        (* One in-flight operation per thread can commit durably without
           its shadow hook running, so allow that much slack. *)
        if rep.Pmem.Check.live_blocks < shadow - threads then
          Error
            (Printf.sprintf "alloc: checker sees %d live blocks, shadow has %d committed"
               rep.Pmem.Check.live_blocks shadow)
        else Ok ()
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name "alloc" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 512;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- kvserve: crash mid-batch ---------- *)

(* The KV service's coalesced write path: every thread commits batches
   of [batch] sets plus its batch-marker key in ONE transaction, so a
   crash anywhere inside the batch must leave either all of it or none
   of it — and the marker tells which.  Mirrors
   [Kvserve.Service]'s durable-prefix recovery contract at crash-point
   granularity. *)

let kv_value ~tid ~b ~k = Printf.sprintf "v%d.%d.%d" tid b k
let kv_key ~tid ~b ~k = Printf.sprintf "t%d.b%d.%d" tid b k

(* Markers are fixed-width so every update is a same-length in-place
   [Pblob.set] — one store, no realloc. *)
let kv_marker v = Printf.sprintf "%03d" v

let kv_batch ?(threads = 4) ?(ops = 5) ?(batch = 4) ?(coalesce = true) () =
  let prepare ptm =
    let store = Kvserve.Store.create ptm ~buckets:64 in
    Ptm.atomic ptm (fun tx ->
        for tid = 0 to threads - 1 do
          Kvserve.Store.set tx store ~key:(Printf.sprintf "m%d" tid) ~flags:0 (kv_marker 0)
        done)
  in
  let fresh ~seed =
    let committed = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let worker ~tid ptm =
      let rng = Rng.create (seed + (7919 * tid)) in
      let store = Kvserve.Store.attach ptm in
      for b = 1 to ops do
        (* Seeded per-batch jitter so crash candidates land at distinct
           phases of different threads' batches. *)
        let k_extra = Rng.int rng 2 in
        attempted.(tid) <- b;
        Ptm.atomic ptm (fun tx ->
            for k = 0 to batch - 1 + k_extra do
              Kvserve.Store.set tx store ~key:(kv_key ~tid ~b ~k) ~flags:tid
                (kv_value ~tid ~b ~k)
            done;
            Kvserve.Store.set tx store ~key:(Printf.sprintf "m%d" tid) ~flags:0 (kv_marker b);
            Ptm.on_commit tx (fun () -> committed.(tid) <- b))
      done
    in
    let validate ~crashed:_ _sim ptm =
      let store = Kvserve.Store.attach ptm in
      Ptm.atomic ptm (fun tx ->
          let err = ref None in
          let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
          for tid = 0 to threads - 1 do
            let rng = Rng.create (seed + (7919 * tid)) in
            match Kvserve.Store.get tx store (Printf.sprintf "m%d" tid) with
            | None -> fail "kv-batch: thread %d marker key missing" tid
            | Some (_, m) ->
              let d = int_of_string m in
              if d < committed.(tid) then
                fail "kv-batch: thread %d lost committed batch %d (marker %d)" tid
                  committed.(tid) d
              else if d > attempted.(tid) then
                fail "kv-batch: thread %d marker %d beyond last attempted batch %d" tid d
                  attempted.(tid);
              for b = 1 to ops do
                let k_extra = Rng.int rng 2 in
                for k = 0 to batch - 1 + k_extra do
                  let key = kv_key ~tid ~b ~k in
                  match (Kvserve.Store.get tx store key, b <= d) with
                  | None, true -> fail "kv-batch: durable batch %d lost key %s" b key
                  | Some (flags, v), true ->
                    if flags <> tid || not (String.equal v (kv_value ~tid ~b ~k)) then
                      fail "kv-batch: key %s holds %S flags %d" key v flags
                  | Some _, false ->
                    fail "kv-batch: key %s from batch %d survived past marker %d" key b d
                  | None, false -> ()
                done
              done
          done;
          match !err with None -> Ok () | Some e -> Error e)
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name "kv-batch" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- kvserve: crash between per-shard commits ---------- *)

(* Two stores stand in for two shards of the service sharing a crash
   domain.  Each logical operation commits to shard A, then shard B —
   two independent transactions — so a crash in the window between
   them must leave A exactly one operation ahead of B, never more,
   never the other order. *)

let kv_xshard ?(threads = 4) ?(ops = 6) ?(coalesce = true) () =
  let base_a = 0 and base_b = 2 in
  let prepare ptm =
    let a = Kvserve.Store.create ~root_base:base_a ptm ~buckets:32 in
    let b = Kvserve.Store.create ~root_base:base_b ptm ~buckets:32 in
    Ptm.atomic ptm (fun tx ->
        for tid = 0 to threads - 1 do
          Kvserve.Store.set tx a ~key:(Printf.sprintf "ma%d" tid) ~flags:0 (kv_marker 0);
          Kvserve.Store.set tx b ~key:(Printf.sprintf "mb%d" tid) ~flags:0 (kv_marker 0)
        done)
  in
  (* No per-seed randomness: the interleaving the engine explores comes
     entirely from the crash instant. *)
  let fresh ~seed:_ =
    let committed_a = Array.make threads 0 in
    let committed_b = Array.make threads 0 in
    let attempted = Array.make threads 0 in
    let worker ~tid ptm =
      let a = Kvserve.Store.attach ~root_base:base_a ptm in
      let b = Kvserve.Store.attach ~root_base:base_b ptm in
      for o = 1 to ops do
        attempted.(tid) <- o;
        Ptm.atomic ptm (fun tx ->
            Kvserve.Store.set tx a ~key:(Printf.sprintf "a.t%d.%d" tid o) ~flags:o
              (kv_value ~tid ~b:o ~k:0);
            Kvserve.Store.set tx a ~key:(Printf.sprintf "ma%d" tid) ~flags:0 (kv_marker o);
            Ptm.on_commit tx (fun () -> committed_a.(tid) <- o));
        Ptm.atomic ptm (fun tx ->
            Kvserve.Store.set tx b ~key:(Printf.sprintf "b.t%d.%d" tid o) ~flags:o
              (kv_value ~tid ~b:o ~k:1);
            Kvserve.Store.set tx b ~key:(Printf.sprintf "mb%d" tid) ~flags:0 (kv_marker o);
            Ptm.on_commit tx (fun () -> committed_b.(tid) <- o))
      done
    in
    let validate ~crashed:_ _sim ptm =
      let a = Kvserve.Store.attach ~root_base:base_a ptm in
      let b = Kvserve.Store.attach ~root_base:base_b ptm in
      Ptm.atomic ptm (fun tx ->
          let err = ref None in
          let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
          let marker store name tid =
            match Kvserve.Store.get tx store (Printf.sprintf "%s%d" name tid) with
            | None ->
              fail "kv-xshard: thread %d %s marker missing" tid name;
              0
            | Some (_, m) -> int_of_string m
          in
          let check_content store prefix tid upto =
            for o = 1 to ops do
              let key = Printf.sprintf "%s.t%d.%d" prefix tid o in
              match (Kvserve.Store.get tx store key, o <= upto) with
              | None, true -> fail "kv-xshard: durable op %d lost key %s" o key
              | Some _, false ->
                fail "kv-xshard: key %s survived past marker %d" key upto
              | _ -> ()
            done
          in
          for tid = 0 to threads - 1 do
            let ma = marker a "ma" tid in
            let mb = marker b "mb" tid in
            if ma < committed_a.(tid) then
              fail "kv-xshard: thread %d lost committed A op %d (marker %d)" tid
                committed_a.(tid) ma;
            if mb < committed_b.(tid) then
              fail "kv-xshard: thread %d lost committed B op %d (marker %d)" tid
                committed_b.(tid) mb;
            if ma > attempted.(tid) || mb > attempted.(tid) then
              fail "kv-xshard: thread %d markers (%d,%d) beyond attempted %d" tid ma mb
                attempted.(tid);
            (* A commits strictly before B within an op: B may trail A
               by at most the one in-flight op, and never lead it. *)
            if mb > ma || ma > mb + 1 then
              fail "kv-xshard: thread %d shard markers A=%d B=%d violate commit order" tid ma
                mb;
            check_content a "a" tid ma;
            check_content b "b" tid mb
          done;
          match !err with None -> Ok () | Some e -> Error e)
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name "kv-xshard" ~coalesce;
    threads;
    heap_words = 1 lsl 16;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

(* ---------- adapter over the paper's workloads ---------- *)

let of_spec ?(threads = 2) ?(ops = 50) ?(coalesce = true) (spec : Workloads.Driver.spec) =
  let prepare ptm = spec.Workloads.Driver.setup ptm in
  let fresh ~seed =
    let worker ~tid ptm =
      let rng = Rng.create (seed lxor (31 * (tid + 1))) in
      let op = spec.Workloads.Driver.make_op ptm ~tid ~rng in
      for _ = 1 to ops do
        op ()
      done
    in
    (* Structural oracle only: the workload's own state model stays
       opaque, but region metadata and recovery must stay clean. *)
    let validate ~crashed:_ _sim ptm =
      let rep = Pmem.Check.run (Ptm.region ptm) in
      if Pmem.Check.is_clean rep then Ok ()
      else Error (Format.asprintf "workload %s: %a" spec.Workloads.Driver.name Pmem.Check.pp rep)
    in
    { Engine.worker; validate }
  in
  {
    Engine.name = mode_name ("wl-" ^ spec.Workloads.Driver.name) ~coalesce;
    threads;
    heap_words = spec.Workloads.Driver.heap_words;
    log_words_per_thread = 4096;
    coalesce;
    prepare;
    fresh;
  }

let all () =
  [
    bank ();
    counters ();
    btree ();
    alloc_churn ();
    kv_batch ();
    kv_xshard ();
    (* The naive per-entry flush discipline is a distinct persistence
       schedule, so its crash points are swept separately. *)
    bank ~coalesce:false ();
    btree ~coalesce:false ();
  ]

let find name =
  match List.find_opt (fun s -> s.Engine.name = name) (all ()) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Scenarios.find: unknown scenario %S" name)
