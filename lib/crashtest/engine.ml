module Config = Memsim.Config
module Sim = Memsim.Sim
module Trace = Memsim.Trace
module Ptm = Pstm.Ptm
module Rng = Repro_util.Rng

(* A failed check, with an optional replayable counterexample dump
   (JSONL, written as dlin.jsonl next to the other telemetry). *)
type oracle_failure = { fail_reason : string; counterexample : string option }

type instance = {
  worker : tid:int -> Ptm.t -> unit;
  validate : crashed:bool -> Sim.t -> Ptm.t -> (unit, string) result;
  oracle : (crashed:bool -> Sim.t -> Ptm.t -> (unit, oracle_failure) result) option;
}

type scenario = {
  name : string;
  threads : int;
  heap_words : int;
  log_words_per_thread : int;
  coalesce : bool;
  prepare : Ptm.t -> unit;
  fresh : seed:int -> instance;
}

type failure = {
  crash_at : int;
  min_crash_at : int;
  reason : string;
  replay : string;
  telemetry_dir : string option;
}

type report = {
  scenario : string;
  model : string;
  algorithm : string;
  seed : int;
  final_time : int;
  candidates : int;
  tested : int;
  failures : failure list;
}

let ok r = r.failures = []

let pp_report ppf r =
  Format.fprintf ppf "crashtest %s/%s/%s seed=%d: %d/%d points (T=%dns)" r.scenario r.model
    r.algorithm r.seed r.tested r.candidates r.final_time;
  match r.failures with
  | [] -> Format.fprintf ppf " all pass"
  | fs ->
    List.iter
      (fun f ->
        Format.fprintf ppf "@.  FAIL at %dns (min %dns): %s@.  replay: %s" f.crash_at
          f.min_crash_at f.reason f.replay;
        match f.telemetry_dir with
        | Some dir -> Format.fprintf ppf "@.  telemetry: %s" dir
        | None -> ())
      fs

(* ---------- env knobs ---------- *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let exhaustive_from_env () =
  match Sys.getenv_opt "CRASHTEST_EXHAUSTIVE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* ---------- one execution ---------- *)

let make_config ~nvm_channels scenario model =
  Config.make ~nvm_channels ~heap_words:scenario.heap_words ~track_media:true model

(* Format the region once, run the population phase, and persist the
   result to an image file so every crash-point probe reloads identical
   initial state instead of re-running [prepare]. *)
let prepare_image cfg scenario ~algorithm =
  let sim = Sim.create cfg in
  let ptm =
    Ptm.create ~algorithm ~coalesce:scenario.coalesce ~max_threads:scenario.threads
      ~log_words_per_thread:scenario.log_words_per_thread (Sim.machine sim)
  in
  scenario.prepare ptm;
  Sim.persist_all sim;
  let path = Filename.temp_file "crashtest" ".img" in
  Sim.save_image sim path;
  path

(* Run the dlin oracle (when the scenario has one) before the shadow
   validator, so a durable-linearizability violation — which carries a
   replayable counterexample dump — takes precedence over the coarser
   invariant check's message. *)
let check_instance inst ~crashed sim ptm =
  let first = match inst.oracle with None -> Ok () | Some o -> o ~crashed sim ptm in
  match first with
  | Error _ as e -> e
  | Ok () -> (
    match inst.validate ~crashed sim ptm with
    | Ok () -> Ok ()
    | Error reason -> Error { fail_reason = reason; counterexample = None })

(* Run the scenario's workload from the prepared image, optionally
   crashing, and validate.  Returns the verdict, the final virtual time
   and the trace (when requested).  [inject] arms a deliberate ordering
   bug in the PTM runtime (mutation tests); the prepared image is always
   populated without injection. *)
let run_from_image ?(trace_capacity = 0) ?inject cfg scenario ~algorithm ~seed ~image
    ?crash_at () =
  let sim = Sim.load_image cfg image in
  let ptm = Ptm.recover ~algorithm ~coalesce:scenario.coalesce ?inject (Sim.machine sim) in
  let tr =
    if trace_capacity > 0 then Some (Sim.enable_trace ~capacity:trace_capacity sim) else None
  in
  let inst = scenario.fresh ~seed in
  for tid = 0 to scenario.threads - 1 do
    ignore (Sim.spawn sim (fun () -> inst.worker ~tid ptm))
  done;
  Sim.run ?crash_at sim;
  let final = Sim.now sim in
  let verdict =
    if not (Sim.crashed sim) then check_instance inst ~crashed:false sim ptm
    else begin
      let sim2 = Sim.reboot sim in
      let m2 = Sim.machine sim2 in
      (* Pre-recovery integrity: a crash must never corrupt region
         metadata, only leave in-flight logs / leaked arenas behind. *)
      let pre = Pmem.Check.run (Pmem.Region.attach m2) in
      if not (Pmem.Check.is_clean pre) then
        Error
          {
            fail_reason = Format.asprintf "pre-recovery corruption:@ %a" Pmem.Check.pp pre;
            counterexample = None;
          }
      else begin
        let ptm2 = Ptm.recover ~algorithm ~coalesce:scenario.coalesce ?inject m2 in
        let post = Pmem.Check.run (Ptm.region ptm2) in
        if not (Pmem.Check.is_clean post) then
          Error
            {
              fail_reason = Format.asprintf "post-recovery corruption:@ %a" Pmem.Check.pp post;
              counterexample = None;
            }
        else check_instance inst ~crashed:true sim2 ptm2
      end
    end
  in
  (verdict, final, tr)

(* ---------- failure telemetry ---------- *)

(* On an oracle failure, the minimal failing instant is re-run with the
   phase profiler and machine trace attached, and the artifacts are
   dumped next to the replay line.  The series sampler stays off: a
   monitor thread would shift the interleaving away from the probe that
   failed, while profiler + trace are purely observational. *)
let failure_telemetry_config =
  {
    Telemetry.default_config with
    Telemetry.sample_interval_ns = 0;
    machine_trace_capacity = 1 lsl 14;
  }

let dump_failure_telemetry ?inject cfg scenario ~model ~algorithm ~seed ~image ~crash_at =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crashtest-%s-%s-%s-s%d-t%d%s" scenario.name model.Config.model_name
         (Ptm.algorithm_name algorithm) seed crash_at
         (match inject with None -> "" | Some i -> "-" ^ Ptm.inject_name i))
  in
  let sim = Sim.load_image cfg image in
  let ptm = Ptm.recover ~algorithm ~coalesce:scenario.coalesce ?inject (Sim.machine sim) in
  let cap = Telemetry.attach ~config:failure_telemetry_config sim ptm in
  let inst = scenario.fresh ~seed in
  for tid = 0 to scenario.threads - 1 do
    ignore (Sim.spawn sim (fun () -> inst.worker ~tid ptm))
  done;
  Sim.run ~crash_at sim;
  let meta =
    {
      Telemetry.Export.workload = scenario.name;
      model = model.Config.model_name;
      algorithm = Ptm.algorithm_name algorithm;
      threads = scenario.threads;
      seed;
      duration_ns = crash_at;
    }
  in
  ignore (Telemetry.dump ~dir meta cap : string list);
  (* Profile the post-crash recovery on the rebooted machine too, so the
     dump also shows what log replay did. *)
  if Sim.crashed sim then begin
    let m2 = Sim.machine (Sim.reboot sim) in
    let profiler = Pstm.Profile.create m2 in
    ignore (Ptm.recover ~algorithm ~coalesce:scenario.coalesce ~profiler m2 : Ptm.t);
    let oc = open_out_bin (Filename.concat dir "recovery.jsonl") in
    output_string oc (Telemetry.Export.profile_jsonl meta profiler);
    close_out oc
  end;
  dir

(* ---------- exploration ---------- *)

let replay_command ?inject scenario_name model_name alg seed crash_at =
  Printf.sprintf "CRASHTEST_REPLAY='%s:%s:%s:%d:%d%s' dune build @crashtest" scenario_name
    model_name (Ptm.algorithm_name alg) seed crash_at
    (match inject with None -> "" | Some i -> ":" ^ Ptm.inject_name i)

(* Greedy shrink: repeatedly probe a few instants below the current
   minimum; stop when none of them fails or the budget runs out.
   Failure is not monotone in time, so this finds a small — not
   necessarily the global-minimum — failing instant. *)
let shrink ~probe ~budget t0 =
  let best = ref t0 in
  let spent = ref 0 in
  let improved = ref true in
  while !improved && !spent < budget do
    improved := false;
    let cur = !best in
    let tries =
      List.sort_uniq compare [ cur / 4; cur / 2; 3 * cur / 4; cur - 1 ]
      |> List.filter (fun c -> c > 0 && c < cur)
    in
    try
      List.iter
        (fun c ->
          if !spent >= budget then raise Exit;
          incr spent;
          match probe c with
          | Error _ ->
            best := c;
            improved := true;
            raise Exit
          | Ok () -> ())
        tries
    with Exit -> ()
  done;
  !best

let explore ?points ?seed ?exhaustive ?(shrink_budget = 24) ?(nvm_channels = 4) ?inject
    ~model ~algorithm scenario =
  let exhaustive =
    match exhaustive with Some b -> b | None -> exhaustive_from_env ()
  in
  let points = match points with Some p -> p | None -> getenv_int "CRASHTEST_POINTS" 64 in
  let seed = match seed with Some s -> s | None -> getenv_int "CRASHTEST_SEED" 1 in
  let cfg = make_config ~nvm_channels scenario model in
  let image = prepare_image cfg scenario ~algorithm in
  Fun.protect
    ~finally:(fun () -> try Sys.remove image with Sys_error _ -> ())
    (fun () ->
      (* Crash-free reference run, traced: yields the final time and
         the interesting instants, and sanity-checks the oracle.  The
         injected ordering bugs only weaken durability, never the
         cache-visible heap, so the reference must pass even under
         injection. *)
      let verdict, final_time, tr =
        run_from_image ~trace_capacity:(1 lsl 17) ?inject cfg scenario ~algorithm ~seed
          ~image ()
      in
      (match verdict with
      | Ok () -> ()
      | Error e ->
        failwith
          (Printf.sprintf "crashtest %s/%s: reference run violates the model (harness bug): %s"
             scenario.name model.Config.model_name e.fail_reason));
      let candidates =
        let traced = match tr with Some tr -> Trace.crash_points tr | None -> [] in
        let grid = List.init 64 (fun i -> (i + 1) * final_time / 65) in
        List.sort_uniq compare (traced @ grid)
        |> List.filter (fun t -> t > 0 && t <= final_time)
      in
      let chosen =
        if exhaustive || List.length candidates <= points then candidates
        else begin
          let arr = Array.of_list candidates in
          let rng = Rng.create (seed lxor 0x5ca1ab1e) in
          Rng.shuffle rng arr;
          Array.to_list (Array.sub arr 0 points) |> List.sort compare
        end
      in
      let probe t =
        let v, _, _ =
          run_from_image ?inject cfg scenario ~algorithm ~seed ~image ~crash_at:t ()
        in
        v
      in
      let tested = ref 0 in
      let failure = ref None in
      (try
         List.iter
           (fun t ->
             incr tested;
             match probe t with
             | Ok () -> ()
             | Error first_fail ->
               let min_t = shrink ~probe ~budget:shrink_budget t in
               let fail =
                 match probe min_t with Error f -> f | Ok () -> first_fail
               in
               let telemetry_dir =
                 try
                   Some
                     (dump_failure_telemetry ?inject cfg scenario ~model ~algorithm ~seed
                        ~image ~crash_at:min_t)
                 with Sys_error _ -> None
               in
               (* The dlin counterexample rides the same telemetry path
                  as the other failure artifacts: one JSONL next to the
                  replay line. *)
               (match (telemetry_dir, fail.counterexample) with
               | Some dir, Some jsonl -> (
                 try
                   let oc = open_out_bin (Filename.concat dir "dlin.jsonl") in
                   output_string oc jsonl;
                   close_out oc
                 with Sys_error _ -> ())
               | _ -> ());
               failure :=
                 Some
                   {
                     crash_at = t;
                     min_crash_at = min_t;
                     reason = fail.fail_reason;
                     replay =
                       replay_command ?inject scenario.name model.Config.model_name algorithm
                         seed min_t;
                     telemetry_dir;
                   };
               raise Exit)
           chosen
       with Exit -> ());
      {
        scenario = scenario.name;
        model = model.Config.model_name;
        algorithm = Ptm.algorithm_name algorithm;
        seed;
        final_time;
        candidates = List.length candidates;
        tested = !tested;
        failures = (match !failure with None -> [] | Some f -> [ f ]);
      })

let run_point ?(nvm_channels = 4) ?inject ~model ~algorithm ~seed ~crash_at scenario =
  let cfg = make_config ~nvm_channels scenario model in
  let image = prepare_image cfg scenario ~algorithm in
  Fun.protect
    ~finally:(fun () -> try Sys.remove image with Sys_error _ -> ())
    (fun () ->
      let v, _, _ =
        run_from_image ?inject cfg scenario ~algorithm ~seed ~image ~crash_at ()
      in
      Result.map_error (fun f -> f.fail_reason) v)

(* ---------- crash-during-recovery ---------- *)

let heap_snapshot m words = Array.init words (fun i -> m.Machine.raw_read i)

let recovery_convergence ?(nvm_channels = 4) ?budgets ~model ~algorithm ~seed ~crash_at
    scenario =
  let cfg = make_config ~nvm_channels scenario model in
  let image = prepare_image cfg scenario ~algorithm in
  Fun.protect
    ~finally:(fun () -> try Sys.remove image with Sys_error _ -> ())
    (fun () ->
      let sim = Sim.load_image cfg image in
      let ptm = Ptm.recover ~algorithm ~coalesce:scenario.coalesce (Sim.machine sim) in
      let inst = scenario.fresh ~seed in
      for tid = 0 to scenario.threads - 1 do
        ignore (Sim.spawn sim (fun () -> inst.worker ~tid ptm))
      done;
      Sim.run ~crash_at sim;
      if not (Sim.crashed sim) then Ok ()
      else begin
        (* Reference: uninterrupted recovery — count its persistent
           writes and keep the resulting heap image. *)
        let sim_a = Sim.reboot sim in
        let m_a = Sim.machine sim_a in
        let writes = ref 0 in
        let counting =
          {
            m_a with
            Machine.raw_write =
              (fun addr v ->
                incr writes;
                m_a.Machine.raw_write addr v);
          }
        in
        ignore (Ptm.recover ~algorithm ~coalesce:scenario.coalesce counting : Ptm.t);
        let heap_a = heap_snapshot m_a cfg.Config.heap_words in
        let total = !writes in
        let budgets =
          match budgets with
          | Some b -> List.filter (fun k -> k >= 0 && k < total) b
          | None ->
            if total = 0 then []
            else begin
              let rng = Rng.create (seed lxor 0x0c0ffee) in
              List.init (min 8 total) (fun _ -> Rng.int rng total) |> List.sort_uniq compare
            end
        in
        let check_budget k =
          (* A fresh reboot of the same crash, recovery interrupted
             after [k] persistent writes, then recovered for real. *)
          let sim_b = Sim.reboot sim in
          let m_b = Sim.machine sim_b in
          let left = ref k in
          let wrapped =
            {
              m_b with
              Machine.raw_write =
                (fun addr v ->
                  if !left = 0 then raise Machine.Crashed;
                  decr left;
                  m_b.Machine.raw_write addr v);
            }
          in
          (match Ptm.recover ~algorithm ~coalesce:scenario.coalesce wrapped with
          | (_ : Ptm.t) -> ()
          | exception Machine.Crashed -> ());
          let ptm_b = Ptm.recover ~algorithm ~coalesce:scenario.coalesce m_b in
          let heap_b = heap_snapshot m_b cfg.Config.heap_words in
          if heap_b <> heap_a then
            Error
              (Printf.sprintf
                 "recovery not idempotent: heap diverges after a crash %d/%d writes into \
                  recovery (crash_at=%d seed=%d)"
                 k total crash_at seed)
          else
            match check_instance inst ~crashed:true sim_b ptm_b with
            | Ok () -> Ok ()
            | Error e ->
              Error
                (Printf.sprintf "model violated after re-recovery (budget %d/%d): %s" k total
                   e.fail_reason)
        in
        List.fold_left
          (fun acc k -> match acc with Error _ -> acc | Ok () -> check_budget k)
          (Ok ()) budgets
      end)

(* ---------- FAMS: crash-testing the snapshot API ---------- *)

(* The msync subsystem rides the same explorer: prepared image, traced
   reference run, candidate instants, probe + greedy shrink, replayable
   failure line.  The differences are structural — a single mutator
   instead of a thread team, [Fams.recover] instead of [Ptm.recover],
   and the algorithm column is the granularity series ("fams-line" /
   "fams-page"). *)

type fams_instance = {
  f_worker : Sim.t -> Fams.t -> unit;  (** the single mutator *)
  f_validate : crashed:bool -> Sim.t -> Fams.t -> (unit, string) result;
  f_oracle : (crashed:bool -> Sim.t -> Fams.t -> (unit, oracle_failure) result) option;
}

type fams_scenario = {
  f_name : string;
  f_words : int;  (** working-area size *)
  f_prepare : Fams.t -> unit;  (** raw populate; the engine checkpoints after *)
  f_fresh : seed:int -> fams_instance;
}

let fams_algorithm_name granularity = "fams-" ^ Fams.granularity_name granularity

let fams_granularity_of_algorithm = function
  | "fams-line" -> Some Fams.Line
  | "fams-page" -> Some Fams.Page
  | _ -> None

let make_fams_config ~nvm_channels scenario model =
  Config.make ~nvm_channels
    ~heap_words:(Fams.required_heap_words ~words:scenario.f_words)
    ~track_media:true model

let prepare_fams_image cfg scenario ~granularity =
  let sim = Sim.create cfg in
  let fams = Fams.create ~granularity ~words:scenario.f_words sim in
  scenario.f_prepare fams;
  Fams.checkpoint_raw fams;
  Sim.persist_all sim;
  let path = Filename.temp_file "crashtest-fams" ".img" in
  Sim.save_image sim path;
  path

let check_fams_instance inst ~crashed sim fams =
  let first = match inst.f_oracle with None -> Ok () | Some o -> o ~crashed sim fams in
  match first with
  | Error _ as e -> e
  | Ok () -> (
    match inst.f_validate ~crashed sim fams with
    | Ok () -> Ok ()
    | Error reason -> Error { fail_reason = reason; counterexample = None })

let run_fams_from_image ?(trace_capacity = 0) ?inject cfg scenario ~seed ~image ?crash_at ()
    =
  let sim = Sim.load_image cfg image in
  let fams = Fams.recover ?inject sim in
  let tr =
    if trace_capacity > 0 then Some (Sim.enable_trace ~capacity:trace_capacity sim) else None
  in
  let inst = scenario.f_fresh ~seed in
  ignore (Sim.spawn sim (fun () -> inst.f_worker sim fams));
  Sim.run ?crash_at sim;
  let final = Sim.now sim in
  let verdict =
    if not (Sim.crashed sim) then check_fams_instance inst ~crashed:false sim fams
    else begin
      let sim2 = Sim.reboot sim in
      let m2 = Sim.machine sim2 in
      (* Pre-recovery integrity: region metadata must survive the crash
         even before the snapshot journal is replayed or discarded. *)
      let pre = Pmem.Check.run (Pmem.Region.attach m2) in
      if not (Pmem.Check.is_clean pre) then
        Error
          {
            fail_reason = Format.asprintf "pre-recovery corruption:@ %a" Pmem.Check.pp pre;
            counterexample = None;
          }
      else begin
        match Fams.recover ?inject sim2 with
        | exception Machine.Corrupt_image msg ->
          Error { fail_reason = "recovery rejected the image: " ^ msg; counterexample = None }
        | fams2 ->
          let post = Pmem.Check.run (Fams.region fams2) in
          if not (Pmem.Check.is_clean post) then
            Error
              {
                fail_reason =
                  Format.asprintf "post-recovery corruption:@ %a" Pmem.Check.pp post;
                counterexample = None;
              }
          else check_fams_instance inst ~crashed:true sim2 fams2
      end
    end
  in
  (verdict, final, tr)

(* Failure telemetry for a FAMS point: the phase profiler (sweep /
   publish / apply spans) plus the machine trace, dumped as
   profile.jsonl + trace.json next to the replay line.  [Telemetry
   .attach] is PTM-shaped, so the dump is assembled from the exporters
   directly. *)
let dump_fams_failure_telemetry ?inject cfg scenario ~model ~granularity ~seed ~image
    ~crash_at =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "crashtest-%s-%s-%s-s%d-t%d%s" scenario.f_name model.Config.model_name
         (fams_algorithm_name granularity) seed crash_at
         (match inject with None -> "" | Some i -> "-" ^ Fams.inject_name i))
  in
  let sim = Sim.load_image cfg image in
  let profiler =
    Pstm.Profile.create
      ~wpq_stall_probe:(fun tid -> Sim.wpq_stall_ns_of sim ~tid)
      (Sim.machine sim)
  in
  let fams = Fams.recover ?inject ~profiler sim in
  let tr = Sim.enable_trace ~capacity:(1 lsl 14) sim in
  let inst = scenario.f_fresh ~seed in
  ignore (Sim.spawn sim (fun () -> inst.f_worker sim fams));
  Sim.run ~crash_at sim;
  let meta =
    {
      Telemetry.Export.workload = scenario.f_name;
      model = model.Config.model_name;
      algorithm = fams_algorithm_name granularity;
      threads = 1;
      seed;
      duration_ns = crash_at;
    }
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let emit name body =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc body;
    close_out oc
  in
  emit "profile.jsonl" (Telemetry.Export.profile_jsonl meta profiler);
  emit "trace.json" (Telemetry.Export.chrome_trace ~machine_trace:tr meta profiler);
  dir

let fams_replay_command ?inject scenario_name model_name granularity seed crash_at =
  Printf.sprintf "CRASHTEST_REPLAY='%s:%s:%s:%d:%d%s' dune build @crashtest" scenario_name
    model_name
    (fams_algorithm_name granularity)
    seed crash_at
    (match inject with None -> "" | Some i -> ":" ^ Fams.inject_name i)

let explore_fams ?points ?seed ?exhaustive ?(shrink_budget = 24) ?(nvm_channels = 4) ?inject
    ~model ~granularity scenario =
  let exhaustive = match exhaustive with Some b -> b | None -> exhaustive_from_env () in
  let points = match points with Some p -> p | None -> getenv_int "CRASHTEST_POINTS" 64 in
  let seed = match seed with Some s -> s | None -> getenv_int "CRASHTEST_SEED" 1 in
  let cfg = make_fams_config ~nvm_channels scenario model in
  let image = prepare_fams_image cfg scenario ~granularity in
  Fun.protect
    ~finally:(fun () -> try Sys.remove image with Sys_error _ -> ())
    (fun () ->
      let verdict, final_time, tr =
        run_fams_from_image ~trace_capacity:(1 lsl 17) ?inject cfg scenario ~seed ~image ()
      in
      (match verdict with
      | Ok () -> ()
      | Error e ->
        failwith
          (Printf.sprintf "crashtest %s/%s: reference run violates the model (harness bug): %s"
             scenario.f_name model.Config.model_name e.fail_reason));
      let candidates =
        let traced = match tr with Some tr -> Trace.crash_points tr | None -> [] in
        (* WPQ drains happen inside the mutator's quiet intervals —
           fence waits, a coalesced clwb batch paying its issue slots,
           admission stalls — and the trace records no events there.
           Those intervals are exactly where unfenced write-backs lose
           races, so span every gap wider than a microsecond with
           evenly spaced interior probes. *)
        let drained =
          match tr with
          | None -> []
          | Some tr ->
            let service = cfg.Config.lat.Config.nvm_wpq_service_ns in
            let channels = max 1 cfg.Config.nvm_channels in
            let rec walk acc run = function
              | a :: (b :: _ as rest) ->
                let run = match a.Trace.kind with Trace.Clwb _ -> run + 1 | _ -> 0 in
                let t0 = a.Trace.at_ns and t1 = b.Trace.at_ns in
                let acc =
                  if t1 - t0 > 1024 then begin
                    let even = List.init 16 (fun k -> t0 + ((k + 1) * (t1 - t0) / 17)) in
                    (* A batch of [run] clwbs drains within about
                       run/channels service slots of its issue instant;
                       the loss window sits at the head of the gap, so
                       walk the completion boundaries densely. *)
                    let head =
                      if run = 0 then []
                      else
                        let slots = min (((run + channels - 1) / channels) + channels) 64 in
                        List.init slots (fun j -> t0 + ((j + 1) * service))
                    in
                    head @ even @ acc
                  end
                  else acc
                in
                walk acc run rest
              | _ -> acc
            in
            walk [] 0 (Trace.tail tr)
        in
        let grid = List.init 64 (fun i -> (i + 1) * final_time / 65) in
        let keep l =
          List.sort_uniq compare l |> List.filter (fun t -> t > 0 && t <= final_time)
        in
        (keep (traced @ drained @ grid), keep drained)
      in
      let all_candidates, drained = candidates in
      let candidates = all_candidates in
      let chosen =
        if exhaustive || List.length candidates <= points then candidates
        else begin
          (* Drain-window instants are a few hundred among tens of
             thousands of issue instants, but they are where ordering
             bugs bite: probe every one, and sample only the bulk. *)
          let rng = Rng.create (seed lxor 0x5ca1ab1e) in
          let arr = Array.of_list candidates in
          Rng.shuffle rng arr;
          let sampled = Array.to_list (Array.sub arr 0 (min points (Array.length arr))) in
          List.sort_uniq compare (drained @ sampled)
        end
      in
      let probe t =
        let v, _, _ = run_fams_from_image ?inject cfg scenario ~seed ~image ~crash_at:t () in
        v
      in
      let tested = ref 0 in
      let failure = ref None in
      (try
         List.iter
           (fun t ->
             incr tested;
             match probe t with
             | Ok () -> ()
             | Error first_fail ->
               let min_t = shrink ~probe ~budget:shrink_budget t in
               let fail = match probe min_t with Error f -> f | Ok () -> first_fail in
               let telemetry_dir =
                 try
                   Some
                     (dump_fams_failure_telemetry ?inject cfg scenario ~model ~granularity
                        ~seed ~image ~crash_at:min_t)
                 with Sys_error _ -> None
               in
               (match (telemetry_dir, fail.counterexample) with
               | Some dir, Some jsonl -> (
                 try
                   let oc = open_out_bin (Filename.concat dir "dlin.jsonl") in
                   output_string oc jsonl;
                   close_out oc
                 with Sys_error _ -> ())
               | _ -> ());
               failure :=
                 Some
                   {
                     crash_at = t;
                     min_crash_at = min_t;
                     reason = fail.fail_reason;
                     replay =
                       fams_replay_command ?inject scenario.f_name model.Config.model_name
                         granularity seed min_t;
                     telemetry_dir;
                   };
               raise Exit)
           chosen
       with Exit -> ());
      {
        scenario = scenario.f_name;
        model = model.Config.model_name;
        algorithm = fams_algorithm_name granularity;
        seed;
        final_time;
        candidates = List.length candidates;
        tested = !tested;
        failures = (match !failure with None -> [] | Some f -> [ f ]);
      })

let run_fams_point ?(nvm_channels = 4) ?inject ~model ~granularity ~seed ~crash_at scenario =
  let cfg = make_fams_config ~nvm_channels scenario model in
  let image = prepare_fams_image cfg scenario ~granularity in
  Fun.protect
    ~finally:(fun () -> try Sys.remove image with Sys_error _ -> ())
    (fun () ->
      let v, _, _ = run_fams_from_image ?inject cfg scenario ~seed ~image ~crash_at () in
      Result.map_error (fun f -> f.fail_reason) v)

(* ---------- replay parsing ---------- *)

let parse_replay spec =
  let parse scen model alg seed crash_at inject =
    let alg =
      match String.lowercase_ascii alg with
      | "redo" -> Some Ptm.Redo
      | "undo" -> Some Ptm.Undo
      | "htm" -> Some Ptm.Htm
      | "mod" -> Some Ptm.Mod
      | _ -> None
    in
    match (alg, int_of_string_opt seed, int_of_string_opt crash_at, inject) with
    | Some alg, Some seed, Some crash_at, None ->
      Some (scen, model, alg, seed, crash_at, None)
    | Some alg, Some seed, Some crash_at, Some name -> (
      (* A present-but-unknown inject name must not silently replay the
         un-mutated runtime. *)
      match Ptm.inject_of_name name with
      | Some i -> Some (scen, model, alg, seed, crash_at, Some i)
      | None -> None)
    | _ -> None
  in
  match String.split_on_char ':' (String.trim spec) with
  | [ scen; model; alg; seed; crash_at ] -> parse scen model alg seed crash_at None
  | [ scen; model; alg; seed; crash_at; inject ] ->
    parse scen model alg seed crash_at (Some inject)
  | _ -> None

(* FAMS replay lines use the granularity series as the algorithm column
   and FAMS inject names; everything else matches [parse_replay]. *)
let parse_fams_replay spec =
  let parse scen model alg seed crash_at inject =
    match
      (fams_granularity_of_algorithm alg, int_of_string_opt seed, int_of_string_opt crash_at)
    with
    | Some g, Some seed, Some crash_at -> (
      match inject with
      | None -> Some (scen, model, g, seed, crash_at, None)
      | Some name -> (
        match Fams.inject_of_name name with
        | Some i -> Some (scen, model, g, seed, crash_at, Some i)
        | None -> None))
    | _ -> None
  in
  match String.split_on_char ':' (String.trim spec) with
  | [ scen; model; alg; seed; crash_at ] -> parse scen model alg seed crash_at None
  | [ scen; model; alg; seed; crash_at; inject ] ->
    parse scen model alg seed crash_at (Some inject)
  | _ -> None
