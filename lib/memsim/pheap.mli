(** Demand-paged heap image.

    The persistent heap and its media image as arrays of page-sized
    chunks that all share one immutable zero page until first written.
    Creating an image is O(pages) pointer stores instead of O(words)
    zeroing, and copies/blits/serialization walk only touched chunks —
    the 32 MB-per-cell zeroing tax the ROADMAP's speedup item left on
    the table.  Reads cost two unsafe loads; writes add one physical
    equality test.  No operation ever mutates the shared zero page. *)

type t

val chunk_words : int
(** Chunk size in words = {!Machine.Layout.words_per_page}; a power of
    two, and a multiple of the cache-line size, so line-aligned
    transfers never straddle chunks. *)

val create : words:int -> t
(** All-zero image of [words] words; allocates no payload. *)

val words : t -> int

val get : t -> int -> int
(** Unchecked read (callers bound-check against [words] first). *)

val set : t -> int -> int -> unit
(** Unchecked write; materializes the chunk on first touch. *)

val touched : t -> int
(** Number of materialized chunks. *)

val copy_range : src:t -> dst:t -> int -> int -> unit
(** [copy_range ~src ~dst base len] copies [len] words at [base]
    (same offsets in both images), zero-aware on both sides. *)

val assign : src:t -> dst:t -> unit
(** [dst]'s content becomes a deep copy of [src]'s; untouched source
    chunks return the destination chunk to the shared zero page.  The
    two images share no mutable state afterwards. *)

val copy : t -> t
(** Fresh image with the same content; O(touched). *)

val fill_zero : t -> unit
(** Reset every chunk to the shared zero page. *)

val blit_to_array : t -> int -> int array -> int -> int -> unit
(** [blit_to_array t src_pos dst dst_pos len]: image -> flat array. *)

val blit_of_array : t -> int -> int array -> int -> int -> unit
(** [blit_of_array t dst_pos src src_pos len]: flat array -> image. *)

val iter_touched : t -> (int -> int array -> unit) -> unit
(** Visit (chunk index, chunk payload) for each materialized chunk in
    address order.  The payload is live — do not mutate. *)

val of_touched : words:int -> (int * int array) list -> t
(** Rebuild an image from serialized (chunk index, payload) pairs;
    payloads are copied.  @raise Invalid_argument on out-of-range
    indices or mis-sized chunks. *)

val to_flat : t -> int array
(** Dense copy of the whole image — test/debug only. *)
