module Layout = Machine.Layout

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable clwbs : int;
  mutable sfences : int;
  mutable fence_wait_ns : int;
  mutable pdram_page_hits : int;
  mutable pdram_page_misses : int;
}

type t = {
  cfg : Config.t;
  sched : Sched.t;
  heap : Pheap.t;
  media : Pheap.t option; (* persisted image; None when not tracked *)
  l3 : Cache.t;
  wpq_nvm : Server.t array; (* one per interleaved channel; line mod N *)
  wpq_dram : Server.t;
  rd_nvm : Server.t array;
  rd_dram : Server.t;
  page_cache : Repro_util.Lru.t option; (* PDRAM directory *)
  mutable log_ranges : (int * int) list; (* [lo, hi) word ranges of PTM logs *)
  (* Sorted, merged interval index over [log_ranges] for the hot-path
     membership test (rebuilt on [mark_log_range], rare). *)
  mutable log_lo : int array;
  mutable log_hi : int array;
  mutable log_n : int;
  mutable fence_target : int array; (* per-tid max completion of own WPQ entries *)
  mutable fence_wait_by_tid : int array; (* per-tid share of fence_wait_ns *)
  mutable wpq_stall_by_tid : int array; (* per-tid WPQ backpressure stalls *)
  mutable trace : Trace.t option;
  (* Lines whose content is travelling towards the NVM controller:
     captured at clwb/eviction issue, power-safe only once the WPQ
     entry is serviced.  A crash before then loses them — the loss
     window sfence exists to close. *)
  pending : Pending.t;
  (* Optional dirty-tracking window over the heap (page table + line
     bitmap), fed from [store]/[publish] — the FAMS substrate.  [None]
     costs one branch per store. *)
  mutable dirty : Dirty.t option;
  c : counters;
}

let create (cfg : Config.t) =
  {
    cfg;
    sched = Sched.create ();
    heap = Pheap.create ~words:cfg.heap_words;
    media = (if cfg.track_media then Some (Pheap.create ~words:cfg.heap_words) else None);
    l3 = Cache.create ~bytes:cfg.l3_bytes ~ways:cfg.l3_ways ();
    wpq_nvm =
      Array.init cfg.nvm_channels (fun _ ->
          Server.create ~service_ns:cfg.lat.nvm_wpq_service_ns
            ~capacity:(max 1 (cfg.wpq_capacity / cfg.nvm_channels)));
    wpq_dram =
      Server.create ~service_ns:cfg.lat.dram_wpq_service_ns ~capacity:cfg.dram_wpq_capacity;
    rd_nvm =
      Array.init cfg.nvm_channels (fun _ ->
          Server.create ~service_ns:cfg.lat.nvm_read_service_ns ~capacity:0);
    rd_dram = Server.create ~service_ns:cfg.lat.dram_read_service_ns ~capacity:0;
    page_cache =
      (if cfg.model.pdram_cache then
         Some (Repro_util.Lru.create ~capacity:(max 1 (cfg.pdram_cache_bytes / 4096)))
       else None);
    log_ranges = [];
    log_lo = [||];
    log_hi = [||];
    log_n = 0;
    fence_target = Array.make 64 0;
    fence_wait_by_tid = Array.make 64 0;
    wpq_stall_by_tid = Array.make 64 0;
    trace = None;
    pending = Pending.create ~stride:Layout.words_per_line ();
    dirty = None;
    c =
      {
        loads = 0;
        stores = 0;
        clwbs = 0;
        sfences = 0;
        fence_wait_ns = 0;
        pdram_page_hits = 0;
        pdram_page_misses = 0;
      };
  }

let config t = t.cfg

let enable_trace ?capacity t =
  let tr = Trace.create ?capacity () in
  t.trace <- Some tr;
  tr

(* Call sites must only build the [Trace.event] under a [Some] match on
   [t.trace] — constructing the variant before checking would put one
   allocation on every load/store even with tracing off. *)
let trace_record t tr kind = Trace.record tr ~at_ns:(Sched.now t.sched) ~tid:(Sched.tid t.sched) kind

(* Rebuild the sorted interval index: sort by [lo] and merge overlaps,
   so membership in the union reduces to one binary search. *)
let rebuild_log_index t =
  let n = List.length t.log_ranges in
  let lo = Array.make (max 1 n) 0 in
  let hi = Array.make (max 1 n) 0 in
  let k = ref 0 in
  List.iter
    (fun (l, h) ->
      if !k > 0 && l <= hi.(!k - 1) then begin
        if h > hi.(!k - 1) then hi.(!k - 1) <- h
      end
      else begin
        lo.(!k) <- l;
        hi.(!k) <- h;
        incr k
      end)
    (List.sort compare t.log_ranges);
  t.log_lo <- lo;
  t.log_hi <- hi;
  t.log_n <- !k

let in_log_range t addr =
  (* Greatest [lo <= addr]; ranges are merged, so it alone can cover. *)
  let a = ref 0 in
  let b = ref t.log_n in
  while !b > !a do
    let m = (!a + !b) / 2 in
    if Array.unsafe_get t.log_lo m <= addr then a := m + 1 else b := m
  done;
  !a > 0 && addr < Array.unsafe_get t.log_hi (!a - 1)

(* Media backing a word under the current placement model. *)
let media_of t addr : Config.media =
  match t.cfg.model.data_media with
  | Config.Dram -> Config.Dram
  | Config.Nvm -> if t.cfg.model.log_in_dram && in_log_range t addr then Config.Dram else Config.Nvm

(* Persist one line's current heap content into the media image. *)
let line_to_media t line =
  match t.media with
  | None -> ()
  | Some media ->
    let base = Layout.addr_of_line line in
    let len = min Layout.words_per_line (t.cfg.heap_words - base) in
    Pheap.copy_range ~src:t.heap ~dst:media base len

(* ADR persists a line only once the controller has serviced its WPQ
   entry; until then the content rides in [pending].  eADR-family
   domains and battery-backed DRAM paths stay eager: their reserve
   power covers in-flight traffic, so there is no loss window.  Only
   timed execution defers — untimed setup/recovery phases run outside
   the clock (crashes cannot be armed there), and deferring against a
   frozen [Sched.now] would just accumulate unsettleable entries. *)
let adr_defers t =
  t.media <> None
  && Sched.running t.sched
  &&
  match t.cfg.model.persistence with
  | Config.Adr _ -> true
  | Config.Eadr | Config.Transient_cache -> false

let defer_line t ~now line ~apply_at =
  match t.media with
  | None -> ()
  | Some media ->
    let base = Layout.addr_of_line line in
    let len = min Layout.words_per_line (t.cfg.heap_words - base) in
    Pending.add t.pending ~apply_at ~line ~src:t.heap ~base ~len;
    if Pending.count t.pending > 4096 then
      (* Settle entries already past the current virtual time: a crash
         can only be armed at some instant > [now] (this thread is
         still executing), so their loss window is closed. *)
      Pending.settle t.pending ~now media

(* Interleaving: consecutive cache lines rotate across channels. *)
let nvm_wpq_of t line = t.wpq_nvm.(line mod Array.length t.wpq_nvm)
let nvm_rd_of t line = t.rd_nvm.(line mod Array.length t.rd_nvm)

let ensure_fence_slot t tid =
  if tid >= Array.length t.fence_target then begin
    let grow src =
      let bigger = Array.make (2 * (tid + 1)) 0 in
      Array.blit src 0 bigger 0 (Array.length src);
      bigger
    in
    t.fence_target <- grow t.fence_target;
    t.fence_wait_by_tid <- grow t.fence_wait_by_tid;
    t.wpq_stall_by_tid <- grow t.wpq_stall_by_tid
  end

(* Attribute a WPQ backpressure stall to the thread that paid it.  The
   machine-wide total ([Server.stall_ns]) also counts bulk PDRAM page
   drains that are not charged to any thread, so the per-tid sum is a
   lower bound on the total. *)
let note_wpq_stall t tid stall =
  if stall > 0 then begin
    ensure_fence_slot t tid;
    t.wpq_stall_by_tid.(tid) <- t.wpq_stall_by_tid.(tid) + stall
  end

(* PDRAM page-cache lookup for an NVM word.  Returns `Dram_hit when the
   page is resident; on a miss, installs the page, charges fetch cost
   and possible dirty-page write-back bandwidth. *)
let pdram_access t ~now ~page ~write =
  match t.page_cache with
  | None -> `Not_pdram
  | Some pc -> (
    match Repro_util.Lru.touch pc page ~dirty:write with
    | `Hit ->
      t.c.pdram_page_hits <- t.c.pdram_page_hits + 1;
      `Dram_hit
    | `Miss evicted ->
      t.c.pdram_page_misses <- t.c.pdram_page_misses + 1;
      (* Dirty victim page drains to NVM: bulk WPQ occupancy, async. *)
      (match evicted with
      | Some { dirty = true; key = victim_page } ->
        let lines = Layout.words_per_page / Layout.words_per_line in
        let first_line = victim_page * lines in
        for l = 0 to lines - 1 do
          Server.enqueue_fast (nvm_wpq_of t (first_line + l)) ~now
        done
      | Some { dirty = false; _ } | None -> ());
      `Dram_miss)

(* Write-back of an evicted dirty line: content is in flight towards
   the controller; bandwidth charged on the backing channel; issuing
   thread stalls only on WPQ backpressure.  On the NVM path under ADR
   the media image is updated at the entry's service time — eviction
   write-backs are not tracked by fence targets, exactly as x86 dirty
   evictions are not ordered by sfence. *)
let writeback_line t ~now line =
  let addr = Layout.addr_of_line line in
  let stall =
    match media_of t addr with
    | Config.Dram ->
      line_to_media t line;
      Server.enqueue_fast t.wpq_dram ~now;
      Server.last_ready t.wpq_dram - now
    | Config.Nvm ->
      if t.cfg.model.pdram_cache then begin
        (* Line lands in the DRAM page cache; page marked dirty. *)
        line_to_media t line;
        let page = Layout.page_of_addr addr in
        (match pdram_access t ~now ~page ~write:true with
        | `Dram_hit | `Not_pdram -> ()
        | `Dram_miss -> ());
        Server.enqueue_fast t.wpq_dram ~now;
        Server.last_ready t.wpq_dram - now
      end
      else begin
        let server = nvm_wpq_of t line in
        Server.enqueue_fast server ~now;
        if adr_defers t then
          defer_line t ~now line ~apply_at:(Server.last_completion server)
        else line_to_media t line;
        Server.last_ready server - now
      end
  in
  note_wpq_stall t (Sched.tid t.sched) stall;
  stall

(* Memory access latency below the L3 for a miss on [addr]. *)
let miss_latency t ~now ~addr ~write =
  let lat = t.cfg.lat in
  match media_of t addr with
  | Config.Dram ->
    let done_at = Server.acquire_sync t.rd_dram ~now ~latency_ns:lat.dram_load_ns in
    ignore write;
    done_at - now
  | Config.Nvm -> (
    let page = Layout.page_of_addr addr in
    match pdram_access t ~now ~page ~write with
    | `Dram_hit ->
      let done_at = Server.acquire_sync t.rd_dram ~now ~latency_ns:lat.dram_load_ns in
      done_at - now
    | `Dram_miss ->
      let done_at =
        Server.acquire_sync
          (nvm_rd_of t (Layout.line_of_addr addr))
          ~now
          ~latency_ns:(lat.nvm_load_ns + lat.page_fetch_ns)
      in
      done_at - now
    | `Not_pdram ->
      let done_at =
        Server.acquire_sync (nvm_rd_of t (Layout.line_of_addr addr)) ~now
          ~latency_ns:lat.nvm_load_ns
      in
      done_at - now)

let[@inline] check_addr t addr =
  if addr < 0 || addr >= t.cfg.heap_words then
    invalid_arg (Printf.sprintf "Sim: heap address %d out of bounds" addr)

(* [addr] already validated by the caller. *)
let access_unchecked t ~addr ~write =
  let now = Sched.now t.sched in
  let line = Layout.line_of_addr addr in
  let r = Cache.access_fast t.l3 ~line ~write in
  let cost =
    if r = Cache.hit then t.cfg.lat.cache_hit_ns
    else begin
      let stall = if r >= 0 then writeback_line t ~now r else 0 in
      stall + miss_latency t ~now:(now + stall) ~addr ~write
    end
  in
  Sched.wait t.sched cost

let load t addr =
  check_addr t addr;
  t.c.loads <- t.c.loads + 1;
  (match t.trace with None -> () | Some tr -> trace_record t tr (Trace.Load addr));
  access_unchecked t ~addr ~write:false;
  Pheap.get t.heap addr

let store t addr v =
  check_addr t addr;
  t.c.stores <- t.c.stores + 1;
  (match t.trace with None -> () | Some tr -> trace_record t tr (Trace.Store addr));
  (* Architectural value changes at issue; latency paid after. *)
  Pheap.set t.heap addr v;
  (match t.dirty with None -> () | Some d -> Dirty.note d addr);
  access_unchecked t ~addr ~write:true

(* One write-back's controller-side work, shared by [clwb] and
   [clwb_many]: hand the line to its WPQ if it is dirty in L3, account
   deferred-media application and the per-thread fence target, and
   return the queue-admission stall paid at [now]. *)
let clwb_issue t ~now ~tid addr =
  let line = Layout.line_of_addr addr in
  if Cache.clean t.l3 ~line then begin
    let nvm_path =
      match media_of t addr with
      | Config.Dram -> false
      | Config.Nvm -> not t.cfg.model.pdram_cache
    in
    let server = if nvm_path then nvm_wpq_of t line else t.wpq_dram in
    Server.enqueue_fast server ~now;
    let completion = Server.last_completion server in
    if nvm_path && adr_defers t then defer_line t ~now line ~apply_at:completion
    else line_to_media t line;
    if completion > t.fence_target.(tid) then t.fence_target.(tid) <- completion;
    Server.last_ready server - now
  end
  else 0

let clwb t addr =
  t.c.clwbs <- t.c.clwbs + 1;
  (match t.trace with None -> () | Some tr -> trace_record t tr (Trace.Clwb addr));
  let now = Sched.now t.sched in
  let tid = Sched.tid t.sched in
  ensure_fence_slot t tid;
  let stall = clwb_issue t ~now ~tid addr in
  note_wpq_stall t tid stall;
  Sched.wait t.sched (stall + t.cfg.lat.clwb_ns)

(* Coalesced sweep: all [n] write-backs are handed to their controllers
   at the same issue instant, so their WPQ drains overlap instead of
   each waiting out the previous clwb's issue latency.  The thread still
   pays every issue slot and every admission stall. *)
let clwb_many t addrs n =
  if n > 0 then begin
    let now = Sched.now t.sched in
    let tid = Sched.tid t.sched in
    ensure_fence_slot t tid;
    let stalls = ref 0 in
    for i = 0 to n - 1 do
      let addr = addrs.(i) in
      t.c.clwbs <- t.c.clwbs + 1;
      (match t.trace with None -> () | Some tr -> trace_record t tr (Trace.Clwb addr));
      stalls := !stalls + clwb_issue t ~now ~tid addr
    done;
    note_wpq_stall t tid !stalls;
    Sched.wait t.sched (!stalls + (n * t.cfg.lat.clwb_ns))
  end

let sfence t =
  t.c.sfences <- t.c.sfences + 1;
  (match t.trace with None -> () | Some tr -> trace_record t tr Trace.Sfence);
  let now = Sched.now t.sched in
  let tid = Sched.tid t.sched in
  ensure_fence_slot t tid;
  let target = t.fence_target.(tid) in
  if target > now then begin
    t.c.fence_wait_ns <- t.c.fence_wait_ns + (target - now);
    t.fence_wait_by_tid.(tid) <- t.fence_wait_by_tid.(tid) + (target - now)
  end;
  Sched.wait_until t.sched target;
  Sched.wait t.sched t.cfg.lat.sfence_ns

let spawn t f = Sched.spawn t.sched f

let run ?crash_at t =
  Sched.run ?crash_at t.sched;
  if Sched.crashed t.sched then
    match t.trace with
    | None -> ()
    | Some tr -> Trace.record tr ~at_ns:(Sched.now t.sched) ~tid:0 Trace.Crash

let now t = Sched.now t.sched

let crashed t = Sched.crashed t.sched

(* Arm dirty tracking over [lo, hi): subsequent [store]/[publish]
   writes inside the window mark their line and page.  Untimed
   [raw_write]s are never tracked (recovery must not re-dirty the
   window it restores).  Replaces any previous tracker; a [reboot]ed
   machine starts untracked. *)
let track_dirty t ~lo ~hi =
  if lo < 0 || hi > t.cfg.heap_words || hi <= lo then invalid_arg "Sim.track_dirty: bad window";
  let d = Dirty.create ~lo ~hi in
  t.dirty <- Some d;
  d

let dirty_tracker t = t.dirty

let fence_wait_ns_of t ~tid =
  if tid >= 0 && tid < Array.length t.fence_wait_by_tid then t.fence_wait_by_tid.(tid) else 0

let wpq_stall_ns_of t ~tid =
  if tid >= 0 && tid < Array.length t.wpq_stall_by_tid then t.wpq_stall_by_tid.(tid) else 0

(* Forget all timing state accumulated by an untimed setup phase —
   queue depths, fence targets and counters — while keeping memory
   contents and cache residency (a warm start).  Must be called before
   the first [spawn]/[run], never during one. *)
let reset_timing t =
  (* Settle deferred media writes first: server clocks restart below,
     so stale future [apply_at] stamps must not survive the epoch. *)
  (match t.media with
  | Some media -> Pending.apply ~cutoff:max_int t.pending media
  | None -> ());
  Pending.clear t.pending;
  Array.iter Server.reset t.wpq_nvm;
  Server.reset t.wpq_dram;
  Array.iter Server.reset t.rd_nvm;
  Server.reset t.rd_dram;
  Array.fill t.fence_target 0 (Array.length t.fence_target) 0;
  Array.fill t.fence_wait_by_tid 0 (Array.length t.fence_wait_by_tid) 0;
  Array.fill t.wpq_stall_by_tid 0 (Array.length t.wpq_stall_by_tid) 0;
  Cache.reset_stats t.l3;
  t.c.loads <- 0;
  t.c.stores <- 0;
  t.c.clwbs <- 0;
  t.c.sfences <- 0;
  t.c.fence_wait_ns <- 0;
  t.c.pdram_page_hits <- 0;
  t.c.pdram_page_misses <- 0

let persist_all t =
  match t.media with
  | None -> ()
  | Some media ->
    Pending.clear t.pending;
    Pheap.assign ~src:t.heap ~dst:media

(* Apply the durability domain's survival rule after a power failure
   (or a clean shutdown, which is strictly weaker than eADR flush). *)
let surviving_media t =
  match t.media with
  | None -> invalid_arg "Sim.reboot: track_media is off"
  | Some media ->
    let image = Pheap.copy media in
    (* Whether heap words persist at all (battery-backed DRAM log pages
       count as persistent; the DRAM-ramdisk baseline does not). *)
    let persistent =
      match t.cfg.model.data_media with Config.Nvm -> true | Config.Dram -> false
    in
    (match t.cfg.model.persistence with
    | Config.Adr _ ->
      (* Deferred WPQ traffic: only entries the controller serviced
         strictly before the power failed reach the image.  Leaves
         [t.pending] untouched so reboot can be replayed. *)
      let cutoff =
        if Sched.crashed t.sched then
          match Sched.time_limit t.sched with
          | Some c -> c
          | None -> Sched.now t.sched
        else max_int
      in
      Pending.apply ~cutoff t.pending image
    | Config.Eadr | Config.Transient_cache ->
      (* Reserve power flushes resident dirty lines (eADR), or the
         cache arrays themselves ride out the failure and drain lazily
         (transiently persistent cache) — same survival rule, different
         energy accounting (see [Debt.reserve_energy_nj]). *)
      List.iter
        (fun line ->
          let base = Layout.addr_of_line line in
          if base < t.cfg.heap_words && persistent then begin
            let len = min Layout.words_per_line (t.cfg.heap_words - base) in
            Pheap.copy_range ~src:t.heap ~dst:image base len
          end)
        (Cache.dirty_lines t.l3));
    (* Full PDRAM: the battery-backed DRAM cache covers everything.
       Memory Mode has the same cache but no battery — and worse, its
       encryption key is lost on reboot, so nothing survives. *)
    if t.cfg.model.pdram_cache then begin
      if t.cfg.model.battery then Pheap.assign ~src:t.heap ~dst:image
      else Pheap.fill_zero image
    end;
    (* Non-persistent DRAM data: contents reset on reboot. *)
    if t.cfg.model.data_media = Config.Dram then Pheap.fill_zero image;
    image

(* Sparse image format: only touched chunks are written, so crash
   images of mostly-cold heaps stay small and fast.  Touched pages
   round-trip byte-identically (untouched pages are all-zero by
   construction on both sides). *)
let image_magic = 0x50444D53 (* "PDMS" *)

let save_image t path =
  let image = surviving_media t in
  let pairs = ref [] in
  Pheap.iter_touched image (fun ci c -> pairs := (ci, c) :: !pairs);
  let pairs = List.rev !pairs in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_binary_int oc image_magic;
      output_binary_int oc (Pheap.words image);
      output_binary_int oc Pheap.chunk_words;
      output_binary_int oc (List.length pairs);
      (* Marshal the payload; the header guards against size/format
         mismatches across runs. *)
      Marshal.to_channel oc pairs [])

let load_image cfg path =
  let ic = open_in_bin path in
  let corrupt msg =
    raise
      (Machine.Corrupt_image (Printf.sprintf "Sim.load_image: %s: %s (offset %d)" path msg (pos_in ic)))
  in
  let image =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* A short read anywhere in the header or payload means the
           image was torn mid-write; report it as corruption (with the
           failing offset), never as a bare [End_of_file]. *)
        match
          let magic = input_binary_int ic in
          if magic <> image_magic then
            corrupt (Printf.sprintf "bad magic %#x, expected %#x" magic image_magic);
          let words = input_binary_int ic in
          if words <> cfg.Config.heap_words then
            corrupt (Printf.sprintf "image has %d words, config expects %d" words
                       cfg.Config.heap_words);
          let chunk_words = input_binary_int ic in
          if chunk_words <> Pheap.chunk_words then
            corrupt (Printf.sprintf "image chunk size %d, expected %d" chunk_words
                       Pheap.chunk_words);
          let promised = input_binary_int ic in
          (promised, (Marshal.from_channel ic : (int * int array) list))
        with
        | promised, pairs ->
          if List.length pairs <> promised then
            corrupt (Printf.sprintf "payload holds %d chunks, header promised %d"
                       (List.length pairs) promised);
          (try Pheap.of_touched ~words:cfg.Config.heap_words pairs
           with Invalid_argument msg -> corrupt ("malformed chunk: " ^ msg))
        | exception End_of_file -> corrupt "truncated image"
        | exception Failure msg -> corrupt ("unreadable payload: " ^ msg))
  in
  let fresh = create cfg in
  Pheap.assign ~src:image ~dst:fresh.heap;
  (match fresh.media with
  | Some media -> Pheap.assign ~src:image ~dst:media
  | None -> ());
  fresh

let reboot t =
  let image = surviving_media t in
  let fresh = create t.cfg in
  Pheap.assign ~src:image ~dst:fresh.heap;
  (match fresh.media with
  | Some media -> Pheap.assign ~src:image ~dst:media
  | None -> ());
  fresh.log_ranges <- t.log_ranges;
  rebuild_log_index fresh;
  fresh

(* HTM commit: one indivisible event.  Values land in the heap and
   their lines become (dirty) cache-resident, exactly as a committing
   Intel TSX transaction turns speculative L1 lines into ordinary dirty
   lines.  Timing: a flat commit cost plus a small per-line charge;
   capacity evictions bill the usual write-back paths. *)
let publish t addrs values n =
  (match t.trace with None -> () | Some tr -> trace_record t tr (Trace.Publish n));
  let now = Sched.now t.sched in
  let lines = ref 0 in
  for i = 0 to n - 1 do
    let addr = addrs.(i) in
    check_addr t addr;
    Pheap.set t.heap addr values.(i);
    (match t.dirty with None -> () | Some d -> Dirty.note d addr);
    t.c.stores <- t.c.stores + 1;
    let line = Layout.line_of_addr addr in
    let r = Cache.access_fast t.l3 ~line ~write:true in
    if r <> Cache.hit then begin
      incr lines;
      if r >= 0 then ignore (writeback_line t ~now r)
    end
  done;
  (* HTM-commit domain: the controller hardens the write set as one
     unit at retirement, so each distinct line lands in the media image
     before this call returns — a crash at any later instant keeps the
     whole commit.  Stale in-flight WPQ entries for the same lines are
     dropped (the hardened content supersedes whatever an earlier
     eviction captured).  The thread pays one NVM drain slot per line. *)
  let touched = Hashtbl.create 16 in
  if t.cfg.model.durable_publish then begin
    for i = 0 to n - 1 do
      Hashtbl.replace touched (Layout.line_of_addr addrs.(i)) ()
    done;
    (match t.media with
    | Some _ ->
      Pending.remove_lines t.pending (fun line -> Hashtbl.mem touched line);
      Hashtbl.iter (fun line () -> line_to_media t line) touched
    | None -> ());
    Sched.wait t.sched (Hashtbl.length touched * t.cfg.lat.nvm_wpq_service_ns)
  end;
  Sched.wait t.sched (30 + (2 * n) + (10 * !lines))

(* Volatile metadata space: plain arrays — the DES interleaves at
   operation granularity, so plain reads/CASes are atomic. *)
let make_meta t =
  let meta = Array.make t.cfg.meta_words 0 in
  let lat = t.cfg.lat in
  let get i =
    Sched.wait t.sched lat.meta_read_ns;
    meta.(i)
  in
  let set i v =
    Sched.wait t.sched lat.meta_write_ns;
    meta.(i) <- v
  in
  let cas i expected v =
    Sched.wait t.sched lat.meta_write_ns;
    if meta.(i) = expected then begin
      meta.(i) <- v;
      true
    end
    else false
  in
  let fetch_add i delta =
    Sched.wait t.sched lat.meta_write_ns;
    let old = meta.(i) in
    meta.(i) <- old + delta;
    old
  in
  (get, set, cas, fetch_add)

let machine t : Machine.t =
  let meta_get, meta_set, meta_cas, meta_fetch_add = make_meta t in
  let needs_flush, needs_fence =
    match t.cfg.model.persistence with
    | Config.Adr { fences } -> (true, fences)
    | Config.Eadr | Config.Transient_cache -> (false, false)
  in
  {
    Machine.words = t.cfg.heap_words;
    meta_words = t.cfg.meta_words;
    needs_flush;
    needs_fence;
    durable_publish = t.cfg.model.durable_publish;
    load = (fun addr -> load t addr);
    store = (fun addr v -> store t addr v);
    clwb = (fun addr -> clwb t addr);
    clwb_many = (fun addrs n -> clwb_many t addrs n);
    sfence = (fun () -> sfence t);
    meta_get;
    meta_set;
    meta_cas;
    meta_fetch_add;
    tid = (fun () -> Sched.tid t.sched);
    now_ns = (fun () -> float_of_int (Sched.now t.sched));
    pause = (fun ns -> Sched.wait t.sched ns);
    raw_read =
      (fun addr ->
        check_addr t addr;
        Pheap.get t.heap addr);
    (* Untimed recovery/setup writes deliberately bypass dirty tracking:
       recovery replay must not re-mark the window it just restored. *)
    raw_write =
      (fun addr v ->
        check_addr t addr;
        Pheap.set t.heap addr v);
    mark_log_range =
      (fun lo hi ->
        t.log_ranges <- (lo, hi) :: t.log_ranges;
        rebuild_log_index t);
    publish = (fun addrs values n -> publish t addrs values n);
  }

module Debt = struct
  type sim = t

  type t = {
    wpq_lines : int;
    dirty_l3_lines : int;
    dirty_dram_pages : int;
    armed_log_lines : int;
  }

  let sample (sim : sim) =
    let now = Sched.now sim.sched in
    let persistent = sim.cfg.model.data_media = Config.Nvm in
    let dirty_l3_lines = if persistent then List.length (Cache.dirty_lines sim.l3) else 0 in
    let dirty_dram_pages =
      match sim.page_cache with
      | Some pc when sim.cfg.model.battery -> List.length (Repro_util.Lru.dirty_keys pc)
      | Some _ | None -> 0
    in
    let armed_log_lines =
      if sim.cfg.model.log_in_dram then
        (* Battery-backed log pages: on failure, armed entries must be
           written to NVM.  Count lines up to each active log's
           sentinel. *)
        List.fold_left
          (fun acc (lo, hi) ->
            let lines = ref 0 in
            let pos = ref lo in
            while !pos < hi && Pheap.get sim.heap !pos <> 0 do
              incr lines;
              pos := !pos + Layout.words_per_line
            done;
            acc + !lines)
          0 sim.log_ranges
      else 0
    in
    {
      wpq_lines =
        Array.fold_left (fun acc s -> acc + Server.inflight_at s ~now) 0 sim.wpq_nvm;
      dirty_l3_lines;
      dirty_dram_pages;
      armed_log_lines;
    }

  (* Per-line energy estimates (nJ): an Optane line write is the
     dominant term; a DRAM page flush is 64 line reads + 64 NVM line
     writes.  Values follow published per-bit access-energy estimates
     for 3D-XPoint-class memory (order-of-magnitude accounting; the
     *relative* demands of the domains are the result). *)
  let nvm_line_write_nj = 56.0
  let dram_line_read_nj = 6.5

  (* Transiently persistent cache: a dirty line only has to be
     *retained* in the (now persistent) cache array until lazy drain —
     no SRAM read-out, no burst NVM write on the reserve budget.
     Retention leakage over the ride-through window is roughly a DRAM
     line read's worth of energy, an order of magnitude below eADR's
     read+write per line. *)
  let cache_line_retain_nj = 6.5
  let lines_per_page = Layout.words_per_page / Layout.words_per_line

  let reserve_energy_nj (sim : sim) t =
    let wpq = float_of_int t.wpq_lines *. nvm_line_write_nj in
    match sim.cfg.model.persistence with
    | Config.Adr _ -> wpq
    | Config.Transient_cache -> wpq +. (float_of_int t.dirty_l3_lines *. cache_line_retain_nj)
    | Config.Eadr ->
      let l3 = float_of_int t.dirty_l3_lines *. (nvm_line_write_nj +. dram_line_read_nj) in
      let pages =
        float_of_int (t.dirty_dram_pages * lines_per_page)
        *. (nvm_line_write_nj +. dram_line_read_nj)
      in
      let logs = float_of_int t.armed_log_lines *. (nvm_line_write_nj +. dram_line_read_nj) in
      wpq +. l3 +. pages +. logs
end

module Stats = struct
  type sim = t

  type t = {
    loads : int;
    stores : int;
    l3_hits : int;
    l3_misses : int;
    writebacks : int;
    clwbs : int;
    sfences : int;
    fence_wait_ns : int;
    wpq_stall_ns : int;
    fence_wait_ns_by_tid : int array;
    wpq_stall_ns_by_tid : int array;
    nvm_reads : int;
    dram_reads : int;
    pdram_page_hits : int;
    pdram_page_misses : int;
  }

  let get (sim : sim) =
    {
      loads = sim.c.loads;
      stores = sim.c.stores;
      l3_hits = Cache.hits sim.l3;
      l3_misses = Cache.misses sim.l3;
      writebacks = Cache.writebacks sim.l3;
      clwbs = sim.c.clwbs;
      sfences = sim.c.sfences;
      fence_wait_ns = sim.c.fence_wait_ns;
      wpq_stall_ns =
        Array.fold_left (fun acc s -> acc + Server.stall_ns s) 0 sim.wpq_nvm
        + Server.stall_ns sim.wpq_dram;
      fence_wait_ns_by_tid = Array.copy sim.fence_wait_by_tid;
      wpq_stall_ns_by_tid = Array.copy sim.wpq_stall_by_tid;
      nvm_reads = Array.fold_left (fun acc s -> acc + Server.requests s) 0 sim.rd_nvm;
      dram_reads = Server.requests sim.rd_dram;
      pdram_page_hits = sim.c.pdram_page_hits;
      pdram_page_misses = sim.c.pdram_page_misses;
    }

  (* Scalar fields by stable export name — the per-tid arrays are
     deliberately excluded (their length depends on thread count). *)
  let fields (t : t) =
    [
      ("loads", t.loads);
      ("stores", t.stores);
      ("l3_hits", t.l3_hits);
      ("l3_misses", t.l3_misses);
      ("writebacks", t.writebacks);
      ("clwbs", t.clwbs);
      ("sfences", t.sfences);
      ("fence_wait_ns", t.fence_wait_ns);
      ("wpq_stall_ns", t.wpq_stall_ns);
      ("nvm_reads", t.nvm_reads);
      ("dram_reads", t.dram_reads);
      ("pdram_page_hits", t.pdram_page_hits);
      ("pdram_page_misses", t.pdram_page_misses);
    ]
end
