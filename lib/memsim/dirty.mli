(** Dirty tracking over a window of the persistent heap.

    A page table with per-page dirty bits plus a per-line dirty bitmap,
    populated from the simulated store path.  {!note} is allocation-free
    (two compares and bit operations) so it can ride the zero-allocation
    store fast path; {!clear} and the iterators are O(dirty pages).
    This is the substrate for failure-atomic msync: the FAMS layer
    sweeps the dirty set at line or page granularity into its snapshot
    journal. *)

type t

val create : lo:int -> hi:int -> t
(** Track word addresses in [\[lo, hi)].  [lo] must be page-aligned
    (the page table indexes relative to it). *)

val note : t -> int -> unit
(** Record a store to an absolute word address; out-of-window addresses
    are ignored.  Allocation-free except for amortized growth of the
    dirty-page stack (bounded by the page count). *)

val lo : t -> int
val hi : t -> int

val dirty_pages : t -> int
(** Number of distinct dirty pages since the last {!clear}. *)

val dirty_lines : t -> int
(** Number of distinct dirty lines (counted over dirty pages only). *)

val page_dirty : t -> int -> bool
(** [page_dirty t addr]: is the page containing absolute word address
    [addr] dirty?  False outside the window. *)

val line_dirty : t -> int -> bool
(** [line_dirty t addr]: is the line containing absolute word address
    [addr] dirty?  False outside the window. *)

val iter_dirty_pages : t -> (int -> unit) -> unit
(** Visit each dirty page's base word address, ascending. *)

val iter_dirty_lines_of_page : t -> int -> (int -> unit) -> unit
(** [iter_dirty_lines_of_page t page_addr f]: visit the base word
    address of each dirty line within the (dirty) page at [page_addr],
    ascending. *)

val clear : t -> unit
(** Reset all dirty state; O(dirty pages). *)
