(** Flat arena of deferred ADR media writes.

    Replaces the cons-cell-plus-fresh-array list of in-flight WPQ
    lines: slot-indexed parallel int arrays plus a fixed-stride data
    slab, filled in insertion order (the slot index is the sequence
    number), compacted in place, doubled on overflow.  The store/clwb
    fast path allocates nothing once the arena has reached its working
    size. *)

type t

val create : stride:int -> unit -> t
(** [stride] is the slab width per slot (words per cache line). *)

val count : t -> int

val capacity : t -> int
(** Current slot capacity (doubles on overflow); exposed for boundary
    tests. *)

val clear : t -> unit

val add : t -> apply_at:int -> line:int -> src:Pheap.t -> base:int -> len:int -> unit
(** Capture [len] words of [src] at [base]: line content travelling to
    the controller, power-safe once serviced at [apply_at]. *)

val apply : cutoff:int -> t -> Pheap.t -> unit
(** Write every entry serviced strictly before [cutoff] into the image,
    in (apply_at, insertion) order — the controller's write order.
    Leaves the arena untouched. *)

val settle : t -> now:int -> Pheap.t -> unit
(** Apply entries with [apply_at <= now] to the image and compact the
    in-flight remainder in place, preserving insertion order. *)

val remove_lines : t -> (int -> bool) -> unit
(** Drop entries whose line satisfies the predicate (durable publish
    supersedes in-flight captures of the same lines). *)

val to_list : t -> (int * int * int array) list
(** (apply_at, line, data) in insertion order — test oracle view. *)
