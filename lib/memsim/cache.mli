(** Set-associative write-back cache model (the shared L3).

    Tracks line residency and dirtiness only; data always lives in the
    simulated heap (a line's content is, by construction, the current
    heap value).  Replacement is LRU within a set. *)

type t

type evicted = { line : int; dirty : bool }

type access = Hit | Miss of evicted option
(** On a miss the requested line is installed; [Miss (Some e)] reports
    the victim that had to leave. *)

val create : ?line_bytes:int -> bytes:int -> ways:int -> unit -> t
(** [bytes] total capacity; [ways] associativity.  The number of sets
    is rounded down to a power of two (at least one). *)

val access : t -> line:int -> write:bool -> access
(** Look up [line]; install on miss; set the dirty bit when [write]. *)

val hit : int
val miss_clean : int

val access_fast : t -> line:int -> write:bool -> int
(** Allocation-free [access]: returns [hit] (-1), [miss_clean] (-2:
    miss with no dirty victim), or the evicted dirty line's number
    (>= 0, write-back required).  Identical state/counter updates. *)

val clean : t -> line:int -> bool
(** [clwb] behaviour: clear the line's dirty bit, keeping it resident
    (clwb, unlike clflush, retains the line).  Returns whether it was
    resident and dirty — i.e. whether a write-back is actually sent. *)

val resident_dirty : t -> line:int -> bool

val dirty_lines : t -> int list
(** All resident dirty lines — what eADR-class domains flush on a
    power failure. *)

val reset : t -> unit

val reset_stats : t -> unit
(** Zero the hit/miss/write-back counters, keeping contents. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
(** Dirty evictions (write-backs caused by capacity, not by clwb). *)
