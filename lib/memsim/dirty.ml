(* Dirty tracking over a window of the persistent heap.

   A page table over [\[lo, hi)] with per-page dirty bits plus a
   per-line dirty bitmap, fed from the store path.  [note] is the only
   hot-loop entry point and costs two compares and a handful of bit
   operations — no allocation, preserving the zero-allocation store
   discipline.  [clear] and iteration are O(dirty pages): the dirty
   page stack remembers first-touch order, and a page's 64 line bits
   occupy exactly 8 bitmap bytes, so clearing is a short Bytes.fill per
   dirty page. *)

module Layout = Machine.Layout

let lines_per_page = Layout.words_per_page / Layout.words_per_line
let line_bytes_per_page = lines_per_page / 8

type t = {
  lo : int;
  hi : int;
  line_bits : Bytes.t; (* bit per line of the window *)
  page_bits : Bytes.t; (* bit per page of the window *)
  mutable pages : int array; (* window-relative indices of dirty pages *)
  mutable npages : int;
}

let create ~lo ~hi =
  if lo < 0 || hi <= lo then invalid_arg "Dirty.create: empty window";
  if lo mod Layout.words_per_page <> 0 then
    invalid_arg "Dirty.create: window must start on a page boundary";
  let words = hi - lo in
  let npages_total = (words + Layout.words_per_page - 1) / Layout.words_per_page in
  let nlines = npages_total * lines_per_page in
  {
    lo;
    hi;
    line_bits = Bytes.make ((nlines + 7) / 8) '\000';
    page_bits = Bytes.make ((npages_total + 7) / 8) '\000';
    pages = Array.make (max 16 (min npages_total 1024)) 0;
    npages = 0;
  }

let[@inline] bit_set bytes i =
  let byte = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let old = Char.code (Bytes.unsafe_get bytes byte) in
  if old land mask = 0 then begin
    Bytes.unsafe_set bytes byte (Char.unsafe_chr (old lor mask));
    true
  end
  else false

let[@inline] bit_get bytes i =
  Char.code (Bytes.unsafe_get bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

let push_page t p =
  if t.npages = Array.length t.pages then begin
    let bigger = Array.make (2 * t.npages) 0 in
    Array.blit t.pages 0 bigger 0 t.npages;
    t.pages <- bigger
  end;
  t.pages.(t.npages) <- p;
  t.npages <- t.npages + 1

let[@inline] note t addr =
  if addr >= t.lo && addr < t.hi then begin
    let rel = addr - t.lo in
    ignore (bit_set t.line_bits (rel / Layout.words_per_line) : bool);
    let p = rel / Layout.words_per_page in
    if bit_set t.page_bits p then push_page t p
  end

let lo t = t.lo
let hi t = t.hi
let dirty_pages t = t.npages

let dirty_lines t =
  let n = ref 0 in
  for k = 0 to t.npages - 1 do
    let first = t.pages.(k) * lines_per_page in
    for l = first to first + lines_per_page - 1 do
      if bit_get t.line_bits l then incr n
    done
  done;
  !n

let page_dirty t page_addr =
  page_addr >= t.lo && page_addr < t.hi && bit_get t.page_bits ((page_addr - t.lo) / Layout.words_per_page)

let line_dirty t line_addr =
  line_addr >= t.lo && line_addr < t.hi && bit_get t.line_bits ((line_addr - t.lo) / Layout.words_per_line)

(* Dirty pages in ascending address order (the stack records first-touch
   order; sorting makes journal layout canonical).  [f] receives the
   absolute word address of each dirty page's base. *)
let iter_dirty_pages t f =
  let idx = Array.sub t.pages 0 t.npages in
  Array.sort compare idx;
  Array.iter (fun p -> f (t.lo + (p * Layout.words_per_page))) idx

(* Dirty lines of one dirty page, ascending; [f] receives absolute word
   addresses of line bases. *)
let iter_dirty_lines_of_page t page_addr f =
  let p = (page_addr - t.lo) / Layout.words_per_page in
  let first = p * lines_per_page in
  for l = first to first + lines_per_page - 1 do
    if bit_get t.line_bits l then f (t.lo + (l * Layout.words_per_line))
  done

let clear t =
  for k = 0 to t.npages - 1 do
    let p = t.pages.(k) in
    let byte = p lsr 3 in
    Bytes.unsafe_set t.page_bits byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.page_bits byte) land lnot (1 lsl (p land 7))));
    Bytes.fill t.line_bits (p * line_bytes_per_page) line_bytes_per_page '\000'
  done;
  t.npages <- 0
