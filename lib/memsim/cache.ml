type t = {
  sets : int;
  ways : int;
  tags : int array; (* sets*ways; -1 = invalid; else line number *)
  dirty : bool array;
  stamp : int array; (* LRU recency, global tick *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

type evicted = { line : int; dirty : bool }
type access = Hit | Miss of evicted option

let floor_pow2 n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  if n <= 1 then 1 else go 1

let create ?(line_bytes = 64) ~bytes ~ways () =
  assert (ways > 0 && bytes >= line_bytes * ways);
  let sets = floor_pow2 (bytes / (line_bytes * ways)) in
  {
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    dirty = Array.make (sets * ways) false;
    stamp = Array.make (sets * ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let set_of t line = line land (t.sets - 1)

(* Index of [line] within its set, or the victim way (invalid first,
   else LRU) when absent. *)
let find t line =
  let base = set_of t line * t.ways in
  let found = ref (-1) in
  let victim = ref base in
  let oldest = ref max_int in
  for w = 0 to t.ways - 1 do
    let i = base + w in
    if t.tags.(i) = line then found := i
    else if t.tags.(i) = -1 && !oldest > -1 then begin
      (* Prefer an invalid way; mark preference with oldest = -1. *)
      victim := i;
      oldest := -1
    end
    else if !oldest >= 0 && t.stamp.(i) < !oldest then begin
      victim := i;
      oldest := t.stamp.(i)
    end
  done;
  (!found, !victim)

let access t ~line ~write =
  t.tick <- t.tick + 1;
  let found, victim = find t line in
  if found >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamp.(found) <- t.tick;
    if write then t.dirty.(found) <- true;
    Hit
  end
  else begin
    t.misses <- t.misses + 1;
    let ev =
      if t.tags.(victim) = -1 then None
      else begin
        let d = t.dirty.(victim) in
        if d then t.writebacks <- t.writebacks + 1;
        Some { line = t.tags.(victim); dirty = d }
      end
    in
    t.tags.(victim) <- line;
    t.dirty.(victim) <- write;
    t.stamp.(victim) <- t.tick;
    Miss ev
  end

(* Way index of a resident [line], or -1.  Early-exit scan: the victim
   bookkeeping [find] also carries is only needed on a miss. *)
let find_hit t line =
  let base = set_of t line * t.ways in
  let limit = base + t.ways in
  let tags = t.tags in
  let i = ref base in
  while !i < limit && Array.unsafe_get tags !i <> line do incr i done;
  if !i < limit then !i else -1

let hit = -1
let miss_clean = -2

(* Allocation-free twin of [access] for the simulator hot path: same
   state transitions and counters, but the result is a packed int
   ([hit] / [miss_clean] / the dirty victim's line number) instead of a
   [Miss (Some {line; dirty})] record chain.  Clean victims need no
   action from the caller (data lives in the heap), so only dirty
   evictions are distinguished.  Any edit here must mirror [access]. *)
let access_fast t ~line ~write =
  t.tick <- t.tick + 1;
  let f = find_hit t line in
  if f >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamp.(f) <- t.tick;
    if write then t.dirty.(f) <- true;
    hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Victim choice exactly as [find]: first invalid way, else least
       recent stamp (first minimum). *)
    let base = set_of t line * t.ways in
    let victim = ref base in
    let oldest = ref max_int in
    for i = base to base + t.ways - 1 do
      if !oldest >= 0 then
        if Array.unsafe_get t.tags i = -1 then begin
          victim := i;
          oldest := -1
        end
        else if Array.unsafe_get t.stamp i < !oldest then begin
          victim := i;
          oldest := Array.unsafe_get t.stamp i
        end
    done;
    let v = !victim in
    let old_tag = t.tags.(v) in
    let result =
      if old_tag >= 0 && t.dirty.(v) then begin
        t.writebacks <- t.writebacks + 1;
        old_tag
      end
      else miss_clean
    in
    t.tags.(v) <- line;
    t.dirty.(v) <- write;
    t.stamp.(v) <- t.tick;
    result
  end

let clean t ~line =
  let found = find_hit t line in
  if found >= 0 && t.dirty.(found) then begin
    t.dirty.(found) <- false;
    true
  end
  else false

let resident_dirty t ~line =
  let found = find_hit t line in
  found >= 0 && t.dirty.(found)

let dirty_lines (t : t) =
  let acc = ref [] in
  Array.iteri (fun i tag -> if tag >= 0 && t.dirty.(i) then acc := tag :: !acc) t.tags;
  !acc

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
