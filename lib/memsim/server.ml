type t = {
  service_ns : int;
  capacity : int;
  mutable next_free : int;
  (* In-flight completion times, ascending, as a flat circular buffer
     (bounded servers only; replaces a Queue.t whose push allocated a
     cons-like node per write-back). *)
  buf : int array;
  mutable head : int; (* index of the oldest entry *)
  mutable inflight : int;
  mutable requests : int;
  mutable stall_ns : int;
  mutable queue_ns : int;
  (* Out-parameters of [enqueue_fast]; see the mli. *)
  mutable last_ready : int;
  mutable last_completion : int;
}

let create ~service_ns ~capacity =
  {
    service_ns;
    capacity;
    next_free = 0;
    buf = Array.make (max 1 capacity) 0;
    head = 0;
    inflight = 0;
    requests = 0;
    stall_ns = 0;
    queue_ns = 0;
    last_ready = 0;
    last_completion = 0;
  }

let acquire_sync t ~now ~latency_ns =
  t.requests <- t.requests + 1;
  let start = max now t.next_free in
  t.next_free <- start + t.service_ns;
  t.queue_ns <- t.queue_ns + (start - now);
  start + latency_ns

type async = { ready : int; completion : int }

let[@inline] wrap t i = if i >= Array.length t.buf then i - Array.length t.buf else i

let[@inline] pop t =
  let c = t.buf.(t.head) in
  t.head <- wrap t (t.head + 1);
  t.inflight <- t.inflight - 1;
  c

let drop_completed t ~now =
  while t.inflight > 0 && t.buf.(t.head) <= now do
    ignore (pop t)
  done

let enqueue_fast t ~now =
  t.requests <- t.requests + 1;
  let ready = ref now in
  if t.capacity > 0 then begin
    drop_completed t ~now;
    (* Completions are FIFO: while full, wait for the oldest in-flight
       entry, which frees exactly one slot. *)
    while t.inflight >= t.capacity do
      let c = pop t in
      if c > !ready then ready := c
    done
  end;
  let start = max !ready t.next_free in
  let completion = start + t.service_ns in
  t.next_free <- completion;
  if t.capacity > 0 then begin
    t.buf.(wrap t (t.head + t.inflight)) <- completion;
    t.inflight <- t.inflight + 1
  end;
  t.stall_ns <- t.stall_ns + (!ready - now);
  t.last_ready <- !ready;
  t.last_completion <- completion

let last_ready t = t.last_ready
let last_completion t = t.last_completion

let enqueue_async t ~now =
  enqueue_fast t ~now;
  { ready = t.last_ready; completion = t.last_completion }

let reset t =
  t.next_free <- 0;
  t.head <- 0;
  t.inflight <- 0;
  t.requests <- 0;
  t.stall_ns <- 0;
  t.queue_ns <- 0;
  t.last_ready <- 0;
  t.last_completion <- 0

let inflight_at t ~now =
  let n = ref 0 in
  for k = 0 to t.inflight - 1 do
    if t.buf.(wrap t (t.head + k)) > now then incr n
  done;
  !n

let requests t = t.requests
let stall_ns t = t.stall_ns
let queue_ns t = t.queue_ns
