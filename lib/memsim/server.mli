(** Shared bandwidth server with bounded queueing.

    Models a memory channel: each request occupies the server for a
    fixed per-line service time, so aggregate throughput is bounded by
    1/service and queueing delay emerges under contention.  The bounded
    variant additionally models the Write Pending Queue: when
    [capacity] requests are in flight, the issuing thread stalls until
    a slot frees — the WPQ-saturation mechanism of the paper (§III-C). *)

type t

val create : service_ns:int -> capacity:int -> t
(** [capacity <= 0] means unbounded. *)

val acquire_sync : t -> now:int -> latency_ns:int -> int
(** Synchronous request (a load): occupies the server for its service
    time and returns the completion time the requester must wait for
    ([>= now + latency_ns]; larger under queueing). *)

type async = { ready : int; completion : int }

val enqueue_async : t -> now:int -> async
(** Asynchronous request (a write-back entering the WPQ).  [ready] is
    when the issuing thread may proceed ([> now] only when the bounded
    queue was full — backpressure); [completion] is when the line has
    drained to media. *)

val enqueue_fast : t -> now:int -> unit
(** [enqueue_async] without the result record: the outcome is read back
    through [last_ready]/[last_completion].  Valid until the next
    enqueue on this server — the simulator hot path consumes both
    immediately. *)

val last_ready : t -> int
val last_completion : t -> int

val reset : t -> unit

(** Counters for experiment reports. *)

val requests : t -> int
val stall_ns : t -> int
(** Total backpressure stall time imposed on issuing threads. *)

val queue_ns : t -> int
(** Total queueing delay (start - arrival) across sync requests. *)

val inflight_at : t -> now:int -> int
(** Entries of a bounded server still draining at the given instant —
    what a power failure would have to finish on reserve power. *)
