(** The simulated Optane DC machine.

    Combines the DES scheduler, the L3 cache model, the memory
    controller (bounded WPQ + read/write channels for DRAM and NVM),
    the PDRAM page-cache directory and the durability-domain rules into
    a {!Machine.t} that PTM code runs against.

    Persistence model (per cache line):
    - a store dirties the line in the L3;
    - [clwb] captures the line's current content and sends it to the
      WPQ, charging the issuing thread the clwb latency plus a stall if
      the bounded WPQ is full;
    - under ADR the content becomes power-safe only when the memory
      controller services the WPQ entry; with interleaved channels,
      service completions can reorder relative to issue order, so an
      unfenced flush has a real loss window (the Table III no-fence
      hazard) while [sfence] — which waits for the thread's own
      outstanding entries to complete — closes it;
    - a dirty line evicted by capacity also transits the WPQ (persisting
      at service time under ADR, unordered by sfence) — this is the
      write-back traffic that saturates eADR at scale (§III-C);
    - on a power failure, ADR keeps the media image plus every WPQ
      entry serviced strictly before the crash instant; eADR-family
      domains additionally flush resident dirty lines; PDRAM persists
      the entire heap (its DRAM page cache is battery-backed).

    A [Sim.t] runs one workload: spawn threads, [run], read stats, and
    — for crash experiments — [reboot] into a fresh machine whose heap
    is the surviving media image. *)

type t

val create : Config.t -> t

val config : t -> Config.t

val machine : t -> Machine.t
(** The {!Machine.t} facade.  Timed operations must only be called from
    simulated threads (between [spawn] and the end of [run]). *)

val enable_trace : ?capacity:int -> t -> Trace.t
(** Start recording machine events into a fresh ring buffer (see
    {!Trace}); returns it for inspection.  Call before [run]. *)

val spawn : t -> (unit -> unit) -> int

val run : ?crash_at:int -> t -> unit

val now : t -> int
(** Virtual time: current thread's clock during [run], final time after. *)

val crashed : t -> bool

val track_dirty : t -> lo:int -> hi:int -> Dirty.t
(** Arm dirty tracking (per-page bits + per-line bitmap, see {!Dirty})
    over word addresses [\[lo, hi)], fed from the timed store path at
    one branch per store.  Untimed [raw_write]s are never tracked, so
    recovery replay cannot re-dirty the window it restores.  Replaces
    any previous tracker; {!reboot} returns an untracked machine.
    [lo] must be page-aligned. *)

val dirty_tracker : t -> Dirty.t option
(** The currently armed tracker, if any. *)

val fence_wait_ns_of : t -> tid:int -> int
(** Cumulative sfence drain wait paid by one thread (0 for unknown
    tids).  The per-tid values sum to {!Stats.t.fence_wait_ns}. *)

val wpq_stall_ns_of : t -> tid:int -> int
(** Cumulative WPQ backpressure stall paid by one thread (0 for unknown
    tids).  Bulk PDRAM page drains are not charged to any thread, so
    the per-tid sum is a lower bound on {!Stats.t.wpq_stall_ns}. *)

val reboot : t -> t
(** Post-crash (or post-run) machine: fresh scheduler, caches, queues
    and volatile metadata; heap initialized from the surviving media
    image according to the durability domain.  Requires
    [track_media = true]. *)

val reset_timing : t -> unit
(** Forget timing state accumulated by an untimed setup phase (memory
    controller queues, fence targets, all counters) while keeping
    memory contents and cache residency.  Call between population and
    the measured phase; never while threads are running. *)

val persist_all : t -> unit
(** Declare the current heap contents durable (media := heap) — used
    after untimed initialization, before the measured/crashed phase. *)

val save_image : t -> string -> unit
(** Write the surviving media image (per the durability domain, as
    {!reboot} would compute it) to a file — the simulated DIMMs become
    actually durable across host processes.  Requires
    [track_media = true]. *)

val load_image : Config.t -> string -> t
(** Fresh machine whose heap and media are initialized from a file
    written by {!save_image}.
    @raise Machine.Corrupt_image on a malformed, truncated or
    mis-sized image (the payload carries the file path and offset);
    [Sys_error] propagates when the file does not exist — restart code
    can tell "no image" from "torn image". *)

(** Reserve-power accounting (the paper's §V future work: "we do not
    have a formula or model for estimating reserve power requirements
    for a workload").  The debt is everything a power failure would
    have to finish writing on reserve energy. *)
module Debt : sig
  type sim := t

  type t = {
    wpq_lines : int;  (** lines in flight in the bounded NVM WPQ *)
    dirty_l3_lines : int;  (** persistent-page lines dirty in the L3 *)
    dirty_dram_pages : int;  (** dirty pages in the PDRAM directory *)
    armed_log_lines : int;  (** active per-thread log lines (PDRAM-Lite) *)
  }

  val sample : sim -> t
  (** Instantaneous debt (callable from a monitor thread mid-run). *)

  val reserve_energy_nj : sim -> t -> float
  (** Energy to retire the debt under this machine's durability
      domain, using per-line NVM-write and DRAM-read costs documented
      in DESIGN.md.  ADR pays only for the WPQ; eADR adds the L3 flush;
      PDRAM adds the DRAM page cache; PDRAM-Lite adds the armed logs. *)
end

(** Machine-wide counters for reports. *)
module Stats : sig
  type sim := t

  type t = {
    loads : int;
    stores : int;
    l3_hits : int;
    l3_misses : int;
    writebacks : int;  (** capacity write-backs (dirty evictions) *)
    clwbs : int;
    sfences : int;
    fence_wait_ns : int;  (** total drain wait imposed by sfence *)
    wpq_stall_ns : int;  (** total backpressure from the bounded NVM WPQ *)
    fence_wait_ns_by_tid : int array;  (** per-thread share of [fence_wait_ns] *)
    wpq_stall_ns_by_tid : int array;  (** per-thread share of [wpq_stall_ns] *)
    nvm_reads : int;
    dram_reads : int;
    pdram_page_hits : int;
    pdram_page_misses : int;
  }

  val get : sim -> t

  val fields : t -> (string * int) list
  (** Every scalar counter as a (stable export name, value) pair, in a
      fixed order — the feed for a metrics registry.  The per-tid
      arrays are excluded. *)
end
