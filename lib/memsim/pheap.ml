(* Demand-paged heap image.

   A flat [Array.make heap_words 0] costs ~16 MB of zeroing per image
   (heap + media) on every cell of every experiment — ~21 ms of each
   quick cell goes to pages the workload never touches.  This
   representation splits the address space into fixed page-sized chunks
   that all start as one shared, immutable all-zero chunk; a chunk is
   materialized (copied out of the zero page) only on first write.
   Reads are two unsafe loads; writes add one physical-equality test
   against the zero page.  Copies, blits and image serialization walk
   only the touched chunks, so crash-image materialization and reboot
   are O(touched) instead of O(heap). *)

let chunk_words = Machine.Layout.words_per_page
let chunk_shift = 9 (* log2 chunk_words *)
let chunk_mask = chunk_words - 1
let () = assert (1 lsl chunk_shift = chunk_words)

type t = {
  words : int;
  chunks : int array array; (* chunks.(i) == zero  <=>  never written *)
}

(* The shared zero page.  Every read of an untouched chunk goes through
   this array; nothing may ever write to it — all mutation paths below
   materialize first. *)
let zero = Array.make chunk_words 0

let nchunks words = (words + chunk_words - 1) / chunk_words

let create ~words =
  if words <= 0 then invalid_arg "Pheap.create: words must be positive";
  { words; chunks = Array.make (nchunks words) zero }

let words t = t.words

let[@inline] get t addr =
  Array.unsafe_get (Array.unsafe_get t.chunks (addr lsr chunk_shift)) (addr land chunk_mask)

let[@inline] chunk_for_write t ci =
  let c = Array.unsafe_get t.chunks ci in
  if c != zero then c
  else begin
    let fresh = Array.make chunk_words 0 in
    Array.unsafe_set t.chunks ci fresh;
    fresh
  end

let[@inline] set t addr v =
  Array.unsafe_set (chunk_for_write t (addr lsr chunk_shift)) (addr land chunk_mask) v

let touched t =
  let n = ref 0 in
  Array.iter (fun c -> if c != zero then incr n) t.chunks;
  !n

(* Copy [len] words at [base] from [src] to [dst] (same offsets in
   both).  Zero-aware: a zero source chunk zero-fills the destination
   range only when the destination chunk is materialized. *)
let copy_range ~src ~dst base len =
  if base < 0 || len < 0 || base + len > src.words || base + len > dst.words then
    invalid_arg "Pheap.copy_range";
  let pos = ref base in
  let remaining = ref len in
  while !remaining > 0 do
    let ci = !pos lsr chunk_shift in
    let off = !pos land chunk_mask in
    let n = min !remaining (chunk_words - off) in
    let sc = Array.unsafe_get src.chunks ci in
    if sc == zero then begin
      let dc = Array.unsafe_get dst.chunks ci in
      if dc != zero then Array.fill dc off n 0
    end
    else Array.blit sc off (chunk_for_write dst ci) off n;
    pos := !pos + n;
    remaining := !remaining - n
  done

(* [dst] becomes a copy of [src]'s content.  Untouched source chunks
   revert the destination chunk to the shared zero page (dropping any
   materialized garbage); touched chunks are deep-copied, never shared
   — both images stay independently mutable. *)
let assign ~src ~dst =
  if src.words <> dst.words then invalid_arg "Pheap.assign: size mismatch";
  for ci = 0 to Array.length src.chunks - 1 do
    let sc = Array.unsafe_get src.chunks ci in
    if sc == zero then Array.unsafe_set dst.chunks ci zero
    else begin
      let dc = Array.unsafe_get dst.chunks ci in
      if dc == zero then Array.unsafe_set dst.chunks ci (Array.copy sc)
      else Array.blit sc 0 dc 0 chunk_words
    end
  done

let copy t =
  let fresh = create ~words:t.words in
  assign ~src:t ~dst:fresh;
  fresh

let fill_zero t =
  Array.fill t.chunks 0 (Array.length t.chunks) zero

(* Flat-array bridges for the WPQ pending arena: line-sized transfers
   between a heap image and a stride slab.  Line-aligned ranges never
   straddle a chunk (chunk_words is a multiple of words_per_line), but
   the loops stay general for safety. *)
let blit_to_array t src_pos dst dst_pos len =
  if src_pos < 0 || len < 0 || src_pos + len > t.words then invalid_arg "Pheap.blit_to_array";
  let pos = ref src_pos in
  let out = ref dst_pos in
  let remaining = ref len in
  while !remaining > 0 do
    let ci = !pos lsr chunk_shift in
    let off = !pos land chunk_mask in
    let n = min !remaining (chunk_words - off) in
    let c = Array.unsafe_get t.chunks ci in
    if c == zero then Array.fill dst !out n 0 else Array.blit c off dst !out n;
    pos := !pos + n;
    out := !out + n;
    remaining := !remaining - n
  done

let blit_of_array t dst_pos src src_pos len =
  if dst_pos < 0 || len < 0 || dst_pos + len > t.words then invalid_arg "Pheap.blit_of_array";
  let pos = ref dst_pos in
  let inp = ref src_pos in
  let remaining = ref len in
  while !remaining > 0 do
    let ci = !pos lsr chunk_shift in
    let off = !pos land chunk_mask in
    let n = min !remaining (chunk_words - off) in
    Array.blit src !inp (chunk_for_write t ci) off n;
    pos := !pos + n;
    inp := !inp + n;
    remaining := !remaining - n
  done

let iter_touched t f =
  for ci = 0 to Array.length t.chunks - 1 do
    let c = Array.unsafe_get t.chunks ci in
    if c != zero then f ci c
  done

let of_touched ~words pairs =
  let t = create ~words in
  let nc = Array.length t.chunks in
  List.iter
    (fun (ci, data) ->
      if ci < 0 || ci >= nc then invalid_arg "Pheap.of_touched: chunk index out of range";
      if Array.length data <> chunk_words then
        invalid_arg "Pheap.of_touched: bad chunk length";
      t.chunks.(ci) <- Array.copy data)
    pairs;
  t

let to_flat t =
  let a = Array.make t.words 0 in
  iter_touched t (fun ci c ->
      let base = ci * chunk_words in
      Array.blit c 0 a base (min chunk_words (t.words - base)));
  a
