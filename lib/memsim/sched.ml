exception Crashed = Machine.Crashed

(* The effect carries no payload: the requested delay travels through
   [pending_ns] on the scheduler instead, so performing a wait
   allocates nothing beyond the continuation capture itself.  (A
   [Wait : int -> _ Effect.t] payload would cons a fresh two-word block
   on every suspension — measurable on the DES hot loop.) *)
type _ Effect.t += Wait : unit Effect.t

type state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type thread = {
  thread_id : int;
  mutable time : int;
  mutable state : state;
  self : thread option; (* pre-allocated [Some this] for [current] *)
}

type t = {
  mutable table : thread array; (* index = thread_id; padded with [dummy] *)
  mutable count : int;
  ready : Repro_util.Int_heap.t; (* key = wake time, payload = thread id *)
  mutable current : thread option;
  mutable pending_ns : int; (* delay of the in-flight Wait perform *)
  mutable crash_limit : int; (* armed crash time; [max_int] = none *)
  mutable crashed : bool;
  mutable max_time : int;
  mutable started : bool;
}

let rec dummy = { thread_id = -1; time = 0; state = Finished; self = Some dummy }

let create () =
  {
    table = [||];
    count = 0;
    ready = Repro_util.Int_heap.create ();
    current = None;
    pending_ns = 0;
    crash_limit = max_int;
    crashed = false;
    max_time = 0;
    started = false;
  }

let spawn t f =
  if t.started then invalid_arg "Sched.spawn: scheduler already running";
  let rec th = { thread_id = t.count; time = 0; state = Not_started f; self = Some th } in
  if t.count = Array.length t.table then begin
    let bigger = Array.make (max 8 (2 * (t.count + 1))) dummy in
    Array.blit t.table 0 bigger 0 t.count;
    t.table <- bigger
  end;
  t.table.(t.count) <- th;
  t.count <- t.count + 1;
  Repro_util.Int_heap.push t.ready ~key:0 th.thread_id;
  th.thread_id

let now t = match t.current with Some th -> th.time | None -> t.max_time

(* Machine operations may also run outside [run] (untimed setup and
   recovery phases): time simply does not advance there, and thread id
   defaults to 0. *)
let tid t = match t.current with Some th -> th.thread_id | None -> 0

(* Fast path: when the current thread, after advancing by [ns], is
   still strictly ahead of every pending wake-up, suspending it would
   only have the scheduler pop it right back — no other thread can
   interpose (FIFO tie-break means an *equal* wake time would run
   first, hence the strict [<]).  Advancing the clock inline is then
   observably identical to the full perform/reschedule cycle, and skips
   the continuation capture, the heap round-trip and the handler
   dispatch.  A wake time at or past the armed crash limit must take
   the slow path so the crash machinery sees the event. *)
let wait t ns =
  assert (ns >= 0);
  match t.current with
  | None -> ()
  | Some th ->
    let nt = th.time + ns in
    if nt < t.crash_limit && nt < Repro_util.Int_heap.min_key t.ready then begin
      th.time <- nt;
      if nt > t.max_time then t.max_time <- nt
    end
    else begin
      t.pending_ns <- ns;
      Effect.perform Wait
    end

let wait_until t target =
  match t.current with
  | None -> ()
  | Some th -> if target > th.time then wait t (target - th.time)

let crashed t = t.crashed

let time_limit t = if t.crash_limit = max_int then None else Some t.crash_limit

let running t = t.current <> None

let kill t th =
  match th.state with
  | Suspended k ->
    th.state <- Finished;
    t.current <- th.self;
    (* The handler's exnc re-raises, so an uncaught Crashed surfaces
       here; a thread that swallows it instead terminates via retc. *)
    (try Effect.Deep.discontinue k Crashed with Crashed -> ());
    t.current <- None
  | Not_started _ | Running | Finished -> th.state <- Finished

let run ?crash_at t =
  if t.started then invalid_arg "Sched.run: scheduler already ran";
  t.started <- true;
  (match crash_at with Some c -> t.crash_limit <- c | None -> ());
  (* The Wait arm of the handler is allocated once here, not per
     perform: [effc] returns the same [Some on_wait] every time.  The
     cast is safe because [Wait : unit Effect.t] fixes [a = unit]. *)
  let on_wait (k : (unit, unit) Effect.Deep.continuation) =
    let th = match t.current with Some th -> th | None -> assert false in
    th.time <- th.time + t.pending_ns;
    th.state <- Suspended k;
    t.max_time <- max t.max_time th.time;
    Repro_util.Int_heap.push t.ready ~key:th.time th.thread_id
  in
  let some_on_wait = Some on_wait in
  let handler =
    {
      Effect.Deep.retc =
        (fun () ->
          match t.current with
          | None -> assert false
          | Some th ->
            th.state <- Finished;
            t.max_time <- max t.max_time th.time);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait -> (some_on_wait : ((a, unit) Effect.Deep.continuation -> unit) option)
          | _ -> None);
    }
  in
  let continue_loop = ref true in
  while !continue_loop do
    let id = Repro_util.Int_heap.pop t.ready in
    if id < 0 then continue_loop := false
    else begin
      let th = t.table.(id) in
      if th.state <> Finished then begin
        let time = Repro_util.Int_heap.last_key t.ready in
        if time >= t.crash_limit then begin
          t.crashed <- true;
          kill t th;
          (* Power is gone: kill everything else too. *)
          let rec drain () =
            let other = Repro_util.Int_heap.pop t.ready in
            if other >= 0 then begin
              kill t t.table.(other);
              drain ()
            end
          in
          drain ();
          continue_loop := false
        end
        else begin
          t.current <- th.self;
          (match th.state with
          | Not_started f ->
            th.state <- Running;
            Effect.Deep.match_with f () handler
          | Suspended k ->
            th.state <- Running;
            Effect.Deep.continue k ()
          | Running | Finished -> assert false);
          t.current <- None
        end
      end
    end
  done;
  t.current <- None;
  if t.crashed && t.crash_limit < t.max_time then t.max_time <- t.crash_limit
