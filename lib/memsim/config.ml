type media = Dram | Nvm

type persistence = Adr of { fences : bool } | Eadr | Transient_cache

type model = {
  model_name : string;
  data_media : media;
  log_in_dram : bool;
  persistence : persistence;
  pdram_cache : bool;
  battery : bool;
  durable_publish : bool;
}

let dram_adr =
  {
    model_name = "dram-adr";
    data_media = Dram;
    log_in_dram = false;
    persistence = Adr { fences = true };
    pdram_cache = false;
    battery = false;
    durable_publish = false;
  }

let dram_eadr = { dram_adr with model_name = "dram-eadr"; persistence = Eadr }

let optane_adr =
  {
    model_name = "optane-adr";
    data_media = Nvm;
    log_in_dram = false;
    persistence = Adr { fences = true };
    pdram_cache = false;
    battery = false;
    durable_publish = false;
  }

let optane_adr_nofence =
  { optane_adr with model_name = "optane-adr-nofence"; persistence = Adr { fences = false } }

let optane_eadr = { optane_adr with model_name = "optane-eadr"; persistence = Eadr }

let pdram = { optane_eadr with model_name = "pdram"; pdram_cache = true; battery = true }

(* Memory Mode (Fig 1a): the same DRAM-cache mechanics as PDRAM but no
   reserve power — fast, and nothing survives a failure (the paper's
   §II: contents are effectively reset on reboot). *)
let memory_mode =
  {
    model_name = "memory-mode";
    data_media = Nvm;
    log_in_dram = false;
    persistence = Eadr;
    pdram_cache = true;
    battery = false;
    durable_publish = false;
  }

let pdram_lite = { optane_eadr with model_name = "pdram-lite"; log_in_dram = true }

(* Transiently Persistent CPU Cache (arXiv 2210.17377): the cache
   arrays themselves retain content across a power failure for long
   enough to drain lazily, so — like eADR — no flush or fence is ever
   needed; unlike eADR, reserve power only has to *retain* dirty lines,
   not read them out of SRAM and write them to NVM, so the energy
   accounting differs (see [Sim.Debt]). *)
let transient_cache =
  { optane_eadr with model_name = "transient-cache"; persistence = Transient_cache }

(* HTM-commit (arXiv 1806.01108): the memory controller hardens a
   hardware transaction's write set as one unit at commit, so [publish]
   is durable at retirement — while ordinary stores still pay the full
   ADR clwb/sfence discipline (the STM fallback path is unchanged). *)
let htm_commit = { optane_adr with model_name = "htm-commit"; durable_publish = true }

let all_models =
  [
    dram_adr;
    dram_eadr;
    optane_adr;
    optane_adr_nofence;
    optane_eadr;
    pdram;
    pdram_lite;
    memory_mode;
    transient_cache;
    htm_commit;
  ]

let model_of_name name =
  match List.find_opt (fun m -> m.model_name = name) all_models with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Config.model_of_name: unknown model %S" name)

type latency = {
  cache_hit_ns : int;
  dram_load_ns : int;
  nvm_load_ns : int;
  dram_read_service_ns : int;
  nvm_read_service_ns : int;
  dram_wpq_service_ns : int;
  nvm_wpq_service_ns : int;
  clwb_ns : int;
  sfence_ns : int;
  meta_read_ns : int;
  meta_write_ns : int;
  page_fetch_ns : int;
}

(* nvm_load/nvm_read_service ~ 17 concurrent readers to saturate;
   nvm_load/nvm_wpq_service ~ 4 concurrent writers to saturate (Izraelevitz
   et al., cited in the paper as [46]). *)
let default_latency =
  {
    cache_hit_ns = 6;
    dram_load_ns = 84;
    nvm_load_ns = 252;
    dram_read_service_ns = 4;
    nvm_read_service_ns = 15;
    dram_wpq_service_ns = 8;
    nvm_wpq_service_ns = 62;
    clwb_ns = 90;
    sfence_ns = 15;
    meta_read_ns = 3;
    meta_write_ns = 10;
    page_fetch_ns = 300;
  }

type t = {
  model : model;
  lat : latency;
  nvm_channels : int;
  heap_words : int;
  meta_words : int;
  l3_bytes : int;
  l3_ways : int;
  wpq_capacity : int;
  dram_wpq_capacity : int;
  pdram_cache_bytes : int;
  track_media : bool;
}

let make ?(lat = default_latency) ?(nvm_channels = 1) ?(heap_words = 1 lsl 20)
    ?(meta_words = (1 lsl 20) + 4096) ?(l3_bytes = 32 * 1024) ?(l3_ways = 16)
    ?(wpq_capacity = 32) ?(dram_wpq_capacity = 128) ?(pdram_cache_bytes = 96 * 1024 * 1024)
    ?(track_media = true) model =
  assert (nvm_channels > 0);
  {
    model;
    lat;
    nvm_channels;
    heap_words;
    meta_words;
    l3_bytes;
    l3_ways;
    wpq_capacity;
    dram_wpq_capacity;
    pdram_cache_bytes;
    track_media;
  }
