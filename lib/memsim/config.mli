(** Configuration of the simulated Optane DC machine.

    Latencies follow the numbers the paper cites from Izraelevitz et al.
    ("Basic Performance Measurements of the Intel Optane DC Persistent
    Memory Module"): [clwb] ~86–94 ns regardless of destination, NVM
    load latency ~3x DRAM on an L3 miss, NVM write bandwidth saturating
    with ~4 writing threads while read bandwidth scales to ~17 threads.
    Bandwidths are expressed as per-cache-line service times of shared
    servers; saturation emerges from queueing.

    Capacities are scaled by 2^10 relative to the paper's machine
    (GB→MB, MB→KB) so experiments fit in the container; latencies are
    kept in real nanoseconds, preserving every ratio the paper's
    findings rest on. *)

type media = Dram | Nvm

type persistence =
  | Adr of { fences : bool }
      (** stores persist once they reach the WPQ; requires [clwb]+[sfence].
          [fences = false] is the deliberately incorrect variant used for
          Table III (flushes without ordering). *)
  | Eadr  (** reserve power flushes caches on failure; no flushes needed *)
  | Transient_cache
      (** Transiently Persistent CPU Cache (arXiv 2210.17377): the cache
          arrays themselves ride out the failure and drain lazily.  Same
          programming model as eADR (no flushes, no fences, dirty lines
          survive) but a different reserve-energy story: lines only need
          to be {e retained}, not read out and written to NVM, so the
          per-line energy term is roughly an order of magnitude smaller
          (see [Sim.Debt.reserve_energy_nj]). *)

type model = {
  model_name : string;
  data_media : media;  (** where persistent program data lives *)
  log_in_dram : bool;  (** PDRAM-Lite: PTM log pages in battery-backed DRAM *)
  persistence : persistence;
  pdram_cache : bool;  (** PDRAM/Memory Mode: DRAM is a page cache of NVM *)
  battery : bool;  (** reserve power to flush the DRAM cache on failure *)
  durable_publish : bool;
      (** HTM-commit (arXiv 1806.01108): the memory controller hardens a
          hardware transaction's write set as one unit at commit, so
          [Machine.publish] is durable at retirement even when ordinary
          stores still need the ADR clwb/sfence discipline. *)
}

(** The durability/placement models evaluated in the paper. *)

val dram_adr : model
(** "DRAM" baseline with ADR-style instrumentation (Fig 3/4): data on a
    DRAM ramdisk — not actually persistent — same clwb/fence count. *)

val dram_eadr : model
(** "DRAM" baseline without flushes (Fig 3/4, Fig 6/7 "DRAM"). *)

val optane_adr : model
(** AppDirect + ADR (Fig 3/4). *)

val optane_adr_nofence : model
(** Incorrect ADR with clwb but no sfence — Table III only. *)

val optane_eadr : model
(** AppDirect + eADR (Fig 3/4, 6/7). *)

val pdram : model
(** Proposed PDRAM domain: all of DRAM a persistent cache of Optane. *)

val pdram_lite : model
(** Proposed PDRAM-Lite domain: only PTM log pages in persistent DRAM;
    other data behaves as under eADR. *)

val memory_mode : model
(** Memory Mode (§II, Fig 1a): DRAM caches Optane pages with no
    reserve power — PDRAM's performance, no persistence.  Used by the
    extension experiment comparing PDRAM's cost to Memory Mode. *)

val transient_cache : model
(** Transiently persistent CPU cache: eADR's crash semantics and
    instruction stream, retention-only reserve-energy accounting. *)

val htm_commit : model
(** ADR machine whose HTM commits are durable at publish time; the
    [Ptm.Htm] algorithm runs log-free here despite [needs_flush]. *)

val all_models : model list

val model_of_name : string -> model
(** Lookup by [model_name]; raises [Invalid_argument] on unknown name. *)

type latency = {
  cache_hit_ns : int;  (** L3-resident access *)
  dram_load_ns : int;  (** L3 miss served by DRAM *)
  nvm_load_ns : int;  (** L3 miss served by Optane (~3x DRAM) *)
  dram_read_service_ns : int;  (** DRAM read-channel occupancy per line *)
  nvm_read_service_ns : int;  (** Optane read occupancy (saturates ~17 rd threads) *)
  dram_wpq_service_ns : int;  (** DRAM write drain per line *)
  nvm_wpq_service_ns : int;  (** Optane write drain per line (saturates ~4 wr threads) *)
  clwb_ns : int;  (** latency of the clwb instruction itself *)
  sfence_ns : int;  (** fence base cost, excluding drain wait *)
  meta_read_ns : int;  (** volatile metadata read (orec check) *)
  meta_write_ns : int;  (** volatile metadata write / CAS *)
  page_fetch_ns : int;  (** extra latency to install a page in the PDRAM cache *)
}

val default_latency : latency

type t = {
  model : model;
  lat : latency;
  nvm_channels : int;
      (** address-interleaved Optane channels; service times are
          per-channel, so aggregate bandwidth scales with the count
          (the paper's machine interleaves 12 DIMMs; the default
          calibration folds that into one aggregate channel) *)
  heap_words : int;
  meta_words : int;
  l3_bytes : int;
  l3_ways : int;
  wpq_capacity : int;  (** bounded NVM write-pending-queue entries *)
  dram_wpq_capacity : int;
  pdram_cache_bytes : int;  (** DRAM page-cache capacity under PDRAM *)
  track_media : bool;  (** maintain the persisted media image (crash tests) *)
}

val make :
  ?lat:latency ->
  ?nvm_channels:int ->
  ?heap_words:int ->
  ?meta_words:int ->
  ?l3_bytes:int ->
  ?l3_ways:int ->
  ?wpq_capacity:int ->
  ?dram_wpq_capacity:int ->
  ?pdram_cache_bytes:int ->
  ?track_media:bool ->
  model ->
  t
(** Defaults: 1 Mi-word (8 MB) heap, 2^20+4096-word metadata space, 32 KB
    16-way L3 (the paper's L3 scaled by 2^10), WPQ of 32 lines, 96 MB
    PDRAM page cache (the paper's 96 GB of per-socket DRAM scaled by
    2^10), media tracking on. *)
