(* Flat arena for deferred ADR media writes.

   Each in-flight WPQ line ride is one slot across three parallel int
   arrays (service time, line number, word count) plus a fixed-stride
   slab holding the captured line content.  Slots are filled in
   insertion order — the slot index doubles as the sequence number the
   old list representation carried explicitly — and [settle] compacts
   survivors in place, so the steady state allocates nothing: the cons
   cell and fresh [Array.sub] per clwb of the previous representation
   are gone.  Capacity doubles on overflow (amortized O(1), and the
   arrays are retained for the life of the simulation). *)

type t = {
  stride : int; (* slab words per slot = Layout.words_per_line *)
  mutable apply_at : int array;
  mutable line : int array;
  mutable len : int array; (* words captured; < stride only at heap end *)
  mutable data : int array; (* capacity * stride slab *)
  mutable count : int;
  mutable order : int array; (* scratch for the settle/apply index sort *)
}

let create ~stride () =
  let cap = 64 in
  {
    stride;
    apply_at = Array.make cap 0;
    line = Array.make cap 0;
    len = Array.make cap 0;
    data = Array.make (cap * stride) 0;
    count = 0;
    order = Array.make cap 0;
  }

let count t = t.count
let clear t = t.count <- 0

let capacity t = Array.length t.apply_at

let grow t =
  let cap = Array.length t.apply_at in
  let bigger = 2 * cap in
  let extend src pad = Array.append src (Array.make pad 0) in
  t.apply_at <- extend t.apply_at cap;
  t.line <- extend t.line cap;
  t.len <- extend t.len cap;
  t.data <- extend t.data (cap * t.stride);
  t.order <- Array.make bigger 0

(* Capture [len] words of [src] starting at [base] for [line], to be
   applied to the media image once the controller services the entry at
   [apply_at]. *)
let add t ~apply_at ~line ~src ~base ~len =
  if t.count = capacity t then grow t;
  let i = t.count in
  t.apply_at.(i) <- apply_at;
  t.line.(i) <- line;
  t.len.(i) <- len;
  Pheap.blit_to_array src base t.data (i * t.stride) len;
  t.count <- i + 1

(* Sort slot indices [0, count) by (apply_at, insertion order) — the
   controller's write order, identical to the old list's
   (apply_at, seq) sort. *)
let sorted_order t =
  let ord = t.order in
  for i = 0 to t.count - 1 do
    ord.(i) <- i
  done;
  let sub = Array.sub ord 0 t.count in
  Array.sort
    (fun i j -> if t.apply_at.(i) <> t.apply_at.(j) then compare t.apply_at.(i) t.apply_at.(j) else compare i j)
    sub;
  Array.blit sub 0 ord 0 t.count;
  ord

let apply_slot t image i =
  Pheap.blit_of_array image (t.line.(i) * t.stride) t.data (i * t.stride) t.len.(i)

(* Apply every entry serviced strictly before [cutoff] to [image],
   oldest first, leaving the arena untouched (crash-image
   materialization replays it several times). *)
let apply ~cutoff t image =
  let ord = sorted_order t in
  for k = 0 to t.count - 1 do
    let i = ord.(k) in
    if t.apply_at.(i) < cutoff then apply_slot t image i
  done

(* Apply entries already serviced at [now] and compact the still
   in-flight suffix in place, preserving insertion order (so slot index
   keeps acting as the sequence number). *)
let settle t ~now image =
  let ord = sorted_order t in
  for k = 0 to t.count - 1 do
    let i = ord.(k) in
    if t.apply_at.(i) <= now then apply_slot t image i
  done;
  let kept = ref 0 in
  for i = 0 to t.count - 1 do
    if t.apply_at.(i) > now then begin
      let j = !kept in
      if j <> i then begin
        t.apply_at.(j) <- t.apply_at.(i);
        t.line.(j) <- t.line.(i);
        t.len.(j) <- t.len.(i);
        Array.blit t.data (i * t.stride) t.data (j * t.stride) t.len.(i)
      end;
      incr kept
    end
  done;
  t.count <- !kept

(* Drop every entry whose line satisfies [touched] — durable-publish
   hardening supersedes whatever an earlier eviction captured. *)
let remove_lines t touched =
  let kept = ref 0 in
  for i = 0 to t.count - 1 do
    if not (touched t.line.(i)) then begin
      let j = !kept in
      if j <> i then begin
        t.apply_at.(j) <- t.apply_at.(i);
        t.line.(j) <- t.line.(i);
        t.len.(j) <- t.len.(i);
        Array.blit t.data (i * t.stride) t.data (j * t.stride) t.len.(i)
      end;
      incr kept
    end
  done;
  t.count <- !kept

(* Test-facing view, insertion order; allocates freely. *)
let to_list t =
  List.init t.count (fun i ->
      (t.apply_at.(i), t.line.(i), Array.sub t.data (i * t.stride) t.len.(i)))
