(** Bounded event trace for the simulated machine.

    A ring buffer of the most recent machine events (loads, stores,
    flushes, fences, crashes), recorded with virtual timestamps and
    thread ids.  Debugging aid: when a crash-consistency test fails,
    the tail of the trace shows exactly which persistent operations
    raced the power failure.  Disabled by default; recording costs one
    array write per event when enabled. *)

type kind =
  | Load of int
  | Store of int
  | Clwb of int
  | Sfence
  | Publish of int  (** HTM commit of n words *)
  | Crash

type event = { at_ns : int; tid : int; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events. *)

val record : t -> at_ns:int -> tid:int -> kind -> unit

val recorded : t -> int
(** Total events ever recorded (may exceed capacity). *)

val tail : t -> event list
(** Up to [capacity] most recent events, oldest first. *)

val find : t -> (event -> bool) -> event option
(** Most recent retained event satisfying the predicate. *)

val crash_points : ?halo:int -> t -> int list
(** Candidate crash instants harvested from the retained events: for
    every state-changing event (store, clwb, sfence, publish) at time
    [t], both [t] itself (power fails just before the event executes)
    and [t + halo] (just after), sorted, deduplicated, all positive.
    Loads are skipped — crashing around them adds no new
    persistent-state interleavings.  Default [halo] is 1. *)

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
(** Print the retained tail, one event per line. *)

val clear : t -> unit
