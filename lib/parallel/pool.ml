type 'a slot =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run_serial tasks = List.map (fun f -> f ()) tasks

let run ?jobs tasks =
  let n = List.length tasks in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Pool.run: jobs must be >= 1"
    | Some j -> min j n
    | None -> min (default_jobs ()) n
  in
  if jobs <= 1 then run_serial tasks
  else begin
    let tasks = Array.of_list tasks in
    let results = Array.make n Pending in
    (* Workers claim indices in submission order; each slot is written
       by exactly one domain and read only after the joins below, so
       the join is the synchronisation point. *)
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && not (Atomic.get failed) then begin
        (match tasks.(i) () with
        | v -> results.(i) <- Done v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          results.(i) <- Failed (e, bt);
          Atomic.set failed true);
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The caller is the [jobs]-th worker. *)
    let caller_exn = match worker () with () -> None | exception e -> Some e in
    List.iter Domain.join domains;
    (match caller_exn with
    (* A raise that escaped a worker body can only come from the pool's
       own bookkeeping; re-raise rather than mask it. *)
    | Some e -> raise e
    | None -> ());
    if Atomic.get failed then begin
      Array.iter
        (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
        results
    end;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Failed _ -> assert false (* unreachable: failures re-raised above *))
         results)
  end

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)
