type 'a slot =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Four claims per worker: coarse enough that the fetch-and-add and the
   cache-line ping-pong on [next] vanish from the per-cell cost, fine
   enough that a straggler cell can't leave the other workers idle for
   more than ~a quarter of the batch. *)
let default_chunk ~n ~jobs = max 1 (n / max 1 (jobs * 4))

let run_serial tasks = List.map (fun f -> f ()) tasks

let run ?jobs ?chunk tasks =
  let n = List.length tasks in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Pool.run: jobs must be >= 1"
    | Some j -> min j n
    | None -> min (default_jobs ()) n
  in
  let chunk =
    match chunk with
    | Some c when c < 1 -> invalid_arg "Pool.run: chunk must be >= 1"
    | Some c -> c
    | None -> default_chunk ~n ~jobs
  in
  if jobs <= 1 then run_serial tasks
  else begin
    let tasks = Array.of_list tasks in
    let results = Array.make n Pending in
    (* Workers claim [chunk]-sized index batches in submission order;
       each slot is written by exactly one domain and read only after
       the joins below, so the join is the synchronisation point. *)
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let rec worker () =
      let i0 = Atomic.fetch_and_add next chunk in
      if i0 < n then begin
        let hi = min n (i0 + chunk) in
        let i = ref i0 in
        while !i < hi && not (Atomic.get failed) do
          (match tasks.(!i) () with
          | v -> results.(!i) <- Done v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            results.(!i) <- Failed (e, bt);
            Atomic.set failed true);
          incr i
        done;
        if not (Atomic.get failed) then worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The caller is the [jobs]-th worker. *)
    let caller_exn = match worker () with () -> None | exception e -> Some e in
    List.iter Domain.join domains;
    (match caller_exn with
    (* A raise that escaped a worker body can only come from the pool's
       own bookkeeping; re-raise rather than mask it. *)
    | Some e -> raise e
    | None -> ());
    if Atomic.get failed then begin
      Array.iter
        (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
        results
    end;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Failed _ -> assert false (* unreachable: failures re-raised above *))
         results)
  end

let map ?jobs ?chunk f xs = run ?jobs ?chunk (List.map (fun x () -> f x) xs)
