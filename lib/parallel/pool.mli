(** Bounded worker pool over OCaml domains.

    Fans a batch of independent tasks out across [jobs] domains
    (including the calling one) and reassembles the results in
    submission order, so a deterministic batch produces byte-identical
    output no matter how many workers ran it or how the OS scheduled
    them.  Tasks must not share mutable state: each experiment cell
    builds its own simulator, PTM and RNGs from an explicit seed.

    With [jobs = 1] (or a single task) everything runs inline in the
    calling domain — no domain is spawned, so the serial path is
    exactly the pre-pool behaviour. *)

val default_jobs : unit -> int
(** Number of workers used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()], i.e. the cores available to
    this process. *)

val default_chunk : n:int -> jobs:int -> int
(** Batch size used when [?chunk] is omitted: [max 1 (n / (jobs * 4))],
    i.e. roughly four claims per worker — coarse enough to amortise the
    shared-counter traffic, fine enough to keep workers busy when cell
    costs are uneven. *)

val run : ?jobs:int -> ?chunk:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs tasks] executes every task and returns their results in
    submission order.  At most [max 1 jobs] tasks run concurrently
    (clamped to the task count; the calling domain counts as one
    worker).  Workers claim contiguous batches of [chunk] tasks per
    round-trip on the shared counter (default {!default_chunk}) instead
    of one task at a time; batching only changes which domain runs a
    task, never the submission-order reassembly.

    If a task raises, the exception of the lowest-indexed task that
    recorded a failure is re-raised in the caller (with its backtrace)
    after all started tasks finish; tasks not yet started are
    skipped. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)
