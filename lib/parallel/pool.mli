(** Bounded worker pool over OCaml domains.

    Fans a batch of independent tasks out across [jobs] domains
    (including the calling one) and reassembles the results in
    submission order, so a deterministic batch produces byte-identical
    output no matter how many workers ran it or how the OS scheduled
    them.  Tasks must not share mutable state: each experiment cell
    builds its own simulator, PTM and RNGs from an explicit seed.

    With [jobs = 1] (or a single task) everything runs inline in the
    calling domain — no domain is spawned, so the serial path is
    exactly the pre-pool behaviour. *)

val default_jobs : unit -> int
(** Number of workers used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()], i.e. the cores available to
    this process. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs tasks] executes every task and returns their results in
    submission order.  At most [max 1 jobs] tasks run concurrently
    (clamped to the task count; the calling domain counts as one
    worker).

    If a task raises, the exception of the lowest-indexed failing task
    is re-raised in the caller (with its backtrace) after all started
    tasks finish; tasks not yet started are skipped.  Workers claim
    tasks in submission order, so which exception propagates is
    deterministic. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run ~jobs (List.map (fun x () -> f x) xs)]. *)
