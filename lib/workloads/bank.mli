(** Bank-transfer microworkload (the classic crash-consistency kernel,
    and the telemetry reference workload).

    Each transaction reads two uniformly chosen accounts and moves a
    small amount between them: 2 reads + 2 writes, so under undo
    logging every transaction pays O(W)=2 per-write fence pairs while
    redo logging pays its O(1) commit-time fences — the fence-cost gap
    the phase profiler measures directly. *)

val accounts : int
val initial_balance : int

val total : Pstm.Ptm.t -> int
(** Transactional sum of all balances — equals {!expected_total} at
    every consistent point (transfers conserve money). *)

val expected_total : int

val spec : Driver.spec
