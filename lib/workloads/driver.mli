(** Experiment driver: runs a workload on a simulated machine under a
    chosen durability model, PTM algorithm and thread count, for a
    fixed span of virtual time, and reports the paper's metrics.

    Runs are deterministic: the same (spec, model, algorithm, threads,
    seed) always yields the same numbers. *)

type spec = {
  name : string;
  heap_words : int;
  setup : Pstm.Ptm.t -> unit;
      (** untimed population phase, run before the clock starts *)
  make_op : Pstm.Ptm.t -> tid:int -> rng:Repro_util.Rng.t -> (unit -> unit);
      (** per-thread operation factory; the thunk runs one transaction
          (plus any modeled inter-transaction work) per call *)
}

type result = {
  workload : string;
  model : string;
  algorithm : string;
  threads : int;
  elapsed_ns : int;  (** virtual time actually covered *)
  commits : int;
  aborts : int;
  txs_per_sec : float;
  commits_per_abort : float;  (** [infinity] when no aborts *)
  max_log_lines : int;  (** §IV-B redo-log footprint, in cache lines *)
  latency : Repro_util.Histogram.t;
      (** per-operation (transaction + modeled inter-transaction work)
          latency distribution, in virtual nanoseconds *)
  sim : Memsim.Sim.Stats.t;
  telemetry : Telemetry.capture option;
      (** present iff the run was started with [?telemetry] *)
}

val default_seed : int

val run :
  ?duration_ns:int ->
  ?flush_timing:Pstm.Ptm.flush_timing ->
  ?coalesce:bool ->
  ?seed:int ->
  ?pdram_cache_bytes:int ->
  ?orec_bits:int ->
  ?monitor:int * (Memsim.Sim.t -> unit) ->
  ?telemetry:Telemetry.config ->
  ?lat:Memsim.Config.latency ->
  ?nvm_channels:int ->
  model:Memsim.Config.model ->
  algorithm:Pstm.Ptm.algorithm ->
  threads:int ->
  spec ->
  result
(** Default duration 3 ms of virtual time.  Media tracking is disabled
    (benchmarks never crash), halving memory.

    [?coalesce] (default [true]) selects the PTM's coalesced commit
    path; pass [false] for the naive per-entry flush/fence discipline
    (A/B runs; see {!Pstm.Ptm.create}).

    [?telemetry] attaches a {!Telemetry.capture} after setup (phase
    profiler, machine trace, and — when [sample_interval_ns > 0] — a
    sampling monitor thread spawned after the workers).  Telemetry
    observes clocks without advancing them: with sampling disabled the
    run's virtual timeline is bit-identical to an uninstrumented run. *)

val throughput_row : result -> string list
(** [workload; model; algorithm; threads; tx/s; ratio] cells for tables.
    Non-finite values render as ["-"]. *)

val run_meta : result -> seed:int -> duration_ns:int -> Telemetry.Export.run_meta
(** Export metadata describing this run, for {!Telemetry.dump}. *)
