type spec = {
  name : string;
  heap_words : int;
  setup : Pstm.Ptm.t -> unit;
  make_op : Pstm.Ptm.t -> tid:int -> rng:Repro_util.Rng.t -> (unit -> unit);
}

type result = {
  workload : string;
  model : string;
  algorithm : string;
  threads : int;
  elapsed_ns : int;
  commits : int;
  aborts : int;
  txs_per_sec : float;
  commits_per_abort : float;
  max_log_lines : int;
  latency : Repro_util.Histogram.t;  (** per-operation latency, virtual ns *)
  sim : Memsim.Sim.Stats.t;
  telemetry : Telemetry.capture option;
}

let default_seed = 0xBE5C

let run ?(duration_ns = 3_000_000) ?(flush_timing = Pstm.Ptm.At_commit) ?(coalesce = true)
    ?(seed = default_seed) ?pdram_cache_bytes ?(orec_bits = 20) ?monitor ?telemetry ?lat
    ?nvm_channels ~model ~algorithm ~threads spec =
  let cfg =
    Memsim.Config.make ?lat ?nvm_channels ?pdram_cache_bytes ~heap_words:spec.heap_words
      ~track_media:false model
  in
  let sim = Memsim.Sim.create cfg in
  let m = Memsim.Sim.machine sim in
  (* All of the run's randomness is rooted in [seed]: the per-thread
     workload streams split off [root_rng] below, and the PTM's backoff
     streams derive from the same seed.  No process-global generator is
     involved, so concurrent runs on other domains cannot perturb this
     one. *)
  let ptm =
    Pstm.Ptm.create ~algorithm ~flush_timing ~coalesce ~orec_bits
      ~max_threads:(max (threads + 1) 32) ~rng_seed:seed m
  in
  spec.setup ptm;
  Memsim.Sim.reset_timing sim;
  Pstm.Ptm.Stats.reset ptm;
  (* Attach telemetry after setup so the streams cover exactly the
     measured phase.  Pure observation: no virtual time is added. *)
  let capture =
    match telemetry with None -> None | Some config -> Some (Telemetry.attach ~config sim ptm)
  in
  let root_rng = Repro_util.Rng.create seed in
  let latency = Repro_util.Histogram.create () in
  for tid = 0 to threads - 1 do
    let rng = Repro_util.Rng.split root_rng in
    ignore
      (Memsim.Sim.spawn sim (fun () ->
           let op = spec.make_op ptm ~tid ~rng in
           (* [Sim.now] reads the virtual clock as an int; the machine's
              [now_ns] facade returns a float and would box two of them
              per operation. *)
           let rec loop () =
             let start = Memsim.Sim.now sim in
             if start < duration_ns then begin
               op ();
               Repro_util.Histogram.record latency (Memsim.Sim.now sim - start);
               loop ()
             end
           in
           loop ()))
  done;
  (* Optional sampling thread (spawned last, so workers keep the dense
     thread ids the workloads key home warehouses etc. off): invoked
     every [interval] of virtual time, e.g. to record persistence debt
     for the energy model. *)
  (match monitor with
  | None -> ()
  | Some (interval_ns, sample) ->
    ignore
      (Memsim.Sim.spawn sim (fun () ->
           while Memsim.Sim.now sim < duration_ns do
             m.Machine.pause interval_ns;
             sample sim
           done)));
  (* Telemetry sampler: a second monitor thread, also spawned after the
     workers (dense worker tids are preserved). *)
  (match capture with
  | Some cap when (Telemetry.config cap).Telemetry.sample_interval_ns > 0 ->
    let interval_ns = (Telemetry.config cap).Telemetry.sample_interval_ns in
    ignore
      (Memsim.Sim.spawn sim (fun () ->
           while Memsim.Sim.now sim < duration_ns do
             m.Machine.pause interval_ns;
             Telemetry.sample cap
           done))
  | Some _ | None -> ());
  Memsim.Sim.run sim;
  let elapsed_ns = max (Memsim.Sim.now sim) 1 in
  let stats = Pstm.Ptm.Stats.get ptm in
  {
    workload = spec.name;
    model = model.Memsim.Config.model_name;
    algorithm = Pstm.Ptm.algorithm_name algorithm;
    threads;
    elapsed_ns;
    commits = stats.Pstm.Ptm.Stats.commits;
    aborts = stats.Pstm.Ptm.Stats.aborts;
    txs_per_sec = float_of_int stats.Pstm.Ptm.Stats.commits /. (float_of_int elapsed_ns *. 1e-9);
    commits_per_abort = Pstm.Ptm.Stats.commits_per_abort stats;
    max_log_lines = stats.Pstm.Ptm.Stats.max_log_lines;
    latency;
    sim = Memsim.Sim.Stats.get sim;
    telemetry = capture;
  }

let throughput_row r =
  [
    r.workload;
    r.model;
    r.algorithm;
    string_of_int r.threads;
    Repro_util.Table.cell_f (r.txs_per_sec /. 1e6);
    (* cell_f renders non-finite ratios (no aborts, or no samples at
       all) as "-". *)
    Repro_util.Table.cell_f r.commits_per_abort;
  ]

let run_meta r ~seed ~duration_ns =
  {
    Telemetry.Export.workload = r.workload;
    model = r.model;
    algorithm = r.algorithm;
    threads = r.threads;
    seed;
    duration_ns;
  }
