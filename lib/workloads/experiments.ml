module Table = Repro_util.Table
module Config = Memsim.Config
module Ptm = Pstm.Ptm
module Pool = Parallel.Pool

type outcome = {
  tables : Table.t list;
  results : Driver.result list;
  extra : (string * Bench_json.json) list;  (* experiment-specific JSON spliced into BENCH_*.json *)
}

let threads_axis = [ 1; 2; 4; 8; 16; 32 ]

let duration quick = if quick then 500_000 else 3_000_000

(* Every grid experiment is two-phase: phase 1 enumerates its cells —
   independent, deterministic [Driver.run] closures — in submission
   order; the domain pool executes them with up to [jobs] workers;
   phase 2 replays the same iteration structure, consuming pooled
   results through a cursor to build the tables.  Because the pool
   returns results in submission order, the output is byte-identical
   to a serial run regardless of [jobs]. *)
let dispatch ?jobs cells =
  let results = ref (Pool.run ?jobs cells) in
  fun () ->
    match !results with
    | [] -> invalid_arg "Experiments: cell cursor exhausted"
    | r :: rest ->
      results := rest;
      r

(* The eight Fig 3/4 series: placement x durability x logging. *)
let fig3_series =
  [
    ("DRAM_ADR_R", Config.dram_adr, Ptm.Redo);
    ("DRAM_ADR_U", Config.dram_adr, Ptm.Undo);
    ("DRAM_eADR_R", Config.dram_eadr, Ptm.Redo);
    ("DRAM_eADR_U", Config.dram_eadr, Ptm.Undo);
    ("Optane_ADR_R", Config.optane_adr, Ptm.Redo);
    ("Optane_ADR_U", Config.optane_adr, Ptm.Undo);
    ("Optane_eADR_R", Config.optane_eadr, Ptm.Redo);
    ("Optane_eADR_U", Config.optane_eadr, Ptm.Undo);
  ]

(* The five Fig 6/7 series (durability models; redo unless noted). *)
let fig6_series =
  [
    ("DRAM", Config.dram_eadr, Ptm.Redo);
    ("eADR", Config.optane_eadr, Ptm.Redo);
    ("PDRAM_R", Config.pdram, Ptm.Redo);
    ("PDRAM_U", Config.pdram, Ptm.Undo);
    ("PDRAM-Lite", Config.pdram_lite, Ptm.Redo);
  ]

let main_panels () =
  [
    Btree_bench.insert_only;
    Btree_bench.mixed;
    Tpcc.spec Tpcc.Btree;
    Tpcc.spec Tpcc.Hash;
    Vacation.spec Vacation.Low;
    Vacation.spec Vacation.High;
  ]

(* One throughput-vs-threads table per workload panel. *)
let sweep ?jobs ~quick ~title ~series specs =
  let dur = duration quick in
  let cells =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun (_, model, algorithm) ->
            List.map
              (fun threads () -> Driver.run ~duration_ns:dur ~model ~algorithm ~threads spec)
              threads_axis)
          series)
      specs
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  let tables =
    List.map
      (fun spec ->
        let t =
          Table.create
            ~title:(Printf.sprintf "%s — %s (M tx/s by thread count)" title spec.Driver.name)
            ~header:("series" :: List.map string_of_int threads_axis)
        in
        List.iter
          (fun (label, _, _) ->
            let cells =
              List.map
                (fun _threads ->
                  let r = next () in
                  all_results := r :: !all_results;
                  Table.cell_f (r.Driver.txs_per_sec /. 1e6))
                threads_axis
            in
            Table.add_row t (label :: cells))
          series;
        t)
      specs
  in
  { tables; results = List.rev !all_results; extra = [] }

let fig3 ?(quick = false) ?jobs () =
  sweep ?jobs ~quick ~title:"Fig 3" ~series:fig3_series (main_panels ())

let fig4 ?(quick = false) ?jobs () =
  sweep ?jobs ~quick ~title:"Fig 4" ~series:fig3_series [ Tatp.spec ]

(* One panel of Fig 3 — the unit the parallel byte-identity gate and
   the speedup self-benchmark sweep, so they stay quick-sized. *)
let fig3_panel ?(quick = false) ?jobs spec =
  sweep ?jobs ~quick ~title:"Fig 3" ~series:fig3_series [ spec ]

(* Tables I/II: commits-per-abort for TPCC (hash), one row per
   placement/durability pair, one column per thread count >= 2. *)
let ratio_table ?jobs ~quick ~title algorithm =
  let dur = duration quick in
  let rows =
    [
      ("DRAM_ADR", Config.dram_adr);
      ("DRAM_eADR", Config.dram_eadr);
      ("Optane_ADR", Config.optane_adr);
      ("Optane_eADR", Config.optane_eadr);
    ]
  in
  let threads = List.filter (fun n -> n > 1) threads_axis in
  let t =
    Table.create
      ~title:(Printf.sprintf "%s — commits per abort, TPCC (hash), %s" title
                (Ptm.algorithm_name algorithm))
      ~header:("config" :: List.map string_of_int threads)
  in
  let cells =
    List.concat_map
      (fun (_, model) ->
        List.map
          (fun n () ->
            Driver.run ~duration_ns:dur ~model ~algorithm ~threads:n (Tpcc.spec Tpcc.Hash))
          threads)
      rows
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun (label, _) ->
      let cells =
        List.map
          (fun _n ->
            let r = next () in
            all_results := r :: !all_results;
            if r.Driver.commits_per_abort = infinity then "-"
            else Table.cell_f r.Driver.commits_per_abort)
          threads
      in
      Table.add_row t (label :: cells))
    rows;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

let table1 ?(quick = false) ?jobs () = ratio_table ?jobs ~quick ~title:"Table I" Ptm.Redo

let table2 ?(quick = false) ?jobs () = ratio_table ?jobs ~quick ~title:"Table II" Ptm.Undo

(* Table III: throughput gain of the (incorrect) flush-without-fence
   variant over correct ADR.  Measured at 4 threads: past the write
   bandwidth saturation point (~4 threads on Optane) both variants are
   WPQ-throughput-bound and the fence gain disappears — the paper's
   machine shows its gains below saturation. *)
let table3 ?(quick = false) ?jobs () =
  let dur = duration quick in
  let specs =
    [ Tpcc.spec Tpcc.Hash; Tatp.spec; Vacation.spec Vacation.Low; Vacation.spec Vacation.High ]
  in
  let t =
    Table.create ~title:"Table III — speedup from removing fences (ADR, 4 threads)"
      ~header:("logging" :: List.map (fun s -> s.Driver.name) specs)
  in
  let cells =
    List.concat_map
      (fun algorithm ->
        List.concat_map
          (fun spec ->
            [
              (fun () ->
                Driver.run ~duration_ns:dur ~model:Config.optane_adr ~algorithm ~threads:4 spec);
              (fun () ->
                Driver.run ~duration_ns:dur ~model:Config.optane_adr_nofence ~algorithm
                  ~threads:4 spec);
            ])
          specs)
      [ Ptm.Undo; Ptm.Redo ]
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun algorithm ->
      let cells =
        List.map
          (fun _spec ->
            let base = next () in
            let nofence = next () in
            all_results := nofence :: base :: !all_results;
            let pct = 100.0 *. ((nofence.Driver.txs_per_sec /. base.Driver.txs_per_sec) -. 1.0) in
            Printf.sprintf "%+.0f%%" pct)
          specs
      in
      Table.add_row t (Ptm.algorithm_name algorithm :: cells))
    [ Ptm.Undo; Ptm.Redo ];
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

let fig6 ?(quick = false) ?jobs () =
  sweep ?jobs ~quick ~title:"Fig 6" ~series:fig6_series (main_panels ())

let fig7 ?(quick = false) ?jobs () =
  sweep ?jobs ~quick ~title:"Fig 7" ~series:fig6_series [ Tatp.spec ]

(* Fig 8: memcached, one worker, sweeping the working set across the
   L3 (32 KB) and the PDRAM DRAM-cache (96 MB) boundaries.  Sizes are
   the paper's GB values scaled by 2^10 to MB. *)
let fig8_sizes =
  [
    ("32KB", 32 * 1024);
    ("32MB", 32 * 1024 * 1024);
    ("96MB", 96 * 1024 * 1024);
    ("160MB", 160 * 1024 * 1024);
    ("224MB", 224 * 1024 * 1024);
    ("288MB", 288 * 1024 * 1024);
    ("320MB", 320 * 1024 * 1024);
  ]

let fig8_series =
  [
    ("DRAM_R", Config.dram_eadr, Ptm.Redo);
    ("ADR_R", Config.optane_adr, Ptm.Redo);
    ("ADR_U", Config.optane_adr, Ptm.Undo);
    ("eADR_R", Config.optane_eadr, Ptm.Redo);
    ("eADR_U", Config.optane_eadr, Ptm.Undo);
    ("PDRAM", Config.pdram, Ptm.Redo);
    ("PDRAM-Lite", Config.pdram_lite, Ptm.Redo);
  ]

let fig8 ?(quick = false) ?jobs () =
  let dur = duration quick in
  let sizes = if quick then [ List.nth fig8_sizes 0; List.nth fig8_sizes 1 ] else fig8_sizes in
  let dram_capacity = 96 * 1024 * 1024 in
  (* The paper cannot run the DRAM baseline beyond DRAM; those cells
     render "n/a" and are never staged. *)
  let feasible (model : Config.model) bytes =
    not (model.Config.data_media = Config.Dram && bytes > dram_capacity)
  in
  let t =
    Table.create ~title:"Fig 8 — memcached, 1 worker (k req/s by working set)"
      ~header:("series" :: List.map fst sizes)
  in
  let cells =
    List.concat_map
      (fun (_, model, algorithm) ->
        List.filter_map
          (fun (_, bytes) ->
            if feasible model bytes then
              Some
                (fun () ->
                  let spec = Memcached.spec ~items:(Memcached.items_for_bytes bytes) in
                  Driver.run ~duration_ns:dur ~model ~algorithm ~threads:1 spec)
            else None)
          sizes)
      fig8_series
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun (label, model, _) ->
      let cells =
        List.map
          (fun (_, bytes) ->
            if not (feasible model bytes) then "n/a"
            else begin
              let r = next () in
              all_results := r :: !all_results;
              Table.cell_f (r.Driver.txs_per_sec /. 1e3)
            end)
          sizes
      in
      Table.add_row t (label :: cells))
    fig8_series;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* §IV-B: the compactness of redo logs that motivates PDRAM-Lite. *)
let log_footprint ?(quick = false) ?jobs () =
  let dur = duration quick in
  let t =
    Table.create ~title:"Redo-log footprint (max cache lines per transaction)"
      ~header:[ "workload"; "max lines"; "paper" ]
  in
  let rows =
    [
      (Vacation.spec Vacation.Low, "37 (\"never more than 37 contiguous lines\")");
      (Tpcc.spec Tpcc.Hash, "36 (\"at most 36 cache lines\")");
      (Tatp.spec, "(small)");
    ]
  in
  let next =
    dispatch ?jobs
      (List.map
         (fun (spec, _) () ->
           Driver.run ~duration_ns:dur ~model:Config.optane_eadr ~algorithm:Ptm.Redo ~threads:8
             spec)
         rows)
  in
  let all_results = ref [] in
  List.iter
    (fun (spec, paper) ->
      let r = next () in
      all_results := r :: !all_results;
      Table.add_row t [ spec.Driver.name; string_of_int r.Driver.max_log_lines; paper ])
    rows;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* §III-B: incremental vs commit-time flushing of the redo log. *)
let flush_timing_ablation ?(quick = false) ?jobs () =
  let dur = duration quick in
  let t =
    Table.create ~title:"Ablation — clwb timing of the redo log (ADR, M tx/s)"
      ~header:[ "workload"; "threads"; "at-commit"; "incremental"; "delta" ]
  in
  let specs = [ Tpcc.spec Tpcc.Hash; Tatp.spec ] in
  let thread_points = [ 1; 8 ] in
  let cells =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun threads ->
            List.map
              (fun flush_timing () ->
                Driver.run ~duration_ns:dur ~flush_timing ~model:Config.optane_adr
                  ~algorithm:Ptm.Redo ~threads spec)
              [ Ptm.At_commit; Ptm.Incremental ])
          thread_points)
      specs
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun threads ->
          let a = next () in
          let b = next () in
          all_results := b :: a :: !all_results;
          Table.add_row t
            [
              spec.Driver.name;
              string_of_int threads;
              Table.cell_f (a.Driver.txs_per_sec /. 1e6);
              Table.cell_f (b.Driver.txs_per_sec /. 1e6);
              Printf.sprintf "%+.1f%%"
                (100.0 *. ((b.Driver.txs_per_sec /. a.Driver.txs_per_sec) -. 1.0));
            ])
        thread_points)
    specs;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* Design-choice ablation: orec-table size vs false conflicts. *)
let orec_ablation ?(quick = false) ?jobs () =
  let dur = duration quick in
  let t =
    Table.create ~title:"Ablation — ownership-record table size (TPCC hash, redo, 16 threads)"
      ~header:[ "orec bits"; "M tx/s"; "commits/abort" ]
  in
  let sizes = [ 10; 12; 14; 16; 18; 20 ] in
  let next =
    dispatch ?jobs
      (List.map
         (fun bits () ->
           Driver.run ~duration_ns:dur ~orec_bits:bits ~model:Config.optane_eadr
             ~algorithm:Ptm.Redo ~threads:16 (Tpcc.spec Tpcc.Hash))
         sizes)
  in
  let all_results = ref [] in
  List.iter
    (fun bits ->
      let r = next () in
      all_results := r :: !all_results;
      Table.add_row t
        [
          string_of_int bits;
          Table.cell_f (r.Driver.txs_per_sec /. 1e6);
          (if r.Driver.commits_per_abort = infinity then "-"
           else Table.cell_f r.Driver.commits_per_abort);
        ])
    sizes;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* ---------- extensions beyond the paper's evaluation ---------- *)

(* §V future work: "is HTM a viable strategy for accelerating PTM?  It
   might work with eADR and PDRAM."  Compare the TSX-style mode against
   the software paths under the flush-free domains. *)
let htm ?(quick = false) ?jobs () =
  let dur = duration quick in
  let series =
    [
      ("eADR_redo", Config.optane_eadr, Ptm.Redo);
      ("eADR_undo", Config.optane_eadr, Ptm.Undo);
      ("eADR_htm", Config.optane_eadr, Ptm.Htm);
      ("PDRAM_redo", Config.pdram, Ptm.Redo);
      ("PDRAM_htm", Config.pdram, Ptm.Htm);
      ("Transient_htm", Config.transient_cache, Ptm.Htm);
      ("HTMcommit_htm", Config.htm_commit, Ptm.Htm);
      ("HTMcommit_redo", Config.htm_commit, Ptm.Redo);
    ]
  in
  sweep ?jobs ~quick:(dur < 3_000_000) ~title:"Extension — HTM under eADR/PDRAM" ~series
    [ Tpcc.spec Tpcc.Hash; Btree_bench.insert_only; Tatp.spec ]

(* §IV-C's cost argument: PDRAM's mechanics are Memory Mode's; how much
   performance does persistence cost relative to the non-persistent
   cache, and where do both sit against eADR? *)
let memory_mode ?(quick = false) ?jobs () =
  let series =
    [
      ("MemoryMode", Config.memory_mode, Ptm.Redo);
      ("PDRAM", Config.pdram, Ptm.Redo);
      ("eADR", Config.optane_eadr, Ptm.Redo);
      ("DRAM", Config.dram_eadr, Ptm.Redo);
    ]
  in
  sweep ?jobs ~quick ~title:"Extension — PDRAM vs Memory Mode" ~series
    [ Tatp.spec; Tpcc.spec Tpcc.Hash ]

(* §V future work: reserve-power requirements per durability domain.
   A monitor thread samples the persistence debt every 5 us; the table
   reports the worst case and the derived reserve energy.  The monitor
   refs live inside each cell, so cells stay shared-nothing. *)
let reserve_energy ?(quick = false) ?jobs () =
  let dur = duration quick in
  let t =
    Repro_util.Table.create
      ~title:"Extension — reserve-power requirements (TPCC hash, redo, 8 threads)"
      ~header:
        [ "model"; "max WPQ lines"; "max dirty L3"; "max dirty pages"; "max log lines";
          "reserve energy (uJ)" ]
  in
  let models =
    [
      Config.optane_adr; Config.optane_eadr; Config.transient_cache; Config.pdram_lite;
      Config.pdram;
    ]
  in
  let cells =
    List.map
      (fun model () ->
        let max_debt = ref { Memsim.Sim.Debt.wpq_lines = 0; dirty_l3_lines = 0;
                             dirty_dram_pages = 0; armed_log_lines = 0 } in
        let max_energy = ref 0.0 in
        let sample sim =
          let d = Memsim.Sim.Debt.sample sim in
          let e = Memsim.Sim.Debt.reserve_energy_nj sim d in
          if e > !max_energy then begin
            max_energy := e;
            max_debt := d
          end
        in
        let r =
          Driver.run ~duration_ns:dur ~monitor:(5_000, sample) ~model ~algorithm:Ptm.Redo
            ~threads:8 (Tpcc.spec Tpcc.Hash)
        in
        (r, !max_debt, !max_energy))
      models
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun model ->
      let r, d, max_energy = next () in
      all_results := r :: !all_results;
      Repro_util.Table.add_row t
        [
          model.Config.model_name;
          string_of_int d.Memsim.Sim.Debt.wpq_lines;
          string_of_int d.Memsim.Sim.Debt.dirty_l3_lines;
          string_of_int d.Memsim.Sim.Debt.dirty_dram_pages;
          string_of_int d.Memsim.Sim.Debt.armed_log_lines;
          Repro_util.Table.cell_f (max_energy /. 1e3);
        ])
    models;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* Extension: DIMM interleaving (§III-A: "the Optane memory was split
   across 12 DIMMs, and interleaving was enabled.  This is the
   recommended configuration for maximizing throughput").  Channels
   carry per-DIMM service times; aggregate bandwidth grows with the
   channel count. *)
let dimm_interleave ?(quick = false) ?jobs () =
  let dur = duration quick in
  let channel_axis = [ 1; 2; 3; 6; 12 ] in
  let thread_points = [ 1; 8; 16; 32 ] in
  let t =
    Table.create ~title:"Extension — DIMM interleaving (TPCC hash, redo, ADR, M tx/s)"
      ~header:("channels" :: List.map string_of_int thread_points)
  in
  let base = Config.default_latency in
  (* Per-DIMM service = 6x the aggregate default (the default
     calibration folds ~6 interleaved DIMMs into one channel). *)
  let lat =
    {
      base with
      Config.nvm_wpq_service_ns = base.Config.nvm_wpq_service_ns * 6;
      nvm_read_service_ns = base.Config.nvm_read_service_ns * 6;
    }
  in
  let cells =
    List.concat_map
      (fun channels ->
        List.map
          (fun threads () ->
            Driver.run ~duration_ns:dur ~lat ~nvm_channels:channels ~model:Config.optane_adr
              ~algorithm:Ptm.Redo ~threads (Tpcc.spec Tpcc.Hash))
          thread_points)
      channel_axis
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun channels ->
      let cells =
        List.map
          (fun _threads ->
            let r = next () in
            all_results := r :: !all_results;
            Table.cell_f (r.Driver.txs_per_sec /. 1e6))
          thread_points
      in
      Table.add_row t (string_of_int channels :: cells))
    channel_axis;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* Extension: transaction latency distributions (the paper reports
   only throughput; tail latency is where fences actually hurt). *)
let latency ?(quick = false) ?jobs () =
  let dur = duration quick in
  let t =
    Table.create ~title:"Extension — transaction latency, 8 threads (virtual ns)"
      ~header:[ "workload"; "model"; "p50"; "p95"; "p99"; "mean" ]
  in
  let specs = [ Tatp.spec; Tpcc.spec Tpcc.Hash ] in
  let models = [ Config.dram_eadr; Config.optane_adr; Config.optane_eadr; Config.pdram ] in
  let cells =
    List.concat_map
      (fun spec ->
        List.map
          (fun model () ->
            Driver.run ~duration_ns:dur ~model ~algorithm:Ptm.Redo ~threads:8 spec)
          models)
      specs
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun model ->
          let r = next () in
          all_results := r :: !all_results;
          let h = r.Driver.latency in
          Table.add_row t
            [
              spec.Driver.name;
              model.Config.model_name;
              Table.cell_f (Repro_util.Histogram.percentile h 50.0);
              Table.cell_f (Repro_util.Histogram.percentile h 95.0);
              Table.cell_f (Repro_util.Histogram.percentile h 99.0);
              Table.cell_f (Repro_util.Histogram.mean h);
            ])
        models)
    specs;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* Extension: the YCSB core mixes across the durability models. *)
let ycsb ?(quick = false) ?jobs () =
  let dur = duration quick in
  let mixes = [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ] in
  let series =
    [
      ("ADR_R", Config.optane_adr, Ptm.Redo);
      ("ADR_U", Config.optane_adr, Ptm.Undo);
      ("eADR_R", Config.optane_eadr, Ptm.Redo);
      ("PDRAM_R", Config.pdram, Ptm.Redo);
    ]
  in
  let t =
    Table.create ~title:"Extension — YCSB mixes, 8 threads (M tx/s)"
      ~header:("series" :: List.map (fun m -> "ycsb-" ^ Ycsb.mix_name m) mixes)
  in
  let cells =
    List.concat_map
      (fun (_, model, algorithm) ->
        List.map
          (fun mix () ->
            Driver.run ~duration_ns:dur ~model ~algorithm ~threads:8 (Ycsb.spec mix))
          mixes)
      series
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun (label, _, _) ->
      let cells =
        List.map
          (fun _mix ->
            let r = next () in
            all_results := r :: !all_results;
            Table.cell_f (r.Driver.txs_per_sec /. 1e6))
          mixes
      in
      Table.add_row t (label :: cells))
    series;
  { tables = [ t ]; results = List.rev !all_results; extra = [] }

(* Tentpole extension: what software flush coalescing buys.  The bank
   workload's 2-write transfers under ADR pay the full per-entry
   flush/fence discipline when naive; coalesced commits batch the log
   sweep and dedup data lines behind single fences.  Under eADR no
   flushes are issued at all, so the two modes coincide — the hardware
   already did the optimisation. *)
let scaling ?(quick = false) ?jobs () =
  let dur = duration quick in
  let axis = if quick then [ 1; 2; 4 ] else threads_axis in
  let passive = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 } in
  let series =
    [
      ("ADR_coalesced", Config.optane_adr, true);
      ("ADR_naive", Config.optane_adr, false);
      ("eADR_coalesced", Config.optane_eadr, true);
      ("eADR_naive", Config.optane_eadr, false);
    ]
  in
  let tput =
    Table.create ~title:"Scaling — bank, redo: coalesced vs naive (M tx/s by thread count)"
      ~header:("series" :: List.map string_of_int axis)
  in
  let economy =
    Table.create ~title:"Scaling — flush/fence economy per commit (bank, redo)"
      ~header:
        [ "series"; "threads"; "fences/commit"; "clwbs/commit"; "fences saved"; "clwbs saved" ]
  in
  let cells =
    List.concat_map
      (fun (_, model, coalesce) ->
        List.map
          (fun threads () ->
            Driver.run ~duration_ns:dur ~coalesce ~telemetry:passive ~model ~algorithm:Ptm.Redo
              ~threads Bank.spec)
          axis)
      series
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun (label, _, _) ->
      let cells =
        List.map
          (fun threads ->
            let r = next () in
            all_results := r :: !all_results;
            (match r.Driver.telemetry with
            | None -> ()
            | Some cap ->
              let p = Telemetry.profile cap in
              let sum f =
                List.fold_left (fun acc tid -> acc + f ~tid) 0 (Pstm.Profile.tids p)
              in
              let over_phases f =
                sum (fun ~tid ->
                    List.fold_left (fun acc ph -> acc + f ~tid ph) 0 Pstm.Profile.all_phases)
              in
              let commits = max 1 (sum (Pstm.Profile.commits p)) in
              let per x = Table.cell_f (float_of_int x /. float_of_int commits) in
              Table.add_row economy
                [
                  label;
                  string_of_int threads;
                  per (over_phases (fun ~tid ph -> Pstm.Profile.phase_fences p ~tid ph));
                  per (over_phases (fun ~tid ph -> Pstm.Profile.phase_flushes p ~tid ph));
                  per (sum (Pstm.Profile.fences_saved p));
                  per (sum (Pstm.Profile.flushes_saved p));
                ]);
            Table.cell_f (r.Driver.txs_per_sec /. 1e6))
          axis
      in
      Table.add_row tput (label :: cells))
    series;
  { tables = [ tput; economy ]; results = List.rev !all_results; extra = [] }

(* Extension: the MOD algorithm column.  The same mixed btree/hash op
   stream runs under redo, undo and MOD across every durability domain
   (Mod_bench routes to the shadow structures under [Mod]), with
   passive telemetry summing the profiler's fence/flush counters per
   commit.  The economy table is the paper-style argument in numbers:
   on ADR, MOD commits with at most one fence per op where the logged
   algorithms pay several, and on eADR / transient-cache every
   algorithm's fence count collapses to zero — the crossover where
   MOD keeps paying its path-copying tax but its ordering advantage
   is gone. *)
let algorithms ?(quick = false) ?jobs () =
  let dur = duration quick in
  let threads = if quick then 2 else 4 in
  let passive = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 } in
  let models =
    [
      ("ADR", Config.optane_adr);
      ("eADR", Config.optane_eadr);
      ("transient", Config.transient_cache);
      ("PDRAM", Config.pdram);
      ("PDRAM-Lite", Config.pdram_lite);
    ]
  in
  let algs = [ ("redo", Ptm.Redo); ("undo", Ptm.Undo); ("mod", Ptm.Mod) ] in
  let specs = [ Mod_bench.btree; Mod_bench.hash ] in
  let tput =
    Table.create
      ~title:
        (Printf.sprintf "Algorithms — mixed btree/hash throughput, %d threads (M tx/s)" threads)
      ~header:("workload/algorithm" :: List.map fst models)
  in
  let economy =
    Table.create ~title:"Algorithms — ordering economy per commit (profiler counters)"
      ~header:
        [
          "workload"; "algorithm"; "model"; "fences/commit"; "clwbs/commit"; "fences saved";
          "clwbs saved";
        ]
  in
  let cells =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun (_, algorithm) ->
            List.map
              (fun (_, model) () ->
                Driver.run ~duration_ns:dur ~telemetry:passive ~model ~algorithm ~threads spec)
              models)
          algs)
      specs
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun (alg_name, _) ->
          let row =
            List.map
              (fun (model_name, _) ->
                let r = next () in
                all_results := r :: !all_results;
                (match r.Driver.telemetry with
                | None -> ()
                | Some cap ->
                  let p = Telemetry.profile cap in
                  let sum f =
                    List.fold_left (fun acc tid -> acc + f ~tid) 0 (Pstm.Profile.tids p)
                  in
                  let over_phases f =
                    sum (fun ~tid ->
                        List.fold_left (fun acc ph -> acc + f ~tid ph) 0 Pstm.Profile.all_phases)
                  in
                  let commits = max 1 (sum (Pstm.Profile.commits p)) in
                  let per x = Table.cell_f (float_of_int x /. float_of_int commits) in
                  Table.add_row economy
                    [
                      spec.Driver.name;
                      alg_name;
                      model_name;
                      per (over_phases (fun ~tid ph -> Pstm.Profile.phase_fences p ~tid ph));
                      per (over_phases (fun ~tid ph -> Pstm.Profile.phase_flushes p ~tid ph));
                      per (sum (Pstm.Profile.fences_saved p));
                      per (sum (Pstm.Profile.flushes_saved p));
                    ]);
                Table.cell_f (r.Driver.txs_per_sec /. 1e6))
              models
          in
          Table.add_row tput ((spec.Driver.name ^ "/" ^ alg_name) :: row))
        algs)
    specs;
  { tables = [ tput; economy ]; results = List.rev !all_results; extra = [] }

(* Extension: recovery cost.  Crash a run mid-flight and measure the
   real time Ptm.recover takes as the heap gets fuller.  Stays serial
   regardless of [jobs]: the metric is wall-clock, and concurrent cells
   contending for cores would distort it. *)
let recovery_time ?(quick = false) ?jobs:_ () =
  let t =
    Repro_util.Table.create ~title:"Extension — recovery time after a crash (redo, B+Tree)"
      ~header:[ "pre-crash inserts"; "live blocks"; "recovery (real ms)" ]
  in
  let sizes = if quick then [ 1_000; 4_000 ] else [ 1_000; 10_000; 50_000; 200_000 ] in
  List.iter
    (fun inserts ->
      let heap_words = max (1 lsl 20) (16 * inserts) in
      let cfg = Memsim.Config.make ~heap_words Config.optane_adr in
      let sim = Memsim.Sim.create cfg in
      let m = Memsim.Sim.machine sim in
      let ptm = Ptm.create m in
      let tree = Pstructs.Bptree.create ptm in
      Ptm.root_set ptm 0 (Pstructs.Bptree.descriptor tree);
      for i = 1 to inserts do
        Ptm.atomic ptm (fun tx -> ignore (Pstructs.Bptree.insert tx tree ~key:i ~value:i))
      done;
      Memsim.Sim.persist_all sim;
      (* A short burst of work, then the plug is pulled. *)
      ignore
        (Memsim.Sim.spawn sim (fun () ->
             for i = 1 to 10_000 do
               Ptm.atomic ptm (fun tx ->
                   ignore (Pstructs.Bptree.insert tx tree ~key:(inserts + i) ~value:i))
             done));
      Memsim.Sim.run ~crash_at:100_000 sim;
      let sim' = Memsim.Sim.reboot sim in
      let t0 = Unix.gettimeofday () in
      let ptm' = Ptm.recover (Memsim.Sim.machine sim') in
      let elapsed_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
      let live = List.length (Pmem.Alloc.live_blocks (Ptm.allocator ptm')) in
      Repro_util.Table.add_row t
        [ string_of_int inserts; string_of_int live; Repro_util.Table.cell_f elapsed_ms ])
    sizes;
  { tables = [ t ]; results = []; extra = [] }

(* FAMS: the second crash-consistency API.  Each workload shape runs
   through the PTM (redo, one thread — the honest comparison for
   FAMS's single-writer contract) and through failure-atomic msync at
   line and page granularity, across all five durability domains.  The
   economy table carries the subsystem's headline metric: write
   amplification (bytes journaled per byte logically dirtied), plus
   FAMS-issued fences and flushes per sync. *)

type fams_cell = {
  fc_workload : string;
  fc_model : string;
  fc_series : string;
  fc_tx_per_sec : float;
  fc_write_amp : float;
  fc_fences_per_sync : float;
  fc_flushes_per_sync : float;
  fc_bytes_journaled : int;
  fc_bytes_dirtied : int;
  fc_syncs : int;
}

let fams_cell_json c =
  let f x = if Float.is_finite x then Bench_json.Float x else Bench_json.Null in
  Bench_json.Obj
    [
      ("workload", Bench_json.String c.fc_workload);
      ("model", Bench_json.String c.fc_model);
      ("series", Bench_json.String c.fc_series);
      ("tx_per_sec", f c.fc_tx_per_sec);
      ("write_amp", f c.fc_write_amp);
      ("fences_per_sync", f c.fc_fences_per_sync);
      ("flushes_per_sync", f c.fc_flushes_per_sync);
      ("bytes_journaled", Bench_json.Int c.fc_bytes_journaled);
      ("bytes_dirtied", Bench_json.Int c.fc_bytes_dirtied);
      ("syncs", Bench_json.Int c.fc_syncs);
    ]

let fams_run ?(quick = false) ?jobs () =
  let dur = duration quick in
  let models =
    [
      ("ADR", Config.optane_adr);
      ("eADR", Config.optane_eadr);
      ("transient", Config.transient_cache);
      ("PDRAM", Config.pdram);
      ("PDRAM-Lite", Config.pdram_lite);
    ]
  in
  let series =
    [
      ("ptm-redo", None);
      (Fams_bench.series_name Fams.Line, Some Fams.Line);
      (Fams_bench.series_name Fams.Page, Some Fams.Page);
    ]
  in
  (* Each FAMS shape next to its PTM twin. *)
  let pairs =
    [
      (Fams_bench.bank, Bank.spec);
      (Fams_bench.kv, Mod_bench.hash);
      (Fams_bench.btree, Btree_bench.insert_only);
    ]
  in
  let tput =
    Table.create ~title:"FAMS — PTM redo vs failure-atomic msync, 1 thread (M ops/s)"
      ~header:("workload/series" :: List.map fst models)
  in
  let economy =
    Table.create ~title:"FAMS — snapshot economy per sync (line vs page granularity)"
      ~header:
        [
          "workload"; "series"; "model"; "write amp"; "fences/sync"; "flushes/sync";
          "KiB journaled"; "KiB dirtied";
        ]
  in
  let cells =
    List.concat_map
      (fun (fspec, ptm_spec) ->
        List.concat_map
          (fun (_, g) ->
            List.map
              (fun (_, model) () ->
                match g with
                | None ->
                  ( Driver.run ~duration_ns:dur ~model ~algorithm:Ptm.Redo ~threads:1 ptm_spec,
                    None )
                | Some granularity ->
                  let r = Fams_bench.run ~duration_ns:dur ~model ~granularity fspec in
                  (r.Fams_bench.driver, Some r.Fams_bench.fams))
              models)
          series)
      pairs
  in
  let next = dispatch ?jobs cells in
  let all_results = ref [] in
  let fams_cells = ref [] in
  List.iter
    (fun ((fspec : Fams_bench.spec), _) ->
      List.iter
        (fun (series_name, _) ->
          let row =
            List.map
              (fun (model_name, _) ->
                let r, st = next () in
                all_results := r :: !all_results;
                (match st with
                | None -> ()
                | Some st ->
                  let syncs = max 1 st.Fams.Stats.syncs in
                  let per x = float_of_int x /. float_of_int syncs in
                  let cell =
                    {
                      fc_workload = fspec.Fams_bench.name;
                      fc_model = model_name;
                      fc_series = series_name;
                      fc_tx_per_sec = r.Driver.txs_per_sec;
                      fc_write_amp = Fams.Stats.write_amp st;
                      fc_fences_per_sync = per st.Fams.Stats.fences;
                      fc_flushes_per_sync = per st.Fams.Stats.flushes;
                      fc_bytes_journaled = st.Fams.Stats.bytes_journaled;
                      fc_bytes_dirtied = st.Fams.Stats.bytes_dirtied;
                      fc_syncs = st.Fams.Stats.syncs;
                    }
                  in
                  fams_cells := cell :: !fams_cells;
                  Table.add_row economy
                    [
                      cell.fc_workload;
                      cell.fc_series;
                      cell.fc_model;
                      Table.cell_f cell.fc_write_amp;
                      Table.cell_f cell.fc_fences_per_sync;
                      Table.cell_f cell.fc_flushes_per_sync;
                      Table.cell_f (float_of_int cell.fc_bytes_journaled /. 1024.);
                      Table.cell_f (float_of_int cell.fc_bytes_dirtied /. 1024.);
                    ]);
                Table.cell_f (r.Driver.txs_per_sec /. 1e6))
              models
          in
          Table.add_row tput ((fspec.Fams_bench.name ^ "/" ^ series_name) :: row))
        series)
    pairs;
  let cells = List.rev !fams_cells in
  let outcome =
    {
      tables = [ tput; economy ];
      results = List.rev !all_results;
      extra = [ ("fams_cells", Bench_json.List (List.map fams_cell_json cells)) ];
    }
  in
  (outcome, cells)

let fams ?quick ?jobs () = fst (fams_run ?quick ?jobs ())

let all =
  [
    ("fig3", fig3);
    ("fig4", fig4);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("logsize", log_footprint);
    ("flush-timing", flush_timing_ablation);
    ("orec-size", orec_ablation);
    ("htm", htm);
    ("scaling", scaling);
    ("ycsb", ycsb);
    ("latency", latency);
    ("dimm-interleave", dimm_interleave);
    ("memory-mode", memory_mode);
    ("reserve-energy", reserve_energy);
    ("algorithms", algorithms);
    ("fams", fams);
    ("recovery-time", recovery_time);
  ]
