(* FAMS workloads: the msync-API twins of the PTM microbenchmarks.

   Each spec mutates a flat working area through [Fams.write]/[read]
   and syncs every [sync_every] operations, so one run measures both
   the mutation path (dirty tracking riding the store fast path) and
   the snapshot path (journal sweep, publish, apply).  The three
   shapes stake out the write-amplification spectrum:

   - [bank]: two scattered one-word balance updates per op — the
     sparse-write case where line-granularity tracking beats page
     tracking by up to 64x;
   - [kv]: open-addressed hash puts, two adjacent words per op at a
     hashed slot — sparse, but key+value usually share a line;
   - [btree]: leaf-clustered sequential appends — the dense case
     where a page entry (513 words) can undercut 64 line entries
     (576 words), the OS-granularity counterargument. *)

module Layout = Machine.Layout
module Rng = Repro_util.Rng

type spec = {
  name : string;
  words : int; (* working-area size *)
  setup : Fams.t -> unit; (* untimed populate (runner checkpoints after) *)
  make_op : Fams.t -> rng:Rng.t -> unit -> unit;
}

(* --- bank: scattered transfers over one-word accounts --- *)

let bank_accounts = 4096
let bank_spread = 4 (* account i lives at word i * spread: 4 accounts/line *)
let bank_initial = 1000

let bank =
  let words = bank_accounts * bank_spread in
  {
    name = "fams-bank";
    words;
    setup =
      (fun f ->
        for a = 0 to bank_accounts - 1 do
          Fams.raw_write f (a * bank_spread) bank_initial
        done);
    make_op =
      (fun f ~rng () ->
        let a = Rng.int rng bank_accounts * bank_spread in
        let b = Rng.int rng bank_accounts * bank_spread in
        let amount = 1 + Rng.int rng 8 in
        let va = Fams.read f a in
        let vb = Fams.read f b in
        Fams.write f a (va - amount);
        Fams.write f b (vb + amount));
  }

(* --- kv: open-addressed hash puts (steady-state updates) --- *)

let kv_slots = 4096 (* [key, value] pairs: 2 words per slot *)
let kv_keys = kv_slots / 2 (* half-full steady state keeps probes short *)

let kv_hash key = (key * 2654435761) land (kv_slots - 1)

let kv =
  {
    name = "fams-kv";
    words = kv_slots * 2;
    setup = (fun _ -> ());
    make_op =
      (fun f ~rng () ->
        let key = 1 + Rng.int rng kv_keys in
        let value = Rng.int rng 1_000_000 in
        let slot = ref (kv_hash key) in
        while
          let k = Fams.read f (!slot * 2) in
          k <> 0 && k <> key
        do
          slot := (!slot + 1) land (kv_slots - 1)
        done;
        Fams.write f (!slot * 2) key;
        Fams.write f ((!slot * 2) + 1) value);
  }

(* --- btree: leaf-clustered sequential appends (wrapping) --- *)

let btree_words = 16384

let btree =
  {
    name = "fams-btree";
    words = btree_words;
    setup = (fun f -> Fams.raw_write f 0 0);
    make_op =
      (fun f ~rng () ->
        let n = Fams.read f 0 in
        let slot = 1 + (n * 2 mod (btree_words - 2)) in
        Fams.write f slot (1 + Rng.int rng 1_000_000);
        Fams.write f (slot + 1) n;
        Fams.write f 0 (n + 1));
  }

let all = [ bank; kv; btree ]

(* --- runner --- *)

type result = {
  driver : Driver.result;
  fams : Fams.Stats.t;
  profile : Pstm.Profile.t;
}

let series_name granularity = "fams-" ^ Fams.granularity_name granularity

let run ?(duration_ns = 3_000_000) ?(sync_every = 32) ?(seed = Driver.default_seed) ~model
    ~granularity spec =
  let heap_words = Fams.required_heap_words ~words:spec.words in
  let cfg = Memsim.Config.make ~heap_words ~track_media:false model in
  let sim = Memsim.Sim.create cfg in
  let m = Memsim.Sim.machine sim in
  let profiler =
    Pstm.Profile.create ~wpq_stall_probe:(fun tid -> Memsim.Sim.wpq_stall_ns_of sim ~tid) m
  in
  let fams = Fams.create ~granularity ~profiler ~words:spec.words sim in
  spec.setup fams;
  Fams.checkpoint_raw fams;
  Memsim.Sim.reset_timing sim;
  let latency = Repro_util.Histogram.create () in
  let ops = ref 0 in
  let rng = Rng.create seed in
  ignore
    (Memsim.Sim.spawn sim (fun () ->
         let op = spec.make_op fams ~rng in
         let since = ref 0 in
         let rec loop () =
           let start = Memsim.Sim.now sim in
           if start < duration_ns then begin
             op ();
             incr ops;
             incr since;
             if !since >= sync_every then begin
               Fams.msync_atomic fams;
               since := 0
             end;
             Repro_util.Histogram.record latency (Memsim.Sim.now sim - start);
             loop ()
           end
         in
         loop ()));
  Memsim.Sim.run sim;
  let elapsed_ns = max (Memsim.Sim.now sim) 1 in
  let st = Fams.stats fams in
  let driver =
    {
      Driver.workload = spec.name;
      model = model.Memsim.Config.model_name;
      algorithm = series_name granularity;
      threads = 1;
      elapsed_ns;
      commits = !ops;
      aborts = 0;
      txs_per_sec = float_of_int !ops /. (float_of_int elapsed_ns *. 1e-9);
      commits_per_abort = infinity;
      max_log_lines =
        (st.Fams.Stats.max_journal_words + Layout.words_per_line - 1) / Layout.words_per_line;
      latency;
      sim = Memsim.Sim.Stats.get sim;
      telemetry = None;
    }
  in
  { driver; fams = st; profile = profiler }
