(** Algorithm-routed microbenchmarks for the MOD column.

    Each spec runs one mixed put/get/remove stream (uniform keys over
    [2^{key_range_bits}], pre-filled to half) and picks the structure
    family by the PTM's algorithm at setup/attach time: under
    {!Pstm.Ptm.algorithm} [Mod] the minimally-ordered shadow
    structures ({!Pstructs.Mod_bptree} / {!Pstructs.Mod_phashtable}),
    under redo/undo/HTM the in-place logged ones ({!Pstructs.Bptree} /
    {!Pstructs.Phashtable}).  Same op stream, different commit
    discipline — the workload axis of the [algorithms] experiment. *)

val btree : Driver.spec
(** [mod-btree]: ordered-map mixed workload. *)

val hash : Driver.spec
(** [mod-hash]: hash-map mixed workload. *)

val key_range_bits : int
(** Key range of both workloads (2^14). *)
