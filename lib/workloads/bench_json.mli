(** Machine-readable benchmark records.

    One experiment run serialises to [BENCH_<experiment>.json] — the
    per-cell metrics (throughput, aborts, fences, ...) plus run-wide
    totals, wall-clock time and the worker count — so the perf
    trajectory of the suite can be tracked across commits by diffing
    or plotting these files. *)

(** Minimal JSON tree; [to_string] emits compact valid JSON (non-finite
    floats become [null]). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string

val result_json : Driver.result -> json
(** Per-cell record: identity (workload/model/algorithm/threads),
    throughput, commit/abort counts, log footprint, and the simulated
    machine's event counters (loads, stores, clwbs, sfences, stalls). *)

val events : Driver.result -> int
(** Simulated machine events of one cell (loads + stores + clwbs +
    sfences) — the numerator of the events/sec simulator-speed
    metric. *)

val outcome_json :
  experiment:string ->
  quick:bool ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * json) list ->
  Driver.result list ->
  json
(** Full run record: meta, [extra] fields spliced in, totals over all
    cells (commits, aborts, sfences, clwbs, events, events_per_sec
    against [wall_s]), and the per-cell records. *)

val write :
  ?dir:string ->
  experiment:string ->
  quick:bool ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * json) list ->
  Driver.result list ->
  string
(** Serialise {!outcome_json} to [<dir>/BENCH_<experiment>.json]
    ([dir] defaults to the current directory, and is created if
    missing); returns the path written. *)

(** {1 Parsing} *)

exception Parse_error of string
(** Raised by {!parse} with a message and byte offset. *)

val parse : string -> json
(** Parse one JSON document (the grammar {!to_string} emits, plus
    whitespace).  Numbers without [./e] parse as [Int], others as
    [Float]; [\u]-escapes re-encode as UTF-8. *)

val parse_file : string -> json
(** {!parse} the entire contents of a file. *)

(** {1 Regression sentinel} *)

type severity =
  | Regression  (** a gated metric moved in the bad direction *)
  | Improvement  (** a gated metric moved in the good direction *)
  | Note  (** structure changed, or a direction-less metric moved *)

type finding = { f_path : string; f_severity : severity; f_detail : string }

val regress :
  ?tolerance_pct:float ->
  ?include_wall:bool ->
  baseline:json ->
  current:json ->
  unit ->
  finding list
(** Structurally diff two [BENCH_*.json] trees (objects by key, lists
    by index), comparing numeric leaves against a tolerance band
    ([tolerance_pct], default 5%).  A leaf's direction comes from its
    name: throughput-like names ([*_per_sec], [commits], [*hit*], ...)
    must not fall, cost-like names ([*_ns], [aborts], [*miss*],
    [*stall*], ...) must not rise; anything else beyond tolerance is a
    {!Note}.  Wall-clock / environment fields ([wall_s], [jobs],
    [cores], [events_per_sec], [*wall_ns*]) are skipped unless
    [include_wall] — they move with the host, not the code.  Findings
    come back in walk order; an empty list means within tolerance. *)
