(** Machine-readable benchmark records.

    One experiment run serialises to [BENCH_<experiment>.json] — the
    per-cell metrics (throughput, aborts, fences, ...) plus run-wide
    totals, wall-clock time and the worker count — so the perf
    trajectory of the suite can be tracked across commits by diffing
    or plotting these files. *)

(** Minimal JSON tree; [to_string] emits compact valid JSON (non-finite
    floats become [null]). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string

val result_json : Driver.result -> json
(** Per-cell record: identity (workload/model/algorithm/threads),
    throughput, commit/abort counts, log footprint, and the simulated
    machine's event counters (loads, stores, clwbs, sfences, stalls). *)

val events : Driver.result -> int
(** Simulated machine events of one cell (loads + stores + clwbs +
    sfences) — the numerator of the events/sec simulator-speed
    metric. *)

val outcome_json :
  experiment:string ->
  quick:bool ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * json) list ->
  Driver.result list ->
  json
(** Full run record: meta, [extra] fields spliced in, totals over all
    cells (commits, aborts, sfences, clwbs, events, events_per_sec
    against [wall_s]), and the per-cell records. *)

val write :
  ?dir:string ->
  experiment:string ->
  quick:bool ->
  jobs:int ->
  wall_s:float ->
  ?extra:(string * json) list ->
  Driver.result list ->
  string
(** Serialise {!outcome_json} to [<dir>/BENCH_<experiment>.json]
    ([dir] defaults to the current directory, and is created if
    missing); returns the path written. *)
