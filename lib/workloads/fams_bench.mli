(** FAMS workloads: msync-API twins of the PTM microbenchmarks.

    Three mutation shapes over a flat working area — scattered bank
    transfers, open-addressed hash puts, leaf-clustered appends — each
    synced every [sync_every] operations through
    {!Fams.msync_atomic}.  The runner reports a {!Driver.result}
    (comparable to the PTM rows: one op = one commit) plus the FAMS
    counters the write-amplification tables are built from. *)

type spec = {
  name : string;
  words : int;
  setup : Fams.t -> unit;
  make_op : Fams.t -> rng:Repro_util.Rng.t -> unit -> unit;
}

val bank : spec
(** Scattered one-word balance updates — sparse writes, the
    line-granularity showcase. *)

val kv : spec
(** Open-addressed hash puts (steady-state updates); key and value
    share a line. *)

val btree : spec
(** Leaf-clustered sequential appends — the dense case where page
    granularity can undercut per-line journal headers. *)

val all : spec list

type result = {
  driver : Driver.result;
  fams : Fams.Stats.t;
  profile : Pstm.Profile.t;
}

val series_name : Fams.granularity -> string
(** ["fams-line"] / ["fams-page"] — the algorithm column label. *)

val run :
  ?duration_ns:int ->
  ?sync_every:int ->
  ?seed:int ->
  model:Memsim.Config.model ->
  granularity:Fams.granularity ->
  spec ->
  result
(** One single-writer cell: populate (untimed), checkpoint, then
    mutate + sync for [duration_ns] of virtual time.  Deterministic in
    (spec, model, granularity, seed). *)
