module Ptm = Pstm.Ptm

let accounts = 1024
let initial_balance = 1000
let base_slot = 0

let setup ptm =
  Ptm.atomic ptm (fun tx ->
      let base = Ptm.alloc tx accounts in
      for i = 0 to accounts - 1 do
        Ptm.write tx (base + i) initial_balance
      done;
      Ptm.on_commit tx (fun () -> Ptm.root_set ptm base_slot base))

let make_op ptm ~tid ~rng =
  ignore tid;
  let base = Ptm.root_get ptm base_slot in
  fun () ->
    let src = Repro_util.Rng.int rng accounts in
    let dst = Repro_util.Rng.int rng accounts in
    let amount = 1 + Repro_util.Rng.int rng 8 in
    Ptm.atomic ptm (fun tx ->
        let s = Ptm.read tx (base + src) in
        let d = Ptm.read tx (base + dst) in
        if src <> dst then begin
          Ptm.write tx (base + src) (s - amount);
          Ptm.write tx (base + dst) (d + amount)
        end)

let total ptm =
  let base = Ptm.root_get ptm base_slot in
  Ptm.atomic ptm (fun tx ->
      let sum = ref 0 in
      for i = 0 to accounts - 1 do
        sum := !sum + Ptm.read tx (base + i)
      done;
      !sum)

let expected_total = accounts * initial_balance

let spec = { Driver.name = "bank"; heap_words = 1 lsl 20; setup; make_op }
