type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
    if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.6g" v)
    else Buffer.add_string b "null"
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        emit b (String k);
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  emit b j;
  Buffer.contents b

let events (r : Driver.result) =
  let s = r.Driver.sim in
  s.Memsim.Sim.Stats.loads + s.Memsim.Sim.Stats.stores + s.Memsim.Sim.Stats.clwbs
  + s.Memsim.Sim.Stats.sfences

let result_json (r : Driver.result) =
  let s = r.Driver.sim in
  Obj
    [
      ("workload", String r.Driver.workload);
      ("model", String r.Driver.model);
      ("algorithm", String r.Driver.algorithm);
      ("threads", Int r.Driver.threads);
      ("elapsed_virtual_ns", Int r.Driver.elapsed_ns);
      ("commits", Int r.Driver.commits);
      ("aborts", Int r.Driver.aborts);
      ("txs_per_sec", Float r.Driver.txs_per_sec);
      ("commits_per_abort", Float r.Driver.commits_per_abort);
      ("max_log_lines", Int r.Driver.max_log_lines);
      ("loads", Int s.Memsim.Sim.Stats.loads);
      ("stores", Int s.Memsim.Sim.Stats.stores);
      ("l3_misses", Int s.Memsim.Sim.Stats.l3_misses);
      ("clwbs", Int s.Memsim.Sim.Stats.clwbs);
      ("sfences", Int s.Memsim.Sim.Stats.sfences);
      ("fence_wait_ns", Int s.Memsim.Sim.Stats.fence_wait_ns);
      ("wpq_stall_ns", Int s.Memsim.Sim.Stats.wpq_stall_ns);
      ("nvm_reads", Int s.Memsim.Sim.Stats.nvm_reads);
    ]

let outcome_json ~experiment ~quick ~jobs ~wall_s ?(extra = []) results =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let total_events = sum events in
  Obj
    ([
       ("experiment", String experiment);
       ("quick", Bool quick);
       ("jobs", Int jobs);
       ("wall_s", Float wall_s);
       ("data_points", Int (List.length results));
     ]
    @ extra
    @ [
        ( "totals",
          Obj
            [
              ("commits", Int (sum (fun r -> r.Driver.commits)));
              ("aborts", Int (sum (fun r -> r.Driver.aborts)));
              ("sfences", Int (sum (fun r -> r.Driver.sim.Memsim.Sim.Stats.sfences)));
              ("clwbs", Int (sum (fun r -> r.Driver.sim.Memsim.Sim.Stats.clwbs)));
              ("events", Int total_events);
              ( "events_per_sec",
                Float (if wall_s > 0.0 then float_of_int total_events /. wall_s else nan) );
            ] );
        ("results", List (List.map result_json results));
      ])

let write ?(dir = ".") ~experiment ~quick ~jobs ~wall_s ?extra results =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" experiment) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string (outcome_json ~experiment ~quick ~jobs ~wall_s ?extra results));
      output_char oc '\n');
  path
