type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
    if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.6g" v)
    else Buffer.add_string b "null"
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        emit b (String k);
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  emit b j;
  Buffer.contents b

let events (r : Driver.result) =
  let s = r.Driver.sim in
  s.Memsim.Sim.Stats.loads + s.Memsim.Sim.Stats.stores + s.Memsim.Sim.Stats.clwbs
  + s.Memsim.Sim.Stats.sfences

let result_json (r : Driver.result) =
  let s = r.Driver.sim in
  Obj
    [
      ("workload", String r.Driver.workload);
      ("model", String r.Driver.model);
      ("algorithm", String r.Driver.algorithm);
      ("threads", Int r.Driver.threads);
      ("elapsed_virtual_ns", Int r.Driver.elapsed_ns);
      ("commits", Int r.Driver.commits);
      ("aborts", Int r.Driver.aborts);
      ("txs_per_sec", Float r.Driver.txs_per_sec);
      ("commits_per_abort", Float r.Driver.commits_per_abort);
      ("max_log_lines", Int r.Driver.max_log_lines);
      ("loads", Int s.Memsim.Sim.Stats.loads);
      ("stores", Int s.Memsim.Sim.Stats.stores);
      ("l3_misses", Int s.Memsim.Sim.Stats.l3_misses);
      ("clwbs", Int s.Memsim.Sim.Stats.clwbs);
      ("sfences", Int s.Memsim.Sim.Stats.sfences);
      ("fence_wait_ns", Int s.Memsim.Sim.Stats.fence_wait_ns);
      ("wpq_stall_ns", Int s.Memsim.Sim.Stats.wpq_stall_ns);
      ("nvm_reads", Int s.Memsim.Sim.Stats.nvm_reads);
    ]

let outcome_json ~experiment ~quick ~jobs ~wall_s ?(extra = []) results =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let total_events = sum events in
  Obj
    ([
       ("experiment", String experiment);
       ("quick", Bool quick);
       ("jobs", Int jobs);
       ("cores", Int (Domain.recommended_domain_count ()));
       ("wall_s", Float wall_s);
       ("data_points", Int (List.length results));
     ]
    @ extra
    @ [
        ( "totals",
          Obj
            [
              ("commits", Int (sum (fun r -> r.Driver.commits)));
              ("aborts", Int (sum (fun r -> r.Driver.aborts)));
              ("sfences", Int (sum (fun r -> r.Driver.sim.Memsim.Sim.Stats.sfences)));
              ("clwbs", Int (sum (fun r -> r.Driver.sim.Memsim.Sim.Stats.clwbs)));
              ("events", Int total_events);
              ( "events_per_sec",
                Float (if wall_s > 0.0 then float_of_int total_events /. wall_s else nan) );
            ] );
        ("results", List (List.map result_json results));
      ])

(* ---------- parsing (for the regression sentinel) ---------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then fin := true
      else if c = '\\' then begin
        if !pos >= n then fail "bad escape";
        let e = s.[!pos] in
        incr pos;
        match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' -> (
          if !pos + 4 > n then fail "bad unicode escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          match int_of_string_opt ("0x" ^ hex) with
          | None -> fail "bad unicode escape"
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some code when code < 0x800 ->
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          | Some code ->
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
        | _ -> fail "bad escape"
      end
      else Buffer.add_char b c
    done;
    Buffer.contents b
  in
  let digits () =
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let fin = ref false in
        while not !fin do
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            fin := true
          | _ -> fail "expected ',' or '}'"
        done;
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let elts = ref [] in
        let fin = ref false in
        while not !fin do
          let v = parse_value () in
          elts := v :: !elts;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' ->
            incr pos;
            fin := true
          | _ -> fail "expected ',' or ']'"
        done;
        List (List.rev !elts)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---------- regression sentinel ---------- *)

type severity = Regression | Improvement | Note

type finding = { f_path : string; f_severity : severity; f_detail : string }

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Environment / wall-clock metrics: honest in the record, meaningless
   to gate on (they move with the host, not the code). *)
let wall_metric name =
  name = "wall_s" || name = "jobs" || name = "cores" || name = "quick"
  || contains name "wall_ns" || contains name "wall_s"
  || contains name "events_per_sec"

let higher_better name =
  contains name "per_sec" || contains name "per_abort" || contains name "speedup"
  || name = "commits" || contains name "hit"

let lower_better name =
  String.ends_with ~suffix:"_ns" name
  || String.ends_with ~suffix:"_us" name
  || name = "aborts" || contains name "miss" || contains name "stall"
  || contains name "slack" || contains name "latency" || contains name "imbalance"
  || contains name "words_per_event"

let regress ?(tolerance_pct = 5.0) ?(include_wall = false) ~baseline ~current () =
  let findings = ref [] in
  let add path severity detail = findings := { f_path = path; f_severity = severity; f_detail = detail } :: !findings in
  let num = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None in
  let leaf path name b c =
    match (num b, num c) with
    | Some bv, Some cv when bv <> cv && not ((not include_wall) && wall_metric name) ->
      let delta =
        if bv <> 0.0 then (cv -. bv) /. Float.abs bv *. 100.0
        else if cv > 0.0 then infinity
        else neg_infinity
      in
      if Float.abs delta > tolerance_pct then begin
        let detail = Printf.sprintf "%.6g -> %.6g (%+.1f%%)" bv cv delta in
        if higher_better name then
          add path (if cv < bv then Regression else Improvement) detail
        else if lower_better name then
          add path (if cv > bv then Regression else Improvement) detail
        else add path Note detail
      end
    | _ -> ()
  in
  let rec walk path name b c =
    match (b, c) with
    | Obj bs, Obj cs ->
      List.iter
        (fun (k, bv) ->
          let kpath = if path = "" then k else path ^ "." ^ k in
          match List.assoc_opt k cs with
          | Some cv -> walk kpath k bv cv
          | None -> add kpath Note "present in baseline, missing in current")
        bs;
      List.iter
        (fun (k, _) ->
          if not (List.mem_assoc k bs) then
            add
              (if path = "" then k else path ^ "." ^ k)
              Note "new in current (absent from baseline)")
        cs
    | List bs, List cs ->
      let nb = List.length bs and nc = List.length cs in
      if nb <> nc then add path Note (Printf.sprintf "list length %d -> %d" nb nc);
      List.iteri
        (fun i bv ->
          match List.nth_opt cs i with
          | Some cv -> walk (Printf.sprintf "%s[%d]" path i) name bv cv
          | None -> ())
        bs
    | (Int _ | Float _), (Int _ | Float _) -> leaf path name b c
    | String a, String b2 ->
      if a <> b2 then add path Note (Printf.sprintf "%S -> %S" a b2)
    | Bool a, Bool b2 ->
      if a <> b2 then add path Note (Printf.sprintf "%b -> %b" a b2)
    | Null, Null -> ()
    | _ -> add path Note "value type changed"
  in
  walk "" "" baseline current;
  List.rev !findings

let write ?(dir = ".") ~experiment ~quick ~jobs ~wall_s ?extra results =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" experiment) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string (outcome_json ~experiment ~quick ~jobs ~wall_s ?extra results));
      output_char oc '\n');
  path
