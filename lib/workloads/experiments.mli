(** One entry point per table/figure of the paper's evaluation.

    Each function sweeps the corresponding workloads, durability models
    and thread counts, and returns printable tables whose rows mirror
    what the paper reports.  [quick] shrinks the virtual measurement
    window (for smoke runs); results remain deterministic either way.

    [jobs] bounds the worker pool that executes the sweep's independent
    simulation cells across OCaml domains (default: the available
    cores, {!Parallel.Pool.default_jobs}).  Cells are keyed by
    submission order and reassembled before any table is built, so the
    printed tables and CSVs are byte-identical for every [jobs] value —
    parallelism buys wall-clock time only, never different numbers.

    The experiment index lives in DESIGN.md; shape expectations and
    measured outcomes in EXPERIMENTS.md. *)

type outcome = {
  tables : Repro_util.Table.t list;
  results : Driver.result list;  (** every underlying data point *)
  extra : (string * Bench_json.json) list;
      (** experiment-specific JSON spliced into the BENCH_*.json root *)
}

val threads_axis : int list
(** The paper's thread sweep: 1, 2, 4, 8, 16, 32. *)

val fig3 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Throughput vs threads for the six B+Tree/TPCC/Vacation panels,
    DRAM vs Optane x ADR vs eADR x undo vs redo. *)

val fig3_panel : ?quick:bool -> ?jobs:int -> Driver.spec -> outcome
(** One panel of {!fig3} (all eight series, the full thread axis) for a
    single workload — the quick-sized unit used by the [@parallel]
    byte-identity gate and the [speedup] self-benchmark. *)

val fig4 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Same comparison for TATP. *)

val table1 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Commits-per-abort, TPCC (hash) with redo logging. *)

val table2 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Commits-per-abort, TPCC (hash) with undo logging. *)

val table3 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Speedup from removing fences from ADR write instrumentation. *)

val fig6 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Durability-model comparison (DRAM, eADR, PDRAM-R/U, PDRAM-Lite)
    for the six main panels. *)

val fig7 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Durability-model comparison for TATP. *)

val fig8 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Memcached throughput vs working-set size, one worker thread. *)

val log_footprint : ?quick:bool -> ?jobs:int -> unit -> outcome
(** §IV-B: largest persistent redo-log footprint (cache lines) per
    workload — the paper reports 37 lines for Vacation, 36 for TPCC. *)

val flush_timing_ablation : ?quick:bool -> ?jobs:int -> unit -> outcome
(** §III-B: incremental vs commit-time clwb of the redo log (the paper
    found no noticeable difference). *)

val orec_ablation : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Extra ablation called out in DESIGN.md: sensitivity to the
    ownership-record table size (false-conflict rate). *)

(** {1 Extensions beyond the paper's evaluation (DESIGN.md §3b)} *)

val htm : ?quick:bool -> ?jobs:int -> unit -> outcome
(** §V future work: TSX-style hardware transactions vs the software
    paths under eADR and PDRAM. *)

val scaling : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Flush-coalescing A/B: bank throughput vs threads for
    {coalesced, naive} x {ADR, eADR} (redo), plus a per-commit
    flush/fence economy table (actual and saved counts from the
    profiler's coalescing ledger). *)

val ycsb : ?quick:bool -> ?jobs:int -> unit -> outcome
(** The YCSB core mixes A–F across durability models. *)

val latency : ?quick:bool -> ?jobs:int -> unit -> outcome
(** p50/p95/p99 transaction latency per workload and model. *)

val dimm_interleave : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Throughput vs the number of interleaved Optane channels. *)

val memory_mode : ?quick:bool -> ?jobs:int -> unit -> outcome
(** PDRAM vs (non-persistent) Memory Mode vs eADR vs DRAM. *)

val reserve_energy : ?quick:bool -> ?jobs:int -> unit -> outcome
(** §V future work: sampled persistence debt and the reserve energy
    each durability domain would need on a power failure. *)

val algorithms : ?quick:bool -> ?jobs:int -> unit -> outcome
(** The MOD algorithm column: {!Mod_bench} btree/hash mixed streams
    under redo vs undo vs MOD across every durability domain, with a
    per-commit fence/flush economy table from the profiler.  Shows
    MOD's one-fence commit on ADR and the eADR / transient-cache
    crossover where its ordering advantage collapses. *)

(** One FAMS grid point's exported metrics (also serialised under the
    ["fams_cells"] key of [BENCH_fams.json]). *)
type fams_cell = {
  fc_workload : string;
  fc_model : string;
  fc_series : string;  (** ["fams-line"] / ["fams-page"] *)
  fc_tx_per_sec : float;
  fc_write_amp : float;  (** bytes journaled / bytes logically dirtied *)
  fc_fences_per_sync : float;
  fc_flushes_per_sync : float;
  fc_bytes_journaled : int;
  fc_bytes_dirtied : int;
  fc_syncs : int;
}

val fams_run : ?quick:bool -> ?jobs:int -> unit -> outcome * fams_cell list
(** The FAMS grid: three workload shapes (scattered bank, hash puts,
    clustered appends) x {ptm-redo, fams-line, fams-page} x all five
    durability domains, single-writer.  Returns the outcome plus the
    typed per-cell metrics for the FAMS rows (the [@fams] gate asserts
    write-amplification direction on these). *)

val fams : ?quick:bool -> ?jobs:int -> unit -> outcome
(** {!fams_run}, outcome only — the CLI entry point. *)

val recovery_time : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Wall-clock cost of [Ptm.recover] as the heap gets fuller.  Always
    serial: the metric is real time, which concurrent cells would
    distort; [jobs] is accepted and ignored. *)

val all : (string * (?quick:bool -> ?jobs:int -> unit -> outcome)) list
(** Every experiment, keyed by its CLI name. *)
