(* MOD-aware microbenchmarks: one mixed key/value op stream, routed to
   the structure family that matches the PTM's algorithm.  Under [Mod]
   the ops run on the minimally-ordered shadow structures (Mod_bptree /
   Mod_phashtable: path-copied immutable nodes, one fence, unfenced
   root swap); under redo/undo/HTM the same stream runs on the in-place
   logged structures.  A single spec therefore yields an
   apples-to-apples algorithm column — same key distribution, same
   op mix, different commit discipline — for the `algorithms`
   experiment and the BENCH_algorithms.json record. *)

module Ptm = Pstm.Ptm
module Rng = Repro_util.Rng

let key_range_bits = 14
let key_range = 1 lsl key_range_bits
let root_slot = 0

(* Structure-blind op table so setup and the op loop are written once.
   The branch on [Ptm.algorithm] happens only here. *)
type ops = {
  put : Ptm.tx -> key:int -> value:int -> bool;
  get : Ptm.tx -> int -> int option;
  del : Ptm.tx -> int -> bool;
}

let btree_create ptm =
  if Ptm.algorithm ptm = Ptm.Mod then
    let t = Pstructs.Mod_bptree.create ptm in
    Ptm.root_set ptm root_slot (Pstructs.Mod_bptree.descriptor t)
  else
    let t = Pstructs.Bptree.create ptm in
    Ptm.root_set ptm root_slot (Pstructs.Bptree.descriptor t)

let btree_ops ptm =
  if Ptm.algorithm ptm = Ptm.Mod then (
    let t = Pstructs.Mod_bptree.attach ptm (Ptm.root_get ptm root_slot) in
    {
      put = (fun tx ~key ~value -> Pstructs.Mod_bptree.insert tx t ~key ~value);
      get = (fun tx key -> Pstructs.Mod_bptree.lookup tx t key);
      del = (fun tx key -> Pstructs.Mod_bptree.remove tx t key);
    })
  else
    let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm root_slot) in
    {
      put = (fun tx ~key ~value -> Pstructs.Bptree.insert tx t ~key ~value);
      get = (fun tx key -> Pstructs.Bptree.lookup tx t key);
      del = (fun tx key -> Pstructs.Bptree.remove tx t key);
    }

(* Mod_phashtable wants a power of 16; Phashtable rounds to a multiple
   of 512.  256 buckets gives both a comparable load factor over the
   2^14 key range. *)
let hash_create ptm =
  if Ptm.algorithm ptm = Ptm.Mod then
    let t = Pstructs.Mod_phashtable.create ptm ~buckets:256 in
    Ptm.root_set ptm root_slot (Pstructs.Mod_phashtable.descriptor t)
  else
    let t = Pstructs.Phashtable.create ptm ~buckets:256 in
    Ptm.root_set ptm root_slot (Pstructs.Phashtable.descriptor t)

let hash_ops ptm =
  if Ptm.algorithm ptm = Ptm.Mod then (
    let t = Pstructs.Mod_phashtable.attach ptm (Ptm.root_get ptm root_slot) in
    {
      put = (fun tx ~key ~value -> Pstructs.Mod_phashtable.put tx t ~key ~value);
      get = (fun tx key -> Pstructs.Mod_phashtable.get tx t key);
      del = (fun tx key -> Pstructs.Mod_phashtable.remove tx t key);
    })
  else
    let t = Pstructs.Phashtable.attach ptm (Ptm.root_get ptm root_slot) in
    {
      put = (fun tx ~key ~value -> Pstructs.Phashtable.put tx t ~key ~value);
      get = (fun tx key -> Pstructs.Phashtable.get tx t key);
      del = (fun tx key -> Pstructs.Phashtable.remove tx t key);
    }

(* Pre-fill half the key range so gets and removes hit live keys about
   half the time from the first measured op. *)
let prefill ptm ops =
  let rng = Rng.create 0x30D in
  for _ = 1 to key_range / 2 do
    let key = 1 + Rng.int rng key_range in
    Ptm.atomic ptm (fun tx -> ignore (ops.put tx ~key ~value:key : bool))
  done

let mixed name create ops_of =
  {
    Driver.name;
    (* MOD path-copies a spine per update; retired nodes are recycled
       by the epoch sweep, but the transient float (retire lists, the
       pre-fill handle's leaked tail) needs headroom over the logged
       structures' in-place footprint. *)
    heap_words = 1 lsl 21;
    setup =
      (fun ptm ->
        create ptm;
        prefill ptm (ops_of ptm));
    make_op =
      (fun ptm ~tid ~rng ->
        ignore tid;
        let ops = ops_of ptm in
        fun () ->
          let key = 1 + Rng.int rng key_range in
          match Rng.int rng 3 with
          | 0 -> Ptm.atomic ptm (fun tx -> ignore (ops.put tx ~key ~value:key : bool))
          | 1 -> Ptm.atomic ptm (fun tx -> ignore (ops.get tx key : int option))
          | _ -> Ptm.atomic ptm (fun tx -> ignore (ops.del tx key : bool)));
  }

let btree = mixed "mod-btree" btree_create btree_ops
let hash = mixed "mod-hash" hash_create hash_ops
