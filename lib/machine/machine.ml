exception Crashed

exception Corrupt_image of string

type t = {
  words : int;
  meta_words : int;
  needs_flush : bool;
  needs_fence : bool;
  durable_publish : bool;
  load : int -> int;
  store : int -> int -> unit;
  clwb : int -> unit;
  clwb_many : int array -> int -> unit;
  sfence : unit -> unit;
  meta_get : int -> int;
  meta_set : int -> int -> unit;
  meta_cas : int -> int -> int -> bool;
  meta_fetch_add : int -> int -> int;
  tid : unit -> int;
  now_ns : unit -> float;
  pause : int -> unit;
  raw_read : int -> int;
  raw_write : int -> int -> unit;
  mark_log_range : int -> int -> unit;
  publish : int array -> int array -> int -> unit;
}

module Layout = struct
  let bytes_per_word = 8
  let words_per_line = 8
  let words_per_page = 512
  let line_of_addr addr = addr / words_per_line
  let page_of_addr addr = addr / words_per_page
  let addr_of_line line = line * words_per_line
end

module Meta_layout = struct
  let clock_idx = 0
  let alloc_high_water_idx = 1
  let orec_base = 64
end

module Native = struct
  let create ~words ~meta_words =
    (* Dense thread ids are per machine (a fresh DLS key each), so one
       process can host many machines without id collisions. *)
    let next_tid = Atomic.make 0 in
    let tid_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_tid 1) in
    let current_tid () = Domain.DLS.get tid_key in
    let heap = Array.make words 0 in
    let meta = Array.init meta_words (fun _ -> Atomic.make 0) in
    let rec fetch_add cell delta =
      let old = Atomic.get cell in
      if Atomic.compare_and_set cell old (old + delta) then old else fetch_add cell delta
    in
    let pause ns =
      (* Spin briefly; exact duration is irrelevant for correctness tests. *)
      for _ = 1 to 1 + (ns / 10) do
        Domain.cpu_relax ()
      done
    in
    {
      words;
      meta_words;
      needs_flush = false;
      needs_fence = false;
      durable_publish = false;
      load = (fun addr -> heap.(addr));
      store = (fun addr v -> heap.(addr) <- v);
      clwb = (fun _addr -> ());
      clwb_many = (fun _addrs _n -> ());
      sfence = ignore;
      meta_get = (fun i -> Atomic.get meta.(i));
      meta_set = (fun i v -> Atomic.set meta.(i) v);
      meta_cas = (fun i expected v -> Atomic.compare_and_set meta.(i) expected v);
      meta_fetch_add = (fun i delta -> fetch_add meta.(i) delta);
      tid = current_tid;
      now_ns = (fun () -> Unix.gettimeofday () *. 1e9);
      pause;
      raw_read = (fun addr -> heap.(addr));
      raw_write = (fun addr v -> heap.(addr) <- v);
      mark_log_range = (fun _lo _hi -> ());
      publish =
        (fun addrs values n ->
          for i = 0 to n - 1 do
            heap.(addrs.(i)) <- values.(i)
          done);
    }
end
