(** Abstract machine executing persistent-memory programs.

    The PTM algorithms, persistent allocator and data structures are all
    written against this interface.  Two backends implement it:

    - {!Memsim.Sim} — the deterministic discrete-event simulated machine
      (virtual clocks, cache model, bounded WPQ, durability domains);
      used for all paper experiments.
    - {!Machine.Native} — real memory and real OCaml domains; used to
      stress-test the concurrency of the algorithms.

    Addresses are word indices (one word = 8 simulated bytes) into a
    flat persistent heap.  A cache line is {!Layout.words_per_line}
    words; a page is {!Layout.words_per_page} words.

    Two address spaces exist:
    - the {e persistent heap} ([load]/[store]/[clwb]/[sfence]),
      crash-survivable according to the backend's durability domain;
    - the {e volatile metadata space} ([meta_*]), holding ownership
      records and the global version clock — always lost on a crash,
      and offering atomic compare-and-swap. *)

exception Crashed
(** Raised inside a simulated thread when the machine loses power.
    Code between [atomic] boundaries must let it propagate: the whole
    point of a crash is that no cleanup runs. *)

exception Corrupt_image of string
(** A persistent image that exists but cannot be trusted: a region
    header with a bad magic ({!Pmem.Region.attach}) or a torn/truncated
    on-disk media file ([Memsim.Sim.load_image]).  The payload carries
    file/offset context.  Deliberately distinct from [Sys_error] ("no
    image at all"), so a service restart can choose between formatting
    a fresh store and refusing to touch a damaged one. *)

type t = {
  words : int;  (** persistent heap size in words *)
  meta_words : int;  (** volatile metadata space size in words *)
  needs_flush : bool;
      (** whether the durability domain requires [clwb] for persistence
          (true for ADR; false for eADR, PDRAM, PDRAM-Lite) *)
  needs_fence : bool;
      (** whether [sfence] ordering is required (false for eADR-family
          domains and for the deliberately incorrect "no-fence" ADR
          variant of Table III) *)
  durable_publish : bool;
      (** whether [publish] alone makes its write set durable even when
          [needs_flush] holds — the HTM-commit durability domain, where
          the controller hardens a hardware transaction's write set as
          one unit at retirement *)
  load : int -> int;  (** timed read of a heap word *)
  store : int -> int -> unit;  (** timed write of a heap word *)
  clwb : int -> unit;
      (** write-back the cache line containing the given word towards
          the memory controller; persistence is guaranteed only after a
          subsequent [sfence] *)
  clwb_many : int array -> int -> unit;
      (** [clwb_many addrs n] write-backs the cache lines of the first
          [n] addresses back-to-back, as a coalesced sweep: every
          write-back is handed to the memory controller at the same
          issue instant, so their drains overlap instead of each
          waiting out the previous clwb's issue latency.  Semantically
          identical to [n] consecutive [clwb]s — persistence still
          requires a subsequent [sfence] — only the charged issue
          timing differs.  Callers pass line-distinct addresses; the
          backend does not deduplicate. *)
  sfence : unit -> unit;
      (** drain: wait until all of this thread's outstanding write-backs
          have reached the durability domain *)
  meta_get : int -> int;
  meta_set : int -> int -> unit;
  meta_cas : int -> int -> int -> bool;
      (** [meta_cas idx expected value] — atomic compare-and-swap *)
  meta_fetch_add : int -> int -> int;
      (** [meta_fetch_add idx delta] returns the previous value *)
  tid : unit -> int;  (** small dense id of the calling thread *)
  now_ns : unit -> float;  (** current (virtual or real) time *)
  pause : int -> unit;  (** back-off for approximately [ns] *)
  raw_read : int -> int;
      (** untimed heap read — initialization, recovery and test oracles only *)
  raw_write : int -> int -> unit;  (** untimed heap write — same restrictions *)
  mark_log_range : int -> int -> unit;
      (** [mark_log_range lo hi] declares words [lo, hi) as PTM-log
          space; under PDRAM-Lite the backend maps these pages to
          battery-backed DRAM *)
  publish : int array -> int array -> int -> unit;
      (** [publish addrs values n] stores the first [n] (address,
          value) pairs as one indivisible event — the commit of a
          hardware transaction, whose speculative lines become visible
          (and, under eADR-class domains, durable) all at once.  A
          power failure can land before or after a publish, never
          inside it. *)
}

module Layout : sig
  val bytes_per_word : int
  val words_per_line : int
  val words_per_page : int
  val line_of_addr : int -> int
  val page_of_addr : int -> int
  val addr_of_line : int -> int
end

(** Agreed-upon slots in the volatile metadata space, so independent
    components (PTM clock, allocator, orec table) never collide. *)
module Meta_layout : sig
  val clock_idx : int
  (** the PTM's global version clock *)

  val alloc_high_water_idx : int
  (** the allocator's volatile high-water mirror *)

  val orec_base : int
  (** first index of the ownership-record table *)
end

module Native : sig
  (** Native backend: real memory, real OCaml domains, wall-clock time.

      There is no persistence here — [clwb] and [sfence] are ordering
      no-ops — so this backend cannot run the crash experiments.  Its
      purpose is to prove that the PTM algorithms are genuinely concurrent:
      the stress tests run them on parallel domains with atomic ownership
      records and check serializability of the results.

      Thread ids are per-domain, assigned densely on first use from
      domain-local storage. *)

  val create : words:int -> meta_words:int -> t
  (** Fresh native machine.  [needs_flush]/[needs_fence] are [false]
      (flush instructions would be meaningless on the GC heap); algorithms
      still exercise their flush call-sites, which become no-ops. *)
end
