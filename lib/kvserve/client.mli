(** Deterministic in-sim client fleet.

    Generates the byte streams a set of memcached clients would send:
    per-connection Zipf-skewed keys, a get/set/delete/incr mix, and
    open-loop arrivals (a connection's next request arrives on its own
    clock whether or not the service has kept up — so backlog and
    queueing delay are visible, unlike the closed-loop workload in
    [lib/workloads/memcached.ml]).

    Each request is rendered to wire bytes and may be split into two
    chunks at a seeded byte boundary, so the service's incremental
    parser is exercised on realistic torn reads.  Everything derives
    from the seed: equal seeds give byte-identical fleets. *)

type chunk = {
  arrival_ns : int;  (** virtual instant the bytes are on the wire *)
  conn : int;
  bytes : string;
}

type t = {
  chunks : chunk list;
      (** global arrival order (ties broken by connection id);
          per-connection subsequences are in-order *)
  conns : int;
  requests : int;  (** total requests rendered into [chunks] *)
  trace_ids : int array array;
      (** [trace_ids.(conn).(o)] is the trace id for the [o]-th request
          emitted on [conn] (in per-connection order).  [[||]] in
          hand-built fleets is fine: the service falls back to a
          synthesized id. *)
}

val key_of : int -> string
(** Canonical key for item rank [i] (["k%06d"]). *)

val counters : int
(** Size of the dedicated decimal-counter keyspace [incr] targets. *)

val counter_of : int -> string
(** Counter key [i], for [i < counters]. *)

val value_of : rank:int -> version:int -> value_bytes:int -> string
(** Deterministic payload: identifies (rank, version) and pads to
    [value_bytes]. *)

val generate :
  seed:int ->
  conns:int ->
  requests_per_conn:int ->
  items:int ->
  value_bytes:int ->
  set_ratio:float ->
  delete_ratio:float ->
  incr_ratio:float ->
  mean_gap_ns:int ->
  theta:float ->
  unit ->
  t
(** Remaining probability mass is [get]s.  [mean_gap_ns] is each
    connection's mean inter-arrival time (uniform on
    [\[1, 2*mean_gap_ns\]]); [theta] is the Zipf skew over item
    ranks. *)
