(* FNV-1a with the 64-bit prime; the offset basis is the standard one
   truncated to OCaml's 63-bit ints (harmless for distribution). *)
let fnv1a s =
  let h = ref 0x3bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h

let store_hash s =
  let h = fnv1a s land max_int in
  if h = 0 then 1 else h

let shard_of_key ~shards key =
  if shards <= 1 then 0
  else begin
    let h = fnv1a key in
    let h = h lxor (h lsr 33) in
    let h = h * 0x2545F4914F6CDD1D in
    let h = h lxor (h lsr 29) in
    (h land max_int) mod shards
  end
