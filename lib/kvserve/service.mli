(** The sharded persistent KV service: codec → router → batch → commit.

    The service owns [shards] independent PTM instances, each on its
    own simulated machine ({!Memsim.Sim}), region and {!Store} — so a
    shard's commit-time flushes and fences never interfere with another
    shard's, and cross-shard batches overlap in (virtual) time.  A run
    has three stages:

    + {b Frontend} (untimed, as a network front): every client chunk
      is fed to that connection's incremental {!Protocol} parser;
      malformed frames are answered immediately with protocol error
      replies; parsed requests are split per key and routed to shard
      queues by {!Router.shard_of_key}, stamped with their arrival
      instant.
    + {b Shards} (timed, one simulated executor per shard, fanned
      across domains by {!Parallel.Pool}): each executor walks its
      queue in arrival order, batching {e adjacent writes} into one
      transaction — one coalesced commit, one durable fence for the
      whole batch — while reads run as individual read-only
      transactions.  Admission is debt-driven: when the shard's
      instantaneous persistence debt ({!Memsim.Sim.Debt}) exceeds
      [debt_line_limit] lines, the batch cap drops to 1, giving the
      WPQ time to drain before more log traffic is admitted.  Every
      write batch also commits the shard's batch marker
      ({!Store.set_batch_marker}), making the durable prefix of the
      write stream explicit.
    + {b Crash + restart} (when [crash_at] is given): every shard
      crashes at the same virtual instant; restart reattaches each
      region ({!Pstm.Ptm.recover}), reads the recovered batch marker,
      reconstructs replies for writes that committed durably but whose
      responses were lost, and re-runs everything after the durable
      prefix.  Recovery's own cost is {e modeled} from the
      {!Pstm.Ptm.Recovery_report} counts and the machine's configured
      latencies (log-scan loads at the log medium's latency — DRAM
      under PDRAM-Lite — plus write-back per replayed entry), because
      the recovery pass itself runs on untimed raw operations.

    Everything is deterministic: equal (config, fleet) pairs produce
    byte-identical replies and metrics for any [jobs] value. *)

type config = {
  shards : int;
  model : Memsim.Config.model;
  heap_words_per_shard : int;
  buckets_per_shard : int;
  log_words_per_thread : int;
  max_batch : int;  (** admission cap: writes coalesced per commit *)
  debt_line_limit : int;
      (** backpressure threshold on WPQ + armed-log lines; at or above
          it the batch cap drops to 1 *)
  restart_gap_ns : int;
      (** modeled service-restart cost (process start, reattach)
          added between crash and the replay phase *)
  prepopulate_items : int;
      (** item ranks preloaded untimed before the clock starts *)
  value_bytes : int;  (** payload size of preloaded values *)
  profile : bool;  (** attach a {!Telemetry.capture} to every shard *)
  trace : bool;
      (** record request spans ({!Telemetry.Trace}) end to end: trace
          context per parsed request, queue/throttle/batch wait and
          commit/read spans per shard with PTM phase slices nested
          under them, and recovery/restart downtime spans after a
          crash.  Observation-only: enabling it changes no simulated
          timing, replies or metrics *)
  seed : int;
}

val default_config : Memsim.Config.model -> config

type opcode = Op_get | Op_set | Op_delete | Op_incr

val opcode_name : opcode -> string

type recovery = {
  r_shard : int;
  r_logs_scanned : int;
  r_words_scanned : int;
  r_entries_replayed : int;
  r_entries_rolled_back : int;
  r_durable_marker : int;  (** last write batch that survived *)
  r_replayed_ops : int;  (** sub-operations re-run after the marker *)
  r_modeled_ns : int;  (** simulated recovery time (deterministic) *)
  r_wall_ns : int;
      (** host wall time of the recovery pass — nondeterministic;
          report it, never gate on it *)
}

type shard_stats = {
  s_shard : int;
  s_ops : int;  (** sub-operations executed by this shard *)
  s_commits : int;
  s_aborts : int;
  s_batches : int;  (** write batches committed *)
  s_max_batch : int;
  s_throttled : int;  (** batches clamped to 1 by the debt knob *)
  s_elapsed_ns : int;  (** this shard's final (global) virtual time *)
  s_ptm : Pstm.Ptm.Stats.t;
      (** full runtime counters (pre- and post-crash PTM combined) *)
  s_sim : (string * int) list;
      (** {!Memsim.Sim.Stats.fields} of this shard's machine (summed
          across the reboot when the run crashed) *)
}

type result = {
  model : string;
  requests : int;  (** parsed requests answered, protocol errors included *)
  kv_ops : int;  (** sub-operations executed against shards *)
  protocol_errors : int;
  get_hits : int;
  get_misses : int;
  elapsed_ns : int;  (** max over shards *)
  ops_per_sec : float;
  replies : string array;  (** per connection, replies in request order *)
  latency : (opcode * Repro_util.Histogram.t) list;
      (** arrival → completion, virtual ns, per opcode *)
  batch_occupancy : Repro_util.Histogram.t;  (** writes per commit *)
  shard_ops : int array;
  imbalance : float;  (** max shard load / mean shard load *)
  shards : shard_stats list;
  recoveries : recovery list;  (** one per shard when the run crashed *)
  crashed : bool;
  captures : (int * Telemetry.capture) list;
      (** per-shard telemetry when [config.profile] *)
  trace : Telemetry.Trace.t option;
      (** the service-global span store when [config.trace]: one
          ["request"] root per traced request with wait / execution /
          phase-slice children, assembled deterministically (equal for
          any [jobs]) *)
}

val run : ?jobs:int -> ?crash_at:int -> config -> Client.t -> result
(** Serve the fleet.  [jobs] fans shard executions across domains
    (byte-identical results for any value); [crash_at] pulls the plug
    on every shard at that virtual instant and exercises the full
    restart-recovery path. *)

val registry : config -> result -> Telemetry.Registry.t
(** The unified metrics registry over a finished run: service counters
    and latency histograms, per-shard PTM ([ptm_*]) and machine
    ([sim_*]) counters, and — after a crash — the recovery-report
    counters.  A pure projection of [result]: building it twice yields
    byte-identical exports.  Render with
    {!Telemetry.Registry.to_prometheus} / [stats_pairs] / [jsonl]; the
    in-band [stats] verb answers with exactly [stats_pairs]. *)

val metrics_jsonl : config -> result -> string
(** Deterministic service-metrics export in the telemetry JSONL style
    (schema header; per-opcode latency rows; batch/shard/recovery
    rows; the {!registry} rows).  Wall-clock recovery times are
    deliberately excluded. *)
