(** Memcached text-protocol codec: the wire format of the {!Service}.

    Supports the command subset the paper's memcached workload models —
    [get] (multi-key), [set], [delete], [incr] — with the textual
    framing of the real protocol: space-separated command lines
    terminated by CRLF, and a [<bytes>]-long data block after [set].

    The parser is {e incremental}: feed it byte chunks as they arrive
    (a request may be split at any byte boundary) and drain complete
    requests as they become parseable.  Malformed input never raises —
    it yields a protocol error reply ([ERROR] / [CLIENT_ERROR ...]) and
    resynchronises at the next line, exactly as a server must. *)

type request =
  | Get of string list  (** [get key...] — at least one key *)
  | Set of { key : string; flags : int; data : string }
  | Delete of string
  | Incr of { key : string; delta : int }
  | Stats  (** [stats] — server statistics snapshot *)

type reply =
  | Stored
  | Deleted
  | Not_found
  | Values of (string * int * string) list
      (** (key, flags, data) hits of a [get], in request order;
          renders the [VALUE]/[END] block *)
  | Number of int  (** new value after [incr] *)
  | Stats_reply of (string * string) list
      (** (name, value) pairs; renders [STAT name value] lines followed
          by [END] *)
  | Error  (** unknown command *)
  | Client_error of string
  | Server_error of string

val max_key_bytes : int
(** Longest accepted key (250, the memcached limit). *)

val max_value_bytes : int
(** Longest accepted [set] payload. *)

val valid_key : string -> bool
(** Non-empty, at most {!max_key_bytes} printable non-space bytes. *)

(** {1 Incremental parsing} *)

type parser_

val parser_create : unit -> parser_

val feed : parser_ -> string -> unit
(** Append a chunk of received bytes. *)

type item =
  | Request of request
  | Protocol_error of string
      (** rendered error reply to send back (ends in CRLF); the
          offending frame has been consumed *)

val next : parser_ -> item option
(** Extract the next complete item, or [None] when more bytes are
    needed.  Never raises. *)

val drain : parser_ -> item list
(** All items currently extractable, in order. *)

val buffered : parser_ -> int
(** Bytes received but not yet consumed (0 on a quiescent parser). *)

(** {1 Rendering} *)

val render_request : request -> string
(** Wire bytes of a request (the client side of the codec).  [Set]
    renders with exptime 0. *)

val render_reply : reply -> string
