module Ptm = Pstm.Ptm
module Phashtable = Pstructs.Phashtable
module Pblob = Pstructs.Pblob

(* Item block layout. *)
let it_key = 0
let it_value = 1
let it_flags = 2
let it_next = 3
let item_words = 4

(* Meta block layout. *)
let meta_items = 0
let meta_marker = 1

type t = { index : Phashtable.t; meta : int }

let create ?(root_base = 0) ptm ~buckets =
  let index = Phashtable.create ptm ~buckets in
  let meta =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 2 in
        Ptm.write tx (a + meta_items) 0;
        Ptm.write tx (a + meta_marker) 0;
        a)
  in
  Ptm.root_set ptm root_base (Phashtable.descriptor index);
  Ptm.root_set ptm (root_base + 1) meta;
  { index; meta }

let attach ?(root_base = 0) ptm =
  {

    index = Phashtable.attach ptm (Ptm.root_get ptm root_base);
    meta = Ptm.root_get ptm (root_base + 1);
  }

(* Walk the same-hash chain for the item whose key blob equals [key];
   0 when absent.  [prev] (item address or 0 for the chain head) lets
   [delete] unlink. *)
let rec find_from tx prev item key =
  if item = 0 then (prev, 0)
  else if Pblob.equal_string tx (Ptm.read tx (item + it_key)) key then (prev, item)
  else find_from tx item (Ptm.read tx (item + it_next)) key

let find tx t key =
  match Phashtable.get tx t.index (Router.store_hash key) with
  | None -> (0, 0)
  | Some head -> find_from tx 0 head key

let get tx t key =
  match find tx t key with
  | _, 0 -> None
  | _, item -> Some (Ptm.read tx (item + it_flags), Pblob.get tx (Ptm.read tx (item + it_value)))

(* Overwrite an item's value, reallocating the blob when the length
   changes. *)
let write_value tx item data =
  let vb = Ptm.read tx (item + it_value) in
  if Pblob.length tx vb = String.length data then Pblob.set tx vb data
  else begin
    Pblob.free tx vb;
    Ptm.write tx (item + it_value) (Pblob.alloc tx data)
  end

let bump_items tx t delta =
  Ptm.write tx (t.meta + meta_items) (Ptm.read tx (t.meta + meta_items) + delta)

let set tx t ~key ~flags data =
  match find tx t key with
  | _, item when item <> 0 ->
    Ptm.write tx (item + it_flags) flags;
    write_value tx item data
  | _ ->
    let h = Router.store_hash key in
    let head = match Phashtable.get tx t.index h with None -> 0 | Some head -> head in
    let item = Ptm.alloc tx item_words in
    Ptm.write tx (item + it_key) (Pblob.alloc tx key);
    Ptm.write tx (item + it_value) (Pblob.alloc tx data);
    Ptm.write tx (item + it_flags) flags;
    Ptm.write tx (item + it_next) head;
    ignore (Phashtable.put tx t.index ~key:h ~value:item : bool);
    bump_items tx t 1

let delete tx t key =
  let h = Router.store_hash key in
  match find tx t key with
  | _, 0 -> false
  | prev, item ->
    let succ = Ptm.read tx (item + it_next) in
    if prev = 0 then
      if succ = 0 then ignore (Phashtable.remove tx t.index h : bool)
      else ignore (Phashtable.put tx t.index ~key:h ~value:succ : bool)
    else Ptm.write tx (prev + it_next) succ;
    Pblob.free tx (Ptm.read tx (item + it_key));
    Pblob.free tx (Ptm.read tx (item + it_value));
    Ptm.free tx item;
    bump_items tx t (-1);
    true

type incr_result = New_value of int | Missing | Not_numeric

let incr tx t key delta =
  match find tx t key with
  | _, 0 -> Missing
  | _, item -> (
    let vb = Ptm.read tx (item + it_value) in
    let s = Pblob.get tx vb in
    let n = String.length s in
    let numeric = n > 0 && n <= 15 in
    let numeric =
      numeric
      && (let ok = ref true in
          String.iter (fun c -> if c < '0' || c > '9' then ok := false) s;
          !ok)
    in
    match numeric with
    | false -> Not_numeric
    | true ->
      let v = int_of_string s + delta in
      write_value tx item (string_of_int v);
      New_value v)

let items tx t = Ptm.read tx (t.meta + meta_items)
let batch_marker tx t = Ptm.read tx (t.meta + meta_marker)
let set_batch_marker tx t v = Ptm.write tx (t.meta + meta_marker) v
