(** One shard's persistent KV store: a {!Pstructs.Phashtable} index
    from {!Router.store_hash} to chains of item blocks, with
    {!Pstructs.Pblob} keys and values — the layout of a real memcached
    item cache, expressed over the PTM API.

    Item block (4 words): [key_blob; value_blob; flags; next], where
    [next] chains items whose string keys collide on the same 63-bit
    hash (vanishingly rare, but correctness owns the case).

    A meta block (2 words) holds the live item count and the
    {e batch marker}: the sequence number of the last write batch the
    service committed, written in the same transaction as the batch
    itself.  After a crash, the recovered marker tells the service
    exactly which prefix of its write stream is durable — the
    replay-point of restart recovery, and the hinge of the
    crash-between-batches scenarios in [lib/crashtest]. *)

type t

val create : ?root_base:int -> Pstm.Ptm.t -> buckets:int -> t
(** Format a fresh store, publishing its descriptor and meta block in
    region root slots [root_base] (default 0) and [root_base + 1].
    Several stores can share one region under distinct [root_base]s. *)

val attach : ?root_base:int -> Pstm.Ptm.t -> t
(** Re-open after recovery from the same root slots. *)

val get : Pstm.Ptm.tx -> t -> string -> (int * string) option
(** [(flags, data)] if present. *)

val set : Pstm.Ptm.tx -> t -> key:string -> flags:int -> string -> unit
(** Upsert.  A same-length overwrite updates the value blob in place;
    a length change reallocates it. *)

val delete : Pstm.Ptm.tx -> t -> string -> bool
(** [true] if the key existed. *)

type incr_result = New_value of int | Missing | Not_numeric

val incr : Pstm.Ptm.tx -> t -> string -> int -> incr_result
(** Add a non-negative delta to a decimal value, memcached-style.
    The stored representation reallocates only when the decimal's
    length grows. *)

val items : Pstm.Ptm.tx -> t -> int
(** Live item count. *)

val batch_marker : Pstm.Ptm.tx -> t -> int

val set_batch_marker : Pstm.Ptm.tx -> t -> int -> unit
(** Write the marker inside the surrounding batch transaction — the
    marker and the batch commit (or vanish) together. *)
