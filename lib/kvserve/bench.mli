(** The [kvserve] bench experiment: Fig-8-style working-set sweep
    through the full service path (codec → router → batch → commit),
    plus a per-domain recovery table from a mid-run crash.

    Unlike [Workloads.Experiments.fig8] (which drives the PTM
    directly), every operation here enters through the memcached codec
    and the shard router, so protocol parsing, batching and
    backpressure are all on the measured path.

    Deterministic: tables and [extra] are byte-identical across runs
    and across [jobs] values.  Only wall-clock recovery time is
    excluded from the gated output (it lands in the JSON extras). *)

type outcome = {
  tables : Repro_util.Table.t list;
  extra : (string * Workloads.Bench_json.json) list;
      (** spliced into [BENCH_kvserve.json] by the bench harness *)
}

val run : ?quick:bool -> ?jobs:int -> unit -> outcome

val run_trace : ?quick:bool -> ?jobs:int -> unit -> outcome
(** The [trace] experiment: every durability domain served with request
    tracing on; emits end-to-end latency percentiles measured from the
    request spans (with the per-request accounting slack, which is 0
    for the generated fleet), a tail-band (p95..p100) blame table of
    exclusive time per span kind, and — in the JSON extras — the whole
    blame vectors plus the span-store digest. *)
