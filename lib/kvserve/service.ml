module Config = Memsim.Config
module Sim = Memsim.Sim
module Ptm = Pstm.Ptm
module Pool = Parallel.Pool
module Histogram = Repro_util.Histogram

type config = {
  shards : int;
  model : Config.model;
  heap_words_per_shard : int;
  buckets_per_shard : int;
  log_words_per_thread : int;
  max_batch : int;
  debt_line_limit : int;
  restart_gap_ns : int;
  prepopulate_items : int;
  value_bytes : int;
  profile : bool;
  seed : int;
}

let default_config model =
  {
    shards = 4;
    model;
    heap_words_per_shard = 1 lsl 18;
    buckets_per_shard = 1024;
    log_words_per_thread = 8192;
    max_batch = 8;
    debt_line_limit = 24;
    restart_gap_ns = 50_000;
    prepopulate_items = 2048;
    value_bytes = 64;
    profile = false;
    seed = 0xCAFE;
  }

type opcode = Op_get | Op_set | Op_delete | Op_incr

let opcode_name = function
  | Op_get -> "get"
  | Op_set -> "set"
  | Op_delete -> "delete"
  | Op_incr -> "incr"

(* ---------- frontend: parse, route, enqueue ---------- *)

(* One sub-operation on one shard.  A multi-key [get] splits into one
   sub per key (its shards answer independently; the reply merges in
   key order).  Writes carry a per-shard [seq] — the batch-marker
   currency. *)
type sop =
  | Sget of string
  | Sset of { key : string; flags : int; data : string }
  | Sdel of string
  | Sincr of string * int

type sub = { seq : int; id : int; part : int; arrival : int; op : sop }

let is_write = function Sget _ -> false | Sset _ | Sdel _ | Sincr _ -> true

(* Parsed-request bookkeeping on the assembly side. *)
type payload =
  | P_error of string
  | P_get of { keys : string array; hits : (int * string) option array }
  | P_write of { mutable reply : string }

type item = {
  conn : int;
  arrival : int;
  opcode : opcode option;  (* None for protocol errors *)
  payload : payload;
  mutable unanswered : int;
  mutable done_at : int;
}

type frontend = { items : item array; queues : sub list array (* per shard, arrival order *) }

let frontend cfg (fleet : Client.t) =
  let parsers = Array.init fleet.Client.conns (fun _ -> Protocol.parser_create ()) in
  let items = ref [] and n_items = ref 0 in
  let queues = Array.make cfg.shards [] in
  let wseq = Array.make cfg.shards 0 in
  let push shard sub = queues.(shard) <- sub :: queues.(shard) in
  let route ~arrival ~conn (request : Protocol.request) =
    let id = !n_items in
    let item, subs =
      match request with
      | Protocol.Get keys ->
        let keys = Array.of_list keys in
        let payload = P_get { keys; hits = Array.make (Array.length keys) None } in
        ( { conn; arrival; opcode = Some Op_get; payload;
            unanswered = Array.length keys; done_at = -1 },
          Array.to_list
            (Array.mapi
               (fun part key -> (Router.shard_of_key ~shards:cfg.shards key, Sget key, part))
               keys) )
      | Protocol.Set { key; flags; data } ->
        ( { conn; arrival; opcode = Some Op_set; payload = P_write { reply = "" };
            unanswered = 1; done_at = -1 },
          [ (Router.shard_of_key ~shards:cfg.shards key, Sset { key; flags; data }, 0) ] )
      | Protocol.Delete key ->
        ( { conn; arrival; opcode = Some Op_delete; payload = P_write { reply = "" };
            unanswered = 1; done_at = -1 },
          [ (Router.shard_of_key ~shards:cfg.shards key, Sdel key, 0) ] )
      | Protocol.Incr { key; delta } ->
        ( { conn; arrival; opcode = Some Op_incr; payload = P_write { reply = "" };
            unanswered = 1; done_at = -1 },
          [ (Router.shard_of_key ~shards:cfg.shards key, Sincr (key, delta), 0) ] )
    in
    items := item :: !items;
    incr n_items;
    List.iter
      (fun (shard, op, part) ->
        let seq =
          if is_write op then begin
            wseq.(shard) <- wseq.(shard) + 1;
            wseq.(shard)
          end
          else 0
        in
        push shard { seq; id; part; arrival; op })
      subs
  in
  List.iter
    (fun { Client.arrival_ns; conn; bytes } ->
      Protocol.feed parsers.(conn) bytes;
      List.iter
        (function
          | Protocol.Request r -> route ~arrival:arrival_ns ~conn r
          | Protocol.Protocol_error reply ->
            items :=
              { conn; arrival = arrival_ns; opcode = None; payload = P_error reply;
                unanswered = 0; done_at = arrival_ns }
              :: !items;
            incr n_items)
        (Protocol.drain parsers.(conn)))
    fleet.Client.chunks;
  {
    items = Array.of_list (List.rev !items);
    queues = Array.map List.rev queues;
  }

(* ---------- per-shard execution ---------- *)

type out =
  | O_hit of int * string
  | O_miss
  | O_stored
  | O_deleted
  | O_not_found
  | O_number of int
  | O_not_numeric

type event = { e_id : int; e_part : int; e_done : int; e_out : out }

type recovery = {
  r_shard : int;
  r_logs_scanned : int;
  r_words_scanned : int;
  r_entries_replayed : int;
  r_entries_rolled_back : int;
  r_durable_marker : int;
  r_replayed_ops : int;
  r_modeled_ns : int;
  r_wall_ns : int;
}

type shard_stats = {
  s_shard : int;
  s_ops : int;
  s_commits : int;
  s_aborts : int;
  s_batches : int;
  s_max_batch : int;
  s_throttled : int;
  s_elapsed_ns : int;
}

type cell = {
  c_events : event list;  (* execution order *)
  c_batch_sizes : int list;  (* reverse commit order; order-insensitive use *)
  c_stats : shard_stats;
  c_recovery : recovery option;
  c_capture : (int * Telemetry.capture) option;
}

(* Simulated recovery time, modeled from what the recovery pass did:
   every scanned log word is a load from the log's medium (DRAM under
   PDRAM-Lite — the domain's whole point), every replayed or
   rolled-back entry a write-back to the data medium (plus a clwb when
   the domain requires flushes), closed by one fence. *)
let modeled_recovery_ns (cfg : Config.t) ~needs_flush (rr : Ptm.Recovery_report.t) =
  let lat = cfg.Config.lat in
  let log_load_ns =
    if cfg.Config.model.Config.log_in_dram then lat.Config.dram_load_ns
    else
      match cfg.Config.model.Config.data_media with
      | Config.Dram -> lat.Config.dram_load_ns
      | Config.Nvm -> lat.Config.nvm_load_ns
  in
  let writeback_ns =
    (match cfg.Config.model.Config.data_media with
    | Config.Dram -> lat.Config.dram_wpq_service_ns
    | Config.Nvm -> lat.Config.nvm_wpq_service_ns)
    + if needs_flush then lat.Config.clwb_ns else 0
  in
  (rr.Ptm.Recovery_report.words_scanned * log_load_ns)
  + ((rr.Ptm.Recovery_report.entries_replayed + rr.Ptm.Recovery_report.entries_rolled_back)
    * writeback_ns)
  + lat.Config.sfence_ns

let apply_write tx store = function
  | Sset { key; flags; data } ->
    Store.set tx store ~key ~flags data;
    O_stored
  | Sdel key -> if Store.delete tx store key then O_deleted else O_not_found
  | Sincr (key, delta) -> (
    match Store.incr tx store key delta with
    | Store.New_value v -> O_number v
    | Store.Missing -> O_not_found
    | Store.Not_numeric -> O_not_numeric)
  | Sget _ -> assert false

(* The executor: walk [positions] (indices into [subs], arrival order)
   inside a simulated thread, batching adjacent arrived writes into one
   transaction and running gets as individual read-only transactions.
   [offset] converts this sim's clock to service-global time. *)
let executor cfg ~sim ~m ~ptm ~store ~subs ~positions ~arrival ~offset ~events ~answered
    ~batches ~batch_sizes ~max_batch_seen ~throttled () =
  let n = Array.length positions in
  let now () = int_of_float (m.Machine.now_ns ()) in
  let record p done_t out =
    let s = subs.(p) in
    events := { e_id = s.id; e_part = s.part; e_done = done_t + offset; e_out = out } :: !events;
    answered.(p) <- true
  in
  let i = ref 0 in
  while !i < n do
    let p = positions.(!i) in
    let t = now () in
    let arr = arrival p in
    if arr > t then m.Machine.pause (arr - t)
    else if is_write subs.(p).op then begin
      (* Debt-driven admission: past the line limit, writes are let in
         one at a time until the WPQ has drained. *)
      let debt = Sim.Debt.sample sim in
      let pending = debt.Sim.Debt.wpq_lines + debt.Sim.Debt.armed_log_lines in
      let clamped = pending >= cfg.debt_line_limit in
      let cap = if clamped then 1 else cfg.max_batch in
      let j = ref !i in
      while
        !j < n && !j - !i < cap
        && (let q = positions.(!j) in
            is_write subs.(q).op && arrival q <= t)
      do
        incr j
      done;
      let batch = Array.sub positions !i (!j - !i) in
      let outs = ref [] in
      Ptm.atomic ptm (fun tx ->
          outs := [];
          Array.iter (fun bp -> outs := apply_write tx store subs.(bp).op :: !outs) batch;
          Store.set_batch_marker tx store subs.(batch.(Array.length batch - 1)).seq);
      let done_t = now () in
      List.iteri
        (fun k out -> record batch.(Array.length batch - 1 - k) done_t out)
        !outs;
      incr batches;
      batch_sizes := Array.length batch :: !batch_sizes;
      max_batch_seen := max !max_batch_seen (Array.length batch);
      if clamped then incr throttled;
      i := !j
    end
    else begin
      let key = match subs.(p).op with Sget k -> k | _ -> assert false in
      let out =
        Ptm.atomic ptm (fun tx ->
            match Store.get tx store key with
            | Some (flags, data) -> O_hit (flags, data)
            | None -> O_miss)
      in
      record p (now ()) out;
      incr i
    end
  done

(* Reply reconstruction for writes whose commit survived the crash but
   whose response was lost with the pre-crash process: answer from the
   recovered state (a real server's client would have seen a dropped
   connection; the simulated fleet gets a deterministic answer). *)
let reconstruct ptm store op =
  Ptm.atomic ptm (fun tx ->
      match op with
      | Sset _ -> O_stored
      | Sdel key -> if Store.get tx store key = None then O_deleted else O_not_found
      | Sincr (key, _) -> (
        match Store.get tx store key with
        | None -> O_not_found
        | Some (_, s) -> (
          match int_of_string_opt s with Some v -> O_number v | None -> O_not_numeric))
      | Sget _ -> assert false)

let populate cfg ptm store ~shard =
  let batch = ref [] in
  let flush_batch () =
    if !batch <> [] then begin
      let ops = !batch in
      batch := [];
      Ptm.atomic ptm (fun tx ->
          List.iter (fun (key, data) -> Store.set tx store ~key ~flags:0 data) ops)
    end
  in
  let add key data =
    batch := (key, data) :: !batch;
    if List.length !batch >= 32 then flush_batch ()
  in
  for rank = 0 to cfg.prepopulate_items - 1 do
    let key = Client.key_of rank in
    if Router.shard_of_key ~shards:cfg.shards key = shard then
      add key (Client.value_of ~rank ~version:0 ~value_bytes:cfg.value_bytes)
  done;
  for c = 0 to Client.counters - 1 do
    let key = Client.counter_of c in
    if Router.shard_of_key ~shards:cfg.shards key = shard then add key "0"
  done;
  flush_batch ()

let run_shard cfg ~crash_at ~shard (queue : sub list) =
  let subs = Array.of_list queue in
  let n = Array.length subs in
  let track = crash_at <> None in
  let sim_cfg =
    Config.make ~heap_words:cfg.heap_words_per_shard ~track_media:track cfg.model
  in
  let sim = Sim.create sim_cfg in
  let m = Sim.machine sim in
  let ptm =
    Ptm.create ~max_threads:1 ~log_words_per_thread:cfg.log_words_per_thread
      ~rng_seed:(cfg.seed + shard) m
  in
  let store = Store.create ptm ~buckets:cfg.buckets_per_shard in
  populate cfg ptm store ~shard;
  Sim.reset_timing sim;
  Ptm.Stats.reset ptm;
  if track then Sim.persist_all sim;
  let capture =
    if cfg.profile then
      let tcfg = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 } in
      Some (shard, Telemetry.attach ~config:tcfg sim ptm)
    else None
  in
  let events = ref [] in
  let answered = Array.make n false in
  let batches = ref 0 in
  let batch_sizes = ref [] in
  let max_batch_seen = ref 0 in
  let throttled = ref 0 in
  let all_positions = Array.init n (fun i -> i) in
  if n > 0 then
    ignore
      (Sim.spawn sim
         (executor cfg ~sim ~m ~ptm ~store ~subs ~positions:all_positions
            ~arrival:(fun p -> subs.(p).arrival)
            ~offset:0 ~events ~answered ~batches ~batch_sizes ~max_batch_seen ~throttled));
  (match crash_at with None -> Sim.run sim | Some at -> Sim.run ~crash_at:at sim);
  let crashed = Sim.crashed sim in
  let elapsed, recovery, commits2, aborts2 =
    if not crashed then (Sim.now sim, None, 0, 0)
    else begin
      (* Restart: reboot the machine image, recover the PTM, find the
         durable prefix, reconstruct lost replies, replay the rest. *)
      let sim2 = Sim.reboot sim in
      let m2 = Sim.machine sim2 in
      let t0 = Unix.gettimeofday () in
      let ptm2 = Ptm.recover ~rng_seed:(cfg.seed + shard) m2 in
      let wall_ns = int_of_float (1e9 *. (Unix.gettimeofday () -. t0)) in
      let rr =
        match Ptm.last_recovery ptm2 with Some rr -> rr | None -> assert false
      in
      let store2 = Store.attach ptm2 in
      let marker = Ptm.atomic ptm2 (fun tx -> Store.batch_marker tx store2) in
      let modeled = modeled_recovery_ns sim_cfg ~needs_flush:m2.Machine.needs_flush rr in
      let offset = (match crash_at with Some at -> at | None -> 0) + modeled
                   + cfg.restart_gap_ns in
      (* Durably-applied writes whose reply was lost: answer from the
         recovered state at the restart instant. *)
      for p = 0 to n - 1 do
        if (not answered.(p)) && is_write subs.(p).op && subs.(p).seq <= marker then begin
          let out = reconstruct ptm2 store2 subs.(p).op in
          events := { e_id = subs.(p).id; e_part = subs.(p).part; e_done = offset; e_out = out }
                    :: !events;
          answered.(p) <- true
        end
      done;
      let replay =
        Array.of_list (List.filter (fun p -> not answered.(p)) (Array.to_list all_positions))
      in
      if Array.length replay > 0 then
        ignore
          (Sim.spawn sim2
             (executor cfg ~sim:sim2 ~m:m2 ~ptm:ptm2 ~store:store2 ~subs ~positions:replay
                ~arrival:(fun p -> max (subs.(p).arrival - offset) 0)
                ~offset ~events ~answered ~batches ~batch_sizes ~max_batch_seen ~throttled));
      if Array.length replay > 0 then Sim.run sim2;
      let st2 = Ptm.Stats.get ptm2 in
      ( offset + Sim.now sim2,
        Some
          {
            r_shard = shard;
            r_logs_scanned = rr.Ptm.Recovery_report.logs_scanned;
            r_words_scanned = rr.Ptm.Recovery_report.words_scanned;
            r_entries_replayed = rr.Ptm.Recovery_report.entries_replayed;
            r_entries_rolled_back = rr.Ptm.Recovery_report.entries_rolled_back;
            r_durable_marker = marker;
            r_replayed_ops = Array.length replay;
            r_modeled_ns = modeled;
            r_wall_ns = wall_ns;
          },
        st2.Ptm.Stats.commits,
        st2.Ptm.Stats.aborts )
    end
  in
  let st = Ptm.Stats.get ptm in
  {
    c_events = List.rev !events;
    c_batch_sizes = !batch_sizes;
    c_stats =
      {
        s_shard = shard;
        s_ops = n;
        s_commits = st.Ptm.Stats.commits + commits2;
        s_aborts = st.Ptm.Stats.aborts + aborts2;
        s_batches = !batches;
        s_max_batch = !max_batch_seen;
        s_throttled = !throttled;
        s_elapsed_ns = elapsed;
      };
    c_recovery = recovery;
    c_capture = capture;
  }

(* ---------- assembly ---------- *)

type result = {
  model : string;
  requests : int;
  kv_ops : int;
  protocol_errors : int;
  get_hits : int;
  get_misses : int;
  elapsed_ns : int;
  ops_per_sec : float;
  replies : string array;
  latency : (opcode * Histogram.t) list;
  batch_occupancy : Histogram.t;
  shard_ops : int array;
  imbalance : float;
  shards : shard_stats list;
  recoveries : recovery list;
  crashed : bool;
  captures : (int * Telemetry.capture) list;
}

let render_out = function
  | O_stored -> Protocol.render_reply Protocol.Stored
  | O_deleted -> Protocol.render_reply Protocol.Deleted
  | O_not_found -> Protocol.render_reply Protocol.Not_found
  | O_number v -> Protocol.render_reply (Protocol.Number v)
  | O_not_numeric ->
    Protocol.render_reply
      (Protocol.Client_error "cannot increment or decrement non-numeric value")
  | O_hit _ | O_miss -> assert false

let run ?jobs ?crash_at cfg (fleet : Client.t) =
  let fe = frontend cfg fleet in
  let cells =
    Pool.run ?jobs
      (List.init cfg.shards (fun shard () ->
           run_shard cfg ~crash_at ~shard fe.queues.(shard)))
  in
  let hist = [ Op_get; Op_set; Op_delete; Op_incr ] in
  let latency = List.map (fun oc -> (oc, Histogram.create ())) hist in
  let batch_occupancy = Histogram.create () in
  let get_hits = ref 0 and get_misses = ref 0 in
  (* Apply shard events in shard order: parts land in their items; an
     item completes when its last part does. *)
  List.iter
    (fun cell ->
      List.iter
        (fun ev ->
          let item = fe.items.(ev.e_id) in
          (match item.payload with
          | P_get g ->
            (match ev.e_out with
            | O_hit (flags, data) ->
              g.hits.(ev.e_part) <- Some (flags, data);
              incr get_hits
            | O_miss -> incr get_misses
            | _ -> assert false)
          | P_write w -> w.reply <- render_out ev.e_out
          | P_error _ -> assert false);
          item.done_at <- max item.done_at ev.e_done;
          item.unanswered <- item.unanswered - 1;
          if item.unanswered = 0 then
            match item.opcode with
            | Some oc ->
              Histogram.record (List.assoc oc latency) (item.done_at - item.arrival)
            | None -> ())
        cell.c_events;
      List.iter (Histogram.record batch_occupancy) (List.rev cell.c_batch_sizes))
    cells;
  (* Render per-connection reply streams in request order. *)
  let bufs = Array.init fleet.Client.conns (fun _ -> Buffer.create 256) in
  let protocol_errors = ref 0 in
  Array.iter
    (fun item ->
      let reply =
        match item.payload with
        | P_error e ->
          incr protocol_errors;
          e
        | P_write w -> w.reply
        | P_get g ->
          let hits = ref [] in
          for k = Array.length g.keys - 1 downto 0 do
            match g.hits.(k) with
            | Some (flags, data) -> hits := (g.keys.(k), flags, data) :: !hits
            | None -> ()
          done;
          Protocol.render_reply (Protocol.Values !hits)
      in
      Buffer.add_string bufs.(item.conn) reply)
    fe.items;
  let shard_ops = Array.of_list (List.map (fun c -> c.c_stats.s_ops) cells) in
  let kv_ops = Array.fold_left ( + ) 0 shard_ops in
  let elapsed_ns = List.fold_left (fun acc c -> max acc c.c_stats.s_elapsed_ns) 1 cells in
  let mean_load = float_of_int kv_ops /. float_of_int (max 1 cfg.shards) in
  let imbalance =
    if kv_ops = 0 then 1.0
    else float_of_int (Array.fold_left max 0 shard_ops) /. mean_load
  in
  {
    model = cfg.model.Config.model_name;
    requests = Array.length fe.items;
    kv_ops;
    protocol_errors = !protocol_errors;
    get_hits = !get_hits;
    get_misses = !get_misses;
    elapsed_ns;
    ops_per_sec = float_of_int kv_ops /. (float_of_int elapsed_ns *. 1e-9);
    replies = Array.map Buffer.contents bufs;
    latency;
    batch_occupancy;
    shard_ops;
    imbalance;
    shards = List.map (fun c -> c.c_stats) cells;
    recoveries = List.filter_map (fun c -> c.c_recovery) cells;
    crashed = List.exists (fun c -> c.c_recovery <> None) cells;
    captures = List.filter_map (fun c -> c.c_capture) cells;
  }

(* ---------- metrics export ---------- *)

let metrics_jsonl (cfg : config) (r : result) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let esc = Telemetry.Export.json_escape in
  line
    "{\"schema\":%S,\"kind\":\"kvserve\",\"model\":\"%s\",\"shards\":%d,\"requests\":%d,\"kv_ops\":%d,\"protocol_errors\":%d,\"elapsed_ns\":%d,\"crashed\":%b}"
    Telemetry.Export.schema_version (esc r.model) cfg.shards r.requests r.kv_ops
    r.protocol_errors r.elapsed_ns r.crashed;
  List.iter
    (fun (oc, h) ->
      if Histogram.count h > 0 then
        line
          "{\"kind\":\"op-latency\",\"op\":\"%s\",\"count\":%d,\"mean_ns\":%.1f,\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f,\"max_ns\":%d}"
          (opcode_name oc) (Histogram.count h) (Histogram.mean h)
          (Histogram.percentile h 50.0) (Histogram.percentile h 95.0)
          (Histogram.percentile h 99.0) (Histogram.max_value h))
    r.latency;
  if Histogram.count r.batch_occupancy > 0 then
    line
      "{\"kind\":\"batch-occupancy\",\"batches\":%d,\"mean\":%.2f,\"p95\":%.1f,\"max\":%d,\"hits\":%d,\"misses\":%d,\"imbalance\":%.3f}"
      (Histogram.count r.batch_occupancy)
      (Histogram.mean r.batch_occupancy)
      (Histogram.percentile r.batch_occupancy 95.0)
      (Histogram.max_value r.batch_occupancy)
      r.get_hits r.get_misses r.imbalance;
  List.iter
    (fun s ->
      line
        "{\"kind\":\"shard\",\"shard\":%d,\"ops\":%d,\"commits\":%d,\"aborts\":%d,\"batches\":%d,\"max_batch\":%d,\"throttled\":%d,\"elapsed_ns\":%d}"
        s.s_shard s.s_ops s.s_commits s.s_aborts s.s_batches s.s_max_batch s.s_throttled
        s.s_elapsed_ns)
    r.shards;
  List.iter
    (fun rc ->
      line
        "{\"kind\":\"recovery\",\"shard\":%d,\"logs_scanned\":%d,\"words_scanned\":%d,\"entries_replayed\":%d,\"entries_rolled_back\":%d,\"durable_marker\":%d,\"replayed_ops\":%d,\"modeled_ns\":%d}"
        rc.r_shard rc.r_logs_scanned rc.r_words_scanned rc.r_entries_replayed
        rc.r_entries_rolled_back rc.r_durable_marker rc.r_replayed_ops rc.r_modeled_ns)
    r.recoveries;
  Buffer.contents b
