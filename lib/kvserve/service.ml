module Config = Memsim.Config
module Sim = Memsim.Sim
module Ptm = Pstm.Ptm
module Profile = Pstm.Profile
module Pool = Parallel.Pool
module Histogram = Repro_util.Histogram
module Trace = Telemetry.Trace
module Registry = Telemetry.Registry

type config = {
  shards : int;
  model : Config.model;
  heap_words_per_shard : int;
  buckets_per_shard : int;
  log_words_per_thread : int;
  max_batch : int;
  debt_line_limit : int;
  restart_gap_ns : int;
  prepopulate_items : int;
  value_bytes : int;
  profile : bool;
  trace : bool;
  seed : int;
}

let default_config model =
  {
    shards = 4;
    model;
    heap_words_per_shard = 1 lsl 18;
    buckets_per_shard = 1024;
    log_words_per_thread = 8192;
    max_batch = 8;
    debt_line_limit = 24;
    restart_gap_ns = 50_000;
    prepopulate_items = 2048;
    value_bytes = 64;
    profile = false;
    trace = false;
    seed = 0xCAFE;
  }

type opcode = Op_get | Op_set | Op_delete | Op_incr

let opcode_name = function
  | Op_get -> "get"
  | Op_set -> "set"
  | Op_delete -> "delete"
  | Op_incr -> "incr"

(* ---------- frontend: parse, route, enqueue ---------- *)

(* One sub-operation on one shard.  A multi-key [get] splits into one
   sub per key (its shards answer independently; the reply merges in
   key order).  Writes carry a per-shard [seq] — the batch-marker
   currency. *)
type sop =
  | Sget of string
  | Sset of { key : string; flags : int; data : string }
  | Sdel of string
  | Sincr of string * int

type sub = { seq : int; id : int; part : int; arrival : int; op : sop; strace : int }

let is_write = function Sget _ -> false | Sset _ | Sdel _ | Sincr _ -> true

(* Parsed-request bookkeeping on the assembly side. *)
type payload =
  | P_error of string
  | P_get of { keys : string array; hits : (int * string) option array }
  | P_write of { mutable reply : string }
  | P_stats of { mutable reply : string }

type item = {
  conn : int;
  arrival : int;
  opcode : opcode option;  (* None for protocol errors and [stats] *)
  payload : payload;
  trace : int;  (* trace id; -1 when tracing is off or untraced *)
  mutable unanswered : int;
  mutable done_at : int;
}

type frontend = { items : item array; queues : sub list array (* per shard, arrival order *) }

let frontend cfg (fleet : Client.t) =
  let parsers = Array.init fleet.Client.conns (fun _ -> Protocol.parser_create ()) in
  let items = ref [] and n_items = ref 0 in
  let queues = Array.make cfg.shards [] in
  let wseq = Array.make cfg.shards 0 in
  let push shard sub = queues.(shard) <- sub :: queues.(shard) in
  (* Trace-context allocation: the [o]-th parsed item on a connection
     takes the generator-assigned id when the fleet carries one, and a
     synthesized (conn, ordinal) id otherwise.  Ordinals advance on
     protocol errors too, so a torn frame never shifts later ids. *)
  let ord = Array.make fleet.Client.conns 0 in
  let next_trace conn =
    let o = ord.(conn) in
    ord.(conn) <- o + 1;
    if not cfg.trace then -1
    else if
      conn < Array.length fleet.Client.trace_ids
      && o < Array.length fleet.Client.trace_ids.(conn)
    then fleet.Client.trace_ids.(conn).(o)
    else (conn lsl 20) + o
  in
  let route ~arrival ~conn (request : Protocol.request) =
    let id = !n_items in
    let trace = next_trace conn in
    let item, subs =
      match request with
      | Protocol.Get keys ->
        let keys = Array.of_list keys in
        let payload = P_get { keys; hits = Array.make (Array.length keys) None } in
        ( { conn; arrival; opcode = Some Op_get; payload; trace;
            unanswered = Array.length keys; done_at = -1 },
          Array.to_list
            (Array.mapi
               (fun part key -> (Router.shard_of_key ~shards:cfg.shards key, Sget key, part))
               keys) )
      | Protocol.Set { key; flags; data } ->
        ( { conn; arrival; opcode = Some Op_set; payload = P_write { reply = "" }; trace;
            unanswered = 1; done_at = -1 },
          [ (Router.shard_of_key ~shards:cfg.shards key, Sset { key; flags; data }, 0) ] )
      | Protocol.Delete key ->
        ( { conn; arrival; opcode = Some Op_delete; payload = P_write { reply = "" }; trace;
            unanswered = 1; done_at = -1 },
          [ (Router.shard_of_key ~shards:cfg.shards key, Sdel key, 0) ] )
      | Protocol.Incr { key; delta } ->
        ( { conn; arrival; opcode = Some Op_incr; payload = P_write { reply = "" }; trace;
            unanswered = 1; done_at = -1 },
          [ (Router.shard_of_key ~shards:cfg.shards key, Sincr (key, delta), 0) ] )
      | Protocol.Stats ->
        (* Answered at the frontend from the end-of-run registry
           snapshot: no shard work, completes at its arrival instant. *)
        ( { conn; arrival; opcode = None; payload = P_stats { reply = "" }; trace;
            unanswered = 0; done_at = arrival },
          [] )
    in
    items := item :: !items;
    incr n_items;
    List.iter
      (fun (shard, op, part) ->
        let seq =
          if is_write op then begin
            wseq.(shard) <- wseq.(shard) + 1;
            wseq.(shard)
          end
          else 0
        in
        push shard { seq; id; part; arrival; op; strace = trace })
      subs
  in
  List.iter
    (fun { Client.arrival_ns; conn; bytes } ->
      Protocol.feed parsers.(conn) bytes;
      List.iter
        (function
          | Protocol.Request r -> route ~arrival:arrival_ns ~conn r
          | Protocol.Protocol_error reply ->
            ignore (next_trace conn);
            items :=
              { conn; arrival = arrival_ns; opcode = None; payload = P_error reply;
                trace = -1; unanswered = 0; done_at = arrival_ns }
              :: !items;
            incr n_items)
        (Protocol.drain parsers.(conn)))
    fleet.Client.chunks;
  {
    items = Array.of_list (List.rev !items);
    queues = Array.map List.rev queues;
  }

(* ---------- per-shard execution ---------- *)

type out =
  | O_hit of int * string
  | O_miss
  | O_stored
  | O_deleted
  | O_not_found
  | O_number of int
  | O_not_numeric

type event = { e_id : int; e_part : int; e_done : int; e_out : out }

type recovery = {
  r_shard : int;
  r_logs_scanned : int;
  r_words_scanned : int;
  r_entries_replayed : int;
  r_entries_rolled_back : int;
  r_durable_marker : int;
  r_replayed_ops : int;
  r_modeled_ns : int;
  r_wall_ns : int;
}

type shard_stats = {
  s_shard : int;
  s_ops : int;
  s_commits : int;
  s_aborts : int;
  s_batches : int;
  s_max_batch : int;
  s_throttled : int;
  s_elapsed_ns : int;
  s_ptm : Ptm.Stats.t;
  s_sim : (string * int) list;
}

type cell = {
  c_events : event list;  (* execution order *)
  c_batch_sizes : int list;  (* reverse commit order; order-insensitive use *)
  c_stats : shard_stats;
  c_recovery : recovery option;
  c_capture : (int * Telemetry.capture) option;
  c_trace : Trace.t option;
}

(* Simulated recovery time, modeled from what the recovery pass did:
   every scanned log word is a load from the log's medium (DRAM under
   PDRAM-Lite — the domain's whole point), every replayed or
   rolled-back entry a write-back to the data medium (plus a clwb when
   the domain requires flushes), closed by one fence. *)
let modeled_recovery_ns (cfg : Config.t) ~needs_flush (rr : Ptm.Recovery_report.t) =
  let lat = cfg.Config.lat in
  let log_load_ns =
    if cfg.Config.model.Config.log_in_dram then lat.Config.dram_load_ns
    else
      match cfg.Config.model.Config.data_media with
      | Config.Dram -> lat.Config.dram_load_ns
      | Config.Nvm -> lat.Config.nvm_load_ns
  in
  let writeback_ns =
    (match cfg.Config.model.Config.data_media with
    | Config.Dram -> lat.Config.dram_wpq_service_ns
    | Config.Nvm -> lat.Config.nvm_wpq_service_ns)
    + if needs_flush then lat.Config.clwb_ns else 0
  in
  (rr.Ptm.Recovery_report.words_scanned * log_load_ns)
  + ((rr.Ptm.Recovery_report.entries_replayed + rr.Ptm.Recovery_report.entries_rolled_back)
    * writeback_ns)
  + lat.Config.sfence_ns

let apply_write tx store = function
  | Sset { key; flags; data } ->
    Store.set tx store ~key ~flags data;
    O_stored
  | Sdel key -> if Store.delete tx store key then O_deleted else O_not_found
  | Sincr (key, delta) -> (
    match Store.incr tx store key delta with
    | Store.New_value v -> O_number v
    | Store.Missing -> O_not_found
    | Store.Not_numeric -> O_not_numeric)
  | Sget _ -> assert false

(* The executor: walk [positions] (indices into [subs], arrival order)
   inside a simulated thread, batching adjacent arrived writes into one
   transaction and running gets as individual read-only transactions.
   [offset] converts this sim's clock to service-global time.

   [garrival] is a sub's arrival on the service-global clock (equal to
   [arrival] in the primary pass; during replay [arrival] is rebased to
   the restarted sim's clock while spans keep global instants).  When
   [tracing] is on, each executed sub gets a wait span (queue-wait /
   throttle-wait for a batch leader, batch-wait for followers) and an
   execution span (commit / read) whose children are the PTM profile
   slices bracketed by the transaction — pure observation, recorded
   from clock values the executor already read. *)
let executor cfg ~sim ~m ~ptm ~store ~subs ~positions ~arrival ~garrival ~offset ~events
    ~answered ~batches ~batch_sizes ~max_batch_seen ~throttled ~tracing ~shard () =
  let n = Array.length positions in
  let now () = int_of_float (m.Machine.now_ns ()) in
  let record p done_t out =
    let s = subs.(p) in
    events := { e_id = s.id; e_part = s.part; e_done = done_t + offset; e_out = out } :: !events;
    answered.(p) <- true
  in
  let mark () =
    match tracing with Some (_, prof) -> Profile.spans_recorded prof | None -> 0
  in
  let slices_since m0 =
    match tracing with
    | None -> []
    | Some (_, prof) ->
      List.filter
        (fun (s : Profile.span) -> s.Profile.label <> "txn" && s.Profile.label <> "txn-failed")
        (Profile.spans_since prof m0)
  in
  let trace_exec ~p ~wait_kind ~exec_kind ~pickup ~done_t ~slices =
    match tracing with
    | None -> ()
    | Some (tr, _) ->
      let strace = subs.(p).strace in
      let pickup_g = pickup + offset and done_g = done_t + offset in
      ignore
        (Trace.span tr ~trace:strace ~parent:Trace.root_parent ~kind:wait_kind ~tid:shard
           ~start_ns:(garrival p) ~stop_ns:pickup_g);
      let exec =
        Trace.span tr ~trace:strace ~parent:Trace.root_parent ~kind:exec_kind ~tid:shard
          ~start_ns:pickup_g ~stop_ns:done_g
      in
      List.iter
        (fun (sl : Profile.span) ->
          ignore
            (Trace.span tr ~trace:strace ~parent:exec ~kind:sl.Profile.label ~tid:shard
               ~start_ns:(sl.Profile.start_ns + offset)
               ~stop_ns:(sl.Profile.stop_ns + offset)))
        slices
  in
  let i = ref 0 in
  while !i < n do
    let p = positions.(!i) in
    let t = now () in
    let arr = arrival p in
    if arr > t then m.Machine.pause (arr - t)
    else if is_write subs.(p).op then begin
      (* Debt-driven admission: past the line limit, writes are let in
         one at a time until the WPQ has drained. *)
      let debt = Sim.Debt.sample sim in
      let pending = debt.Sim.Debt.wpq_lines + debt.Sim.Debt.armed_log_lines in
      let clamped = pending >= cfg.debt_line_limit in
      let cap = if clamped then 1 else cfg.max_batch in
      let j = ref !i in
      while
        !j < n && !j - !i < cap
        && (let q = positions.(!j) in
            is_write subs.(q).op && arrival q <= t)
      do
        incr j
      done;
      let batch = Array.sub positions !i (!j - !i) in
      let outs = ref [] in
      let m0 = mark () in
      Ptm.atomic ptm (fun tx ->
          outs := [];
          Array.iter (fun bp -> outs := apply_write tx store subs.(bp).op :: !outs) batch;
          Store.set_batch_marker tx store subs.(batch.(Array.length batch - 1)).seq);
      let done_t = now () in
      let slices = slices_since m0 in
      Array.iteri
        (fun bi bp ->
          let wait_kind =
            if bi > 0 then "batch-wait"
            else if clamped then "throttle-wait"
            else "queue-wait"
          in
          trace_exec ~p:bp ~wait_kind ~exec_kind:"commit" ~pickup:t ~done_t ~slices)
        batch;
      List.iteri
        (fun k out -> record batch.(Array.length batch - 1 - k) done_t out)
        !outs;
      incr batches;
      batch_sizes := Array.length batch :: !batch_sizes;
      max_batch_seen := max !max_batch_seen (Array.length batch);
      if clamped then incr throttled;
      i := !j
    end
    else begin
      let key = match subs.(p).op with Sget k -> k | _ -> assert false in
      let m0 = mark () in
      let out =
        Ptm.atomic ptm (fun tx ->
            match Store.get tx store key with
            | Some (flags, data) -> O_hit (flags, data)
            | None -> O_miss)
      in
      let done_t = now () in
      trace_exec ~p ~wait_kind:"queue-wait" ~exec_kind:"read" ~pickup:t ~done_t
        ~slices:(slices_since m0);
      record p done_t out;
      incr i
    end
  done

(* Reply reconstruction for writes whose commit survived the crash but
   whose response was lost with the pre-crash process: answer from the
   recovered state (a real server's client would have seen a dropped
   connection; the simulated fleet gets a deterministic answer). *)
let reconstruct ptm store op =
  Ptm.atomic ptm (fun tx ->
      match op with
      | Sset _ -> O_stored
      | Sdel key -> if Store.get tx store key = None then O_deleted else O_not_found
      | Sincr (key, _) -> (
        match Store.get tx store key with
        | None -> O_not_found
        | Some (_, s) -> (
          match int_of_string_opt s with Some v -> O_number v | None -> O_not_numeric))
      | Sget _ -> assert false)

let populate cfg ptm store ~shard =
  let batch = ref [] in
  let flush_batch () =
    if !batch <> [] then begin
      let ops = !batch in
      batch := [];
      Ptm.atomic ptm (fun tx ->
          List.iter (fun (key, data) -> Store.set tx store ~key ~flags:0 data) ops)
    end
  in
  let add key data =
    batch := (key, data) :: !batch;
    if List.length !batch >= 32 then flush_batch ()
  in
  for rank = 0 to cfg.prepopulate_items - 1 do
    let key = Client.key_of rank in
    if Router.shard_of_key ~shards:cfg.shards key = shard then
      add key (Client.value_of ~rank ~version:0 ~value_bytes:cfg.value_bytes)
  done;
  for c = 0 to Client.counters - 1 do
    let key = Client.counter_of c in
    if Router.shard_of_key ~shards:cfg.shards key = shard then add key "0"
  done;
  flush_batch ()

let run_shard cfg ~crash_at ~shard (queue : sub list) =
  let subs = Array.of_list queue in
  let n = Array.length subs in
  let track = crash_at <> None in
  let sim_cfg =
    Config.make ~heap_words:cfg.heap_words_per_shard ~track_media:track cfg.model
  in
  let sim = Sim.create sim_cfg in
  let m = Sim.machine sim in
  let ptm =
    Ptm.create ~max_threads:1 ~log_words_per_thread:cfg.log_words_per_thread
      ~rng_seed:(cfg.seed + shard) m
  in
  let store = Store.create ptm ~buckets:cfg.buckets_per_shard in
  populate cfg ptm store ~shard;
  Sim.reset_timing sim;
  Ptm.Stats.reset ptm;
  if track then Sim.persist_all sim;
  let capture =
    if cfg.profile then
      let tcfg = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 } in
      Some (shard, Telemetry.attach ~config:tcfg sim ptm)
    else None
  in
  (* Request tracing rides on a phase profiler (observation-only, so
     enabling it perturbs no virtual time).  When [profile] already
     attached one via the capture, reuse it — the PTM has a single
     profiler slot. *)
  let tracing =
    if not cfg.trace then None
    else
      let prof =
        match capture with
        | Some (_, cap) -> Telemetry.profile cap
        | None ->
          let p =
            Profile.create ~wpq_stall_probe:(fun tid -> Sim.wpq_stall_ns_of sim ~tid) m
          in
          Ptm.set_profiler ptm (Some p);
          p
      in
      Some (Trace.create (), prof)
  in
  let events = ref [] in
  let answered = Array.make n false in
  let batches = ref 0 in
  let batch_sizes = ref [] in
  let max_batch_seen = ref 0 in
  let throttled = ref 0 in
  let all_positions = Array.init n (fun i -> i) in
  if n > 0 then
    ignore
      (Sim.spawn sim
         (executor cfg ~sim ~m ~ptm ~store ~subs ~positions:all_positions
            ~arrival:(fun p -> subs.(p).arrival)
            ~garrival:(fun p -> subs.(p).arrival)
            ~offset:0 ~events ~answered ~batches ~batch_sizes ~max_batch_seen ~throttled
            ~tracing ~shard));
  (match crash_at with None -> Sim.run sim | Some at -> Sim.run ~crash_at:at sim);
  let crashed = Sim.crashed sim in
  let elapsed, recovery, st2, sim2_fields =
    if not crashed then (Sim.now sim, None, None, None)
    else begin
      (* Restart: reboot the machine image, recover the PTM, find the
         durable prefix, reconstruct lost replies, replay the rest. *)
      let sim2 = Sim.reboot sim in
      let m2 = Sim.machine sim2 in
      (* The restarted PTM needs its own profiler (fresh machine), but
         spans keep landing in the same per-shard trace store. *)
      let tracing2 =
        match tracing with
        | None -> None
        | Some (tr, _) ->
          let p =
            Profile.create ~wpq_stall_probe:(fun tid -> Sim.wpq_stall_ns_of sim2 ~tid) m2
          in
          Some (tr, p)
      in
      let t0 = Unix.gettimeofday () in
      let ptm2 =
        Ptm.recover ?profiler:(Option.map snd tracing2) ~rng_seed:(cfg.seed + shard) m2
      in
      let wall_ns = int_of_float (1e9 *. (Unix.gettimeofday () -. t0)) in
      let rr =
        match Ptm.last_recovery ptm2 with Some rr -> rr | None -> assert false
      in
      let store2 = Store.attach ptm2 in
      let marker = Ptm.atomic ptm2 (fun tx -> Store.batch_marker tx store2) in
      let modeled = modeled_recovery_ns sim_cfg ~needs_flush:m2.Machine.needs_flush rr in
      let at = match crash_at with Some at -> at | None -> 0 in
      let offset = at + modeled + cfg.restart_gap_ns in
      (* Service-level downtime spans: trace -1 keeps them out of
         per-request accounting but on the Perfetto service track. *)
      (match tracing2 with
      | None -> ()
      | Some (tr, _) ->
        ignore
          (Trace.span tr ~trace:(-1) ~parent:Trace.root_parent ~kind:"recovery" ~tid:shard
             ~start_ns:at ~stop_ns:(at + modeled));
        ignore
          (Trace.span tr ~trace:(-1) ~parent:Trace.root_parent ~kind:"restart-gap" ~tid:shard
             ~start_ns:(at + modeled) ~stop_ns:offset));
      (* Durably-applied writes whose reply was lost: answer from the
         recovered state at the restart instant. *)
      for p = 0 to n - 1 do
        if (not answered.(p)) && is_write subs.(p).op && subs.(p).seq <= marker then begin
          let out = reconstruct ptm2 store2 subs.(p).op in
          events := { e_id = subs.(p).id; e_part = subs.(p).part; e_done = offset; e_out = out }
                    :: !events;
          (match tracing2 with
          | None -> ()
          | Some (tr, _) ->
            ignore
              (Trace.span tr ~trace:subs.(p).strace ~parent:Trace.root_parent
                 ~kind:"lost-reply-recovery" ~tid:shard ~start_ns:subs.(p).arrival
                 ~stop_ns:offset));
          answered.(p) <- true
        end
      done;
      let replay =
        Array.of_list (List.filter (fun p -> not answered.(p)) (Array.to_list all_positions))
      in
      if Array.length replay > 0 then
        ignore
          (Sim.spawn sim2
             (executor cfg ~sim:sim2 ~m:m2 ~ptm:ptm2 ~store:store2 ~subs ~positions:replay
                ~arrival:(fun p -> max (subs.(p).arrival - offset) 0)
                ~garrival:(fun p -> subs.(p).arrival)
                ~offset ~events ~answered ~batches ~batch_sizes ~max_batch_seen ~throttled
                ~tracing:tracing2 ~shard));
      if Array.length replay > 0 then Sim.run sim2;
      ( offset + Sim.now sim2,
        Some
          {
            r_shard = shard;
            r_logs_scanned = rr.Ptm.Recovery_report.logs_scanned;
            r_words_scanned = rr.Ptm.Recovery_report.words_scanned;
            r_entries_replayed = rr.Ptm.Recovery_report.entries_replayed;
            r_entries_rolled_back = rr.Ptm.Recovery_report.entries_rolled_back;
            r_durable_marker = marker;
            r_replayed_ops = Array.length replay;
            r_modeled_ns = modeled;
            r_wall_ns = wall_ns;
          },
        Some (Ptm.Stats.get ptm2),
        Some (Sim.Stats.fields (Sim.Stats.get sim2)) )
    end
  in
  let st = Ptm.Stats.get ptm in
  let st =
    match st2 with
    | None -> st
    | Some s2 ->
      {
        Ptm.Stats.commits = st.Ptm.Stats.commits + s2.Ptm.Stats.commits;
        aborts = st.Ptm.Stats.aborts + s2.Ptm.Stats.aborts;
        read_only_commits = st.Ptm.Stats.read_only_commits + s2.Ptm.Stats.read_only_commits;
        max_write_set = max st.Ptm.Stats.max_write_set s2.Ptm.Stats.max_write_set;
        max_log_lines = max st.Ptm.Stats.max_log_lines s2.Ptm.Stats.max_log_lines;
      }
  in
  let sim_fields = Sim.Stats.fields (Sim.Stats.get sim) in
  let sim_fields =
    match sim2_fields with
    | None -> sim_fields
    | Some f2 -> List.map2 (fun (k, v) (_, v2) -> (k, v + v2)) sim_fields f2
  in
  {
    c_events = List.rev !events;
    c_batch_sizes = !batch_sizes;
    c_stats =
      {
        s_shard = shard;
        s_ops = n;
        s_commits = st.Ptm.Stats.commits;
        s_aborts = st.Ptm.Stats.aborts;
        s_batches = !batches;
        s_max_batch = !max_batch_seen;
        s_throttled = !throttled;
        s_elapsed_ns = elapsed;
        s_ptm = st;
        s_sim = sim_fields;
      };
    c_recovery = recovery;
    c_capture = capture;
    c_trace = Option.map fst tracing;
  }

(* ---------- assembly ---------- *)

type result = {
  model : string;
  requests : int;
  kv_ops : int;
  protocol_errors : int;
  get_hits : int;
  get_misses : int;
  elapsed_ns : int;
  ops_per_sec : float;
  replies : string array;
  latency : (opcode * Histogram.t) list;
  batch_occupancy : Histogram.t;
  shard_ops : int array;
  imbalance : float;
  shards : shard_stats list;
  recoveries : recovery list;
  crashed : bool;
  captures : (int * Telemetry.capture) list;
  trace : Trace.t option;
}

let render_out = function
  | O_stored -> Protocol.render_reply Protocol.Stored
  | O_deleted -> Protocol.render_reply Protocol.Deleted
  | O_not_found -> Protocol.render_reply Protocol.Not_found
  | O_number v -> Protocol.render_reply (Protocol.Number v)
  | O_not_numeric ->
    Protocol.render_reply
      (Protocol.Client_error "cannot increment or decrement non-numeric value")
  | O_hit _ | O_miss -> assert false

(* The unified metrics registry over a finished run: service-level
   counters and latency histograms, per-shard PTM and simulated-machine
   counters, and (when the run crashed) the recovery-report counters —
   one definition behind the Prometheus text, the [stats] verb and the
   JSONL export.  Purely a projection of [result]: building it twice
   yields byte-identical exports. *)
let registry (cfg : config) (r : result) =
  let reg = Registry.create () in
  let gauge ?(labels = []) name help v = Registry.set_int (Registry.gauge reg ~help ~labels name) v in
  let count ?(labels = []) name help v = Registry.inc (Registry.counter reg ~help ~labels name) v in
  count "kvserve_requests" "parsed requests answered (protocol errors included)" r.requests;
  count "kvserve_kv_ops" "sub-operations executed against shards" r.kv_ops;
  count "kvserve_protocol_errors" "malformed frames answered" r.protocol_errors;
  count "kvserve_get_hits" "get sub-operations that hit" r.get_hits;
  count "kvserve_get_misses" "get sub-operations that missed" r.get_misses;
  gauge "kvserve_shards" "shard count" cfg.shards;
  gauge "kvserve_elapsed_ns" "final virtual time, max over shards" r.elapsed_ns;
  gauge "kvserve_crashed" "1 when the run crashed and recovered" (if r.crashed then 1 else 0);
  List.iter
    (fun (oc, h) ->
      if Histogram.count h > 0 then
        Registry.observe_hist
          (Registry.histogram reg ~help:"request latency, arrival to completion (virtual ns)"
             ~labels:[ ("op", opcode_name oc) ]
             "kvserve_op_latency_ns")
          h)
    r.latency;
  if Histogram.count r.batch_occupancy > 0 then
    Registry.observe_hist
      (Registry.histogram reg ~help:"writes coalesced per commit" "kvserve_batch_occupancy")
      r.batch_occupancy;
  List.iter
    (fun s ->
      let labels = [ ("shard", string_of_int s.s_shard) ] in
      count ~labels "kvserve_shard_ops" "sub-operations executed by this shard" s.s_ops;
      count ~labels "kvserve_shard_batches" "write batches committed" s.s_batches;
      count ~labels "kvserve_shard_throttled" "batches clamped by the debt knob" s.s_throttled;
      gauge ~labels "kvserve_shard_elapsed_ns" "this shard's final virtual time" s.s_elapsed_ns;
      Registry.publish_ptm_stats reg ~labels s.s_ptm;
      List.iter
        (fun (field, v) ->
          Registry.set_int
            (Registry.gauge reg ~help:"simulated machine counter" ~labels ("sim_" ^ field))
            v)
        s.s_sim)
    r.shards;
  (* Recovery-time counters (wall time deliberately excluded: it is the
     one nondeterministic field of the report). *)
  List.iter
    (fun rc ->
      let labels = [ ("shard", string_of_int rc.r_shard) ] in
      let g name help v = gauge ~labels ("kvserve_recovery_" ^ name) help v in
      g "logs_scanned" "per-thread logs scanned at recovery" rc.r_logs_scanned;
      g "words_scanned" "log words scanned at recovery" rc.r_words_scanned;
      g "entries_replayed" "redo entries replayed" rc.r_entries_replayed;
      g "entries_rolled_back" "undo entries rolled back" rc.r_entries_rolled_back;
      g "durable_marker" "last write batch that survived the crash" rc.r_durable_marker;
      g "replayed_ops" "sub-operations re-run after the marker" rc.r_replayed_ops;
      g "modeled_ns" "modeled recovery time (virtual ns)" rc.r_modeled_ns)
    r.recoveries;
  reg

let run ?jobs ?crash_at cfg (fleet : Client.t) =
  let fe = frontend cfg fleet in
  let cells =
    Pool.run ?jobs
      (List.init cfg.shards (fun shard () ->
           run_shard cfg ~crash_at ~shard fe.queues.(shard)))
  in
  let hist = [ Op_get; Op_set; Op_delete; Op_incr ] in
  let latency = List.map (fun oc -> (oc, Histogram.create ())) hist in
  let batch_occupancy = Histogram.create () in
  let get_hits = ref 0 and get_misses = ref 0 in
  (* Apply shard events in shard order: parts land in their items; an
     item completes when its last part does. *)
  List.iter
    (fun cell ->
      List.iter
        (fun ev ->
          let item = fe.items.(ev.e_id) in
          (match item.payload with
          | P_get g ->
            (match ev.e_out with
            | O_hit (flags, data) ->
              g.hits.(ev.e_part) <- Some (flags, data);
              incr get_hits
            | O_miss -> incr get_misses
            | _ -> assert false)
          | P_write w -> w.reply <- render_out ev.e_out
          | P_error _ | P_stats _ -> assert false);
          item.done_at <- max item.done_at ev.e_done;
          item.unanswered <- item.unanswered - 1;
          if item.unanswered = 0 then
            match item.opcode with
            | Some oc ->
              Histogram.record (List.assoc oc latency) (item.done_at - item.arrival)
            | None -> ())
        cell.c_events;
      List.iter (Histogram.record batch_occupancy) (List.rev cell.c_batch_sizes))
    cells;
  (* Assemble the service-global trace: one root ("request") span per
     traced item, then every shard store merged with its local parents
     rebased and root references resolved.  Roots come first in item
     order and shards merge in shard order, so the store (and its
     digest) is identical for any [jobs] value. *)
  let trace =
    if not cfg.trace then None
    else begin
      let tr = Trace.create () in
      let root_of = Hashtbl.create 1024 in
      Array.iter
        (fun (item : item) ->
          if item.trace >= 0 then begin
            let idx =
              Trace.span tr ~trace:item.trace ~parent:Trace.root_parent ~kind:"request"
                ~tid:item.conn ~start_ns:item.arrival
                ~stop_ns:(max item.arrival item.done_at)
            in
            Hashtbl.replace root_of item.trace idx
          end)
        fe.items;
      let root_for t =
        if t < 0 then Trace.root_parent
        else Option.value (Hashtbl.find_opt root_of t) ~default:Trace.root_parent
      in
      List.iter
        (fun cell ->
          match cell.c_trace with
          | Some src -> Trace.merge_into ~src ~dst:tr ~root_for
          | None -> ())
        cells;
      Some tr
    end
  in
  let protocol_errors =
    Array.fold_left
      (fun acc item -> match item.payload with P_error _ -> acc + 1 | _ -> acc)
      0 fe.items
  in
  let shard_ops = Array.of_list (List.map (fun c -> c.c_stats.s_ops) cells) in
  let kv_ops = Array.fold_left ( + ) 0 shard_ops in
  let elapsed_ns = List.fold_left (fun acc c -> max acc c.c_stats.s_elapsed_ns) 1 cells in
  let mean_load = float_of_int kv_ops /. float_of_int (max 1 cfg.shards) in
  let imbalance =
    if kv_ops = 0 then 1.0
    else float_of_int (Array.fold_left max 0 shard_ops) /. mean_load
  in
  let result_of replies =
    {
      model = cfg.model.Config.model_name;
      requests = Array.length fe.items;
      kv_ops;
      protocol_errors;
      get_hits = !get_hits;
      get_misses = !get_misses;
      elapsed_ns;
      ops_per_sec = float_of_int kv_ops /. (float_of_int elapsed_ns *. 1e-9);
      replies;
      latency;
      batch_occupancy;
      shard_ops;
      imbalance;
      shards = List.map (fun c -> c.c_stats) cells;
      recoveries = List.filter_map (fun c -> c.c_recovery) cells;
      crashed = List.exists (fun c -> c.c_recovery <> None) cells;
      captures = List.filter_map (fun c -> c.c_capture) cells;
      trace;
    }
  in
  (* [stats] replies: every stats request answers with the same
     end-of-run registry snapshot (the registry is a projection of the
     result, which is complete before replies render). *)
  if
    Array.exists
      (fun item -> match item.payload with P_stats _ -> true | _ -> false)
      fe.items
  then begin
    let pairs = Registry.stats_pairs (registry cfg (result_of [||])) in
    let rendered = Protocol.render_reply (Protocol.Stats_reply pairs) in
    Array.iter
      (fun item -> match item.payload with P_stats s -> s.reply <- rendered | _ -> ())
      fe.items
  end;
  (* Render per-connection reply streams in request order. *)
  let bufs = Array.init fleet.Client.conns (fun _ -> Buffer.create 256) in
  Array.iter
    (fun item ->
      let reply =
        match item.payload with
        | P_error e -> e
        | P_write w -> w.reply
        | P_stats s -> s.reply
        | P_get g ->
          let hits = ref [] in
          for k = Array.length g.keys - 1 downto 0 do
            match g.hits.(k) with
            | Some (flags, data) -> hits := (g.keys.(k), flags, data) :: !hits
            | None -> ()
          done;
          Protocol.render_reply (Protocol.Values !hits)
      in
      Buffer.add_string bufs.(item.conn) reply)
    fe.items;
  result_of (Array.map Buffer.contents bufs)

(* ---------- metrics export ---------- *)

let metrics_jsonl (cfg : config) (r : result) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let esc = Telemetry.Export.json_escape in
  line
    "{\"schema\":%S,\"kind\":\"kvserve\",\"model\":\"%s\",\"shards\":%d,\"requests\":%d,\"kv_ops\":%d,\"protocol_errors\":%d,\"elapsed_ns\":%d,\"crashed\":%b}"
    Telemetry.Export.schema_version (esc r.model) cfg.shards r.requests r.kv_ops
    r.protocol_errors r.elapsed_ns r.crashed;
  List.iter
    (fun (oc, h) ->
      if Histogram.count h > 0 then
        line
          "{\"kind\":\"op-latency\",\"op\":\"%s\",\"count\":%d,\"mean_ns\":%.1f,\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f,\"max_ns\":%d}"
          (opcode_name oc) (Histogram.count h) (Histogram.mean h)
          (Histogram.percentile h 50.0) (Histogram.percentile h 95.0)
          (Histogram.percentile h 99.0) (Histogram.max_value h))
    r.latency;
  if Histogram.count r.batch_occupancy > 0 then
    line
      "{\"kind\":\"batch-occupancy\",\"batches\":%d,\"mean\":%.2f,\"p95\":%.1f,\"max\":%d,\"hits\":%d,\"misses\":%d,\"imbalance\":%.3f}"
      (Histogram.count r.batch_occupancy)
      (Histogram.mean r.batch_occupancy)
      (Histogram.percentile r.batch_occupancy 95.0)
      (Histogram.max_value r.batch_occupancy)
      r.get_hits r.get_misses r.imbalance;
  List.iter
    (fun s ->
      line
        "{\"kind\":\"shard\",\"shard\":%d,\"ops\":%d,\"commits\":%d,\"aborts\":%d,\"batches\":%d,\"max_batch\":%d,\"throttled\":%d,\"elapsed_ns\":%d}"
        s.s_shard s.s_ops s.s_commits s.s_aborts s.s_batches s.s_max_batch s.s_throttled
        s.s_elapsed_ns)
    r.shards;
  List.iter
    (fun rc ->
      line
        "{\"kind\":\"recovery\",\"shard\":%d,\"logs_scanned\":%d,\"words_scanned\":%d,\"entries_replayed\":%d,\"entries_rolled_back\":%d,\"durable_marker\":%d,\"replayed_ops\":%d,\"modeled_ns\":%d}"
        rc.r_shard rc.r_logs_scanned rc.r_words_scanned rc.r_entries_replayed
        rc.r_entries_rolled_back rc.r_durable_marker rc.r_replayed_ops rc.r_modeled_ns)
    r.recoveries;
  (* Unified-registry rows: the same metrics (steady-state and, after a
     crash, the folded-in recovery counters) the Prometheus text and
     the [stats] verb expose. *)
  Buffer.add_string b (Registry.jsonl (registry cfg r));
  Buffer.contents b
