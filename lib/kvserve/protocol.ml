type request =
  | Get of string list
  | Set of { key : string; flags : int; data : string }
  | Delete of string
  | Incr of { key : string; delta : int }
  | Stats

type reply =
  | Stored
  | Deleted
  | Not_found
  | Values of (string * int * string) list
  | Number of int
  | Stats_reply of (string * string) list
  | Error
  | Client_error of string
  | Server_error of string

let max_key_bytes = 250
let max_value_bytes = 8192

(* Longest command line we buffer before declaring the stream garbage;
   generous next to max_key_bytes but bounded, so a newline-free flood
   cannot grow the buffer without limit. *)
let max_line_bytes = 4096

let valid_key k =
  let n = String.length k in
  n > 0 && n <= max_key_bytes
  && (let ok = ref true in
      String.iter (fun c -> if c <= ' ' || c = '\x7f' then ok := false) k;
      !ok)

(* Strict non-negative decimal (int_of_string_opt would admit 0x/-/_ forms
   the wire protocol rejects). *)
let dec_opt s =
  let n = String.length s in
  if n = 0 || n > 15 then None
  else begin
    let v = ref 0 in
    let ok = ref true in
    String.iter
      (fun c -> if c >= '0' && c <= '9' then v := (!v * 10) + Char.code c - 48 else ok := false)
      s;
    if !ok then Some !v else None
  end

type state =
  | Line  (** expecting a command line *)
  | Body of { key : string; flags : int; nbytes : int }
      (** expecting [nbytes] of [set] payload plus CRLF *)

type parser_ = { mutable data : string; mutable state : state }

let parser_create () = { data = ""; state = Line }

let feed p chunk = if chunk <> "" then p.data <- p.data ^ chunk

let buffered p = String.length p.data

type item = Request of request | Protocol_error of string

let client_error msg = Protocol_error (Printf.sprintf "CLIENT_ERROR %s\r\n" msg)

let consume p n = p.data <- String.sub p.data n (String.length p.data - n)

(* Split on single spaces, dropping empty tokens (memcached tolerates
   repeated separators). *)
let tokens line = List.filter (fun t -> t <> "") (String.split_on_char ' ' line)

let parse_line p line =
  match tokens line with
  | [] -> Protocol_error "ERROR\r\n"
  | "get" :: keys ->
    if keys <> [] && List.for_all valid_key keys then Request (Get keys)
    else client_error "bad command line format"
  | [ "set"; key; flags; exptime; bytes ] -> (
    match (valid_key key, dec_opt flags, dec_opt exptime, dec_opt bytes) with
    | true, Some flags, Some _exptime, Some nbytes when nbytes <= max_value_bytes ->
      (* Switch to body mode; the caller retries [next], which either
         finds the payload buffered already or waits for more bytes. *)
      p.state <- Body { key; flags; nbytes };
      Protocol_error "" (* placeholder, never returned: see [next] *)
    | _ -> client_error "bad command line format")
  | "set" :: _ -> client_error "bad command line format"
  | [ "delete"; key ] ->
    if valid_key key then Request (Delete key) else client_error "bad command line format"
  | "delete" :: _ -> client_error "bad command line format"
  | [ "incr"; key; delta ] -> (
    if not (valid_key key) then client_error "bad command line format"
    else
      match dec_opt delta with
      | Some delta -> Request (Incr { key; delta })
      | None -> client_error "invalid numeric delta argument")
  | "incr" :: _ -> client_error "bad command line format"
  | [ "stats" ] -> Request Stats
  | "stats" :: _ -> client_error "bad command line format"
  | _ -> Protocol_error "ERROR\r\n"

let rec next p =
  match p.state with
  | Body { key; flags; nbytes } ->
    if String.length p.data < nbytes + 2 then None
    else begin
      let data = String.sub p.data 0 nbytes in
      let terminated = p.data.[nbytes] = '\r' && p.data.[nbytes + 1] = '\n' in
      p.state <- Line;
      if terminated then begin
        consume p (nbytes + 2);
        Some (Request (Set { key; flags; data }))
      end
      else begin
        (* Payload not CRLF-terminated: the frame is torn.  Drop the
           declared payload and resynchronise at the next line. *)
        consume p nbytes;
        Some (client_error "bad data chunk")
      end
    end
  | Line -> (
    match String.index_opt p.data '\n' with
    | None ->
      if String.length p.data > max_line_bytes then begin
        p.data <- "";
        Some (client_error "line too long")
      end
      else None
    | Some i ->
      let line = String.sub p.data 0 (if i > 0 && p.data.[i - 1] = '\r' then i - 1 else i) in
      consume p (i + 1);
      (match parse_line p line with
      | Protocol_error "" -> next p (* [set] armed body mode; try the payload *)
      | item -> Some item))

let drain p =
  let rec go acc = match next p with None -> List.rev acc | Some it -> go (it :: acc) in
  go []

let render_request = function
  | Get keys -> "get " ^ String.concat " " keys ^ "\r\n"
  | Set { key; flags; data } ->
    Printf.sprintf "set %s %d 0 %d\r\n%s\r\n" key flags (String.length data) data
  | Delete key -> Printf.sprintf "delete %s\r\n" key
  | Incr { key; delta } -> Printf.sprintf "incr %s %d\r\n" key delta
  | Stats -> "stats\r\n"

let render_reply = function
  | Stored -> "STORED\r\n"
  | Deleted -> "DELETED\r\n"
  | Not_found -> "NOT_FOUND\r\n"
  | Values hits ->
    String.concat ""
      (List.map
         (fun (key, flags, data) ->
           Printf.sprintf "VALUE %s %d %d\r\n%s\r\n" key flags (String.length data) data)
         hits)
    ^ "END\r\n"
  | Number n -> Printf.sprintf "%d\r\n" n
  | Stats_reply pairs ->
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf "STAT %s %s\r\n" k v) pairs)
    ^ "END\r\n"
  | Error -> "ERROR\r\n"
  | Client_error msg -> Printf.sprintf "CLIENT_ERROR %s\r\n" msg
  | Server_error msg -> Printf.sprintf "SERVER_ERROR %s\r\n" msg
