module Config = Memsim.Config
module Table = Repro_util.Table
module Json = Workloads.Bench_json
module Trace = Telemetry.Trace
module Histogram = Repro_util.Histogram

type outcome = { tables : Table.t list; extra : (string * Json.json) list }

(* Working-set sizes: below the L3, around it, and well past it (the
   paper's Fig 8 story at simulation scale — value_bytes is fixed at
   64, so size sweeps the item count and with it the hit rate of the
   Zipf-skewed key stream). *)
let sizes = [ ("32KB", 32 * 1024); ("512KB", 512 * 1024); ("4MB", 4 * 1024 * 1024) ]

let series =
  [
    ("DRAM", Config.dram_eadr);
    ("ADR", Config.optane_adr);
    ("eADR", Config.optane_eadr);
    ("PDRAM-Lite", Config.pdram_lite);
  ]

let recovery_series =
  [
    ("ADR", Config.optane_adr);
    ("eADR", Config.optane_eadr);
    ("PDRAM-Lite", Config.pdram_lite);
  ]

let value_bytes = 64

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let config ?(shards = 4) model ~items =
  let per_shard = (items / shards) + 1 in
  let base = Service.default_config model in
  {
    base with
    Service.shards;
    model;
    prepopulate_items = items;
    value_bytes;
    buckets_per_shard = max 256 (next_pow2 per_shard 1);
    heap_words_per_shard = max (1 lsl 16) (next_pow2 (per_shard * 48) 1);
  }

let fleet ~quick ~seed ~items =
  Client.generate ~seed ~conns:8
    ~requests_per_conn:(if quick then 60 else 240)
    ~items ~value_bytes ~set_ratio:0.20 ~delete_ratio:0.02 ~incr_ratio:0.05
    ~mean_gap_ns:2_000 ~theta:0.8 ()

let run ?(quick = false) ?jobs () =
  let sizes = if quick then [ List.nth sizes 0; List.nth sizes 1 ] else sizes in
  let seed = 0x5EED in
  (* -- throughput sweep ------------------------------------------- *)
  let sweep =
    Table.create
      ~title:"kvserve — sharded KV service, 4 shards (k ops/s by working set)"
      ~header:("series" :: List.map fst sizes)
  in
  let sweep_json = ref [] in
  List.iter
    (fun (label, model) ->
      let cells =
        List.map
          (fun (size_label, bytes) ->
            let items = bytes / value_bytes in
            let cfg = config model ~items in
            let r = Service.run ?jobs cfg (fleet ~quick ~seed ~items) in
            sweep_json :=
              Json.Obj
                [
                  ("series", Json.String label);
                  ("working_set", Json.String size_label);
                  ("kv_ops", Json.Int r.Service.kv_ops);
                  ("elapsed_ns", Json.Int r.Service.elapsed_ns);
                  ("ops_per_sec", Json.Float r.Service.ops_per_sec);
                  ("get_hits", Json.Int r.Service.get_hits);
                  ("get_misses", Json.Int r.Service.get_misses);
                  ("imbalance", Json.Float r.Service.imbalance);
                ]
              :: !sweep_json;
            Table.cell_f (r.Service.ops_per_sec /. 1e3))
          sizes
      in
      Table.add_row sweep (label :: cells))
    series;
  (* -- recovery after a mid-run crash, per durability domain ------- *)
  let recovery =
    Table.create
      ~title:"kvserve — full-service restart recovery (crash mid-run)"
      ~header:
        [
          "domain"; "recovery us"; "words scanned"; "replayed"; "rolled back";
          "durable batches"; "re-run ops";
        ]
  in
  let recovery_json = ref [] in
  let crash_items = (256 * 1024) / value_bytes in
  List.iter
    (fun (label, model) ->
      let cfg = config model ~items:crash_items in
      (* Mid-run for either fleet size: the quick fleet's arrival
         horizon is ~120 us, the full one ~480 us. *)
      let crash_at = if quick then 60_000 else 150_000 in
      let r = Service.run ?jobs ~crash_at cfg (fleet ~quick ~seed ~items:crash_items) in
      let recs = r.Service.recoveries in
      let sum f = List.fold_left (fun acc rc -> acc + f rc) 0 recs in
      (* Shards recover in parallel on restart: the service is back
         when the slowest shard is. *)
      let modeled =
        List.fold_left (fun acc rc -> max acc rc.Service.r_modeled_ns) 0 recs
      in
      let wall = sum (fun rc -> rc.Service.r_wall_ns) in
      Table.add_row recovery
        [
          label;
          Table.cell_f (float_of_int modeled /. 1e3);
          string_of_int (sum (fun rc -> rc.Service.r_words_scanned));
          string_of_int (sum (fun rc -> rc.Service.r_entries_replayed));
          string_of_int (sum (fun rc -> rc.Service.r_entries_rolled_back));
          string_of_int (sum (fun rc -> rc.Service.r_durable_marker));
          string_of_int (sum (fun rc -> rc.Service.r_replayed_ops));
        ];
      recovery_json :=
        Json.Obj
          [
            ("domain", Json.String label);
            ("modeled_recovery_ns", Json.Int modeled);
            ("recovery_wall_ns", Json.Int wall);
            ("words_scanned", Json.Int (sum (fun rc -> rc.Service.r_words_scanned)));
            ("entries_replayed", Json.Int (sum (fun rc -> rc.Service.r_entries_replayed)));
            ("entries_rolled_back", Json.Int (sum (fun rc -> rc.Service.r_entries_rolled_back)));
            ("durable_batches", Json.Int (sum (fun rc -> rc.Service.r_durable_marker)));
            ("replayed_ops", Json.Int (sum (fun rc -> rc.Service.r_replayed_ops)));
          ]
        :: !recovery_json)
    recovery_series;
  {
    tables = [ sweep; recovery ];
    extra =
      [
        ("kvserve_sweep", Json.List (List.rev !sweep_json));
        ("kvserve_recovery", Json.List (List.rev !recovery_json));
      ];
  }

(* -- trace experiment: tail-latency attribution per domain ---------- *)

let blame_json (b : Trace.blame) =
  Json.Obj
    [
      ("requests", Json.Int b.Trace.brequests);
      ("band_lo_ns", Json.Int b.Trace.bband_lo_ns);
      ("band_hi_ns", Json.Int b.Trace.bband_hi_ns);
      ("total_latency_ns", Json.Int b.Trace.btotal_latency_ns);
      ("attributed_ns", Json.Int b.Trace.battributed_ns);
      ("slack_ns", Json.Int b.Trace.bslack_ns);
      ( "rows",
        Json.List
          (List.map
             (fun (row : Trace.blame_row) ->
               Json.Obj
                 [
                   ("kind", Json.String row.Trace.bkind);
                   ("spans", Json.Int row.Trace.bspans);
                   ("exclusive_ns", Json.Int row.Trace.bexclusive_ns);
                   ("share_pct", Json.Float row.Trace.bshare);
                 ])
             b.Trace.brows) );
    ]

let run_trace ?(quick = false) ?jobs () =
  let seed = 0x5EED in
  let items = (512 * 1024) / value_bytes in
  let latency_tbl =
    Table.create
      ~title:"trace — end-to-end request latency by domain (us, from request spans)"
      ~header:[ "domain"; "requests"; "p50"; "p95"; "p99"; "max"; "slack ns" ]
  in
  let blame_tbl =
    Table.create
      ~title:"trace — tail blame, p95..p100 band (exclusive time by span kind)"
      ~header:[ "domain"; "kind"; "spans"; "exclusive us"; "share %" ]
  in
  let json = ref [] in
  List.iter
    (fun (label, model) ->
      let cfg = { (config model ~items) with Service.trace = true } in
      let r = Service.run ?jobs cfg (fleet ~quick ~seed ~items) in
      let tr = match r.Service.trace with Some tr -> tr | None -> assert false in
      let h = Trace.latency_hist tr in
      let acct = Trace.accounting tr in
      (* Accounting slack: |latency - attributed| summed over requests.
         0 for this fleet (single-key gets), so any drift is a bug. *)
      let slack = List.fold_left (fun acc (_, lat, att) -> acc + abs (lat - att)) 0 acct in
      let whole = Trace.blame tr ~lo_pct:0.0 ~hi_pct:100.0 in
      let tail = Trace.blame tr ~lo_pct:95.0 ~hi_pct:100.0 in
      Table.add_row latency_tbl
        [
          label;
          string_of_int (Histogram.count h);
          Table.cell_f (Histogram.percentile h 50.0 /. 1e3);
          Table.cell_f (Histogram.percentile h 95.0 /. 1e3);
          Table.cell_f (Histogram.percentile h 99.0 /. 1e3);
          Table.cell_f (float_of_int (Histogram.max_value h) /. 1e3);
          string_of_int slack;
        ];
      List.iteri
        (fun i (row : Trace.blame_row) ->
          if i < 4 then
            Table.add_row blame_tbl
              [
                label;
                row.Trace.bkind;
                string_of_int row.Trace.bspans;
                Table.cell_f (float_of_int row.Trace.bexclusive_ns /. 1e3);
                Table.cell_f row.Trace.bshare;
              ])
        tail.Trace.brows;
      json :=
        Json.Obj
          [
            ("domain", Json.String label);
            ("requests", Json.Int (Histogram.count h));
            ("p50_ns", Json.Float (Histogram.percentile h 50.0));
            ("p95_ns", Json.Float (Histogram.percentile h 95.0));
            ("p99_ns", Json.Float (Histogram.percentile h 99.0));
            ("max_ns", Json.Int (Histogram.max_value h));
            ("slack_ns", Json.Int slack);
            ("spans", Json.Int (Trace.length tr));
            ("digest", Json.String (Trace.digest tr));
            ("blame", blame_json whole);
            ("tail_blame", blame_json tail);
          ]
        :: !json)
    series;
  {
    tables = [ latency_tbl; blame_tbl ];
    extra = [ ("trace_domains", Json.List (List.rev !json)) ];
  }
