(** Key-hash routing: which shard owns a key, and the store-level hash
    of a key within its shard.

    Both hashes start from FNV-1a over the key bytes; the shard router
    applies a further splitmix finalizer so the shard index and the
    in-shard bucket index are decorrelated (a hot bucket does not imply
    a hot shard and vice versa). *)

val store_hash : string -> int
(** FNV-1a (64-bit, folded positive, never 0) — the key of the
    per-shard {!Store} index; positive as {!Pstructs.Phashtable}
    requires. *)

val shard_of_key : shards:int -> string -> int
(** Owning shard in [\[0, shards)]. *)
