module Rng = Repro_util.Rng
module Zipf = Repro_util.Zipf

type chunk = { arrival_ns : int; conn : int; bytes : string }

type t = {
  chunks : chunk list;
  conns : int;
  requests : int;
  trace_ids : int array array;
}

let key_of i = Printf.sprintf "k%06d" i

(* Small dedicated counter keyspace for [incr] traffic (values must be
   decimal; the bulk keyspace holds opaque payloads). *)
let counters = 16
let counter_of i = Printf.sprintf "c%02d" i

let value_of ~rank ~version ~value_bytes =
  let stamp = Printf.sprintf "r%d.v%d." rank version in
  let n = max (String.length stamp) value_bytes in
  let b = Bytes.make n 'x' in
  Bytes.blit_string stamp 0 b 0 (String.length stamp);
  (* Deterministic filler that varies by position, so same-length
     values still differ beyond the stamp. *)
  for i = String.length stamp to n - 1 do
    Bytes.set b i (Char.chr (97 + ((rank + i) mod 26)))
  done;
  Bytes.to_string b

let generate ~seed ~conns ~requests_per_conn ~items ~value_bytes ~set_ratio ~delete_ratio
    ~incr_ratio ~mean_gap_ns ~theta () =
  let zipf = Zipf.create ~theta items in
  let root = Rng.create seed in
  let requests = ref 0 in
  let all = ref [] in
  (* Trace context allocation: every request gets a globally unique
     trace id at generation time (conn-major emission order), recorded
     per connection so the service frontend can hand the id to the
     n-th request it parses off that connection. *)
  let trace_ids = Array.make conns [||] in
  for conn = 0 to conns - 1 do
    let rng = Rng.split root in
    let conn_traces = Array.make requests_per_conn 0 in
    trace_ids.(conn) <- conn_traces;
    (* Per-connection write-version counter: payloads are identifiable
       but never depend on what other connections did. *)
    let version = ref 0 in
    let clock = ref 0 in
    for o = 0 to requests_per_conn - 1 do
      conn_traces.(o) <- !requests;
      clock := !clock + 1 + Rng.int rng (2 * mean_gap_ns);
      let rank = Zipf.sample zipf rng in
      let key = key_of rank in
      let r = Rng.float rng 1.0 in
      let request =
        if r < set_ratio then begin
          incr version;
          Protocol.Set
            { key; flags = conn; data = value_of ~rank ~version:!version ~value_bytes }
        end
        else if r < set_ratio +. delete_ratio then Protocol.Delete key
        else if r < set_ratio +. delete_ratio +. incr_ratio then
          Protocol.Incr { key = counter_of (Rng.int rng counters); delta = 1 + Rng.int rng 9 }
        else Protocol.Get [ key ]
      in
      incr requests;
      let bytes = Protocol.render_request request in
      (* Tear roughly half the requests at a random interior byte: both
         halves hit the wire at the same instant, but the parser sees
         them as separate reads. *)
      let n = String.length bytes in
      if n >= 2 && Rng.bool rng then begin
        let cut = 1 + Rng.int rng (n - 1) in
        all := { arrival_ns = !clock; conn; bytes = String.sub bytes 0 cut } :: !all;
        all := { arrival_ns = !clock; conn; bytes = String.sub bytes cut (n - cut) } :: !all
      end
      else all := { arrival_ns = !clock; conn; bytes } :: !all
    done
  done;
  (* Stable merge: per-connection order is preserved (list is built in
     reverse emission order, so reverse first), then sort by arrival
     with connection id as tie-break. *)
  let chunks =
    List.stable_sort
      (fun a b ->
        match compare a.arrival_ns b.arrival_ns with 0 -> compare a.conn b.conn | c -> c)
      (List.rev !all)
  in
  { chunks; conns; requests = !requests; trace_ids }
