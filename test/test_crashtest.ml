(* Crash-point exploration harness: the durable-linearizability matrix,
   the missing-fence expected-failure meta-test, recovery idempotence,
   run determinism, and the crash-leak severity regression. *)

open Pstm
module Config = Memsim.Config
module Sim = Memsim.Sim
module Engine = Crashtest.Engine
module Scenarios = Crashtest.Scenarios

let seed = 1

(* ---------- the {Redo, Undo} x durability-domain matrix ---------- *)

let matrix_models =
  [ Config.optane_adr; Config.optane_eadr; Config.pdram; Config.pdram_lite ]

let test_cell scenario model algorithm () =
  let report = Engine.explore ~points:50 ~seed ~model ~algorithm scenario in
  Helpers.check_bool
    (Format.asprintf "%a" Engine.pp_report report)
    true (Engine.ok report);
  Helpers.check_bool "probed at least 50 instants" true (report.Engine.tested >= 50)

let matrix_cases =
  (* Rotate scenarios through the cells so every durability domain and
     both algorithms see >= 50 crash points, and every scenario runs
     under at least two domains. *)
  let scenarios =
    [| Scenarios.bank (); Scenarios.counters (); Scenarios.btree (); Scenarios.alloc_churn () |]
  in
  List.concat
    (List.mapi
       (fun i model ->
         List.mapi
           (fun j algorithm ->
             let scenario = scenarios.(((2 * i) + j) mod Array.length scenarios) in
             let name =
               Printf.sprintf "matrix %s/%s/%s" scenario.Engine.name
                 model.Config.model_name
                 (Ptm.algorithm_name algorithm)
             in
             Alcotest.test_case name `Slow (test_cell scenario model algorithm))
           [ Ptm.Redo; Ptm.Undo ])
       matrix_models)

(* ---------- both flush schedules at every crash point ---------- *)

(* The matrix above runs bank and btree with coalescing on (the
   default), so the batched-persist pipeline's crash points are already
   swept.  These cells sweep the same workloads on the naive per-entry
   schedule under ADR — the two disciplines reach "durable" at
   different instants, so each needs its own exploration. *)
let coalescing_cases =
  List.concat_map
    (fun scenario ->
      List.map
        (fun algorithm ->
          let name =
            Printf.sprintf "matrix %s/%s/%s" scenario.Engine.name
              Config.optane_adr.Config.model_name
              (Ptm.algorithm_name algorithm)
          in
          Alcotest.test_case name `Slow (test_cell scenario Config.optane_adr algorithm))
        [ Ptm.Redo; Ptm.Undo ])
    [ Scenarios.bank ~coalesce:false (); Scenarios.btree ~coalesce:false () ]

(* ---------- MOD structures: buffered durability cells ---------- *)

(* The MOD scenarios crash inside the shadow-copy sweep and at the
   root-swap instant (every instant between the first shadow store and
   the publish flush is a candidate), under the `Buffered dlin
   criterion.  ADR is where the single-fence protocol actually orders
   anything; eADR is the crossover domain (no flushes at all); the
   Redo cell runs the same structures as a strict-durability
   differential. *)
let mod_cases =
  [
    Alcotest.test_case "matrix mod-btree/optane-adr/mod" `Slow
      (test_cell (Scenarios.mod_btree ()) Config.optane_adr Ptm.Mod);
    Alcotest.test_case "matrix mod-btree/optane-eadr/mod" `Slow
      (test_cell (Scenarios.mod_btree ()) Config.optane_eadr Ptm.Mod);
    Alcotest.test_case "matrix mod-hash/optane-adr/mod" `Slow
      (test_cell (Scenarios.mod_hash ()) Config.optane_adr Ptm.Mod);
    Alcotest.test_case "matrix mod-hash/pdram-lite/mod" `Slow
      (test_cell (Scenarios.mod_hash ()) Config.pdram_lite Ptm.Mod);
    Alcotest.test_case "matrix mod-btree/transient-cache/mod" `Slow
      (test_cell (Scenarios.mod_btree ()) Config.transient_cache Ptm.Mod);
    Alcotest.test_case "matrix mod-btree/optane-adr/redo" `Slow
      (test_cell (Scenarios.mod_btree ()) Config.optane_adr Ptm.Redo);
  ]

(* ---------- the KV service's crash contracts ---------- *)

(* kv-batch sweeps the coalesced multi-set commit (all-or-nothing plus
   the batch marker); kv-xshard sweeps the window between two shards'
   commits (markers must stay within one op, in commit order).  The
   full matrix for both runs under @crashtest; these cells keep one
   redo and one undo probe of each in tier 1. *)
let kvserve_cases =
  [
    Alcotest.test_case "matrix kv-batch/optane-adr/redo" `Slow
      (test_cell (Scenarios.kv_batch ()) Config.optane_adr Ptm.Redo);
    Alcotest.test_case "matrix kv-batch/pdram-lite/undo" `Slow
      (test_cell (Scenarios.kv_batch ()) Config.pdram_lite Ptm.Undo);
    Alcotest.test_case "matrix kv-xshard/optane-adr/undo" `Slow
      (test_cell (Scenarios.kv_xshard ()) Config.optane_adr Ptm.Undo);
    Alcotest.test_case "matrix kv-xshard/optane-eadr/redo" `Slow
      (test_cell (Scenarios.kv_xshard ()) Config.optane_eadr Ptm.Redo);
  ]

(* ---------- the two extension durability domains ---------- *)

(* transient-cache (whole-cache-persistence, arXiv 2210.17377): caches
   survive the crash, so like eADR nothing needs flushing; HTM-commit
   (arXiv 1806.01108): an ADR-class domain whose publish hardens a
   hardware transaction's write set as one unit, making the Htm
   algorithm legal under a flush-requiring domain.  Both get their own
   crash sweeps, including the Htm algorithm itself on HTM-commit. *)
let extension_domain_cases =
  [
    Alcotest.test_case "matrix bank/transient-cache/redo" `Slow
      (test_cell (Scenarios.bank ()) Config.transient_cache Ptm.Redo);
    Alcotest.test_case "matrix counters/transient-cache/undo" `Slow
      (test_cell (Scenarios.counters ()) Config.transient_cache Ptm.Undo);
    Alcotest.test_case "matrix bank/htm-commit/htm" `Slow
      (test_cell (Scenarios.bank ()) Config.htm_commit Ptm.Htm);
    Alcotest.test_case "matrix counters/htm-commit/redo" `Slow
      (test_cell (Scenarios.counters ()) Config.htm_commit Ptm.Redo);
    Alcotest.test_case "matrix kv-incr/optane-adr/redo" `Slow
      (test_cell (Scenarios.kv_incr ()) Config.optane_adr Ptm.Redo);
    Alcotest.test_case "matrix kv-incr/htm-commit/htm" `Slow
      (test_cell (Scenarios.kv_incr ()) Config.htm_commit Ptm.Htm);
  ]

(* ---------- expected failure: ADR without fences ---------- *)

(* Table III's broken variant: clwb without sfence leaves write-backs
   racing in the interleaved WPQ.  The harness must *catch* it — an
   all-pass report here means the oracle is blind. *)
let test_nofence algorithm () =
  let scenario = Scenarios.bank () in
  let report =
    Engine.explore ~points:80 ~seed ~model:Config.optane_adr_nofence ~algorithm scenario
  in
  Helpers.check_bool "oracle detects the missing fences" false (Engine.ok report);
  match report.Engine.failures with
  | [] -> Alcotest.fail "report not ok but carries no failure record"
  | f :: _ ->
    Helpers.check_bool "minimal crash time is positive" true (f.Engine.min_crash_at > 0);
    Helpers.check_bool "shrinking did not grow the crash time" true
      (f.Engine.min_crash_at <= f.Engine.crash_at);
    Helpers.check_bool "failure explains itself" true (String.length f.Engine.reason > 0);
    (* The replay line must reproduce the violation in one command. *)
    let spec =
      match String.split_on_char '\'' f.Engine.replay with
      | _ :: spec :: _ -> spec
      | _ -> Alcotest.fail ("unparseable replay line: " ^ f.Engine.replay)
    in
    (match Engine.parse_replay spec with
    | None -> Alcotest.fail ("replay spec does not parse: " ^ spec)
    | Some (scen_name, model_name, alg, replay_seed, crash_at, inject) ->
      Helpers.check_int "replay seed matches report" report.Engine.seed replay_seed;
      Helpers.check_bool "clean run's replay carries no inject" true (inject = None);
      let result =
        Engine.run_point
          ~model:(Config.model_of_name model_name)
          ~algorithm:alg ~seed:replay_seed ~crash_at
          (Scenarios.find scen_name)
      in
      Helpers.check_bool "replay reproduces the violation" true (Result.is_error result));
    (* The failure must come with a telemetry capture of the minimal
       failing re-run, including a profile of the post-crash recovery. *)
    (match f.Engine.telemetry_dir with
    | None -> Alcotest.fail "failure carries no telemetry dump"
    | Some dir ->
      List.iter
        (fun file ->
          Helpers.check_bool (Printf.sprintf "telemetry dump has %s" file) true
            (Sys.file_exists (Filename.concat dir file)))
        [ "profile.jsonl"; "series.csv"; "trace.json"; "recovery.jsonl" ])

(* ---------- mutation tests: injected ordering bugs must be caught ---------- *)

(* Each case arms one deliberate PTM ordering bug (Ptm.inject) on a
   (scenario, model, algorithm) cell where the bug's durability hole is
   reachable, and requires the crash sweep to reject it — a checker
   that never fails is untested.  The failure must round-trip: the
   printed replay line carries the inject name, reproduces the
   violation, and the telemetry dump includes the dlin counterexample
   next to the other artifacts. *)
let test_mutation ~inject ~scenario ~model ~algorithm () =
  let report = Engine.explore ~points:80 ~seed ~inject ~model ~algorithm scenario in
  Helpers.check_bool
    (Printf.sprintf "checker rejects %s on %s/%s/%s" (Ptm.inject_name inject)
       scenario.Engine.name model.Config.model_name
       (Ptm.algorithm_name algorithm))
    false (Engine.ok report);
  match report.Engine.failures with
  | [] -> Alcotest.fail "report not ok but carries no failure record"
  | f :: _ ->
    Helpers.check_bool "failure explains itself" true (String.length f.Engine.reason > 0);
    let spec =
      match String.split_on_char '\'' f.Engine.replay with
      | _ :: spec :: _ -> spec
      | _ -> Alcotest.fail ("unparseable replay line: " ^ f.Engine.replay)
    in
    (match Engine.parse_replay spec with
    | Some (scen_name, model_name, alg, replay_seed, crash_at, Some inj) ->
      Helpers.check_bool "replay line names the injected bug" true (inj = inject);
      let result =
        Engine.run_point ~inject:inj
          ~model:(Config.model_of_name model_name)
          ~algorithm:alg ~seed:replay_seed ~crash_at
          (Scenarios.find scen_name)
      in
      Helpers.check_bool "replay reproduces the violation" true (Result.is_error result)
    | Some (_, _, _, _, _, None) ->
      Alcotest.fail ("replay spec lost the inject field: " ^ spec)
    | None -> Alcotest.fail ("replay spec does not parse: " ^ spec));
    (match f.Engine.telemetry_dir with
    | None -> Alcotest.fail "failure carries no telemetry dump"
    | Some dir ->
      Helpers.check_bool "dlin counterexample rides the telemetry dump" true
        (Sys.file_exists (Filename.concat dir "dlin.jsonl")))

let mutation_cases =
  [
    (* Elided fences leave the redo log racing its status word in the
       WPQ — the same hole as the nofence domain, now as a code bug. *)
    Alcotest.test_case "inject skip-fence is caught (bank/adr/redo)" `Slow
      (test_mutation ~inject:Ptm.Skip_fence ~scenario:(Scenarios.bank ())
         ~model:Config.optane_adr ~algorithm:Ptm.Redo);
    (* Status raised before the log persists: recovery replays stale
       media log entries; counters' 8-slot write set spans three log
       lines, so the stale tail diverges the slots. *)
    Alcotest.test_case "inject reorder-log-apply is caught (counters/adr/redo)" `Slow
      (test_mutation ~inject:Ptm.Reorder_log_apply ~scenario:(Scenarios.counters ())
         ~model:Config.optane_adr ~algorithm:Ptm.Redo);
    (* The coalesced write-back sweep drops its last gathered line —
       bank's per-thread sequence cell — so a committed transfer's
       sequence write never becomes durable. *)
    Alcotest.test_case "inject tear-write is caught (bank/adr/undo)" `Slow
      (test_mutation ~inject:Ptm.Tear_write ~scenario:(Scenarios.bank ())
         ~model:Config.optane_adr ~algorithm:Ptm.Undo);
    (* MOD's one fence stands between the shadow sweep and the root
       swap; eliding it publishes a root whose shadow nodes are still
       racing the WPQ, so recovery walks into unswept memory. *)
    Alcotest.test_case "inject skip-fence is caught (mod-btree/adr/mod)" `Slow
      (test_mutation ~inject:Ptm.Skip_fence ~scenario:(Scenarios.mod_btree ())
         ~model:Config.optane_adr ~algorithm:Ptm.Mod);
    (* A torn root swap lands only the low byte of the new root on
       media (the cache keeps the full pointer, so only recovery can
       see it) — the recovered root points into garbage. *)
    Alcotest.test_case "inject tear-write is caught (mod-hash/adr/mod)" `Slow
      (test_mutation ~inject:Ptm.Tear_write ~scenario:(Scenarios.mod_hash ())
         ~model:Config.optane_adr ~algorithm:Ptm.Mod);
    (* Root swap issued before the shadow sweep: the published root
       races every shadow line instead of following them. *)
    Alcotest.test_case "inject reorder-log-apply is caught (mod-btree/adr/mod)" `Slow
      (test_mutation ~inject:Ptm.Reorder_log_apply ~scenario:(Scenarios.mod_btree ())
         ~model:Config.optane_adr ~algorithm:Ptm.Mod);
  ]

(* ---------- recovery idempotence ---------- *)

let test_recovery_convergence ?(model = Config.optane_adr) algorithm () =
  let scenario = Scenarios.bank () in
  let probe = Engine.explore ~points:1 ~seed ~model ~algorithm scenario in
  let t_final = probe.Engine.final_time in
  List.iter
    (fun eighth ->
      let crash_at = max 1 (t_final * eighth / 8) in
      match Engine.recovery_convergence ~model ~algorithm ~seed ~crash_at scenario with
      | Ok () -> ()
      | Error e ->
        Alcotest.fail (Printf.sprintf "crash_at=%dns (%d/8 of run): %s" crash_at eighth e))
    [ 1; 2; 3; 5; 7 ]

(* ---------- determinism ---------- *)

let run_reference_once () =
  let scenario = Scenarios.bank () in
  let cfg =
    Config.make ~nvm_channels:4 ~heap_words:scenario.Engine.heap_words ~track_media:true
      Config.optane_adr
  in
  let sim = Sim.create cfg in
  let m = Sim.machine sim in
  let ptm =
    Ptm.create ~algorithm:Ptm.Redo ~max_threads:scenario.Engine.threads
      ~log_words_per_thread:scenario.Engine.log_words_per_thread m
  in
  scenario.Engine.prepare ptm;
  let inst = scenario.Engine.fresh ~seed:42 in
  for tid = 0 to scenario.Engine.threads - 1 do
    ignore (Sim.spawn sim (fun () -> inst.Engine.worker ~tid ptm) : int)
  done;
  Sim.run sim;
  let heap = Array.init scenario.Engine.heap_words m.Machine.raw_read in
  (Sim.now sim, Sim.Stats.get sim, Ptm.Stats.get ptm, heap)

let test_determinism () =
  let t1, s1, p1, h1 = run_reference_once () in
  let t2, s2, p2, h2 = run_reference_once () in
  Helpers.check_int "final virtual time" t1 t2;
  Helpers.check_bool "sim stats bit-identical" true (s1 = s2);
  Helpers.check_bool "ptm stats bit-identical" true (p1 = p2);
  Helpers.check_bool "final heap bit-identical" true (h1 = h2)

(* ---------- crash-leaked arenas are warnings, not corruption ---------- *)

(* [Alloc.claim_chunk] durably advances the high-water mark before the
   arena header's flush completes; a crash in between strands a chunk
   with no recognizable header.  The checker must report that as a
   Warning (bounded leak, by design) and [is_clean] must hold so
   recovery proceeds. *)
let test_crash_leak_is_warning () =
  let probe crash_at =
    let sim, _m, ptm = Helpers.ptm_fixture ~model:Config.optane_adr ~max_threads:1 () in
    Sim.persist_all sim;
    ignore
      (Sim.spawn sim (fun () -> Ptm.atomic ptm (fun tx -> ignore (Ptm.alloc tx 600 : int)))
        : int);
    Sim.run ~crash_at sim;
    if not (Sim.crashed sim) then None
    else begin
      let _sim', _m', ptm' = Helpers.reboot_and_recover sim in
      Some (Pmem.Check.run (Ptm.region ptm'))
    end
  in
  let rec hunt t =
    if t > 2000 then Alcotest.fail "no crash point leaked an arena within 2000ns"
    else
      match probe t with
      | None -> Alcotest.fail "run completed before any leak window was found"
      | Some rep when rep.Pmem.Check.leaked_arenas > 0 ->
        Helpers.check_bool "region is clean after recovery despite the leak" true
          (Pmem.Check.is_clean rep);
        List.iter
          (fun f ->
            Helpers.check_bool
              (Printf.sprintf "finding %S is not corruption" f.Pmem.Check.what)
              true
              (f.Pmem.Check.severity <> Pmem.Check.Corruption))
          rep.Pmem.Check.findings
      | Some _ -> hunt (t + 1)
  in
  hunt 1

let suite =
  matrix_cases @ coalescing_cases @ mod_cases @ kvserve_cases @ extension_domain_cases
  @ mutation_cases
  @ [
      Alcotest.test_case "nofence-adr is caught (redo)" `Slow (test_nofence Ptm.Redo);
      Alcotest.test_case "nofence-adr is caught (undo)" `Slow (test_nofence Ptm.Undo);
      Alcotest.test_case "recovery converges under re-crash (redo)" `Slow
        (test_recovery_convergence Ptm.Redo);
      Alcotest.test_case "recovery converges under re-crash (undo)" `Slow
        (test_recovery_convergence Ptm.Undo);
      Alcotest.test_case "recovery converges under re-crash (transient-cache)" `Slow
        (test_recovery_convergence ~model:Config.transient_cache Ptm.Redo);
      Alcotest.test_case "same config+seed is bit-identical" `Quick test_determinism;
      Alcotest.test_case "crash-leaked arena is a warning" `Quick test_crash_leak_is_warning;
    ]
