(* MOD algorithm column: differential traces vs functional oracles on
   every durability domain, the machine-checked single-fence invariant,
   fallback coverage, epoch reclamation bounds and recovery. *)

open Pstructs
module Ptm = Pstm.Ptm
module Profile = Pstm.Profile
module Config = Memsim.Config
module M = Map.Make (Int)

let domains =
  [
    ("optane-adr", Config.optane_adr);
    ("optane-eadr", Config.optane_eadr);
    ("transient-cache", Config.transient_cache);
    ("pdram", Config.pdram);
    ("pdram-lite", Config.pdram_lite);
  ]

let fixture ?(model = Config.optane_adr) ?(algorithm = Ptm.Mod) () =
  Helpers.pstructs_fixture ~model ~algorithm ()

(* ---------- basic semantics ---------- *)

let test_btree_basic () =
  let _, _, ptm = fixture () in
  let t = Mod_bptree.create ptm in
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 200 do
        Helpers.check_bool "new key" true (Mod_bptree.insert tx t ~key:k ~value:(k * 10))
      done);
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 200 do
        Alcotest.(check (option int)) "lookup" (Some (k * 10)) (Mod_bptree.lookup tx t k)
      done;
      Alcotest.(check (option int)) "missing" None (Mod_bptree.lookup tx t 1000);
      Helpers.check_bool "replace" false (Mod_bptree.insert tx t ~key:7 ~value:0);
      Helpers.check_bool "remove" true (Mod_bptree.remove tx t 8);
      Helpers.check_bool "absent remove" false (Mod_bptree.remove tx t 8));
  Mod_bptree.check_invariants t;
  Helpers.check_int "size" 199 (List.length (Mod_bptree.to_alist t));
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option (pair int int)))
        "min" (Some (1, 10))
        (Mod_bptree.min_binding tx t);
      Helpers.check_int "fold_range sum of keys 10..20"
        (List.fold_left ( + ) 0 (List.init 11 (fun i -> 10 + i)))
        (Mod_bptree.fold_range tx t ~lo:10 ~hi:20 (fun acc k _ -> acc + k) 0))

let test_btree_shuffled_splits () =
  let _, _, ptm = fixture () in
  let t = Mod_bptree.create ptm in
  let n = 3_000 in
  let keys = Array.init n (fun i -> i + 1) in
  Repro_util.Rng.shuffle (Repro_util.Rng.create 11) keys;
  Array.iter
    (fun k -> Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.insert tx t ~key:k ~value:k)))
    keys;
  Mod_bptree.check_invariants t;
  let alist = Mod_bptree.to_alist t in
  Helpers.check_int "all present" n (List.length alist);
  Helpers.check_bool "sorted" true
    (List.for_all2 (fun (k, _) i -> k = i) alist (List.init n (fun i -> i + 1)))

let test_hash_basic () =
  let _, _, ptm = fixture () in
  let t = Mod_phashtable.create ptm ~buckets:256 in
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 300 do
        Helpers.check_bool "new key" true (Mod_phashtable.put tx t ~key:k ~value:(-k))
      done);
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 300 do
        Alcotest.(check (option int)) "get" (Some (-k)) (Mod_phashtable.get tx t k)
      done;
      Alcotest.(check (option int)) "missing" None (Mod_phashtable.get tx t 999);
      Helpers.check_bool "replace" false (Mod_phashtable.put tx t ~key:5 ~value:55);
      Helpers.check_bool "remove" true (Mod_phashtable.remove tx t 6);
      Helpers.check_bool "absent remove" false (Mod_phashtable.remove tx t 6));
  Mod_phashtable.check_invariants t;
  Helpers.check_int "size" 299 (List.length (Mod_phashtable.to_alist t))

(* ---------- differential traces on every durability domain ----------

   One generated op trace is replayed against the MOD structure on
   every domain and against a plain functional oracle; per-op results
   and the final-state digest must agree everywhere.  Ops: (key, code)
   with code 0 = insert, 1 = lookup, 2 = remove, 3 = iterate. *)

let digest_of_alist alist =
  List.fold_left (fun acc (k, v) -> Hashtbl.hash (acc, k, v)) 0x811C9DC5 alist

let trace_gen = Helpers.kv_ops_gen ~size:(10, 45) ~key_range:80 ~ops:4 ()

let replay_btree model ops =
  let _, _, ptm = fixture ~model () in
  let t = Mod_bptree.create ptm in
  let m = ref M.empty in
  List.iteri
    (fun i (key, code) ->
      Ptm.atomic ptm (fun tx ->
          match code with
          | 0 ->
            if Mod_bptree.insert tx t ~key ~value:i <> not (M.mem key !m) then
              failwith "insert disagreement";
            m := M.add key i !m
          | 1 ->
            if Mod_bptree.lookup tx t key <> M.find_opt key !m then
              failwith "lookup disagreement"
          | 2 ->
            if Mod_bptree.remove tx t key <> M.mem key !m then failwith "remove disagreement";
            m := M.remove key !m
          | _ ->
            let got = Mod_bptree.fold_range tx t ~lo:1 ~hi:max_int (fun acc k v -> (k, v) :: acc) [] in
            if List.rev got <> M.bindings !m then failwith "iterate disagreement"))
    ops;
  Mod_bptree.check_invariants t;
  if Mod_bptree.to_alist t <> M.bindings !m then failwith "final state disagreement";
  digest_of_alist (Mod_bptree.to_alist t)

let replay_hash model ops =
  let _, _, ptm = fixture ~model () in
  let t = Mod_phashtable.create ptm ~buckets:64 in
  let h = Hashtbl.create 64 in
  List.iteri
    (fun i (key, code) ->
      Ptm.atomic ptm (fun tx ->
          match code with
          | 0 ->
            if Mod_phashtable.put tx t ~key ~value:i <> not (Hashtbl.mem h key) then
              failwith "put disagreement";
            Hashtbl.replace h key i
          | 1 ->
            if Mod_phashtable.get tx t key <> Hashtbl.find_opt h key then
              failwith "get disagreement"
          | 2 ->
            if Mod_phashtable.remove tx t key <> Hashtbl.mem h key then
              failwith "remove disagreement";
            Hashtbl.remove h key
          | _ ->
            let got = List.sort compare (Mod_phashtable.to_alist t) in
            let want = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) h []) in
            if got <> want then failwith "iterate disagreement"))
    ops;
  Mod_phashtable.check_invariants t;
  let got = List.sort compare (Mod_phashtable.to_alist t) in
  let want = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) h []) in
  if got <> want then failwith "final state disagreement";
  digest_of_alist got

let cross_domain replay ops =
  match List.map (fun (_, model) -> replay model ops) domains with
  | [] -> true
  | d :: rest ->
    if not (List.for_all (( = ) d) rest) then failwith "digest differs across domains";
    true

let prop_btree_traces =
  Helpers.qtest ~count:160 "mod btree matches Map on all domains" trace_gen
    (cross_domain replay_btree)

let prop_hash_traces =
  Helpers.qtest ~count:160 "mod hashtable matches Hashtbl on all domains" trace_gen
    (cross_domain replay_hash)

(* ---------- fence accounting: the MOD invariant, machine-checked ----------

   On ADR every MOD update commits with exactly one ordering fence (the
   shadow sweep); lookups fence zero times.  Under eADR-class domains
   the sweep disappears entirely: zero fences AND zero flushes — the
   crossover where MOD's advantage collapses. *)

let profile_fences_flushes model ops =
  let sim, m, ptm = fixture ~model () in
  ignore sim;
  let t = Mod_bptree.create ptm in
  let p = Profile.create m in
  Ptm.set_profiler ptm (Some p);
  ops ptm t;
  Ptm.set_profiler ptm None;
  let sum f =
    List.fold_left
      (fun acc tid ->
        List.fold_left (fun acc ph -> acc + f p ~tid ph) acc Profile.all_phases)
      0 (Profile.tids p)
  in
  (sum Profile.phase_fences, sum Profile.phase_flushes)

let update_ops n ptm t =
  for k = 1 to n do
    Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.insert tx t ~key:k ~value:k))
  done;
  for k = 1 to n / 2 do
    Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.remove tx t k))
  done

let test_fence_per_op_adr () =
  let n = 120 in
  let fences, flushes = profile_fences_flushes Config.optane_adr (update_ops n) in
  Helpers.check_int "exactly one fence per update op on ADR" (n + (n / 2)) fences;
  Helpers.check_bool "flushes issued on ADR" true (flushes > 0)

let test_no_fences_on_eadr_class () =
  List.iter
    (fun (name, model) ->
      let fences, flushes = profile_fences_flushes model (update_ops 60) in
      Helpers.check_int (name ^ ": zero ordering fences") 0 fences;
      Helpers.check_int (name ^ ": zero flushes") 0 flushes)
    [ ("optane-eadr", Config.optane_eadr); ("transient-cache", Config.transient_cache) ]

let test_lookups_fence_free () =
  let fences, _ =
    profile_fences_flushes Config.optane_adr (fun ptm t ->
        Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.insert tx t ~key:1 ~value:1));
        for _ = 1 to 50 do
          Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.lookup tx t 1))
        done)
  in
  Helpers.check_int "one update, fifty lookups: one fence" 1 fences

(* ---------- redo fallback for non-MOD-shaped transactions ---------- *)

let test_fallback_two_home_words () =
  List.iter
    (fun (_, model) ->
      let _, m, ptm = fixture ~model () in
      (* Two separately published words... *)
      let a = Ptm.atomic ptm (fun tx -> let a = Ptm.alloc tx 2 in Ptm.write tx a 1; Ptm.write tx (a + 1) 2; a) in
      (* ... then a transfer touching both: two distinct non-fresh
         words, not a root-swap shape — must fall back and stay
         atomic. *)
      Ptm.atomic ptm (fun tx ->
          Ptm.write tx a (Ptm.read tx a - 1);
          Ptm.write tx (a + 1) (Ptm.read tx (a + 1) + 1));
      Helpers.check_int "word 0" 0 (m.Machine.raw_read a);
      Helpers.check_int "word 1" 3 (m.Machine.raw_read (a + 1));
      let st = Ptm.Stats.get ptm in
      Helpers.check_int "both transactions committed" 2 st.Ptm.Stats.commits)
    domains

let test_fallback_matches_oracle () =
  (* A mixed workload where every op ALSO bumps a shared counter word —
     forcing the fallback on every update — must still match the
     oracle.  Covers the materialized-buffer path end to end. *)
  let _, m, ptm = fixture () in
  let t = Mod_bptree.create ptm in
  let counter = Ptm.atomic ptm (fun tx -> let c = Ptm.alloc tx 1 in Ptm.write tx c 0; c) in
  let oracle = ref M.empty in
  for k = 1 to 100 do
    Ptm.atomic ptm (fun tx ->
        ignore (Mod_bptree.insert tx t ~key:k ~value:k);
        Ptm.write tx counter (Ptm.read tx counter + 1));
    oracle := M.add k k !oracle
  done;
  Helpers.check_int "counter" 100 (m.Machine.raw_read counter);
  Mod_bptree.check_invariants t;
  Helpers.check_bool "state matches" true (Mod_bptree.to_alist t = M.bindings !oracle)

(* ---------- epoch reclamation ---------- *)

let test_reclamation_bounded () =
  let _, _, ptm = fixture () in
  let t = Mod_bptree.create ptm in
  (* Hammer one key range; path copies retire constantly.  With no
     concurrent snapshots the horizon advances every commit, so the
     retire list must stay near-empty and the allocator's live-block
     count must not grow with op count. *)
  for round = 1 to 40 do
    for k = 1 to 50 do
      Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.insert tx t ~key:k ~value:round))
    done
  done;
  Mod_bptree.reclaim t;
  Helpers.check_int "retire list drained" 0 (Mod_bptree.retired_blocks t);
  let live = List.length (Pmem.Alloc.live_blocks (Ptm.allocator ptm)) in
  (* 50 keys at fanout 14: a handful of nodes plus descriptor. *)
  Helpers.check_bool (Printf.sprintf "live blocks bounded (%d)" live) true (live < 40)

let test_hash_reclamation_bounded () =
  let _, _, ptm = fixture () in
  let t = Mod_phashtable.create ptm ~buckets:16 in
  for round = 1 to 40 do
    for k = 1 to 30 do
      Ptm.atomic ptm (fun tx -> ignore (Mod_phashtable.put tx t ~key:k ~value:round))
    done
  done;
  Mod_phashtable.reclaim t;
  Helpers.check_int "retire list drained" 0 (Mod_phashtable.retired_blocks t);
  let live = List.length (Pmem.Alloc.live_blocks (Ptm.allocator ptm)) in
  Helpers.check_bool (Printf.sprintf "live blocks bounded (%d)" live) true (live < 80)

(* ---------- recovery: the root swap is the recovery story ---------- *)

let test_recovery_buffered_prefix () =
  List.iter
    (fun (name, model) ->
      let sim, _, ptm = fixture ~model () in
      let t = Mod_bptree.create ptm in
      Ptm.root_set ptm 0 (Mod_bptree.descriptor t);
      let n = 60 in
      for k = 1 to n do
        Ptm.atomic ptm (fun tx -> ignore (Mod_bptree.insert tx t ~key:k ~value:k))
      done;
      let _, _, ptm' = Helpers.reboot_and_recover ~algorithm:Ptm.Mod sim in
      let t' = Mod_bptree.attach ptm' (Ptm.root_get ptm' 0) in
      Mod_bptree.check_invariants t';
      let recovered = Mod_bptree.to_alist t' in
      let full = List.init n (fun i -> (i + 1, i + 1)) in
      let prev = List.init (n - 1) (fun i -> (i + 1, i + 1)) in
      (* Buffered durability: recovery sees the swept root — the full
         state, or at worst the state one op back (the final root swap
         was never fenced). *)
      Helpers.check_bool
        (name ^ ": recovered = committed or committed-1")
        true
        (recovered = full || recovered = prev))
    domains

let suite =
  [
    Alcotest.test_case "mod btree: basic ops" `Quick test_btree_basic;
    Alcotest.test_case "mod btree: shuffled splits" `Quick test_btree_shuffled_splits;
    Alcotest.test_case "mod hashtable: basic ops" `Quick test_hash_basic;
    prop_btree_traces;
    prop_hash_traces;
    Alcotest.test_case "fence accounting: 1 fence/op on ADR" `Quick test_fence_per_op_adr;
    Alcotest.test_case "fence accounting: 0 on eADR class" `Quick test_no_fences_on_eadr_class;
    Alcotest.test_case "fence accounting: lookups fence-free" `Quick test_lookups_fence_free;
    Alcotest.test_case "fallback: two home words" `Quick test_fallback_two_home_words;
    Alcotest.test_case "fallback: forced, matches oracle" `Quick test_fallback_matches_oracle;
    Alcotest.test_case "reclamation: btree bounded" `Quick test_reclamation_bounded;
    Alcotest.test_case "reclamation: hashtable bounded" `Quick test_hash_reclamation_bounded;
    Alcotest.test_case "recovery: buffered prefix on all domains" `Quick
      test_recovery_buffered_prefix;
  ]
