(* The KV service: codec fuzz (every-byte-boundary splits, malformed
   frames that must never raise), router and store semantics, and
   service-level determinism plus crash-recovery oracles. *)

module P = Kvserve.Protocol
module Router = Kvserve.Router
module Store = Kvserve.Store
module Service = Kvserve.Service
module Client = Kvserve.Client
module Config = Memsim.Config
module Ptm = Pstm.Ptm
module Rng = Repro_util.Rng

let parse_all bytes =
  let p = P.parser_create () in
  P.feed p bytes;
  P.drain p

let item_str = function
  | P.Request r -> "req:" ^ P.render_request r
  | P.Protocol_error e -> "err:" ^ e

let items_str items = String.concat "|" (List.map item_str items)

(* ---------- codec: request round-trip ---------- *)

let sample_requests =
  [
    P.Get [ "alpha" ];
    P.Get [ "a"; "b"; "c" ];
    P.Set { key = "k1"; flags = 7; data = "hello" };
    (* Length-prefixed payloads may contain anything, CRLF included. *)
    P.Set { key = "k2"; flags = 0; data = "bin\r\nary \x01 bytes" };
    P.Set { key = "k3"; flags = 42; data = "" };
    P.Delete "gone";
    P.Incr { key = "c01"; delta = 9 };
  ]

let test_roundtrip () =
  let stream = String.concat "" (List.map P.render_request sample_requests) in
  let items = parse_all stream in
  Helpers.check_int "all requests parsed" (List.length sample_requests) (List.length items);
  List.iter2
    (fun want got ->
      match got with
      | P.Request r ->
        Alcotest.(check string)
          "round-trips" (P.render_request want) (P.render_request r)
      | P.Protocol_error e -> Alcotest.fail ("unexpected protocol error: " ^ e))
    sample_requests items

(* ---------- codec: split at every byte boundary ---------- *)

(* The satellite's core property: an incremental parser must produce
   the same item sequence no matter where the stream is torn. *)
let test_every_split () =
  let stream = String.concat "" (List.map P.render_request sample_requests) in
  let reference = items_str (parse_all stream) in
  let n = String.length stream in
  for cut = 1 to n - 1 do
    let p = P.parser_create () in
    P.feed p (String.sub stream 0 cut);
    let before = P.drain p in
    P.feed p (String.sub stream cut (n - cut));
    let items = before @ P.drain p in
    if not (String.equal reference (items_str items)) then
      Alcotest.failf "split at byte %d/%d diverges" cut n
  done;
  (* Worst case: one byte per feed. *)
  let p = P.parser_create () in
  let trickled = ref [] in
  String.iter
    (fun c ->
      P.feed p (String.make 1 c);
      List.iter (fun it -> trickled := it :: !trickled) (P.drain p))
    stream;
  Alcotest.(check string) "byte-at-a-time" reference (items_str (List.rev !trickled));
  Helpers.check_int "parser quiescent" 0 (P.buffered p)

(* ---------- codec: malformed frames ---------- *)

let expect_error input =
  match parse_all input with
  | [ P.Protocol_error e ] ->
    Helpers.check_bool
      (Printf.sprintf "%S yields an error reply" input)
      true
      (String.length e > 2 && String.sub e (String.length e - 2) 2 = "\r\n")
  | items ->
    Alcotest.failf "%S: expected one protocol error, got %d item(s): %s" input
      (List.length items) (items_str items)

let test_malformed () =
  List.iter expect_error
    [
      "bogus\r\n";
      "\r\n";
      "get\r\n";
      "get bad key\x01\r\n";
      "set k\r\n";
      "set k 0 0 notanum\r\n";
      "set k -1 0 3\r\n";
      "set k 0 0 99999999999999999999\r\n";
      (Printf.sprintf "set %s 0 0 3\r\n" (String.make 300 'k'));
      (Printf.sprintf "set k 0 0 %d\r\n" (P.max_value_bytes + 1));
      "delete\r\n";
      "delete a b\r\n";
      "incr k notanum\r\n";
      "incr k -3\r\n";
      (String.make 5000 'x');
    ];
  (* A torn set payload (missing CRLF terminator) consumes the declared
     bytes and resynchronises. *)
  (match parse_all "set k 0 0 4\r\nabcdXX\r\n" with
  | [ P.Protocol_error _; P.Protocol_error _ ] -> ()
  | items -> Alcotest.failf "torn payload: got %s" (items_str items));
  (* The parser recovers: a valid request after garbage still parses. *)
  match parse_all "garbage line\r\nget ok\r\n" with
  | [ P.Protocol_error _; P.Request (P.Get [ "ok" ]) ] -> ()
  | items -> Alcotest.failf "no resync after garbage: %s" (items_str items)

(* ---------- codec: random-bytes fuzz ---------- *)

(* Whatever arrives — random binary, random chunk boundaries — the
   parser must neither raise nor wedge (items stay drainable, the
   buffer stays bounded by line/body limits). *)
let test_fuzz () =
  let rng = Rng.create 0xF022 in
  let alphabet = "get set delincr 0123456789 \r\n\x00\xff k" in
  for _ = 1 to 200 do
    let p = P.parser_create () in
    let budget = ref 0 in
    for _ = 1 to 40 do
      let len = Rng.int rng 30 in
      let chunk =
        String.init len (fun _ -> alphabet.[Rng.int rng (String.length alphabet)])
      in
      P.feed p chunk;
      budget := !budget + len;
      let items = P.drain p in
      List.iter
        (function
          | P.Protocol_error e ->
            Helpers.check_bool "error replies are CRLF-terminated" true
              (String.length e >= 2 && String.sub e (String.length e - 2) 2 = "\r\n")
          | P.Request _ -> ())
        items
    done;
    Helpers.check_bool "buffer bounded" true (P.buffered p <= !budget)
  done

(* ---------- router ---------- *)

let test_router () =
  let shards = 5 in
  let counts = Array.make shards 0 in
  for i = 0 to 999 do
    let key = Client.key_of i in
    let s = Router.shard_of_key ~shards key in
    Helpers.check_bool "shard in range" true (s >= 0 && s < shards);
    Helpers.check_int "routing is a pure function" s (Router.shard_of_key ~shards key);
    counts.(s) <- counts.(s) + 1;
    let h = Router.store_hash key in
    Helpers.check_bool "store hash positive" true (h > 0)
  done;
  Array.iteri
    (fun s c -> Helpers.check_bool (Printf.sprintf "shard %d nonempty" s) true (c > 50))
    counts;
  Helpers.check_int "one shard degenerates to 0" 0 (Router.shard_of_key ~shards:1 "anything")

(* ---------- store ---------- *)

let test_store () =
  let _sim, _m, ptm = Helpers.ptm_fixture ~log_words_per_thread:4096 () in
  let store = Store.create ptm ~buckets:64 in
  Ptm.atomic ptm (fun tx ->
      Store.set tx store ~key:"a" ~flags:3 "hello";
      Store.set tx store ~key:"b" ~flags:0 "12");
  Ptm.atomic ptm (fun tx ->
      (match Store.get tx store "a" with
      | Some (3, "hello") -> ()
      | _ -> Alcotest.fail "a not stored");
      Helpers.check_int "items counted" 2 (Store.items tx store));
  (* Overwrite: same length updates in place, new length reallocates. *)
  Ptm.atomic ptm (fun tx -> Store.set tx store ~key:"a" ~flags:9 "world");
  Ptm.atomic ptm (fun tx -> Store.set tx store ~key:"a" ~flags:9 "long-er value");
  Ptm.atomic ptm (fun tx ->
      match Store.get tx store "a" with
      | Some (9, "long-er value") -> ()
      | _ -> Alcotest.fail "overwrite lost");
  (* incr only on decimal values. *)
  Ptm.atomic ptm (fun tx ->
      (match Store.incr tx store "b" 30 with
      | Store.New_value 42 -> ()
      | _ -> Alcotest.fail "incr 12+30");
      (match Store.incr tx store "a" 1 with
      | Store.Not_numeric -> ()
      | _ -> Alcotest.fail "incr on text must refuse");
      match Store.incr tx store "nope" 1 with
      | Store.Missing -> ()
      | _ -> Alcotest.fail "incr on missing key");
  (* delete *)
  Ptm.atomic ptm (fun tx ->
      Helpers.check_bool "delete existing" true (Store.delete tx store "a");
      Helpers.check_bool "delete missing" false (Store.delete tx store "a");
      Helpers.check_int "items after delete" 1 (Store.items tx store));
  (* The batch marker is just a meta word under the same transactions. *)
  Ptm.atomic ptm (fun tx -> Store.set_batch_marker tx store 17);
  Helpers.check_int "marker round-trips" 17
    (Ptm.atomic ptm (fun tx -> Store.batch_marker tx store));
  (* attach sees the same state. *)
  let store' = Store.attach ptm in
  Ptm.atomic ptm (fun tx ->
      match Store.get tx store' "b" with
      | Some (0, "42") -> ()
      | _ -> Alcotest.fail "attach lost data")

(* ---------- service fixtures ---------- *)

let small_config ?(model = Config.optane_adr) () =
  {
    (Service.default_config model) with
    Service.shards = 2;
    prepopulate_items = 64;
    buckets_per_shard = 256;
    heap_words_per_shard = 1 lsl 17;
  }

let small_fleet () =
  Client.generate ~seed:0xBEEF ~conns:3 ~requests_per_conn:25 ~items:64 ~value_bytes:32
    ~set_ratio:0.3 ~delete_ratio:0.05 ~incr_ratio:0.1 ~mean_gap_ns:1_500 ~theta:0.9 ()

(* Count reply frames in a connection's response stream.  VALUE blocks
   are length-prefixed (payloads may contain CRLF); END closes a get
   frame; every other reply is a single line. *)
let count_reply_frames s =
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then acc
    else
      match String.index_from_opt s pos '\n' with
      | None -> Alcotest.fail "reply stream ends mid-line"
      | Some nl ->
        let line = String.sub s pos (nl - pos - 1) in
        if String.length line >= 6 && String.sub line 0 6 = "VALUE " then
          match String.split_on_char ' ' line with
          | [ _; _; _; bytes ] -> go (nl + 1 + int_of_string bytes + 2) acc
          | _ -> Alcotest.fail ("bad VALUE line: " ^ line)
        else if String.length line >= 5 && String.sub line 0 5 = "STAT " then
          (* stats body line — the frame is counted at its END *)
          go (nl + 1) acc
        else go (nl + 1) (acc + 1)
  in
  go 0 0

let requests_per_conn (fleet : Client.t) =
  let counts = Array.make fleet.Client.conns 0 in
  let parsers = Array.init fleet.Client.conns (fun _ -> P.parser_create ()) in
  List.iter
    (fun { Client.conn; bytes; _ } ->
      P.feed parsers.(conn) bytes;
      counts.(conn) <- counts.(conn) + List.length (P.drain parsers.(conn)))
    fleet.Client.chunks;
  counts

let fingerprint cfg (r : Service.result) =
  Service.metrics_jsonl cfg r ^ String.concat "\x00" (Array.to_list r.Service.replies)

(* ---------- service: determinism ---------- *)

let test_service_deterministic () =
  let cfg = small_config () in
  let fleet = small_fleet () in
  let a = Service.run ~jobs:1 cfg fleet in
  let b = Service.run ~jobs:1 cfg fleet in
  let c = Service.run ~jobs:2 cfg fleet in
  Alcotest.(check string) "repeat run byte-identical" (fingerprint cfg a) (fingerprint cfg b);
  Alcotest.(check string) "jobs=2 byte-identical" (fingerprint cfg a) (fingerprint cfg c);
  Helpers.check_bool "no crash" false a.Service.crashed;
  Helpers.check_int "no recovery records" 0 (List.length a.Service.recoveries);
  (* Every request gets exactly one reply frame, per connection. *)
  let expect = requests_per_conn fleet in
  Array.iteri
    (fun conn stream ->
      Helpers.check_int
        (Printf.sprintf "conn %d reply frames" conn)
        expect.(conn) (count_reply_frames stream))
    a.Service.replies;
  Helpers.check_int "every request answered" fleet.Client.requests a.Service.requests

(* ---------- service: crash + restart recovery ---------- *)

let test_service_crash () =
  let cfg = small_config () in
  let fleet = small_fleet () in
  let a = Service.run ~jobs:1 ~crash_at:15_000 cfg fleet in
  let b = Service.run ~jobs:2 ~crash_at:15_000 cfg fleet in
  Alcotest.(check string) "crash run deterministic across jobs" (fingerprint cfg a)
    (fingerprint cfg b);
  Helpers.check_bool "crash observed" true a.Service.crashed;
  Helpers.check_bool "recovery records present" true (a.Service.recoveries <> []);
  List.iter
    (fun rc ->
      Helpers.check_bool "modeled recovery time positive" true (rc.Service.r_modeled_ns > 0);
      Helpers.check_bool "recovery scanned its log" true (rc.Service.r_words_scanned > 0))
    a.Service.recoveries;
  (* Despite the crash, every request is answered exactly once. *)
  let expect = requests_per_conn fleet in
  Array.iteri
    (fun conn stream ->
      Helpers.check_int
        (Printf.sprintf "conn %d reply frames after crash" conn)
        expect.(conn) (count_reply_frames stream))
    a.Service.replies

(* ---------- service: exactly-once incr oracle ---------- *)

(* A single connection issuing N increments of one counter.  Increments
   are serialised by the owning shard, so the reply sequence must be
   non-decreasing (reconstructed replies for a durable-but-unanswered
   batch repeat the recovered value) and end exactly at N: a lost
   commit would fall short, a double replay would overshoot. *)
let test_incr_exactly_once () =
  let n = 40 in
  let bytes = P.render_request (P.Incr { key = Client.counter_of 0; delta = 1 }) in
  let fleet =
    {
      Client.chunks =
        List.init n (fun i -> { Client.arrival_ns = 2_000 * (i + 1); conn = 0; bytes });
      conns = 1;
      requests = n;
      trace_ids = [||];
    }
  in
  let cfg = small_config () in
  let check label r =
    let stream = r.Service.replies.(0) in
    let numbers =
      List.filter_map int_of_string_opt
        (List.map String.trim (String.split_on_char '\n' stream))
    in
    Helpers.check_int (label ^ ": all incrs answered with numbers") n (List.length numbers);
    let last = List.fold_left (fun _ v -> v) 0 numbers in
    Helpers.check_int (label ^ ": final count exact") n last;
    ignore
      (List.fold_left
         (fun prev v ->
           Helpers.check_bool (label ^ ": counts never regress") true (v >= prev);
           v)
         0 numbers)
  in
  check "clean" (Service.run ~jobs:1 cfg fleet);
  check "crashed" (Service.run ~jobs:1 ~crash_at:40_000 cfg fleet)

(* ---------- service: stats verb ---------- *)

module Trace = Telemetry.Trace

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_stats_verb () =
  let cfg = small_config () in
  let fleet =
    {
      Client.chunks =
        [
          { Client.arrival_ns = 1_000; conn = 0; bytes = P.render_request (P.Get [ "k0" ]) };
          { Client.arrival_ns = 2_000; conn = 0; bytes = P.render_request P.Stats };
        ];
      conns = 1;
      requests = 2;
      trace_ids = [||];
    }
  in
  let r = Service.run ~jobs:1 cfg fleet in
  let stream = r.Service.replies.(0) in
  (* The STAT block is fed from the same registry the JSONL metrics
     use, so the pair values must agree with the result record. *)
  Helpers.check_bool "STAT requests pair" true
    (has_substring stream (Printf.sprintf "STAT kvserve_requests %d\r\n" r.Service.requests));
  Helpers.check_bool "per-shard ptm commits exposed" true
    (has_substring stream "STAT ptm_commits.");
  Helpers.check_bool "END terminator" true (has_substring stream "END\r\n");
  (* Round-trip: the reply must itself survive the codec's framing. *)
  Helpers.check_int "stats + get frames" 2 (count_reply_frames stream)

(* ---------- service: tracing is observation-only ---------- *)

let test_trace_zero_cost () =
  (* Turning tracing on must not move virtual time or change a single
     reply byte: same fleet, same schedule, same metrics. *)
  let fleet = small_fleet () in
  let off = small_config () in
  let on = { off with Service.trace = true } in
  let check_same label a b =
    Alcotest.(check string) label (fingerprint off a) (fingerprint on b)
  in
  check_same "clean run identical" (Service.run ~jobs:1 off fleet)
    (Service.run ~jobs:1 on fleet);
  check_same "crash run identical"
    (Service.run ~jobs:1 ~crash_at:15_000 off fleet)
    (Service.run ~jobs:1 ~crash_at:15_000 on fleet);
  Helpers.check_bool "trace store absent when disabled" true
    ((Service.run ~jobs:1 off fleet).Service.trace = None)

let test_trace_accounting () =
  (* With tracing on, every request's span set must account for its
     whole latency window — exactly, for the single-key generated
     fleet — on every durability domain, clean and crashed. *)
  let fleet = small_fleet () in
  List.iter
    (fun (model, crash_at) ->
      let cfg = { (small_config ~model ()) with Service.trace = true } in
      let r = Service.run ~jobs:1 ?crash_at cfg fleet in
      let tr =
        match r.Service.trace with
        | Some tr -> tr
        | None -> Alcotest.fail "tracing enabled but result carries no trace"
      in
      let rows = Trace.accounting tr in
      Helpers.check_int
        (Printf.sprintf "%s: one accounting row per request" r.Service.model)
        fleet.Client.requests (List.length rows);
      List.iter
        (fun (trace, latency, attributed) ->
          if latency <> attributed then
            Alcotest.failf "%s: trace %d attributed %dns of %dns latency" r.Service.model
              trace attributed latency)
        rows;
      (* Digests are stable across reruns and pool sizes. *)
      let again = Service.run ~jobs:2 ?crash_at cfg fleet in
      match again.Service.trace with
      | Some tr2 ->
        Alcotest.(check string)
          (Printf.sprintf "%s: digest stable across jobs" r.Service.model)
          (Trace.digest tr) (Trace.digest tr2)
      | None -> Alcotest.fail "rerun lost its trace")
    [
      (Config.optane_adr, None); (Config.optane_eadr, None); (Config.dram_adr, None);
      (Config.pdram_lite, None); (Config.optane_adr, Some 15_000);
    ]

let test_trace_multiget_overlap () =
  (* A multi-key get fans out to several shards whose spans overlap in
     time, so attributed time may exceed — and never undercuts —
     end-to-end latency. *)
  let cfg = { (small_config ()) with Service.trace = true } in
  let bytes = P.render_request (P.Get [ Client.key_of 1; Client.key_of 2; Client.key_of 3 ]) in
  let fleet =
    {
      Client.chunks = [ { Client.arrival_ns = 1_000; conn = 0; bytes } ];
      conns = 1;
      requests = 1;
      trace_ids = [||];
    }
  in
  let r = Service.run ~jobs:1 cfg fleet in
  match r.Service.trace with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
    (match Trace.accounting tr with
    | [ (_, latency, attributed) ] ->
      Helpers.check_bool "attributed covers latency" true (attributed >= latency);
      Helpers.check_bool "positive latency" true (latency > 0)
    | rows -> Alcotest.failf "expected one row, got %d" (List.length rows))

let suite =
  [
    Alcotest.test_case "codec: render/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "codec: split at every byte boundary" `Quick test_every_split;
    Alcotest.test_case "codec: malformed frames never raise" `Quick test_malformed;
    Alcotest.test_case "codec: random-bytes fuzz" `Quick test_fuzz;
    Alcotest.test_case "router: stable, in-range, spread" `Quick test_router;
    Alcotest.test_case "store: set/get/delete/incr semantics" `Quick test_store;
    Alcotest.test_case "service: deterministic across runs and jobs" `Slow
      test_service_deterministic;
    Alcotest.test_case "service: crash, recovery, every request answered" `Slow
      test_service_crash;
    Alcotest.test_case "service: incr exactly-once across crash" `Slow
      test_incr_exactly_once;
    Alcotest.test_case "service: stats verb from the registry" `Quick test_stats_verb;
    Alcotest.test_case "service: tracing is observation-only" `Slow test_trace_zero_cost;
    Alcotest.test_case "service: trace accounting covers latency" `Slow test_trace_accounting;
    Alcotest.test_case "service: multi-get overlap accounting" `Quick
      test_trace_multiget_overlap;
  ]
