(* `dune build @telemetry`: end-to-end schema and determinism gate for
   the telemetry artifacts.

   Runs a short instrumented bank workload under {ADR, eADR} x
   {Redo, Undo} and checks, for every cell:
   - the profile JSONL is well-formed line-delimited JSON objects with
     the expected record types and no "nan"/"inf"/negative values;
   - per-thread phase nanoseconds sum to the thread's transaction time;
   - the series CSV has a fixed column count and at least one data row;
   - the Chrome trace is bracketed as one JSON object;
   - a repeat run is byte-identical on all three artifacts.

   Exits nonzero listing every violation. *)

module Driver = Workloads.Driver
module Profile = Pstm.Profile

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let check name cond = if not cond then fail "%s" name

let duration_ns = 300_000

let cells =
  [
    (Memsim.Config.optane_adr, Pstm.Ptm.Redo);
    (Memsim.Config.optane_adr, Pstm.Ptm.Undo);
    (Memsim.Config.optane_eadr, Pstm.Ptm.Redo);
    (Memsim.Config.optane_eadr, Pstm.Ptm.Undo);
  ]

let artifacts model algorithm =
  let r =
    Driver.run ~duration_ns ~telemetry:Telemetry.default_config ~model ~algorithm ~threads:4
      Workloads.Bank.spec
  in
  let cap = match r.Driver.telemetry with Some c -> c | None -> failwith "no capture" in
  let meta = Driver.run_meta r ~seed:Driver.default_seed ~duration_ns in
  (r, cap, Telemetry.files meta cap)

let lines s = String.split_on_char '\n' (String.trim s)

(* "nan"/"inf" can only come from a float leaking into the emitters;
   "-" digits only from a negative duration or counter.  Both are
   schema violations anywhere in any artifact. *)
let check_no_bad_numbers cell name content =
  let has sub =
    let n = String.length sub and l = String.length content in
    let rec go i = i + n <= l && (String.sub content i n = sub || go (i + 1)) in
    go 0
  in
  check (Printf.sprintf "%s %s: contains \"nan\"" cell name) (not (has "nan"));
  check (Printf.sprintf "%s %s: contains \"inf\"" cell name) (not (has "inf"));
  check (Printf.sprintf "%s %s: negative value" cell name)
    (not (has ":-") && not (has ",-"))

let check_jsonl cell content =
  let ls = lines content in
  check (Printf.sprintf "%s profile.jsonl: empty" cell) (ls <> []);
  List.iteri
    (fun i l ->
      let n = String.length l in
      check
        (Printf.sprintf "%s profile.jsonl:%d: not a JSON object" cell (i + 1))
        (n >= 2 && l.[0] = '{' && l.[n - 1] = '}'))
    ls;
  let count_type ty =
    let tag = Printf.sprintf "{\"type\":%S" ty in
    List.length
      (List.filter (fun l -> String.length l >= String.length tag
                             && String.sub l 0 (String.length tag) = tag)
         ls)
  in
  check (Printf.sprintf "%s profile.jsonl: exactly one run header" cell) (count_type "run" = 1);
  check (Printf.sprintf "%s profile.jsonl: phase rows" cell) (count_type "phase" > 0);
  check (Printf.sprintf "%s profile.jsonl: run-phase rows" cell) (count_type "run-phase" > 0);
  check (Printf.sprintf "%s profile.jsonl: thread rows" cell) (count_type "thread" > 0)

let check_csv cell content =
  let ls = lines content in
  let cols l = List.length (String.split_on_char ',' l) in
  match ls with
  | [] -> fail "%s series.csv: empty" cell
  | header :: rows ->
    check (Printf.sprintf "%s series.csv: header" cell)
      (header = Telemetry.Series.csv_header);
    check (Printf.sprintf "%s series.csv: no data rows" cell) (rows <> []);
    List.iteri
      (fun i row ->
        check
          (Printf.sprintf "%s series.csv:%d: column count" cell (i + 2))
          (cols row = cols header))
      rows

let check_trace cell content =
  let content = String.trim content in
  let n = String.length content in
  check (Printf.sprintf "%s trace.json: not a JSON object" cell)
    (n >= 2 && content.[0] = '{' && content.[n - 1] = '}')

let check_cell (model, algorithm) =
  let cell =
    Printf.sprintf "%s/%s" model.Memsim.Config.model_name (Pstm.Ptm.algorithm_name algorithm)
  in
  let r, cap, files = artifacts model algorithm in
  check (Printf.sprintf "%s: no commits" cell) (r.Driver.commits > 0);
  let p = Telemetry.profile cap in
  List.iter
    (fun tid ->
      check
        (Printf.sprintf "%s: tid %d phase sum <> txn time" cell tid)
        (Profile.total_phase_ns p ~tid = Profile.txn_ns p ~tid))
    (Profile.tids p);
  List.iter
    (fun (name, content) ->
      check_no_bad_numbers cell name content;
      match name with
      | "profile.jsonl" -> check_jsonl cell content
      | "series.csv" -> check_csv cell content
      | "trace.json" -> check_trace cell content
      | _ -> fail "%s: unexpected artifact %s" cell name)
    files;
  (* Determinism: the identical configuration again, byte-for-byte. *)
  let _, _, files2 = artifacts model algorithm in
  List.iter2
    (fun (name, c1) (_, c2) ->
      check (Printf.sprintf "%s %s: repeat run not byte-identical" cell name) (c1 = c2))
    files files2;
  Printf.printf "telemetry %-24s ok (%d commits, %d samples)\n%!" cell r.Driver.commits
    (Telemetry.Series.recorded (Telemetry.series cap))

let () =
  List.iter check_cell cells;
  match List.rev !failures with
  | [] -> print_endline "telemetry check: all cells pass"
  | fs ->
    List.iter (Printf.eprintf "FAIL: %s\n") fs;
    Printf.eprintf "telemetry check: %d failure(s)\n" (List.length fs);
    exit 1
