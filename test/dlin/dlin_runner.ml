(* Durable-linearizability gate, wired into tier-1 `dune runtest` and,
   in full-matrix form, `dune build @dlin`.

   Fast mode (default): four representative cells — the ADR baseline
   plus one cell per extension domain (transient-cache, HTM-commit,
   eADR) — and one armed skip-fence probe that the dlin oracle must
   reject.  DLIN_FULL=1 (set by the @dlin alias) widens this to every
   scenario across the whole durability matrix plus all three injected
   mutations.

   Both modes are held to a wall-clock budget so the oracle's search
   cost stays an explicit, regression-checked quantity: DLIN_BUDGET_S
   overrides the defaults (60 s fast, 600 s full), and exceeding the
   budget fails the run even when every cell passed. *)

module Config = Memsim.Config
module Ptm = Pstm.Ptm
module Engine = Crashtest.Engine
module Scenarios = Crashtest.Scenarios

let full =
  match Sys.getenv_opt "DLIN_FULL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let budget_s =
  match Sys.getenv_opt "DLIN_BUDGET_S" with
  | Some s when String.trim s <> "" -> (
    match float_of_string_opt (String.trim s) with
    | Some b when b > 0.0 -> b
    | _ ->
      Printf.eprintf "DLIN_BUDGET_S: not a positive number: %S\n%!" s;
      exit 2)
  | _ -> if full then 600.0 else 60.0

let models =
  [
    Config.optane_adr;
    Config.optane_eadr;
    Config.pdram;
    Config.pdram_lite;
    Config.transient_cache;
    Config.htm_commit;
  ]

(* MOD structure scenarios run the Mod algorithm (checked under the
   buffered dlin criterion) plus Redo as the strict differential. *)
let algorithms_for model scenario =
  let is_mod =
    let n = scenario.Engine.name in
    String.length n >= 4 && String.sub n 0 4 = "mod-"
  in
  if is_mod then [ Ptm.Mod; Ptm.Redo ]
  else if model == Config.htm_commit then [ Ptm.Redo; Ptm.Htm ]
  else [ Ptm.Redo; Ptm.Undo ]

(* One cell per durability domain of interest, spread across scenarios
   so the fast gate still exercises bank's read-pair responses, the
   total-order counters spec and the kvserve exactly-once spec. *)
let fast_cells =
  [
    ("bank", Config.optane_adr, Ptm.Redo);
    ("counters", Config.transient_cache, Ptm.Undo);
    ("kv-incr", Config.htm_commit, Ptm.Htm);
    ("btree", Config.optane_eadr, Ptm.Redo);
    ("mod-btree", Config.optane_adr, Ptm.Mod);
  ]

(* The three armed ordering bugs, each on a cell where the weakened
   ordering is actually observable (see test/test_crashtest.ml). *)
let mutations =
  [
    (Ptm.Skip_fence, "bank", Config.optane_adr, Ptm.Redo);
    (Ptm.Reorder_log_apply, "counters", Config.optane_adr, Ptm.Redo);
    (Ptm.Tear_write, "bank", Config.optane_adr, Ptm.Undo);
    (Ptm.Skip_fence, "mod-btree", Config.optane_adr, Ptm.Mod);
    (Ptm.Tear_write, "mod-hash", Config.optane_adr, Ptm.Mod);
  ]

let failed = ref 0
let ran = ref 0

let cell_name scenario model algorithm =
  Printf.sprintf "%s/%s/%s" scenario.Engine.name model.Config.model_name
    (Ptm.algorithm_name algorithm)

(* A positive cell: the oracle must find a durable linearization at
   every probed crash instant. *)
let positive ?points scenario model algorithm =
  incr ran;
  let report = Engine.explore ?points ~model ~algorithm scenario in
  if not (Engine.ok report) then begin
    incr failed;
    Format.printf "FAIL %a@." Engine.pp_report report
  end

(* A mutation cell: with the bug armed, the oracle must reject at least
   one crash instant — a clean pass here means the checker is blind. *)
let mutation ?(points = 80) inject scenario model algorithm =
  incr ran;
  let report = Engine.explore ~points ~seed:1 ~inject ~model ~algorithm scenario in
  if Engine.ok report then begin
    incr failed;
    Printf.printf "FAIL %s + %s: oracle missed the armed mutation\n%!"
      (cell_name scenario model algorithm)
      (Ptm.inject_name inject)
  end

let () =
  let t0 = Unix.gettimeofday () in
  if full then begin
    List.iter
      (fun scenario ->
        List.iter
          (fun model ->
            List.iter
              (fun algorithm -> positive scenario model algorithm)
              (algorithms_for model scenario))
          models)
      (Scenarios.all ());
    List.iter
      (fun (inject, scen, model, algorithm) ->
        mutation inject (Scenarios.find scen) model algorithm)
      mutations
  end
  else begin
    List.iter
      (fun (scen, model, algorithm) ->
        positive ~points:40 (Scenarios.find scen) model algorithm)
      fast_cells;
    let inject, scen, model, algorithm = List.hd mutations in
    mutation inject (Scenarios.find scen) model algorithm
  end;
  let elapsed = Unix.gettimeofday () -. t0 in
  let mode = if full then "full" else "fast" in
  if !failed > 0 then begin
    Printf.printf "dlin(%s): %d/%d cell(s) FAILED in %.1fs\n%!" mode !failed !ran elapsed;
    exit 1
  end
  else if elapsed > budget_s then begin
    Printf.printf "dlin(%s): all %d cells passed but %.1fs exceeds the %.0fs budget\n%!" mode
      !ran elapsed budget_s;
    exit 1
  end
  else Printf.printf "dlin(%s): all %d cells passed in %.1fs (budget %.0fs)\n%!" mode !ran elapsed budget_s
