(* `dune build @differential`: the differential gate for the flush
   disciplines.

   Two checks, both deterministic:

   - a fixed-seed slice of the differential stress suite: each seed's
     randomized transaction trace must leave the identical user-visible
     heap under every (algorithm, durability model, flush discipline)
     configuration, and the coalesced runs must never issue more fences
     or clwbs than their naive counterparts (see Difftest);

   - the headline fence-economy claim: a 4-thread bank run under ADR
     with redo logging must spend strictly fewer fences and clwbs per
     commit with coalescing than without, while committing from the
     same deterministic schedule.

   DIFFTEST_SEEDS=n widens the slice (default 12).  Exits nonzero
   listing every violation. *)

module Config = Memsim.Config
module Profile = Pstm.Profile
module Driver = Workloads.Driver

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* ---------- fixed-seed differential slice ---------- *)

let seeds =
  let n =
    match Sys.getenv_opt "DIFFTEST_SEEDS" with
    | Some s -> (try max 1 (int_of_string s) with Failure _ -> 12)
    | None -> 12
  in
  List.init n (fun i -> 1 + i)

let run_slice () =
  List.iter
    (fun seed ->
      match Difftest.check_seed seed with
      | Ok () -> ()
      | Error e -> fail "difftest: %s" e)
    seeds

(* ---------- bank fence economy: coalesced strictly beats naive ---------- *)

let bank_profile ~coalesce =
  let passive = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 } in
  let r =
    Driver.run ~duration_ns:300_000 ~telemetry:passive ~model:Config.optane_adr
      ~algorithm:Pstm.Ptm.Redo ~threads:4 ~coalesce Workloads.Bank.spec
  in
  let cap = match r.Driver.telemetry with Some c -> c | None -> failwith "no capture" in
  let p = Telemetry.profile cap in
  let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
  let over phase_metric =
    sum (fun ~tid ->
        List.fold_left (fun acc ph -> acc + phase_metric p ~tid ph) 0 Profile.all_phases)
  in
  ( r.Driver.commits,
    over Profile.phase_fences,
    over Profile.phase_flushes,
    sum (Profile.fences_saved p) )

let run_bank_economy () =
  let commits_c, fences_c, clwbs_c, saved_c = bank_profile ~coalesce:true in
  let commits_n, fences_n, clwbs_n, saved_n = bank_profile ~coalesce:false in
  let per count commits = float_of_int count /. float_of_int (max 1 commits) in
  if commits_c = 0 || commits_n = 0 then
    fail "bank economy: no commits (coalesced %d, naive %d)" commits_c commits_n;
  if per fences_c commits_c >= per fences_n commits_n then
    fail "bank economy: coalesced fences/commit %.2f not below naive %.2f"
      (per fences_c commits_c) (per fences_n commits_n);
  if per clwbs_c commits_c >= per clwbs_n commits_n then
    fail "bank economy: coalesced clwbs/commit %.2f not below naive %.2f"
      (per clwbs_c commits_c) (per clwbs_n commits_n);
  if saved_c = 0 then fail "bank economy: coalesced run reports no fences saved";
  if saved_n <> 0 then fail "bank economy: naive run reports %d fences saved" saved_n

let () =
  run_slice ();
  run_bank_economy ();
  match !failures with
  | [] ->
    Printf.printf "differential gate: %d seeds x %d configurations ok, bank economy ok\n"
      (List.length seeds)
      (List.length Difftest.matrix)
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL %s\n" f) (List.rev fs);
    exit 1
