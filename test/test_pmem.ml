open Pmem

(* Direct (non-transactional) tx_ops for exercising the allocator in
   isolation: writes go straight to the heap; hooks run eagerly. *)
let direct_ops (m : Machine.t) =
  {
    Alloc.txr = m.Machine.raw_read;
    txw = m.Machine.raw_write;
    on_commit = (fun hook -> hook ());
    on_abort = (fun _ -> ());
  }

let fixture () =
  let _sim, m = Helpers.sim_machine ~heap_words:(1 lsl 16) () in
  let reg = Region.create ~max_threads:8 ~log_words_per_thread:512 m in
  let alloc = Alloc.create reg in
  (m, reg, alloc)

(* ---------- region ---------- *)

let test_region_layout_disjoint () =
  let _, reg, _ = fixture () in
  Helpers.check_bool "log area after header" true (Region.log_base reg ~tid:0 > 0);
  Helpers.check_bool "data after logs" true
    (Region.data_start reg >= Region.log_base reg ~tid:7 + Region.log_words_per_thread reg);
  Helpers.check_bool "data before end" true (Region.data_start reg < Region.data_end reg)

let test_region_log_areas_disjoint () =
  let _, reg, _ = fixture () in
  let b0 = Region.log_base reg ~tid:0 and b1 = Region.log_base reg ~tid:1 in
  Helpers.check_int "adjacent log areas" (Region.log_words_per_thread reg) (b1 - b0)

let test_region_roots_roundtrip () =
  let _, reg, _ = fixture () in
  Region.root_set reg 0 4242;
  Region.root_set reg 15 99;
  Helpers.check_int "root 0" 4242 (Region.root_get reg 0);
  Helpers.check_int "root 15" 99 (Region.root_get reg 15);
  Helpers.check_int "unset root" 0 (Region.root_get reg 7)

let test_region_attach_preserves_layout () =
  let m, reg, _ = fixture () in
  Region.root_set reg 3 777;
  let reg' = Region.attach m in
  Helpers.check_int "same data_start" (Region.data_start reg) (Region.data_start reg');
  Helpers.check_int "root survives attach" 777 (Region.root_get reg' 3)

let test_region_attach_rejects_garbage () =
  let _sim, m = Helpers.sim_machine () in
  match Region.attach m with
  | _ -> Alcotest.fail "expected Corrupt_image"
  | exception Machine.Corrupt_image msg ->
    Helpers.check_bool "names the bad magic" true
      (String.length msg > 0 && String.sub msg 0 13 = "Region.attach")

(* ---------- allocator ---------- *)

let test_alloc_returns_disjoint_blocks () =
  let m, _, alloc = fixture () in
  let ops = direct_ops m in
  let blocks = List.init 50 (fun i -> (Alloc.alloc alloc ops ~words:8, 8 * (i mod 1 + 1))) in
  let sorted = List.sort compare (List.map fst blocks) in
  let rec disjoint = function
    | a :: (b :: _ as rest) -> b - a >= 9 && disjoint rest (* 8 payload + 1 header *)
    | _ -> true
  in
  Helpers.check_bool "blocks do not overlap" true (disjoint sorted)

let test_alloc_free_reuses () =
  let m, _, alloc = fixture () in
  let ops = direct_ops m in
  let a = Alloc.alloc alloc ops ~words:16 in
  Alloc.free alloc ops a;
  let b = Alloc.alloc alloc ops ~words:16 in
  Helpers.check_int "freed block is reused" a b

let test_alloc_size_class_rounding () =
  let m, _, alloc = fixture () in
  let ops = direct_ops m in
  let a = Alloc.alloc alloc ops ~words:5 in
  Helpers.check_int "5 words rounds to class 6" 6 (Alloc.payload_words alloc a)

let test_alloc_rejects_bad_sizes () =
  let m, _, alloc = fixture () in
  let ops = direct_ops m in
  Alcotest.check_raises "zero" (Invalid_argument "Alloc: bad object size 0") (fun () ->
      ignore (Alloc.alloc alloc ops ~words:0))

let test_alloc_large_objects () =
  let m, _, alloc = fixture () in
  let ops = direct_ops m in
  let a = Alloc.alloc alloc ops ~words:1500 in
  m.Machine.raw_write a 1;
  m.Machine.raw_write (a + 1499) 2;
  Helpers.check_int "large payload usable" 1 (m.Machine.raw_read a);
  Alloc.free alloc ops a;
  let b = Alloc.alloc alloc ops ~words:1400 in
  Helpers.check_int "large block reused first-fit" a b

let test_alloc_out_of_memory () =
  let _sim, m = Helpers.sim_machine ~heap_words:(1 lsl 15) () in
  let reg = Region.create ~max_threads:8 ~log_words_per_thread:512 m in
  let alloc = Alloc.create reg in
  let ops = direct_ops m in
  Alcotest.check_raises "exhaustion" Out_of_memory (fun () ->
      for _ = 1 to 100_000 do
        ignore (Alloc.alloc alloc ops ~words:512)
      done)

let test_alloc_live_blocks_oracle () =
  let m, _, alloc = fixture () in
  let ops = direct_ops m in
  let a = Alloc.alloc alloc ops ~words:8 in
  let b = Alloc.alloc alloc ops ~words:16 in
  Alloc.free alloc ops a;
  let live = Alloc.live_blocks alloc in
  Helpers.check_bool "b live" true (List.mem_assoc b live);
  Helpers.check_bool "a not live" false (List.mem_assoc a live)

let test_alloc_abort_hook_restores_freelist () =
  let m, _, alloc = fixture () in
  (* Simulate an aborting transaction: collect abort hooks, run them. *)
  let aborts = ref [] in
  let ops =
    {
      Alloc.txr = m.Machine.raw_read;
      txw = (fun _ _ -> ()) (* aborted tx: writes never land *);
      on_commit = (fun _ -> ());
      on_abort = (fun hook -> aborts := hook :: !aborts);
    }
  in
  let a = Alloc.alloc alloc ops ~words:8 in
  List.iter (fun hook -> hook ()) !aborts;
  (* The block must be available again. *)
  let ops' = direct_ops m in
  let b = Alloc.alloc alloc ops' ~words:8 in
  Helpers.check_int "aborted allocation recycled" a b

let test_alloc_recover_rebuilds_freelists () =
  let m, reg, alloc = fixture () in
  let ops = direct_ops m in
  let a = Alloc.alloc alloc ops ~words:8 in
  let b = Alloc.alloc alloc ops ~words:8 in
  Alloc.free alloc ops a;
  (* "Crash": rebuild allocator state from headers alone. *)
  let alloc' = Alloc.recover reg in
  let live = Alloc.live_blocks alloc' in
  Helpers.check_bool "b still live after recovery" true (List.mem_assoc b live);
  Helpers.check_bool "a free after recovery" false (List.mem_assoc a live);
  (* Freed block is reusable post-recovery (recovered lists land on tid 0). *)
  let c = Alloc.alloc alloc' ops ~words:8 in
  Helpers.check_int "recovered free block reused" a c

let prop_alloc_free_stress =
  Helpers.qtest ~count:30 "allocator stress keeps blocks disjoint"
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 1 96))
    (fun sizes ->
      let m, _, alloc = fixture () in
      let ops = direct_ops m in
      let rng = Repro_util.Rng.create 11 in
      let live = Hashtbl.create 64 in
      List.iter
        (fun words ->
          if Repro_util.Rng.chance rng 0.3 && Hashtbl.length live > 0 then begin
            (* free a random live block *)
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
            let victim = List.nth keys (Repro_util.Rng.int rng (List.length keys)) in
            Alloc.free alloc ops victim;
            Hashtbl.remove live victim
          end
          else begin
            let a = Alloc.alloc alloc ops ~words in
            Hashtbl.replace live a words
          end)
        sizes;
      (* No two live blocks overlap: check via the header-scan oracle. *)
      let blocks = List.sort compare (Alloc.live_blocks alloc) in
      let rec disjoint = function
        | (a, wa) :: ((b, _) :: _ as rest) -> a + wa <= b - 1 && disjoint rest
        | _ -> true
      in
      disjoint blocks
      && Hashtbl.fold (fun k _ ok -> ok && List.mem_assoc k blocks) live true)

(* ---------- integrity checker ---------- *)

let test_check_clean_region () =
  let m, reg, alloc = fixture () in
  let ops = direct_ops m in
  let a = Alloc.alloc alloc ops ~words:8 in
  let b = Alloc.alloc alloc ops ~words:16 in
  ignore b;
  Alloc.free alloc ops a;
  let r = Check.run reg in
  Helpers.check_bool "clean" true (Check.is_clean r);
  Helpers.check_int "one live block" 1 r.Check.live_blocks;
  Helpers.check_int "one free block" 1 r.Check.free_blocks;
  Helpers.check_int "no leaks" 0 r.Check.leaked_arenas

let test_check_flags_bad_root () =
  let m, reg, _ = fixture () in
  m.Machine.raw_write (8 + 3) 7 (* root slot 3 -> header area *);
  let r = Check.run reg in
  Helpers.check_bool "corruption flagged" false (Check.is_clean r)

let test_check_counts_match_live_blocks () =
  let m, reg, alloc = fixture () in
  let ops = direct_ops m in
  for i = 1 to 20 do
    ignore (Alloc.alloc alloc ops ~words:(1 + (i mod 5)))
  done;
  let r = Check.run reg in
  Helpers.check_int "agrees with the allocator oracle"
    (List.length (Alloc.live_blocks alloc))
    r.Check.live_blocks

let test_check_after_simulated_crash () =
  (* End-to-end: crash a PTM workload, reboot, fsck the raw region
     BEFORE recovery (active logs reported, no corruption), then after
     recovery (still clean). *)
  let sim, m = Helpers.sim_machine ~heap_words:(1 lsl 16) () in
  let ptm = Pstm.Ptm.create ~max_threads:8 ~log_words_per_thread:1024 m in
  let base =
    Pstm.Ptm.atomic ptm (fun tx ->
        let a = Pstm.Ptm.alloc tx 4 in
        for i = 0 to 3 do
          Pstm.Ptm.write tx (a + i) 0
        done;
        a)
  in
  Pstm.Ptm.root_set ptm 0 base;
  Memsim.Sim.persist_all sim;
  Helpers.run_workers sim 4 ~crash_at:100_000 (fun _ ->
      for _ = 1 to 5_000 do
        Pstm.Ptm.atomic ptm (fun tx ->
            for i = 0 to 3 do
              Pstm.Ptm.write tx (base + i) (Pstm.Ptm.read tx (base + i) + 1)
            done)
      done);
  let sim' = Memsim.Sim.reboot sim in
  let m' = Memsim.Sim.machine sim' in
  let reg' = Region.attach m' in
  let before = Check.run reg' in
  Helpers.check_bool "no corruption right after crash" true (Check.is_clean before);
  ignore (Pstm.Ptm.recover m');
  let after = Check.run reg' in
  Helpers.check_bool "no corruption after recovery" true (Check.is_clean after);
  Helpers.check_bool "no pending logs after recovery" true
    (List.for_all
       (fun f -> f.Check.severity <> Check.Info)
       after.Check.findings)

let suite =
  [
    Alcotest.test_case "region: layout disjoint" `Quick test_region_layout_disjoint;
    Alcotest.test_case "region: per-thread logs" `Quick test_region_log_areas_disjoint;
    Alcotest.test_case "region: roots roundtrip" `Quick test_region_roots_roundtrip;
    Alcotest.test_case "region: attach" `Quick test_region_attach_preserves_layout;
    Alcotest.test_case "region: attach validates" `Quick test_region_attach_rejects_garbage;
    Alcotest.test_case "alloc: disjoint blocks" `Quick test_alloc_returns_disjoint_blocks;
    Alcotest.test_case "alloc: free/reuse" `Quick test_alloc_free_reuses;
    Alcotest.test_case "alloc: size classes" `Quick test_alloc_size_class_rounding;
    Alcotest.test_case "alloc: rejects bad sizes" `Quick test_alloc_rejects_bad_sizes;
    Alcotest.test_case "alloc: large objects" `Quick test_alloc_large_objects;
    Alcotest.test_case "alloc: out of memory" `Quick test_alloc_out_of_memory;
    Alcotest.test_case "alloc: live-blocks oracle" `Quick test_alloc_live_blocks_oracle;
    Alcotest.test_case "alloc: abort recycles" `Quick test_alloc_abort_hook_restores_freelist;
    Alcotest.test_case "alloc: crash recovery" `Quick test_alloc_recover_rebuilds_freelists;
    prop_alloc_free_stress;
    Alcotest.test_case "check: clean region" `Quick test_check_clean_region;
    Alcotest.test_case "check: bad root flagged" `Quick test_check_flags_bad_root;
    Alcotest.test_case "check: agrees with oracle" `Quick test_check_counts_match_live_blocks;
    Alcotest.test_case "check: crash then recover" `Quick test_check_after_simulated_crash;
  ]
