(* Telemetry subsystem: zero-perturbation, determinism, phase
   accounting, and the fence-cost story the profiler is meant to show. *)

module Driver = Workloads.Driver
module Profile = Pstm.Profile
module Config = Memsim.Config

let duration_ns = 300_000
let threads = 4

let run ?telemetry ?coalesce ~model ~algorithm () =
  Driver.run ~duration_ns ?telemetry ?coalesce ~model ~algorithm ~threads Workloads.Bank.spec

(* Sampler off: no monitor thread, so the interleaving must match an
   uninstrumented run exactly. *)
let passive = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 }

let capture (r : Driver.result) =
  match r.Driver.telemetry with
  | Some cap -> cap
  | None -> Alcotest.fail "run started with ?telemetry returned no capture"

let meta (r : Driver.result) = Driver.run_meta r ~seed:Driver.default_seed ~duration_ns

let test_disabled_identical () =
  (* Attaching the profiler + machine trace (no sampler) leaves every
     result field bit-identical to a plain run. *)
  let model = Config.optane_adr and algorithm = Pstm.Ptm.Undo in
  let plain = run ~model ~algorithm () in
  let instr = run ~telemetry:passive ~model ~algorithm () in
  Helpers.check_int "elapsed_ns" plain.Driver.elapsed_ns instr.Driver.elapsed_ns;
  Helpers.check_int "commits" plain.Driver.commits instr.Driver.commits;
  Helpers.check_int "aborts" plain.Driver.aborts instr.Driver.aborts;
  Helpers.check_int "max_log_lines" plain.Driver.max_log_lines instr.Driver.max_log_lines;
  Alcotest.(check (float 0.0)) "txs_per_sec" plain.Driver.txs_per_sec instr.Driver.txs_per_sec;
  Helpers.check_bool "sim stats identical" true (plain.Driver.sim = instr.Driver.sim)

let test_exports_deterministic () =
  (* Full telemetry (sampler on) twice: byte-identical artifacts. *)
  let model = Config.optane_adr and algorithm = Pstm.Ptm.Redo in
  let go () =
    let r = run ~telemetry:Telemetry.default_config ~model ~algorithm () in
    let cap = capture r in
    ( Telemetry.profile_jsonl (meta r) cap,
      Telemetry.series_csv cap,
      Telemetry.chrome_trace (meta r) cap )
  in
  let j1, c1, t1 = go () in
  let j2, c2, t2 = go () in
  Alcotest.(check string) "profile.jsonl" j1 j2;
  Alcotest.(check string) "series.csv" c1 c2;
  Alcotest.(check string) "trace.json" t1 t2

let test_phase_sum_to_total () =
  (* Accounting invariant: per thread, phase ns partition in-transaction
     time — they sum to txn_ns exactly, on both flush disciplines (the
     Coalesce phase must not double-count against Clwb_issue). *)
  List.iter
    (fun (algorithm, coalesce) ->
      let r = run ~telemetry:passive ~coalesce ~model:Config.optane_adr ~algorithm () in
      let p = Telemetry.profile (capture r) in
      List.iter
        (fun tid ->
          let txn = Profile.txn_ns p ~tid in
          Helpers.check_bool "thread ran transactions" true (txn > 0);
          Helpers.check_int
            (Printf.sprintf "tid %d phase sum = txn_ns (coalesce %b)" tid coalesce)
            txn
            (Profile.total_phase_ns p ~tid))
        (Profile.tids p))
    [ (Pstm.Ptm.Redo, true); (Pstm.Ptm.Undo, true); (Pstm.Ptm.Redo, false);
      (Pstm.Ptm.Undo, false) ]

let fence_waits_per_commit algorithm =
  let r = run ~telemetry:passive ~model:Config.optane_adr ~algorithm () in
  let p = Telemetry.profile (capture r) in
  let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
  let fences = sum (fun ~tid -> Profile.phase_count p ~tid Profile.Fence_wait) in
  let commits = sum (Profile.commits p) in
  Helpers.check_bool "commits > 0" true (commits > 0);
  float_of_int fences /. float_of_int commits

let test_undo_fences_exceed_redo () =
  (* The paper's fence-cost asymmetry: undo orders every in-place write
     with a flush+fence, redo pays O(1) fences at commit.  The profiler
     must make that visible on the bank workload under ADR. *)
  let undo = fence_waits_per_commit Pstm.Ptm.Undo in
  let redo = fence_waits_per_commit Pstm.Ptm.Redo in
  Helpers.check_bool
    (Printf.sprintf "undo fence-waits/commit (%.2f) > redo (%.2f)" undo redo)
    true (undo > redo)

let test_eadr_no_flush_phases () =
  (* eADR: the cache hierarchy is in the persistence domain, so the PTM
     issues no clwb and no ordering fence — those phases must be empty
     and no flushes/fences may be attributed anywhere. *)
  List.iter
    (fun algorithm ->
      let r = run ~telemetry:passive ~model:Config.optane_eadr ~algorithm () in
      let p = Telemetry.profile (capture r) in
      let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
      Helpers.check_int "clwb-issue count" 0
        (sum (fun ~tid -> Profile.phase_count p ~tid Profile.Clwb_issue));
      Helpers.check_int "fence-wait count" 0
        (sum (fun ~tid -> Profile.phase_count p ~tid Profile.Fence_wait));
      Helpers.check_int "wpq-stall count" 0
        (sum (fun ~tid -> Profile.phase_count p ~tid Profile.Wpq_stall));
      List.iter
        (fun phase ->
          Helpers.check_int
            (Printf.sprintf "%s fences" (Profile.phase_name phase))
            0
            (sum (fun ~tid -> Profile.phase_fences p ~tid phase));
          Helpers.check_int
            (Printf.sprintf "%s flushes" (Profile.phase_name phase))
            0
            (sum (fun ~tid -> Profile.phase_flushes p ~tid phase)))
        Profile.all_phases)
    [ Pstm.Ptm.Redo; Pstm.Ptm.Undo ]

(* ---------- flush coalescing, as the profiler reports it ---------- *)

let economy ?coalesce ~model algorithm =
  let r = run ~telemetry:passive ?coalesce ~model ~algorithm () in
  let p = Telemetry.profile (capture r) in
  let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
  let over metric =
    sum (fun ~tid -> List.fold_left (fun acc ph -> acc + metric p ~tid ph) 0 Profile.all_phases)
  in
  let commits = sum (Profile.commits p) in
  Helpers.check_bool "commits > 0" true (commits > 0);
  let per n = float_of_int n /. float_of_int commits in
  (per (over Profile.phase_fences), per (over Profile.phase_flushes),
   sum (Profile.fences_saved p), sum (Profile.flushes_saved p), r)

let test_coalescing_drops_fences_adr () =
  (* The acceptance numbers: the 2-write bank transfer under ADR with
     redo logging must spend strictly fewer fences and clwbs per commit
     coalesced than naive, and the savings ledger must agree. *)
  let fences_c, clwbs_c, fsaved_c, csaved_c, _ =
    economy ~coalesce:true ~model:Config.optane_adr Pstm.Ptm.Redo
  in
  let fences_n, clwbs_n, fsaved_n, _, _ =
    economy ~coalesce:false ~model:Config.optane_adr Pstm.Ptm.Redo
  in
  Helpers.check_bool
    (Printf.sprintf "fences/commit coalesced (%.2f) < naive (%.2f)" fences_c fences_n)
    true (fences_c < fences_n);
  Helpers.check_bool
    (Printf.sprintf "clwbs/commit coalesced (%.2f) < naive (%.2f)" clwbs_c clwbs_n)
    true (clwbs_c < clwbs_n);
  Helpers.check_bool "ledger reports fences saved" true (fsaved_c > 0);
  Helpers.check_bool "ledger reports clwbs saved" true (csaved_c > 0);
  Helpers.check_int "naive run saves nothing" 0 fsaved_n

let test_coalescing_noop_under_eadr () =
  (* eADR issues no flushes on either discipline, so coalescing must
     change nothing: same schedule, same commits, empty ledger. *)
  let fences_c, _, fsaved_c, csaved_c, rc =
    economy ~coalesce:true ~model:Config.optane_eadr Pstm.Ptm.Redo
  in
  let fences_n, _, fsaved_n, _, rn =
    economy ~coalesce:false ~model:Config.optane_eadr Pstm.Ptm.Redo
  in
  Alcotest.(check (float 0.0)) "fences/commit both zero" fences_c fences_n;
  Alcotest.(check (float 0.0)) "fences/commit is zero" 0.0 fences_c;
  Helpers.check_int "coalesced ledger empty" 0 (fsaved_c + csaved_c);
  Helpers.check_int "naive ledger empty" 0 fsaved_n;
  Helpers.check_int "commits identical" rc.Driver.commits rn.Driver.commits;
  Helpers.check_int "elapsed identical" rc.Driver.elapsed_ns rn.Driver.elapsed_ns;
  Helpers.check_bool "sim stats identical" true (rc.Driver.sim = rn.Driver.sim)

let test_coalesce_phase_attribution () =
  (* The batched sweep must be charged to the Coalesce phase — present
     on the coalesced ADR run, absent on the naive one. *)
  let count ~coalesce =
    let r = run ~telemetry:passive ~coalesce ~model:Config.optane_adr ~algorithm:Pstm.Ptm.Redo () in
    let p = Telemetry.profile (capture r) in
    List.fold_left
      (fun acc tid -> acc + Profile.phase_count p ~tid Profile.Coalesce)
      0 (Profile.tids p)
  in
  Helpers.check_bool "coalesced run records Coalesce phase" true (count ~coalesce:true > 0);
  Helpers.check_int "naive run records no Coalesce phase" 0 (count ~coalesce:false)

let test_series_sampling () =
  let r =
    run ~telemetry:Telemetry.default_config ~model:Config.optane_adr ~algorithm:Pstm.Ptm.Redo ()
  in
  let s = Telemetry.series (capture r) in
  let samples = Telemetry.Series.samples s in
  Helpers.check_bool "samples recorded" true (List.length samples >= 3);
  let rec check_monotone last = function
    | [] -> ()
    | (x : Telemetry.Series.sample) :: rest ->
      Helpers.check_bool "at_ns nondecreasing" true (x.Telemetry.Series.at_ns >= last);
      Helpers.check_bool "commits nondecreasing" true (x.Telemetry.Series.commits >= 0);
      check_monotone x.Telemetry.Series.at_ns rest
  in
  check_monotone 0 samples;
  (* CSV: fixed column count on every row. *)
  let csv = Telemetry.Series.to_csv s in
  let cols line = List.length (String.split_on_char ',' line) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Helpers.check_bool "csv has data rows" true (List.length lines >= 2);
  List.iter
    (fun line -> Helpers.check_int "csv columns" (cols Telemetry.Series.csv_header) (cols line))
    lines

let suite =
  [
    Alcotest.test_case "telemetry off-path identical" `Quick test_disabled_identical;
    Alcotest.test_case "exports byte-deterministic" `Quick test_exports_deterministic;
    Alcotest.test_case "phase ns sum to txn time" `Quick test_phase_sum_to_total;
    Alcotest.test_case "undo fences exceed redo (ADR)" `Quick test_undo_fences_exceed_redo;
    Alcotest.test_case "eADR: no flush/fence phases" `Quick test_eadr_no_flush_phases;
    Alcotest.test_case "coalescing drops fences (ADR)" `Quick test_coalescing_drops_fences_adr;
    Alcotest.test_case "coalescing is a no-op under eADR" `Quick test_coalescing_noop_under_eadr;
    Alcotest.test_case "coalesce phase attribution" `Quick test_coalesce_phase_attribution;
    Alcotest.test_case "series sampling monotone" `Quick test_series_sampling;
  ]
