(* Telemetry subsystem: zero-perturbation, determinism, phase
   accounting, and the fence-cost story the profiler is meant to show. *)

module Driver = Workloads.Driver
module Profile = Pstm.Profile
module Config = Memsim.Config

let duration_ns = 300_000
let threads = 4

let run ?telemetry ?coalesce ~model ~algorithm () =
  Driver.run ~duration_ns ?telemetry ?coalesce ~model ~algorithm ~threads Workloads.Bank.spec

(* Sampler off: no monitor thread, so the interleaving must match an
   uninstrumented run exactly. *)
let passive = { Telemetry.default_config with Telemetry.sample_interval_ns = 0 }

let capture (r : Driver.result) =
  match r.Driver.telemetry with
  | Some cap -> cap
  | None -> Alcotest.fail "run started with ?telemetry returned no capture"

let meta (r : Driver.result) = Driver.run_meta r ~seed:Driver.default_seed ~duration_ns

let test_disabled_identical () =
  (* Attaching the profiler + machine trace (no sampler) leaves every
     result field bit-identical to a plain run. *)
  let model = Config.optane_adr and algorithm = Pstm.Ptm.Undo in
  let plain = run ~model ~algorithm () in
  let instr = run ~telemetry:passive ~model ~algorithm () in
  Helpers.check_int "elapsed_ns" plain.Driver.elapsed_ns instr.Driver.elapsed_ns;
  Helpers.check_int "commits" plain.Driver.commits instr.Driver.commits;
  Helpers.check_int "aborts" plain.Driver.aborts instr.Driver.aborts;
  Helpers.check_int "max_log_lines" plain.Driver.max_log_lines instr.Driver.max_log_lines;
  Alcotest.(check (float 0.0)) "txs_per_sec" plain.Driver.txs_per_sec instr.Driver.txs_per_sec;
  Helpers.check_bool "sim stats identical" true (plain.Driver.sim = instr.Driver.sim)

let test_exports_deterministic () =
  (* Full telemetry (sampler on) twice: byte-identical artifacts. *)
  let model = Config.optane_adr and algorithm = Pstm.Ptm.Redo in
  let go () =
    let r = run ~telemetry:Telemetry.default_config ~model ~algorithm () in
    let cap = capture r in
    ( Telemetry.profile_jsonl (meta r) cap,
      Telemetry.series_csv cap,
      Telemetry.chrome_trace (meta r) cap )
  in
  let j1, c1, t1 = go () in
  let j2, c2, t2 = go () in
  Alcotest.(check string) "profile.jsonl" j1 j2;
  Alcotest.(check string) "series.csv" c1 c2;
  Alcotest.(check string) "trace.json" t1 t2

let test_phase_sum_to_total () =
  (* Accounting invariant: per thread, phase ns partition in-transaction
     time — they sum to txn_ns exactly, on both flush disciplines (the
     Coalesce phase must not double-count against Clwb_issue). *)
  List.iter
    (fun (algorithm, coalesce) ->
      let r = run ~telemetry:passive ~coalesce ~model:Config.optane_adr ~algorithm () in
      let p = Telemetry.profile (capture r) in
      List.iter
        (fun tid ->
          let txn = Profile.txn_ns p ~tid in
          Helpers.check_bool "thread ran transactions" true (txn > 0);
          Helpers.check_int
            (Printf.sprintf "tid %d phase sum = txn_ns (coalesce %b)" tid coalesce)
            txn
            (Profile.total_phase_ns p ~tid))
        (Profile.tids p))
    [ (Pstm.Ptm.Redo, true); (Pstm.Ptm.Undo, true); (Pstm.Ptm.Redo, false);
      (Pstm.Ptm.Undo, false) ]

let fence_waits_per_commit algorithm =
  let r = run ~telemetry:passive ~model:Config.optane_adr ~algorithm () in
  let p = Telemetry.profile (capture r) in
  let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
  let fences = sum (fun ~tid -> Profile.phase_count p ~tid Profile.Fence_wait) in
  let commits = sum (Profile.commits p) in
  Helpers.check_bool "commits > 0" true (commits > 0);
  float_of_int fences /. float_of_int commits

let test_undo_fences_exceed_redo () =
  (* The paper's fence-cost asymmetry: undo orders every in-place write
     with a flush+fence, redo pays O(1) fences at commit.  The profiler
     must make that visible on the bank workload under ADR. *)
  let undo = fence_waits_per_commit Pstm.Ptm.Undo in
  let redo = fence_waits_per_commit Pstm.Ptm.Redo in
  Helpers.check_bool
    (Printf.sprintf "undo fence-waits/commit (%.2f) > redo (%.2f)" undo redo)
    true (undo > redo)

let test_eadr_no_flush_phases () =
  (* eADR: the cache hierarchy is in the persistence domain, so the PTM
     issues no clwb and no ordering fence — those phases must be empty
     and no flushes/fences may be attributed anywhere. *)
  List.iter
    (fun algorithm ->
      let r = run ~telemetry:passive ~model:Config.optane_eadr ~algorithm () in
      let p = Telemetry.profile (capture r) in
      let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
      Helpers.check_int "clwb-issue count" 0
        (sum (fun ~tid -> Profile.phase_count p ~tid Profile.Clwb_issue));
      Helpers.check_int "fence-wait count" 0
        (sum (fun ~tid -> Profile.phase_count p ~tid Profile.Fence_wait));
      Helpers.check_int "wpq-stall count" 0
        (sum (fun ~tid -> Profile.phase_count p ~tid Profile.Wpq_stall));
      List.iter
        (fun phase ->
          Helpers.check_int
            (Printf.sprintf "%s fences" (Profile.phase_name phase))
            0
            (sum (fun ~tid -> Profile.phase_fences p ~tid phase));
          Helpers.check_int
            (Printf.sprintf "%s flushes" (Profile.phase_name phase))
            0
            (sum (fun ~tid -> Profile.phase_flushes p ~tid phase)))
        Profile.all_phases)
    [ Pstm.Ptm.Redo; Pstm.Ptm.Undo ]

(* ---------- flush coalescing, as the profiler reports it ---------- *)

let economy ?coalesce ~model algorithm =
  let r = run ~telemetry:passive ?coalesce ~model ~algorithm () in
  let p = Telemetry.profile (capture r) in
  let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
  let over metric =
    sum (fun ~tid -> List.fold_left (fun acc ph -> acc + metric p ~tid ph) 0 Profile.all_phases)
  in
  let commits = sum (Profile.commits p) in
  Helpers.check_bool "commits > 0" true (commits > 0);
  let per n = float_of_int n /. float_of_int commits in
  (per (over Profile.phase_fences), per (over Profile.phase_flushes),
   sum (Profile.fences_saved p), sum (Profile.flushes_saved p), r)

let test_coalescing_drops_fences_adr () =
  (* The acceptance numbers: the 2-write bank transfer under ADR with
     redo logging must spend strictly fewer fences and clwbs per commit
     coalesced than naive, and the savings ledger must agree. *)
  let fences_c, clwbs_c, fsaved_c, csaved_c, _ =
    economy ~coalesce:true ~model:Config.optane_adr Pstm.Ptm.Redo
  in
  let fences_n, clwbs_n, fsaved_n, _, _ =
    economy ~coalesce:false ~model:Config.optane_adr Pstm.Ptm.Redo
  in
  Helpers.check_bool
    (Printf.sprintf "fences/commit coalesced (%.2f) < naive (%.2f)" fences_c fences_n)
    true (fences_c < fences_n);
  Helpers.check_bool
    (Printf.sprintf "clwbs/commit coalesced (%.2f) < naive (%.2f)" clwbs_c clwbs_n)
    true (clwbs_c < clwbs_n);
  Helpers.check_bool "ledger reports fences saved" true (fsaved_c > 0);
  Helpers.check_bool "ledger reports clwbs saved" true (csaved_c > 0);
  Helpers.check_int "naive run saves nothing" 0 fsaved_n

let test_coalescing_noop_under_eadr () =
  (* eADR issues no flushes on either discipline, so coalescing must
     change nothing: same schedule, same commits, empty ledger. *)
  let fences_c, _, fsaved_c, csaved_c, rc =
    economy ~coalesce:true ~model:Config.optane_eadr Pstm.Ptm.Redo
  in
  let fences_n, _, fsaved_n, _, rn =
    economy ~coalesce:false ~model:Config.optane_eadr Pstm.Ptm.Redo
  in
  Alcotest.(check (float 0.0)) "fences/commit both zero" fences_c fences_n;
  Alcotest.(check (float 0.0)) "fences/commit is zero" 0.0 fences_c;
  Helpers.check_int "coalesced ledger empty" 0 (fsaved_c + csaved_c);
  Helpers.check_int "naive ledger empty" 0 fsaved_n;
  Helpers.check_int "commits identical" rc.Driver.commits rn.Driver.commits;
  Helpers.check_int "elapsed identical" rc.Driver.elapsed_ns rn.Driver.elapsed_ns;
  Helpers.check_bool "sim stats identical" true (rc.Driver.sim = rn.Driver.sim)

let test_coalesce_phase_attribution () =
  (* The batched sweep must be charged to the Coalesce phase — present
     on the coalesced ADR run, absent on the naive one. *)
  let count ~coalesce =
    let r = run ~telemetry:passive ~coalesce ~model:Config.optane_adr ~algorithm:Pstm.Ptm.Redo () in
    let p = Telemetry.profile (capture r) in
    List.fold_left
      (fun acc tid -> acc + Profile.phase_count p ~tid Profile.Coalesce)
      0 (Profile.tids p)
  in
  Helpers.check_bool "coalesced run records Coalesce phase" true (count ~coalesce:true > 0);
  Helpers.check_int "naive run records no Coalesce phase" 0 (count ~coalesce:false)

let test_series_sampling () =
  let r =
    run ~telemetry:Telemetry.default_config ~model:Config.optane_adr ~algorithm:Pstm.Ptm.Redo ()
  in
  let s = Telemetry.series (capture r) in
  let samples = Telemetry.Series.samples s in
  Helpers.check_bool "samples recorded" true (List.length samples >= 3);
  let rec check_monotone last = function
    | [] -> ()
    | (x : Telemetry.Series.sample) :: rest ->
      Helpers.check_bool "at_ns nondecreasing" true (x.Telemetry.Series.at_ns >= last);
      Helpers.check_bool "commits nondecreasing" true (x.Telemetry.Series.commits >= 0);
      check_monotone x.Telemetry.Series.at_ns rest
  in
  check_monotone 0 samples;
  (* CSV: fixed column count on every row. *)
  let csv = Telemetry.Series.to_csv s in
  let cols line = List.length (String.split_on_char ',' line) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Helpers.check_bool "csv has data rows" true (List.length lines >= 2);
  List.iter
    (fun line -> Helpers.check_int "csv columns" (cols Telemetry.Series.csv_header) (cols line))
    lines

(* ---------- request tracing ---------- *)

module Trace = Telemetry.Trace
module Registry = Telemetry.Registry

(* One request (trace 7, 100..400ns) whose shard spans partition its
   window: wait 100..150, commit 150..400 with one txn slice under it.
   Built the way the service does it — root in the global store, the
   rest in a shard store merged in afterwards. *)
let build_request_trace () =
  let g = Trace.create () in
  let root =
    Trace.span g ~trace:7 ~parent:Trace.root_parent ~kind:"request" ~tid:0 ~start_ns:100
      ~stop_ns:400
  in
  let sh = Trace.create () in
  ignore
    (Trace.span sh ~trace:7 ~parent:Trace.root_parent ~kind:"queue-wait" ~tid:0 ~start_ns:100
       ~stop_ns:150);
  let commit =
    Trace.span sh ~trace:7 ~parent:Trace.root_parent ~kind:"commit" ~tid:0 ~start_ns:150
      ~stop_ns:400
  in
  ignore (Trace.span sh ~trace:7 ~parent:commit ~kind:"txn" ~tid:0 ~start_ns:160 ~stop_ns:200);
  Trace.merge_into ~src:sh ~dst:g ~root_for:(fun t ->
      if t = 7 then root else Trace.root_parent);
  (g, root)

let test_trace_merge_rebases_parents () =
  let g, root = build_request_trace () in
  Helpers.check_int "span count" 4 (Trace.length g);
  (* root_parent spans from the shard store now hang off the root ... *)
  let wait = Trace.get g (root + 1) in
  Helpers.check_int "wait reparented to root" root wait.Trace.s_parent;
  Alcotest.(check string) "wait kind" "queue-wait" wait.Trace.s_kind;
  (* ... and in-store parent ids were offset into the merged id space. *)
  let slice = Trace.get g (root + 3) in
  Helpers.check_int "slice parent rebased" (root + 2) slice.Trace.s_parent;
  let r = Trace.get g root in
  Helpers.check_int "root keeps root_parent" Trace.root_parent r.Trace.s_parent

let test_trace_accounting_partitions () =
  (* Spans partition the request window, so exclusive times must sum
     exactly to end-to-end latency: root 0 + wait 50 + commit (250-40)
     + txn 40 = 300. *)
  let g, _ = build_request_trace () in
  (match Trace.accounting g with
  | [ (trace, latency, attributed) ] ->
    Helpers.check_int "trace id" 7 trace;
    Helpers.check_int "latency" 300 latency;
    Helpers.check_int "attributed = latency" latency attributed
  | rows -> Alcotest.failf "expected one accounting row, got %d" (List.length rows));
  let h = Trace.latency_hist g in
  Helpers.check_int "one root latency" 1 (Repro_util.Histogram.count h);
  Helpers.check_int "latency max" 300 (Repro_util.Histogram.max_value h)

let test_trace_blame_ranks_exclusive_time () =
  let g, _ = build_request_trace () in
  let b = Trace.blame g ~lo_pct:0.0 ~hi_pct:100.0 in
  Helpers.check_int "band requests" 1 b.Trace.brequests;
  Helpers.check_int "band latency total" 300 b.Trace.btotal_latency_ns;
  Helpers.check_int "no slack on a partition" 0 b.Trace.bslack_ns;
  (match b.Trace.brows with
  | top :: _ ->
    Alcotest.(check string) "commit dominates the band" "commit" top.Trace.bkind;
    Helpers.check_int "commit exclusive ns" 210 top.Trace.bexclusive_ns
  | [] -> Alcotest.fail "blame rows empty");
  let total_excl = List.fold_left (fun a r -> a + r.Trace.bexclusive_ns) 0 b.Trace.brows in
  Helpers.check_int "rows sum to attributed" b.Trace.battributed_ns total_excl

let test_trace_digest_discriminates () =
  let a, _ = build_request_trace () in
  let b, _ = build_request_trace () in
  Alcotest.(check string) "identical builds, identical digests" (Trace.digest a) (Trace.digest b);
  ignore (Trace.span b ~trace:8 ~parent:Trace.root_parent ~kind:"request" ~tid:1 ~start_ns:0 ~stop_ns:1);
  Helpers.check_bool "extra span changes the digest" true (Trace.digest a <> Trace.digest b);
  (* Perfetto export is well-formed enough to parse as JSON. *)
  match Workloads.Bench_json.parse (Trace.chrome_trace a) with
  | Workloads.Bench_json.Obj _ -> ()
  | _ -> Alcotest.fail "chrome_trace is not a JSON object"

(* ---------- metrics registry ---------- *)

let build_registry () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"requests served" "kvserve_requests" in
  Registry.inc c 3;
  Registry.inc c 2;
  let g = Registry.gauge r ~labels:[ ("shard", "1") ] "ptm_commits" in
  Registry.set_int g 42;
  let h = Registry.histogram r ~labels:[ ("op", "get") ] "kv_latency_ns" in
  List.iter (Registry.observe h) [ 10; 20; 30 ];
  r

let test_registry_find_or_create () =
  let r = build_registry () in
  (* Same (name, labels) comes back as the same cell. *)
  let c = Registry.counter r "kvserve_requests" in
  Registry.inc c 5;
  Alcotest.(check (float 0.0)) "shared cell" 10.0 (Registry.value c);
  (* Different labels are a different cell. *)
  let g2 = Registry.gauge r ~labels:[ ("shard", "2") ] "ptm_commits" in
  Registry.set_int g2 7;
  Helpers.check_int "metric count" 4 (List.length (Registry.metrics r))

let test_registry_exports_deterministic () =
  let a = build_registry () and b = build_registry () in
  Alcotest.(check string) "prometheus" (Registry.to_prometheus a) (Registry.to_prometheus b);
  Alcotest.(check string) "jsonl" (Registry.jsonl a) (Registry.jsonl b);
  let pairs = Registry.stats_pairs a in
  Alcotest.(check (list (pair string string))) "stats pairs" pairs (Registry.stats_pairs b);
  (* Label values join into the flat stats name; histograms expose
     their summary statistics. *)
  Helpers.check_bool "labeled gauge name" true (List.mem_assoc "ptm_commits.1" pairs);
  Alcotest.(check string) "gauge value" "42" (List.assoc "ptm_commits.1" pairs);
  Helpers.check_bool "hist count pair" true (List.mem_assoc "kv_latency_ns.get.count" pairs);
  Alcotest.(check string) "hist count" "3" (List.assoc "kv_latency_ns.get.count" pairs)

let test_registry_prometheus_shape () =
  let text = Registry.to_prometheus (build_registry ()) in
  let has needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Helpers.check_bool "HELP line" true (has "# HELP kvserve_requests requests served");
  Helpers.check_bool "counter TYPE" true (has "# TYPE kvserve_requests counter");
  Helpers.check_bool "counter sample" true (has "kvserve_requests 5");
  Helpers.check_bool "labeled gauge sample" true (has "ptm_commits{shard=\"1\"} 42");
  Helpers.check_bool "summary quantile" true (has "quantile=\"0.99\"");
  Helpers.check_bool "summary count" true (has "kv_latency_ns_count{op=\"get\"} 3")

let suite =
  [
    Alcotest.test_case "telemetry off-path identical" `Quick test_disabled_identical;
    Alcotest.test_case "exports byte-deterministic" `Quick test_exports_deterministic;
    Alcotest.test_case "phase ns sum to txn time" `Quick test_phase_sum_to_total;
    Alcotest.test_case "undo fences exceed redo (ADR)" `Quick test_undo_fences_exceed_redo;
    Alcotest.test_case "eADR: no flush/fence phases" `Quick test_eadr_no_flush_phases;
    Alcotest.test_case "coalescing drops fences (ADR)" `Quick test_coalescing_drops_fences_adr;
    Alcotest.test_case "coalescing is a no-op under eADR" `Quick test_coalescing_noop_under_eadr;
    Alcotest.test_case "coalesce phase attribution" `Quick test_coalesce_phase_attribution;
    Alcotest.test_case "series sampling monotone" `Quick test_series_sampling;
    Alcotest.test_case "trace: merge rebases parents" `Quick test_trace_merge_rebases_parents;
    Alcotest.test_case "trace: accounting partitions" `Quick test_trace_accounting_partitions;
    Alcotest.test_case "trace: blame ranks exclusive time" `Quick
      test_trace_blame_ranks_exclusive_time;
    Alcotest.test_case "trace: digest discriminates" `Quick test_trace_digest_discriminates;
    Alcotest.test_case "registry: find-or-create" `Quick test_registry_find_or_create;
    Alcotest.test_case "registry: exports deterministic" `Quick
      test_registry_exports_deterministic;
    Alcotest.test_case "registry: prometheus shape" `Quick test_registry_prometheus_shape;
  ]
