open Memsim

(* ---------- scheduler ---------- *)

let test_sched_virtual_time_order () =
  let s = Sched.create () in
  let trace = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         Sched.wait s 10;
         trace := (`A, Sched.now s) :: !trace;
         Sched.wait s 20;
         trace := (`A, Sched.now s) :: !trace));
  ignore
    (Sched.spawn s (fun () ->
         Sched.wait s 15;
         trace := (`B, Sched.now s) :: !trace;
         Sched.wait s 25;
         trace := (`B, Sched.now s) :: !trace));
  Sched.run s;
  let times = List.rev_map snd !trace in
  Alcotest.(check (list int)) "events in time order" [ 10; 15; 30; 40 ] times

let test_sched_fifo_ties () =
  let s = Sched.create () in
  let order = ref [] in
  for i = 0 to 4 do
    ignore
      (Sched.spawn s (fun () ->
           Sched.wait s 5;
           order := i :: !order))
  done;
  Sched.run s;
  Alcotest.(check (list int)) "spawn order at equal times" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_sched_crash_kills () =
  let s = Sched.create () in
  let completed = ref 0 in
  let cleaned = ref 0 in
  for _ = 0 to 2 do
    ignore
      (Sched.spawn s (fun () ->
           Fun.protect
             ~finally:(fun () -> incr cleaned)
             (fun () ->
               for _ = 1 to 100 do
                 Sched.wait s 10
               done;
               incr completed)))
  done;
  Sched.run ~crash_at:500 s;
  Helpers.check_bool "crashed" true (Sched.crashed s);
  Helpers.check_int "no thread completed" 0 !completed;
  Helpers.check_int "protect cleanup ran in every thread" 3 !cleaned

let test_sched_wait_outside_thread_noop () =
  let s = Sched.create () in
  Sched.wait s 1000;
  Helpers.check_int "time does not advance outside threads" 0 (Sched.now s)

let test_sched_crash_time_bound () =
  let s = Sched.create () in
  ignore
    (Sched.spawn s (fun () ->
         for _ = 1 to 1000 do
           Sched.wait s 7
         done));
  Sched.run ~crash_at:100 s;
  Helpers.check_bool "final time within crash bound" true (Sched.now s <= 100)

(* ---------- bandwidth server ---------- *)

let test_server_sync_queueing () =
  let srv = Server.create ~service_ns:10 ~capacity:0 in
  let c1 = Server.acquire_sync srv ~now:0 ~latency_ns:100 in
  let c2 = Server.acquire_sync srv ~now:0 ~latency_ns:100 in
  let c3 = Server.acquire_sync srv ~now:0 ~latency_ns:100 in
  Helpers.check_int "first unqueued" 100 c1;
  Helpers.check_int "second queued by one service" 110 c2;
  Helpers.check_int "third queued by two services" 120 c3

let test_server_sync_idle_resets () =
  let srv = Server.create ~service_ns:10 ~capacity:0 in
  ignore (Server.acquire_sync srv ~now:0 ~latency_ns:100);
  let c = Server.acquire_sync srv ~now:1000 ~latency_ns:100 in
  Helpers.check_int "no queueing after idle gap" 1100 c

let test_server_async_backpressure () =
  let srv = Server.create ~service_ns:10 ~capacity:2 in
  let a1 = Server.enqueue_async srv ~now:0 in
  let a2 = Server.enqueue_async srv ~now:0 in
  let a3 = Server.enqueue_async srv ~now:0 in
  Helpers.check_int "a1 immediate" 0 a1.Server.ready;
  Helpers.check_int "a2 immediate" 0 a2.Server.ready;
  Helpers.check_bool "a3 stalls until a1 drains" true (a3.Server.ready >= a1.Server.completion);
  Helpers.check_bool "stall accounted" true (Server.stall_ns srv > 0)

let test_server_async_throughput_bound () =
  let srv = Server.create ~service_ns:10 ~capacity:4 in
  let last = ref 0 in
  for _ = 1 to 100 do
    let a = Server.enqueue_async srv ~now:0 in
    last := a.Server.completion
  done;
  Helpers.check_int "100 entries at 10ns service" 1000 !last

(* ---------- cache model ---------- *)

let test_cache_hit_after_install () =
  let c = Cache.create ~bytes:1024 ~ways:2 () in
  (match Cache.access c ~line:1 ~write:false with
  | Cache.Miss None -> ()
  | Cache.Miss (Some _) | Cache.Hit -> Alcotest.fail "expected cold miss");
  match Cache.access c ~line:1 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "expected hit"

let test_cache_dirty_eviction () =
  (* 2-way, line 64B: sets = 1024/128 = 8.  Lines 0, 8, 16 collide in set 0. *)
  let c = Cache.create ~bytes:1024 ~ways:2 () in
  ignore (Cache.access c ~line:0 ~write:true);
  ignore (Cache.access c ~line:8 ~write:false);
  match Cache.access c ~line:16 ~write:false with
  | Cache.Miss (Some { Cache.line = 0; dirty = true }) -> ()
  | Cache.Miss _ | Cache.Hit -> Alcotest.fail "expected dirty eviction of line 0"

let test_cache_lru_within_set () =
  let c = Cache.create ~bytes:1024 ~ways:2 () in
  ignore (Cache.access c ~line:0 ~write:false);
  ignore (Cache.access c ~line:8 ~write:false);
  ignore (Cache.access c ~line:0 ~write:false);
  (* 8 is now LRU *)
  (match Cache.access c ~line:16 ~write:false with
  | Cache.Miss (Some { Cache.line = 8; _ }) -> ()
  | Cache.Miss _ | Cache.Hit -> Alcotest.fail "expected eviction of line 8");
  match Cache.access c ~line:0 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "line 0 should have been retained"

let test_cache_clwb_keeps_line () =
  let c = Cache.create ~bytes:1024 ~ways:2 () in
  ignore (Cache.access c ~line:3 ~write:true);
  Helpers.check_bool "dirty before clwb" true (Cache.resident_dirty c ~line:3);
  Helpers.check_bool "clwb reports dirty" true (Cache.clean c ~line:3);
  Helpers.check_bool "clean after clwb" false (Cache.resident_dirty c ~line:3);
  (match Cache.access c ~line:3 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "clwb must retain the line");
  Helpers.check_bool "second clwb is a no-op" false (Cache.clean c ~line:3)

let test_cache_dirty_lines_listing () =
  let c = Cache.create ~bytes:1024 ~ways:2 () in
  ignore (Cache.access c ~line:1 ~write:true);
  ignore (Cache.access c ~line:2 ~write:false);
  ignore (Cache.access c ~line:3 ~write:true);
  let dirty = List.sort compare (Cache.dirty_lines c) in
  Alcotest.(check (list int)) "dirty lines" [ 1; 3 ] dirty

(* ---------- the simulated machine ---------- *)

let test_sim_load_store_roundtrip () =
  let sim, m = Helpers.sim_machine () in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 42;
         Helpers.check_int "read back" 42 (m.Machine.load 100)));
  Sim.run sim;
  Helpers.check_int "raw read agrees" 42 (m.Machine.raw_read 100)

let test_sim_nvm_slower_than_dram () =
  let run model =
    let sim, m = Helpers.sim_machine ~model () in
    ignore
      (Sim.spawn sim (fun () ->
           (* Strided cold loads: all L3 misses. *)
           for i = 0 to 255 do
             ignore (m.Machine.load (i * 64))
           done));
    Sim.run sim;
    Sim.now sim
  in
  let dram = run Config.dram_eadr and nvm = run Config.optane_eadr in
  Helpers.check_bool
    (Printf.sprintf "optane misses ~3x dram (dram=%d nvm=%d)" dram nvm)
    true
    (float_of_int nvm > 2.0 *. float_of_int dram)

let test_sim_clwb_fence_cost () =
  (* ADR with flushes+fences must be slower than the same program under
     eADR (no flushes) — the core Fig 3/4 mechanism. *)
  let run model =
    let sim, m = Helpers.sim_machine ~model () in
    ignore
      (Sim.spawn sim (fun () ->
           for i = 0 to 199 do
             m.Machine.store i (i * 3);
             if m.Machine.needs_flush then begin
               m.Machine.clwb i;
               if m.Machine.needs_fence then m.Machine.sfence ()
             end
           done));
    Sim.run sim;
    Sim.now sim
  in
  let adr = run Config.optane_adr and eadr = run Config.optane_eadr in
  Helpers.check_bool (Printf.sprintf "adr=%d > eadr=%d" adr eadr) true (adr > eadr)

let test_sim_nofence_between_adr_and_eadr () =
  let run model =
    let sim, m = Helpers.sim_machine ~model () in
    ignore
      (Sim.spawn sim (fun () ->
           for i = 0 to 199 do
             m.Machine.store i i;
             if m.Machine.needs_flush then m.Machine.clwb i;
             if m.Machine.needs_fence then m.Machine.sfence ()
           done));
    Sim.run sim;
    Sim.now sim
  in
  let adr = run Config.optane_adr in
  let nofence = run Config.optane_adr_nofence in
  let eadr = run Config.optane_eadr in
  Helpers.check_bool "nofence cheaper than adr" true (nofence < adr);
  Helpers.check_bool "nofence dearer than eadr" true (nofence > eadr)

let test_sim_crash_adr_loses_unflushed () =
  let sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 7;
         m.Machine.clwb 100;
         m.Machine.sfence ();
         m.Machine.store 200 9;
         (* store 200 never flushed; keep running until the crash *)
         for _ = 1 to 1000 do
           m.Machine.pause 100
         done));
  Sim.run ~crash_at:50_000 sim;
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  Helpers.check_int "flushed store survives" 7 (m'.Machine.raw_read 100);
  Helpers.check_int "unflushed store lost" 0 (m'.Machine.raw_read 200)

(* Under ADR, clwb only captures the line — durability arrives at WPQ
   service completion, and sfence is what waits for it.  A crash inside
   that window loses the flushed-but-unfenced line. *)
let test_sim_adr_clwb_completion_window () =
  let run crash_at =
    let cfg = Config.make ~nvm_channels:4 ~heap_words:(1 lsl 12) Config.optane_adr in
    let sim = Sim.create cfg in
    let m = Sim.machine sim in
    let trace = Sim.enable_trace sim in
    ignore
      (Sim.spawn sim (fun () ->
           m.Machine.store 100 7;
           m.Machine.clwb 100;
           for _ = 1 to 50 do
             m.Machine.pause 100
           done)
        : int);
    Sim.run ?crash_at sim;
    (sim, trace)
  in
  let _, trace = run None in
  let clwb_at =
    match
      Trace.find trace (fun e ->
          match e.Trace.kind with Trace.Clwb _ -> true | _ -> false)
    with
    | Some e -> e.Trace.at_ns
    | None -> Alcotest.fail "no clwb event in reference trace"
  in
  let sim, _ = run (Some (clwb_at + 1)) in
  Helpers.check_bool "crashed inside the window" true (Sim.crashed sim);
  let m' = Sim.machine (Sim.reboot sim) in
  Helpers.check_int "clwb'd line without fence is lost" 0 (m'.Machine.raw_read 100)

let test_sim_adr_fence_closes_window () =
  let run crash_at =
    let cfg = Config.make ~nvm_channels:4 ~heap_words:(1 lsl 12) Config.optane_adr in
    let sim = Sim.create cfg in
    let m = Sim.machine sim in
    let trace = Sim.enable_trace sim in
    ignore
      (Sim.spawn sim (fun () ->
           m.Machine.store 100 7;
           m.Machine.clwb 100;
           m.Machine.sfence ();
           (* marker store: program order puts it after the fence wait *)
           m.Machine.store 200 9;
           for _ = 1 to 50 do
             m.Machine.pause 100
           done)
        : int);
    Sim.run ?crash_at sim;
    (sim, trace)
  in
  let _, trace = run None in
  let marker_at =
    match
      Trace.find trace (fun e ->
          match e.Trace.kind with Trace.Store a -> a = 200 | _ -> false)
    with
    | Some e -> e.Trace.at_ns
    | None -> Alcotest.fail "no marker store in reference trace"
  in
  let sim, _ = run (Some marker_at) in
  Helpers.check_bool "crashed after the fence" true (Sim.crashed sim);
  let m' = Sim.machine (Sim.reboot sim) in
  Helpers.check_int "fenced line survives any later crash" 7 (m'.Machine.raw_read 100)

let test_trace_crash_points () =
  let tr = Trace.create () in
  Trace.record tr ~at_ns:0 ~tid:0 (Trace.Store 5);
  Trace.record tr ~at_ns:10 ~tid:0 (Trace.Clwb 5);
  Trace.record tr ~at_ns:10 ~tid:1 Trace.Sfence;
  Trace.record tr ~at_ns:12 ~tid:0 (Trace.Load 5);
  Helpers.check_bool "positive, deduped, loads skipped" true
    (Trace.crash_points tr = [ 1; 10; 11 ]);
  Helpers.check_bool "halo widens the after-point" true
    (Trace.crash_points ~halo:3 tr = [ 3; 10; 13 ])

let test_sim_crash_eadr_keeps_cached () =
  let sim, m = Helpers.sim_machine ~model:Config.optane_eadr () in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 7;
         m.Machine.store 200 9;
         for _ = 1 to 100 do
           m.Machine.pause 100
         done));
  Sim.run ~crash_at:500 sim;
  Helpers.check_bool "crashed" true (Sim.crashed sim);
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  Helpers.check_int "cached store survives under eADR" 7 (m'.Machine.raw_read 100);
  Helpers.check_int "second store too" 9 (m'.Machine.raw_read 200)

let test_sim_crash_dram_loses_everything () =
  let sim, m = Helpers.sim_machine ~model:Config.dram_eadr () in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 7;
         for _ = 1 to 100 do
           m.Machine.pause 100
         done));
  Sim.run ~crash_at:500 sim;
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  Helpers.check_int "DRAM ramdisk does not survive" 0 (m'.Machine.raw_read 100)

let test_sim_pdram_persists_everything () =
  let sim, m = Helpers.sim_machine ~model:Config.pdram () in
  ignore
    (Sim.spawn sim (fun () ->
         for i = 0 to 63 do
           m.Machine.store (i * 8) (i + 1)
         done;
         for _ = 1 to 200 do
           m.Machine.pause 10_000
         done));
  Sim.run ~crash_at:500_000 sim;
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  let ok = ref true in
  for i = 0 to 63 do
    if m'.Machine.raw_read (i * 8) <> i + 1 then ok := false
  done;
  Helpers.check_bool "all stores survive under PDRAM" true !ok

let test_sim_persist_all_then_adr_crash () =
  let sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  m.Machine.raw_write 300 123;
  Sim.persist_all sim;
  ignore (Sim.spawn sim (fun () -> m.Machine.pause 10_000));
  Sim.run ~crash_at:100 sim;
  let sim' = Sim.reboot sim in
  Helpers.check_int "initialized data survives" 123 ((Sim.machine sim').Machine.raw_read 300)

let test_sim_stats_populated () =
  let sim, m = Helpers.sim_machine () in
  ignore
    (Sim.spawn sim (fun () ->
         for i = 0 to 99 do
           m.Machine.store i i;
           m.Machine.clwb i
         done;
         m.Machine.sfence ()));
  Sim.run sim;
  let st = Sim.Stats.get sim in
  Helpers.check_int "stores counted" 100 st.Sim.Stats.stores;
  Helpers.check_int "clwbs counted" 100 st.Sim.Stats.clwbs;
  Helpers.check_int "fences counted" 1 st.Sim.Stats.sfences;
  Helpers.check_bool "some L3 misses" true (st.Sim.Stats.l3_misses > 0)

let test_sim_deterministic () =
  let run () =
    let sim, m = Helpers.sim_machine () in
    let rng = Repro_util.Rng.create 9 in
    for t = 0 to 3 do
      let rng = Repro_util.Rng.split rng in
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to 500 do
               let a = Repro_util.Rng.int rng 4096 in
               if Repro_util.Rng.bool rng then ignore (m.Machine.load a)
               else m.Machine.store a t
             done))
    done;
    Sim.run sim;
    Sim.now sim
  in
  Helpers.check_int "same virtual time across runs" (run ()) (run ())

(* Exact-latency pins: lock the timing model down to the nanosecond so
   calibration changes are deliberate, not accidental. *)
let test_sim_exact_adr_sequence () =
  (* store(miss) ; clwb ; sfence — the canonical ADR persist sequence. *)
  let sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  let lat = Config.default_latency in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 4096 1;
         m.Machine.clwb 4096;
         m.Machine.sfence ()));
  Sim.run sim;
  (* miss (252) ; clwb issues at 252, entry completes 252+62=314, clwb
     itself costs 90 -> 342; sfence target 314 already past -> +15. *)
  let expected = lat.Config.nvm_load_ns + lat.Config.clwb_ns + lat.Config.sfence_ns in
  Helpers.check_int "ADR persist sequence" expected (Sim.now sim)

let test_sim_exact_fence_wait () =
  (* A fence issued immediately after a burst of flushes must wait for
     the WPQ to drain: completion of the 4th entry = 252+4*62. *)
  let sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  let lat = Config.default_latency in
  ignore
    (Sim.spawn sim (fun () ->
         (* Four dirty lines, one miss each. *)
         for i = 0 to 3 do
           m.Machine.store (4096 + (i * 8)) 1
         done;
         for i = 0 to 3 do
           m.Machine.clwb (4096 + (i * 8))
         done;
         m.Machine.sfence ()));
  Sim.run sim;
  let t_after_stores = 4 * lat.Config.nvm_load_ns in
  let t_after_clwbs = t_after_stores + (4 * lat.Config.clwb_ns) in
  (* Entries enqueue back-to-back starting at the first clwb issue. *)
  let last_completion = t_after_stores + (4 * lat.Config.nvm_wpq_service_ns) in
  let expected = max t_after_clwbs last_completion + lat.Config.sfence_ns in
  Helpers.check_int "fence drains the queue" expected (Sim.now sim)

let test_sim_exact_cache_hit () =
  let sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  let lat = Config.default_latency in
  ignore
    (Sim.spawn sim (fun () ->
         ignore (m.Machine.load 4096);
         ignore (m.Machine.load 4097)));
  Sim.run sim;
  Helpers.check_int "miss then same-line hit"
    (lat.Config.nvm_load_ns + lat.Config.cache_hit_ns)
    (Sim.now sim)

let test_config_model_lookup () =
  List.iter
    (fun m ->
      Helpers.check_bool
        (m.Config.model_name ^ " roundtrips")
        true
        (Config.model_of_name m.Config.model_name == m))
    Config.all_models;
  Alcotest.check_raises "unknown model"
    (Invalid_argument "Config.model_of_name: unknown model \"floppy\"") (fun () ->
      ignore (Config.model_of_name "floppy"))

let test_sched_wait_until () =
  let s = Sched.create () in
  let seen = ref 0 in
  ignore
    (Sched.spawn s (fun () ->
         Sched.wait_until s 500;
         seen := Sched.now s;
         (* waiting for the past is free *)
         Sched.wait_until s 100;
         Helpers.check_int "no time travel" 500 (Sched.now s)));
  Sched.run s;
  Helpers.check_int "woke at target" 500 !seen

let test_trace_records_events () =
  let sim, m = Helpers.sim_machine () in
  let tr = Sim.enable_trace ~capacity:16 sim in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 1;
         m.Machine.clwb 100;
         m.Machine.sfence ();
         ignore (m.Machine.load 100)));
  Sim.run sim;
  Helpers.check_int "four events" 4 (Trace.recorded tr);
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.tail tr) in
  Alcotest.(check bool) "order preserved" true
    (kinds = [ Trace.Store 100; Trace.Clwb 100; Trace.Sfence; Trace.Load 100 ]);
  let timestamps = List.map (fun e -> e.Trace.at_ns) (Trace.tail tr) in
  Helpers.check_bool "timestamps nondecreasing" true
    (List.sort compare timestamps = timestamps)

let test_trace_ring_bounded () =
  let sim, m = Helpers.sim_machine () in
  let tr = Sim.enable_trace ~capacity:8 sim in
  ignore
    (Sim.spawn sim (fun () ->
         for i = 1 to 100 do
           m.Machine.store i i
         done));
  Sim.run sim;
  Helpers.check_int "all recorded" 100 (Trace.recorded tr);
  let tail = Trace.tail tr in
  Helpers.check_int "tail bounded" 8 (List.length tail);
  (match List.rev tail with
  | { Trace.kind = Trace.Store 100; _ } :: _ -> ()
  | _ -> Alcotest.fail "latest event retained");
  match Trace.find tr (fun e -> e.Trace.kind = Trace.Store 97) with
  | Some _ -> ()
  | None -> Alcotest.fail "recent event findable"

let test_trace_marks_crash () =
  let sim, m = Helpers.sim_machine () in
  let tr = Sim.enable_trace sim in
  ignore
    (Sim.spawn sim (fun () ->
         for _ = 1 to 1000 do
           m.Machine.pause 100
         done));
  Sim.run ~crash_at:5_000 sim;
  match Trace.find tr (fun e -> e.Trace.kind = Trace.Crash) with
  | Some _ -> ()
  | None -> Alcotest.fail "crash event recorded"

(* ---------- pending arena vs the old list semantics ---------- *)

(* Reference model: the pre-arena representation — a list of
   (apply_at, line, captured words) in insertion order, position
   standing in for the explicit sequence number the old record
   carried.  [apply] replays entries in (apply_at, seq) order, exactly
   the old [List.sort] on the partitioned list. *)
module Pending_ref = struct
  type entry = { r_apply_at : int; r_line : int; r_data : int array }

  let ordered entries =
    List.stable_sort (fun a b -> compare a.r_apply_at b.r_apply_at) entries

  let blit image ~stride e = Array.blit e.r_data 0 image (e.r_line * stride) (Array.length e.r_data)

  let apply ~cutoff ~stride entries image =
    List.iter
      (fun e -> if e.r_apply_at < cutoff then blit image ~stride e)
      (ordered entries)

  let settle ~now ~stride entries image =
    let done_, inflight = List.partition (fun e -> e.r_apply_at <= now) entries in
    List.iter (blit image ~stride) (ordered done_);
    inflight
end

let pending_stride = 4
let pending_lines = 8

(* The arena now captures from and applies to demand-paged images. *)
let pheap_of_array a =
  let p = Pheap.create ~words:(Array.length a) in
  Pheap.blit_of_array p 0 a 0 (Array.length a);
  p

(* One differential step: 0 = add, 1 = settle, 2 = apply (compare crash
   images), 3 = remove_lines.  After every step the arena's insertion-
   order view must equal the reference list, and the two media images
   must agree word for word. *)
let pending_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (pair (int_range 0 3) (pair (int_range 0 100) (int_range 0 (pending_lines - 1)))))

let test_pending_differential =
  Helpers.qtest ~count:300 "pending: differential vs list model" pending_ops_gen (fun ops ->
      let t = Pending.create ~stride:pending_stride () in
      let model = ref [] in
      let image = Pheap.create ~words:(pending_lines * pending_stride) in
      let image' = Array.make (pending_lines * pending_stride) 0 in
      let stamp = ref 0 in
      let agree () =
        let view = Pending.to_list t in
        let ref_view =
          List.map (fun e -> (e.Pending_ref.r_apply_at, e.Pending_ref.r_line, e.Pending_ref.r_data)) !model
        in
        if view <> ref_view then QCheck2.Test.fail_report "arena view diverged from list model";
        if Pheap.to_flat image <> image' then QCheck2.Test.fail_report "media image diverged";
        true
      in
      List.for_all
        (fun (tag, (time, line)) ->
          (match tag with
          | 0 ->
            incr stamp;
            let len = 1 + (!stamp mod pending_stride) in
            let src = Array.init pending_stride (fun k -> (!stamp * 16) + k) in
            Pending.add t ~apply_at:time ~line ~src:(pheap_of_array src) ~base:0 ~len;
            model :=
              !model
              @ [ { Pending_ref.r_apply_at = time; r_line = line; r_data = Array.sub src 0 len } ]
          | 1 ->
            Pending.settle t ~now:time image;
            model := Pending_ref.settle ~now:time ~stride:pending_stride !model image'
          | 2 ->
            (* Non-destructive crash-cut materialisation: replay onto
               copies, compare, leave both states untouched. *)
            let cut = Pheap.copy image and cut' = Array.copy image' in
            Pending.apply ~cutoff:time t cut;
            Pending_ref.apply ~cutoff:time ~stride:pending_stride !model cut';
            if Pheap.to_flat cut <> cut' then QCheck2.Test.fail_report "crash-cut image diverged"
          | _ ->
            let keep = time mod pending_lines in
            Pending.remove_lines t (fun l -> l <> keep);
            model := List.filter (fun e -> e.Pending_ref.r_line = keep) !model);
          agree ())
        ops
      &&
      (* Drain completely: nothing may leak past a settle that covers
         every service time. *)
      (Pending.settle t ~now:max_int image;
       model := Pending_ref.settle ~now:max_int ~stride:pending_stride !model image';
       Pending.count t = 0 && !model = [] && agree ()))

(* Capacity boundary: filling to the initial capacity must not grow;
   one past it doubles, preserving order and payload across the copy;
   a full drain recycles slots without shrinking. *)
let test_pending_overflow_recycle () =
  let t = Pending.create ~stride:pending_stride () in
  let cap0 = Pending.capacity t in
  let entry i = (i, i mod pending_lines, Array.init pending_stride (fun k -> (i * 100) + k)) in
  for i = 0 to cap0 - 1 do
    let at, line, src = entry i in
    Pending.add t ~apply_at:at ~line ~src:(pheap_of_array src) ~base:0 ~len:pending_stride
  done;
  Helpers.check_int "full at initial capacity" cap0 (Pending.count t);
  Helpers.check_int "no premature growth" cap0 (Pending.capacity t);
  let at, line, src = entry cap0 in
  Pending.add t ~apply_at:at ~line ~src:(pheap_of_array src) ~base:0 ~len:pending_stride;
  Helpers.check_int "doubled on overflow" (2 * cap0) (Pending.capacity t);
  Helpers.check_int "all entries retained" (cap0 + 1) (Pending.count t);
  List.iteri
    (fun i (at, line, data) ->
      let at', line', data' = entry i in
      Helpers.check_int "apply_at preserved across grow" at' at;
      Helpers.check_int "line preserved across grow" line' line;
      Helpers.check_bool "payload preserved across grow" true (data = data'))
    (Pending.to_list t);
  let image = Pheap.create ~words:(pending_lines * pending_stride) in
  Pending.settle t ~now:max_int image;
  Helpers.check_int "drained" 0 (Pending.count t);
  Helpers.check_bool "drain leaves no residue" true (Pending.to_list t = []);
  Helpers.check_int "capacity retained after drain" (2 * cap0) (Pending.capacity t);
  (* Latest service time per line wins: entries replay in apply_at
     order, so line 0's image words come from its last capture. *)
  let last_for_line0 = cap0 - (cap0 mod pending_lines) in
  Helpers.check_int "image holds the final capture"
    (last_for_line0 * 100)
    (Pheap.get image 0);
  let at, line, src = entry 7777 in
  Pending.add t ~apply_at:at ~line ~src:(pheap_of_array src) ~base:0 ~len:pending_stride;
  Helpers.check_int "slots recycle after drain" 1 (Pending.count t);
  Helpers.check_int "recycling does not grow" (2 * cap0) (Pending.capacity t)

let suite =
  [
    Alcotest.test_case "sched: virtual-time order" `Quick test_sched_virtual_time_order;
    Alcotest.test_case "sched: FIFO ties" `Quick test_sched_fifo_ties;
    Alcotest.test_case "sched: crash kills threads" `Quick test_sched_crash_kills;
    Alcotest.test_case "sched: ops outside threads" `Quick test_sched_wait_outside_thread_noop;
    Alcotest.test_case "sched: crash bounds time" `Quick test_sched_crash_time_bound;
    Alcotest.test_case "server: sync queueing" `Quick test_server_sync_queueing;
    Alcotest.test_case "server: idle reset" `Quick test_server_sync_idle_resets;
    Alcotest.test_case "server: WPQ backpressure" `Quick test_server_async_backpressure;
    Alcotest.test_case "server: throughput bound" `Quick test_server_async_throughput_bound;
    Alcotest.test_case "cache: hit after install" `Quick test_cache_hit_after_install;
    Alcotest.test_case "cache: dirty eviction" `Quick test_cache_dirty_eviction;
    Alcotest.test_case "cache: LRU within set" `Quick test_cache_lru_within_set;
    Alcotest.test_case "cache: clwb retains line" `Quick test_cache_clwb_keeps_line;
    Alcotest.test_case "cache: dirty listing" `Quick test_cache_dirty_lines_listing;
    Alcotest.test_case "sim: load/store roundtrip" `Quick test_sim_load_store_roundtrip;
    Alcotest.test_case "sim: NVM ~3x DRAM" `Quick test_sim_nvm_slower_than_dram;
    Alcotest.test_case "sim: ADR dearer than eADR" `Quick test_sim_clwb_fence_cost;
    Alcotest.test_case "sim: nofence in between" `Quick test_sim_nofence_between_adr_and_eadr;
    Alcotest.test_case "sim: ADR crash semantics" `Quick test_sim_crash_adr_loses_unflushed;
    Alcotest.test_case "sim: ADR clwb completion window" `Quick
      test_sim_adr_clwb_completion_window;
    Alcotest.test_case "sim: sfence closes the window" `Quick test_sim_adr_fence_closes_window;
    Alcotest.test_case "trace: crash points" `Quick test_trace_crash_points;
    Alcotest.test_case "sim: eADR crash semantics" `Quick test_sim_crash_eadr_keeps_cached;
    Alcotest.test_case "sim: DRAM crash semantics" `Quick test_sim_crash_dram_loses_everything;
    Alcotest.test_case "sim: PDRAM crash semantics" `Quick test_sim_pdram_persists_everything;
    Alcotest.test_case "sim: persist_all baseline" `Quick test_sim_persist_all_then_adr_crash;
    Alcotest.test_case "sim: stats populated" `Quick test_sim_stats_populated;
    Alcotest.test_case "sim: determinism" `Quick test_sim_deterministic;
    Alcotest.test_case "sim: exact ADR sequence" `Quick test_sim_exact_adr_sequence;
    Alcotest.test_case "sim: exact fence wait" `Quick test_sim_exact_fence_wait;
    Alcotest.test_case "sim: exact cache hit" `Quick test_sim_exact_cache_hit;
    Alcotest.test_case "config: model lookup" `Quick test_config_model_lookup;
    Alcotest.test_case "sched: wait_until" `Quick test_sched_wait_until;
    Alcotest.test_case "trace: records events" `Quick test_trace_records_events;
    Alcotest.test_case "trace: ring bounded" `Quick test_trace_ring_bounded;
    Alcotest.test_case "trace: crash marker" `Quick test_trace_marks_crash;
    test_pending_differential;
    Alcotest.test_case "pending: overflow + recycle" `Quick test_pending_overflow_recycle;
  ]
