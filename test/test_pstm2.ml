(* Second PTM suite: flush-timing variants, optimistic retry,
   recovery edge cases. *)

open Pstm
module Sim = Memsim.Sim
module Config = Memsim.Config

let fixture ?(model = Config.optane_adr) ?(algorithm = Ptm.Redo) ?flush_timing () =
  Helpers.ptm_fixture ~model ~algorithm ?flush_timing ()

let test_incremental_flush_semantics () =
  (* Same results as At_commit, only the clwb schedule differs. *)
  let run flush_timing =
    let _, _, ptm = fixture ~flush_timing () in
    let a = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 16) in
    for i = 0 to 15 do
      Ptm.atomic ptm (fun tx -> Ptm.write tx (a + i) (i * i))
    done;
    Ptm.atomic ptm (fun tx -> List.init 16 (fun i -> Ptm.read tx (a + i)))
  in
  Alcotest.(check (list int))
    "identical values" (run Ptm.At_commit) (run Ptm.Incremental)

let test_incremental_flush_crash_consistency () =
  (* The §III-B claim is performance-only: crash atomicity must hold
     under the incremental schedule too. *)
  let sim, _, ptm = fixture ~flush_timing:Ptm.Incremental () in
  let words = 4 in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx words in
        for i = 0 to words - 1 do
          Ptm.write tx (a + i) 0
        done;
        a)
  in
  Ptm.root_set ptm 0 base;
  Sim.persist_all sim;
  Helpers.run_workers sim 4 ~crash_at:150_000 (fun _ ->
      for _ = 1 to 10_000 do
        Ptm.atomic ptm (fun tx ->
            for i = 0 to words - 1 do
              Ptm.write tx (base + i) (Ptm.read tx (base + i) + 1)
            done)
      done);
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  ignore (Ptm.recover ~flush_timing:Ptm.Incremental m');
  let v0 = m'.Machine.raw_read base in
  for i = 1 to words - 1 do
    Helpers.check_int "incremental-flush atomicity" v0 (m'.Machine.raw_read (base + i))
  done

let test_abort_and_retry_waits_for_flag () =
  (* Optimistic waiting: retry until another thread flips the flag. *)
  let sim, _, ptm = fixture () in
  let flag =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 0;
        a)
  in
  let observed = ref (-1) in
  ignore
    (Sim.spawn sim (fun () ->
         Ptm.atomic ptm (fun tx ->
             let v = Ptm.read tx flag in
             if v = 0 then Ptm.abort_and_retry tx;
             observed := v)));
  ignore
    (Sim.spawn sim (fun () ->
         (Ptm.machine ptm).Machine.pause 5_000;
         Ptm.atomic ptm (fun tx -> Ptm.write tx flag 42)));
  Sim.run sim;
  Helpers.check_int "waiter saw the flag" 42 !observed

let test_read_only_snapshot_consistency () =
  (* A reader scanning many words while writers mutate them must see a
     consistent snapshot (all slots equal within one transaction). *)
  let sim, _, ptm = fixture () in
  let words = 8 in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx words in
        for i = 0 to words - 1 do
          Ptm.write tx (a + i) 0
        done;
        a)
  in
  let violations = ref 0 in
  for tid = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           if tid < 2 then
             for _ = 1 to 200 do
               Ptm.atomic ptm (fun tx ->
                   for i = 0 to words - 1 do
                     Ptm.write tx (base + i) (Ptm.read tx (base + i) + 1)
                   done)
             done
           else
             for _ = 1 to 200 do
               let snapshot =
                 Ptm.atomic ptm (fun tx -> List.init words (fun i -> Ptm.read tx (base + i)))
               in
               match snapshot with
               | first :: rest -> if List.exists (fun v -> v <> first) rest then incr violations
               | [] -> ()
             done))
  done;
  Sim.run sim;
  Helpers.check_int "no torn snapshots" 0 !violations

let test_recover_empty_region () =
  (* Recovery of a freshly formatted region (no transactions ever) is a
     no-op, not an error. *)
  let sim, m, _ptm = fixture () in
  Sim.persist_all sim;
  let sim' = Sim.reboot sim in
  ignore m;
  let ptm' = Ptm.recover (Sim.machine sim') in
  Ptm.atomic ptm' (fun tx ->
      let a = Ptm.alloc tx 1 in
      Ptm.write tx a 9;
      Helpers.check_int "fresh region usable" 9 (Ptm.read tx a))

let test_stats_reset () =
  let _, _, ptm = fixture () in
  let a = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Ptm.atomic ptm (fun tx -> Ptm.write tx a 1);
  Ptm.Stats.reset ptm;
  let s = Ptm.Stats.get ptm in
  Helpers.check_int "commits zeroed" 0 s.Ptm.Stats.commits;
  Helpers.check_int "aborts zeroed" 0 s.Ptm.Stats.aborts

let test_write_set_stat_counts_distinct_words () =
  let _, _, ptm = fixture () in
  let a = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 8) in
  Ptm.Stats.reset ptm;
  Ptm.atomic ptm (fun tx ->
      for i = 0 to 7 do
        Ptm.write tx (a + i) i;
        Ptm.write tx (a + i) (i + 1) (* overwrite: still one entry *)
      done);
  let s = Ptm.Stats.get ptm in
  Helpers.check_int "distinct words only" 8 s.Ptm.Stats.max_write_set

let test_huge_value_roundtrip () =
  (* Full 63-bit values flow through logs, write-back and recovery. *)
  let sim, _, ptm = fixture () in
  let weird = [ max_int; min_int + 1; 0x5A5A5A5A5A5A5A5; 1 lsl 62 ] in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 4 in
        List.iteri (fun i v -> Ptm.write tx (a + i) v) weird;
        a)
  in
  Ptm.root_set ptm 0 base;
  Sim.persist_all sim;
  ignore (Sim.spawn sim (fun () -> (Ptm.machine ptm).Machine.pause 1000));
  Sim.run sim;
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  ignore (Ptm.recover m');
  List.iteri
    (fun i v -> Helpers.check_int (Printf.sprintf "word %d" i) v (m'.Machine.raw_read (base + i)))
    weird

let suite =
  [
    Alcotest.test_case "incremental flush: semantics" `Quick test_incremental_flush_semantics;
    Alcotest.test_case "incremental flush: crash" `Quick test_incremental_flush_crash_consistency;
    Alcotest.test_case "abort_and_retry waits" `Quick test_abort_and_retry_waits_for_flag;
    Alcotest.test_case "read-only snapshots" `Quick test_read_only_snapshot_consistency;
    Alcotest.test_case "recover empty region" `Quick test_recover_empty_region;
    Alcotest.test_case "stats reset" `Quick test_stats_reset;
    Alcotest.test_case "write-set dedup stat" `Quick test_write_set_stat_counts_distinct_words;
    Alcotest.test_case "extreme values" `Quick test_huge_value_roundtrip;
  ]
