(* FAMS subsystem gate, wired into tier-1 `dune runtest` and, in
   full-measurement form, `dune build @fams`.

   Fast mode (default) reruns the `fams` experiment at quick size and
   holds it to four promises:

   1. Shape: the full grid is present — 3 workloads x {ptm-redo,
      fams-line, fams-page} x 5 durability domains — and every FAMS
      cell actually synced work.
   2. Granularity economy: line-granularity dirty tracking journals
      strictly fewer bytes per byte dirtied than page granularity, on
      every workload under every domain.  This is the subsystem's
      headline claim (sparse stores touch a few lines of each page).
   3. Domain economy: FAMS issues fences only where the domain needs
      them (ADR / PDRAM families) and none on eADR-class machines;
      flushes vanish wherever the cache itself is persistent.
   4. Regression: the freshly produced record must pass
      `Bench_json.regress` against the committed BENCH_fams.json
      baseline (simulation is deterministic, so drift means a code
      change that must re-bless the baseline deliberately).

   FAMS_FULL=1 (set by the @fams alias) reruns at full measurement
   size; the committed baseline is quick-sized, so full mode keeps the
   shape and economy checks but skips the byte-level regress.  Both
   modes are held to a wall-clock budget (FAMS_BUDGET_S overrides:
   120 s fast, 900 s full). *)

module Experiments = Workloads.Experiments
module J = Workloads.Bench_json

let full =
  match Sys.getenv_opt "FAMS_FULL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let budget_s =
  match Sys.getenv_opt "FAMS_BUDGET_S" with
  | Some s when String.trim s <> "" -> (
    match float_of_string_opt (String.trim s) with
    | Some b when b > 0.0 -> b
    | _ ->
      Printf.eprintf "FAMS_BUDGET_S: not a positive number: %S\n%!" s;
      exit 2)
  | _ -> if full then 900.0 else 120.0

let failed = ref 0

let check name ok =
  if not ok then begin
    incr failed;
    Printf.printf "FAIL %s\n%!" name
  end

let workloads = [ "fams-bank"; "fams-kv"; "fams-btree" ]
let models = [ "ADR"; "eADR"; "transient"; "PDRAM"; "PDRAM-Lite" ]
let fams_series = [ "fams-line"; "fams-page" ]

let () =
  let baseline_path = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let t0 = Unix.gettimeofday () in
  let quick = not full in
  let outcome, cells = Experiments.fams_run ~quick () in
  let find workload series model =
    List.find_opt
      (fun c ->
        c.Experiments.fc_workload = workload
        && c.Experiments.fc_series = series
        && c.Experiments.fc_model = model)
      cells
  in
  (* 1 — shape: every cell of the grid, with real work behind it. *)
  check "grid: 45 driver rows"
    (List.length outcome.Experiments.results = 45);
  check "grid: 30 fams cells" (List.length cells = 30);
  List.iter
    (fun workload ->
      List.iter
        (fun series ->
          List.iter
            (fun model ->
              match find workload series model with
              | None ->
                check (Printf.sprintf "cell %s/%s/%s present" workload series model) false
              | Some c ->
                check
                  (Printf.sprintf "cell %s/%s/%s synced work" workload series model)
                  (c.Experiments.fc_syncs > 0 && c.Experiments.fc_bytes_dirtied > 0))
            models)
        fams_series)
    workloads;
  (* 2 — line tracking strictly beats page tracking on write amp. *)
  List.iter
    (fun workload ->
      List.iter
        (fun model ->
          match (find workload "fams-line" model, find workload "fams-page" model) with
          | Some l, Some p ->
            let la = l.Experiments.fc_write_amp and pa = p.Experiments.fc_write_amp in
            check
              (Printf.sprintf "%s/%s: line write amp %.2f < page %.2f" workload model la pa)
              (Float.is_finite la && Float.is_finite pa && la < pa);
            check
              (Printf.sprintf "%s/%s: write amp >= 1 (got %.2f)" workload model la)
              (la >= 1.0)
          | _ -> () (* absence already reported by the shape pass *))
        models)
    workloads;
  (* 3 — fences and flushes follow the durability domain. *)
  List.iter
    (fun workload ->
      List.iter
        (fun series ->
          let per f model =
            match find workload series model with Some c -> f c | None -> nan
          in
          let fences = per (fun c -> c.Experiments.fc_fences_per_sync) in
          let flushes = per (fun c -> c.Experiments.fc_flushes_per_sync) in
          check
            (Printf.sprintf "%s/%s: fences on ADR (got %.2f)" workload series (fences "ADR"))
            (fences "ADR" > 0.0);
          List.iter
            (fun model ->
              check
                (Printf.sprintf "%s/%s: 0 fences on %s (got %.2f)" workload series model
                   (fences model))
                (fences model = 0.0);
              check
                (Printf.sprintf "%s/%s: 0 flushes on %s (got %.2f)" workload series model
                   (flushes model))
                (flushes model = 0.0))
            [ "eADR"; "transient" ])
        fams_series)
    workloads;
  (* 4 — regression sentinel against the committed baseline. *)
  (match (baseline_path, quick) with
  | Some path, true ->
    let tmp = Filename.temp_file "fams_gate" ".d" in
    Sys.remove tmp;
    let wall_s = Unix.gettimeofday () -. t0 in
    let fresh =
      J.write ~dir:tmp ~experiment:"fams" ~quick:true ~jobs:1 ~wall_s
        ~extra:outcome.Experiments.extra outcome.Experiments.results
    in
    (match
       J.regress ~baseline:(J.parse_file path) ~current:(J.parse_file fresh) ()
     with
    | findings ->
      let regressions =
        List.filter (fun f -> f.J.f_severity = J.Regression) findings
      in
      List.iter
        (fun f -> Printf.printf "  regress %s: %s\n" f.J.f_path f.J.f_detail)
        regressions;
      check "regress vs committed BENCH_fams.json" (regressions = [])
    | exception J.Parse_error msg ->
      check (Printf.sprintf "regress: parse (%s)" msg) false);
    Sys.remove fresh;
    (try Unix.rmdir tmp with Unix.Unix_error _ -> ())
  | Some _, false -> () (* full-size run; the committed baseline is quick-sized *)
  | None, _ -> check "baseline path given" false);
  let elapsed = Unix.gettimeofday () -. t0 in
  let mode = if full then "full" else "fast" in
  if !failed > 0 then begin
    Printf.printf "fams(%s): %d check(s) FAILED in %.1fs\n%!" mode !failed elapsed;
    exit 1
  end
  else if elapsed > budget_s then begin
    Printf.printf "fams(%s): all checks passed but %.1fs exceeds the %.0fs budget\n%!" mode
      elapsed budget_s;
    exit 1
  end
  else
    Printf.printf "fams(%s): all checks passed in %.1fs (budget %.0fs)\n%!" mode elapsed
      budget_s
