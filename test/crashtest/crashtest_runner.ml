(* Standalone crash-test sweep, wired to `dune build @crashtest`.

   Default: sampled sweep of every scenario across the
   {Redo, Undo} x {ADR, eADR, PDRAM, PDRAM-Lite, transient-cache,
   HTM-commit} matrix (Htm replaces Undo on the HTM-commit domain).
   CRASHTEST_EXHAUSTIVE=1 probes every candidate instant instead.
   CRASHTEST_SCENARIO / CRASHTEST_MODEL / CRASHTEST_ALG restrict the
   sweep to matching cells (exact scenario / model / algorithm names).
   CRASHTEST_INJECT=skip-fence|reorder-log-apply|tear-write arms a
   deliberate PTM ordering bug for the whole sweep (expect failures —
   this is how the oracles themselves are exercised by hand).
   CRASHTEST_REPLAY='scenario:model:algorithm:seed:crash_at[:inject]'
   re-runs a single failing point printed by a previous sweep. *)

module Config = Memsim.Config
module Engine = Crashtest.Engine
module Scenarios = Crashtest.Scenarios

let models =
  [
    Config.optane_adr;
    Config.optane_eadr;
    Config.pdram;
    Config.pdram_lite;
    Config.transient_cache;
    Config.htm_commit;
  ]

(* Undo's eager in-place stores are pointless inside a hardware
   transaction; the HTM-commit domain sweeps the Htm algorithm
   instead.  The MOD structure scenarios sweep the Mod algorithm
   (their buffered single-fence discipline) plus Redo as the
   strict-durability differential — Undo/Htm would add nothing the
   other scenarios don't already cover. *)
let algorithms_for model scenario =
  let is_mod =
    let n = scenario.Engine.name in
    String.length n >= 4 && String.sub n 0 4 = "mod-"
  in
  if is_mod then [ Pstm.Ptm.Mod; Pstm.Ptm.Redo ]
  else if model == Config.htm_commit then [ Pstm.Ptm.Redo; Pstm.Ptm.Htm ]
  else [ Pstm.Ptm.Redo; Pstm.Ptm.Undo ]

let inject_from_env () =
  match Sys.getenv_opt "CRASHTEST_INJECT" with
  | None | Some "" -> None
  | Some name -> (
    match Pstm.Ptm.inject_of_name name with
    | Some _ as i -> i
    | None ->
      Printf.eprintf "CRASHTEST_INJECT: unknown inject %S\n%!" name;
      exit 2)

let replay spec =
  match Engine.parse_replay spec with
  | None ->
    Printf.eprintf "CRASHTEST_REPLAY: cannot parse %S\n%!" spec;
    exit 2
  | Some (scenario_name, model_name, algorithm, seed, crash_at, inject) ->
    let scenario, model =
      try (Scenarios.find scenario_name, Config.model_of_name model_name)
      with Invalid_argument msg ->
        Printf.eprintf "CRASHTEST_REPLAY: %s\n%!" msg;
        exit 2
    in
    (match Engine.run_point ?inject ~model ~algorithm ~seed ~crash_at scenario with
    | Ok () ->
      Printf.printf "replay %s: ok (no violation at t=%d)\n%!" spec crash_at
    | Error reason ->
      Printf.printf "replay %s: VIOLATION\n  %s\n%!" spec reason;
      exit 1)

let wanted var name =
  match Sys.getenv_opt var with None | Some "" -> true | Some v -> v = name

let sweep () =
  let inject = inject_from_env () in
  let failed = ref 0 in
  let ran = ref 0 in
  List.iter
    (fun scenario ->
      if wanted "CRASHTEST_SCENARIO" scenario.Engine.name then
        List.iter
          (fun model ->
            if wanted "CRASHTEST_MODEL" model.Config.model_name then
              List.iter
                (fun algorithm ->
                  if wanted "CRASHTEST_ALG" (Pstm.Ptm.algorithm_name algorithm) then begin
                    let report = Engine.explore ?inject ~model ~algorithm scenario in
                    Format.printf "%a@." Engine.pp_report report;
                    incr ran;
                    if not (Engine.ok report) then incr failed
                  end)
                (algorithms_for model scenario))
          models)
    (Scenarios.all ());
  if !ran = 0 then begin
    (* A typo'd filter must not read as a clean bill of health. *)
    Printf.eprintf "no cells matched the CRASHTEST_SCENARIO/MODEL/ALG filters\n%!";
    exit 2
  end
  else if !failed > 0 then begin
    Printf.printf "%d/%d cell(s) FAILED\n%!" !failed !ran;
    exit 1
  end
  else Printf.printf "all %d cells passed\n%!" !ran

let () =
  match Sys.getenv_opt "CRASHTEST_REPLAY" with
  | Some spec when String.trim spec <> "" -> replay spec
  | Some _ | None -> sweep ()
