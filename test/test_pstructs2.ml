(* Second pstructs suite: skiplist and range scans. *)

open Pstructs
module Ptm = Pstm.Ptm
module Sim = Memsim.Sim

let fixture ?heap_words () = Helpers.pstructs_fixture ?heap_words ()

(* ---------- skiplist ---------- *)

let test_skiplist_insert_find () =
  let _, _, ptm = fixture () in
  let s = Pskiplist.create ptm in
  Ptm.atomic ptm (fun tx ->
      List.iter
        (fun k -> Helpers.check_bool "fresh" true (Pskiplist.insert tx s ~key:k ~value:(k * 2)))
        [ 5; 1; 9; 3; 7 ]);
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option int)) "find 7" (Some 14) (Pskiplist.find tx s 7);
      Alcotest.(check (option int)) "find missing" None (Pskiplist.find tx s 4);
      Helpers.check_bool "upsert" false (Pskiplist.insert tx s ~key:7 ~value:0);
      Alcotest.(check (option int)) "updated" (Some 0) (Pskiplist.find tx s 7));
  Pskiplist.check_invariants s;
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ]
    (List.map fst (Pskiplist.to_alist s))

let test_skiplist_remove () =
  let _, _, ptm = fixture () in
  let s = Pskiplist.create ptm in
  for k = 1 to 100 do
    Ptm.atomic ptm (fun tx -> ignore (Pskiplist.insert tx s ~key:k ~value:k))
  done;
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 100 do
        if k mod 3 = 0 then Helpers.check_bool "removed" true (Pskiplist.remove tx s k)
      done;
      Helpers.check_bool "already gone" false (Pskiplist.remove tx s 3));
  Pskiplist.check_invariants s;
  Helpers.check_int "two thirds left" 67 (List.length (Pskiplist.to_alist s))

let test_skiplist_towers_exist () =
  let _, _, ptm = fixture () in
  let s = Pskiplist.create ptm in
  for k = 1 to 500 do
    Ptm.atomic ptm (fun tx -> ignore (Pskiplist.insert tx s ~key:k ~value:k))
  done;
  (* With 500 nodes at p=1/2 the expected number of towers above level
     3 is ~60; the structure degenerates to a list if levels are broken. *)
  Pskiplist.check_invariants s;
  Helpers.check_int "all present" 500 (List.length (Pskiplist.to_alist s))

let prop_skiplist_matches_map =
  Helpers.qtest ~count:25 "skiplist behaves like Map"
    (Helpers.kv_ops_gen ~key_range:200 ~ops:3 ())
    (fun ops ->
      let module M = Map.Make (Int) in
      let _, _, ptm = fixture () in
      let s = Pskiplist.create ptm in
      let m = ref M.empty in
      List.iteri
        (fun i (key, op) ->
          Ptm.atomic ptm (fun tx ->
              match op with
              | 0 ->
                ignore (Pskiplist.insert tx s ~key ~value:i);
                m := M.add key i !m
              | 1 ->
                if Pskiplist.find tx s key <> M.find_opt key !m then failwith "find mismatch"
              | _ ->
                if Pskiplist.remove tx s key <> M.mem key !m then failwith "remove mismatch";
                m := M.remove key !m))
        ops;
      Pskiplist.check_invariants s;
      Pskiplist.to_alist s = M.bindings !m)

let test_skiplist_concurrent () =
  let sim, _, ptm = fixture () in
  let s = Pskiplist.create ptm in
  Helpers.run_workers sim 4 (fun tid ->
      for i = 1 to 150 do
        let key = (tid * 1000) + i in
        Ptm.atomic ptm (fun tx -> ignore (Pskiplist.insert tx s ~key ~value:key))
      done);
  Pskiplist.check_invariants s;
  Helpers.check_int "all inserted" 600 (List.length (Pskiplist.to_alist s))

let test_skiplist_crash_consistency () =
  let sim, _, ptm = fixture () in
  let s = Pskiplist.create ptm in
  Ptm.root_set ptm 0 (Pskiplist.descriptor s);
  Sim.persist_all sim;
  Helpers.run_workers sim 4 ~crash_at:200_000 (fun tid ->
      let rng = Repro_util.Rng.create (tid + 3) in
      for _ = 1 to 5_000 do
        let key = 1 + Repro_util.Rng.int rng 1_000 in
        Ptm.atomic ptm (fun tx ->
            if Repro_util.Rng.chance rng 0.7 then ignore (Pskiplist.insert tx s ~key ~value:key)
            else ignore (Pskiplist.remove tx s key))
      done);
  let _sim', _m', ptm' = Helpers.reboot_and_recover sim in
  let s' = Pskiplist.attach ptm' (Ptm.root_get ptm' 0) in
  Pskiplist.check_invariants s';
  Ptm.atomic ptm' (fun tx -> ignore (Pskiplist.insert tx s' ~key:5_000 ~value:1));
  Ptm.atomic ptm' (fun tx ->
      Alcotest.(check (option int)) "usable after recovery" (Some 1) (Pskiplist.find tx s' 5_000))

(* ---------- skiplist and btree range folds ---------- *)

let test_skiplist_fold_range () =
  let _, _, ptm = fixture () in
  let s = Pskiplist.create ptm in
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 50 do
        ignore (Pskiplist.insert tx s ~key:(k * 2) ~value:k)
      done);
  let keys =
    Ptm.atomic ptm (fun tx ->
        List.rev (Pskiplist.fold_range tx s ~lo:10 ~hi:20 (fun acc k _ -> k :: acc) []))
  in
  Alcotest.(check (list int)) "range" [ 10; 12; 14; 16; 18; 20 ] keys

let test_btree_fold_range () =
  let _, _, ptm = fixture () in
  let t = Bptree.create ptm in
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 200 do
        ignore (Bptree.insert tx t ~key:k ~value:(k * 10))
      done);
  let sum =
    Ptm.atomic ptm (fun tx -> Bptree.fold_range tx t ~lo:50 ~hi:59 (fun acc _ v -> acc + v) 0)
  in
  Helpers.check_int "sum of values 500..590" 5450 sum;
  let empty =
    Ptm.atomic ptm (fun tx -> Bptree.fold_range tx t ~lo:1000 ~hi:2000 (fun acc _ _ -> acc + 1) 0)
  in
  Helpers.check_int "empty range" 0 empty

let prop_btree_range_matches_filter =
  Helpers.qtest ~count:25 "btree fold_range = filtered bindings"
    QCheck2.Gen.(triple (list (int_range 1 300)) (int_range 1 300) (int_range 0 100))
    (fun (keys, lo, span) ->
      let hi = lo + span in
      let _, _, ptm = fixture () in
      let t = Bptree.create ptm in
      List.iter
        (fun k -> Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx t ~key:k ~value:k)))
        keys;
      let got =
        Ptm.atomic ptm (fun tx ->
            List.rev (Bptree.fold_range tx t ~lo ~hi (fun acc k _ -> k :: acc) []))
      in
      let expect =
        List.filter (fun k -> k >= lo && k <= hi) (List.sort_uniq compare keys)
      in
      got = expect)

(* ---------- blobs ---------- *)

let test_blob_roundtrip () =
  let _, _, ptm = fixture () in
  Ptm.atomic ptm (fun tx ->
      let b = Pblob.alloc tx "hello, persistent world" in
      Helpers.check_int "length" 23 (Pblob.length tx b);
      Alcotest.(check string) "roundtrip" "hello, persistent world" (Pblob.get tx b));
  ()

let test_blob_all_lengths () =
  let _, _, ptm = fixture () in
  Ptm.atomic ptm (fun tx ->
      for len = 0 to 40 do
        let s = String.init len (fun i -> Char.chr (32 + ((i * 7) mod 90))) in
        let b = Pblob.alloc tx s in
        if Pblob.get tx b <> s then Alcotest.failf "roundtrip failed at length %d" len
      done)

let test_blob_set_and_compare () =
  let _, _, ptm = fixture () in
  let b = Ptm.atomic ptm (fun tx -> Pblob.alloc tx "aaaaaaaaaa") in
  Ptm.atomic ptm (fun tx ->
      Helpers.check_bool "equal before" true (Pblob.equal_string tx b "aaaaaaaaaa");
      Pblob.set tx b "bbbbbbbbbb";
      Helpers.check_bool "equal after" true (Pblob.equal_string tx b "bbbbbbbbbb");
      Helpers.check_bool "not equal to other" false (Pblob.equal_string tx b "bbbbbbbbbc");
      Helpers.check_bool "length mismatch false" false (Pblob.equal_string tx b "bb"));
  Alcotest.check_raises "set length mismatch"
    (Invalid_argument "Pblob.set: length mismatch")
    (fun () -> Ptm.atomic ptm (fun tx -> Pblob.set tx b "short"))

let test_blob_abort_rolls_back () =
  let _, _, ptm = fixture () in
  let b = Ptm.atomic ptm (fun tx -> Pblob.alloc tx "original..") in
  (try
     Ptm.atomic ptm (fun tx ->
         Pblob.set tx b "clobbered!";
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "rolled back" "original.." (Pblob.raw_get ptm b)

let prop_blob_roundtrip =
  Helpers.qtest ~count:50 "blob roundtrips any string" QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      let _, _, ptm = fixture ~heap_words:(1 lsl 16) () in
      let b = Ptm.atomic ptm (fun tx -> Pblob.alloc tx s) in
      Pblob.raw_get ptm b = s)

(* ---------- persistent arrays ---------- *)

let test_parray_basics () =
  let _, _, ptm = fixture () in
  let a = Ptm.atomic ptm (fun tx -> Parray.create tx ~init:7 1000) in
  Helpers.check_int "length" 1000 (Parray.length a);
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "init value" 7 (Parray.get tx a 999);
      Parray.set tx a 500 42;
      Helpers.check_int "set/get" 42 (Parray.get tx a 500));
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "sum" ((999 * 7) + 42) (Parray.fold tx a ( + ) 0))

let test_parray_bounds () =
  let _, _, ptm = fixture () in
  let a = Ptm.atomic ptm (fun tx -> Parray.create tx ~init:0 10) in
  Alcotest.check_raises "oob" (Invalid_argument "Parray: index 10 out of bounds") (fun () ->
      Ptm.atomic ptm (fun tx -> ignore (Parray.get tx a 10)))

let test_parray_attach () =
  let _, _, ptm = fixture () in
  let a = Ptm.atomic ptm (fun tx -> Parray.create tx ~init:3 900) in
  let a' = Parray.attach ptm (Parray.descriptor a) in
  Helpers.check_int "attached length" 900 (Parray.length a');
  Helpers.check_int "raw oracle" (900 * 3)
    (List.fold_left ( + ) 0 (Parray.to_list_raw ptm a'))

let test_parray_crash_rollback () =
  let _, _, ptm = fixture () in
  let a = Ptm.atomic ptm (fun tx -> Parray.create tx ~init:1 64) in
  (try
     Ptm.atomic ptm (fun tx ->
         Parray.set tx a 5 999;
         failwith "boom")
   with Failure _ -> ());
  Ptm.atomic ptm (fun tx -> Helpers.check_int "rolled back" 1 (Parray.get tx a 5))

(* ---------- on-disk media image ---------- *)

let test_image_roundtrip_across_machines () =
  let path = Filename.temp_file "pdimg" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let cfg = Memsim.Config.make ~heap_words:(1 lsl 16) Memsim.Config.optane_adr in
      let sim = Sim.create cfg in
      let m = Sim.machine sim in
      let ptm = Ptm.create ~max_threads:8 ~log_words_per_thread:1024 m in
      let tree = Bptree.create ptm in
      Ptm.root_set ptm 0 (Bptree.descriptor tree);
      for k = 1 to 200 do
        Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx tree ~key:k ~value:(k * k)))
      done;
      Memsim.Sim.persist_all sim;
      Sim.save_image sim path;
      (* A brand-new machine, as a second process would see it. *)
      let sim' = Sim.load_image cfg path in
      let ptm' = Ptm.recover (Sim.machine sim') in
      let tree' = Bptree.attach ptm' (Ptm.root_get ptm' 0) in
      Bptree.check_invariants tree';
      Ptm.atomic ptm' (fun tx ->
          Alcotest.(check (option int)) "data crossed processes" (Some (150 * 150))
            (Bptree.lookup tx tree' 150)))

let test_truncated_image_rejected () =
  let path = Filename.temp_file "pdimg" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let cfg = Memsim.Config.make ~heap_words:(1 lsl 14) Memsim.Config.optane_adr in
      let sim = Sim.create cfg in
      Sim.save_image sim path;
      (* Tear the image mid-payload, as a crash during [save_image]
         would.  The loader must report corruption (with context), not
         leak [End_of_file] or hand back a half-image. *)
      let whole = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub whole 0 (String.length whole / 2)));
      (match Sim.load_image cfg path with
      | _ -> Alcotest.fail "expected Corrupt_image for a torn image"
      | exception Machine.Corrupt_image msg ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Helpers.check_bool "message carries the path" true (contains msg path));
      (* A missing image is a different condition: plain [Sys_error]. *)
      Sys.remove path;
      (match Sim.load_image cfg path with
      | _ -> Alcotest.fail "expected Sys_error for a missing image"
      | exception Sys_error _ -> ());
      (* Recreate so the [finally] remove has something to delete. *)
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc ""))

let test_image_size_mismatch_rejected () =
  let path = Filename.temp_file "pdimg" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let cfg = Memsim.Config.make ~heap_words:(1 lsl 14) Memsim.Config.optane_adr in
      let sim = Sim.create cfg in
      Sim.save_image sim path;
      let other = Memsim.Config.make ~heap_words:(1 lsl 15) Memsim.Config.optane_adr in
      match Sim.load_image other path with
      | _ -> Alcotest.fail "expected size mismatch"
      | exception Machine.Corrupt_image _ -> ())

let prop_queue_matches_model =
  Helpers.qtest ~count:30 "pqueue behaves like Queue"
    QCheck2.Gen.(list (option (int_range 0 100)))
    (fun ops ->
      let _, _, ptm = fixture () in
      let q = Pqueue.create ptm in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          Ptm.atomic ptm (fun tx ->
              match op with
              | Some v ->
                Pqueue.enqueue tx q v;
                Queue.push v model;
                true
              | None ->
                let got = Pqueue.dequeue tx q in
                let expect = Queue.take_opt model in
                got = expect))
        ops
      && Pqueue.to_list q = List.of_seq (Queue.to_seq model))

let suite =
  [
    Alcotest.test_case "skiplist: insert/find" `Quick test_skiplist_insert_find;
    Alcotest.test_case "skiplist: remove" `Quick test_skiplist_remove;
    Alcotest.test_case "skiplist: towers" `Quick test_skiplist_towers_exist;
    prop_skiplist_matches_map;
    Alcotest.test_case "skiplist: concurrent" `Quick test_skiplist_concurrent;
    Alcotest.test_case "skiplist: crash consistency" `Quick test_skiplist_crash_consistency;
    Alcotest.test_case "skiplist: fold_range" `Quick test_skiplist_fold_range;
    Alcotest.test_case "btree: fold_range" `Quick test_btree_fold_range;
    prop_btree_range_matches_filter;
    Alcotest.test_case "blob: roundtrip" `Quick test_blob_roundtrip;
    Alcotest.test_case "blob: all lengths" `Quick test_blob_all_lengths;
    Alcotest.test_case "blob: set/compare" `Quick test_blob_set_and_compare;
    Alcotest.test_case "blob: abort rollback" `Quick test_blob_abort_rolls_back;
    prop_blob_roundtrip;
    Alcotest.test_case "parray: basics" `Quick test_parray_basics;
    Alcotest.test_case "parray: bounds" `Quick test_parray_bounds;
    Alcotest.test_case "parray: attach" `Quick test_parray_attach;
    Alcotest.test_case "parray: abort rollback" `Quick test_parray_crash_rollback;
    Alcotest.test_case "image: cross-process roundtrip" `Quick test_image_roundtrip_across_machines;
    Alcotest.test_case "image: size mismatch" `Quick test_image_size_mismatch_rejected;
    Alcotest.test_case "image: truncation -> Corrupt_image" `Quick test_truncated_image_rejected;
    prop_queue_matches_model;
  ]
