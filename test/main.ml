let () =
  Alcotest.run "optane_ptm_repro"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("memsim", Test_memsim.suite);
      ("pmem", Test_pmem.suite);
      ("pstm", Test_pstm.suite);
      ("pstm2", Test_pstm2.suite);
      ("pstructs", Test_pstructs.suite);
      ("pstructs2", Test_pstructs2.suite);
      ("mod", Test_mod.suite);
      ("workloads", Test_workloads.suite);
      ("telemetry", Test_telemetry.suite);
      ("native", Test_native.suite);
      ("extensions", Test_extensions.suite);
      ("kvserve", Test_kvserve.suite);
      ("dlin", Test_dlin.suite);
      ("fams", Test_fams.suite);
      ("crashtest", Test_crashtest.suite);
      ("differential", Test_differential.suite);
      ("experiments", Test_experiments.suite);
    ]
