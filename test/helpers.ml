(* Shared fixtures for the test suites. *)

let sim_machine ?(model = Memsim.Config.optane_adr) ?(heap_words = 1 lsl 16) ?lat () =
  let cfg = Memsim.Config.make ?lat ~heap_words model in
  let sim = Memsim.Sim.create cfg in
  (sim, Memsim.Sim.machine sim)

(* Run [threads] simulated workers [f tid] to completion. *)
let run_workers ?crash_at sim threads f =
  for tid = 0 to threads - 1 do
    ignore (Memsim.Sim.spawn sim (fun () -> f tid))
  done;
  Memsim.Sim.run ?crash_at sim

(* Machine plus an attached PTM — the fixture most suites start from.
   Optional arguments mirror [Ptm.create]'s so suites only state what
   they care about. *)
let ptm_fixture ?model ?algorithm ?flush_timing ?(heap_words = 1 lsl 16)
    ?(max_threads = 8) ?(log_words_per_thread = 1024) ?lat () =
  let sim, m = sim_machine ?model ~heap_words ?lat () in
  let ptm = Pstm.Ptm.create ?algorithm ?flush_timing ~max_threads ~log_words_per_thread m in
  (sim, m, ptm)

(* The persistent-structure suites' variant: a bigger heap (splitting
   trees and towers churn allocation) and a bigger per-thread log,
   shared by test_pstructs, test_pstructs2 and test_mod so the sizing
   lives in one place. *)
let pstructs_fixture ?model ?algorithm ?(heap_words = 1 lsl 18) () =
  ptm_fixture ?model ?algorithm ~heap_words ~log_words_per_thread:2048 ()

(* Reboot a crashed (or finished) sim and recover the PTM on it. *)
let reboot_and_recover ?algorithm sim =
  let sim' = Memsim.Sim.reboot sim in
  let m' = Memsim.Sim.machine sim' in
  let ptm' = Pstm.Ptm.recover ?algorithm m' in
  (sim', m', ptm')

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* qcheck bridge: register a property as an alcotest case. *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* Key/op traces for the structure-vs-oracle differential properties:
   (key, op-code) pairs with keys in [1, key_range] and op codes in
   [0, ops - 1].  [size] bounds the trace length; without it the list
   uses qcheck's default size distribution. *)
let kv_ops_gen ?size ~key_range ~ops () =
  let open QCheck2.Gen in
  let step = pair (int_range 1 key_range) (int_range 0 (ops - 1)) in
  match size with None -> list step | Some (lo, hi) -> list_size (int_range lo hi) step
