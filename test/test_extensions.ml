(* Extensions beyond the paper's evaluation: HTM mode, Memory Mode,
   and the reserve-power model. *)

open Pstm
module Sim = Memsim.Sim
module Config = Memsim.Config

let fixture ?(model = Config.optane_eadr) ?(algorithm = Ptm.Htm) () =
  Helpers.ptm_fixture ~model ~algorithm ()

(* ---------- HTM ---------- *)

let test_htm_rejected_under_adr () =
  let _sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  Alcotest.check_raises "ADR + HTM is invalid"
    (Invalid_argument "Ptm: the HTM algorithm requires an eADR-class durability domain")
    (fun () -> ignore (Ptm.create ~algorithm:Ptm.Htm m))

let test_htm_basic_semantics () =
  let _, _, ptm = fixture () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 4 in
        Ptm.write tx a 7;
        Ptm.write tx (a + 1) 8;
        Helpers.check_int "read own write" 7 (Ptm.read tx a);
        a)
  in
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "committed" 7 (Ptm.read tx addr);
      Helpers.check_int "second word" 8 (Ptm.read tx (addr + 1)))

let test_htm_parallel_counter () =
  let sim, _, ptm = fixture () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 0;
        a)
  in
  Helpers.run_workers sim 4 (fun _ ->
      for _ = 1 to 100 do
        Ptm.atomic ptm (fun tx -> Ptm.write tx addr (Ptm.read tx addr + 1))
      done);
  Ptm.atomic ptm (fun tx -> Helpers.check_int "no lost updates" 400 (Ptm.read tx addr))

let test_htm_capacity_falls_back () =
  (* A transaction larger than the HTM write capacity must still
     commit, through the STM fallback path. *)
  let _, _, ptm = fixture () in
  let base = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 512) in
  Ptm.Stats.reset ptm;
  Ptm.atomic ptm (fun tx ->
      (* 512 words over 64+ lines > the 128-line cap is not reachable
         with one block; touch two blocks' worth of lines. *)
      for i = 0 to 511 do
        Ptm.write tx (base + i) i
      done);
  let s = Ptm.Stats.get ptm in
  Helpers.check_int "committed exactly once" 1 s.Ptm.Stats.commits;
  Ptm.atomic ptm (fun tx -> Helpers.check_int "data landed" 99 (Ptm.read tx (base + 99)))

let test_htm_crash_atomicity () =
  (* Uncommitted HTM state must vanish on a crash; committed state must
     survive (eADR publishes into the durability domain atomically). *)
  let sim, _, ptm = fixture () in
  let words = 4 in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx words in
        for i = 0 to words - 1 do
          Ptm.write tx (a + i) 0
        done;
        a)
  in
  Ptm.root_set ptm 0 base;
  Sim.persist_all sim;
  Helpers.run_workers sim 3 ~crash_at:150_000 (fun _ ->
      for _ = 1 to 10_000 do
        Ptm.atomic ptm (fun tx ->
            for i = 0 to words - 1 do
              Ptm.write tx (base + i) (Ptm.read tx (base + i) + 1)
            done)
      done);
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  ignore (Ptm.recover ~algorithm:Ptm.Htm m');
  let v0 = m'.Machine.raw_read base in
  for i = 1 to words - 1 do
    Helpers.check_int "HTM atomicity across crash" v0 (m'.Machine.raw_read (base + i))
  done

let test_htm_no_flushes_issued () =
  let sim, _, ptm = fixture () in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Memsim.Sim.reset_timing sim;
  ignore
    (Sim.spawn sim (fun () ->
         for _ = 1 to 50 do
           Ptm.atomic ptm (fun tx -> Ptm.write tx addr (Ptm.read tx addr + 1))
         done));
  Sim.run sim;
  let s = Sim.Stats.get sim in
  Helpers.check_int "no clwb under HTM" 0 s.Sim.Stats.clwbs;
  Helpers.check_int "no sfence under HTM" 0 s.Sim.Stats.sfences

(* ---------- Memory Mode ---------- *)

let test_memory_mode_loses_everything () =
  let sim, m = Helpers.sim_machine ~model:Config.memory_mode () in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 7;
         for _ = 1 to 50 do
           m.Machine.pause 1000
         done));
  Sim.run ~crash_at:10_000 sim;
  let sim' = Sim.reboot sim in
  Helpers.check_int "memory mode resets on reboot" 0 ((Sim.machine sim').Machine.raw_read 100)

let test_memory_mode_fast_like_pdram () =
  let time model =
    let sim, m = Helpers.sim_machine ~model () in
    ignore
      (Sim.spawn sim (fun () ->
           for i = 0 to 999 do
             m.Machine.store (i * 8) i
           done));
    Sim.run sim;
    Sim.now sim
  in
  Helpers.check_int "identical runtime behaviour" (time Config.pdram) (time Config.memory_mode)

(* ---------- transiently persistent cache ---------- *)

let test_transient_cache_flags_and_survival () =
  let sim, m = Helpers.sim_machine ~model:Config.transient_cache () in
  Helpers.check_bool "no flushes needed" false m.Machine.needs_flush;
  Helpers.check_bool "no fences needed" false m.Machine.needs_fence;
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 7;
         for _ = 1 to 50 do
           m.Machine.pause 1000
         done));
  Sim.run ~crash_at:10_000 sim;
  let sim' = Sim.reboot sim in
  Helpers.check_int "unflushed store rides out the failure" 7
    ((Sim.machine sim').Machine.raw_read 100)

let test_transient_cache_flush_free_ptm () =
  (* needs_flush = false: the PTM must skip clwb/sfence entirely, as
     under eADR — the domains differ only in reserve-energy accounting. *)
  let sim, _, ptm =
    Helpers.ptm_fixture ~model:Config.transient_cache ~algorithm:Ptm.Redo ()
  in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Memsim.Sim.reset_timing sim;
  ignore
    (Sim.spawn sim (fun () ->
         for _ = 1 to 50 do
           Ptm.atomic ptm (fun tx -> Ptm.write tx addr (Ptm.read tx addr + 1))
         done));
  Sim.run sim;
  let s = Sim.Stats.get sim in
  Helpers.check_int "no clwb under transient cache" 0 s.Sim.Stats.clwbs;
  Helpers.check_int "no sfence under transient cache" 0 s.Sim.Stats.sfences

let test_transient_energy_between_adr_and_eadr () =
  (* Same dirty working set under each persistence mode: ADR's reserve
     covers only the WPQ, the transiently persistent cache pays mere
     retention per dirty line, eADR pays a full read-out + NVM write. *)
  let energy model =
    let sim, m = Helpers.sim_machine ~model () in
    ignore
      (Sim.spawn sim (fun () ->
           for i = 0 to 63 do
             m.Machine.store (i * 8) 1
           done));
    Sim.run sim;
    Sim.Debt.reserve_energy_nj sim (Sim.Debt.sample sim)
  in
  let adr = energy Config.optane_adr in
  let transient = energy Config.transient_cache in
  let eadr = energy Config.optane_eadr in
  Helpers.check_bool
    (Printf.sprintf "adr(%.0f) < transient(%.0f)" adr transient)
    true (adr < transient);
  Helpers.check_bool
    (Printf.sprintf "transient(%.0f) < eadr(%.0f)" transient eadr)
    true (transient < eadr)

(* ---------- HTM-commit domain ---------- *)

let test_htm_commit_publish_survives_crash () =
  (* The controller hardens each published write set at retirement, so
     a committed HTM transaction is durable with no explicit flush —
     even though the domain is otherwise ADR-class. *)
  let sim, _, ptm = Helpers.ptm_fixture ~model:Config.htm_commit ~algorithm:Ptm.Htm () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 41;
        a)
  in
  Ptm.root_set ptm 0 addr;
  Ptm.atomic ptm (fun tx -> Ptm.write tx addr 42);
  (* No persist_all: the publish alone must have reached the media. *)
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  ignore (Ptm.recover ~algorithm:Ptm.Htm m');
  Helpers.check_int "published commit survives reboot" 42 (m'.Machine.raw_read addr)

let test_htm_commit_plain_stores_still_volatile () =
  (* durable_publish covers only published write sets; a raw store that
     never reaches the WPQ is lost, exactly as under plain ADR. *)
  let sim, m = Helpers.sim_machine ~model:Config.htm_commit () in
  ignore
    (Sim.spawn sim (fun () ->
         m.Machine.store 100 7;
         for _ = 1 to 50 do
           m.Machine.pause 1000
         done));
  Sim.run ~crash_at:10_000 sim;
  let sim' = Sim.reboot sim in
  Helpers.check_int "unpublished store lost" 0 ((Sim.machine sim').Machine.raw_read 100)

(* ---------- reserve-power model ---------- *)

let test_debt_sampling () =
  let sim, m = Helpers.sim_machine ~model:Config.optane_eadr () in
  ignore
    (Sim.spawn sim (fun () ->
         for i = 0 to 63 do
           m.Machine.store (i * 8) 1
         done));
  Sim.run sim;
  let d = Sim.Debt.sample sim in
  Helpers.check_bool "dirty lines observed" true (d.Sim.Debt.dirty_l3_lines > 0);
  let e = Sim.Debt.reserve_energy_nj sim d in
  Helpers.check_bool "positive reserve energy" true (e > 0.0)

let test_debt_adr_counts_only_wpq () =
  let sim, m = Helpers.sim_machine ~model:Config.optane_adr () in
  ignore
    (Sim.spawn sim (fun () ->
         for i = 0 to 63 do
           m.Machine.store (i * 8) 1
         done
         (* dirty lines, nothing flushed: ADR would lose them, so they
            are not part of the reserve-power requirement *)));
  Sim.run sim;
  let d = Sim.Debt.sample sim in
  let e = Sim.Debt.reserve_energy_nj sim d in
  Helpers.check_bool "ADR reserve covers only the WPQ" true
    (e <= float_of_int d.Sim.Debt.wpq_lines *. 100.0)

let test_energy_ordering_across_domains () =
  (* The paper's power argument: ADR < eADR <= PDRAM reserve needs. *)
  let max_energy model =
    let worst = ref 0.0 in
    let sample sim =
      let d = Sim.Debt.sample sim in
      worst := max !worst (Sim.Debt.reserve_energy_nj sim d)
    in
    ignore
      (Workloads.Driver.run ~duration_ns:300_000 ~monitor:(5_000, sample) ~model
         ~algorithm:Ptm.Redo ~threads:4 Workloads.Tatp.spec);
    !worst
  in
  let adr = max_energy Config.optane_adr in
  let eadr = max_energy Config.optane_eadr in
  let pdram = max_energy Config.pdram in
  Helpers.check_bool
    (Printf.sprintf "adr(%.0f) < eadr(%.0f)" adr eadr)
    true (adr < eadr);
  Helpers.check_bool
    (Printf.sprintf "eadr(%.0f) < pdram(%.0f)" eadr pdram)
    true (eadr < pdram)

let suite =
  [
    Alcotest.test_case "htm: rejected under ADR" `Quick test_htm_rejected_under_adr;
    Alcotest.test_case "htm: semantics" `Quick test_htm_basic_semantics;
    Alcotest.test_case "htm: parallel counter" `Quick test_htm_parallel_counter;
    Alcotest.test_case "htm: capacity fallback" `Quick test_htm_capacity_falls_back;
    Alcotest.test_case "htm: crash atomicity" `Quick test_htm_crash_atomicity;
    Alcotest.test_case "htm: flush-free" `Quick test_htm_no_flushes_issued;
    Alcotest.test_case "memory mode: volatile" `Quick test_memory_mode_loses_everything;
    Alcotest.test_case "memory mode: PDRAM speed" `Quick test_memory_mode_fast_like_pdram;
    Alcotest.test_case "transient cache: survival without flushes" `Quick
      test_transient_cache_flags_and_survival;
    Alcotest.test_case "transient cache: flush-free PTM" `Quick
      test_transient_cache_flush_free_ptm;
    Alcotest.test_case "transient cache: energy between ADR and eADR" `Quick
      test_transient_energy_between_adr_and_eadr;
    Alcotest.test_case "htm-commit: publish is durable" `Quick
      test_htm_commit_publish_survives_crash;
    Alcotest.test_case "htm-commit: plain stores stay volatile" `Quick
      test_htm_commit_plain_stores_still_volatile;
    Alcotest.test_case "energy: debt sampling" `Quick test_debt_sampling;
    Alcotest.test_case "energy: ADR = WPQ only" `Quick test_debt_adr_counts_only_wpq;
    Alcotest.test_case "energy: domain ordering" `Quick test_energy_ordering_across_domains;
  ]
