(* Parallel-determinism gate: the experiment layer promises that [jobs]
   buys wall-clock time only — every table is byte-identical to the
   serial run.  Render one quick Fig 3 panel (the cheap bank workload:
   all eight placement/durability/logging series across the full thread
   axis) at --jobs 1, 2 and 4 and compare the outputs byte for byte.

   A mismatch means a cell observed state outside itself — a shared RNG,
   a process-global counter, a telemetry sink written from two domains —
   exactly the class of bug the thread-localisation work exists to
   prevent. *)

let render jobs =
  let outcome = Workloads.Experiments.fig3_panel ~quick:true ~jobs Workloads.Bank.spec in
  String.concat "\n"
    (List.map
       (Format.asprintf "%a" Repro_util.Table.print)
       outcome.Workloads.Experiments.tables)

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let () =
  let serial = render 1 in
  let failures = ref 0 in
  List.iter
    (fun jobs ->
      let out = render jobs in
      if String.equal serial out then
        Printf.printf "parallel: --jobs %d byte-identical to serial (%d bytes)\n%!" jobs
          (String.length out)
      else begin
        incr failures;
        let i = first_diff serial out in
        Printf.printf "parallel: --jobs %d DIFFERS from serial at byte %d\n" jobs i;
        let context s =
          let lo = max 0 (i - 40) in
          String.sub s lo (min 80 (String.length s - lo))
        in
        Printf.printf "  serial:   %S\n" (context serial);
        Printf.printf "  parallel: %S\n%!" (context out)
      end)
    [ 2; 4 ];
  if !failures > 0 then exit 1
