(* FAMS (failure-atomic msync): unit roundtrips through crash recovery,
   the dirty-tracker differential property, phase-accounting exactness,
   the granularity x durability-domain crash matrix, and mutation tests
   proving the oracle rejects injected protocol bugs. *)

module Config = Memsim.Config
module Sim = Memsim.Sim
module Dirty = Memsim.Dirty
module Layout = Machine.Layout
module Engine = Crashtest.Engine
module Scenarios = Crashtest.Scenarios
module Profile = Pstm.Profile

let seed = 1

(* ---------- msync roundtrip through reboot + recovery ---------- *)

let fams_fixture ?(model = Config.optane_adr) ~granularity ~words () =
  let heap_words = Fams.required_heap_words ~words in
  let cfg = Config.make ~heap_words ~track_media:true model in
  let sim = Sim.create cfg in
  let fams = Fams.create ~granularity ~words sim in
  (* Declare the freshly formatted region durable, as a real mkfs
     would, before the measured run dirties anything. *)
  Sim.persist_all sim;
  (sim, fams)

(* Three scattered synced writes survive the reboot; a write after the
   last sync does not (FAMS durability is the last completed sync). *)
let test_roundtrip model granularity () =
  let words = 4096 in
  let sim, fams = fams_fixture ~model ~granularity ~words () in
  ignore
    (Sim.spawn sim (fun () ->
         Fams.write fams 0 11;
         Fams.write fams 777 22;
         Fams.write fams 1500 33;
         Fams.msync_atomic fams;
         Fams.write fams 5 99));
  Sim.run sim;
  let st = Fams.stats fams in
  Helpers.check_int "one sync" 1 st.Fams.Stats.syncs;
  (* 0, 777 and 1500 land on three distinct lines in three distinct
     pages, so both granularities journal exactly three units. *)
  Helpers.check_int "three journal entries" 3 st.Fams.Stats.journal_entries;
  let sim2 = Sim.reboot sim in
  let fams2 = Fams.recover sim2 in
  Helpers.check_bool "granularity survives recovery" true
    (Fams.granularity fams2 = granularity);
  List.iter
    (fun (a, v) ->
      Helpers.check_int (Printf.sprintf "word %d after recovery" a) v (Fams.raw_read fams2 a))
    [ (0, 11); (777, 22); (1500, 33); (5, 0) ]

(* Line tracking journals 9 words per dirty line, page tracking 513 per
   dirty page: on the same sparse store set line amplification must be
   strictly lower. *)
let test_write_amp_direction () =
  let run granularity =
    let words = 4096 in
    let sim, fams = fams_fixture ~granularity ~words () in
    ignore
      (Sim.spawn sim (fun () ->
           Fams.write fams 0 11;
           Fams.write fams 777 22;
           Fams.write fams 1500 33;
           Fams.msync_atomic fams));
    Sim.run sim;
    Fams.Stats.write_amp (Fams.stats fams)
  in
  let line = run Fams.Line and page = run Fams.Page in
  Helpers.check_bool
    (Printf.sprintf "line write amp (%.1f) < page write amp (%.1f)" line page)
    true (line < page)

(* A sync with nothing dirty is bookkeeping only. *)
let test_empty_sync () =
  let sim, fams = fams_fixture ~granularity:Fams.Line ~words:1024 () in
  ignore (Sim.spawn sim (fun () -> Fams.msync_atomic fams));
  Sim.run sim;
  let st = Fams.stats fams in
  Helpers.check_int "sync counted" 1 st.Fams.Stats.syncs;
  Helpers.check_int "no journal entries" 0 st.Fams.Stats.journal_entries;
  Helpers.check_int "no fences" 0 st.Fams.Stats.fences;
  Helpers.check_int "no flushes" 0 st.Fams.Stats.flushes

(* ---------- dirty tracker vs reference model ---------- *)

(* Window: five pages starting one page in, so out-of-window stores on
   both sides must be ignored. *)
let dw_lo = Layout.words_per_page

let dw_hi = dw_lo + (5 * Layout.words_per_page)

(* Replay a store trace into both the bitmap and a Hashtbl reference
   model, then require identical page/line sets, counts, iteration
   order and membership answers — including after [clear]. *)
let dirty_matches_model runs =
  let d = Dirty.create ~lo:dw_lo ~hi:dw_hi in
  let pages = Hashtbl.create 16 and lines = Hashtbl.create 64 in
  List.iter
    (fun (start, len) ->
      for i = 0 to len - 1 do
        let addr = start + i in
        Dirty.note d addr;
        if addr >= dw_lo && addr < dw_hi then begin
          Hashtbl.replace pages (addr / Layout.words_per_page * Layout.words_per_page) ();
          Hashtbl.replace lines (addr / Layout.words_per_line * Layout.words_per_line) ()
        end
      done)
    runs;
  let sorted h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare in
  let model_pages = sorted pages and model_lines = sorted lines in
  let got_pages = ref [] in
  Dirty.iter_dirty_pages d (fun p -> got_pages := p :: !got_pages);
  let got_pages = List.rev !got_pages in
  let got_lines = ref [] in
  Dirty.iter_dirty_pages d (fun p ->
      Dirty.iter_dirty_lines_of_page d p (fun l -> got_lines := l :: !got_lines));
  let got_lines = List.rev !got_lines in
  let membership_ok =
    List.for_all
      (fun (start, len) ->
        List.for_all
          (fun addr ->
            let in_window = addr >= dw_lo && addr < dw_hi in
            Dirty.page_dirty d addr
            = (in_window
              && Hashtbl.mem pages (addr / Layout.words_per_page * Layout.words_per_page))
            && Dirty.line_dirty d addr
               = (in_window
                 && Hashtbl.mem lines (addr / Layout.words_per_line * Layout.words_per_line)))
          [ start; start + len - 1; start + (len / 2) ])
      runs
  in
  let populated_ok =
    Dirty.dirty_pages d = List.length model_pages
    && Dirty.dirty_lines d = List.length model_lines
    && got_pages = model_pages && got_lines = model_lines && membership_ok
  in
  Dirty.clear d;
  let cleared = ref true in
  Dirty.iter_dirty_pages d (fun _ -> cleared := false);
  populated_ok && Dirty.dirty_pages d = 0 && Dirty.dirty_lines d = 0 && !cleared
  && not (Dirty.page_dirty d dw_lo)

(* Runs start anywhere around the window (including outside) and span
   up to 600 words, so they straddle line and page boundaries. *)
let dirty_runs_gen =
  let open QCheck2.Gen in
  list_size (int_range 0 24)
    (pair (int_range (dw_lo - 700) (dw_hi + 100)) (int_range 1 600))

(* ---------- phase accounting exactness ---------- *)

(* Mirrors the PTM phase-accounting suite: every sync nanosecond must
   be attributed to exactly one Snap_* phase, and the profiler's
   per-phase fence/flush counters must agree with [Fams.Stats]. *)
let test_phase_exactness () =
  let r =
    Workloads.Fams_bench.run ~duration_ns:200_000 ~model:Config.optane_adr
      ~granularity:Fams.Line Workloads.Fams_bench.bank
  in
  let p = r.Workloads.Fams_bench.profile in
  let st = r.Workloads.Fams_bench.fams in
  Helpers.check_bool "bench performed syncs" true (st.Fams.Stats.syncs > 0);
  List.iter
    (fun tid ->
      let txn = Profile.txn_ns p ~tid in
      Helpers.check_bool "sync time positive" true (txn > 0);
      Helpers.check_int "phases partition sync time exactly" txn (Profile.total_phase_ns p ~tid))
    (Profile.tids p);
  let snap_phases = [ Profile.Snap_sweep; Profile.Snap_publish; Profile.Snap_apply ] in
  let sum per_phase =
    List.fold_left
      (fun acc tid ->
        List.fold_left (fun acc ph -> acc + per_phase ~tid ph) acc snap_phases)
      0 (Profile.tids p)
  in
  Helpers.check_bool "sweep phase saw time" true
    (sum (fun ~tid ph -> if ph = Profile.Snap_sweep then Profile.phase_ns p ~tid ph else 0) > 0);
  Helpers.check_int "profiled fences match FAMS stats" st.Fams.Stats.fences
    (sum (fun ~tid ph -> Profile.phase_fences p ~tid ph));
  Helpers.check_int "profiled flushes match FAMS stats" st.Fams.Stats.flushes
    (sum (fun ~tid ph -> Profile.phase_flushes p ~tid ph))

(* ---------- the granularity x durability-domain crash matrix ---------- *)

let test_fams_cell model granularity () =
  let report =
    Engine.explore_fams ~points:40 ~seed ~model ~granularity (Scenarios.fams_bank ())
  in
  Helpers.check_bool (Format.asprintf "%a" Engine.pp_report report) true (Engine.ok report);
  Helpers.check_bool "probed at least 40 instants" true (report.Engine.tested >= 40)

let matrix_cases =
  List.concat_map
    (fun model ->
      List.map
        (fun granularity ->
          let name =
            Printf.sprintf "matrix fams-bank/%s/%s" model.Config.model_name
              (Engine.fams_algorithm_name granularity)
          in
          Alcotest.test_case name `Slow (test_fams_cell model granularity))
        [ Fams.Line; Fams.Page ])
    [
      Config.optane_adr;
      Config.optane_eadr;
      Config.transient_cache;
      Config.pdram;
      Config.pdram_lite;
    ]

(* ---------- mutation tests: injected FAMS bugs must be caught ---------- *)

let test_fams_mutation ~inject ~granularity ~model () =
  let scenario = Scenarios.fams_bank () in
  let report = Engine.explore_fams ~points:80 ~seed ~inject ~model ~granularity scenario in
  Helpers.check_bool
    (Printf.sprintf "checker rejects %s on %s/%s/%s" (Fams.inject_name inject)
       scenario.Engine.f_name model.Config.model_name
       (Engine.fams_algorithm_name granularity))
    false (Engine.ok report);
  match report.Engine.failures with
  | [] -> Alcotest.fail "report not ok but carries no failure record"
  | f :: _ ->
    Helpers.check_bool "failure explains itself" true (String.length f.Engine.reason > 0);
    let spec =
      match String.split_on_char '\'' f.Engine.replay with
      | _ :: spec :: _ -> spec
      | _ -> Alcotest.fail ("unparseable replay line: " ^ f.Engine.replay)
    in
    (match Engine.parse_fams_replay spec with
    | Some (scen_name, model_name, gran, replay_seed, crash_at, Some inj) ->
      Helpers.check_bool "replay line names the injected bug" true (inj = inject);
      Helpers.check_bool "replay line names the granularity" true (gran = granularity);
      let result =
        Engine.run_fams_point ~inject:inj
          ~model:(Config.model_of_name model_name)
          ~granularity:gran ~seed:replay_seed ~crash_at
          (Scenarios.fams_find scen_name)
      in
      Helpers.check_bool "replay reproduces the violation" true (Result.is_error result)
    | Some (_, _, _, _, _, None) ->
      Alcotest.fail ("replay spec lost the inject field: " ^ spec)
    | None -> Alcotest.fail ("replay spec does not parse: " ^ spec));
    (match f.Engine.telemetry_dir with
    | None -> Alcotest.fail "failure carries no telemetry dump"
    | Some dir ->
      Helpers.check_bool "telemetry dump has profile.jsonl" true
        (Sys.file_exists (Filename.concat dir "profile.jsonl"));
      (* A dlin-oracle failure carries a counterexample; a recovery
         rejection (Corrupt_image) legitimately does not. *)
      if not (String.starts_with ~prefix:"recovery rejected" f.Engine.reason) then
        Helpers.check_bool "dlin counterexample rides the telemetry dump" true
          (Sys.file_exists (Filename.concat dir "dlin.jsonl")))

let mutation_cases =
  [
    (* Without the drain fence the commit record's write-back races the
       journal's: page granularity keeps the journal large, so the WPQ
       drain window after each publish is wide. *)
    Alcotest.test_case "inject skip-publish-fence is caught (fams-page/adr)" `Slow
      (test_fams_mutation ~inject:Fams.Skip_publish_fence ~granularity:Fams.Page
         ~model:Config.optane_adr);
    (* The last journal entry's tail lines are never flushed, so a
       committed record replays stale media into the home image. *)
    Alcotest.test_case "inject torn-journal-entry is caught (fams-line/adr)" `Slow
      (test_fams_mutation ~inject:Fams.Torn_journal_entry ~granularity:Fams.Line
         ~model:Config.optane_adr);
  ]

(* ---------- demand-paged sparse heap images ---------- *)

(* A 8 MiB heap with three touched words must serialize far below the
   dense size (three pages of payload), and round-trip the touched
   words while untouched pages read zero. *)
let test_sparse_image () =
  let heap_words = 1 lsl 20 in
  let cfg = Config.make ~heap_words ~track_media:true Config.optane_adr in
  let sim = Sim.create cfg in
  let m = Sim.machine sim in
  m.Machine.raw_write 0 42;
  m.Machine.raw_write (heap_words / 2) 43;
  m.Machine.raw_write (heap_words - 1) 44;
  Sim.persist_all sim;
  let path = Filename.temp_file "fams-sparse" ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sim.save_image sim path;
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      close_in ic;
      Helpers.check_bool
        (Printf.sprintf "image is sparse (%d bytes for an 8 MiB heap)" size)
        true
        (size < 64 * 1024);
      let sim2 = Sim.load_image cfg path in
      let m2 = Sim.machine sim2 in
      Helpers.check_int "first word survives" 42 (m2.Machine.raw_read 0);
      Helpers.check_int "middle word survives" 43 (m2.Machine.raw_read (heap_words / 2));
      Helpers.check_int "last word survives" 44 (m2.Machine.raw_read (heap_words - 1));
      Helpers.check_int "untouched page reads zero" 0 (m2.Machine.raw_read 123456))

let suite =
  [
    Alcotest.test_case "msync roundtrip (line/adr)" `Quick
      (test_roundtrip Config.optane_adr Fams.Line);
    Alcotest.test_case "msync roundtrip (page/adr)" `Quick
      (test_roundtrip Config.optane_adr Fams.Page);
    Alcotest.test_case "msync roundtrip (line/eadr)" `Quick
      (test_roundtrip Config.optane_eadr Fams.Line);
    Alcotest.test_case "line amplification below page" `Quick test_write_amp_direction;
    Alcotest.test_case "empty sync is bookkeeping only" `Quick test_empty_sync;
    Helpers.qtest ~count:300 "dirty bitmap matches reference model" dirty_runs_gen
      dirty_matches_model;
    Alcotest.test_case "snap phases partition sync time" `Quick test_phase_exactness;
    Alcotest.test_case "sparse heap image roundtrip" `Quick test_sparse_image;
  ]
  @ matrix_cases @ mutation_cases
