open Pstructs
module Ptm = Pstm.Ptm
module Sim = Memsim.Sim
module Config = Memsim.Config

let fixture ?algorithm ?heap_words () = Helpers.pstructs_fixture ?algorithm ?heap_words ()

(* ---------- B+Tree ---------- *)

let test_btree_insert_lookup () =
  let _, _, ptm = fixture () in
  let t = Bptree.create ptm in
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 100 do
        ignore (Bptree.insert tx t ~key:k ~value:(k * 10))
      done);
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 100 do
        Alcotest.(check (option int)) "lookup" (Some (k * 10)) (Bptree.lookup tx t k)
      done;
      Alcotest.(check (option int)) "missing key" None (Bptree.lookup tx t 101));
  Bptree.check_invariants t

let test_btree_update_in_place () =
  let _, _, ptm = fixture () in
  let t = Bptree.create ptm in
  Ptm.atomic ptm (fun tx ->
      Helpers.check_bool "first insert new" true (Bptree.insert tx t ~key:5 ~value:1);
      Helpers.check_bool "second insert updates" false (Bptree.insert tx t ~key:5 ~value:2);
      Alcotest.(check (option int)) "updated" (Some 2) (Bptree.lookup tx t 5))

let test_btree_many_keys_splits () =
  let _, _, ptm = fixture () in
  let t = Bptree.create ptm in
  let n = 5_000 in
  let keys = Array.init n (fun i -> i + 1) in
  Repro_util.Rng.shuffle (Repro_util.Rng.create 3) keys;
  Array.iter
    (fun k -> Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx t ~key:k ~value:k)))
    keys;
  Bptree.check_invariants t;
  let alist = Bptree.to_alist t in
  Helpers.check_int "all keys present" n (List.length alist);
  Helpers.check_bool "sorted ascending" true
    (List.for_all2 (fun (k, _) i -> k = i) alist (List.init n (fun i -> i + 1)))

let test_btree_remove () =
  let _, _, ptm = fixture () in
  let t = Bptree.create ptm in
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 200 do
        ignore (Bptree.insert tx t ~key:k ~value:k)
      done);
  Ptm.atomic ptm (fun tx ->
      for k = 1 to 200 do
        if k mod 2 = 0 then Helpers.check_bool "removed" true (Bptree.remove tx t k)
      done;
      Helpers.check_bool "absent remove" false (Bptree.remove tx t 2));
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option int)) "odd survives" (Some 3) (Bptree.lookup tx t 3);
      Alcotest.(check (option int)) "even gone" None (Bptree.lookup tx t 4));
  Bptree.check_invariants t;
  Helpers.check_int "half remain" 100 (List.length (Bptree.to_alist t))

let test_btree_min_binding () =
  let _, _, ptm = fixture () in
  let t = Bptree.create ptm in
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option (pair int int))) "empty" None (Bptree.min_binding tx t));
  Ptm.atomic ptm (fun tx ->
      List.iter (fun k -> ignore (Bptree.insert tx t ~key:k ~value:(-k))) [ 42; 7; 99 ]);
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option (pair int int))) "min" (Some (7, -7)) (Bptree.min_binding tx t));
  Ptm.atomic ptm (fun tx ->
      ignore (Bptree.remove tx t 7);
      Alcotest.(check (option (pair int int)))
        "min after remove" (Some (42, -42)) (Bptree.min_binding tx t))

let prop_btree_matches_map =
  Helpers.qtest ~count:30 "btree behaves like Map"
    (Helpers.kv_ops_gen ~key_range:500 ~ops:3 ())
    (fun ops ->
      let module M = Map.Make (Int) in
      let _, _, ptm = fixture () in
      let t = Bptree.create ptm in
      let m = ref M.empty in
      List.iteri
        (fun i (key, op) ->
          Ptm.atomic ptm (fun tx ->
              match op with
              | 0 ->
                ignore (Bptree.insert tx t ~key ~value:i);
                m := M.add key i !m
              | 1 ->
                let expect = M.find_opt key !m in
                if Bptree.lookup tx t key <> expect then failwith "lookup mismatch"
              | _ ->
                let was = M.mem key !m in
                if Bptree.remove tx t key <> was then failwith "remove mismatch";
                m := M.remove key !m))
        ops;
      Bptree.check_invariants t;
      Bptree.to_alist t = M.bindings !m)

let test_btree_concurrent_inserts () =
  let sim, _, ptm = fixture () in
  let t = Bptree.create ptm in
  let per = 300 in
  Helpers.run_workers sim 4 (fun tid ->
      for i = 1 to per do
        let key = (tid * per) + i in
        Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx t ~key ~value:key))
      done);
  Bptree.check_invariants t;
  Helpers.check_int "all inserted under contention" (4 * per) (List.length (Bptree.to_alist t))

let test_btree_crash_consistency () =
  let sim, _, ptm = fixture () in
  let t = Bptree.create ptm in
  Ptm.root_set ptm 0 (Bptree.descriptor t);
  Sim.persist_all sim;
  Helpers.run_workers sim 4 ~crash_at:400_000 (fun tid ->
      let rng = Repro_util.Rng.create (50 + tid) in
      for _ = 1 to 5_000 do
        let key = 1 + Repro_util.Rng.int rng 2_000 in
        Ptm.atomic ptm (fun tx ->
            if Repro_util.Rng.chance rng 0.7 then ignore (Bptree.insert tx t ~key ~value:key)
            else ignore (Bptree.remove tx t key))
      done);
  Helpers.check_bool "crashed" true (Sim.crashed sim);
  let _sim', _m', ptm' = Helpers.reboot_and_recover sim in
  let t' = Bptree.attach ptm' (Ptm.root_get ptm' 0) in
  (* The recovered tree must be structurally sound and readable. *)
  Bptree.check_invariants t';
  Ptm.atomic ptm' (fun tx -> ignore (Bptree.insert tx t' ~key:999_999 ~value:1));
  Ptm.atomic ptm' (fun tx ->
      Alcotest.(check (option int)) "usable after recovery" (Some 1)
        (Bptree.lookup tx t' 999_999))

(* ---------- hash table ---------- *)

let test_hash_put_get_remove () =
  let _, _, ptm = fixture () in
  let h = Phashtable.create ptm ~buckets:512 in
  for k = 1 to 300 do
    Ptm.atomic ptm (fun tx ->
        Helpers.check_bool "fresh put" true (Phashtable.put tx h ~key:k ~value:(k * 2)))
  done;
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option int)) "get" (Some 84) (Phashtable.get tx h 42);
      Helpers.check_bool "update" false (Phashtable.put tx h ~key:42 ~value:0);
      Alcotest.(check (option int)) "updated" (Some 0) (Phashtable.get tx h 42);
      Helpers.check_bool "remove" true (Phashtable.remove tx h 42);
      Alcotest.(check (option int)) "gone" None (Phashtable.get tx h 42);
      Helpers.check_bool "remove missing" false (Phashtable.remove tx h 42))

let test_hash_bucket_rounding () =
  let _, _, ptm = fixture () in
  let h = Phashtable.create ptm ~buckets:100 in
  Helpers.check_int "rounded up to a segment" 512 (Phashtable.buckets h)

let test_hash_chains_cover_collisions () =
  let _, _, ptm = fixture () in
  let h = Phashtable.create ptm ~buckets:512 in
  (* Far more keys than buckets: every op still correct via chains. *)
  for k = 1 to 2_000 do
    Ptm.atomic ptm (fun tx -> ignore (Phashtable.put tx h ~key:k ~value:k))
  done;
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option int)) "deep chain get" (Some 1999) (Phashtable.get tx h 1999));
  let total = Array.fold_left ( + ) 0 (Phashtable.chain_lengths h) in
  Helpers.check_int "all nodes reachable" 2_000 total

let prop_hash_matches_hashtbl =
  Helpers.qtest ~count:30 "hash table behaves like Hashtbl"
    (Helpers.kv_ops_gen ~key_range:300 ~ops:3 ())
    (fun ops ->
      let _, _, ptm = fixture () in
      let h = Phashtable.create ptm ~buckets:512 in
      let model = Hashtbl.create 64 in
      List.iteri
        (fun i (key, op) ->
          Ptm.atomic ptm (fun tx ->
              match op with
              | 0 ->
                ignore (Phashtable.put tx h ~key ~value:i);
                Hashtbl.replace model key i
              | 1 ->
                if Phashtable.get tx h key <> Hashtbl.find_opt model key then
                  failwith "get mismatch"
              | _ ->
                if Phashtable.remove tx h key <> Hashtbl.mem model key then
                  failwith "remove mismatch";
                Hashtbl.remove model key))
        ops;
      List.sort compare (Phashtable.to_alist h)
      = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))

let test_hash_concurrent_disjoint () =
  let sim, _, ptm = fixture () in
  let h = Phashtable.create ptm ~buckets:1024 in
  Helpers.run_workers sim 4 (fun tid ->
      for i = 1 to 250 do
        let key = (tid * 1000) + i in
        Ptm.atomic ptm (fun tx -> ignore (Phashtable.put tx h ~key ~value:tid))
      done);
  Helpers.check_int "all present" 1000 (List.length (Phashtable.to_alist h))

(* ---------- sorted list ---------- *)

let test_list_sorted_semantics () =
  let _, _, ptm = fixture () in
  let l = Plist.create ptm in
  Ptm.atomic ptm (fun tx ->
      List.iter (fun k -> ignore (Plist.insert tx l ~key:k ~value:(k * 3))) [ 5; 1; 9; 3; 7 ]);
  Alcotest.(check (list (pair int int)))
    "sorted walk"
    [ (1, 3); (3, 9); (5, 15); (7, 21); (9, 27) ]
    (Plist.to_alist l);
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option int)) "find" (Some 21) (Plist.find tx l 7);
      Helpers.check_bool "remove middle" true (Plist.remove tx l 5);
      Helpers.check_int "length" 4 (Plist.length tx l))

let prop_list_matches_map =
  Helpers.qtest ~count:30 "sorted list behaves like Map"
    (Helpers.kv_ops_gen ~key_range:100 ~ops:3 ())
    (fun ops ->
      let module M = Map.Make (Int) in
      let _, _, ptm = fixture () in
      let l = Plist.create ptm in
      let m = ref M.empty in
      List.iteri
        (fun i (key, op) ->
          Ptm.atomic ptm (fun tx ->
              match op with
              | 0 ->
                ignore (Plist.insert tx l ~key ~value:i);
                m := M.add key i !m
              | 1 ->
                if Plist.find tx l key <> M.find_opt key !m then failwith "find mismatch"
              | _ ->
                if Plist.remove tx l key <> M.mem key !m then failwith "remove mismatch";
                m := M.remove key !m))
        ops;
      Plist.to_alist l = M.bindings !m)

(* ---------- queue ---------- *)

let test_queue_fifo () =
  let _, _, ptm = fixture () in
  let q = Pqueue.create ptm in
  Ptm.atomic ptm (fun tx ->
      Helpers.check_bool "empty" true (Pqueue.is_empty tx q);
      List.iter (Pqueue.enqueue tx q) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Pqueue.to_list q);
  Ptm.atomic ptm (fun tx ->
      Alcotest.(check (option int)) "deq 1" (Some 1) (Pqueue.dequeue tx q);
      Alcotest.(check (option int)) "deq 2" (Some 2) (Pqueue.dequeue tx q);
      Pqueue.enqueue tx q 4;
      Alcotest.(check (option int)) "deq 3" (Some 3) (Pqueue.dequeue tx q);
      Alcotest.(check (option int)) "deq 4" (Some 4) (Pqueue.dequeue tx q);
      Alcotest.(check (option int)) "deq empty" None (Pqueue.dequeue tx q);
      Helpers.check_bool "empty again" true (Pqueue.is_empty tx q))

let test_queue_concurrent_producers () =
  let sim, _, ptm = fixture () in
  let q = Pqueue.create ptm in
  Helpers.run_workers sim 4 (fun tid ->
      for i = 0 to 49 do
        Ptm.atomic ptm (fun tx -> Pqueue.enqueue tx q ((tid * 100) + i))
      done);
  let all = Pqueue.to_list q in
  Helpers.check_int "all enqueued" 200 (List.length all);
  (* Per-producer subsequences must stay FIFO. *)
  let per_tid tid = List.filter (fun v -> v / 100 = tid) all in
  for tid = 0 to 3 do
    let got = per_tid tid in
    Helpers.check_bool
      (Printf.sprintf "producer %d order preserved" tid)
      true
      (got = List.sort compare got)
  done

let test_queue_crash_consistency () =
  let sim, _, ptm = fixture () in
  let q = Pqueue.create ptm in
  Ptm.root_set ptm 0 (Pqueue.descriptor q);
  Sim.persist_all sim;
  (* One producer, one consumer; every value flows through exactly once. *)
  Helpers.run_workers sim 2 ~crash_at:200_000 (fun tid ->
      let rng = Repro_util.Rng.create tid in
      if tid = 0 then
        for i = 1 to 10_000 do
          Ptm.atomic ptm (fun tx -> Pqueue.enqueue tx q i)
        done
      else
        for _ = 1 to 10_000 do
          ignore (Ptm.atomic ptm (fun tx -> Pqueue.dequeue tx q));
          ignore (Repro_util.Rng.next rng)
        done);
  let _sim', _m', ptm' = Helpers.reboot_and_recover sim in
  let q' = Pqueue.attach ptm' (Ptm.root_get ptm' 0) in
  (* Remaining contents are a contiguous ascending run. *)
  let rest = Pqueue.to_list q' in
  let rec contiguous = function
    | a :: (b :: _ as tl) -> b = a + 1 && contiguous tl
    | _ -> true
  in
  Helpers.check_bool "queue survives as contiguous run" true (contiguous rest)

let suite =
  [
    Alcotest.test_case "btree: insert/lookup" `Quick test_btree_insert_lookup;
    Alcotest.test_case "btree: upsert" `Quick test_btree_update_in_place;
    Alcotest.test_case "btree: splits at scale" `Quick test_btree_many_keys_splits;
    Alcotest.test_case "btree: remove" `Quick test_btree_remove;
    Alcotest.test_case "btree: min binding" `Quick test_btree_min_binding;
    prop_btree_matches_map;
    Alcotest.test_case "btree: concurrent inserts" `Quick test_btree_concurrent_inserts;
    Alcotest.test_case "btree: crash consistency" `Quick test_btree_crash_consistency;
    Alcotest.test_case "hash: put/get/remove" `Quick test_hash_put_get_remove;
    Alcotest.test_case "hash: bucket rounding" `Quick test_hash_bucket_rounding;
    Alcotest.test_case "hash: collision chains" `Quick test_hash_chains_cover_collisions;
    prop_hash_matches_hashtbl;
    Alcotest.test_case "hash: concurrent puts" `Quick test_hash_concurrent_disjoint;
    Alcotest.test_case "list: sorted semantics" `Quick test_list_sorted_semantics;
    prop_list_matches_map;
    Alcotest.test_case "queue: FIFO" `Quick test_queue_fifo;
    Alcotest.test_case "queue: concurrent producers" `Quick test_queue_concurrent_producers;
    Alcotest.test_case "queue: crash consistency" `Quick test_queue_crash_consistency;
  ]
