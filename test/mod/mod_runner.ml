(* MOD algorithm-column gate, wired into tier-1 `dune runtest` and, in
   full-measurement form, `dune build @mod`.

   Fast mode (default) reruns the `algorithms` experiment at quick
   size and holds it to three promises:

   1. Shape: every (workload x algorithm x model) cell is present —
      in particular the ten `mod` rows next to redo and undo.
   2. Crossover: from the profiler telemetry, MOD commits with fewer
      fences per commit than redo on ADR (the one-fence discipline),
      and with exactly zero fences on the eADR-class domains where its
      ordering advantage collapses.
   3. Regression: the freshly produced record must pass
      `Bench_json.regress` against the committed BENCH_algorithms.json
      baseline (simulation is deterministic, so any drift is a code
      change that must re-bless the baseline deliberately).

   MOD_FULL=1 (set by the @mod alias) reruns at full measurement size;
   the committed baseline is quick-sized, so full mode keeps the shape
   and crossover checks but skips the byte-level regress.  Both modes
   are held to a wall-clock budget (MOD_BUDGET_S overrides: 120 s
   fast, 900 s full). *)

module Driver = Workloads.Driver
module Experiments = Workloads.Experiments
module J = Workloads.Bench_json
module Profile = Pstm.Profile

let full =
  match Sys.getenv_opt "MOD_FULL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let budget_s =
  match Sys.getenv_opt "MOD_BUDGET_S" with
  | Some s when String.trim s <> "" -> (
    match float_of_string_opt (String.trim s) with
    | Some b when b > 0.0 -> b
    | _ ->
      Printf.eprintf "MOD_BUDGET_S: not a positive number: %S\n%!" s;
      exit 2)
  | _ -> if full then 900.0 else 120.0

let failed = ref 0

let check name ok =
  if not ok then begin
    incr failed;
    Printf.printf "FAIL %s\n%!" name
  end

let fences_per_commit r =
  match r.Driver.telemetry with
  | None -> nan
  | Some cap ->
    let p = Telemetry.profile cap in
    let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 (Profile.tids p) in
    let fences =
      sum (fun ~tid ->
          List.fold_left (fun acc ph -> acc + Profile.phase_fences p ~tid ph) 0
            Profile.all_phases)
    in
    float_of_int fences /. float_of_int (max 1 (sum (Profile.commits p)))

let () =
  let baseline_path = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let t0 = Unix.gettimeofday () in
  let quick = not full in
  let outcome = (List.assoc "algorithms" Experiments.all) ~quick () in
  let results = outcome.Experiments.results in
  let find workload algorithm model =
    List.find_opt
      (fun r ->
        r.Driver.workload = workload && r.Driver.algorithm = algorithm
        && r.Driver.model = model)
      results
  in
  (* 1 — shape: the full grid, mod rows included. *)
  check "grid: 30 cells" (List.length results = 30);
  List.iter
    (fun workload ->
      List.iter
        (fun algorithm ->
          List.iter
            (fun model ->
              match find workload algorithm model with
              | None ->
                check (Printf.sprintf "cell %s/%s/%s present" workload algorithm model) false
              | Some r ->
                check
                  (Printf.sprintf "cell %s/%s/%s committed work" workload algorithm model)
                  (r.Driver.commits > 0))
            [ "optane-adr"; "optane-eadr"; "transient-cache"; "pdram"; "pdram-lite" ])
        [ "redo"; "undo"; "mod" ])
    [ "mod-btree"; "mod-hash" ];
  (* 2 — the ordering-economy crossover. *)
  List.iter
    (fun workload ->
      let fpc alg model =
        match find workload alg model with Some r -> fences_per_commit r | None -> nan
      in
      let mod_adr = fpc "mod" "optane-adr" and redo_adr = fpc "redo" "optane-adr" in
      check
        (Printf.sprintf "%s: mod fences/commit <= 1 on ADR (got %.2f)" workload mod_adr)
        (Float.is_finite mod_adr && mod_adr <= 1.0 +. 1e-9);
      check
        (Printf.sprintf "%s: mod beats redo's fence count on ADR (%.2f vs %.2f)" workload
           mod_adr redo_adr)
        (Float.is_finite redo_adr && mod_adr < redo_adr);
      List.iter
        (fun model ->
          let f = fpc "mod" model in
          check
            (Printf.sprintf "%s: mod fences collapse to 0 on %s (got %.2f)" workload model f)
            (f = 0.0))
        [ "optane-eadr"; "transient-cache" ])
    [ "mod-btree"; "mod-hash" ];
  (* 3 — regression sentinel against the committed baseline. *)
  (match (baseline_path, quick) with
  | Some path, true ->
    let tmp = Filename.temp_file "mod_gate" ".d" in
    Sys.remove tmp;
    let wall_s = Unix.gettimeofday () -. t0 in
    let fresh =
      J.write ~dir:tmp ~experiment:"algorithms" ~quick:true ~jobs:1 ~wall_s results
    in
    (match
       J.regress ~baseline:(J.parse_file path) ~current:(J.parse_file fresh) ()
     with
    | findings ->
      let regressions =
        List.filter (fun f -> f.J.f_severity = J.Regression) findings
      in
      List.iter
        (fun f -> Printf.printf "  regress %s: %s\n" f.J.f_path f.J.f_detail)
        regressions;
      check "regress vs committed BENCH_algorithms.json" (regressions = [])
    | exception J.Parse_error msg ->
      check (Printf.sprintf "regress: parse (%s)" msg) false);
    Sys.remove fresh;
    (try Unix.rmdir tmp with Unix.Unix_error _ -> ())
  | Some _, false -> () (* full-size run; the committed baseline is quick-sized *)
  | None, _ -> check "baseline path given" false);
  let elapsed = Unix.gettimeofday () -. t0 in
  let mode = if full then "full" else "fast" in
  if !failed > 0 then begin
    Printf.printf "mod(%s): %d check(s) FAILED in %.1fs\n%!" mode !failed elapsed;
    exit 1
  end
  else if elapsed > budget_s then begin
    Printf.printf "mod(%s): all checks passed but %.1fs exceeds the %.0fs budget\n%!" mode
      elapsed budget_s;
    exit 1
  end
  else Printf.printf "mod(%s): all checks passed in %.1fs (budget %.0fs)\n%!" mode elapsed budget_s
