open Repro_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Helpers.check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_split_independent () =
  let g = Rng.create 7 in
  let a = Rng.split g and b = Rng.split g in
  let xs = List.init 32 (fun _ -> Rng.next a) in
  let ys = List.init 32 (fun _ -> Rng.next b) in
  Helpers.check_bool "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let g = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    Helpers.check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let g = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.int_in g 5 9 in
    Helpers.check_bool "inclusive range" true (v >= 5 && v <= 9)
  done

let test_rng_chance_extremes () =
  let g = Rng.create 3 in
  for _ = 1 to 100 do
    Helpers.check_bool "p=1 always true" true (Rng.chance g 1.0);
    Helpers.check_bool "p=0 always false" false (Rng.chance g 0.0)
  done

let test_rng_shuffle_permutes () =
  let g = Rng.create 4 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

let test_zipf_range () =
  let z = Zipf.create 1000 in
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Zipf.sample z g in
    Helpers.check_bool "rank in range" true (v >= 0 && v < 1000)
  done

let test_zipf_skew () =
  let z = Zipf.create ~theta:0.99 1000 in
  let g = Rng.create 6 in
  let hits = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let v = Zipf.sample z g in
    hits.(v) <- hits.(v) + 1
  done;
  Helpers.check_bool "rank 0 much hotter than rank 500" true (hits.(0) > 10 * (hits.(500) + 1))

let test_zipf_uniform_theta0 () =
  let z = Zipf.create ~theta:0.0 4 in
  let g = Rng.create 7 in
  let hits = Array.make 4 0 in
  for _ = 1 to 40_000 do
    hits.(Zipf.sample z g) <- hits.(Zipf.sample z g) + 1
  done;
  Array.iter
    (fun h -> Helpers.check_bool "roughly uniform" true (h > 8_000 && h < 12_000))
    hits

let test_stats_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_stats_counter () =
  let c = Stats.counter () in
  List.iter (Stats.add c) [ 3.0; 1.0; 2.0 ];
  Helpers.check_int "count" 3 (Stats.count c);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Stats.total c);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum c);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.maximum c);
  Alcotest.(check (float 1e-9)) "avg" 2.0 (Stats.average c)

let test_min_heap_orders () =
  let h = Min_heap.create () in
  List.iter (fun k -> Min_heap.push h ~key:k k) [ 5; 1; 4; 1; 3 ];
  let out = List.init 5 (fun _ -> match Min_heap.pop h with Some (k, _) -> k | None -> -1) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] out

let test_min_heap_fifo_ties () =
  let h = Min_heap.create () in
  Min_heap.push h ~key:1 "a";
  Min_heap.push h ~key:1 "b";
  Min_heap.push h ~key:1 "c";
  let order = List.init 3 (fun _ -> match Min_heap.pop h with Some (_, v) -> v | None -> "") in
  Alcotest.(check (list string)) "FIFO among equal keys" [ "a"; "b"; "c" ] order

let prop_min_heap_sorts =
  Helpers.qtest "min_heap sorts any list" QCheck2.Gen.(list small_int) (fun xs ->
      let h = Min_heap.create () in
      List.iter (fun x -> Min_heap.push h ~key:x x) xs;
      let rec drain acc =
        match Min_heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* Min_heap's only remaining job: differential oracle for the
   scheduler's Int_heap.  Drive both with the same interleaved
   push/pop sequence and require identical (key, payload) pop orders —
   including the FIFO tie-break determinism rests on. *)
let prop_int_heap_matches_min_heap =
  let op_gen = QCheck2.Gen.(oneof [ map (fun k -> Some k) (int_range 0 50); return None ]) in
  Helpers.qtest "int_heap differentially equals min_heap (oracle)"
    QCheck2.Gen.(list op_gen)
    (fun ops ->
      let oracle = Min_heap.create () in
      let subject = Int_heap.create () in
      let payload = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some key ->
            incr payload;
            Min_heap.push oracle ~key !payload;
            Int_heap.push subject ~key !payload;
            true
          | None -> (
            match (Min_heap.pop oracle, Int_heap.pop subject) with
            | None, got -> got = -1
            | Some (k, v), got -> got = v && Int_heap.last_key subject = k))
        ops
      && begin
           (* Drain whatever is left; orders must agree to the end. *)
           let rec drain () =
             match (Min_heap.pop oracle, Int_heap.pop subject) with
             | None, got -> got = -1
             | Some (k, v), got ->
               got = v && Int_heap.last_key subject = k && drain ()
           in
           drain ()
         end)

let test_lru_eviction_order () =
  let lru = Lru.create ~capacity:2 in
  ignore (Lru.touch lru 1 ~dirty:false);
  ignore (Lru.touch lru 2 ~dirty:false);
  ignore (Lru.touch lru 1 ~dirty:false);
  (* LRU is now 2 *)
  (match Lru.touch lru 3 ~dirty:false with
  | `Miss (Some { Lru.key; _ }) -> Helpers.check_int "evicts LRU" 2 key
  | `Miss None | `Hit -> Alcotest.fail "expected eviction of key 2");
  Helpers.check_bool "1 still resident" true (Lru.mem lru 1)

let test_lru_dirty_tracking () =
  let lru = Lru.create ~capacity:4 in
  ignore (Lru.touch lru 1 ~dirty:true);
  ignore (Lru.touch lru 2 ~dirty:false);
  ignore (Lru.touch lru 2 ~dirty:true);
  ignore (Lru.touch lru 3 ~dirty:false);
  let dirty = List.sort compare (Lru.dirty_keys lru) in
  Alcotest.(check (list int)) "dirty keys" [ 1; 2 ] dirty

let test_lru_dirty_eviction_reported () =
  let lru = Lru.create ~capacity:1 in
  ignore (Lru.touch lru 9 ~dirty:true);
  match Lru.touch lru 8 ~dirty:false with
  | `Miss (Some { Lru.key; dirty }) ->
    Helpers.check_int "victim" 9 key;
    Helpers.check_bool "victim dirty" true dirty
  | `Miss None | `Hit -> Alcotest.fail "expected dirty eviction"

let prop_lru_capacity_respected =
  Helpers.qtest "lru never exceeds capacity" QCheck2.Gen.(list (int_bound 50)) (fun keys ->
      let lru = Lru.create ~capacity:8 in
      List.iter (fun k -> ignore (Lru.touch lru k ~dirty:false)) keys;
      Lru.size lru <= 8)

let test_int_vec_push_get () =
  let v = Int_vec.create ~capacity:1 () in
  for i = 0 to 99 do
    Int_vec.push v (i * i)
  done;
  Helpers.check_int "length" 100 (Int_vec.length v);
  Helpers.check_int "get 7" 49 (Int_vec.get v 7);
  Int_vec.clear v;
  Helpers.check_int "cleared" 0 (Int_vec.length v)

let test_int_vec_rev_pairs () =
  let v = Int_vec.create () in
  List.iter (Int_vec.push v) [ 1; 10; 2; 20; 3; 30 ];
  let seen = ref [] in
  Int_vec.iter_rev_pairs (fun a b -> seen := (a, b) :: !seen) v;
  Alcotest.(check (list (pair int int)))
    "reverse pair order" [ (1, 10); (2, 20); (3, 30) ] !seen

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.record h v
  done;
  Helpers.check_int "count" 1000 (Histogram.count h);
  let p50 = Histogram.percentile h 50.0 in
  Helpers.check_bool "p50 near 500" true (p50 > 450.0 && p50 < 550.0);
  let p99 = Histogram.percentile h 99.0 in
  Helpers.check_bool "p99 near 990" true (p99 > 930.0 && p99 <= 1024.0);
  Helpers.check_int "max" 1000 (Histogram.max_value h);
  Alcotest.(check (float 1.0)) "mean" 500.5 (Histogram.mean h)

let test_histogram_bounded_error () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 17; 123_456; 9_999_999 ];
  (* Every recorded value's bucket representative is within 1/16. *)
  List.iter
    (fun v ->
      let h1 = Histogram.create () in
      Histogram.record h1 v;
      let rep = Histogram.percentile h1 50.0 in
      Helpers.check_bool
        (Printf.sprintf "value %d within bucket error (rep %.0f)" v rep)
        true
        (Float.abs (rep -. float_of_int v) /. float_of_int v < 0.08))
    [ 17; 123_456; 9_999_999 ]

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 10;
  Histogram.record b 1000;
  Histogram.merge_into ~src:a ~dst:b;
  Helpers.check_int "merged count" 2 (Histogram.count b);
  Helpers.check_int "merged max" 1000 (Histogram.max_value b)

let test_histogram_merge_fresh () =
  (* Empty ⊕ empty is empty; empty ⊕ x is x; inputs are untouched. *)
  let e = Histogram.merge (Histogram.create ()) (Histogram.create ()) in
  Helpers.check_int "empty+empty count" 0 (Histogram.count e);
  let a = Histogram.create () in
  List.iter (Histogram.record a) [ 5; 50; 500 ];
  let m = Histogram.merge (Histogram.create ()) a in
  Helpers.check_int "empty+a count" 3 (Histogram.count m);
  Helpers.check_int "empty+a max" 500 (Histogram.max_value m);
  Alcotest.(check (float 1e-9))
    "identity percentiles" (Histogram.percentile a 50.0) (Histogram.percentile m 50.0);
  Histogram.record m 5000;
  Helpers.check_int "src untouched" 3 (Histogram.count a)

let test_histogram_merge_disjoint () =
  (* Mismatched occupied buckets: a holds small values, b large ones. *)
  let a = Histogram.create () and b = Histogram.create () in
  for v = 1 to 100 do
    Histogram.record a v
  done;
  for v = 1_000_000 to 1_000_100 do
    Histogram.record b v
  done;
  let m = Histogram.merge a b in
  Helpers.check_int "count" 201 (Histogram.count m);
  Helpers.check_bool "p25 from a" true (Histogram.percentile m 25.0 < 200.0);
  Helpers.check_bool "p75 from b" true (Histogram.percentile m 75.0 > 500_000.0);
  Helpers.check_int "max from b" (Histogram.max_value b) (Histogram.max_value m)

let test_histogram_merge_list () =
  let mk vs =
    let h = Histogram.create () in
    List.iter (Histogram.record h) vs;
    h
  in
  Helpers.check_int "merge_list [] empty" 0 (Histogram.count (Histogram.merge_list []));
  let m = Histogram.merge_list [ mk [ 1; 2 ]; Histogram.create (); mk [ 30 ] ] in
  Helpers.check_int "merge_list count" 3 (Histogram.count m);
  Helpers.check_int "merge_list max" 30 (Histogram.max_value m)

let test_stats_counter_merge () =
  let a = Stats.counter () and b = Stats.counter () in
  List.iter (Stats.add a) [ 3.0; 1.0 ];
  List.iter (Stats.add b) [ 10.0 ];
  let m = Stats.merge a b in
  Helpers.check_int "count" 3 (Stats.count m);
  Alcotest.(check (float 1e-9)) "total" 14.0 (Stats.total m);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum m);
  Alcotest.(check (float 1e-9)) "max" 10.0 (Stats.maximum m);
  (* Merging an empty counter is the identity. *)
  let id = Stats.merge a (Stats.counter ()) in
  Helpers.check_int "id count" 2 (Stats.count id);
  Alcotest.(check (float 1e-9)) "id total" 4.0 (Stats.total id);
  Alcotest.(check (float 1e-9)) "id min" 1.0 (Stats.minimum id);
  Alcotest.(check (float 1e-9)) "id max" 3.0 (Stats.maximum id);
  (* Inputs untouched. *)
  Helpers.check_int "a untouched" 2 (Stats.count a);
  Helpers.check_int "b untouched" 1 (Stats.count b)

let test_table_cell_f_nonfinite () =
  Alcotest.(check string) "nan" "-" (Table.cell_f Float.nan);
  Alcotest.(check string) "inf" "-" (Table.cell_f Float.infinity);
  Alcotest.(check string) "-inf" "-" (Table.cell_f Float.neg_infinity);
  Alcotest.(check string) "finite" "1.50" (Table.cell_f 1.5)

let test_histogram_empty () =
  let h = Histogram.create () in
  Helpers.check_bool "empty percentile nan" true (Float.is_nan (Histogram.percentile h 50.0));
  Helpers.check_bool "empty mean nan" true (Float.is_nan (Histogram.mean h))

let test_histogram_single_sample () =
  (* One sample: every percentile must report that sample (within the
     bucket's relative error), and mean == max == the sample. *)
  let h = Histogram.create () in
  Histogram.record h 12_345;
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      Helpers.check_bool
        (Printf.sprintf "p%.0f close to sample" p)
        true
        (Float.abs (v -. 12_345.0) /. 12_345.0 < 0.05))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ];
  Helpers.check_int "single max" 12_345 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "single mean" 12_345.0 (Histogram.mean h)

let test_histogram_saturates () =
  (* Values at the top of the int range must land in the last bucket,
     not trap or wrap; max_int is 2^62 - 1, the largest OCaml int. *)
  let h = Histogram.create () in
  Histogram.record h max_int;
  Histogram.record h (max_int - 1);
  Histogram.record h 1;
  Helpers.check_int "count" 3 (Histogram.count h);
  Helpers.check_int "max saturates" max_int (Histogram.max_value h);
  Helpers.check_bool "p99 is huge" true (Histogram.percentile h 99.0 > 1e18);
  Helpers.check_bool "p0 is small" true (Histogram.percentile h 0.0 < 2.0)

let test_histogram_merge_list_identity () =
  (* merge_list [h] reproduces h exactly: same count, max and
     percentile curve. *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3; 33; 333; 3_333 ];
  let m = Histogram.merge_list [ h ] in
  Helpers.check_int "identity count" (Histogram.count h) (Histogram.count m);
  Helpers.check_int "identity max" (Histogram.max_value h) (Histogram.max_value m);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "identity p%.0f" p)
        (Histogram.percentile h p) (Histogram.percentile m p))
    [ 25.0; 50.0; 95.0; 99.0 ]

let test_histogram_percentile_monotone () =
  (* p50 <= p95 <= p99 <= max on an adversarial skewed sample. *)
  let h = Histogram.create () in
  for i = 1 to 500 do
    Histogram.record h i;
    Histogram.record h (i * i)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p95 = Histogram.percentile h 95.0 in
  let p99 = Histogram.percentile h 99.0 in
  Helpers.check_bool "p50 <= p95" true (p50 <= p95);
  Helpers.check_bool "p95 <= p99" true (p95 <= p99);
  Helpers.check_bool "p99 <= max" true (p99 <= float_of_int (Histogram.max_value h) *. 1.05)

let test_table_render_and_csv () =
  let t = Table.create ~title:"demo" ~header:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "3" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "a,b\n1,2\n3,\n" csv

let suite =
  [
    Alcotest.test_case "rng: determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: int_in bounds" `Quick test_rng_int_in;
    Alcotest.test_case "rng: chance extremes" `Quick test_rng_chance_extremes;
    Alcotest.test_case "rng: shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "zipf: sample range" `Quick test_zipf_range;
    Alcotest.test_case "zipf: skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf: theta=0 uniform" `Quick test_zipf_uniform_theta0;
    Alcotest.test_case "stats: mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats: percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats: counter" `Quick test_stats_counter;
    Alcotest.test_case "min_heap: ordering" `Quick test_min_heap_orders;
    Alcotest.test_case "min_heap: FIFO ties" `Quick test_min_heap_fifo_ties;
    prop_min_heap_sorts;
    prop_int_heap_matches_min_heap;
    Alcotest.test_case "lru: eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru: dirty tracking" `Quick test_lru_dirty_tracking;
    Alcotest.test_case "lru: dirty eviction" `Quick test_lru_dirty_eviction_reported;
    prop_lru_capacity_respected;
    Alcotest.test_case "int_vec: push/get/clear" `Quick test_int_vec_push_get;
    Alcotest.test_case "int_vec: rev pairs" `Quick test_int_vec_rev_pairs;
    Alcotest.test_case "histogram: percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram: bounded error" `Quick test_histogram_bounded_error;
    Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram: merge fresh/identity" `Quick test_histogram_merge_fresh;
    Alcotest.test_case "histogram: merge disjoint buckets" `Quick test_histogram_merge_disjoint;
    Alcotest.test_case "histogram: merge_list" `Quick test_histogram_merge_list;
    Alcotest.test_case "histogram: single sample" `Quick test_histogram_single_sample;
    Alcotest.test_case "histogram: saturating values" `Quick test_histogram_saturates;
    Alcotest.test_case "histogram: merge_list identity" `Quick test_histogram_merge_list_identity;
    Alcotest.test_case "histogram: percentile monotone" `Quick test_histogram_percentile_monotone;
    Alcotest.test_case "stats: counter merge" `Quick test_stats_counter_merge;
    Alcotest.test_case "table: cell_f non-finite" `Quick test_table_cell_f_nonfinite;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "table: render/csv" `Quick test_table_render_and_csv;
  ]
