(* Trace gate: the observability promises behind `--trace`.

   1. Off-path cost is zero: a run with tracing enabled must leave the
      service's observable output (metrics JSONL + every reply byte)
      identical to a run with tracing disabled — recording spans reads
      the virtual clock, it never advances it.
   2. Spans are deterministic: the span-store digest is identical
      across repeat runs and across worker-pool sizes, clean and
      crashed.
   3. Accounting closes: on every durability domain, each request's
      exclusive span times sum exactly to its end-to-end latency
      (the generated fleet is single-key, so there is no overlap
      slack).
   4. The regression sentinel bites: `ptm_bench regress` must exit 0
      on an identical BENCH_trace.json and non-zero once a synthetic
      p99 regression is injected into the current copy.

   Usage: trace_gate.exe <path-to-ptm_bench.exe>  *)

module Service = Kvserve.Service
module Client = Kvserve.Client
module Config = Memsim.Config
module Trace = Telemetry.Trace
module J = Workloads.Bench_json

let failures = ref 0

let check label ok =
  if ok then Printf.printf "trace: %s ok\n%!" label
  else begin
    incr failures;
    Printf.printf "trace: %s FAILED\n%!" label
  end

let config model =
  {
    (Service.default_config model) with
    Service.shards = 2;
    prepopulate_items = 64;
    buckets_per_shard = 256;
    heap_words_per_shard = 1 lsl 17;
  }

let fleet =
  Client.generate ~seed:0x7ACE ~conns:3 ~requests_per_conn:20 ~items:64 ~value_bytes:32
    ~set_ratio:0.3 ~delete_ratio:0.05 ~incr_ratio:0.1 ~mean_gap_ns:1_500 ~theta:0.9 ()

let fingerprint cfg (r : Service.result) =
  Service.metrics_jsonl cfg r ^ String.concat "\x00" (Array.to_list r.Service.replies)

let digest_of (r : Service.result) =
  match r.Service.trace with
  | Some tr -> Trace.digest tr
  | None ->
    incr failures;
    Printf.printf "trace: enabled run returned no trace store\n%!";
    "<missing>"

let () =
  let bench_exe = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ptm_bench" in

  (* 1 — zero perturbation, clean and crashed. *)
  let off = config Config.optane_adr in
  let on = { off with Service.trace = true } in
  check "disabled vs enabled byte-identical (clean)"
    (String.equal
       (fingerprint off (Service.run ~jobs:1 off fleet))
       (fingerprint on (Service.run ~jobs:1 on fleet)));
  check "disabled vs enabled byte-identical (crash)"
    (String.equal
       (fingerprint off (Service.run ~jobs:1 ~crash_at:15_000 off fleet))
       (fingerprint on (Service.run ~jobs:1 ~crash_at:15_000 on fleet)));

  (* 2 — digest determinism across runs and pool sizes. *)
  let d1 = digest_of (Service.run ~jobs:1 on fleet) in
  let d2 = digest_of (Service.run ~jobs:1 on fleet) in
  let d3 = digest_of (Service.run ~jobs:2 on fleet) in
  check "digest stable across runs" (String.equal d1 d2);
  check "digest stable across jobs" (String.equal d1 d3);
  let c1 = digest_of (Service.run ~jobs:1 ~crash_at:15_000 on fleet) in
  let c2 = digest_of (Service.run ~jobs:2 ~crash_at:15_000 on fleet) in
  check "crash digest stable across jobs" (String.equal c1 c2);
  check "crash changes the span story" (not (String.equal d1 c1));

  (* 3 — accounting closes on every domain. *)
  List.iter
    (fun model ->
      let cfg = { (config model) with Service.trace = true } in
      let r = Service.run ~jobs:1 cfg fleet in
      match r.Service.trace with
      | None -> check (Printf.sprintf "%s: trace present" r.Service.model) false
      | Some tr ->
        let rows = Trace.accounting tr in
        let bad =
          List.filter (fun (_, latency, attributed) -> latency <> attributed) rows
        in
        check
          (Printf.sprintf "%s: %d requests, exclusive spans sum to latency" r.Service.model
             (List.length rows))
          (List.length rows = fleet.Client.requests && bad = []);
        let b = Trace.blame tr ~lo_pct:95.0 ~hi_pct:100.0 in
        check
          (Printf.sprintf "%s: tail blame attributes its band" r.Service.model)
          (b.Trace.brequests > 0 && b.Trace.battributed_ns = b.Trace.btotal_latency_ns))
    [ Config.dram_adr; Config.optane_adr; Config.optane_eadr; Config.pdram_lite ];

  (* 4 — the sentinel bites on an injected regression.  Build a real
     BENCH_trace.json record, then double every p99_ns in the copy. *)
  let outcome = Kvserve.Bench.run_trace ~quick:true ~jobs:1 () in
  let bench_json =
    J.outcome_json ~experiment:"trace" ~quick:true ~jobs:1 ~wall_s:1.0
      ~extra:outcome.Kvserve.Bench.extra []
  in
  let rec inflate = function
    | J.Obj kvs ->
      J.Obj
        (List.map
           (fun (k, v) ->
             match v with
             | J.Int n when k = "p99_ns" -> (k, J.Int (n * 2))
             | J.Float n when k = "p99_ns" -> (k, J.Float (n *. 2.0))
             | v -> (k, inflate v))
           kvs)
    | J.List vs -> J.List (List.map inflate vs)
    | leaf -> leaf
  in
  let write_tmp suffix json =
    let path = Filename.temp_file "trace_gate" suffix in
    let oc = open_out path in
    output_string oc (J.to_string json);
    close_out oc;
    path
  in
  let baseline = write_tmp "_base.json" bench_json in
  let same = write_tmp "_same.json" bench_json in
  let worse = write_tmp "_worse.json" (inflate bench_json) in
  let run_regress current =
    Sys.command
      (Filename.quote_command bench_exe
         [ "regress"; "-b"; baseline; "-c"; current ]
         ~stdout:Filename.null ~stderr:Filename.null)
  in
  check "regress: identical record passes" (run_regress same = 0);
  check "regress: injected p99 regression fails" (run_regress worse = 1);
  List.iter Sys.remove [ baseline; same; worse ];

  if !failures > 0 then begin
    Printf.printf "trace gate: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "trace gate: all checks passed"
