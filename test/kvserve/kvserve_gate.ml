(* kvserve determinism gate: the service promises byte-identical
   output for equal (config, fleet) inputs, no matter how many domains
   the per-shard cells ran on and no matter how often it is re-run.
   Render the quick bench sweep (working-set sizes x durability
   domains, plus the crash-recovery table — the full codec → router →
   batch → commit path) twice at --jobs 1 and once at --jobs 2 and
   compare byte for byte. *)

let render jobs =
  let outcome = Kvserve.Bench.run ~quick:true ~jobs () in
  String.concat "\n"
    (List.map
       (Format.asprintf "%a" Repro_util.Table.print)
       outcome.Kvserve.Bench.tables)

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let () =
  let reference = render 1 in
  let failures = ref 0 in
  let check label out =
    if String.equal reference out then
      Printf.printf "kvserve: %s byte-identical (%d bytes)\n%!" label (String.length out)
    else begin
      incr failures;
      let i = first_diff reference out in
      let context s =
        let lo = max 0 (i - 40) in
        String.sub s lo (min 80 (String.length s - lo))
      in
      Printf.printf "kvserve: %s DIFFERS at byte %d\n  ref: %S\n  got: %S\n%!" label i
        (context reference) (context out)
    end
  in
  check "second --jobs 1 run" (render 1);
  check "--jobs 2" (render 2);
  if !failures > 0 then exit 1
