(* Unit tests for the bounded domain pool behind the experiment layer:
   results come back in submission order, concurrency respects the
   [jobs] bound, worker exceptions propagate to the caller, and the
   degenerate batch shapes (empty, singleton) take the inline serial
   path. *)

module Pool = Parallel.Pool

let test_submission_order () =
  let n = 50 in
  let tasks = List.init n (fun i () -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares in submission order, jobs=%d" jobs)
        (List.init n (fun i -> i * i))
        (Pool.run ~jobs tasks))
    [ 1; 2; 4; 7 ]

let test_map () =
  Alcotest.(check (list string))
    "map preserves order" [ "0"; "1"; "2"; "3" ]
    (Pool.map ~jobs:3 string_of_int [ 0; 1; 2; 3 ])

let test_bounded_concurrency () =
  (* Track the high-water mark of simultaneously-running tasks; with
     [jobs] workers it can never exceed [jobs].  Tasks spin briefly so
     overlap is possible at all. *)
  let jobs = 3 in
  let running = Atomic.make 0 in
  let high_water = Atomic.make 0 in
  let rec bump_high_water v =
    let cur = Atomic.get high_water in
    if v > cur && not (Atomic.compare_and_set high_water cur v) then bump_high_water v
  in
  let task _ () =
    let v = 1 + Atomic.fetch_and_add running 1 in
    bump_high_water v;
    (* Busy-wait a little real time to give other workers a chance to
       overlap (no Domain.cpu_relax dependency; the loop is tiny). *)
    let fib = ref 1 and prev = ref 1 in
    for _ = 1 to 20_000 do
      let next = (!fib + !prev) land max_int in
      prev := !fib;
      fib := next
    done;
    ignore (Atomic.fetch_and_add running (-1));
    !fib
  in
  ignore (Pool.run ~jobs (List.init 24 task));
  let hw = Atomic.get high_water in
  Alcotest.(check bool)
    (Printf.sprintf "high-water %d <= jobs %d" hw jobs)
    true
    (hw >= 1 && hw <= jobs)

exception Boom of int

let test_exception_propagation () =
  (* The lowest-indexed failure is the one re-raised, and started tasks
     still finish (their effects are visible). *)
  let completed = Atomic.make 0 in
  let tasks =
    List.init 10 (fun i () ->
        if i = 4 then raise (Boom i)
        else begin
          ignore (Atomic.fetch_and_add completed 1);
          i
        end)
  in
  List.iter
    (fun jobs ->
      Atomic.set completed 0;
      match Pool.run ~jobs tasks with
      | _ -> Alcotest.failf "jobs=%d: expected Boom to propagate" jobs
      | exception Boom 4 -> ()
      | exception e ->
        Alcotest.failf "jobs=%d: expected Boom 4, got %s" jobs (Printexc.to_string e))
    [ 1; 2; 4 ];
  (* Serial run stops at the raise; tasks 0..3 completed. *)
  Atomic.set completed 0;
  ignore (match Pool.run ~jobs:1 tasks with _ -> () | exception Boom _ -> ());
  Alcotest.(check int) "serial stops at the failing task" 4 (Atomic.get completed)

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Pool.run: jobs must be >= 1")
    (fun () -> ignore (Pool.run ~jobs:0 [ (fun () -> ()) ]))

let test_chunking () =
  (* Batched claiming changes only which worker runs a task, never the
     reassembled order — including chunks that don't divide the batch,
     exceed it, or degenerate to the old one-at-a-time claiming. *)
  let n = 23 in
  let tasks = List.init n (fun i () -> i * 3) in
  let expect = List.init n (fun i -> i * 3) in
  List.iter
    (fun chunk ->
      Alcotest.(check (list int))
        (Printf.sprintf "order with chunk=%d" chunk)
        expect
        (Pool.run ~jobs:3 ~chunk tasks))
    [ 1; 2; 5; n; n + 40 ];
  Alcotest.check_raises "chunk=0 rejected" (Invalid_argument "Pool.run: chunk must be >= 1")
    (fun () -> ignore (Pool.run ~jobs:2 ~chunk:0 [ (fun () -> ()) ]));
  (* The lowest-indexed recorded failure still wins under batching. *)
  (match Pool.run ~jobs:2 ~chunk:4 (List.init 12 (fun i () -> if i >= 6 then raise (Boom i)))
   with
  | _ -> Alcotest.fail "expected Boom to propagate through chunked run"
  | exception Boom i ->
    Alcotest.(check bool) (Printf.sprintf "lowest recorded failure (Boom %d)" i) true (i >= 6));
  Alcotest.(check bool) "default_chunk >= 1" true (Pool.default_chunk ~n:0 ~jobs:4 >= 1);
  Alcotest.(check int) "default_chunk spreads four claims per worker" 4
    (Pool.default_chunk ~n:32 ~jobs:2)

let test_edges () =
  Alcotest.(check (list int)) "empty batch" [] (Pool.run ~jobs:4 []);
  Alcotest.(check (list int)) "empty batch, serial" [] (Pool.run ~jobs:1 []);
  Alcotest.(check (list int)) "single task" [ 42 ] (Pool.run ~jobs:4 [ (fun () -> 42) ]);
  (* jobs exceeding the task count is clamped, not an error. *)
  Alcotest.(check (list int))
    "jobs > tasks" [ 1; 2 ]
    (Pool.run ~jobs:64 [ (fun () -> 1); (fun () -> 2) ]);
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "submission order" `Quick test_submission_order;
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "bounded concurrency" `Quick test_bounded_concurrency;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "chunked claiming" `Quick test_chunking;
    Alcotest.test_case "edge shapes" `Quick test_edges;
  ]
