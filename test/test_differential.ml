(* Differential stress suite: randomized single-threaded transaction
   traces executed under every (algorithm, durability model, flush
   discipline) configuration must agree on the final user-visible heap,
   and coalescing must never add fence or clwb traffic.  The heavy
   fixed-seed slice also runs standalone as `dune build @differential`. *)

module Config = Memsim.Config

let check_seed_ok seed =
  match Difftest.check_seed seed with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* Same seed, same trace, same expected digest: the generator itself
   must be deterministic or replay lines are worthless. *)
let test_generator_deterministic () =
  let t1, d1 = Difftest.gen_trace 7 in
  let t2, d2 = Difftest.gen_trace 7 in
  Helpers.check_bool "traces identical" true (t1 = t2);
  Helpers.check_bool "digests identical" true (Difftest.digest_equal d1 d2)

(* A transaction ending in a user abort must leave no residue in any
   configuration — exercised here with a hand-built trace whose only
   transaction allocates, writes and then aborts. *)
let test_abort_leaves_nothing () =
  let trace =
    {
      Difftest.slots = 2;
      txns =
        [
          [
            Difftest.Alloc { slot = 0; words = 3 };
            Difftest.Write { slot = 0; off = 1; value = 42 };
            Difftest.Abort;
          ];
        ];
    }
  in
  List.iter
    (fun (name, model, algorithm, coalesce) ->
      let o = Difftest.execute ~model ~algorithm ~coalesce trace in
      Helpers.check_bool
        (Printf.sprintf "%s: slot empty after aborted alloc" name)
        true
        (Array.for_all (( = ) None) o.Difftest.digest))
    Difftest.matrix

(* The acceptance numbers for the default bank-like shape: under ADR
   with redo logging, a commit-time-coalesced trace spends fewer total
   fences than the per-entry discipline whenever at least one
   transaction with writes commits. *)
let test_adr_redo_fence_gap () =
  let trace, _ = Difftest.gen_trace ~txns:30 11 in
  let c =
    Difftest.execute ~model:Config.optane_adr ~algorithm:Pstm.Ptm.Redo ~coalesce:true trace
  in
  let n =
    Difftest.execute ~model:Config.optane_adr ~algorithm:Pstm.Ptm.Redo ~coalesce:false trace
  in
  Helpers.check_bool "some transactions committed" true (c.Difftest.commits > 1);
  Helpers.check_bool
    (Printf.sprintf "coalesced fences %d < naive %d" c.Difftest.sfences n.Difftest.sfences)
    true
    (c.Difftest.sfences < n.Difftest.sfences);
  Helpers.check_bool
    (Printf.sprintf "coalesced clwbs %d <= naive %d" c.Difftest.clwbs n.Difftest.clwbs)
    true
    (c.Difftest.clwbs <= n.Difftest.clwbs)

let qcheck_matrix =
  Helpers.qtest ~count:25 "random seeds agree across the matrix"
    QCheck2.Gen.(map (fun n -> 1 + (n land 0xFFFF)) int)
    (fun seed ->
      match Difftest.check_seed ~txns:20 seed with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

let suite =
  [
    Alcotest.test_case "generator is deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "aborted transactions leave nothing" `Quick test_abort_leaves_nothing;
    Alcotest.test_case "ADR redo: coalesced beats naive fence count" `Quick
      test_adr_redo_fence_gap;
    Alcotest.test_case "fixed seed 1 agrees across the matrix" `Slow (fun () -> check_seed_ok 1);
    Alcotest.test_case "fixed seed 2 agrees across the matrix" `Slow (fun () -> check_seed_ok 2);
    qcheck_matrix;
  ]
