(* Command-line front end for the sharded persistent KV service
   (lib/kvserve): drive a deterministic client fleet through the full
   codec → router → batch → commit path on simulated persistent
   memory, optionally pulling the plug mid-run to exercise restart
   recovery.

     ptm_serve                                   # default run, summary
     ptm_serve --model pdram-lite --shards 8
     ptm_serve --crash-at 100000                 # crash + recover
     ptm_serve --metrics                         # JSONL service metrics
     ptm_serve --smoke                           # self-check, exit 0/1

   --smoke runs the end-to-end checks the verify workflow relies on:
   a crash + restart + recovery pass with every request answered
   exactly once, and a save-image / load-image round-trip including
   the torn-image (Corrupt_image) negative path. *)

module Config = Memsim.Config
module Sim = Memsim.Sim
module Ptm = Pstm.Ptm
module Service = Kvserve.Service
module Client = Kvserve.Client
module Store = Kvserve.Store
module Protocol = Kvserve.Protocol

let model = ref Config.optane_adr
let shards = ref 4
let conns = ref 8
let requests = ref 200
let crash_at = ref None
let jobs = ref None
let seed = ref 0x5EED
let metrics = ref false
let prometheus = ref false
let trace_out = ref None
let smoke = ref false

let usage () =
  prerr_endline
    "usage: ptm_serve [--model NAME] [--shards N] [--conns N] [--requests N]\n\
    \                 [--crash-at NS] [--jobs N] [--seed N] [--metrics] [--prometheus]\n\
    \                 [--trace FILE] [--smoke]";
  exit 2

let rec parse = function
  | [] -> ()
  | "--model" :: name :: rest ->
    (try model := Config.model_of_name name
     with Invalid_argument msg ->
       prerr_endline msg;
       exit 2);
    parse rest
  | "--shards" :: n :: rest ->
    shards := int_of_string n;
    parse rest
  | "--conns" :: n :: rest ->
    conns := int_of_string n;
    parse rest
  | "--requests" :: n :: rest ->
    requests := int_of_string n;
    parse rest
  | "--crash-at" :: n :: rest ->
    crash_at := Some (int_of_string n);
    parse rest
  | "--jobs" :: n :: rest ->
    jobs := Some (int_of_string n);
    parse rest
  | "--seed" :: n :: rest ->
    seed := int_of_string n;
    parse rest
  | "--metrics" :: rest ->
    metrics := true;
    parse rest
  | "--prometheus" :: rest ->
    prometheus := true;
    parse rest
  | "--trace" :: path :: rest ->
    trace_out := Some path;
    parse rest
  | "--smoke" :: rest ->
    smoke := true;
    parse rest
  | _ -> usage ()

let fleet ~conns ~requests_per_conn ~items =
  Client.generate ~seed:!seed ~conns ~requests_per_conn ~items ~value_bytes:64
    ~set_ratio:0.25 ~delete_ratio:0.03 ~incr_ratio:0.07 ~mean_gap_ns:2_000 ~theta:0.8 ()

let serve () =
  let cfg =
    {
      (Service.default_config !model) with
      Service.shards = !shards;
      seed = !seed;
      trace = !trace_out <> None;
    }
  in
  let fl =
    fleet ~conns:!conns ~requests_per_conn:(!requests / max 1 !conns)
      ~items:cfg.Service.prepopulate_items
  in
  let r = Service.run ?jobs:!jobs ?crash_at:!crash_at cfg fl in
  (match (!trace_out, r.Service.trace) with
  | Some path, Some tr ->
    let oc = open_out path in
    output_string oc (Telemetry.Trace.chrome_trace tr);
    close_out oc;
    Printf.printf "request trace (%d spans) written to %s — open in ui.perfetto.dev\n"
      (Telemetry.Trace.length tr) path
  | Some _, None -> prerr_endline "no trace recorded"
  | None, _ -> ());
  if !metrics then print_string (Service.metrics_jsonl cfg r)
  else if !prometheus then
    print_string (Telemetry.Registry.to_prometheus (Service.registry cfg r))
  else begin
    Printf.printf "model %s, %d shards, %d connections\n" r.Service.model cfg.Service.shards
      fl.Client.conns;
    Printf.printf "%d requests (%d kv ops, %d protocol errors) in %d virtual ns\n"
      r.Service.requests r.Service.kv_ops r.Service.protocol_errors r.Service.elapsed_ns;
    Printf.printf "%.0f ops/s, hit rate %.1f%%, shard imbalance %.2f\n" r.Service.ops_per_sec
      (100.0
      *. float_of_int r.Service.get_hits
      /. float_of_int (max 1 (r.Service.get_hits + r.Service.get_misses)))
      r.Service.imbalance;
    List.iter
      (fun (oc, h) ->
        if Repro_util.Histogram.count h > 0 then
          Printf.printf "  %-6s p50 %.0fns  p99 %.0fns  (%d)\n" (Service.opcode_name oc)
            (Repro_util.Histogram.percentile h 50.0)
            (Repro_util.Histogram.percentile h 99.0)
            (Repro_util.Histogram.count h))
      r.Service.latency;
    List.iter
      (fun rc ->
        Printf.printf
          "  shard %d recovered: %d log words scanned, marker %d, %d ops re-run, %dns modeled (%.2fms wall)\n"
          rc.Service.r_shard rc.Service.r_words_scanned rc.Service.r_durable_marker
          rc.Service.r_replayed_ops rc.Service.r_modeled_ns
          (float_of_int rc.Service.r_wall_ns /. 1e6))
      r.Service.recoveries
  end

(* ---------- smoke ---------- *)

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "smoke FAIL: %s\n%!" label
  end

let smoke_service () =
  let cfg =
    {
      (Service.default_config Config.optane_adr) with
      Service.shards = 2;
      prepopulate_items = 64;
      heap_words_per_shard = 1 lsl 17;
      buckets_per_shard = 256;
    }
  in
  let fl = fleet ~conns:3 ~requests_per_conn:25 ~items:64 in
  let run () = Service.run ~crash_at:15_000 cfg fl in
  let a = run () in
  let b = run () in
  check "crash observed" a.Service.crashed;
  check "recovery records present" (a.Service.recoveries <> []);
  check "every request answered" (a.Service.requests = fl.Client.requests);
  check "repeat run byte-identical"
    (Service.metrics_jsonl cfg a = Service.metrics_jsonl cfg b
    && a.Service.replies = b.Service.replies);
  (* Exactly-once across the crash: one connection incrementing one
     counter must end exactly at N, never short (lost commit), never
     past (double replay). *)
  let n = 40 in
  let bytes = Protocol.render_request (Protocol.Incr { key = Client.counter_of 0; delta = 1 }) in
  let incr_fleet =
    {
      Client.chunks =
        List.init n (fun i -> { Client.arrival_ns = 2_000 * (i + 1); conn = 0; bytes });
      conns = 1;
      requests = n;
      trace_ids = [||];
    }
  in
  let r = Service.run ~crash_at:40_000 cfg incr_fleet in
  let numbers =
    List.filter_map int_of_string_opt
      (List.map String.trim (String.split_on_char '\n' r.Service.replies.(0)))
  in
  check "incr: all answered" (List.length numbers = n);
  check "incr: exactly once" (List.fold_left (fun _ v -> v) 0 numbers = n);
  (* stats verb: a memcached `stats` line answered from the unified
     metrics registry — a STAT block naming the request counter. *)
  let stats_fleet =
    {
      Client.chunks =
        [ { Client.arrival_ns = 1_000; conn = 0; bytes = Protocol.render_request Protocol.Stats } ];
      conns = 1;
      requests = 1;
      trace_ids = [||];
    }
  in
  let sr = Service.run cfg stats_fleet in
  let reply = sr.Service.replies.(0) in
  let has_substring hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let ends_with suffix s =
    let ns = String.length s and nx = String.length suffix in
    ns >= nx && String.sub s (ns - nx) nx = suffix
  in
  check "stats verb: STAT block with END terminator"
    (has_substring reply "STAT kvserve_requests "
    && has_substring reply "STAT ptm_commits"
    && ends_with "END\r\n" reply)

let smoke_image () =
  let sim_cfg = Config.make ~heap_words:(1 lsl 16) ~track_media:true Config.optane_adr in
  let sim = Sim.create sim_cfg in
  let ptm = Ptm.create ~max_threads:1 ~log_words_per_thread:4096 (Sim.machine sim) in
  let store = Store.create ptm ~buckets:64 in
  Ptm.atomic ptm (fun tx ->
      Store.set tx store ~key:"alpha" ~flags:1 "first";
      Store.set tx store ~key:"beta" ~flags:2 "second");
  Sim.persist_all sim;
  let path = Filename.temp_file "ptm_serve_smoke" ".img" in
  Sim.save_image sim path;
  (* Round-trip: a fresh host process attaches the image and finds the
     data. *)
  let sim2 = Sim.load_image sim_cfg path in
  let ptm2 = Ptm.recover (Sim.machine sim2) in
  let store2 = Store.attach ptm2 in
  let ok =
    Ptm.atomic ptm2 (fun tx ->
        Store.get tx store2 "alpha" = Some (1, "first")
        && Store.get tx store2 "beta" = Some (2, "second"))
  in
  check "image round-trip preserves the store" ok;
  (* Torn image: truncate and expect the typed failure, not garbage. *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let payload = really_input_string ic (len / 2) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc payload;
  close_out oc;
  (match Sim.load_image sim_cfg path with
  | _ -> check "truncated image must raise Corrupt_image" false
  | exception Machine.Corrupt_image _ -> ()
  | exception _ -> check "truncated image raised the wrong exception" false);
  Sys.remove path;
  (* Missing image: restart code distinguishes "no image" from "torn
     image" by the exception. *)
  match Sim.load_image sim_cfg path with
  | _ -> check "missing image must raise Sys_error" false
  | exception Sys_error _ -> ()
  | exception _ -> check "missing image raised the wrong exception" false

let () =
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke then begin
    smoke_service ();
    smoke_image ();
    if !failures = 0 then print_endline "SMOKE OK"
    else begin
      Printf.printf "%d smoke check(s) failed\n" !failures;
      exit 1
    end
  end
  else serve ()
