(* Command-line front end for single experiments and custom runs.

     ptm_bench list
     ptm_bench run --workload tpcc-hash --model optane-adr --algorithm undo \
                   --threads 8 --duration-ms 3
     ptm_bench sweep --workload tatp --model pdram
     ptm_bench experiment fig4 --quick --csv out/

   [bench/main.exe] regenerates the full paper; this tool is for
   poking at individual configurations. *)

open Cmdliner

let workloads () =
  [
    ("bank", Workloads.Bank.spec);
    ("tatp", Workloads.Tatp.spec);
    ("tpcc-hash", Workloads.Tpcc.spec Workloads.Tpcc.Hash);
    ("tpcc-btree", Workloads.Tpcc.spec Workloads.Tpcc.Btree);
    ("btree-insert", Workloads.Btree_bench.insert_only);
    ("btree-mixed", Workloads.Btree_bench.mixed);
    ("vacation-low", Workloads.Vacation.spec Workloads.Vacation.Low);
    ("vacation-high", Workloads.Vacation.spec Workloads.Vacation.High);
    ("memcached", Workloads.Memcached.spec ~items:2_000);
    ("ycsb-a", Workloads.Ycsb.spec Workloads.Ycsb.A);
    ("ycsb-b", Workloads.Ycsb.spec Workloads.Ycsb.B);
    ("ycsb-c", Workloads.Ycsb.spec Workloads.Ycsb.C);
    ("ycsb-d", Workloads.Ycsb.spec Workloads.Ycsb.D);
    ("ycsb-e", Workloads.Ycsb.spec Workloads.Ycsb.E);
    ("ycsb-f", Workloads.Ycsb.spec Workloads.Ycsb.F);
    ("mod-btree", Workloads.Mod_bench.btree);
    ("mod-hash", Workloads.Mod_bench.hash);
  ]

let workload_conv =
  let parse s =
    match List.assoc_opt s (workloads ()) with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.fprintf ppf "%s" s.Workloads.Driver.name)

let model_conv =
  let parse s =
    match Memsim.Config.model_of_name s with
    | m -> Ok m
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" m.Memsim.Config.model_name)

let algorithm_conv =
  let parse = function
    | "redo" -> Ok Pstm.Ptm.Redo
    | "undo" -> Ok Pstm.Ptm.Undo
    | "htm" -> Ok Pstm.Ptm.Htm
    | "mod" -> Ok Pstm.Ptm.Mod
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S (redo|undo|htm|mod)" s))
  in
  Arg.conv (parse, fun ppf a -> Format.fprintf ppf "%s" (Pstm.Ptm.algorithm_name a))

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload (see $(b,list)).")

let model_arg =
  Arg.(
    value
    & opt model_conv Memsim.Config.optane_adr
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Durability/placement model: dram-adr, dram-eadr, optane-adr, optane-adr-nofence, \
              optane-eadr, pdram, pdram-lite, memory-mode.")

let algorithm_arg =
  Arg.(
    value
    & opt algorithm_conv Pstm.Ptm.Redo
    & info [ "a"; "algorithm" ] ~docv:"ALG"
        ~doc:
          "Algorithm: redo, undo, htm (eADR-class models only), or mod (minimally-ordered \
           durability; pair with the mod-* workloads to run the shadow structures).")

let threads_arg =
  Arg.(value & opt int 8 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Simulated threads.")

let duration_arg =
  Arg.(
    value
    & opt float 3.0
    & info [ "d"; "duration-ms" ] ~docv:"MS" ~doc:"Virtual measurement window.")

let no_coalesce_arg =
  Arg.(
    value
    & flag
    & info [ "no-coalesce" ]
        ~doc:
          "Disable the PTM's flush coalescing and commit pipelining: commits fall back to the \
           naive per-entry discipline (a clwb + fence per log entry and per written word).  For \
           A/B runs against the default coalesced path.")

(* Non-finite statistics (e.g. percentiles of an empty histogram)
   render as "-", never "nan". *)
let ns_cell v = if Float.is_finite v then Printf.sprintf "%.0fns" v else "-"

let print_result (r : Workloads.Driver.result) =
  Format.printf "workload   : %s@." r.Workloads.Driver.workload;
  Format.printf "model/alg  : %s / %s@." r.Workloads.Driver.model r.Workloads.Driver.algorithm;
  Format.printf "threads    : %d@." r.Workloads.Driver.threads;
  Format.printf "throughput : %.3f M tx/s@." (r.Workloads.Driver.txs_per_sec /. 1e6);
  Format.printf "commits    : %d@." r.Workloads.Driver.commits;
  Format.printf "aborts     : %d (%s commits/abort)@." r.Workloads.Driver.aborts
    (Repro_util.Table.cell_f r.Workloads.Driver.commits_per_abort);
  Format.printf "log size   : %d cache lines max@." r.Workloads.Driver.max_log_lines;
  let h = r.Workloads.Driver.latency in
  Format.printf "latency    : p50=%s p95=%s p99=%s mean=%s@."
    (ns_cell (Repro_util.Histogram.percentile h 50.0))
    (ns_cell (Repro_util.Histogram.percentile h 95.0))
    (ns_cell (Repro_util.Histogram.percentile h 99.0))
    (ns_cell (Repro_util.Histogram.mean h));
  let s = r.Workloads.Driver.sim in
  Format.printf "machine    : loads=%d stores=%d l3miss=%d clwb=%d sfence=%d@."
    s.Memsim.Sim.Stats.loads s.Memsim.Sim.Stats.stores s.Memsim.Sim.Stats.l3_misses
    s.Memsim.Sim.Stats.clwbs s.Memsim.Sim.Stats.sfences;
  Format.printf "             fence-wait=%dns wpq-stall=%dns nvm-reads=%d@."
    s.Memsim.Sim.Stats.fence_wait_ns s.Memsim.Sim.Stats.wpq_stall_ns s.Memsim.Sim.Stats.nvm_reads

let print_phase_table (p : Pstm.Profile.t) =
  let t =
    Repro_util.Table.create ~title:"phase profile (all threads)"
      ~header:[ "phase"; "count"; "total ns"; "fences"; "flushes"; "p50 ns"; "p95 ns" ]
  in
  let tids = Pstm.Profile.tids p in
  List.iter
    (fun phase ->
      let sum f = List.fold_left (fun acc tid -> acc + f ~tid phase) 0 tids in
      let count = sum (Pstm.Profile.phase_count p) in
      if count > 0 then begin
        let h = Pstm.Profile.merged_phase_hist p phase in
        Repro_util.Table.add_row t
          [
            Pstm.Profile.phase_name phase;
            string_of_int count;
            string_of_int (sum (Pstm.Profile.phase_ns p));
            string_of_int (sum (Pstm.Profile.phase_fences p));
            string_of_int (sum (Pstm.Profile.phase_flushes p));
            Repro_util.Table.cell_f (Repro_util.Histogram.percentile h 50.0);
            Repro_util.Table.cell_f (Repro_util.Histogram.percentile h 95.0);
          ]
      end)
    Pstm.Profile.all_phases;
  Format.printf "%a" Repro_util.Table.print t;
  let sum f = List.fold_left (fun acc tid -> acc + f ~tid) 0 tids in
  let fences_saved = sum (Pstm.Profile.fences_saved p) in
  let flushes_saved = sum (Pstm.Profile.flushes_saved p) in
  if fences_saved > 0 || flushes_saved > 0 then
    Format.printf "coalescing : saved %d fences, %d clwbs vs the naive per-entry path@."
      fences_saved flushes_saved

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Capture telemetry (phase profile, time series, Chrome trace) and write \
           $(i,DIR)/profile.jsonl, $(i,DIR)/series.csv and $(i,DIR)/trace.json.  Load the trace \
           at https://ui.perfetto.dev.  Output is bit-deterministic for a given configuration.")

let run_cmd =
  let run spec model algorithm threads duration_ms no_coalesce telemetry_dir =
    let duration_ns = int_of_float (duration_ms *. 1e6) in
    let telemetry =
      match telemetry_dir with None -> None | Some _ -> Some Telemetry.default_config
    in
    let r =
      Workloads.Driver.run ~duration_ns ~coalesce:(not no_coalesce) ?telemetry ~model ~algorithm
        ~threads spec
    in
    print_result r;
    match (telemetry_dir, r.Workloads.Driver.telemetry) with
    | Some dir, Some cap ->
      print_phase_table (Telemetry.profile cap);
      let meta =
        Workloads.Driver.run_meta r ~seed:Workloads.Driver.default_seed ~duration_ns
      in
      List.iter (Format.printf "telemetry  : wrote %s@.") (Telemetry.dump ~dir meta cap)
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one configuration.")
    Term.(
      const run $ workload_arg $ model_arg $ algorithm_arg $ threads_arg $ duration_arg
      $ no_coalesce_arg $ telemetry_arg)

let sweep_cmd =
  let sweep spec model algorithm duration_ms no_coalesce =
    let duration_ns = int_of_float (duration_ms *. 1e6) in
    let t =
      Repro_util.Table.create
        ~title:
          (Printf.sprintf "%s on %s (%s%s)" spec.Workloads.Driver.name
             model.Memsim.Config.model_name
             (Pstm.Ptm.algorithm_name algorithm)
             (if no_coalesce then ", naive flushes" else ""))
        ~header:[ "threads"; "M tx/s"; "commits/abort" ]
    in
    List.iter
      (fun threads ->
        let r =
          Workloads.Driver.run ~duration_ns ~coalesce:(not no_coalesce) ~model ~algorithm
            ~threads spec
        in
        Repro_util.Table.add_row t
          [
            string_of_int threads;
            Repro_util.Table.cell_f (r.Workloads.Driver.txs_per_sec /. 1e6);
            Repro_util.Table.cell_f r.Workloads.Driver.commits_per_abort;
          ])
      Workloads.Experiments.threads_axis;
    Format.printf "%a" Repro_util.Table.print t
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the paper's thread axis for one configuration.")
    Term.(const sweep $ workload_arg $ model_arg $ algorithm_arg $ duration_arg $ no_coalesce_arg)

let experiment_cmd =
  let names = List.map fst Workloads.Experiments.all in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [] ~docv:"EXPERIMENT")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Short measurement window.") in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the sweep's independent simulation cells (default: the \
             available cores).  Tables are byte-identical for every value; only wall time \
             changes.")
  in
  let json_arg =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Also write BENCH_$(i,EXPERIMENT).json in the current directory: per-cell \
             throughput/abort/fence metrics plus run totals and wall time.")
  in
  let exp name quick jobs json =
    (match jobs with
    | Some j when j < 1 -> failwith "--jobs expects a positive integer"
    | Some _ | None -> ());
    let f = List.assoc name Workloads.Experiments.all in
    let t0 = Unix.gettimeofday () in
    let outcome = f ~quick ?jobs () in
    let wall_s = Unix.gettimeofday () -. t0 in
    List.iter
      (fun table -> Format.printf "%a" Repro_util.Table.print table)
      outcome.Workloads.Experiments.tables;
    if json then begin
      let jobs = match jobs with Some j -> j | None -> Parallel.Pool.default_jobs () in
      let path =
        Workloads.Bench_json.write ~experiment:name ~quick ~jobs ~wall_s
          ~extra:outcome.Workloads.Experiments.extra outcome.Workloads.Experiments.results
      in
      Format.printf "json       : wrote %s@." path
    end
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the paper's tables/figures (fig3 fig4 table1 ... fig8).")
    Term.(const exp $ name_arg $ quick_arg $ jobs_arg $ json_arg)

let regress_cmd =
  let module J = Workloads.Bench_json in
  let baseline_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "b"; "baseline" ] ~docv:"FILE" ~doc:"Committed baseline BENCH_*.json.")
  in
  let current_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "c"; "current" ] ~docv:"FILE" ~doc:"Freshly produced BENCH_*.json to check.")
  in
  let tolerance_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Tolerance band, in percent: metric moves within it are ignored.")
  in
  let include_wall_arg =
    Arg.(
      value
      & flag
      & info [ "include-wall" ]
          ~doc:
            "Also gate wall-clock / environment fields (wall_s, cores, jobs, events_per_sec, \
             *_wall_ns).  Off by default: they move with the host machine, not the code.")
  in
  let regress baseline current tolerance_pct include_wall =
    let parse_or_die path =
      try J.parse_file path
      with J.Parse_error msg ->
        Format.eprintf "regress: %s: %s@." path msg;
        exit 2
    in
    let b = parse_or_die baseline and c = parse_or_die current in
    let findings = J.regress ~tolerance_pct ~include_wall ~baseline:b ~current:c () in
    let tag = function
      | J.Regression -> "REGRESSION"
      | J.Improvement -> "improvement"
      | J.Note -> "note"
    in
    List.iter
      (fun f -> Format.printf "%-11s %s: %s@." (tag f.J.f_severity) f.J.f_path f.J.f_detail)
      findings;
    let count sev = List.length (List.filter (fun f -> f.J.f_severity = sev) findings) in
    let regressions = count J.Regression in
    Format.printf "regress    : %d regressions, %d improvements, %d notes (tolerance %.1f%%)@."
      regressions (count J.Improvement) (count J.Note) tolerance_pct;
    if regressions > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "Diff a BENCH_*.json against a committed baseline with tolerance bands; exit non-zero \
          when a gated metric regressed.  Direction comes from the metric name (throughput-like \
          must not fall, cost-like must not rise).")
    Term.(const regress $ baseline_arg $ current_arg $ tolerance_arg $ include_wall_arg)

let list_cmd =
  let list () =
    Format.printf "workloads:@.";
    List.iter (fun (n, _) -> Format.printf "  %s@." n) (workloads ());
    Format.printf "models:@.";
    List.iter
      (fun m -> Format.printf "  %s@." m.Memsim.Config.model_name)
      Memsim.Config.all_models;
    Format.printf "experiments:@.";
    List.iter (fun (n, _) -> Format.printf "  %s@." n) Workloads.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, models and experiments.") Term.(const list $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ptm_bench" ~version:"1.0"
      ~doc:"Persistent transactional memory on (simulated) Optane DC — experiment driver."
  in
  exit
    (Cmd.eval (Cmd.group ~default info [ run_cmd; sweep_cmd; experiment_cmd; regress_cmd; list_cmd ]))
