(* Shared fixtures for the test suites. *)

let sim_machine ?(model = Memsim.Config.optane_adr) ?(heap_words = 1 lsl 16) ?lat () =
  let cfg = Memsim.Config.make ?lat ~heap_words model in
  let sim = Memsim.Sim.create cfg in
  (sim, Memsim.Sim.machine sim)

(* Run [threads] simulated workers [f tid] to completion. *)
let run_workers ?crash_at sim threads f =
  for tid = 0 to threads - 1 do
    ignore (Memsim.Sim.spawn sim (fun () -> f tid))
  done;
  Memsim.Sim.run ?crash_at sim

(* Reboot a crashed (or finished) sim and recover the PTM on it. *)
let reboot_and_recover ?algorithm sim =
  let sim' = Memsim.Sim.reboot sim in
  let m' = Memsim.Sim.machine sim' in
  let ptm' = Pstm.Ptm.recover ?algorithm m' in
  (sim', m', ptm')

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* qcheck bridge: register a property as an alcotest case. *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)
