open Workloads
module Ptm = Pstm.Ptm
module Config = Memsim.Config

let quick_run ?(model = Config.optane_adr) ?(algorithm = Ptm.Redo) ?(threads = 2)
    ?(duration_ns = 150_000) spec =
  Driver.run ~duration_ns ~model ~algorithm ~threads spec

let all_specs () =
  [
    Tatp.spec;
    Tpcc.spec Tpcc.Hash;
    Tpcc.spec Tpcc.Btree;
    Btree_bench.insert_only;
    Btree_bench.mixed;
    Vacation.spec Vacation.Low;
    Vacation.spec Vacation.High;
    Memcached.spec ~items:64;
  ]

let test_every_workload_commits () =
  List.iter
    (fun spec ->
      let r = quick_run spec in
      Helpers.check_bool (spec.Driver.name ^ " commits") true (r.Driver.commits > 0);
      Helpers.check_bool
        (spec.Driver.name ^ " positive throughput")
        true (r.Driver.txs_per_sec > 0.0))
    (all_specs ())

let test_every_workload_all_models () =
  (* Every (workload, model, algorithm) combination must run. *)
  List.iter
    (fun spec ->
      List.iter
        (fun model ->
          List.iter
            (fun algorithm ->
              let r = quick_run ~model ~algorithm ~duration_ns:60_000 spec in
              Helpers.check_bool
                (Printf.sprintf "%s/%s/%s runs" spec.Driver.name model.Config.model_name
                   (Ptm.algorithm_name algorithm))
                true (r.Driver.commits > 0))
            [ Ptm.Redo; Ptm.Undo ])
        [ Config.dram_adr; Config.optane_adr; Config.optane_eadr; Config.pdram;
          Config.pdram_lite ])
    [ Tatp.spec; Tpcc.spec Tpcc.Hash ]

let test_driver_deterministic () =
  let once () =
    let r = quick_run ~threads:4 (Tpcc.spec Tpcc.Hash) in
    (r.Driver.commits, r.Driver.aborts, r.Driver.elapsed_ns)
  in
  Alcotest.(check (triple int int int)) "identical runs" (once ()) (once ())

let test_driver_seed_changes_run () =
  let with_seed seed =
    (Driver.run ~duration_ns:150_000 ~seed ~model:Config.optane_adr ~algorithm:Ptm.Redo
       ~threads:2 Tatp.spec)
      .Driver.commits
  in
  Helpers.check_bool "different seeds differ" true (with_seed 1 <> with_seed 2 || with_seed 3 <> with_seed 4)

let test_threads_increase_throughput () =
  let tput threads =
    (quick_run ~model:Config.dram_eadr ~threads ~duration_ns:300_000 Tatp.spec).Driver.txs_per_sec
  in
  Helpers.check_bool "4 threads beat 1" true (tput 4 > 1.5 *. tput 1)

(* Manual replica of the driver so oracles can inspect the heap. *)
let run_with_oracle spec ~threads ~duration_ns oracle =
  let cfg =
    Memsim.Config.make ~heap_words:spec.Driver.heap_words ~track_media:false Config.optane_adr
  in
  let sim = Memsim.Sim.create cfg in
  let m = Memsim.Sim.machine sim in
  let ptm = Ptm.create ~max_threads:32 m in
  spec.Driver.setup ptm;
  Memsim.Sim.reset_timing sim;
  Ptm.Stats.reset ptm;
  let rng0 = Repro_util.Rng.create 99 in
  for tid = 0 to threads - 1 do
    let rng = Repro_util.Rng.split rng0 in
    ignore
      (Memsim.Sim.spawn sim (fun () ->
           let op = spec.Driver.make_op ptm ~tid ~rng in
           while int_of_float (m.Machine.now_ns ()) < duration_ns do
             op ()
           done))
  done;
  Memsim.Sim.run sim;
  oracle ptm m

let test_tpcc_district_oracle () =
  (* Every committed new-order bumps exactly one district counter: the
     sum of (next_o_id - 1) equals the number of commits. *)
  run_with_oracle (Tpcc.spec Tpcc.Hash) ~threads:4 ~duration_ns:200_000 (fun ptm m ->
      let districts = Ptm.root_get ptm 1 in
      let total = ref 0 in
      for dno = 0 to (Tpcc.warehouses * Tpcc.districts_per_warehouse) - 1 do
        total := !total + (m.Machine.raw_read (districts + (dno * 8)) - 1)
      done;
      let commits = (Ptm.Stats.get ptm).Ptm.Stats.commits in
      Helpers.check_int "orders equal commits" commits !total)

let test_vacation_resource_invariant () =
  run_with_oracle (Vacation.spec Vacation.High) ~threads:4 ~duration_ns:200_000 (fun ptm _m ->
      (* used must stay within [0, total] for every resource row. *)
      for rel = 0 to 2 do
        let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm rel) in
        List.iter
          (fun (_, row) ->
            let m = Ptm.machine ptm in
            let total = m.Machine.raw_read row in
            let used = m.Machine.raw_read (row + 1) in
            Helpers.check_bool "0 <= used" true (used >= 0);
            Helpers.check_bool "used <= total" true (used <= total))
          (Pstructs.Bptree.to_alist t)
      done)

let test_btree_insert_only_unique_keys () =
  run_with_oracle Btree_bench.insert_only ~threads:4 ~duration_ns:150_000 (fun ptm _ ->
      let t = Pstructs.Bptree.attach ptm (Ptm.root_get ptm 0) in
      Pstructs.Bptree.check_invariants t;
      let keys = List.map fst (Pstructs.Bptree.to_alist t) in
      Helpers.check_int "no duplicate keys inserted" (List.length keys)
        (List.length (List.sort_uniq compare keys));
      (* insert-only transactions never update in place *)
      let commits = (Ptm.Stats.get ptm).Ptm.Stats.commits in
      Helpers.check_int "every commit inserted a fresh key" commits (List.length keys))

let test_memcached_values_not_torn () =
  run_with_oracle (Memcached.spec ~items:32) ~threads:4 ~duration_ns:200_000 (fun ptm m ->
      let h = Pstructs.Phashtable.attach ptm (Ptm.root_get ptm 0) in
      List.iter
        (fun (id, item) ->
          let valb = m.Machine.raw_read (item + 1) in
          (* A value is either the setup pattern (id lxor i) or some
             nonce pattern (nonce lxor i); either way consecutive words
             xor to consistent deltas. *)
          let base = m.Machine.raw_read valb in
          let ok = ref true in
          for i = 0 to Memcached.value_words - 1 do
            if m.Machine.raw_read (valb + i) lxor i <> base then ok := false
          done;
          Helpers.check_bool (Printf.sprintf "value %d untorn" id) true !ok)
        (Pstructs.Phashtable.to_alist h))

let test_memcached_sizing () =
  let small = Memcached.items_for_bytes (32 * 1024) in
  let large = Memcached.items_for_bytes (32 * 1024 * 1024) in
  Helpers.check_bool "sizing monotonic" true (large > 100 * small);
  Helpers.check_bool "at least a handful of items" true (small >= 8)

let test_tatp_subscriber_count () =
  let cfg = Memsim.Config.make ~heap_words:(1 lsl 20) ~track_media:false Config.optane_adr in
  let sim = Memsim.Sim.create cfg in
  let m = Memsim.Sim.machine sim in
  ignore sim;
  let ptm = Ptm.create ~max_threads:32 m in
  Tatp.spec.Driver.setup ptm;
  let h = Pstructs.Phashtable.attach ptm (Ptm.root_get ptm 0) in
  Helpers.check_int "population" Tatp.subscribers
    (List.length (Pstructs.Phashtable.to_alist h))

let test_ycsb_mixes_run () =
  List.iter
    (fun mix ->
      let r = quick_run ~duration_ns:120_000 (Ycsb.spec mix) in
      Helpers.check_bool ("ycsb-" ^ Ycsb.mix_name mix ^ " commits") true (r.Driver.commits > 0))
    [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ]

let test_ycsb_c_read_only () =
  (* Workload C is 100% reads: no aborts, no stores to record blobs. *)
  let r = quick_run ~threads:4 ~duration_ns:200_000 (Ycsb.spec Ycsb.C) in
  Helpers.check_int "read-only mix never aborts" 0 r.Driver.aborts;
  Helpers.check_int "every commit is read-only" r.Driver.commits
    ((quick_run ~threads:4 ~duration_ns:200_000 (Ycsb.spec Ycsb.C)).Driver.commits)

let test_ycsb_d_inserts_grow_store () =
  run_with_oracle (Ycsb.spec Ycsb.D) ~threads:2 ~duration_ns:300_000 (fun ptm m ->
      let cursor = Ptm.root_get ptm 2 in
      Helpers.check_bool "inserts advanced the cursor" true
        (m.Machine.raw_read cursor > Ycsb.records + 1))

let test_experiment_registry_complete () =
  let names = List.map fst Experiments.all in
  List.iter
    (fun required ->
      Helpers.check_bool (required ^ " registered") true (List.mem required names))
    [ "fig3"; "fig4"; "table1"; "table2"; "table3"; "fig6"; "fig7"; "fig8" ]

let test_experiment_shapes () =
  (* A micro version of the headline claims, as a regression guard:
     redo >= undo (TPCC), eADR > ADR, DRAM > Optane. *)
  let tput ~model ~algorithm =
    (Driver.run ~duration_ns:400_000 ~model ~algorithm ~threads:4 (Tpcc.spec Tpcc.Hash))
      .Driver.txs_per_sec
  in
  let dram_r = tput ~model:Config.dram_eadr ~algorithm:Ptm.Redo in
  let optane_adr_r = tput ~model:Config.optane_adr ~algorithm:Ptm.Redo in
  let optane_adr_u = tput ~model:Config.optane_adr ~algorithm:Ptm.Undo in
  let optane_eadr_r = tput ~model:Config.optane_eadr ~algorithm:Ptm.Redo in
  Helpers.check_bool "redo beats undo under ADR" true (optane_adr_r > optane_adr_u);
  Helpers.check_bool "eADR beats ADR" true (optane_eadr_r > optane_adr_r);
  Helpers.check_bool "DRAM beats Optane" true (dram_r > optane_eadr_r)

let suite =
  [
    Alcotest.test_case "all workloads commit" `Quick test_every_workload_commits;
    Alcotest.test_case "all model/alg combos run" `Slow test_every_workload_all_models;
    Alcotest.test_case "driver determinism" `Quick test_driver_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_driver_seed_changes_run;
    Alcotest.test_case "threads scale" `Quick test_threads_increase_throughput;
    Alcotest.test_case "tpcc district oracle" `Quick test_tpcc_district_oracle;
    Alcotest.test_case "vacation invariant" `Quick test_vacation_resource_invariant;
    Alcotest.test_case "btree insert-only uniqueness" `Quick test_btree_insert_only_unique_keys;
    Alcotest.test_case "memcached values untorn" `Quick test_memcached_values_not_torn;
    Alcotest.test_case "memcached sizing" `Quick test_memcached_sizing;
    Alcotest.test_case "tatp population" `Quick test_tatp_subscriber_count;
    Alcotest.test_case "ycsb mixes run" `Quick test_ycsb_mixes_run;
    Alcotest.test_case "ycsb C read-only" `Quick test_ycsb_c_read_only;
    Alcotest.test_case "ycsb D inserts" `Quick test_ycsb_d_inserts_grow_store;
    Alcotest.test_case "experiment registry" `Quick test_experiment_registry_complete;
    Alcotest.test_case "headline shapes" `Slow test_experiment_shapes;
  ]
