test/test_pstructs.ml: Alcotest Array Bptree Hashtbl Helpers Int List Map Memsim Phashtable Plist Pqueue Printf Pstm Pstructs QCheck2 Repro_util
