test/test_pstm2.ml: Alcotest Helpers List Machine Memsim Printf Pstm Ptm
