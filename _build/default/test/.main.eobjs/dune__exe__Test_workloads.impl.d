test/test_workloads.ml: Alcotest Btree_bench Driver Experiments Helpers List Machine Memcached Memsim Printf Pstm Pstructs Repro_util Tatp Tpcc Vacation Workloads Ycsb
