test/test_pstructs2.ml: Alcotest Bptree Char Filename Fun Helpers Int List Map Memsim Parray Pblob Pqueue Pskiplist Pstm Pstructs QCheck2 Queue Repro_util String Sys
