test/test_util.ml: Alcotest Array Float Fun Helpers Histogram Int_vec List Lru Min_heap Printf QCheck2 Repro_util Rng Stats Table Zipf
