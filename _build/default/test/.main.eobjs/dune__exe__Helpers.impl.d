test/helpers.ml: Alcotest Memsim Pstm QCheck2 QCheck_alcotest
