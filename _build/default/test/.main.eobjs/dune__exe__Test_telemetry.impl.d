test/test_telemetry.ml: Alcotest Helpers List Memsim Printf Pstm String Telemetry Workloads
