test/test_crashtest.ml: Alcotest Array Crashtest Filename Format Helpers List Machine Memsim Pmem Printf Pstm Ptm Result String Sys
