test/test_crashtest.ml: Alcotest Array Crashtest Format Helpers List Machine Memsim Pmem Printf Pstm Ptm Result String
