test/test_native.ml: Alcotest Atomic Domain Helpers List Machine Pstm Pstructs Repro_util
