test/test_memsim.ml: Alcotest Cache Config Fun Helpers List Machine Memsim Printf Repro_util Sched Server Sim Trace
