test/test_pstm.ml: Alcotest Array Helpers List Machine Memsim Printf Pstm Ptm QCheck2 Repro_util
