test/test_experiments.ml: Alcotest Helpers List Repro_util String Workloads
