test/main.mli:
