test/test_extensions.ml: Alcotest Helpers Machine Memsim Printf Pstm Ptm Workloads
