test/test_pmem.ml: Alcotest Alloc Check Hashtbl Helpers List Machine Memsim Pmem Pstm QCheck2 Region Repro_util
