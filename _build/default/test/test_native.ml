(* The native backend: the same PTM algorithms on real OCaml domains
   with atomic orecs.  These tests prove the algorithms are genuinely
   concurrent — no simulated interleaving, real races. *)

module Ptm = Pstm.Ptm
module Native = Machine.Native

let native_ptm ?(algorithm = Ptm.Redo) () =
  let m = Native.create ~words:(1 lsl 16) ~meta_words:((1 lsl 16) + 64) in
  Ptm.create ~algorithm ~orec_bits:14 ~max_threads:8 ~log_words_per_thread:2048 m

let in_domains n f =
  let domains = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join domains

let test_native_machine_basics () =
  let m = Native.create ~words:128 ~meta_words:128 in
  m.Machine.store 5 42;
  Helpers.check_int "load" 42 (m.Machine.load 5);
  Helpers.check_bool "cas ok" true (m.Machine.meta_cas 7 0 9);
  Helpers.check_bool "cas stale" false (m.Machine.meta_cas 7 0 10);
  Helpers.check_int "meta" 9 (m.Machine.meta_get 7);
  Helpers.check_int "fetch_add old" 9 (m.Machine.meta_fetch_add 7 3);
  Helpers.check_int "fetch_add new" 12 (m.Machine.meta_get 7);
  (* clwb/sfence are no-ops but callable *)
  m.Machine.clwb 5;
  m.Machine.sfence ()

let test_native_tids_dense_per_machine () =
  let m1 = Native.create ~words:64 ~meta_words:64 in
  let m2 = Native.create ~words:64 ~meta_words:64 in
  Helpers.check_int "main domain id on m1" 0 (m1.Machine.tid ());
  Helpers.check_int "main domain id on m2" 0 (m2.Machine.tid ());
  let seen = Atomic.make 0 in
  in_domains 3 (fun _ ->
      let id = m1.Machine.tid () in
      ignore (Atomic.fetch_and_add seen (1 lsl id)));
  (* ids 1,2,3 in some order *)
  Helpers.check_int "dense ids" (0b1110) (Atomic.get seen)

let counter_domains algorithm =
  let ptm = native_ptm ~algorithm () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 0;
        a)
  in
  let domains = 3 and per = 2_000 in
  in_domains domains (fun _ ->
      for _ = 1 to per do
        Ptm.atomic ptm (fun tx -> Ptm.write tx addr (Ptm.read tx addr + 1))
      done);
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "no lost updates on real domains" (domains * per) (Ptm.read tx addr))

let transfer_domains algorithm =
  let ptm = native_ptm ~algorithm () in
  let n = 16 in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx n in
        for i = 0 to n - 1 do
          Ptm.write tx (a + i) 100
        done;
        a)
  in
  in_domains 3 (fun d ->
      let rng = Repro_util.Rng.create (d + 1) in
      for _ = 1 to 2_000 do
        let src = Repro_util.Rng.int rng n and dst = Repro_util.Rng.int rng n in
        Ptm.atomic ptm (fun tx ->
            let s = Ptm.read tx (base + src) in
            if s > 0 then begin
              Ptm.write tx (base + src) (s - 1);
              Ptm.write tx (base + dst) (Ptm.read tx (base + dst) + 1)
            end)
      done);
  let total =
    Ptm.atomic ptm (fun tx ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + Ptm.read tx (base + i)
        done;
        !acc)
  in
  Helpers.check_int "sum invariant on real domains" (n * 100) total

let test_native_btree_domains () =
  let ptm = native_ptm () in
  let t = Pstructs.Bptree.create ptm in
  let per = 400 in
  in_domains 3 (fun d ->
      for i = 1 to per do
        let key = (d * per) + i in
        Ptm.atomic ptm (fun tx -> ignore (Pstructs.Bptree.insert tx t ~key ~value:key))
      done);
  Pstructs.Bptree.check_invariants t;
  Helpers.check_int "all keys under real concurrency" (3 * per)
    (List.length (Pstructs.Bptree.to_alist t))

let test_native_hash_domains () =
  let ptm = native_ptm () in
  let h = Pstructs.Phashtable.create ptm ~buckets:512 in
  in_domains 3 (fun d ->
      let rng = Repro_util.Rng.create (d + 11) in
      for i = 1 to 500 do
        let key = (d * 10_000) + i in
        Ptm.atomic ptm (fun tx -> ignore (Pstructs.Phashtable.put tx h ~key ~value:i));
        if Repro_util.Rng.chance rng 0.3 then
          Ptm.atomic ptm (fun tx -> ignore (Pstructs.Phashtable.remove tx h key))
      done);
  (* Whatever remains must be self-consistent. *)
  let all = Pstructs.Phashtable.to_alist h in
  let keys = List.map fst all in
  Helpers.check_int "no duplicate keys" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let suite =
  [
    Alcotest.test_case "native: machine basics" `Quick test_native_machine_basics;
    Alcotest.test_case "native: dense tids" `Quick test_native_tids_dense_per_machine;
    Alcotest.test_case "native: counter (redo)" `Quick (fun () -> counter_domains Ptm.Redo);
    Alcotest.test_case "native: counter (undo)" `Quick (fun () -> counter_domains Ptm.Undo);
    Alcotest.test_case "native: transfers (redo)" `Quick (fun () -> transfer_domains Ptm.Redo);
    Alcotest.test_case "native: transfers (undo)" `Quick (fun () -> transfer_domains Ptm.Undo);
    Alcotest.test_case "native: btree domains" `Quick test_native_btree_domains;
    Alcotest.test_case "native: hash domains" `Quick test_native_hash_domains;
  ]
