open Pstm
module Sim = Memsim.Sim
module Config = Memsim.Config

(* PTM fixture sized for tests: 8 threads, 1K-word logs, 64K-word heap. *)
let fixture ?(model = Config.optane_adr) ?(algorithm = Ptm.Redo) ?heap_words () =
  Helpers.ptm_fixture ~model ~algorithm ?heap_words ()

let both_algorithms f () =
  f Ptm.Redo;
  f Ptm.Undo

(* ---------- single-thread semantics ---------- *)

let test_read_write_roundtrip alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 4 in
        Ptm.write tx a 11;
        Ptm.write tx (a + 1) 22;
        Helpers.check_int "read own write" 11 (Ptm.read tx a);
        a)
  in
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "committed value" 11 (Ptm.read tx addr);
      Helpers.check_int "second word" 22 (Ptm.read tx (addr + 1)))

let test_overwrite_in_tx alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Ptm.atomic ptm (fun tx ->
      Ptm.write tx addr 1;
      Ptm.write tx addr 2;
      Ptm.write tx addr 3;
      Helpers.check_int "latest own write" 3 (Ptm.read tx addr));
  Ptm.atomic ptm (fun tx -> Helpers.check_int "last write wins" 3 (Ptm.read tx addr))

let test_user_exception_aborts alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Ptm.atomic ptm (fun tx -> Ptm.write tx addr 5);
  (try
     Ptm.atomic ptm (fun tx ->
         Ptm.write tx addr 99;
         failwith "boom")
   with Failure _ -> ());
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "aborted write rolled back" 5 (Ptm.read tx addr))

let test_alloc_rollback_on_abort alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let first = ref 0 in
  (try
     Ptm.atomic ptm (fun tx ->
         first := Ptm.alloc tx 8;
         failwith "boom")
   with Failure _ -> ());
  let second = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 8) in
  Helpers.check_int "aborted allocation reused" !first second

let test_free_recycles_after_commit alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let a = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 8) in
  Ptm.atomic ptm (fun tx -> Ptm.free tx a);
  let b = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 8) in
  Helpers.check_int "freed block recycled" a b

let test_nested_atomic_flattens alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Ptm.atomic ptm (fun tx ->
      Ptm.write tx addr 1;
      Ptm.atomic ptm (fun tx' ->
          Helpers.check_int "inner sees outer write" 1 (Ptm.read tx' addr);
          Ptm.write tx' addr 2);
      Helpers.check_int "outer sees inner write" 2 (Ptm.read tx addr))

let test_on_commit_runs_once alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  let hits = ref 0 in
  Ptm.atomic ptm (fun tx ->
      Ptm.write tx addr 1;
      Ptm.on_commit tx (fun () -> incr hits));
  Helpers.check_int "hook ran once" 1 !hits

let test_log_overflow alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let base = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 512) in
  Alcotest.check_raises "overflow" Ptm.Log_overflow (fun () ->
      Ptm.atomic ptm (fun tx ->
          (* More distinct words than the (1024-3)/2-entry log holds. *)
          for i = 0 to 511 do
            Ptm.write tx (base + i) i
          done))

let test_stats_commits_counted alg =
  let _, _, ptm = fixture ~algorithm:alg () in
  let addr = Ptm.atomic ptm (fun tx -> Ptm.alloc tx 1) in
  Ptm.Stats.reset ptm;
  for _ = 1 to 10 do
    Ptm.atomic ptm (fun tx -> Ptm.write tx addr 1)
  done;
  Ptm.atomic ptm (fun tx -> ignore (Ptm.read tx addr));
  let s = Ptm.Stats.get ptm in
  Helpers.check_int "commits" 11 s.Ptm.Stats.commits;
  Helpers.check_int "read-only commits" 1 s.Ptm.Stats.read_only_commits;
  Helpers.check_bool "write set tracked" true (s.Ptm.Stats.max_write_set >= 1)

(* ---------- concurrency (simulated threads) ---------- *)

let test_parallel_counter alg =
  let sim, _, ptm = fixture ~algorithm:alg () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 0;
        a)
  in
  let threads = 4 and per_thread = 50 in
  Helpers.run_workers sim threads (fun _tid ->
      for _ = 1 to per_thread do
        Ptm.atomic ptm (fun tx -> Ptm.write tx addr (Ptm.read tx addr + 1))
      done);
  Ptm.atomic ptm (fun tx ->
      Helpers.check_int "no lost updates" (threads * per_thread) (Ptm.read tx addr))

let test_parallel_disjoint_counters alg =
  let sim, _, ptm = fixture ~algorithm:alg () in
  let addrs =
    Ptm.atomic ptm (fun tx -> Array.init 4 (fun _ -> Ptm.alloc tx 1))
  in
  Helpers.run_workers sim 4 (fun tid ->
      for _ = 1 to 100 do
        Ptm.atomic ptm (fun tx -> Ptm.write tx addrs.(tid) (Ptm.read tx addrs.(tid) + 1))
      done);
  Ptm.atomic ptm (fun tx ->
      Array.iter (fun a -> Helpers.check_int "per-thread count" 100 (Ptm.read tx a)) addrs)

let test_atomicity_two_words alg =
  (* Transfer between two slots: the sum is invariant at every commit. *)
  let sim, _, ptm = fixture ~algorithm:alg () in
  let a, b =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 and b = Ptm.alloc tx 1 in
        Ptm.write tx a 1000;
        Ptm.write tx b 1000;
        (a, b))
  in
  Helpers.run_workers sim 4 (fun tid ->
      let rng = Repro_util.Rng.create (100 + tid) in
      for _ = 1 to 50 do
        Ptm.atomic ptm (fun tx ->
            let amount = Repro_util.Rng.int rng 10 in
            let va = Ptm.read tx a and vb = Ptm.read tx b in
            Ptm.write tx a (va - amount);
            Ptm.write tx b (vb + amount));
        Ptm.atomic ptm (fun tx ->
            let sum = Ptm.read tx a + Ptm.read tx b in
            Helpers.check_int "sum invariant" 2000 sum)
      done);
  ()

let test_conflicting_txs_abort_and_retry alg =
  let sim, _, ptm = fixture ~algorithm:alg () in
  let addr =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 1 in
        Ptm.write tx a 0;
        a)
  in
  Ptm.Stats.reset ptm;
  Helpers.run_workers sim 8 (fun _ ->
      for _ = 1 to 25 do
        Ptm.atomic ptm (fun tx -> Ptm.write tx addr (Ptm.read tx addr + 1))
      done);
  let s = Ptm.Stats.get ptm in
  Helpers.check_int "all commits eventually" 200 s.Ptm.Stats.commits;
  Helpers.check_bool "hot word causes aborts" true (s.Ptm.Stats.aborts > 0);
  Ptm.atomic ptm (fun tx -> Helpers.check_int "final value" 200 (Ptm.read tx addr))

(* ---------- crash / recovery ---------- *)

(* Run adders over [words] shared slots until the machine crashes, then
   recover and check (a) atomicity: all slots equal; (b) durability:
   the recovered count is >= the number of [atomic] calls that
   returned. *)
let crash_recovery_scenario ~model ~algorithm () =
  let sim, _, ptm = fixture ~model ~algorithm () in
  let words = 4 in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx words in
        for i = 0 to words - 1 do
          Ptm.write tx (a + i) 0
        done;
        a)
  in
  Ptm.root_set ptm 0 base;
  Memsim.Sim.persist_all sim;
  let completed = Array.make 4 0 in
  for tid = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 10_000 do
             Ptm.atomic ptm (fun tx ->
                 for i = 0 to words - 1 do
                   Ptm.write tx (base + i) (Ptm.read tx (base + i) + 1)
                 done);
             completed.(tid) <- completed.(tid) + 1
           done))
  done;
  Sim.run ~crash_at:300_000 sim;
  Helpers.check_bool "crashed mid-run" true (Sim.crashed sim);
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  let ptm' = Ptm.recover ~algorithm m' in
  let base' = Ptm.root_get ptm' 0 in
  Helpers.check_int "root survives" base base';
  let v0 = m'.Machine.raw_read base' in
  for i = 1 to words - 1 do
    Helpers.check_int
      (Printf.sprintf "atomicity: slot %d equals slot 0" i)
      v0
      (m'.Machine.raw_read (base' + i))
  done;
  let finished = Array.fold_left ( + ) 0 completed in
  Helpers.check_bool
    (Printf.sprintf "durability: recovered %d >= completed %d" v0 finished)
    true (v0 >= finished);
  Helpers.check_bool "recovered count sane" true (v0 <= finished + 4);
  (* The recovered heap is fully usable. *)
  Ptm.atomic ptm' (fun tx -> Ptm.write tx base' (Ptm.read tx base' + 1))

let test_crash_recovery_redo_adr = crash_recovery_scenario ~model:Config.optane_adr ~algorithm:Ptm.Redo
let test_crash_recovery_undo_adr = crash_recovery_scenario ~model:Config.optane_adr ~algorithm:Ptm.Undo
let test_crash_recovery_redo_eadr = crash_recovery_scenario ~model:Config.optane_eadr ~algorithm:Ptm.Redo
let test_crash_recovery_undo_eadr = crash_recovery_scenario ~model:Config.optane_eadr ~algorithm:Ptm.Undo
let test_crash_recovery_redo_pdram = crash_recovery_scenario ~model:Config.pdram ~algorithm:Ptm.Redo
let test_crash_recovery_redo_pdram_lite =
  crash_recovery_scenario ~model:Config.pdram_lite ~algorithm:Ptm.Redo

let prop_crash_any_time =
  (* Atomicity must hold no matter when the power fails, under every
     persistent durability model and both logging algorithms.  (This
     property caught a real protocol bug during development: raising
     the undo status before disarming the previous transaction's log
     entries let recovery roll back committed work.) *)
  Helpers.qtest ~count:60 "crash atomicity at random instants"
    QCheck2.Gen.(triple (int_range 1_000 400_000) bool (int_range 0 3))
    (fun (crash_at, use_undo, model_idx) ->
      let algorithm = if use_undo then Ptm.Undo else Ptm.Redo in
      let model =
        List.nth [ Config.optane_adr; Config.optane_eadr; Config.pdram; Config.pdram_lite ]
          model_idx
      in
      let sim, _, ptm = fixture ~model ~algorithm () in
      let words = 3 in
      let base =
        Ptm.atomic ptm (fun tx ->
            let a = Ptm.alloc tx words in
            for i = 0 to words - 1 do
              Ptm.write tx (a + i) 0
            done;
            a)
      in
      Ptm.root_set ptm 0 base;
      Memsim.Sim.persist_all sim;
      for tid = 0 to 2 do
        ignore
          (Sim.spawn sim (fun () ->
               let rng = Repro_util.Rng.create (7 * (tid + 1)) in
               for _ = 1 to 5_000 do
                 Ptm.atomic ptm (fun tx ->
                     let delta = 1 + Repro_util.Rng.int rng 3 in
                     for i = 0 to words - 1 do
                       Ptm.write tx (base + i) (Ptm.read tx (base + i) + delta)
                     done)
               done))
      done;
      Sim.run ~crash_at sim;
      let sim' = Sim.reboot sim in
      let m' = Sim.machine sim' in
      ignore (Ptm.recover ~algorithm m');
      let v0 = m'.Machine.raw_read base in
      let ok = ref true in
      for i = 1 to words - 1 do
        if m'.Machine.raw_read (base + i) <> v0 then ok := false
      done;
      !ok)

let test_recovery_idempotent () =
  let sim, _, ptm = fixture ~algorithm:Ptm.Redo () in
  let base =
    Ptm.atomic ptm (fun tx ->
        let a = Ptm.alloc tx 2 in
        Ptm.write tx a 0;
        Ptm.write tx (a + 1) 0;
        a)
  in
  Ptm.root_set ptm 0 base;
  Memsim.Sim.persist_all sim;
  Helpers.run_workers sim 2 ~crash_at:100_000 (fun _ ->
      for _ = 1 to 10_000 do
        Ptm.atomic ptm (fun tx ->
            Ptm.write tx base (Ptm.read tx base + 1);
            Ptm.write tx (base + 1) (Ptm.read tx (base + 1) + 1))
      done);
  let sim' = Sim.reboot sim in
  let m' = Sim.machine sim' in
  ignore (Ptm.recover m');
  let after_first = (m'.Machine.raw_read base, m'.Machine.raw_read (base + 1)) in
  ignore (Ptm.recover m');
  let after_second = (m'.Machine.raw_read base, m'.Machine.raw_read (base + 1)) in
  Alcotest.(check (pair int int)) "second recovery is a no-op" after_first after_second

let suite =
  let both name f =
    [
      Alcotest.test_case (name ^ " (redo)") `Quick (fun () -> f Ptm.Redo);
      Alcotest.test_case (name ^ " (undo)") `Quick (fun () -> f Ptm.Undo);
    ]
  in
  List.concat
    [
      both "roundtrip" test_read_write_roundtrip;
      both "overwrite in tx" test_overwrite_in_tx;
      both "user exception aborts" test_user_exception_aborts;
      both "alloc rollback" test_alloc_rollback_on_abort;
      both "free recycles" test_free_recycles_after_commit;
      both "nested flattening" test_nested_atomic_flattens;
      both "on_commit once" test_on_commit_runs_once;
      both "stats" test_stats_commits_counted;
      both "parallel counter" test_parallel_counter;
      both "disjoint counters" test_parallel_disjoint_counters;
      both "two-word atomicity" test_atomicity_two_words;
      both "conflict retry" test_conflicting_txs_abort_and_retry;
      [
        Alcotest.test_case "log overflow (redo)" `Quick (fun () -> test_log_overflow Ptm.Redo);
        Alcotest.test_case "crash: redo+ADR" `Quick test_crash_recovery_redo_adr;
        Alcotest.test_case "crash: undo+ADR" `Quick test_crash_recovery_undo_adr;
        Alcotest.test_case "crash: redo+eADR" `Quick test_crash_recovery_redo_eadr;
        Alcotest.test_case "crash: undo+eADR" `Quick test_crash_recovery_undo_eadr;
        Alcotest.test_case "crash: redo+PDRAM" `Quick test_crash_recovery_redo_pdram;
        Alcotest.test_case "crash: redo+PDRAM-Lite" `Quick test_crash_recovery_redo_pdram_lite;
        prop_crash_any_time;
        Alcotest.test_case "recovery idempotent" `Quick test_recovery_idempotent;
      ];
    ]

let _ = both_algorithms
