(* The experiment harness itself: registry integrity and a few cheap
   end-to-end regenerations in quick mode. *)

module E = Workloads.Experiments

let test_registry_names_unique () =
  let names = List.map fst E.all in
  Helpers.check_int "no duplicate experiment names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_logsize_experiment () =
  let outcome = E.log_footprint ~quick:true () in
  match outcome.E.tables with
  | [ t ] ->
    let csv = Repro_util.Table.to_csv t in
    Helpers.check_bool "has vacation row" true
      (String.length csv > 0
      && List.exists
           (fun line -> String.length line >= 8 && String.sub line 0 8 = "vacation")
           (String.split_on_char '\n' csv))
  | _ -> Alcotest.fail "expected one table"

let test_orec_ablation_monotone () =
  (* More orecs can only reduce false conflicts: throughput at 2^20
     must beat 2^10 clearly. *)
  let outcome = E.orec_ablation ~quick:true () in
  let results = outcome.E.results in
  Helpers.check_int "six sizes" 6 (List.length results);
  let first = List.hd results and last = List.nth results 5 in
  Helpers.check_bool "bigger table is faster" true
    (last.Workloads.Driver.txs_per_sec > first.Workloads.Driver.txs_per_sec)

let test_recovery_time_experiment () =
  let outcome = E.recovery_time ~quick:true () in
  match outcome.E.tables with
  | [ t ] ->
    let lines = String.split_on_char '\n' (Repro_util.Table.to_csv t) in
    (* header + 2 sizes + trailing newline *)
    Helpers.check_int "two data rows" 4 (List.length lines)
  | _ -> Alcotest.fail "expected one table"

let test_quick_flag_shrinks_fig8 () =
  (* Quick mode runs a reduced working-set axis. *)
  let outcome = E.fig8 ~quick:true () in
  match outcome.E.tables with
  | [ t ] ->
    let header = List.hd (String.split_on_char '\n' (Repro_util.Table.to_csv t)) in
    Helpers.check_bool "only two sizes in quick mode" true
      (String.split_on_char ',' header = [ "series"; "32KB"; "32MB" ])
  | _ -> Alcotest.fail "expected one table"

let suite =
  [
    Alcotest.test_case "registry: unique names" `Quick test_registry_names_unique;
    Alcotest.test_case "logsize regenerates" `Slow test_logsize_experiment;
    Alcotest.test_case "orec ablation monotone" `Slow test_orec_ablation_monotone;
    Alcotest.test_case "recovery-time regenerates" `Slow test_recovery_time_experiment;
    Alcotest.test_case "fig8 quick axis" `Slow test_quick_flag_shrinks_fig8;
  ]
