module Ptm = Pstm.Ptm
module H = Pstructs.Phashtable
module Bptree = Pstructs.Bptree

type mix = A | B | C | D | E | F

let mix_name = function A -> "a" | B -> "b" | C -> "c" | D -> "d" | E -> "e" | F -> "f"

let records = 8_192
let field_words = 13 (* ~100 bytes *)
let fields = 10
let record_words = fields * field_words (* 130 words ~ 1 KB *)

let hash_slot = 0
let tree_slot = 1
let next_key_slot = 2 (* persistent insert cursor for D/E *)

let setup ptm =
  let h = H.create ptm ~buckets:(2 * records) in
  let t = Bptree.create ptm in
  Ptm.root_set ptm hash_slot (H.descriptor h);
  Ptm.root_set ptm tree_slot (Bptree.descriptor t);
  for key = 1 to records do
    Ptm.atomic ptm (fun tx ->
        let blob = Ptm.alloc tx record_words in
        for i = 0 to record_words - 1 do
          Ptm.write tx (blob + i) (key + i)
        done;
        ignore (H.put tx h ~key ~value:blob);
        ignore (Bptree.insert tx t ~key ~value:blob))
  done;
  Ptm.atomic ptm (fun tx ->
      let c = Ptm.alloc tx 1 in
      Ptm.write tx c (records + 1);
      Ptm.root_set ptm next_key_slot c)

let read_record tx blob =
  let acc = ref 0 in
  for i = 0 to record_words - 1 do
    acc := !acc lxor Ptm.read tx (blob + i)
  done;
  !acc

let update_field tx blob rng =
  let f = Repro_util.Rng.int rng fields in
  for i = 0 to field_words - 1 do
    Ptm.write tx (blob + (f * field_words) + i) (Repro_util.Rng.next rng land 0xFFFF)
  done

let insert_record tx h t cursor rng =
  ignore rng;
  let key = Ptm.read tx cursor in
  Ptm.write tx cursor (key + 1);
  let blob = Ptm.alloc tx record_words in
  for i = 0 to record_words - 1 do
    Ptm.write tx (blob + i) (key + i)
  done;
  ignore (H.put tx h ~key ~value:blob);
  ignore (Bptree.insert tx t ~key ~value:blob)

let make_op mix ptm ~tid ~rng =
  ignore tid;
  let h = H.attach ptm (Ptm.root_get ptm hash_slot) in
  let t = Bptree.attach ptm (Ptm.root_get ptm tree_slot) in
  let cursor = Ptm.root_get ptm next_key_slot in
  let zipf = Repro_util.Zipf.create records in
  let pick () = 1 + Repro_util.Zipf.sample zipf rng in
  let read key =
    Ptm.atomic ptm (fun tx ->
        match H.get tx h key with Some blob -> ignore (read_record tx blob) | None -> ())
  in
  let update key =
    Ptm.atomic ptm (fun tx ->
        match H.get tx h key with Some blob -> update_field tx blob rng | None -> ())
  in
  let read_modify_write key =
    Ptm.atomic ptm (fun tx ->
        match H.get tx h key with
        | Some blob ->
          ignore (read_record tx blob);
          update_field tx blob rng
        | None -> ())
  in
  let insert () = Ptm.atomic ptm (fun tx -> insert_record tx h t cursor rng) in
  let read_latest () =
    Ptm.atomic ptm (fun tx ->
        let newest = Ptm.read tx cursor - 1 in
        (* Skew towards the most recent keys. *)
        let back = Repro_util.Zipf.sample zipf rng in
        let key = max 1 (newest - back) in
        match H.get tx h key with Some blob -> ignore (read_record tx blob) | None -> ())
  in
  let scan () =
    let len = 1 + Repro_util.Rng.int rng 100 in
    let lo = pick () in
    Ptm.atomic ptm (fun tx ->
        (* Read the first field of up to [len] consecutive records. *)
        let count = ref 0 in
        ignore
          (Bptree.fold_range tx t ~lo ~hi:(lo + (4 * len)) (fun () _k blob ->
               if !count < len then begin
                 incr count;
                 for i = 0 to field_words - 1 do
                   ignore (Ptm.read tx (blob + i))
                 done
               end)
             ()))
  in
  fun () ->
    let dice = Repro_util.Rng.int rng 100 in
    match mix with
    | A -> if dice < 50 then read (pick ()) else update (pick ())
    | B -> if dice < 95 then read (pick ()) else update (pick ())
    | C -> read (pick ())
    | D -> if dice < 95 then read_latest () else insert ()
    | E -> if dice < 95 then scan () else insert ()
    | F -> if dice < 50 then read (pick ()) else read_modify_write (pick ())

let spec mix =
  {
    Driver.name = "ycsb-" ^ mix_name mix;
    heap_words = 1 lsl 22;
    setup;
    make_op = make_op mix;
  }
