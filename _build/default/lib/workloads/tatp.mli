(** The write-only TATP telecom benchmark from DudeTM (Fig 4 / Fig 7).

    Scaled population: 20 000 subscribers (the standard 100 000 scaled
    to the simulated machine).  Transaction mix (the write
    transactions of TATP, as in DudeTM's write-only configuration):

    - 35% UPDATE_SUBSCRIBER_DATA — 2 field writes
    - 35% UPDATE_LOCATION — 1 field write
    - 15% INSERT_CALL_FORWARDING
    - 15% DELETE_CALL_FORWARDING

    Every transaction performs only a handful of writes — the workload
    where the paper found undo logging competitive, because the O(W)
    fence cost hardly bites at W ≈ 1–3. *)

val subscribers : int

val spec : Driver.spec
