module Ptm = Pstm.Ptm
module H = Pstructs.Phashtable

let key_words = 16 (* 128-byte keys *)
let value_words = 128 (* 1-KB values *)

(* key block (16+1 hdr) + value block (128+1) + descriptor (2+1) +
   index node (3+1). *)
let item_overhead_words = key_words + 1 + value_words + 1 + 3 + 3 + 1

let items_for_bytes bytes = max 8 (bytes / 8 / item_overhead_words)

let index_slot = 0

let setup ~items ptm =
  let h = H.create ptm ~buckets:(2 * items) in
  Ptm.root_set ptm index_slot (H.descriptor h);
  for id = 1 to items do
    Ptm.atomic ptm (fun tx ->
        let keyb = Ptm.alloc tx key_words in
        for i = 0 to key_words - 1 do
          Ptm.write tx (keyb + i) id
        done;
        let valb = Ptm.alloc tx value_words in
        for i = 0 to value_words - 1 do
          Ptm.write tx (valb + i) (id lxor i)
        done;
        let item = Ptm.alloc tx 2 in
        Ptm.write tx item keyb;
        Ptm.write tx (item + 1) valb;
        ignore (H.put tx h ~key:id ~value:item))
  done

(* GET: index probe, full key comparison, full value read. *)
let get tx h id =
  match H.get tx h id with
  | None -> false
  | Some item ->
    let keyb = Ptm.read tx item in
    let matches = ref true in
    for i = 0 to key_words - 1 do
      if Ptm.read tx (keyb + i) <> id then matches := false
    done;
    if !matches then begin
      let valb = Ptm.read tx (item + 1) in
      let acc = ref 0 in
      for i = 0 to value_words - 1 do
        acc := !acc lxor Ptm.read tx (valb + i)
      done;
      ignore !acc
    end;
    !matches

(* SET: index probe, full value overwrite. *)
let set tx h id nonce =
  match H.get tx h id with
  | None -> false
  | Some item ->
    let valb = Ptm.read tx (item + 1) in
    for i = 0 to value_words - 1 do
      Ptm.write tx (valb + i) (nonce lxor i)
    done;
    true

let make_op ~items ptm ~tid ~rng =
  ignore tid;
  let h = H.attach ptm (Ptm.root_get ptm index_slot) in
  fun () ->
    let id = 1 + Repro_util.Rng.int rng items in
    if Repro_util.Rng.bool rng then Ptm.atomic ptm (fun tx -> ignore (get tx h id))
    else begin
      let nonce = Repro_util.Rng.next rng land 0xFFFF in
      Ptm.atomic ptm (fun tx -> ignore (set tx h id nonce))
    end

let spec ~items =
  let heap_words =
    (* Population + index segments + allocator slack. *)
    let data = items * item_overhead_words in
    let buckets = 4 * items in
    let words = (3 * (data + buckets) / 2) + (1 lsl 18) in
    (* Round up to a power of two for predictable layouts. *)
    let rec pow2 n = if n >= words then n else pow2 (2 * n) in
    pow2 (1 lsl 18)
  in
  {
    Driver.name = Printf.sprintf "memcached-%d" items;
    heap_words;
    setup = setup ~items;
    make_op = make_op ~items;
  }
