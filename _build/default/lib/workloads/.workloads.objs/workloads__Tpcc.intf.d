lib/workloads/tpcc.mli: Driver
