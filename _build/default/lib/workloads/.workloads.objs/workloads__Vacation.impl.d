lib/workloads/vacation.ml: Array Driver Machine Pstm Pstructs Repro_util
