lib/workloads/bank.mli: Driver Pstm
