lib/workloads/vacation.mli: Driver
