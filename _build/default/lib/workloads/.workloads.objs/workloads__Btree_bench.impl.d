lib/workloads/btree_bench.ml: Driver Pstm Pstructs Repro_util
