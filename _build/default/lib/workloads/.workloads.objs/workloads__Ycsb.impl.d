lib/workloads/ycsb.ml: Driver Pstm Pstructs Repro_util
