lib/workloads/memcached.ml: Driver Printf Pstm Pstructs Repro_util
