lib/workloads/tatp.ml: Driver Pstm Pstructs Repro_util
