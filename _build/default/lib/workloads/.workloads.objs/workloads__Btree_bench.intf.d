lib/workloads/btree_bench.mli: Driver
