lib/workloads/tpcc.ml: Array Driver Pstm Pstructs Repro_util
