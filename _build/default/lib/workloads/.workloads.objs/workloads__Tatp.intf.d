lib/workloads/tatp.mli: Driver
