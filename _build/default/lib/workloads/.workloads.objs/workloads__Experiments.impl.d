lib/workloads/experiments.ml: Btree_bench Driver List Memcached Memsim Pmem Printf Pstm Pstructs Repro_util Tatp Tpcc Unix Vacation Ycsb
