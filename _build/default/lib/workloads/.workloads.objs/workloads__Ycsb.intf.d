lib/workloads/ycsb.mli: Driver
