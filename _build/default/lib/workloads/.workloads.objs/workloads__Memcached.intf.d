lib/workloads/memcached.mli: Driver
