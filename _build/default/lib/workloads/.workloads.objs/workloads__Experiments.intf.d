lib/workloads/experiments.mli: Driver Repro_util
