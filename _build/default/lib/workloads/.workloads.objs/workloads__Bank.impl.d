lib/workloads/bank.ml: Driver Pstm Repro_util
