lib/workloads/driver.ml: Machine Memsim Pstm Repro_util Telemetry
