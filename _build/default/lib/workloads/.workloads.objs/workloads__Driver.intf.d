lib/workloads/driver.mli: Memsim Pstm Repro_util Telemetry
