(** YCSB core workloads over the persistent store (extension).

    The standard cloud-serving benchmark mixes, with Zipfian key
    selection (theta = 0.99), 1-KB records (ten 100-byte fields,
    modeled as a 128-word blob), run over either the hash index
    (workloads A–D, F) or the B+Tree (workload E, which scans):

    - A: 50% read / 50% update
    - B: 95% read / 5% update
    - C: 100% read
    - D: 95% read-latest / 5% insert
    - E: 95% short range scan (uniform length 1–100) / 5% insert
    - F: 50% read / 50% read-modify-write

    Not part of the paper's evaluation; included because YCSB is the
    de-facto workload for persistent KV stores and exercises the
    ordered index in ways TPC-C does not. *)

type mix = A | B | C | D | E | F

val mix_name : mix -> string

val records : int
(** Initial population (8 192 records). *)

val spec : mix -> Driver.spec
