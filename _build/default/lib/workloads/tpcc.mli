(** Write-only TPC-C new-order from DudeTM (Fig 3, panels c and d).

    Scaled population: 32 warehouses x 10 districts, 1 000 items with
    per-warehouse stock.  Each transaction is a new-order:

    - read-increment the district's next_o_id (the hot word that drives
      the commit/abort ratios of Tables I and II),
    - insert an order row into the order index,
    - for 5–15 random items: decrement stock quantity and insert an
      order-line row into the index.

    Two index configurations, as in the paper: a B+Tree and a hash
    table. *)

type index = Btree | Hash

val spec : index -> Driver.spec

val warehouses : int
val districts_per_warehouse : int
val items : int
