module Ptm = Pstm.Ptm
module H = Pstructs.Phashtable

let subscribers = 20_000

(* Subscriber record: 8 words — [s_id; bit_1; data_a; vlr_location;
   and 4 further fields].  Call-forwarding rows live in a second hash
   table keyed by s_id*4 + sf_type, value = packed (start, end, number). *)

let sub_index_slot = 0
let cf_index_slot = 1

let setup ptm =
  let sub = H.create ptm ~buckets:(2 * subscribers) in
  let cf = H.create ptm ~buckets:subscribers in
  Ptm.root_set ptm sub_index_slot (H.descriptor sub);
  Ptm.root_set ptm cf_index_slot (H.descriptor cf);
  for s_id = 1 to subscribers do
    Ptm.atomic ptm (fun tx ->
        let rec_addr = Ptm.alloc tx 8 in
        Ptm.write tx rec_addr s_id;
        for f = 1 to 7 do
          Ptm.write tx (rec_addr + f) (s_id + f)
        done;
        ignore (H.put tx sub ~key:s_id ~value:rec_addr))
  done

let make_op ptm ~tid ~rng =
  ignore tid;
  let sub = H.attach ptm (Ptm.root_get ptm sub_index_slot) in
  let cf = H.attach ptm (Ptm.root_get ptm cf_index_slot) in
  fun () ->
    let s_id = 1 + Repro_util.Rng.int rng subscribers in
    let dice = Repro_util.Rng.int rng 100 in
    if dice < 35 then
      (* UPDATE_SUBSCRIBER_DATA: bit_1 and data_a *)
      Ptm.atomic ptm (fun tx ->
          match H.get tx sub s_id with
          | Some r ->
            Ptm.write tx (r + 1) (Repro_util.Rng.int rng 2);
            Ptm.write tx (r + 2) (Repro_util.Rng.int rng 256)
          | None -> ())
    else if dice < 70 then
      (* UPDATE_LOCATION: vlr_location *)
      Ptm.atomic ptm (fun tx ->
          match H.get tx sub s_id with
          | Some r -> Ptm.write tx (r + 3) (Repro_util.Rng.next rng land 0xFFFF)
          | None -> ())
    else if dice < 85 then begin
      (* INSERT_CALL_FORWARDING *)
      let sf_type = Repro_util.Rng.int rng 4 in
      let packed = (Repro_util.Rng.int rng 24 lsl 8) lor Repro_util.Rng.int rng 24 in
      Ptm.atomic ptm (fun tx ->
          ignore (H.put tx cf ~key:((s_id * 4) + sf_type + 1) ~value:packed))
    end
    else begin
      (* DELETE_CALL_FORWARDING *)
      let sf_type = Repro_util.Rng.int rng 4 in
      Ptm.atomic ptm (fun tx -> ignore (H.remove tx cf ((s_id * 4) + sf_type + 1)))
    end

let spec = { Driver.name = "tatp"; heap_words = 1 lsl 20; setup; make_op }
