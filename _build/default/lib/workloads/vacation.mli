(** The STAMP Vacation travel-reservation benchmark, as packaged in
    Whisper (Fig 3, panels e and f).

    Three resource relations (cars, flights, rooms) held in B+Trees,
    plus a customer table.  Transaction mix (STAMP parameters):

    - reservations: query [queries_per_tx] random resources across the
      relations, book the cheapest available one for a random customer;
    - delete-customer: release a customer's reservations;
    - update-tables: an "administrator" adds/retires resources.

    Contention levels follow STAMP:
    - low  (-n2 -q90 -u98 -r16384 scaled): large relations, few queried
      rows, almost all user transactions;
    - high (-n4 -q60 -u90 -r1024 scaled): small relations, more queried
      rows, more administrative writes.

    Vacation is the workload with real inter-transaction work; the
    driver thunk models it with a fixed virtual pause between
    transactions, which is why eADR gains are muted here (§III-C). *)

type contention = Low | High

val spec : contention -> Driver.spec
