module Ptm = Pstm.Ptm
module Bptree = Pstructs.Bptree

type contention = Low | High

type params = {
  relations : int; (* rows per relation *)
  queries_per_tx : int;
  user_pct : int; (* percentage of reservation txs *)
  inter_tx_work_ns : int;
}

let params = function
  | Low -> { relations = 16_384; queries_per_tx = 2; user_pct = 98; inter_tx_work_ns = 1_500 }
  | High -> { relations = 1_024; queries_per_tx = 4; user_pct = 90; inter_tx_work_ns = 1_500 }

(* Resource row: [total; used; price].  Customer row: [bookings].
   Reservation row: 8 words (customer, relation, resource id, price,
   and padding fields), indexed by (customer << 22 | rel << 20 | id) in
   a reservations B+Tree — this is what gives Vacation its sizeable
   redo logs (the paper measured up to 37 cache lines). *)
let resource_words = 3
let reservation_words = 8
let n_relations = 3 (* cars, flights, rooms *)

(* Region roots: 0..2 = relations, 3 = customers, 4 = reservations. *)
let customer_slot = 3
let reservation_slot = 4

let reservation_key ~customer ~rel ~id = (customer lsl 22) lor (rel lsl 20) lor id

let setup p ptm =
  let rng = Repro_util.Rng.create 0xACA in
  for rel = 0 to n_relations - 1 do
    let t = Bptree.create ptm in
    Ptm.root_set ptm rel (Bptree.descriptor t);
    for id = 1 to p.relations do
      Ptm.atomic ptm (fun tx ->
          let row = Ptm.alloc tx resource_words in
          Ptm.write tx row (5 + Repro_util.Rng.int rng 5) (* total *);
          Ptm.write tx (row + 1) 0 (* used *);
          Ptm.write tx (row + 2) (50 + Repro_util.Rng.int rng 450) (* price *);
          ignore (Bptree.insert tx t ~key:id ~value:row))
    done
  done;
  let cust = Bptree.create ptm in
  Ptm.root_set ptm customer_slot (Bptree.descriptor cust);
  for id = 1 to p.relations do
    Ptm.atomic ptm (fun tx ->
        let row = Ptm.alloc tx 1 in
        Ptm.write tx row 0;
        ignore (Bptree.insert tx cust ~key:id ~value:row))
  done;
  let res = Bptree.create ptm in
  Ptm.root_set ptm reservation_slot (Bptree.descriptor res)

let make_op p ptm ~tid ~rng =
  ignore tid;
  let m = Ptm.machine ptm in
  let rels = Array.init n_relations (fun i -> Bptree.attach ptm (Ptm.root_get ptm i)) in
  let cust = Bptree.attach ptm (Ptm.root_get ptm customer_slot) in
  let reservations = Bptree.attach ptm (Ptm.root_get ptm reservation_slot) in
  let reservation () =
    let customer = 1 + Repro_util.Rng.int rng p.relations in
    (* Choose candidate (relation, id) pairs up front so retries are
       deterministic within the transaction body. *)
    let picks =
      Array.init p.queries_per_tx (fun _ ->
          (Repro_util.Rng.int rng n_relations, 1 + Repro_util.Rng.int rng p.relations))
    in
    Ptm.atomic ptm (fun tx ->
        (* Find the cheapest available pick. *)
        let best = ref None in
        Array.iter
          (fun (rel, id) ->
            match Bptree.lookup tx rels.(rel) id with
            | None -> ()
            | Some row ->
              let total = Ptm.read tx row and used = Ptm.read tx (row + 1) in
              let price = Ptm.read tx (row + 2) in
              if used < total then
                match !best with
                | Some (_, best_price, _, _) when best_price <= price -> ()
                | Some _ | None -> best := Some (row, price, rel, id))
          picks;
        match !best with
        | None -> ()
        | Some (row, price, rel, id) ->
          Ptm.write tx (row + 1) (Ptm.read tx (row + 1) + 1);
          (match Bptree.lookup tx cust customer with
          | Some c -> Ptm.write tx c (Ptm.read tx c + 1)
          | None -> ());
          (* Materialize the reservation row and index it. *)
          let r = Ptm.alloc tx reservation_words in
          Ptm.write tx r customer;
          Ptm.write tx (r + 1) rel;
          Ptm.write tx (r + 2) id;
          Ptm.write tx (r + 3) price;
          for f = 4 to reservation_words - 1 do
            Ptm.write tx (r + f) (customer + f)
          done;
          ignore
            (Bptree.insert tx reservations ~key:(reservation_key ~customer ~rel ~id) ~value:r))
  in
  let delete_customer () =
    let customer = 1 + Repro_util.Rng.int rng p.relations in
    let rel = Repro_util.Rng.int rng n_relations in
    let id = 1 + Repro_util.Rng.int rng p.relations in
    Ptm.atomic ptm (fun tx ->
        match Bptree.lookup tx cust customer with
        | Some c when Ptm.read tx c > 0 ->
          Ptm.write tx c (Ptm.read tx c - 1);
          (match Bptree.lookup tx rels.(rel) id with
          | Some row when Ptm.read tx (row + 1) > 0 ->
            Ptm.write tx (row + 1) (Ptm.read tx (row + 1) - 1)
          | Some _ | None -> ());
          (* Retire the matching reservation row, if any. *)
          let key = reservation_key ~customer ~rel ~id in
          (match Bptree.lookup tx reservations key with
          | Some r ->
            ignore (Bptree.remove tx reservations key);
            Ptm.free tx r
          | None -> ())
        | Some _ | None -> ())
  in
  let update_tables () =
    let rel = Repro_util.Rng.int rng n_relations in
    let id = 1 + Repro_util.Rng.int rng p.relations in
    let grow = Repro_util.Rng.bool rng in
    Ptm.atomic ptm (fun tx ->
        match Bptree.lookup tx rels.(rel) id with
        | Some row ->
          if grow then Ptm.write tx row (Ptm.read tx row + 1)
          else begin
            let total = Ptm.read tx row and used = Ptm.read tx (row + 1) in
            if total > used then Ptm.write tx row (total - 1)
          end;
          Ptm.write tx (row + 2) (50 + Repro_util.Rng.int rng 450)
        | None -> ())
  in
  fun () ->
    (* STAMP vacation does real work between transactions. *)
    m.Machine.pause p.inter_tx_work_ns;
    let dice = Repro_util.Rng.int rng 100 in
    if dice < p.user_pct then reservation ()
    else if dice < p.user_pct + (100 - p.user_pct) / 2 then delete_customer ()
    else update_tables ()

let spec contention =
  let p = params contention in
  {
    Driver.name =
      (match contention with Low -> "vacation-low" | High -> "vacation-high");
    heap_words = 1 lsl 21;
    setup = setup p;
    make_op = make_op p;
  }
