module Ptm = Pstm.Ptm
module Bptree = Pstructs.Bptree

let key_range_bits = 17

let tree_root_slot = 0

let attach_tree ptm = Bptree.attach ptm (Ptm.root_get ptm tree_root_slot)

let create_tree ptm =
  let t = Bptree.create ptm in
  Ptm.root_set ptm tree_root_slot (Bptree.descriptor t)

(* Bijective scramble on [0, 2^bits): unique inputs give unique,
   pseudo-random keys — the insert-only stream never repeats a key. *)
let scramble bits seq =
  let mask = (1 lsl bits) - 1 in
  let x = (seq * 0x9E3779B1) land mask in
  let x = x lxor (x lsr 7) in
  let x = (x * 0x85EBCA77) land mask in
  x lxor (x lsr 11)

let insert_only =
  {
    Driver.name = "btree-insert";
    heap_words = 1 lsl 22;
    setup = create_tree;
    make_op =
      (fun ptm ~tid ~rng ->
        ignore rng;
        let t = attach_tree ptm in
        let counter = ref 0 in
        fun () ->
          (* Disjoint streams: thread t owns sequence numbers = t mod 32. *)
          let seq = (!counter * 32) + tid in
          incr counter;
          let key = 1 + scramble 26 seq in
          Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx t ~key ~value:seq)));
  }

let mixed =
  let range = 1 lsl key_range_bits in
  {
    Driver.name = "btree-mixed";
    heap_words = 1 lsl 21;
    setup =
      (fun ptm ->
        create_tree ptm;
        let t = attach_tree ptm in
        let rng = Repro_util.Rng.create 0xB7EE in
        (* Pre-fill half the key range, randomly chosen. *)
        for _ = 1 to range / 2 do
          let key = 1 + Repro_util.Rng.int rng range in
          Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx t ~key ~value:key))
        done);
    make_op =
      (fun ptm ~tid ~rng ->
        ignore tid;
        let t = attach_tree ptm in
        fun () ->
          let key = 1 + Repro_util.Rng.int rng range in
          match Repro_util.Rng.int rng 3 with
          | 0 -> Ptm.atomic ptm (fun tx -> ignore (Bptree.insert tx t ~key ~value:key))
          | 1 -> Ptm.atomic ptm (fun tx -> ignore (Bptree.lookup tx t key))
          | _ -> Ptm.atomic ptm (fun tx -> ignore (Bptree.remove tx t key)));
  }
