(** The two DudeTM B+Tree microbenchmarks (Fig 3, panels a and b).

    - {!insert_only}: unique keys into an initially empty tree — the
      paper's 2M-insertion workload, run for a fixed virtual span with
      each thread inserting a disjoint pseudo-random key stream.
    - {!mixed}: an equal mix of inserts, lookups and removes over a
      fixed key range, on a tree pre-filled to half the range. *)

val insert_only : Driver.spec

val mixed : Driver.spec

val key_range_bits : int
(** Key range of the mixed workload (the paper's 2^21, scaled). *)
