(** Memcached-style key/value store (Fig 8, §IV-E).

    The paper's experiment: memcached with memaslap driving a 50/50
    get/set mix, 128-byte keys, 1-KB values, uniformly random keys (so
    effectively no locality), one worker thread, sweeping the number of
    cached items so the working set crosses the L3 (32 KB scaled) and
    then the DRAM page cache (96 MB scaled).

    Items are pre-populated: a hash-table index maps key-id to an item
    descriptor holding pointers to a 16-word key block and a 128-word
    value block.  GET compares the full key block and reads the whole
    value; SET overwrites the whole value block — matching the memory
    traffic of the real server. *)

val key_words : int
val value_words : int

val item_overhead_words : int
(** Words consumed per item (key + value + index node + headers) —
    used to size working sets. *)

val spec : items:int -> Driver.spec
(** A store pre-filled with [items] items. *)

val items_for_bytes : int -> int
(** Number of items whose footprint is approximately the given working
    set in (simulated) bytes. *)
