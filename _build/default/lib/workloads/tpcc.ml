module Ptm = Pstm.Ptm
module Bptree = Pstructs.Bptree
module H = Pstructs.Phashtable

type index = Btree | Hash

let warehouses = 32
let districts_per_warehouse = 10
let items = 1_000

(* Region roots. *)
let index_slot = 0
let district_slot = 1 (* contiguous array of 8-word district records *)
let stock_slot = 2 (* contiguous blocks of 4-word stock records, one per warehouse *)

let district_words = 8
let stock_words = 4

(* Index keys: orders get (district_no * 2^34) + (o_id * 2^4); order
   lines add the 1-based line number in the low bits, keeping keys
   unique and clustered per district (ascending per district, like real
   TPC-C order ids). *)
let order_key ~dno ~o_id = (dno lsl 34) lor (o_id lsl 4)
let order_line_key ~dno ~o_id ~line = order_key ~dno ~o_id lor line

type ops = {
  insert : Ptm.tx -> key:int -> value:int -> bool;
}

let attach_index kind ptm =
  let desc = Ptm.root_get ptm index_slot in
  match kind with
  | Btree ->
    let t = Bptree.attach ptm desc in
    { insert = (fun tx ~key ~value -> Bptree.insert tx t ~key ~value) }
  | Hash ->
    let h = H.attach ptm desc in
    { insert = (fun tx ~key ~value -> H.put tx h ~key ~value) }

let setup kind ptm =
  (match kind with
  | Btree ->
    let t = Bptree.create ptm in
    Ptm.root_set ptm index_slot (Bptree.descriptor t)
  | Hash ->
    let h = H.create ptm ~buckets:(1 lsl 15) in
    Ptm.root_set ptm index_slot (H.descriptor h));
  let ndistricts = warehouses * districts_per_warehouse in
  Ptm.atomic ptm (fun tx ->
      let d = Ptm.alloc tx (ndistricts * district_words) in
      for i = 0 to ndistricts - 1 do
        Ptm.write tx (d + (i * district_words)) 1 (* next_o_id *)
      done;
      Ptm.root_set ptm district_slot d);
  (* Stock: one block per warehouse (w*items*4 words exceeds the block
     limit, so allocate per warehouse slice of <=512 words chunks). *)
  let per_chunk = 512 / stock_words in
  let chunks = (warehouses * items + per_chunk - 1) / per_chunk in
  let dir =
    Ptm.atomic ptm (fun tx ->
        let dir = Ptm.alloc tx chunks in
        Ptm.root_set ptm stock_slot dir;
        dir)
  in
  for c = 0 to chunks - 1 do
    Ptm.atomic ptm (fun tx ->
        let chunk = Ptm.alloc tx 512 in
        for i = 0 to per_chunk - 1 do
          Ptm.write tx (chunk + (i * stock_words)) 10_000 (* quantity *)
        done;
        Ptm.write tx (dir + c) chunk)
  done

let stock_addr ptm tx ~w ~item =
  let per_chunk = 512 / stock_words in
  let idx = (w * items) + item in
  let dir = Ptm.root_get ptm stock_slot in
  let chunk = Ptm.read tx (dir + (idx / per_chunk)) in
  chunk + (idx mod per_chunk * stock_words)

let make_op kind ptm ~tid ~rng =
  let index = attach_index kind ptm in
  let districts = Ptm.root_get ptm district_slot in
  (* TPC-C terminals are bound to a home warehouse; 10% of orders go
     to a remote one (the standard remote-payment/new-order skew). *)
  let home = tid mod warehouses in
  fun () ->
    let w =
      if Repro_util.Rng.chance rng 0.1 then Repro_util.Rng.int rng warehouses else home
    in
    let d = Repro_util.Rng.int rng districts_per_warehouse in
    let dno = (w * districts_per_warehouse) + d in
    let n_lines = 5 + Repro_util.Rng.int rng 11 in
    let line_items = Array.init n_lines (fun _ -> Repro_util.Rng.int rng items) in
    Ptm.atomic ptm (fun tx ->
        let daddr = districts + (dno * district_words) in
        let o_id = Ptm.read tx daddr in
        Ptm.write tx daddr (o_id + 1);
        (* Order row. *)
        let orow = Ptm.alloc tx 6 in
        Ptm.write tx orow o_id;
        Ptm.write tx (orow + 1) dno;
        Ptm.write tx (orow + 2) n_lines;
        ignore (index.insert tx ~key:(order_key ~dno ~o_id) ~value:orow);
        (* Order lines + stock updates. *)
        Array.iteri
          (fun l item ->
            let saddr = stock_addr ptm tx ~w ~item in
            let qty = Ptm.read tx saddr in
            Ptm.write tx saddr (if qty > 10 then qty - 1 else qty + 91);
            let ol = Ptm.alloc tx 4 in
            Ptm.write tx ol item;
            Ptm.write tx (ol + 1) o_id;
            Ptm.write tx (ol + 2) (1 + Repro_util.Rng.int rng 10);
            ignore (index.insert tx ~key:(order_line_key ~dno ~o_id ~line:(l + 1)) ~value:ol))
          line_items)

let spec kind =
  {
    Driver.name = (match kind with Btree -> "tpcc-btree" | Hash -> "tpcc-hash");
    heap_words = 1 lsl 22;
    setup = setup kind;
    make_op = make_op kind;
  }
