(** Deterministic pseudo-random number generation.

    All randomness in the reproduction flows through this module so that
    every experiment is replayable from a single seed.  The generator is
    splitmix64 (Steele et al., OOPSLA 2014): tiny state, good statistical
    quality, and O(1) [split] for deriving independent per-thread streams. *)

type t
(** Mutable generator state.  Not thread-safe; use {!split} to derive one
    generator per simulated or native thread. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val next : t -> int
(** Next raw 63-bit non-negative value. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
