(** Zipfian key-distribution sampler.

    Used by the memcached and TATP workloads to model skewed access
    patterns.  Sampling is O(log n) by binary search over the
    precomputed CDF; construction is O(n). *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] prepares a sampler over ranks [\[0, n)] with skew
    exponent [theta] (default [0.99], the YCSB convention).
    [theta = 0.] degenerates to the uniform distribution. *)

val n : t -> int
(** Population size. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)]; rank 0 is the most popular. *)
