type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_i64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let next g = Int64.to_int (Int64.shift_right_logical (next_i64 g) 1) land max_int

let split g = { state = next_i64 g }

let int g bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias on pathological bounds. *)
  let rec go () =
    let r = next g in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in g lo hi =
  assert (hi >= lo);
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_i64 g) 11) in
  r /. 9007199254740992.0 *. bound (* 2^53 *)

let bool g = Int64.logand (next_i64 g) 1L = 1L

let chance g p = float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))
