(** Array-based binary min-heap with integer keys.

    Used as the event queue of the discrete-event scheduler: pop the
    runnable with the smallest virtual time.  Ties are broken by
    insertion order (FIFO), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** O(log n) insertion. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the (key, value) pair with the smallest key, FIFO
    among equal keys.  [None] when empty. *)

val peek_key : 'a t -> int option
(** Smallest key without removing it. *)

val clear : 'a t -> unit
