type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  assert (i >= 0 && i < t.len);
  t.data.(i)

let set t i x =
  assert (i >= 0 && i < t.len);
  t.data.(i) <- x

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iter_rev_pairs f t =
  assert (t.len mod 2 = 0);
  let i = ref (t.len - 2) in
  while !i >= 0 do
    f t.data.(!i) t.data.(!i + 1);
    i := !i - 2
  done

let exists f t =
  let rec go i = i < t.len && (f t.data.(i) || go (i + 1)) in
  go 0
