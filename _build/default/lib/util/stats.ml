let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let geomean xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let logsum = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int n)
  end

type counter = {
  mutable count : int;
  mutable total : float;
  mutable minimum : float;
  mutable maximum : float;
}

let counter () = { count = 0; total = 0.0; minimum = infinity; maximum = neg_infinity }

let add c x =
  c.count <- c.count + 1;
  c.total <- c.total +. x;
  if x < c.minimum then c.minimum <- x;
  if x > c.maximum then c.maximum <- x

let merge a b =
  {
    count = a.count + b.count;
    total = a.total +. b.total;
    minimum = Float.min a.minimum b.minimum;
    maximum = Float.max a.maximum b.maximum;
  }

let count c = c.count
let total c = c.total
let minimum c = c.minimum
let maximum c = c.maximum
let average c = if c.count = 0 then nan else c.total /. float_of_int c.count
