(** Fixed-capacity LRU directory over integer keys.

    Models page-granularity caches (the Memory-Mode / PDRAM directory of
    the memory controller).  Each resident key carries a dirty bit.
    O(1) lookup and update via a hash table plus an intrusive
    doubly-linked recency list. *)

type t

type eviction = { key : int; dirty : bool }

val create : capacity:int -> t
(** [capacity] must be positive. *)

val capacity : t -> int

val size : t -> int

val mem : t -> int -> bool

val touch : t -> int -> dirty:bool -> [ `Hit | `Miss of eviction option ]
(** [touch t key ~dirty] looks up [key]; on hit it is moved to
    most-recently-used position and its dirty bit is OR-ed with [dirty].
    On miss, [key] is installed (evicting the LRU entry if full) and the
    eviction, if any, is returned with its dirty state. *)

val dirty_keys : t -> int list
(** All resident keys currently marked dirty (order unspecified). *)

val clear : t -> unit
