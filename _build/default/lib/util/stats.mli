(** Small statistics helpers for reporting experiment results. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); [0.] for n < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], by linear interpolation over
    a sorted copy.  [nan] on an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; [nan] on an empty array. *)

type counter
(** Streaming counter: count / sum / min / max without storing samples. *)

val counter : unit -> counter
val add : counter -> float -> unit

val merge : counter -> counter -> counter
(** Fresh counter summarizing both inputs (inputs untouched); merging a
    fresh/empty counter is the identity. *)

val count : counter -> int
val total : counter -> float
val minimum : counter -> float
val maximum : counter -> float
val average : counter -> float
