(** Plain-text table rendering for the benchmark harness.

    The benches print the same rows/series the paper reports; this module
    keeps the formatting in one place (aligned columns, optional CSV). *)

type t

val create : title:string -> header:string list -> t
(** New table with column [header].  [title] is printed above. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val cell_f : float -> string
(** Canonical float cell: 2 decimals, or scientific for tiny/huge
    values.  Non-finite values (a percentile of an empty histogram, a
    ratio with a zero denominator) render as ["-"], never ["nan"]. *)

val print : Format.formatter -> t -> unit
(** Render with aligned columns. *)

val to_csv : t -> string
(** Comma-separated rendering (header included, title omitted). *)
