type t = { n : int; cdf : float array }

let create ?(theta = 0.99) n =
  assert (n > 0);
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let n t = t.n

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
