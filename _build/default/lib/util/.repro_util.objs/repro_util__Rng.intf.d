lib/util/rng.mli:
