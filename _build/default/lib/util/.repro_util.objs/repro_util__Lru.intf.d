lib/util/lru.mli:
