lib/util/histogram.mli:
