lib/util/zipf.mli: Rng
