lib/util/min_heap.ml: Array
