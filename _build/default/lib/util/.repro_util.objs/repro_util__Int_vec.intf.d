lib/util/int_vec.mli:
