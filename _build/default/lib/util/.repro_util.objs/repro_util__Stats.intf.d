lib/util/stats.mli:
