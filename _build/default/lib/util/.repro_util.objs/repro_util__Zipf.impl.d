lib/util/zipf.ml: Array Float Rng
