lib/util/table.ml: Array Float Format List Printf String
