lib/util/rng.ml: Array Int64
