lib/util/histogram.ml: Array Float List
