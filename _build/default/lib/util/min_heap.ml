type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* [a] precedes [b] in heap order. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  let d = t.data in
  let i = ref t.size in
  t.size <- t.size + 1;
  d.(!i) <- entry;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before d.(!i) d.(parent) then begin
      let tmp = d.(parent) in
      d.(parent) <- d.(!i);
      d.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let d = t.data in
    let top = d.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      d.(0) <- d.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before d.(l) d.(!smallest) then smallest := l;
        if r < t.size && before d.(r) d.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = d.(!smallest) in
          d.(!smallest) <- d.(!i);
          d.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

let clear t =
  t.size <- 0;
  t.next_seq <- 0
