(** Growable integer vector (amortized O(1) push, no boxing).

    The STM's read/write sets are rebuilt on every transaction; this
    avoids allocating fresh lists on the hot path. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val clear : t -> unit
(** O(1); keeps capacity. *)

val iter : (int -> unit) -> t -> unit
val iter_rev_pairs : (int -> int -> unit) -> t -> unit
(** Iterate elements two at a time, last pair first: used to roll back
    (addr, value) undo entries in reverse order.  Length must be even. *)

val exists : (int -> bool) -> t -> bool
