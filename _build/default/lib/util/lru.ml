type node = {
  key : int;
  mutable dirty : bool;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
}

type eviction = { key : int; dirty : bool }

let create ~capacity =
  assert (capacity > 0);
  { cap = capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.cap

let size t = Hashtbl.length t.table

let mem t key = Hashtbl.mem t.table key

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.dirty <- node.dirty || dirty;
    unlink t node;
    push_front t node;
    `Hit
  | None ->
    let evicted =
      if Hashtbl.length t.table < t.cap then None
      else begin
        match t.tail with
        | None -> None
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key;
          Some { key = lru.key; dirty = lru.dirty }
      end
    in
    let node = { key; dirty; prev = None; next = None } in
    Hashtbl.add t.table key node;
    push_front t node;
    `Miss evicted

let dirty_keys t =
  Hashtbl.fold (fun key (node : node) acc -> if node.dirty then key :: acc else acc) t.table []

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
