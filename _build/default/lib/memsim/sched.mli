(** Deterministic discrete-event scheduler for simulated threads.

    Each simulated thread is a direct-style OCaml computation that
    performs a [Wait] effect whenever a modeled operation costs time.
    The scheduler always resumes the thread with the smallest virtual
    clock (FIFO among ties), so all shared-state mutations occur in
    global virtual-time order and every run is a deterministic function
    of the configuration and RNG seeds.

    Power-failure injection: when a crash time is armed, any thread
    whose next event would occur at or after that instant is
    discontinued with the {!Crashed} exception instead of being
    resumed.  Threads must let [Crashed] propagate (cleanup via
    [Fun.protect] is fine). *)

type t

(** The crash exception is {!Machine.Crashed}, so that machine-agnostic
    code can match it without depending on this library. *)

val create : unit -> t

val spawn : t -> (unit -> unit) -> int
(** Register a thread; returns its dense id (0, 1, ...).  Must be
    called before {!run}. *)

val run : ?crash_at:int -> t -> unit
(** Execute until every thread finishes, or until virtual time reaches
    [crash_at], in which case all remaining threads are killed and
    {!crashed} becomes true.  May be called once per scheduler. *)

val wait : t -> int -> unit
(** Advance the calling thread's virtual clock by [ns >= 0].  Must be
    called from within a simulated thread. *)

val wait_until : t -> int -> unit
(** Advance the calling thread's clock to at least the given absolute
    time. *)

val now : t -> int
(** Virtual clock of the calling thread; after [run] returns, the
    maximum virtual time reached. *)

val tid : t -> int
(** Id of the calling thread. *)

val crashed : t -> bool

val running : t -> bool
(** Whether a simulated thread is currently executing — false during
    untimed setup/recovery phases outside [run]. *)

val time_limit : t -> int option
(** The armed crash time, if any — lets long-running loops bail out
    early instead of spinning to the horizon. *)
