lib/memsim/config.ml: List Printf
