lib/memsim/server.mli:
