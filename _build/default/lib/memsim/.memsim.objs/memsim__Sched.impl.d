lib/memsim/sched.ml: Effect Machine Repro_util
