lib/memsim/server.ml: Queue
