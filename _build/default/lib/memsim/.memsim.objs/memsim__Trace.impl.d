lib/memsim/trace.ml: Array Format List
