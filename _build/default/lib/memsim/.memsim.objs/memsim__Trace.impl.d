lib/memsim/trace.ml: Array Format Int List Set
