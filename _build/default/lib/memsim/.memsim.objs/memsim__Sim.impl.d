lib/memsim/sim.ml: Array Cache Config Fun List Machine Marshal Printf Repro_util Sched Server Trace
