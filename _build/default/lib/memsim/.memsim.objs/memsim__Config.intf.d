lib/memsim/config.mli:
