lib/memsim/trace.mli: Format
