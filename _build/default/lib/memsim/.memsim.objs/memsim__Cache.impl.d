lib/memsim/cache.ml: Array
