lib/memsim/sched.mli:
